(** nvprof-style presentation of timing reports (the four metrics of
    Section IV-A). *)

type t = {
  label : string;
  time_ms : float;
  elapsed_cycles : int;
  issue_slot_util : float;  (** percent of issue slots used *)
  mem_stall : float;  (** percent of stalls waiting on global memory *)
  occupancy : float;  (** percent achieved occupancy *)
}

val of_report : label:string -> Timing.report -> t
val pp : t Fmt.t

(** The paper's weighted average for the Native column of Fig. 9:
    I = (I1*C1 + I2*C2) / (C1 + C2). *)
val weighted_issue_util : t list -> float

val header : string
val row : t -> string

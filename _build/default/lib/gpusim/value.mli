(** Runtime values of the functional interpreter.

    Integer values model the exact CUDA device widths: [Int]/[UInt] are
    32-bit patterns, [Long]/[ULong] 64-bit; all arithmetic wraps with the
    correct signedness (the crypto kernels depend on it).  [Float]s are
    rounded through IEEE binary32 after every operation. *)

type space = Global | Shared | Local_mem

type ptr = {
  space : space;
  buf : int;  (** buffer id within the space *)
  off : int;  (** byte offset *)
  elem : Cuda.Ctype.t;  (** element type: arithmetic stride, access width *)
}

type t =
  | Int of int32
  | UInt of int32
  | Long of int64
  | ULong of int64
  | Float of float  (** kept binary32-rounded *)
  | Double of float
  | Bool of bool
  | Ptr of ptr

exception Runtime_error of string

val fail : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Round through IEEE binary32. *)
val f32 : float -> float

val type_of : t -> Cuda.Ctype.t
val to_i64 : t -> int64
val to_int : t -> int
val to_float : t -> float
val truthy : t -> bool

(** C cast/assignment conversion (pointer reinterpretation included). *)
val convert : Cuda.Ctype.t -> t -> t

(** C binary operator with usual arithmetic conversions and pointer
    arithmetic.  @raise Runtime_error on division by zero or malformed
    operand combinations. *)
val binop : Cuda.Ast.binop -> t -> t -> t

val unop : Cuda.Ast.unop -> t -> t
val zero : Cuda.Ctype.t -> t
val pp : t Fmt.t
val equal : t -> t -> bool

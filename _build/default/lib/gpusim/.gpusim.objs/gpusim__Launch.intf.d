lib/gpusim/launch.mli: Cuda Hashtbl Hfuse_core Memory Trace Value

lib/gpusim/metrics.ml: Fmt List Timing

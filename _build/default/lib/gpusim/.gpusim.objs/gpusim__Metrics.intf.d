lib/gpusim/metrics.mli: Fmt Timing

lib/gpusim/timing.ml: Arch Array Fmt Hashtbl Hfuse_core Instr List Option Queue Trace

lib/gpusim/instr.mli: Fmt

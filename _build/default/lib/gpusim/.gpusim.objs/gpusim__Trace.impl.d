lib/gpusim/trace.ml: Array Instr

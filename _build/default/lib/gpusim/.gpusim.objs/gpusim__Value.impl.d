lib/gpusim/value.ml: Ast Ctype Cuda Float Fmt Int32 Int64

lib/gpusim/memory.mli: Bytes Cuda Value

lib/gpusim/resource_model.mli: Cuda Hfuse_core

lib/gpusim/interp.ml: Array Ast Bytes Ctype Cuda Effect Float Fmt Hashtbl Instr Int32 Int64 List Memory Option Pretty Queue String Trace Value

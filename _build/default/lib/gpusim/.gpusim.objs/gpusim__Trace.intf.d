lib/gpusim/trace.mli: Instr

lib/gpusim/interp.mli: Bytes Cuda Effect Hashtbl Memory Trace Value

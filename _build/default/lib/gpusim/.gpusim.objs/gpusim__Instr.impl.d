lib/gpusim/instr.ml: Fmt Printf

lib/gpusim/arch.mli: Fmt Hfuse_core

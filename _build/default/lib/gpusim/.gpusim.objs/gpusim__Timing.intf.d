lib/gpusim/timing.mli: Arch Trace

lib/gpusim/resource_model.ml: Ast Ast_util Ctype Cuda Hfuse_core List

lib/gpusim/launch.ml: Array Ast Ast_util Bytes Ctype Cuda Effect Fmt Hashtbl Hfuse_core Hfuse_frontend Inline Interp List Memory Queue Trace Value

lib/gpusim/arch.ml: Fmt Hfuse_core List String

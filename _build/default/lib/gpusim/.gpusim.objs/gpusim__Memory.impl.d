lib/gpusim/memory.ml: Array Bytes Ctype Cuda Int32 Int64 List String Value

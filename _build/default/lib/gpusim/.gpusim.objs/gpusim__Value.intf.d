lib/gpusim/value.mli: Cuda Fmt Format

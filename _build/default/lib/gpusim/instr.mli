(** Dynamic instruction classes recorded by the interpreter and replayed
    by the timing model — one record per warp instruction, with the
    memory-coalescing outcome attached (that is what determines pipe
    occupancy). *)

type t =
  | Alu
  | Falu
  | Dalu
  | Sfu
  | Shfl
  | Ld_global of int * int  (** (cache-miss sectors, cache-hit sectors) *)
  | St_global of int  (** 32-byte sectors *)
  | Ld_shared of int  (** bank-conflict degree (1 = none) *)
  | St_shared of int
  | Atom_shared of int  (** address-serialisation degree *)
  | Atom_global of int
  | Ld_local  (** register-spill reload *)
  | St_local
  | Bar of int * int  (** barrier id, participating thread count *)
  | Branch

(** Compact int encoding used by {!Trace}. *)
val code : t -> int

val payload : t -> int
val decode : int -> int -> t
val is_memory : t -> bool
val pp : t Fmt.t

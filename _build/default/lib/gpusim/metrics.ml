(* nvprof-style presentation of timing reports (Section IV-A metrics). *)

type t = {
  label : string;
  time_ms : float;
  elapsed_cycles : int;
  issue_slot_util : float;  (** percent *)
  mem_stall : float;  (** percent of stalls from memory instructions *)
  occupancy : float;  (** percent achieved *)
}

let of_report ~label (r : Timing.report) : t =
  {
    label;
    time_ms = r.Timing.time_ms;
    elapsed_cycles = r.Timing.elapsed_cycles;
    issue_slot_util = r.Timing.issue_slot_util;
    mem_stall = r.Timing.mem_stall_pct;
    occupancy = r.Timing.occupancy;
  }

let pp ppf m =
  Fmt.pf ppf "%-28s %8.3f ms  util %5.1f%%  memstall %5.1f%%  occ %5.1f%%"
    m.label m.time_ms m.issue_slot_util m.mem_stall m.occupancy

(** The weighted average the paper uses for the "Native" column of
    Fig. 9:  I = (I1*C1 + I2*C2) / (C1 + C2). *)
let weighted_issue_util (ms : t list) : float =
  let num, den =
    List.fold_left
      (fun (num, den) m ->
        ( num +. (m.issue_slot_util *. float_of_int m.elapsed_cycles),
          den +. float_of_int m.elapsed_cycles ))
      (0.0, 0.0) ms
  in
  if den = 0.0 then 0.0 else num /. den

(** Table header matching Fig. 8's columns. *)
let header =
  Fmt.str "%-28s %12s %12s %12s %12s" "Kernel" "Time (ms)" "IssueUtil%"
    "MemStall%" "Occupancy%"

let row m =
  Fmt.str "%-28s %12.3f %12.2f %12.1f %12.1f" m.label m.time_ms
    m.issue_slot_util m.mem_stall m.occupancy

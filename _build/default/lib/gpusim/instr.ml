(* Dynamic instruction classes recorded by the interpreter and replayed
   by the timing model.

   One record per *warp* instruction (SIMT: 32 lanes issue together).
   Memory instructions carry the coalescing outcome — the number of
   32-byte memory transactions a global access decomposed into, or the
   bank-conflict serialisation degree of a shared access — because that
   is what determines how long the load/store unit is occupied. *)

type t =
  | Alu  (** integer / logic / comparison / conversion *)
  | Falu  (** fp32 arithmetic *)
  | Dalu  (** fp64 arithmetic *)
  | Sfu  (** division, sqrt, transcendental *)
  | Shfl  (** warp shuffle *)
  | Ld_global of int * int
      (** load: (L1-miss sectors, L1-hit sectors) after coalescing *)
  | St_global of int
  | Ld_shared of int  (** load, [n]-way bank conflict (1 = none) *)
  | St_shared of int
  | Atom_shared of int  (** shared atomic, [n]-way address serialisation *)
  | Atom_global of int
  | Ld_local  (** register-spill reload *)
  | St_local  (** register-spill store *)
  | Bar of int * int  (** bar.sync id, participating thread count *)
  | Branch  (** control-flow resolution *)

(* Compact encoding: traces run to millions of instructions, so they are
   stored as parallel int arrays rather than constructor lists. *)

let code : t -> int = function
  | Alu -> 0
  | Falu -> 1
  | Dalu -> 2
  | Sfu -> 3
  | Shfl -> 4
  | Ld_global _ -> 5
  | St_global _ -> 6
  | Ld_shared _ -> 7
  | St_shared _ -> 8
  | Atom_shared _ -> 9
  | Atom_global _ -> 10
  | Ld_local -> 11
  | St_local -> 12
  | Bar _ -> 13
  | Branch -> 14

let payload : t -> int = function
  | Ld_global (miss, hit) -> (miss lsl 10) lor hit
  | St_global n | Ld_shared n | St_shared n | Atom_shared n
  | Atom_global n ->
      n
  | Bar (id, count) -> (id lsl 20) lor count
  | _ -> 0

let decode (c : int) (p : int) : t =
  match c with
  | 0 -> Alu
  | 1 -> Falu
  | 2 -> Dalu
  | 3 -> Sfu
  | 4 -> Shfl
  | 5 -> Ld_global (p lsr 10, p land 1023)
  | 6 -> St_global p
  | 7 -> Ld_shared p
  | 8 -> St_shared p
  | 9 -> Atom_shared p
  | 10 -> Atom_global p
  | 11 -> Ld_local
  | 12 -> St_local
  | 13 -> Bar (p lsr 20, p land 0xFFFFF)
  | 14 -> Branch
  | c -> invalid_arg (Printf.sprintf "Instr.decode: bad code %d" c)

let is_memory = function
  | Ld_global _ | St_global _ | Ld_shared _ | St_shared _ | Atom_shared _
  | Atom_global _ | Ld_local | St_local ->
      true
  | _ -> false

let pp ppf = function
  | Alu -> Fmt.string ppf "ALU"
  | Falu -> Fmt.string ppf "FALU"
  | Dalu -> Fmt.string ppf "DALU"
  | Sfu -> Fmt.string ppf "SFU"
  | Shfl -> Fmt.string ppf "SHFL"
  | Ld_global (m, h) -> Fmt.pf ppf "LDG(%dm+%dh)" m h
  | St_global n -> Fmt.pf ppf "STG(%d)" n
  | Ld_shared n -> Fmt.pf ppf "LDS(%d)" n
  | St_shared n -> Fmt.pf ppf "STS(%d)" n
  | Atom_shared n -> Fmt.pf ppf "ATOMS(%d)" n
  | Atom_global n -> Fmt.pf ppf "ATOMG(%d)" n
  | Ld_local -> Fmt.string ppf "LDL"
  | St_local -> Fmt.string ppf "STL"
  | Bar (id, n) -> Fmt.pf ppf "BAR(%d,%d)" id n
  | Branch -> Fmt.string ppf "BRA"

(** Per-warp dynamic instruction traces: growable parallel int arrays
    (traces run to millions of instructions). *)

type t = {
  mutable codes : int array;
  mutable payloads : int array;
  mutable len : int;
}

val create : ?capacity:int -> unit -> t
val length : t -> int
val push : t -> Instr.t -> unit
val get : t -> int -> Instr.t
val iter : (Instr.t -> unit) -> t -> unit
val fold : ('a -> Instr.t -> 'a) -> 'a -> t -> 'a

(** Histogram over instruction-class codes. *)
val mix : t -> int array

(** A block's traces: one per warp, in warp order. *)
type block = t array

val block_instructions : block -> int

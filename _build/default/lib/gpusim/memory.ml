(* Byte-addressable simulated memories.

   Global memory is a set of named buffers allocated by the host harness;
   shared memory is one buffer per running block (allocated by
   {!Launch}).  Byte addressing (rather than typed cells) is essential:
   the corpus reinterprets buffers across types ([reinterpret_cast] of
   the histogram's [unsigned char my_smem[]] to [output_t*]), and the
   crypto kernels mix 32- and 64-bit views. *)

open Cuda

type buffer = { name : string; data : Bytes.t }

type t = { mutable buffers : buffer array; mutable n : int }

let create () = { buffers = [||]; n = 0 }

(** Allocate a zero-filled global buffer; returns a pointer to its
    start with the given element type. *)
let alloc (t : t) ~(name : string) ~(elem : Ctype.t) ~(count : int) :
    Value.ptr =
  let bytes = count * Ctype.sizeof elem in
  let buf = { name; data = Bytes.make bytes '\000' } in
  if t.n = Array.length t.buffers then begin
    let cap = max 8 (2 * Array.length t.buffers) in
    let a = Array.make cap buf in
    Array.blit t.buffers 0 a 0 t.n;
    t.buffers <- a
  end;
  t.buffers.(t.n) <- buf;
  t.n <- t.n + 1;
  { Value.space = Value.Global; buf = t.n - 1; off = 0; elem }

let buffer (t : t) (id : int) : Bytes.t =
  if id < 0 || id >= t.n then Value.fail "invalid buffer id %d" id;
  t.buffers.(id).data

let buffer_name (t : t) (id : int) : string =
  if id < 0 || id >= t.n then Value.fail "invalid buffer id %d" id;
  t.buffers.(id).name

let size_bytes (t : t) (id : int) : int = Bytes.length (buffer t id)

(* ------------------------------------------------------------------ *)
(* Typed access to raw bytes                                            *)
(* ------------------------------------------------------------------ *)

let check data off width what =
  if off < 0 || off + width > Bytes.length data then
    Value.fail "out-of-bounds %s at byte offset %d (buffer is %d bytes)" what
      off (Bytes.length data)

(** Load a value of type [ty] at byte offset [off] of [data]. *)
let load_bytes (data : Bytes.t) (off : int) (ty : Ctype.t) : Value.t =
  check data off (Ctype.sizeof ty) "load";
  match ty with
  | Ctype.Bool -> Value.Bool (Bytes.get_uint8 data off <> 0)
  | Ctype.Char -> Value.Int (Int32.of_int (Bytes.get_int8 data off))
  | Ctype.UChar -> Value.UInt (Int32.of_int (Bytes.get_uint8 data off))
  | Ctype.Short -> Value.Int (Int32.of_int (Bytes.get_int16_le data off))
  | Ctype.UShort -> Value.UInt (Int32.of_int (Bytes.get_uint16_le data off))
  | Ctype.Int -> Value.Int (Bytes.get_int32_le data off)
  | Ctype.UInt -> Value.UInt (Bytes.get_int32_le data off)
  | Ctype.Long -> Value.Long (Bytes.get_int64_le data off)
  | Ctype.ULong -> Value.ULong (Bytes.get_int64_le data off)
  | Ctype.Float ->
      Value.Float (Int32.float_of_bits (Bytes.get_int32_le data off))
  | Ctype.Double ->
      Value.Double (Int64.float_of_bits (Bytes.get_int64_le data off))
  | Ctype.Ptr _ | Ctype.Array _ | Ctype.Void ->
      Value.fail "cannot load value of type %s from memory"
        (Ctype.to_string ty)

(** Store [v] (converted to [ty]) at byte offset [off] of [data]. *)
let store_bytes (data : Bytes.t) (off : int) (ty : Ctype.t) (v : Value.t) :
    unit =
  check data off (Ctype.sizeof ty) "store";
  let v = Value.convert ty v in
  match (ty, v) with
  | Ctype.Bool, Value.Bool b -> Bytes.set_uint8 data off (if b then 1 else 0)
  | Ctype.(Char | UChar), v ->
      Bytes.set_uint8 data off (Int64.to_int (Value.to_i64 v) land 0xFF)
  | Ctype.(Short | UShort), v ->
      Bytes.set_uint16_le data off (Int64.to_int (Value.to_i64 v) land 0xFFFF)
  | Ctype.Int, Value.Int x | Ctype.UInt, Value.UInt x ->
      Bytes.set_int32_le data off x
  | Ctype.Long, Value.Long x | Ctype.ULong, Value.ULong x ->
      Bytes.set_int64_le data off x
  | Ctype.Float, Value.Float x ->
      Bytes.set_int32_le data off (Int32.bits_of_float x)
  | Ctype.Double, Value.Double x ->
      Bytes.set_int64_le data off (Int64.bits_of_float x)
  | ty, _ ->
      Value.fail "cannot store value of type %s to memory"
        (Ctype.to_string ty)

(* ------------------------------------------------------------------ *)
(* Host-side convenience (filling and reading whole buffers)            *)
(* ------------------------------------------------------------------ *)

let fill_floats (t : t) (p : Value.ptr) (xs : float array) : unit =
  let data = buffer t p.Value.buf in
  Array.iteri
    (fun i x ->
      store_bytes data (p.Value.off + (4 * i)) Ctype.Float (Value.Float x))
    xs

let fill_int32s (t : t) (p : Value.ptr) (xs : int32 array) : unit =
  let data = buffer t p.Value.buf in
  Array.iteri
    (fun i x ->
      store_bytes data (p.Value.off + (4 * i)) Ctype.Int (Value.Int x))
    xs

let fill_int64s (t : t) (p : Value.ptr) (xs : int64 array) : unit =
  let data = buffer t p.Value.buf in
  Array.iteri
    (fun i x ->
      store_bytes data (p.Value.off + (8 * i)) Ctype.ULong (Value.ULong x))
    xs

let read_floats (t : t) (p : Value.ptr) (count : int) : float array =
  let data = buffer t p.Value.buf in
  Array.init count (fun i ->
      match load_bytes data (p.Value.off + (4 * i)) Ctype.Float with
      | Value.Float x -> x
      | _ -> assert false)

let read_int32s (t : t) (p : Value.ptr) (count : int) : int32 array =
  let data = buffer t p.Value.buf in
  Array.init count (fun i ->
      match load_bytes data (p.Value.off + (4 * i)) Ctype.Int with
      | Value.Int x -> x
      | _ -> assert false)

let read_int64s (t : t) (p : Value.ptr) (count : int) : int64 array =
  let data = buffer t p.Value.buf in
  Array.init count (fun i ->
      match load_bytes data (p.Value.off + (8 * i)) Ctype.ULong with
      | Value.ULong x -> x
      | _ -> assert false)

(** Snapshot all global buffers (for equivalence checks between native
    and fused executions). *)
let snapshot (t : t) : (string * Bytes.t) list =
  List.init t.n (fun i ->
      (t.buffers.(i).name, Bytes.copy t.buffers.(i).data))

let equal_snapshot (a : (string * Bytes.t) list)
    (b : (string * Bytes.t) list) : bool =
  List.length a = List.length b
  && List.for_all2
       (fun (na, da) (nb, db) -> String.equal na nb && Bytes.equal da db)
       a b

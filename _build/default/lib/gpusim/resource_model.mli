(** Per-thread register estimation.

    The occupancy computation (Fig. 6) needs NRegs(K).  Without nvcc,
    estimate from the AST: parameters and scalar locals hold live
    values, deep expressions need temporaries, 64-bit values cost two
    registers.  Monotone and deliberately simple; the benchmark corpus
    carries per-kernel calibration values instead, and this is the
    fallback for user-supplied kernels. *)

val reg_cost_of_type : Cuda.Ctype.t -> int
val expr_depth : Cuda.Ast.expr -> int
val estimate_body : Cuda.Ast.param list -> Cuda.Ast.stmt list -> int
val estimate_fn : Cuda.Ast.fn -> int

(** Calibration value when recorded ([regs > 0]), else the estimate. *)
val regs_of_info : Hfuse_core.Kernel_info.t -> int

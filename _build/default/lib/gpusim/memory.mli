(** Byte-addressable simulated memories.

    Global memory is a set of named buffers; byte addressing (not typed
    cells) is essential because the corpus reinterprets buffers across
    types and mixes 32/64-bit views. *)

type t

val create : unit -> t

(** Allocate a zero-filled buffer; returns a pointer to its start. *)
val alloc : t -> name:string -> elem:Cuda.Ctype.t -> count:int -> Value.ptr

val buffer : t -> int -> Bytes.t
val buffer_name : t -> int -> string
val size_bytes : t -> int -> int

(** Typed access at a byte offset; bounds-checked.
    @raise Value.Runtime_error on out-of-bounds or untypable access. *)
val load_bytes : Bytes.t -> int -> Cuda.Ctype.t -> Value.t

val store_bytes : Bytes.t -> int -> Cuda.Ctype.t -> Value.t -> unit

(** Host-side helpers. *)
val fill_floats : t -> Value.ptr -> float array -> unit

val fill_int32s : t -> Value.ptr -> int32 array -> unit
val fill_int64s : t -> Value.ptr -> int64 array -> unit
val read_floats : t -> Value.ptr -> int -> float array
val read_int32s : t -> Value.ptr -> int -> int32 array
val read_int64s : t -> Value.ptr -> int -> int64 array

(** Snapshot all buffers (equivalence checks). *)
val snapshot : t -> (string * Bytes.t) list

val equal_snapshot : (string * Bytes.t) list -> (string * Bytes.t) list -> bool

(** GPU architecture models for the two testbeds of the paper: a GeForce
    GTX 1080 Ti (Pascal) and a Tesla V100 (Volta).

    Per-SM resources are the real values (64K registers, 96K shared
    memory, 2048 threads).  SM {e counts} are scaled down by [sm_scale]
    to keep cycle-level simulation tractable; blocks distribute
    round-robin over homogeneous SMs, so per-SM behaviour — warp
    scheduling, occupancy, latency hiding — is unaffected and relative
    speedups are preserved.  Latency/throughput values follow published
    microbenchmarking of the two architectures. *)

type t = {
  name : string;
  sms : int;  (** simulated SM count *)
  sm_scale : int;  (** real SMs = sms * sm_scale *)
  clock_ghz : float;
  warp_size : int;
  schedulers_per_sm : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  regs_per_sm : int;
  smem_per_sm : int;
  max_threads_per_block : int;
  alu_latency : int;
  dalu_latency : int;
  sfu_latency : int;
  shfl_latency : int;
  smem_latency : int;
  gmem_latency : int;
  l1_latency : int;
      (** cached-global-load latency: the L2 round trip on Pascal (whose
          L1 does not cache global loads by default), Volta's fast
          unified L1 on the V100 *)
  l1_sectors_per_block : int;
  lmem_latency : int;
  lsu_throughput : int;
  gmem_cyc_per_txn : int;
      (** DRAM cost per 32-byte transaction: the SM's bandwidth share *)
  sfu_throughput : int;
  gmem_max_inflight : int;  (** MSHR-like cap on outstanding sectors *)
  load_use_distance : int;
      (** instructions the compiler schedules between a load and its use *)
  load_slots : int;  (** scoreboard slots: loads a warp keeps in flight *)
  fp32_units_factor : int;
      (** issue cycles per fp32 op: 1 on Pascal's 128-core SM, 2 on
          Volta's 64-core partitions *)
}

val gtx1080ti : t
val v100 : t
val all : t list
val by_name : string -> t option
val max_warps_per_sm : t -> int

(** The limits in the form {!Hfuse_core.Occupancy} consumes. *)
val sm_limits : t -> Hfuse_core.Occupancy.sm_limits

val pp : t Fmt.t

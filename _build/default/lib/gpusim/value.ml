(* Runtime values of the functional interpreter.

   Integer values model the exact CUDA device widths: [Int]/[UInt] are
   32-bit patterns (stored in [int32]), [Long]/[ULong] are 64-bit.  The
   crypto kernels depend on exact wrap-around and logical-shift
   semantics, so all arithmetic is done width- and signedness-correctly.
   [Float] values are rounded through an IEEE binary32 round-trip after
   every operation, matching device fp32 arithmetic on these kernels
   (no FMA contraction is modelled). *)

open Cuda

type space = Global | Shared | Local_mem

type ptr = {
  space : space;
  buf : int;  (** buffer id within the space *)
  off : int;  (** byte offset *)
  elem : Ctype.t;  (** element type for arithmetic and access width *)
}

type t =
  | Int of int32
  | UInt of int32
  | Long of int64
  | ULong of int64
  | Float of float  (** always binary32-rounded *)
  | Double of float
  | Bool of bool
  | Ptr of ptr

exception Runtime_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

let f32 (x : float) : float = Int32.float_of_bits (Int32.bits_of_float x)

let type_of : t -> Ctype.t = function
  | Int _ -> Int
  | UInt _ -> UInt
  | Long _ -> Long
  | ULong _ -> ULong
  | Float _ -> Float
  | Double _ -> Double
  | Bool _ -> Bool
  | Ptr p -> Ptr p.elem

(* ------------------------------------------------------------------ *)
(* Conversions                                                          *)
(* ------------------------------------------------------------------ *)

let to_i64 : t -> int64 = function
  | Int x -> Int64.of_int32 x
  | UInt x -> Int64.logand (Int64.of_int32 x) 0xFFFFFFFFL
  | Long x | ULong x -> x
  | Float x | Double x -> Int64.of_float x
  | Bool b -> if b then 1L else 0L
  | Ptr _ -> fail "pointer used as integer"

let to_int v = Int64.to_int (to_i64 v)

let to_float : t -> float = function
  | Int x -> Int32.to_float x
  | UInt x -> Int64.to_float (Int64.logand (Int64.of_int32 x) 0xFFFFFFFFL)
  | Long x -> Int64.to_float x
  | ULong x ->
      if Int64.compare x 0L >= 0 then Int64.to_float x
      else Int64.to_float x +. 18446744073709551616.0
  | Float x | Double x -> x
  | Bool b -> if b then 1.0 else 0.0
  | Ptr _ -> fail "pointer used as float"

let truthy : t -> bool = function
  | Int x | UInt x -> x <> 0l
  | Long x | ULong x -> x <> 0L
  | Float x | Double x -> x <> 0.0
  | Bool b -> b
  | Ptr _ -> true

(** Convert (as by C cast/assignment) to the given type. *)
let convert (ty : Ctype.t) (v : t) : t =
  match (ty, v) with
  | Ctype.Ptr elem, Ptr p -> Ptr { p with elem }
  | Ctype.Ptr _, _ -> fail "cannot convert non-pointer to pointer"
  | _, Ptr _ -> fail "cannot convert pointer to %s" (Ctype.to_string ty)
  | Ctype.Bool, v -> Bool (truthy v)
  | Ctype.(Char | UChar | Short | UShort | Int), (Float f | Double f) ->
      (* C float->int truncates toward zero *)
      let i = Int64.of_float (Float.of_int (int_of_float f)) in
      let i32 = Int64.to_int32 i in
      (match ty with
      | Ctype.Char -> Int (Int32.of_int (Int32.to_int i32 land 0xFF))
      | Ctype.UChar -> UInt (Int32.of_int (Int32.to_int i32 land 0xFF))
      | Ctype.Short -> Int (Int32.of_int (Int32.to_int i32 land 0xFFFF))
      | Ctype.UShort -> UInt (Int32.of_int (Int32.to_int i32 land 0xFFFF))
      | _ -> Int i32)
  | Ctype.UInt, (Float f | Double f) -> UInt (Int64.to_int32 (Int64.of_float f))
  | Ctype.Long, (Float f | Double f) -> Long (Int64.of_float f)
  | Ctype.ULong, (Float f | Double f) -> ULong (Int64.of_float f)
  | Ctype.Float, v -> Float (f32 (to_float v))
  | Ctype.Double, v -> Double (to_float v)
  | Ctype.Char, v ->
      let b = Int64.to_int (to_i64 v) land 0xFF in
      Int (Int32.of_int (if b >= 0x80 then b - 0x100 else b))
  | Ctype.UChar, v -> UInt (Int32.of_int (Int64.to_int (to_i64 v) land 0xFF))
  | Ctype.Short, v ->
      let b = Int64.to_int (to_i64 v) land 0xFFFF in
      Int (Int32.of_int (if b >= 0x8000 then b - 0x10000 else b))
  | Ctype.UShort, v ->
      UInt (Int32.of_int (Int64.to_int (to_i64 v) land 0xFFFF))
  | Ctype.Int, v -> Int (Int64.to_int32 (to_i64 v))
  | Ctype.UInt, v -> UInt (Int64.to_int32 (to_i64 v))
  | Ctype.Long, v -> Long (to_i64 v)
  | Ctype.ULong, v -> ULong (to_i64 v)
  | Ctype.(Void | Array _), _ ->
      fail "cannot convert to %s" (Ctype.to_string ty)

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                           *)
(* ------------------------------------------------------------------ *)

let u64_div a b =
  (* unsigned 64-bit division *)
  Int64.unsigned_div a b

let u64_rem a b = Int64.unsigned_rem a b
let u64_lt a b = Int64.unsigned_compare a b < 0

(** Apply a C binary operator with usual arithmetic conversions. *)
let binop (op : Ast.binop) (a : t) (b : t) : t =
  let bool_ c = Bool c in
  match (op, a, b) with
  (* pointer arithmetic and comparison *)
  | Ast.Add, Ptr p, i | Ast.Add, i, Ptr p ->
      Ptr { p with off = p.off + (to_int i * Ctype.sizeof p.elem) }
  | Ast.Sub, Ptr p, i when not (match i with Ptr _ -> true | _ -> false) ->
      Ptr { p with off = p.off - (to_int i * Ctype.sizeof p.elem) }
  | Ast.Sub, Ptr p, Ptr q ->
      if p.space <> q.space || p.buf <> q.buf then
        fail "subtraction of pointers into different buffers";
      Int (Int32.of_int ((p.off - q.off) / Ctype.sizeof p.elem))
  | (Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), Ptr p, Ptr q ->
      let c = compare (p.space, p.buf, p.off) (q.space, q.buf, q.off) in
      bool_
        (match op with
        | Ast.Eq -> c = 0
        | Ast.Ne -> c <> 0
        | Ast.Lt -> c < 0
        | Ast.Le -> c <= 0
        | Ast.Gt -> c > 0
        | _ -> c >= 0)
  | _ -> (
      let ta = type_of a and tb = type_of b in
      let ty =
        match op with
        | Ast.Shl | Ast.Shr ->
            (* shifts: result type is the (promoted) left operand *)
            let t = if Ctype.rank ta < Ctype.rank Ctype.Int then Ctype.Int else ta in
            t
        | _ -> Ctype.arith_join ta tb
      in
      match ty with
      | Ctype.Float | Ctype.Double ->
          let x = to_float a and y = to_float b in
          let r op_f = if ty = Ctype.Float then Float (f32 (op_f x y)) else Double (op_f x y) in
          (match op with
          | Ast.Add -> r ( +. )
          | Ast.Sub -> r ( -. )
          | Ast.Mul -> r ( *. )
          | Ast.Div -> r ( /. )
          | Ast.Eq -> bool_ (x = y)
          | Ast.Ne -> bool_ (x <> y)
          | Ast.Lt -> bool_ (x < y)
          | Ast.Le -> bool_ (x <= y)
          | Ast.Gt -> bool_ (x > y)
          | Ast.Ge -> bool_ (x >= y)
          | Ast.Land -> bool_ (x <> 0. && y <> 0.)
          | Ast.Lor -> bool_ (x <> 0. || y <> 0.)
          | _ -> fail "invalid float operator")
      | Ctype.Long | Ctype.ULong ->
          let unsigned = ty = Ctype.ULong in
          let x = to_i64 a and y = to_i64 b in
          let wrap v = if unsigned then ULong v else Long v in
          (match op with
          | Ast.Add -> wrap (Int64.add x y)
          | Ast.Sub -> wrap (Int64.sub x y)
          | Ast.Mul -> wrap (Int64.mul x y)
          | Ast.Div ->
              if y = 0L then fail "integer division by zero";
              wrap (if unsigned then u64_div x y else Int64.div x y)
          | Ast.Mod ->
              if y = 0L then fail "integer modulo by zero";
              wrap (if unsigned then u64_rem x y else Int64.rem x y)
          | Ast.Band -> wrap (Int64.logand x y)
          | Ast.Bor -> wrap (Int64.logor x y)
          | Ast.Bxor -> wrap (Int64.logxor x y)
          | Ast.Shl -> wrap (Int64.shift_left x (Int64.to_int y land 63))
          | Ast.Shr ->
              wrap
                (if unsigned then
                   Int64.shift_right_logical x (Int64.to_int y land 63)
                 else Int64.shift_right x (Int64.to_int y land 63))
          | Ast.Eq -> bool_ (x = y)
          | Ast.Ne -> bool_ (x <> y)
          | Ast.Lt -> bool_ (if unsigned then u64_lt x y else x < y)
          | Ast.Le ->
              bool_ (if unsigned then not (u64_lt y x) else x <= y)
          | Ast.Gt -> bool_ (if unsigned then u64_lt y x else x > y)
          | Ast.Ge ->
              bool_ (if unsigned then not (u64_lt x y) else x >= y)
          | Ast.Land -> bool_ (x <> 0L && y <> 0L)
          | Ast.Lor -> bool_ (x <> 0L || y <> 0L))
      | Ctype.Bool ->
          bool_
            (match op with
            | Ast.Land -> truthy a && truthy b
            | Ast.Lor -> truthy a || truthy b
            | Ast.Eq -> truthy a = truthy b
            | Ast.Ne -> truthy a <> truthy b
            | _ -> fail "invalid bool operator")
      | _ ->
          (* 32-bit integer lane *)
          let unsigned = Ctype.is_unsigned ty in
          let x = Int64.to_int32 (to_i64 a) and y = Int64.to_int32 (to_i64 b) in
          let wrap v = if unsigned then UInt v else Int v in
          (match op with
          | Ast.Add -> wrap (Int32.add x y)
          | Ast.Sub -> wrap (Int32.sub x y)
          | Ast.Mul -> wrap (Int32.mul x y)
          | Ast.Div ->
              if y = 0l then fail "integer division by zero";
              wrap
                (if unsigned then Int32.unsigned_div x y else Int32.div x y)
          | Ast.Mod ->
              if y = 0l then fail "integer modulo by zero";
              wrap
                (if unsigned then Int32.unsigned_rem x y else Int32.rem x y)
          | Ast.Band -> wrap (Int32.logand x y)
          | Ast.Bor -> wrap (Int32.logor x y)
          | Ast.Bxor -> wrap (Int32.logxor x y)
          | Ast.Shl -> wrap (Int32.shift_left x (Int32.to_int y land 31))
          | Ast.Shr ->
              wrap
                (if unsigned then
                   Int32.shift_right_logical x (Int32.to_int y land 31)
                 else Int32.shift_right x (Int32.to_int y land 31))
          | Ast.Eq -> bool_ (x = y)
          | Ast.Ne -> bool_ (x <> y)
          | Ast.Lt ->
              bool_
                (if unsigned then Int32.unsigned_compare x y < 0 else x < y)
          | Ast.Le ->
              bool_
                (if unsigned then Int32.unsigned_compare x y <= 0 else x <= y)
          | Ast.Gt ->
              bool_
                (if unsigned then Int32.unsigned_compare x y > 0 else x > y)
          | Ast.Ge ->
              bool_
                (if unsigned then Int32.unsigned_compare x y >= 0 else x >= y)
          | Ast.Land -> bool_ (truthy a && truthy b)
          | Ast.Lor -> bool_ (truthy a || truthy b)))

let unop (op : Ast.unop) (v : t) : t =
  match (op, v) with
  | Ast.Lnot, v -> Bool (not (truthy v))
  | Ast.Neg, Float x -> Float (f32 (-.x))
  | Ast.Neg, Double x -> Double (-.x)
  | Ast.Neg, Int x -> Int (Int32.neg x)
  | Ast.Neg, UInt x -> UInt (Int32.neg x)
  | Ast.Neg, Long x -> Long (Int64.neg x)
  | Ast.Neg, ULong x -> ULong (Int64.neg x)
  | Ast.Neg, Bool b -> Int (if b then -1l else 0l)
  | Ast.Bnot, Int x -> Int (Int32.lognot x)
  | Ast.Bnot, UInt x -> UInt (Int32.lognot x)
  | Ast.Bnot, Long x -> Long (Int64.lognot x)
  | Ast.Bnot, ULong x -> ULong (Int64.lognot x)
  | Ast.Bnot, Bool b -> Int (if b then -2l else -1l)
  | Ast.Neg, Ptr _ | Ast.Bnot, (Ptr _ | Float _ | Double _) ->
      fail "invalid unary operand"

(** Default (zero) value of a type. *)
let zero (ty : Ctype.t) : t =
  match ty with
  | Ctype.Bool -> Bool false
  | Ctype.(Char | Short | Int) -> Int 0l
  | Ctype.(UChar | UShort | UInt) -> UInt 0l
  | Ctype.Long -> Long 0L
  | Ctype.ULong -> ULong 0L
  | Ctype.Float -> Float 0.0
  | Ctype.Double -> Double 0.0
  | t -> fail "no zero value for type %s" (Ctype.to_string t)

let pp ppf = function
  | Int x -> Fmt.pf ppf "%ld" x
  | UInt x -> Fmt.pf ppf "%luu" x
  | Long x -> Fmt.pf ppf "%Ldll" x
  | ULong x -> Fmt.pf ppf "%Luull" x
  | Float x -> Fmt.pf ppf "%gf" x
  | Double x -> Fmt.pf ppf "%g" x
  | Bool b -> Fmt.bool ppf b
  | Ptr p ->
      Fmt.pf ppf "%s@%d+%d"
        (match p.space with
        | Global -> "glob"
        | Shared -> "smem"
        | Local_mem -> "local")
        p.buf p.off

let equal (a : t) (b : t) = a = b

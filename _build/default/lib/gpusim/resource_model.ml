(* Per-thread register estimation.

   The occupancy computation (Fig. 6) and the timing model need NRegs(K)
   — the per-thread register count nvcc would allocate.  Without nvcc we
   estimate from the AST: parameters and scalar locals each hold a live
   value, address arithmetic and deep expressions need temporaries, and
   64-bit values occupy two 32-bit registers.  The estimator is
   deliberately simple and monotone (more locals / deeper expressions
   never decrease the estimate); the kernel corpus additionally carries
   per-kernel calibration values in the range nvcc reports for the real
   PyTorch/ccminer kernels (see [Kernel_corpus.Registry]), and this
   estimator is the fallback for user-supplied kernels. *)

open Cuda

let reg_cost_of_type (t : Ctype.t) : int =
  match t with
  | Ctype.Long | Ctype.ULong | Ctype.Double | Ctype.Ptr _ -> 2
  | Ctype.Array _ -> 0 (* lives in shared/local memory, not registers *)
  | _ -> 1

(** Maximum operator depth of an expression — a proxy for the temporaries
    the compiler needs while evaluating it. *)
let rec expr_depth (e : Ast.expr) : int =
  match e with
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ | Ast.Var _
  | Ast.Builtin _ ->
      0
  | Ast.Unop (_, a) | Ast.Deref a | Ast.Addr_of a | Ast.Cast (_, a) ->
      expr_depth a
  | Ast.Binop (_, a, b) | Ast.Assign (a, b) | Ast.Op_assign (_, a, b)
  | Ast.Index (a, b) ->
      1 + max (expr_depth a) (expr_depth b)
  | Ast.Incdec { lval; _ } -> 1 + expr_depth lval
  | Ast.Ternary (a, b, c) ->
      1 + max (expr_depth a) (max (expr_depth b) (expr_depth c))
  | Ast.Call (_, args) ->
      1 + List.fold_left (fun acc a -> max acc (expr_depth a)) 0 args

(** Estimate per-thread registers for a kernel body with the given
    parameters.  Baseline 10 covers the ABI-reserved and special
    registers (tid computation, stack pointer). *)
let estimate_body (params : Ast.param list) (body : Ast.stmt list) : int =
  let param_regs =
    List.fold_left (fun acc (p : Ast.param) -> acc + reg_cost_of_type p.p_type)
      0 params
  in
  let local_regs =
    List.fold_left
      (fun acc (d : Ast.decl) ->
        if d.d_storage = Ast.Local then acc + reg_cost_of_type d.d_type
        else acc)
      0
      (Ast_util.collect_decls body)
  in
  let max_depth =
    Ast_util.fold_stmts_expr (fun acc e -> max acc (expr_depth e)) 0 body
  in
  let est = 10 + param_regs + local_regs + (max_depth / 2) in
  min 255 (max 16 est)

let estimate_fn (f : Ast.fn) : int = estimate_body f.f_params f.f_body

(** Estimate for a configured kernel, preferring its calibration value
    when one was recorded. *)
let regs_of_info (k : Hfuse_core.Kernel_info.t) : int =
  if k.regs > 0 then k.regs else estimate_fn k.fn

(* Maxpool — 2-D max pooling over an input feature map, modelled on
   PyTorch's [max_pool_forward_nchw] kernel as instantiated for ResNet's
   3x3, stride-2 pooling.  The window is fully unrolled (the framework's
   templated kernels specialise and unroll constant window shapes), so
   the nine input loads pipeline ahead of the max chain — making the
   kernel throughput-bound on the memory system, which is why the paper
   measures only ~8% issue-slot utilisation and ~95% memory stalls for
   it (Fig. 8). *)

open Cuda
open Gpusim

let source =
  {|
__global__ void maxpool(float* output, float* input,
                        int channels, int iheight, int iwidth,
                        int oheight, int owidth, int total) {
  for (int index = blockIdx.x * blockDim.x + threadIdx.x; index < total;
       index += blockDim.x * gridDim.x) {
    int ow = index % owidth;
    int oh = index / owidth % oheight;
    int c = index / owidth / oheight % channels;
    int n = index / owidth / oheight / channels;
    int hstart = oh * 2;
    int wstart = ow * 2;
    // clamped 3x3 window: duplicates of edge cells do not change a max
    int h1 = min(hstart + 1, iheight - 1);
    int h2 = min(hstart + 2, iheight - 1);
    int w1 = min(wstart + 1, iwidth - 1);
    int w2 = min(wstart + 2, iwidth - 1);
    int base = (n * channels + c) * iheight * iwidth;
    float v0 = input[base + hstart * iwidth + wstart];
    float v1 = input[base + hstart * iwidth + w1];
    float v2 = input[base + hstart * iwidth + w2];
    float v3 = input[base + h1 * iwidth + wstart];
    float v4 = input[base + h1 * iwidth + w1];
    float v5 = input[base + h1 * iwidth + w2];
    float v6 = input[base + h2 * iwidth + wstart];
    float v7 = input[base + h2 * iwidth + w1];
    float v8 = input[base + h2 * iwidth + w2];
    float m = fmaxf(fmaxf(fmaxf(v0, v1), fmaxf(v2, v3)),
                    fmaxf(fmaxf(v4, v5), fmaxf(v6, fmaxf(v7, v8))));
    output[index] = m;
  }
}
|}

(* Workload geometry: batch x channels feature maps of iheight x iwidth;
   [size] scales the spatial extent.  3x3 window, stride 2. *)
let geometry ~size =
  let nbatch = 2 and channels = 4 in
  let iwidth = 16 * max 1 size and iheight = 16 in
  let kh = 3 and kw = 3 and sh = 2 and sw = 2 in
  let oheight = (iheight - kh) / sh + 1 in
  let owidth = (iwidth - kw) / sw + 1 in
  (nbatch, channels, iheight, iwidth, oheight, owidth, kh, kw, sh, sw)

let host_reference ~input
    ~geometry:(nbatch, channels, ih, iw, oh, ow, kh, kw, sh, sw) :
    float array =
  let total = nbatch * channels * oh * ow in
  Array.init total (fun index ->
      let w0 = index mod ow in
      let h0 = index / ow mod oh in
      let c = index / ow / oh mod channels in
      let n = index / ow / oh / channels in
      let hstart = h0 * sh and wstart = w0 * sw in
      let hend = min (hstart + kh) ih and wend = min (wstart + kw) iw in
      let maxval = ref neg_infinity in
      for h = hstart to hend - 1 do
        for w = wstart to wend - 1 do
          let v = input.((((n * channels) + c) * ih + h) * iw + w) in
          if v > !maxval then maxval := v
        done
      done;
      Value.f32 !maxval)

let instantiate (mem : Memory.t) ~size : Workload.instance =
  let ((nbatch, channels, ih, iw, oh, ow, _, _, _, _) as geo) =
    geometry ~size
  in
  let total_in = nbatch * channels * ih * iw in
  let total_out = nbatch * channels * oh * ow in
  let rng = Prng.create (0x6D61 + size) in
  let input_data = Prng.float_array rng total_in ~lo:(-4.0) ~hi:4.0 in
  let input = Memory.alloc mem ~name:"maxpool.input" ~elem:Ctype.Float ~count:total_in in
  Memory.fill_floats mem input input_data;
  let output =
    Memory.alloc mem ~name:"maxpool.output" ~elem:Ctype.Float ~count:total_out
  in
  let expect = host_reference ~input:input_data ~geometry:geo in
  {
    Workload.args =
      [
        Value.Ptr output; Value.Ptr input; Workload.iv channels;
        Workload.iv ih; Workload.iv iw; Workload.iv oh; Workload.iv ow;
        Workload.iv total_out;
      ];
    grid = Workload.default_grid;
    smem_dynamic = 0;
    outputs = [ ("maxpool.output", output, total_out) ];
    check =
      (fun mem ->
        Workload.check_floats ~what:"maxpool.output" ~expect
          (Memory.read_floats mem output total_out));
  }

let spec : Spec.t =
  {
    Spec.name = "Maxpool";
    kind = Spec.Deep_learning;
    source;
    regs = 22;
    native_block = (256, 1, 1);
    tunability = Hfuse_core.Kernel_info.Tunable { multiple_of = 32 };
    default_size = 16;
    instantiate;
  }

(* Im2Col — rearranges image patches into columns for GEMM-based
   convolution, modelled on PyTorch's [im2col_kernel].  One thread per
   output-column element; mostly index arithmetic plus strided global
   reads and writes (high issue utilisation, Fig. 8). *)

open Cuda
open Gpusim

let source =
  {|
__global__ void im2col(float* col, float* img,
                       int channels, int height, int width,
                       int kh, int kw, int oh, int ow, int total) {
  for (int index = blockIdx.x * blockDim.x + threadIdx.x; index < total;
       index += blockDim.x * gridDim.x) {
    int w_out = index % ow;
    int h_index = index / ow;
    int h_out = h_index % oh;
    int channel_in = h_index / oh;
    int channel_out = channel_in * kh * kw;
    // PyTorch's generic kernel walks the patch with 64-bit strided
    // offsets recomputed per tap (IndexToOffset-style index math)
    uint64_t col_base = ((uint64_t)channel_out * oh + (uint64_t)h_out) * ow
                        + (uint64_t)w_out;
    uint64_t img_base = ((uint64_t)channel_in * height + (uint64_t)h_out)
                        * width + (uint64_t)w_out;
    uint64_t step = (uint64_t)oh * ow;
    for (int t = 0; t < kh * kw; ++t) {
      int i = t / kw;
      int j = t % kw;
      int h = h_out + i;
      int w = w_out + j;
      float v = 0.0f;
      if (h < height && w < width) {
        v = img[img_base + (uint64_t)i * width + (uint64_t)j];
      }
      col[col_base + (uint64_t)t * step] = v;
    }
  }
}
|}

let geometry ~size =
  let channels = 4 in
  let width = 8 * max 1 size and height = 16 in
  let kh = 3 and kw = 3 in
  (* stride 1, no padding: output spatial dims shrink by k-1 *)
  let oh = height - kh + 1 and ow = width - kw + 1 in
  (channels, height, width, kh, kw, oh, ow)

let host_reference ~img ~geometry:(channels, height, width, kh, kw, oh, ow) :
    float array =
  let total_col = channels * kh * kw * oh * ow in
  let col = Array.make total_col 0.0 in
  let total = channels * oh * ow in
  for index = 0 to total - 1 do
    let w_out = index mod ow in
    let h_index = index / ow in
    let h_out = h_index mod oh in
    let channel_in = h_index / oh in
    let channel_out = channel_in * kh * kw in
    let col_base = (((channel_out * oh) + h_out) * ow) + w_out in
    let img_base = (((channel_in * height) + h_out) * width) + w_out in
    for i = 0 to kh - 1 do
      for j = 0 to kw - 1 do
        let h = h_out + i and w = w_out + j in
        let v =
          if h < height && w < width then img.(img_base + (i * width) + j)
          else 0.0
        in
        col.(col_base + (((i * kw) + j) * oh * ow)) <- v
      done
    done
  done;
  col

let instantiate (mem : Memory.t) ~size : Workload.instance =
  let ((channels, height, width, kh, kw, oh, ow) as geo) = geometry ~size in
  let total_img = channels * height * width in
  let total_col = channels * kh * kw * oh * ow in
  let total = channels * oh * ow in
  let rng = Prng.create (0x12C0 + size) in
  let img_data = Prng.float_array rng total_img ~lo:(-1.0) ~hi:1.0 in
  let img = Memory.alloc mem ~name:"im2col.img" ~elem:Ctype.Float ~count:total_img in
  Memory.fill_floats mem img img_data;
  let col = Memory.alloc mem ~name:"im2col.col" ~elem:Ctype.Float ~count:total_col in
  let expect = host_reference ~img:img_data ~geometry:geo in
  {
    Workload.args =
      [
        Value.Ptr col; Value.Ptr img; Workload.iv channels;
        Workload.iv height; Workload.iv width; Workload.iv kh;
        Workload.iv kw; Workload.iv oh; Workload.iv ow; Workload.iv total;
      ];
    grid = Workload.default_grid;
    smem_dynamic = 0;
    outputs = [ ("im2col.col", col, total_col) ];
    check =
      (fun mem ->
        Workload.check_floats ~what:"im2col.col" ~expect
          (Memory.read_floats mem col total_col));
  }

let spec : Spec.t =
  {
    Spec.name = "Im2Col";
    kind = Spec.Deep_learning;
    source;
    regs = 28;
    native_block = (256, 1, 1);
    tunability = Hfuse_core.Kernel_info.Tunable { multiple_of = 32 };
    default_size = 12;
    instantiate;
  }

(* Workload plumbing shared by the nine benchmark kernels.

   A kernel module provides [instantiate], which allocates inputs and
   outputs in a fresh-or-given simulated memory and returns an
   {!instance}: the positional kernel arguments, the launch geometry, and
   a host-reference check.  The [size] knob scales per-thread work (the
   ratio sweeps of Fig. 7 vary one kernel's size while holding the
   other's). *)

open Gpusim

(** A kernel workload bound to buffers in a specific memory. *)
type instance = {
  args : Value.t list;  (** positional kernel arguments *)
  grid : int;
  smem_dynamic : int;
  outputs : (string * Value.ptr * int) list;
      (** (name, pointer, element count) of each output buffer *)
  check : Memory.t -> (unit, string) result;
      (** host-reference validation of the outputs *)
}

(** Absolute tolerance for fp32 reductions: the device-order and
    host-order sums differ by rounding. *)
let float_tol = 1e-2

let check_floats ~what ~(expect : float array) (got : float array) :
    (unit, string) result =
  if Array.length expect <> Array.length got then
    Error
      (Fmt.str "%s: length mismatch (%d vs %d)" what (Array.length expect)
         (Array.length got))
  else begin
    let bad = ref None in
    Array.iteri
      (fun i e ->
        if !bad = None then
          let g = got.(i) in
          let scale = Float.max 1.0 (Float.abs e) in
          if Float.abs (e -. g) > float_tol *. scale then
            bad := Some (i, e, g))
      expect;
    match !bad with
    | None -> Ok ()
    | Some (i, e, g) ->
        Error (Fmt.str "%s[%d]: expected %.6f, got %.6f" what i e g)
  end

let check_int32s ~what ~(expect : int32 array) (got : int32 array) :
    (unit, string) result =
  if Array.length expect <> Array.length got then
    Error
      (Fmt.str "%s: length mismatch (%d vs %d)" what (Array.length expect)
         (Array.length got))
  else begin
    let bad = ref None in
    Array.iteri
      (fun i e -> if !bad = None && e <> got.(i) then bad := Some (i, e, got.(i)))
      expect;
    match !bad with
    | None -> Ok ()
    | Some (i, e, g) -> Error (Fmt.str "%s[%d]: expected %ld, got %ld" what i e g)
  end

let check_int64s ~what ~(expect : int64 array) (got : int64 array) :
    (unit, string) result =
  if Array.length expect <> Array.length got then
    Error
      (Fmt.str "%s: length mismatch (%d vs %d)" what (Array.length expect)
         (Array.length got))
  else begin
    let bad = ref None in
    Array.iteri
      (fun i e -> if !bad = None && e <> got.(i) then bad := Some (i, e, got.(i)))
      expect;
    match !bad with
    | None -> Ok ()
    | Some (i, e, g) ->
        Error (Fmt.str "%s[%d]: expected %Lx, got %Lx" what i e g)
  end

let iv n = Value.Int (Int32.of_int n)
let fv x = Value.Float (Value.f32 x)

(** The default grid used across the corpus: every benchmark kernel (and
    hence every fusable pair) launches this many blocks, several waves
    per simulated SM on both device models. *)
let default_grid = 96

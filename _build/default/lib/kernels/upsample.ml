(* Upsample — 2-D bilinear upsampling, modelled on PyTorch's
   [upsample_bilinear2d_out_frame] (used by BigGAN/UVC-style models).
   Each thread computes one output pixel from four input neighbours with
   fp32 interpolation weights: a mix of memory traffic and floating-point
   arithmetic. *)

open Cuda
open Gpusim

let source =
  {|
__global__ void upsample(float* output, float* input,
                         int channels, int iheight, int iwidth,
                         int oheight, int owidth,
                         float rheight, float rwidth, int total) {
  for (int index = blockIdx.x * blockDim.x + threadIdx.x; index < total;
       index += blockDim.x * gridDim.x) {
    int ow = index % owidth;
    int oh = index / owidth % oheight;
    int nc = index / owidth / oheight;
    float h1r = rheight * oh;
    int h1 = (int)h1r;
    int h1p = (h1 < iheight - 1 ? 1 : 0);
    float h1lambda = h1r - h1;
    float h0lambda = 1.0f - h1lambda;
    float w1r = rwidth * ow;
    int w1 = (int)w1r;
    int w1p = (w1 < iwidth - 1 ? 1 : 0);
    float w1lambda = w1r - w1;
    float w0lambda = 1.0f - w1lambda;
    int base = (nc * iheight + h1) * iwidth + w1;
    float val = h0lambda * (w0lambda * input[base]
                            + w1lambda * input[base + w1p])
              + h1lambda * (w0lambda * input[base + h1p * iwidth]
                            + w1lambda * input[base + h1p * iwidth + w1p]);
    output[index] = val;
  }
}
|}

let geometry ~size =
  let nbatch = 2 and channels = 4 in
  let iwidth = 8 * max 1 size and iheight = 8 in
  let owidth = 2 * iwidth and oheight = 2 * iheight in
  (nbatch, channels, iheight, iwidth, oheight, owidth)

let ratio ~src ~dst =
  if dst <= 1 then 0.0
  else float_of_int (src - 1) /. float_of_int (dst - 1)

let host_reference ~input ~geometry:(nbatch, channels, ih, iw, oh, ow) :
    float array =
  let rh = Value.f32 (ratio ~src:ih ~dst:oh) in
  let rw = Value.f32 (ratio ~src:iw ~dst:ow) in
  let total = nbatch * channels * oh * ow in
  Array.init total (fun index ->
      let w0 = index mod ow in
      let h0 = index / ow mod oh in
      let nc = index / ow / oh in
      let h1r = Value.f32 (rh *. float_of_int h0) in
      let h1 = int_of_float h1r in
      let h1p = if h1 < ih - 1 then 1 else 0 in
      let h1l = Value.f32 (h1r -. float_of_int h1) in
      let h0l = Value.f32 (1.0 -. h1l) in
      let w1r = Value.f32 (rw *. float_of_int w0) in
      let w1 = int_of_float w1r in
      let w1p = if w1 < iw - 1 then 1 else 0 in
      let w1l = Value.f32 (w1r -. float_of_int w1) in
      let w0l = Value.f32 (1.0 -. w1l) in
      let base = ((nc * ih) + h1) * iw + w1 in
      let v =
        (h0l *. ((w0l *. input.(base)) +. (w1l *. input.(base + w1p))))
        +. h1l
           *. ((w0l *. input.(base + (h1p * iw)))
              +. (w1l *. input.(base + (h1p * iw) + w1p)))
      in
      Value.f32 v)

let instantiate (mem : Memory.t) ~size : Workload.instance =
  let ((nbatch, channels, ih, iw, oh, ow) as geo) = geometry ~size in
  let total_in = nbatch * channels * ih * iw in
  let total_out = nbatch * channels * oh * ow in
  let rng = Prng.create (0x0B5A + size) in
  let input_data = Prng.float_array rng total_in ~lo:(-1.0) ~hi:1.0 in
  let input = Memory.alloc mem ~name:"upsample.input" ~elem:Ctype.Float ~count:total_in in
  Memory.fill_floats mem input input_data;
  let output =
    Memory.alloc mem ~name:"upsample.output" ~elem:Ctype.Float ~count:total_out
  in
  let expect = host_reference ~input:input_data ~geometry:geo in
  {
    Workload.args =
      [
        Value.Ptr output; Value.Ptr input; Workload.iv channels;
        Workload.iv ih; Workload.iv iw; Workload.iv oh; Workload.iv ow;
        Workload.fv (ratio ~src:ih ~dst:oh); Workload.fv (ratio ~src:iw ~dst:ow);
        Workload.iv total_out;
      ];
    grid = Workload.default_grid;
    smem_dynamic = 0;
    outputs = [ ("upsample.output", output, total_out) ];
    check =
      (fun mem ->
        Workload.check_floats ~what:"upsample.output" ~expect
          (Memory.read_floats mem output total_out));
  }

let spec : Spec.t =
  {
    Spec.name = "Upsample";
    kind = Spec.Deep_learning;
    source;
    regs = 56;
    native_block = (256, 1, 1);
    tunability = Hfuse_core.Kernel_info.Tunable { multiple_of = 32 };
    default_size = 8;
    instantiate;
  }

(* Ethash — the memory-hard proof-of-work of Ethereum, modelled on
   ethminer's search kernel.  The defining behaviour is the inner loop's
   data-dependent DAG lookups: every round reads a 32-byte row of a
   multi-megabyte dataset at a pseudo-random index, so the kernel is
   dominated by uncoalesced global-memory latency (96% memory stalls in
   Fig. 8 — the best fusion partner in the paper's evaluation).

   Substitution note (DESIGN.md): the real 4 GB DAG is replaced by a
   synthetic SplitMix64-filled dataset of configurable size; the access
   pattern (FNV-mixed data-dependent row reads) is the same code path.
   The keccak stages are folded into an FNV-based seed expansion — they
   are compute prologue/epilogue an order of magnitude smaller than the
   DAG walk. *)

open Cuda
open Gpusim

let source =
  {|
__device__ uint32_t fnv(uint32_t a, uint32_t b) {
  return (a * 16777619u) ^ b;
}

__global__ void ethash(uint32_t* result, uint32_t* dag,
                       int dag_rows, uint32_t seed, int iters) {
  int gid = blockIdx.x * blockDim.x + threadIdx.x;
  uint32_t mix[8];
  uint32_t acc = 2166136261u;
  for (int it = 0; it < iters; it++) {
    uint32_t nonce = seed + (uint32_t)gid * 2654435761u + (uint32_t)it;
    for (int i = 0; i < 8; i++) {
      mix[i] = fnv(nonce ^ ((uint32_t)i * 2654435761u), 2166136261u + (uint32_t)i);
    }
    for (int round = 0; round < 16; round++) {
      uint32_t p = fnv((uint32_t)round ^ mix[round % 8], mix[(round + 1) % 8])
                   % (uint32_t)dag_rows * 8u;
      for (int i = 0; i < 8; i++) {
        mix[i] = fnv(mix[i], dag[p + (uint32_t)i]);
      }
    }
    for (int i = 0; i < 8; i++) { acc = fnv(acc, mix[i]); }
  }
  result[gid] = acc;
}
|}

(* host mirror of the u32 arithmetic *)
let ( *% ) a b = Int32.mul a b
let ( ^% ) a b = Int32.logxor a b
let ( +% ) a b = Int32.add a b
let fnv a b = (a *% 16777619l) ^% b
let u32_rem a b = Int32.unsigned_rem a b

let dag_rows = 8192 (* 8192 rows x 8 u32 = 256 KiB synthetic DAG *)

let host_reference ~dag ~threads ~seed ~iters : int32 array =
  Array.init threads (fun gid ->
      let acc = ref 0x811c9dc5l in
      for it = 0 to iters - 1 do
        let nonce =
          seed +% (Int32.of_int gid *% 0x9e3779b1l) +% Int32.of_int it
        in
        let mix =
          Array.init 8 (fun i ->
              fnv
                (nonce ^% (Int32.of_int i *% 0x9e3779b1l))
                (0x811c9dc5l +% Int32.of_int i))
        in
        for round = 0 to 15 do
          let p =
            Int32.to_int
              (u32_rem
                 (fnv
                    (Int32.of_int round ^% mix.(round mod 8))
                    mix.((round + 1) mod 8))
                 (Int32.of_int dag_rows))
            * 8
          in
          for i = 0 to 7 do
            mix.(i) <- fnv mix.(i) dag.(p + i)
          done
        done;
        for i = 0 to 7 do
          acc := fnv !acc mix.(i)
        done
      done;
      !acc)

let block_threads = 128

let instantiate (mem : Memory.t) ~size : Workload.instance =
  let iters = max 1 size in
  let rng = Prng.create 0xE7A5 in
  let dag_data = Array.init (dag_rows * 8) (fun _ -> Prng.next_u32 rng) in
  let dag = Memory.alloc mem ~name:"ethash.dag" ~elem:Ctype.UInt ~count:(dag_rows * 8) in
  Memory.fill_int32s mem dag dag_data;
  let threads = Workload.default_grid * block_threads in
  let result = Memory.alloc mem ~name:"ethash.result" ~elem:Ctype.UInt ~count:threads in
  let seed = 0x5EED0001l in
  let expect = host_reference ~dag:dag_data ~threads ~seed ~iters in
  {
    Workload.args =
      [
        Value.Ptr result; Value.Ptr dag; Workload.iv dag_rows;
        Value.UInt seed; Workload.iv iters;
      ];
    grid = Workload.default_grid;
    smem_dynamic = 0;
    outputs = [ ("ethash.result", result, threads) ];
    check =
      (fun mem ->
        Workload.check_int32s ~what:"ethash.result" ~expect
          (Memory.read_int32s mem result threads));
  }

let spec : Spec.t =
  {
    Spec.name = "Ethash";
    kind = Spec.Crypto;
    source;
    regs = 64;
    native_block = (block_threads, 1, 1);
    tunability = Hfuse_core.Kernel_info.Fixed;
    default_size = 2;
    instantiate;
  }

(* The benchmark corpus: the paper's 5 deep-learning + 4 crypto kernels
   (Section IV-A), and the 10 + 6 benchmark pairs formed from them. *)

let all : Spec.t list =
  [
    Maxpool.spec;
    Batchnorm.spec;
    Upsample.spec;
    Im2col.spec;
    Hist.spec;
    Ethash.spec;
    Sha256.spec;
    Blake256.spec;
    Blake2b.spec;
  ]

let deep_learning =
  List.filter (fun (s : Spec.t) -> s.kind = Spec.Deep_learning) all

let crypto = List.filter (fun (s : Spec.t) -> s.kind = Spec.Crypto) all

let find (name : string) : Spec.t option =
  List.find_opt
    (fun (s : Spec.t) ->
      String.lowercase_ascii s.name = String.lowercase_ascii name)
    all

let find_exn name =
  match find name with
  | Some s -> s
  | None ->
      invalid_arg
        (Fmt.str "unknown kernel %s (known: %a)" name
           Fmt.(list ~sep:comma string)
           (List.map (fun (s : Spec.t) -> s.name) all))

(** All unordered pairs within a kind — the 10 deep-learning and 6 crypto
    benchmark pairs of the evaluation. *)
let pairs_of (specs : Spec.t list) : (Spec.t * Spec.t) list =
  let rec go = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ go rest
  in
  go specs

let dl_pairs = pairs_of deep_learning
let crypto_pairs = pairs_of crypto
let all_pairs = dl_pairs @ crypto_pairs

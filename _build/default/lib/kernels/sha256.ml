(* SHA256 — the SHA-256 compression function iterated over
   nonce-derived messages, modelled on ccminer's sha256d search kernel.
   Compute-intensive: long dependent chains of 32-bit ALU work (rotates,
   xors, adds), essentially no memory traffic (Fig. 8: 0% memory
   stalls).

   As in the miners, the 64 rounds are fully unrolled — here the
   unrolled source is *generated* (the miners use macros), with the
   message schedule kept in a rolling 16-word window. *)

open Cuda
open Gpusim

let k_constants =
  [|
    0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl;
    0x59f111f1l; 0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l;
    0x243185bel; 0x550c7dc3l; 0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l;
    0xc19bf174l; 0xe49b69c1l; 0xefbe4786l; 0x0fc19dc6l; 0x240ca1ccl;
    0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal; 0x983e5152l;
    0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
    0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl;
    0x53380d13l; 0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l;
    0xa2bfe8a1l; 0xa81a664bl; 0xc24b8b70l; 0xc76c51a3l; 0xd192e819l;
    0xd6990624l; 0xf40e3585l; 0x106aa070l; 0x19a4c116l; 0x1e376c08l;
    0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al; 0x5b9cca4fl;
    0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
    0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l;
  |]

let h_init =
  [|
    0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al; 0x510e527fl;
    0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l;
  |]

let u32_lit (x : int32) =
  Printf.sprintf "%luu" x

(* -- generated source ---------------------------------------------- *)

let source =
  let b = Buffer.create 32768 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add
    "__global__ void sha256(uint32_t* result, uint32_t seed, int iters) {\n";
  add "  int gid = blockIdx.x * blockDim.x + threadIdx.x;\n";
  add "  uint32_t w[16];\n";
  add "  uint32_t acc = 2166136261u;\n";
  add "  for (int it = 0; it < iters; it++) {\n";
  add
    "    uint32_t x = seed + (uint32_t)gid * 2654435761u + (uint32_t)it;\n";
  add "    for (int i = 0; i < 16; i++) {\n";
  add "      x = x * 1664525u + 1013904223u;\n";
  add "      w[i] = x;\n";
  add "    }\n";
  Array.iteri
    (fun i h -> add "    uint32_t %c = %s;\n" (Char.chr (Char.code 'a' + i))
        (u32_lit h))
    h_init;
  add "    uint32_t t1;\n    uint32_t t2;\n";
  for i = 0 to 63 do
    add "    // round %d\n" i;
    if i >= 16 then begin
      (* rolling message schedule *)
      let w j = Printf.sprintf "w[%d]" (j land 15) in
      add
        "    %s = %s + (rotr32(%s, 7) ^ rotr32(%s, 18) ^ (%s >> 3)) + %s + \
         (rotr32(%s, 17) ^ rotr32(%s, 19) ^ (%s >> 10));\n"
        (w i) (w i)
        (w (i + 1)) (w (i + 1)) (w (i + 1))
        (w (i + 9))
        (w (i + 14)) (w (i + 14)) (w (i + 14))
    end;
    add
      "    t1 = h + (rotr32(e, 6) ^ rotr32(e, 11) ^ rotr32(e, 25)) + ((e & \
       f) ^ (~e & g)) + %s + w[%d];\n"
      (u32_lit k_constants.(i))
      (i land 15);
    add
      "    t2 = (rotr32(a, 2) ^ rotr32(a, 13) ^ rotr32(a, 22)) + ((a & b) ^ \
       (a & c) ^ (b & c));\n";
    add "    h = g; g = f; f = e; e = d + t1; d = c; c = b; b = a; a = t1 + t2;\n"
  done;
  add "    acc = (acc * 16777619u) ^ (a + %s) ^ (e + %s);\n"
    (u32_lit h_init.(0)) (u32_lit h_init.(4));
  add "  }\n";
  add "  result[gid] = acc;\n";
  add "}\n";
  Buffer.contents b

(* -- host reference -------------------------------------------------- *)

let ( +% ) = Int32.add
let ( ^% ) = Int32.logxor
let ( &% ) = Int32.logand
let ( *% ) = Int32.mul

let rotr32 x n =
  Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))

let shr x n = Int32.shift_right_logical x n

let compress (w0 : int32 array) : int32 * int32 =
  let w = Array.copy w0 in
  let a = ref h_init.(0) and bb = ref h_init.(1) and c = ref h_init.(2) in
  let d = ref h_init.(3) and e = ref h_init.(4) and f = ref h_init.(5) in
  let g = ref h_init.(6) and h = ref h_init.(7) in
  for i = 0 to 63 do
    if i >= 16 then begin
      let s0 =
        rotr32 w.((i + 1) land 15) 7
        ^% rotr32 w.((i + 1) land 15) 18
        ^% shr w.((i + 1) land 15) 3
      in
      let s1 =
        rotr32 w.((i + 14) land 15) 17
        ^% rotr32 w.((i + 14) land 15) 19
        ^% shr w.((i + 14) land 15) 10
      in
      w.(i land 15) <- w.(i land 15) +% s0 +% w.((i + 9) land 15) +% s1
    end;
    let s1e = rotr32 !e 6 ^% rotr32 !e 11 ^% rotr32 !e 25 in
    let ch = (!e &% !f) ^% (Int32.lognot !e &% !g) in
    let t1 = !h +% s1e +% ch +% k_constants.(i) +% w.(i land 15) in
    let s0a = rotr32 !a 2 ^% rotr32 !a 13 ^% rotr32 !a 22 in
    let maj = (!a &% !bb) ^% (!a &% !c) ^% (!bb &% !c) in
    let t2 = s0a +% maj in
    h := !g;
    g := !f;
    f := !e;
    e := !d +% t1;
    d := !c;
    c := !bb;
    bb := !a;
    a := t1 +% t2
  done;
  (!a, !e)

let host_reference ~threads ~seed ~iters : int32 array =
  Array.init threads (fun gid ->
      let acc = ref 0x811c9dc5l in
      for it = 0 to iters - 1 do
        let x =
          ref (seed +% (Int32.of_int gid *% 0x9e3779b1l) +% Int32.of_int it)
        in
        let w =
          Array.init 16 (fun _ ->
              x := (!x *% 1664525l) +% 1013904223l;
              !x)
        in
        let a, e = compress w in
        acc := (!acc *% 16777619l) ^% (a +% h_init.(0)) ^% (e +% h_init.(4))
      done;
      !acc)

let block_threads = 256

let instantiate (mem : Memory.t) ~size : Workload.instance =
  let iters = max 1 size in
  let threads = Workload.default_grid * block_threads in
  let result = Memory.alloc mem ~name:"sha256.result" ~elem:Ctype.UInt ~count:threads in
  let seed = 0x5EED0002l in
  let expect = host_reference ~threads ~seed ~iters in
  {
    Workload.args = [ Value.Ptr result; Value.UInt seed; Workload.iv iters ];
    grid = Workload.default_grid;
    smem_dynamic = 0;
    outputs = [ ("sha256.result", result, threads) ];
    check =
      (fun mem ->
        Workload.check_int32s ~what:"sha256.result" ~expect
          (Memory.read_int32s mem result threads));
  }

let spec : Spec.t =
  {
    Spec.name = "SHA256";
    kind = Spec.Crypto;
    source;
    regs = 72;
    native_block = (block_threads, 1, 1);
    tunability = Hfuse_core.Kernel_info.Fixed;
    default_size = 2;
    instantiate;
  }

(** SplitMix64 — deterministic input generation.  Every workload is
    generated from an explicit seed so runs are exactly reproducible
    (the harness never touches the global [Random]). *)

type t

val create : int -> t
val next_u64 : t -> int64
val next_u32 : t -> int32

(** Uniform in [0, bound). @raise Invalid_argument when [bound <= 0]. *)
val next_int : t -> bound:int -> int

(** Uniform in [0, 1). *)
val next_float : t -> float

val next_float_in : t -> lo:float -> hi:float -> float
val float_array : t -> int -> lo:float -> hi:float -> float array
val int32_array : t -> int -> bound:int -> int32 array
val int64_array : t -> int -> int64 array

(* Hist — [kernelHistogram1D] from PyTorch, the kernel of the paper's
   Fig. 3.  Builds a shared-memory histogram of an input tensor's value
   distribution with [atomicAdd], then flushes the shared counters to the
   global output.  Very high occupancy, almost no memory stalls
   (Fig. 8): the atomics are shared-memory and the input pass is
   perfectly coalesced. *)

open Cuda
open Gpusim

let source =
  {|
__global__ void hist(int* a, float* b, int nbins,
                     float minvalue, float maxvalue, int totalElements,
                     uint64_t bstride) {
  extern __shared__ unsigned char my_smem[];
  int* smem = (int*)my_smem;
  // PART A: initialise shared counters
  for (int i = threadIdx.x; i < nbins; i += blockDim.x) { smem[i] = 0; }
  __syncthreads();
  // PART B: accumulate into shared counters
  for (int linearIndex = blockIdx.x * blockDim.x + threadIdx.x;
       linearIndex < totalElements;
       linearIndex += gridDim.x * blockDim.x) {
    // IndexToOffset-style strided access (64-bit index arithmetic)
    uint64_t bOffset = (uint64_t)linearIndex * bstride;
    float bVal = b[bOffset];
    if (bVal >= minvalue && bVal <= maxvalue) {
      int bin = (int)((bVal - minvalue) / (maxvalue - minvalue) * nbins);
      if (bin == nbins) { bin = bin - 1; }
      atomicAdd(&smem[bin], 1);
    }
  }
  __syncthreads();
  // PART C: flush shared counters to the global histogram
  for (int i = threadIdx.x; i < nbins; i += blockDim.x) {
    atomicAdd(&a[i], smem[i]);
  }
}
|}

let nbins = 64
let minvalue = -2.0
let maxvalue = 2.0

let geometry ~size =
  let total = 2048 * max 1 size in
  total

let host_reference ~input : int32 array =
  let h = Array.make nbins 0l in
  Array.iter
    (fun v ->
      let v = Value.f32 v in
      if v >= Value.f32 minvalue && v <= Value.f32 maxvalue then begin
        (* mirror the device's fp32 rounding at every step *)
        let num = Value.f32 (v -. Value.f32 minvalue) in
        let den = Value.f32 (Value.f32 maxvalue -. Value.f32 minvalue) in
        let q = Value.f32 (num /. den) in
        let bin = int_of_float (Value.f32 (q *. float_of_int nbins)) in
        let bin = if bin = nbins then bin - 1 else bin in
        h.(bin) <- Int32.add h.(bin) 1l
      end)
    input;
  h

let instantiate (mem : Memory.t) ~size : Workload.instance =
  let total = geometry ~size in
  let rng = Prng.create (0x4157 + size) in
  (* activation-like bell-shaped values (sum of three uniforms): most
     mass lands in the central bins, so warp atomics conflict heavily —
     the regime the real tensor-value histogram runs in *)
  let input_data =
    Array.init total (fun _ ->
        let u () = Prng.next_float_in rng ~lo:(-1.0) ~hi:1.0 in
        let v = (u () +. u () +. u ()) *. 0.85 in
        v)
  in
  let b = Memory.alloc mem ~name:"hist.b" ~elem:Ctype.Float ~count:total in
  Memory.fill_floats mem b input_data;
  let a = Memory.alloc mem ~name:"hist.a" ~elem:Ctype.Int ~count:nbins in
  let expect = host_reference ~input:input_data in
  {
    Workload.args =
      [
        Value.Ptr a; Value.Ptr b; Workload.iv nbins; Workload.fv minvalue;
        Workload.fv maxvalue; Workload.iv total; Value.ULong 1L;
      ];
    grid = Workload.default_grid;
    smem_dynamic = nbins * 4;
    outputs = [ ("hist.a", a, nbins) ];
    check =
      (fun mem ->
        Workload.check_int32s ~what:"hist.a" ~expect
          (Memory.read_int32s mem a nbins));
  }

let spec : Spec.t =
  {
    Spec.name = "Hist";
    kind = Spec.Deep_learning;
    source;
    regs = 24;
    native_block = (128, 1, 1);
    tunability = Hfuse_core.Kernel_info.Tunable { multiple_of = 32 };
    default_size = 12;
    instantiate;
  }

(* Blake2B — the BLAKE2b compression function iterated over
   nonce-derived messages, as in ccminer's sia/blake2b kernels.
   Compute-intensive 64-bit ALU work (each 64-bit op costs two 32-bit
   register lanes on the device): 12 rounds of 8 G functions, unrolled
   with literal sigma indices. *)

open Cuda
open Gpusim

let sigma = Blake256.sigma (* BLAKE2b uses the same 10 sigma rows *)

let iv =
  [|
    0x6a09e667f3bcc908L; 0xbb67ae8584caa73bL; 0x3c6ef372fe94f82bL;
    0xa54ff53a5f1d36f1L; 0x510e527fade682d1L; 0x9b05688c2b3e6c1fL;
    0x1f83d9abfb41bd6bL; 0x5be0cd19137e2179L;
  |]

let rounds = 12
let g_schedule = Blake256.g_schedule

let u64_lit (x : int64) = Printf.sprintf "%Luull" x

let source =
  let b = Buffer.create 65536 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "__global__ void blake2b(uint64_t* result, uint64_t seed, int iters) {\n";
  add "  int gid = blockIdx.x * blockDim.x + threadIdx.x;\n";
  add "  uint64_t m[16];\n  uint64_t v[16];\n";
  add "  uint64_t acc = 14695981039346656037ull;\n";
  add "  for (int it = 0; it < iters; it++) {\n";
  add
    "    uint64_t x = seed + (uint64_t)gid * 11400714819323198485ull + \
     (uint64_t)it;\n";
  add "    for (int i = 0; i < 16; i++) {\n";
  add
    "      x = x * 6364136223846793005ull + 1442695040888963407ull;\n\
    \      m[i] = x;\n    }\n";
  for i = 0 to 7 do
    add "    v[%d] = %s;\n" i (u64_lit iv.(i))
  done;
  for i = 0 to 7 do
    add "    v[%d] = %s;\n" (8 + i) (u64_lit iv.(i))
  done;
  (* t = 128 input bytes; final-block flag inverts v[14] *)
  add "    v[12] = v[12] ^ 128ull;\n";
  add "    v[14] = ~v[14];\n";
  for r = 0 to rounds - 1 do
    let s = sigma.(r mod 10) in
    add "    // round %d\n" r;
    Array.iteri
      (fun gi (a, bb, c, d) ->
        let mx = s.(2 * gi) and my = s.((2 * gi) + 1) in
        add "    v[%d] = v[%d] + v[%d] + m[%d];\n" a a bb mx;
        add "    v[%d] = rotr64(v[%d] ^ v[%d], 32);\n" d d a;
        add "    v[%d] = v[%d] + v[%d];\n" c c d;
        add "    v[%d] = rotr64(v[%d] ^ v[%d], 24);\n" bb bb c;
        add "    v[%d] = v[%d] + v[%d] + m[%d];\n" a a bb my;
        add "    v[%d] = rotr64(v[%d] ^ v[%d], 16);\n" d d a;
        add "    v[%d] = v[%d] + v[%d];\n" c c d;
        add "    v[%d] = rotr64(v[%d] ^ v[%d], 63);\n" bb bb c)
      g_schedule
  done;
  add "    for (int i = 0; i < 8; i++) {\n";
  add
    "      acc = (acc * 1099511628211ull) ^ (%s ^ v[i] ^ v[i + 8]);\n    }\n"
    "1442695040888963407ull";
  add "  }\n";
  add "  result[gid] = acc;\n}\n";
  Buffer.contents b

(* -- host reference -------------------------------------------------- *)

let ( +% ) = Int64.add
let ( ^% ) = Int64.logxor
let ( *% ) = Int64.mul

let rotr64 x n =
  Int64.logor (Int64.shift_right_logical x n) (Int64.shift_left x (64 - n))

let compress (m : int64 array) : int64 array =
  let v = Array.make 16 0L in
  Array.blit iv 0 v 0 8;
  Array.blit iv 0 v 8 8;
  v.(12) <- v.(12) ^% 128L;
  v.(14) <- Int64.lognot v.(14);
  for r = 0 to rounds - 1 do
    let s = sigma.(r mod 10) in
    Array.iteri
      (fun gi (a, b, c, d) ->
        let mx = s.(2 * gi) and my = s.((2 * gi) + 1) in
        v.(a) <- v.(a) +% v.(b) +% m.(mx);
        v.(d) <- rotr64 (v.(d) ^% v.(a)) 32;
        v.(c) <- v.(c) +% v.(d);
        v.(b) <- rotr64 (v.(b) ^% v.(c)) 24;
        v.(a) <- v.(a) +% v.(b) +% m.(my);
        v.(d) <- rotr64 (v.(d) ^% v.(a)) 16;
        v.(c) <- v.(c) +% v.(d);
        v.(b) <- rotr64 (v.(b) ^% v.(c)) 63)
      g_schedule
  done;
  v

let host_reference ~threads ~seed ~iters : int64 array =
  Array.init threads (fun gid ->
      let acc = ref 0xCBF29CE484222325L in
      for it = 0 to iters - 1 do
        let x =
          ref
            (seed
            +% (Int64.of_int gid *% 0x9E3779B97F4A7C15L)
            +% Int64.of_int it)
        in
        let m =
          Array.init 16 (fun _ ->
              x := (!x *% 6364136223846793005L) +% 1442695040888963407L;
              !x)
        in
        let v = compress m in
        for i = 0 to 7 do
          acc :=
            (!acc *% 1099511628211L)
            ^% (1442695040888963407L ^% v.(i) ^% v.(i + 8))
        done
      done;
      !acc)

let block_threads = 256

let instantiate (mem : Memory.t) ~size : Workload.instance =
  let iters = max 1 size in
  let threads = Workload.default_grid * block_threads in
  let result = Memory.alloc mem ~name:"blake2b.result" ~elem:Ctype.ULong ~count:threads in
  let seed = 0x5EED000000000004L in
  let expect = host_reference ~threads ~seed ~iters in
  {
    Workload.args =
      [ Value.Ptr result; Value.ULong seed; Workload.iv iters ];
    grid = Workload.default_grid;
    smem_dynamic = 0;
    outputs = [ ("blake2b.result", result, threads) ];
    check =
      (fun mem ->
        Workload.check_int64s ~what:"blake2b.result" ~expect
          (Memory.read_int64s mem result threads));
  }

let spec : Spec.t =
  {
    Spec.name = "Blake2B";
    kind = Spec.Crypto;
    source;
    regs = 64;
    native_block = (block_threads, 1, 1);
    tunability = Hfuse_core.Kernel_info.Fixed;
    default_size = 2;
    instantiate;
  }

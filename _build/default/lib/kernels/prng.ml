(* SplitMix64 — deterministic input generation.

   Every workload in the corpus is generated from an explicit seed so
   that runs are exactly reproducible across machines and sessions (the
   harness never touches the global [Random] state). *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_u64 (t : t) : int64 =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_u32 t : int32 = Int64.to_int32 (next_u64 t)

(** Uniform int in [0, bound). *)
let next_int t ~bound =
  if bound <= 0 then invalid_arg "Prng.next_int: bound <= 0";
  Int64.to_int (Int64.unsigned_rem (next_u64 t) (Int64.of_int bound))

(** Uniform float in [0, 1). *)
let next_float t =
  let bits = Int64.shift_right_logical (next_u64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0

(** Uniform float in [lo, hi). *)
let next_float_in t ~lo ~hi = lo +. ((hi -. lo) *. next_float t)

let float_array t n ~lo ~hi =
  Array.init n (fun _ -> next_float_in t ~lo ~hi)

let int32_array t n ~bound =
  Array.init n (fun _ -> Int32.of_int (next_int t ~bound))

let int64_array t n = Array.init n (fun _ -> next_u64 t)

(** Workload plumbing shared by the nine benchmark kernels. *)

(** A kernel workload bound to buffers in a specific memory. *)
type instance = {
  args : Gpusim.Value.t list;  (** positional kernel arguments *)
  grid : int;
  smem_dynamic : int;
  outputs : (string * Gpusim.Value.ptr * int) list;
      (** (name, pointer, element count) per output buffer *)
  check : Gpusim.Memory.t -> (unit, string) result;
      (** host-reference validation of the outputs *)
}

(** Absolute/relative tolerance for fp32 reductions (device and host
    reduction orders differ). *)
val float_tol : float

val check_floats :
  what:string -> expect:float array -> float array -> (unit, string) result

val check_int32s :
  what:string -> expect:int32 array -> int32 array -> (unit, string) result

val check_int64s :
  what:string -> expect:int64 array -> int64 array -> (unit, string) result

val iv : int -> Gpusim.Value.t
val fv : float -> Gpusim.Value.t

(** Grid used across the corpus: several waves per simulated SM on both
    device models, shared by every fusable pair. *)
val default_grid : int

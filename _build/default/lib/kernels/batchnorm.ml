(* Batchnorm — [batch_norm_collect_statistics] from PyTorch, the kernel
   of the paper's Fig. 2 (used by ResNet).  Computes per-plane mean and
   (biased) variance of an (N, C, W) tensor with Welford accumulation,
   intra-warp shuffle reduction, a shared-memory stage, and a final
   first-warp reduction — three partial barriers once fused.

   The block is 2-D: threadIdx.y walks the batch dimension, threadIdx.x
   the spatial one, exactly as the original. *)

open Cuda
open Gpusim

let source =
  {|
#define WARP_SIZE 32
__global__ void batchnorm(float* input, int N, int C, int W,
                          uint64_t stride_n, uint64_t stride_c,
                          uint64_t stride_w,
                          float* save_mean, float* save_var) {
  __shared__ int shared_n[WARP_SIZE];
  __shared__ float shared_avg_var[2 * WARP_SIZE];
  int plane = blockIdx.x;
  int tid = threadIdx.x + threadIdx.y * blockDim.x;
  float avg = 0.0f;
  float var_n = 0.0f;
  int n = 0;
  // PART A: per-thread Welford over the plane, then intra-warp merge
  for (int batch = threadIdx.y; batch < N; batch += blockDim.y) {
    for (int x = threadIdx.x; x < W; x += blockDim.x) {
      // PyTorch-style strided accessor: 64-bit index arithmetic
      float v = input[(uint64_t)batch * stride_n
                      + (uint64_t)plane * stride_c
                      + (uint64_t)x * stride_w];
      float d1 = v - avg;
      n++;
      avg += d1 / n;
      var_n += d1 * (v - avg);
    }
  }
  for (int i = 0; i < getMSB(WARP_SIZE); ++i) {
    float o_avg = WARP_SHFL_XOR(avg, 1 << i, WARP_SIZE);
    int o_n = WARP_SHFL_XOR(n, 1 << i, WARP_SIZE);
    float factor = 1.0f / fmaxf(1.0f, n + o_n);
    var_n += WARP_SHFL_XOR(var_n, 1 << i, WARP_SIZE)
             + (avg - o_avg) * (avg - o_avg) * n * o_n * factor;
    avg = (n * avg + o_n * o_avg) * factor;
    n += o_n;
  }
  __syncthreads();
  // PART B: warp leaders publish partial results
  if (tid % WARP_SIZE == 0) {
    shared_n[tid / WARP_SIZE] = n;
    shared_avg_var[tid / WARP_SIZE * 2] = avg;
    shared_avg_var[tid / WARP_SIZE * 2 + 1] = var_n;
  }
  __syncthreads();
  // PART C: first warp reduces the partials
  if (tid < WARP_SIZE) {
    n = (tid < blockDim.x * blockDim.y / WARP_SIZE ? shared_n[tid] : 0);
    avg = (tid < blockDim.x * blockDim.y / WARP_SIZE
               ? shared_avg_var[2 * tid] : 0.0f);
    var_n = (tid < blockDim.x * blockDim.y / WARP_SIZE
                 ? shared_avg_var[2 * tid + 1] : 0.0f);
    for (int i = 0; i < getMSB(WARP_SIZE); ++i) {
      float o_avg = WARP_SHFL_XOR(avg, 1 << i, WARP_SIZE);
      int o_n = WARP_SHFL_XOR(n, 1 << i, WARP_SIZE);
      float factor = 1.0f / fmaxf(1.0f, n + o_n);
      var_n += WARP_SHFL_XOR(var_n, 1 << i, WARP_SIZE)
               + (avg - o_avg) * (avg - o_avg) * n * o_n * factor;
      avg = (n * avg + o_n * o_avg) * factor;
      n += o_n;
    }
    if (tid == 0) {
      save_mean[plane] = avg;
      save_var[plane] = var_n / fmaxf(1.0f, n);
    }
  }
}
|}

(* [size] scales the spatial width W; the batch count is fixed.  The
   plane count equals the grid (one block per plane). *)
let geometry ~size =
  (* batch of 16 so every threadIdx.y row of the (x, 16) block is busy *)
  let n = 16 and c = Workload.default_grid in
  let w = 32 * max 1 size in
  (n, c, w)

let host_reference ~input ~geometry:(n, c, w) : float array * float array =
  let mean = Array.make c 0.0 and var = Array.make c 0.0 in
  for plane = 0 to c - 1 do
    let sum = ref 0.0 and count = n * w in
    for batch = 0 to n - 1 do
      for x = 0 to w - 1 do
        sum := !sum +. input.((((batch * c) + plane) * w) + x)
      done
    done;
    let m = !sum /. float_of_int count in
    let sq = ref 0.0 in
    for batch = 0 to n - 1 do
      for x = 0 to w - 1 do
        let d = input.((((batch * c) + plane) * w) + x) -. m in
        sq := !sq +. (d *. d)
      done
    done;
    mean.(plane) <- m;
    var.(plane) <- !sq /. float_of_int count
  done;
  (mean, var)

let instantiate (mem : Memory.t) ~size : Workload.instance =
  let ((n, c, w) as geo) = geometry ~size in
  let total = n * c * w in
  let rng = Prng.create (0xBA7C + size) in
  let input_data = Prng.float_array rng total ~lo:(-2.0) ~hi:2.0 in
  let input = Memory.alloc mem ~name:"batchnorm.input" ~elem:Ctype.Float ~count:total in
  Memory.fill_floats mem input input_data;
  let save_mean = Memory.alloc mem ~name:"batchnorm.mean" ~elem:Ctype.Float ~count:c in
  let save_var = Memory.alloc mem ~name:"batchnorm.var" ~elem:Ctype.Float ~count:c in
  let mean_e, var_e = host_reference ~input:input_data ~geometry:geo in
  {
    Workload.args =
      [
        Value.Ptr input; Workload.iv n; Workload.iv c; Workload.iv w;
        Value.ULong (Int64.of_int (c * w)); Value.ULong (Int64.of_int w);
        Value.ULong 1L; Value.Ptr save_mean; Value.Ptr save_var;
      ];
    grid = c;
    smem_dynamic = 0;
    outputs =
      [ ("batchnorm.mean", save_mean, c); ("batchnorm.var", save_var, c) ];
    check =
      (fun mem ->
        match
          Workload.check_floats ~what:"batchnorm.mean" ~expect:mean_e
            (Memory.read_floats mem save_mean c)
        with
        | Error _ as e -> e
        | Ok () ->
            Workload.check_floats ~what:"batchnorm.var" ~expect:var_e
              (Memory.read_floats mem save_var c));
  }

let spec : Spec.t =
  {
    Spec.name = "Batchnorm";
    kind = Spec.Deep_learning;
    source;
    regs = 32;
    (* 2-D native block, as in the paper's example: 32 x 16 = 512 *)
    native_block = (32, 16, 1);
    tunability = Hfuse_core.Kernel_info.Tunable { multiple_of = 32 };
    default_size = 12;
    instantiate;
  }

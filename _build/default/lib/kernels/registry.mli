(** The benchmark corpus: the paper's 5 deep-learning + 4 crypto kernels
    and the 10 + 6 evaluation pairs formed from them (Section IV-A). *)

val all : Spec.t list
val deep_learning : Spec.t list
val crypto : Spec.t list

(** Case-insensitive lookup. *)
val find : string -> Spec.t option

(** @raise Invalid_argument with the known names on a miss. *)
val find_exn : string -> Spec.t

val pairs_of : Spec.t list -> (Spec.t * Spec.t) list
val dl_pairs : (Spec.t * Spec.t) list
val crypto_pairs : (Spec.t * Spec.t) list
val all_pairs : (Spec.t * Spec.t) list

(* Blake256 — the BLAKE-256 compression function iterated over
   nonce-derived messages, as in ccminer's blake256 kernels
   (Decred/Vanilla).  Compute-intensive 32-bit ALU work; 14 rounds of 8
   G functions, fully unrolled with literal sigma indices (the miners
   unroll via macros, we generate the source). *)

open Cuda
open Gpusim

let sigma =
  [|
    [| 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 |];
    [| 14; 10; 4; 8; 9; 15; 13; 6; 1; 12; 0; 2; 11; 7; 5; 3 |];
    [| 11; 8; 12; 0; 5; 2; 15; 13; 10; 14; 3; 6; 7; 1; 9; 4 |];
    [| 7; 9; 3; 1; 13; 12; 11; 14; 2; 6; 5; 10; 4; 0; 15; 8 |];
    [| 9; 0; 5; 7; 2; 4; 10; 15; 14; 1; 11; 12; 6; 8; 3; 13 |];
    [| 2; 12; 6; 10; 0; 11; 8; 3; 4; 13; 7; 5; 15; 14; 1; 9 |];
    [| 12; 5; 1; 15; 14; 13; 4; 10; 0; 7; 6; 3; 9; 2; 8; 11 |];
    [| 13; 11; 7; 14; 12; 1; 3; 9; 5; 0; 15; 4; 8; 6; 2; 10 |];
    [| 6; 15; 14; 9; 11; 3; 0; 8; 12; 2; 13; 7; 1; 4; 10; 5 |];
    [| 10; 2; 8; 4; 7; 6; 1; 5; 15; 11; 9; 14; 3; 12; 13; 0 |];
  |]

let iv =
  [|
    0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al; 0x510e527fl;
    0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l;
  |]

let u256 =
  [|
    0x243f6a88l; 0x85a308d3l; 0x13198a2el; 0x03707344l; 0xa4093822l;
    0x299f31d0l; 0x082efa98l; 0xec4e6c89l; 0x452821e6l; 0x38d01377l;
    0xbe5466cfl; 0x34e90c6cl; 0xc0ac29b7l; 0xc97c50ddl; 0x3f84d5b5l;
    0xb5470917l;
  |]

let rounds = 14
let g_schedule = [| (0,4,8,12); (1,5,9,13); (2,6,10,14); (3,7,11,15);
                    (0,5,10,15); (1,6,11,12); (2,7,8,13); (3,4,9,14) |]

let u32_lit (x : int32) = Printf.sprintf "%luu" x

let source =
  let b = Buffer.create 65536 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "__global__ void blake256(uint32_t* result, uint32_t seed, int iters) {\n";
  add "  int gid = blockIdx.x * blockDim.x + threadIdx.x;\n";
  add "  uint32_t m[16];\n  uint32_t v[16];\n";
  add "  uint32_t acc = 2166136261u;\n";
  add "  for (int it = 0; it < iters; it++) {\n";
  add "    uint32_t x = seed + (uint32_t)gid * 2654435761u + (uint32_t)it;\n";
  add "    for (int i = 0; i < 16; i++) {\n";
  add "      x = x * 1664525u + 1013904223u;\n      m[i] = x;\n    }\n";
  for i = 0 to 7 do
    add "    v[%d] = %s;\n" i (u32_lit iv.(i))
  done;
  for i = 0 to 7 do
    add "    v[%d] = %s;\n" (8 + i) (u32_lit u256.(i))
  done;
  (* counter t = 512 bits folded into v12/v13 as in the real function *)
  add "    v[12] = v[12] ^ 512u;\n    v[13] = v[13] ^ 512u;\n";
  for r = 0 to rounds - 1 do
    let s = sigma.(r mod 10) in
    add "    // round %d\n" r;
    Array.iteri
      (fun gi (a, bb, c, d) ->
        let mx = s.(2 * gi) and my = s.((2 * gi) + 1) in
        add "    v[%d] = v[%d] + v[%d] + (m[%d] ^ %s);\n" a a bb mx
          (u32_lit u256.(my));
        add "    v[%d] = rotr32(v[%d] ^ v[%d], 16);\n" d d a;
        add "    v[%d] = v[%d] + v[%d];\n" c c d;
        add "    v[%d] = rotr32(v[%d] ^ v[%d], 12);\n" bb bb c;
        add "    v[%d] = v[%d] + v[%d] + (m[%d] ^ %s);\n" a a bb my
          (u32_lit u256.(mx));
        add "    v[%d] = rotr32(v[%d] ^ v[%d], 8);\n" d d a;
        add "    v[%d] = v[%d] + v[%d];\n" c c d;
        add "    v[%d] = rotr32(v[%d] ^ v[%d], 7);\n" bb bb c)
      g_schedule
  done;
  add "    for (int i = 0; i < 8; i++) {\n";
  add "      acc = (acc * 16777619u) ^ (v[i] ^ v[i + 8]);\n    }\n";
  add "  }\n";
  add "  result[gid] = acc;\n}\n";
  Buffer.contents b

(* -- host reference -------------------------------------------------- *)

let ( +% ) = Int32.add
let ( ^% ) = Int32.logxor
let ( *% ) = Int32.mul

let rotr32 x n =
  Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))

let compress (m : int32 array) : int32 array =
  let v = Array.make 16 0l in
  Array.blit iv 0 v 0 8;
  Array.blit u256 0 v 8 8;
  v.(12) <- v.(12) ^% 512l;
  v.(13) <- v.(13) ^% 512l;
  for r = 0 to rounds - 1 do
    let s = sigma.(r mod 10) in
    Array.iteri
      (fun gi (a, b, c, d) ->
        let mx = s.(2 * gi) and my = s.((2 * gi) + 1) in
        v.(a) <- v.(a) +% v.(b) +% (m.(mx) ^% u256.(my));
        v.(d) <- rotr32 (v.(d) ^% v.(a)) 16;
        v.(c) <- v.(c) +% v.(d);
        v.(b) <- rotr32 (v.(b) ^% v.(c)) 12;
        v.(a) <- v.(a) +% v.(b) +% (m.(my) ^% u256.(mx));
        v.(d) <- rotr32 (v.(d) ^% v.(a)) 8;
        v.(c) <- v.(c) +% v.(d);
        v.(b) <- rotr32 (v.(b) ^% v.(c)) 7)
      g_schedule
  done;
  v

let host_reference ~threads ~seed ~iters : int32 array =
  Array.init threads (fun gid ->
      let acc = ref 0x811c9dc5l in
      for it = 0 to iters - 1 do
        let x =
          ref (seed +% (Int32.of_int gid *% 0x9e3779b1l) +% Int32.of_int it)
        in
        let m =
          Array.init 16 (fun _ ->
              x := (!x *% 1664525l) +% 1013904223l;
              !x)
        in
        let v = compress m in
        for i = 0 to 7 do
          acc := (!acc *% 16777619l) ^% (v.(i) ^% v.(i + 8))
        done
      done;
      !acc)

let block_threads = 256

let instantiate (mem : Memory.t) ~size : Workload.instance =
  let iters = max 1 size in
  let threads = Workload.default_grid * block_threads in
  let result = Memory.alloc mem ~name:"blake256.result" ~elem:Ctype.UInt ~count:threads in
  let seed = 0x5EED0003l in
  let expect = host_reference ~threads ~seed ~iters in
  {
    Workload.args = [ Value.Ptr result; Value.UInt seed; Workload.iv iters ];
    grid = Workload.default_grid;
    smem_dynamic = 0;
    outputs = [ ("blake256.result", result, threads) ];
    check =
      (fun mem ->
        Workload.check_int32s ~what:"blake256.result" ~expect
          (Memory.read_int32s mem result threads));
  }

let spec : Spec.t =
  {
    Spec.name = "Blake256";
    kind = Spec.Crypto;
    source;
    regs = 64;
    native_block = (block_threads, 1, 1);
    tunability = Hfuse_core.Kernel_info.Fixed;
    default_size = 2;
    instantiate;
  }

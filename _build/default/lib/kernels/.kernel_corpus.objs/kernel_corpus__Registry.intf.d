lib/kernels/registry.mli: Spec

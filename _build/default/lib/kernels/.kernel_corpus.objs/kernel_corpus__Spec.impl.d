lib/kernels/spec.ml: Cuda Fmt Gpusim Hfuse_core Memory Workload

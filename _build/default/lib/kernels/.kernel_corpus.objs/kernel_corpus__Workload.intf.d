lib/kernels/workload.mli: Gpusim

lib/kernels/im2col.ml: Array Ctype Cuda Gpusim Hfuse_core Memory Prng Spec Value Workload

lib/kernels/maxpool.ml: Array Ctype Cuda Gpusim Hfuse_core Memory Prng Spec Value Workload

lib/kernels/hist.ml: Array Ctype Cuda Gpusim Hfuse_core Int32 Memory Prng Spec Value Workload

lib/kernels/sha256.ml: Array Buffer Char Ctype Cuda Gpusim Hfuse_core Int32 Memory Printf Spec Value Workload

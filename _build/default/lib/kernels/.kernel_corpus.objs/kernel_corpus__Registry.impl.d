lib/kernels/registry.ml: Batchnorm Blake256 Blake2b Ethash Fmt Hist Im2col List Maxpool Sha256 Spec String Upsample

lib/kernels/blake256.ml: Array Buffer Ctype Cuda Gpusim Hfuse_core Int32 Memory Printf Spec Value Workload

lib/kernels/upsample.ml: Array Ctype Cuda Gpusim Hfuse_core Memory Prng Spec Value Workload

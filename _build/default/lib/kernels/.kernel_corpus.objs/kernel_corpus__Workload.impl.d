lib/kernels/workload.ml: Array Float Fmt Gpusim Int32 Memory Value

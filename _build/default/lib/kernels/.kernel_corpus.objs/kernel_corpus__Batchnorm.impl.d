lib/kernels/batchnorm.ml: Array Ctype Cuda Gpusim Hfuse_core Int64 Memory Prng Spec Value Workload

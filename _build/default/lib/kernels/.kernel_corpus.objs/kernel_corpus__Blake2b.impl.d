lib/kernels/blake2b.ml: Array Blake256 Buffer Ctype Cuda Gpusim Hfuse_core Int64 Memory Printf Spec Value Workload

lib/kernels/prng.mli:

lib/kernels/spec.mli: Cuda Fmt Gpusim Hfuse_core Workload

lib/kernels/prng.ml: Array Int32 Int64

(** Thread-space partition enumeration (Section III-B): HFuse searches
    the first kernel's block dimension at a granularity of 128, "because
    using an irregular block dimension often breaks memory access
    patterns". *)

type t = { d1 : int; d2 : int }

val granularity : int
(** 128, per the paper. *)

val pp : t Fmt.t

(** All partitions of a [d0]-thread fused block, respecting both
    kernels' tunability: for two tunable kernels, d1 = 128, 256, ...,
    d0 - 128 (Fig. 6 lines 5-6 and 22); a fixed-dimension kernel pins
    its own share.  Empty when no legal partition exists. *)
val enumerate : Kernel_info.t -> Kernel_info.t -> d0:int -> t list

(** The even split used by the evaluation's Naive variant (horizontal
    fusion without thread-space profiling), or the closest legal
    partition to it. *)
val naive : Kernel_info.t -> Kernel_info.t -> d0:int -> t option

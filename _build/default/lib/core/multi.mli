(** Extension: horizontal fusion of more than two kernels.

    Nothing in the technique is 2-specific — the thread space partitions
    into N intervals and PTX provides 15 usable barrier ids.  This folds
    {!Hfuse.generate} left-to-right, which also exercises re-fusing
    already-fused kernels (barrier-id freshness, label renaming). *)

type t = {
  fused : Hfuse.t;  (** the final fusion step *)
  inputs : Kernel_info.t list;  (** original kernels, in order *)
  offsets : int list;  (** starting thread index of each kernel's interval *)
}

(** @raise Fuse_common.Fusion_error with fewer than two kernels, past
    1024 total threads, or when barrier ids run out. *)
val generate : Kernel_info.t list -> t

val threads_per_block : t -> int
val to_source : t -> string

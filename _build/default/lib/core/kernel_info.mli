(** A kernel plus everything fusion needs to know about launching it.

    The paper treats a kernel as "a list of CUDA statements" with a
    block dimension (Section III); operationally HFuse also needs the
    grid dimension, the dynamic shared-memory size, a register estimate
    (for the occupancy computation of Fig. 6), and whether the block
    dimension is tunable — deep-learning kernels are, crypto kernels are
    not (Section IV-A). *)

(** Can the kernel run under a different block dimension than its
    native one?  [Tunable { multiple_of }] kernels accept any positive
    multiple of [multiple_of] (e.g. the normalisation kernel of Fig. 2
    requires a warp-size multiple). *)
type tunability = Tunable of { multiple_of : int } | Fixed

type t = {
  fn : Cuda.Ast.fn;  (** the kernel *)
  prog : Cuda.Ast.program;  (** its translation unit (device functions) *)
  block : int * int * int;  (** configured block dimensions *)
  grid : int;  (** grid dimension (the corpus uses 1-D grids) *)
  smem_dynamic : int;  (** dynamic ([extern __shared__]) bytes per block *)
  regs : int;  (** registers per thread (calibration or estimate) *)
  tunability : tunability;
}

(** Total threads per block. *)
val threads_per_block : t -> int

(** Static shared memory per block of a kernel body: the sum of all
    sized [__shared__] declarations. *)
val smem_static_of_body : Cuda.Ast.stmt list -> int

val smem_static : t -> int

(** Static plus dynamic shared memory per block. *)
val smem_total : t -> int

(** Re-express the kernel at block dimension [bx].  [Tunable] kernels
    keep their 2-D shape ratio (a (32,16) kernel asked for 896 becomes
    (56,16)); the grid is unchanged (the corpus kernels self-limit by
    input size).

    @raise Invalid_argument for a [Fixed] kernel asked to change size,
    or when [bx] violates the tunability constraint. *)
val with_block_dim : t -> int -> t

(** Valid block dimensions for the partition search at the paper's
    granularity of 128 (Section III-B), strictly below [max_threads].
    [Fixed] kernels admit only their native size. *)
val candidate_block_dims : t -> max_threads:int -> int list

val pp : t Fmt.t

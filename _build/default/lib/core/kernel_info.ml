(* A kernel plus everything fusion needs to know about launching it.

   The paper treats a kernel as "a list of CUDA statements" with a block
   dimension (Section III); operationally HFuse also needs the grid
   dimension, the dynamic shared-memory size (for [extern __shared__]
   buffers), a register estimate (for the occupancy computation of
   Fig. 6), and whether the block dimension is tunable (deep-learning
   kernels are, crypto kernels are not — Section IV-A). *)

open Cuda

(** Can the kernel run under a different block dimension than its native
    one?  [Tunable { multiple_of }] kernels accept any block dimension
    that is a positive multiple of [multiple_of] (e.g. the normalisation
    kernel of Fig. 2 requires a multiple of the warp size). *)
type tunability = Tunable of { multiple_of : int } | Fixed

type t = {
  fn : Ast.fn;
  prog : Ast.program;  (** translation unit, for device-fn lookup *)
  block : int * int * int;  (** native block dimensions *)
  grid : int;  (** grid dimension (x only; the corpus is 1-D grids) *)
  smem_dynamic : int;  (** dynamic shared memory per block, bytes *)
  regs : int;  (** registers per thread (estimate or calibration) *)
  tunability : tunability;
}

let threads_per_block t =
  let x, y, z = t.block in
  x * y * z

(** Static shared memory per block: the sum of all sized [__shared__]
    declarations in the kernel body. *)
let smem_static_of_body (body : Ast.stmt list) : int =
  List.fold_left
    (fun acc (d : Ast.decl) ->
      match d.d_storage with
      | Ast.Shared -> acc + Ctype.sizeof d.d_type
      | _ -> acc)
    0
    (Ast_util.collect_decls body)

let smem_static t = smem_static_of_body t.fn.f_body
let smem_total t = smem_static t + t.smem_dynamic

(** Re-express the kernel with a different block dimension.  For
    [Tunable] kernels this changes only the launch geometry (the kernel
    source reads [blockDim] at runtime); the total thread count
    (grid * block) is preserved by scaling the grid so the same work is
    done, except that kernels whose loops are grid-stride keep their grid
    fixed — the corpus kernels all self-limit by input size, so we keep
    the grid unchanged and only swap the block dimension.  Raises
    [Invalid_argument] for [Fixed] kernels asked to change size. *)
let with_block_dim t (bx : int) : t =
  let native = threads_per_block t in
  match t.tunability with
  | Fixed ->
      if bx <> native then
        invalid_arg
          (Fmt.str "%s: block dimension is fixed at %d (asked for %d)"
             t.fn.f_name native bx)
      else t
  | Tunable { multiple_of } ->
      if bx <= 0 || bx mod multiple_of <> 0 then
        invalid_arg
          (Fmt.str "%s: block dimension %d is not a positive multiple of %d"
             t.fn.f_name bx multiple_of)
      else begin
        (* preserve the 2-D shape ratio when the native block is 2-D:
           batchnorm-style kernels keep blockDim.y and scale x *)
        let _, ny, nz = t.block in
        if ny * nz > 1 then begin
          if bx mod (ny * nz) <> 0 then
            invalid_arg
              (Fmt.str "%s: block dimension %d incompatible with 2-D shape"
                 t.fn.f_name bx);
          { t with block = (bx / (ny * nz), ny, nz) }
        end
        else { t with block = (bx, 1, 1) }
      end

(** Valid block dimensions for the thread-space partition search, at the
    paper's granularity of 128 (Section III-B): for tunable kernels every
    multiple of 128 compatible with the kernel's constraint; for fixed
    kernels just the native size. *)
let candidate_block_dims t ~max_threads : int list =
  match t.tunability with
  | Fixed -> [ threads_per_block t ]
  | Tunable { multiple_of } ->
      let _, ny, nz = t.block in
      let step = 128 in
      let rec go d acc =
        if d >= max_threads then List.rev acc
        else
          let ok = d mod multiple_of = 0 && d mod (max 1 (ny * nz)) = 0 in
          go (d + step) (if ok then d :: acc else acc)
      in
      go step []

let pp ppf t =
  let x, y, z = t.block in
  Fmt.pf ppf "%s<<<%d, (%d,%d,%d)>>> regs=%d smem=%d+%d" t.fn.f_name t.grid x
    y z t.regs (smem_static t) t.smem_dynamic

(* Occupancy mathematics and the register bound of Fig. 6 (lines 13-16).

   Occupancy — how many blocks an SM can host concurrently — is what
   horizontal fusion trades away for thread-level parallelism
   (Section IV-C).  The fused kernel needs more registers and shared
   memory than either original; when the extra requirement crosses a
   breakpoint, fewer blocks fit per SM.  The paper's remedy is to cap the
   register usage ([r0]) so the fused kernel keeps the block-level
   parallelism of its inputs, at the cost of spilling. *)

(** The per-SM resource limits the computation needs.  Mirrors
    [Gpusim.Arch] but kept dependency-free so the core library does not
    depend on the simulator. *)
type sm_limits = {
  regs_per_sm : int;  (** SMNRegs; 64K for Pascal and Volta *)
  smem_per_sm : int;  (** SMShMem; 96K for Pascal and Volta *)
  max_threads_per_sm : int;  (** SMNThreads; 2048 for Pascal and Volta *)
  max_blocks_per_sm : int;  (** hardware block-slot limit; 32 *)
  reg_alloc_granularity : int;
      (** registers are allocated in units of this per thread *)
  max_regs_per_thread : int;  (** 255 on both architectures *)
}

let pascal_volta_limits =
  {
    regs_per_sm = 65536;
    smem_per_sm = 96 * 1024;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 32;
    reg_alloc_granularity = 8;
    max_regs_per_thread = 255;
  }

let round_up_regs lim r =
  let g = lim.reg_alloc_granularity in
  max g ((r + g - 1) / g * g)

(** Concurrent blocks per SM for a kernel with the given per-thread
    register count, per-block thread count and per-block shared memory.
    Zero when a single block cannot fit at all. *)
let blocks_per_sm (lim : sm_limits) ~regs ~threads ~smem : int =
  if threads <= 0 then invalid_arg "blocks_per_sm: threads <= 0";
  let regs = round_up_regs lim regs in
  let by_regs = lim.regs_per_sm / max 1 (regs * threads) in
  let by_threads = lim.max_threads_per_sm / threads in
  let by_smem =
    if smem = 0 then lim.max_blocks_per_sm else lim.smem_per_sm / smem
  in
  min (min by_regs by_threads) (min by_smem lim.max_blocks_per_sm)

(** Theoretical occupancy: resident warps / maximum warps. *)
let theoretical_occupancy (lim : sm_limits) ~regs ~threads ~smem : float =
  let b = blocks_per_sm lim ~regs ~threads ~smem in
  float_of_int (b * threads) /. float_of_int lim.max_threads_per_sm

(** The register bound r0 of Fig. 6, lines 13-16:

      b1 <- SMNRegs / (d1 * NRegs(S1))
      b2 <- SMNRegs / (d2 * NRegs(S2))
      b0 <- min(min(b1, b2), SMShMem / ShMem(F), SMNThreads / d0)
      r0 <- SMNRegs / (b0 * d0)

    i.e. make the fused kernel run as many blocks per SM as the more
    constrained of the two inputs, unless the fused kernel's shared
    memory or the thread limit binds first.  Returns [None] when even a
    single fused block cannot fit (b0 = 0), in which case no register
    bound can restore occupancy. *)
let register_bound (lim : sm_limits) ~d1 ~regs1 ~d2 ~regs2 ~fused_smem :
    int option =
  if d1 <= 0 || d2 <= 0 then invalid_arg "register_bound: empty partition";
  let d0 = d1 + d2 in
  (* Fig. 6 uses the raw NRegs values, not the allocation-granularity
     rounding the hardware applies — the bound exists to *set* an
     allocation, so the paper computes it from the compiler's count *)
  let b1 = lim.regs_per_sm / (d1 * max 1 regs1) in
  let b2 = lim.regs_per_sm / (d2 * max 1 regs2) in
  let by_smem =
    if fused_smem = 0 then lim.max_blocks_per_sm
    else lim.smem_per_sm / fused_smem
  in
  let b0 = min (min b1 b2) (min by_smem (lim.max_threads_per_sm / d0)) in
  if b0 <= 0 then None
  else
    let r0 = lim.regs_per_sm / (b0 * d0) in
    (* the bound is only meaningful within hardware limits *)
    Some (min r0 lim.max_regs_per_thread)

(** Which resource limits a kernel's occupancy (for reports/ablations). *)
type limiter = By_registers | By_threads | By_smem | By_block_slots

let limiting_resource (lim : sm_limits) ~regs ~threads ~smem : limiter =
  let regs' = round_up_regs lim regs in
  let by_regs = lim.regs_per_sm / max 1 (regs' * threads) in
  let by_threads = lim.max_threads_per_sm / threads in
  let by_smem =
    if smem = 0 then lim.max_blocks_per_sm else lim.smem_per_sm / smem
  in
  let b = min (min by_regs by_threads) (min by_smem lim.max_blocks_per_sm) in
  if b = by_regs && by_regs <= by_threads && by_regs <= by_smem then
    By_registers
  else if b = by_threads && by_threads <= by_smem then By_threads
  else if b = by_smem then By_smem
  else By_block_slots

let pp_limiter ppf = function
  | By_registers -> Fmt.string ppf "registers"
  | By_threads -> Fmt.string ppf "threads"
  | By_smem -> Fmt.string ppf "shared memory"
  | By_block_slots -> Fmt.string ppf "block slots"

(* Static kernel analysis and fusion-partner recommendation.

   The paper's third contribution is identifying *when* horizontal
   fusion pays: "horizontal fusion is mostly beneficial when fusing two
   kernels with instructions that have long latencies and that require
   different types of GPU resources" (Section I), with the memory-
   intensive + compute-intensive pairing as the star case (Section IV-B).

   This module turns that guidance into a tool: a static instruction-mix
   analysis over the AST that classifies a kernel's dominant resource,
   and a pairing score that ranks fusion candidates the way the paper's
   results rank them — without running anything.  The profiling search
   (Fig. 6) remains the ground truth; this is the triage step. *)

open Cuda

(** Static instruction-mix summary of one kernel body. *)
type mix = {
  int_ops : int;  (** integer ALU operations *)
  float_ops : int;  (** fp32/fp64 arithmetic *)
  div_ops : int;  (** divisions / modulo (slow-pipe or sequences) *)
  global_loads : int;
  global_stores : int;
  shared_ops : int;  (** shared-memory accesses *)
  atomics : int;
  shuffles : int;
  barriers : int;
  loop_depth : int;  (** maximum loop nesting *)
}

let empty_mix =
  {
    int_ops = 0;
    float_ops = 0;
    div_ops = 0;
    global_loads = 0;
    global_stores = 0;
    shared_ops = 0;
    atomics = 0;
    shuffles = 0;
    barriers = 0;
    loop_depth = 0;
  }

(* Names of the kernel's pointer parameters (global memory) and its
   shared arrays: used to attribute Index/Deref accesses to a space. *)
type spaces = {
  globals : Ast_util.StrSet.t;
  shareds : Ast_util.StrSet.t;
}

let spaces_of (fn : Ast.fn) : spaces =
  let globals =
    List.filter_map
      (fun (p : Ast.param) ->
        if Ctype.is_pointer p.p_type then Some p.p_name else None)
      fn.f_params
    |> Ast_util.StrSet.of_list
  in
  let shareds =
    List.filter_map
      (fun (d : Ast.decl) ->
        match d.d_storage with
        | Ast.Shared | Ast.Shared_extern -> Some d.d_name
        | Ast.Local -> None)
      (Ast_util.collect_decls fn.f_body)
    |> Ast_util.StrSet.of_list
  in
  (* pointers initialised from a shared buffer count as shared; from a
     parameter as global *)
  let shareds = ref shareds and globals = ref globals in
  List.iter
    (fun (d : Ast.decl) ->
      match d.d_init with
      | Some init when Ctype.is_pointer d.d_type ->
          let roots =
            Ast_util.fold_expr
              (fun acc e ->
                match e with Ast.Var x -> x :: acc | _ -> acc)
              [] init
          in
          if List.exists (fun r -> Ast_util.StrSet.mem r !shareds) roots then
            shareds := Ast_util.StrSet.add d.d_name !shareds
          else if List.exists (fun r -> Ast_util.StrSet.mem r !globals) roots
          then globals := Ast_util.StrSet.add d.d_name !globals
      | _ -> ())
    (Ast_util.collect_decls fn.f_body);
  { globals = !globals; shareds = !shareds }

let rec base_var (e : Ast.expr) : string option =
  match e with
  | Ast.Var x -> Some x
  | Ast.Index (a, _) | Ast.Deref a | Ast.Cast (_, a)
  | Ast.Binop (_, a, _) ->
      base_var a
  | Ast.Addr_of a -> base_var a
  | _ -> None

(** Is this expression's result floating point?  A cheap syntactic
    approximation: a float literal anywhere in the operands. *)
let looks_float (e : Ast.expr) : bool =
  Ast_util.fold_expr
    (fun acc e -> acc || match e with Ast.Float_lit _ -> true | _ -> false)
    false e

(** Analyse one (weighted) occurrence of an expression. *)
let rec scan_expr (sp : spaces) ~(weight : int) (m : mix ref)
    (e : Ast.expr) : unit =
  let add f = m := f !m in
  let recur = scan_expr sp ~weight m in
  match e with
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ | Ast.Var _
  | Ast.Builtin _ ->
      ()
  | Ast.Unop (_, a) ->
      add (fun m -> { m with int_ops = m.int_ops + weight });
      recur a
  | Ast.Binop ((Ast.Div | Ast.Mod), a, b) ->
      add (fun m -> { m with div_ops = m.div_ops + weight });
      recur a;
      recur b
  | Ast.Binop (_, a, b) ->
      (if looks_float e then
         add (fun m -> { m with float_ops = m.float_ops + weight })
       else add (fun m -> { m with int_ops = m.int_ops + weight }));
      recur a;
      recur b
  | Ast.Assign (l, r) | Ast.Op_assign (_, l, r) ->
      scan_store sp ~weight m l;
      recur r
  | Ast.Incdec { lval; _ } ->
      add (fun m -> { m with int_ops = m.int_ops + weight });
      scan_store sp ~weight m lval
  | Ast.Ternary (c, a, b) ->
      add (fun m -> { m with int_ops = m.int_ops + weight });
      recur c;
      recur a;
      recur b
  | Ast.Call
      ( (("atomicAdd" | "atomicMax" | "atomicMin" | "atomicExch"
         | "atomicCAS") as _f),
        args ) ->
      add (fun m -> { m with atomics = m.atomics + weight });
      (* the address operand is part of the atomic, not a separate
         access: scan only its index arithmetic *)
      (match args with
      | Ast.Addr_of (Ast.Index (_, i)) :: rest ->
          recur i;
          List.iter recur rest
      | args -> List.iter recur args)
  | Ast.Call (f, args) ->
      (match f with
      | "WARP_SHFL_XOR" | "WARP_SHFL_DOWN" | "__shfl_xor_sync"
      | "__shfl_down_sync" | "__shfl_sync" | "__ballot_sync" ->
          add (fun m -> { m with shuffles = m.shuffles + weight })
      | "sqrtf" | "rsqrtf" | "expf" | "logf" ->
          add (fun m -> { m with div_ops = m.div_ops + weight })
      | "fminf" | "fmaxf" | "fabsf" ->
          add (fun m -> { m with float_ops = m.float_ops + weight })
      | _ -> add (fun m -> { m with int_ops = m.int_ops + weight }));
      List.iter recur args
  | Ast.Index (a, i) ->
      (match base_var a with
      | Some x when Ast_util.StrSet.mem x sp.shareds ->
          add (fun m -> { m with shared_ops = m.shared_ops + weight })
      | Some x when Ast_util.StrSet.mem x sp.globals ->
          add (fun m -> { m with global_loads = m.global_loads + weight })
      | _ -> add (fun m -> { m with int_ops = m.int_ops + weight }));
      recur i
  | Ast.Deref a -> (
      match base_var a with
      | Some x when Ast_util.StrSet.mem x sp.shareds ->
          add (fun m -> { m with shared_ops = m.shared_ops + weight })
      | _ -> add (fun m -> { m with global_loads = m.global_loads + weight }))
  | Ast.Addr_of a | Ast.Cast (_, a) -> recur a

and scan_store sp ~weight m (l : Ast.expr) : unit =
  match l with
  | Ast.Index (a, i) ->
      (match base_var a with
      | Some x when Ast_util.StrSet.mem x sp.shareds ->
          m := { !m with shared_ops = !m.shared_ops + weight }
      | Some x when Ast_util.StrSet.mem x sp.globals ->
          m := { !m with global_stores = !m.global_stores + weight }
      | _ -> m := { !m with int_ops = !m.int_ops + weight });
      scan_expr sp ~weight m i
  | Ast.Deref a -> (
      match base_var a with
      | Some x when Ast_util.StrSet.mem x sp.shareds ->
          m := { !m with shared_ops = !m.shared_ops + weight }
      | _ -> m := { !m with global_stores = !m.global_stores + weight })
  | Ast.Var _ -> ()
  | e -> scan_expr sp ~weight m e

(* Statements inside a loop are weighted by an assumed trip count: the
   analysis is relative, so the constant only needs to dominate
   straight-line code. *)
let loop_weight = 16

let rec scan_stmts sp ~weight ~depth (m : mix ref) (stmts : Ast.stmt list) :
    unit =
  List.iter
    (fun (s : Ast.stmt) ->
      match s.s with
      | Ast.Decl { d_init = Some e; _ } -> scan_expr sp ~weight m e
      | Ast.Decl _ | Ast.Nop | Ast.Label _ | Ast.Goto _ | Ast.Break
      | Ast.Continue ->
          ()
      | Ast.Expr e -> scan_expr sp ~weight m e
      | Ast.Return (Some e) -> scan_expr sp ~weight m e
      | Ast.Return None -> ()
      | Ast.If (c, t, e) ->
          scan_expr sp ~weight m c;
          scan_stmts sp ~weight ~depth m t;
          scan_stmts sp ~weight ~depth m e
      | Ast.For (init, cond, step, body) ->
          (match init with
          | Some (Ast.For_expr e) -> scan_expr sp ~weight m e
          | Some (Ast.For_decl ds) ->
              List.iter
                (fun (d : Ast.decl) ->
                  Option.iter (scan_expr sp ~weight m) d.d_init)
                ds
          | None -> ());
          let w = weight * loop_weight in
          Option.iter (scan_expr sp ~weight:w m) cond;
          Option.iter (scan_expr sp ~weight:w m) step;
          m := { !m with loop_depth = max !m.loop_depth (depth + 1) };
          scan_stmts sp ~weight:w ~depth:(depth + 1) m body
      | Ast.While (c, body) | Ast.Do_while (body, c) ->
          let w = weight * loop_weight in
          scan_expr sp ~weight:w m c;
          m := { !m with loop_depth = max !m.loop_depth (depth + 1) };
          scan_stmts sp ~weight:w ~depth:(depth + 1) m body
      | Ast.Sync | Ast.Bar_sync _ ->
          m := { !m with barriers = !m.barriers + 1 }
      | Ast.Block b -> scan_stmts sp ~weight ~depth m b)
    stmts

let analyze_fn (fn : Ast.fn) : mix =
  let sp = spaces_of fn in
  let m = ref empty_mix in
  scan_stmts sp ~weight:1 ~depth:0 m fn.f_body;
  !m

(* ------------------------------------------------------------------ *)
(* Classification                                                       *)
(* ------------------------------------------------------------------ *)

(** The paper's resource taxonomy (Section IV-C). *)
type character =
  | Memory_intensive  (** dominated by global-memory traffic (Ethash, Maxpool) *)
  | Compute_intensive  (** dominated by ALU/FPU work (Blake, SHA) *)
  | Balanced  (** meaningful amounts of both (Batchnorm) *)

let compute_weight m = m.int_ops + m.float_ops + (8 * m.div_ops)

(* Weights approximate relative latencies: a global access costs tens of
   ALU-op latencies; atomics a dozen; shared a couple. *)
let memory_weight m =
  (20 * (m.global_loads + m.global_stores))
  + (2 * m.shared_ops) + (12 * m.atomics)

(** Classify a kernel by its weighted instruction mix. *)
let classify (m : mix) : character =
  let c = compute_weight m and g = memory_weight m in
  if g = 0 && c = 0 then Balanced
  else if c >= 3 * g then Compute_intensive
  else if 2 * g >= 3 * c then Memory_intensive
  else Balanced

let pp_character ppf = function
  | Memory_intensive -> Fmt.string ppf "memory-intensive"
  | Compute_intensive -> Fmt.string ppf "compute-intensive"
  | Balanced -> Fmt.string ppf "balanced"

let pp_mix ppf m =
  Fmt.pf ppf
    "int %d, float %d, div %d, gld %d, gst %d, shared %d, atomic %d, shfl \
     %d, barriers %d, loop depth %d"
    m.int_ops m.float_ops m.div_ops m.global_loads m.global_stores
    m.shared_ops m.atomics m.shuffles m.barriers m.loop_depth

(* ------------------------------------------------------------------ *)
(* Pairing                                                              *)
(* ------------------------------------------------------------------ *)

(** Predicted affinity of fusing two kernels, in [0, 1]: 1 = the paper's
    ideal pairing (memory-hungry with compute-hungry, resources fit),
    0 = the anti-pattern (same bottleneck, occupancy collapse). *)
let affinity ?(limits = Occupancy.pascal_volta_limits)
    (k1 : Kernel_info.t) (k2 : Kernel_info.t) : float =
  let m1 = analyze_fn k1.fn and m2 = analyze_fn k2.fn in
  let character_score =
    match (classify m1, classify m2) with
    | Memory_intensive, Compute_intensive
    | Compute_intensive, Memory_intensive ->
        1.0
    | Balanced, Memory_intensive | Memory_intensive, Balanced -> 0.7
    | Balanced, Compute_intensive | Compute_intensive, Balanced -> 0.6
    | Balanced, Balanced -> 0.5
    | Memory_intensive, Memory_intensive -> 0.3
    | Compute_intensive, Compute_intensive -> 0.1
  in
  (* occupancy feasibility of the fused kernel at an even-ish split *)
  let d1 = Kernel_info.threads_per_block k1 in
  let d2 = Kernel_info.threads_per_block k2 in
  let d0 = d1 + d2 in
  let occupancy_score =
    if d0 > 1024 then 0.0
    else begin
      let regs = Fuse_common.fused_regs k1.regs k2.regs in
      let smem = Kernel_info.smem_total k1 + Kernel_info.smem_total k2 in
      let fused =
        Occupancy.theoretical_occupancy limits ~regs ~threads:d0 ~smem
      in
      let solo1 =
        Occupancy.theoretical_occupancy limits ~regs:k1.regs ~threads:d1
          ~smem:(Kernel_info.smem_total k1)
      in
      let solo2 =
        Occupancy.theoretical_occupancy limits ~regs:k2.regs ~threads:d2
          ~smem:(Kernel_info.smem_total k2)
      in
      let baseline = Float.max 0.05 (Float.min solo1 solo2) in
      Float.min 1.0 (fused /. baseline)
    end
  in
  (0.75 *. character_score) +. (0.25 *. occupancy_score)

(** Rank all pairs from a candidate set, best first. *)
let rank_pairs ?limits (ks : Kernel_info.t list) :
    (Kernel_info.t * Kernel_info.t * float) list =
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
  in
  pairs ks
  |> List.map (fun (a, b) -> (a, b, affinity ?limits a b))
  |> List.sort (fun (_, _, x) (_, _, y) -> compare y x)

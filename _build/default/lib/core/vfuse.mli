(** Vertical (standard) kernel fusion — the baseline HFuse is compared
    against (Section II-B): every thread executes kernel 1's statements
    then kernel 2's, with barriers left as full-block [__syncthreads()]
    — which is exactly why the warp scheduler cannot interleave across
    them. *)

type t = {
  fn : Cuda.Ast.fn;
  prog : Cuda.Ast.program;
  block : int;  (** linear block dimension (max of the inputs') *)
  grid : int;
  smem_dynamic : int;
  regs : int;
  param_map1 : (string * string) list;
  param_map2 : (string * string) list;
  src1 : Kernel_info.t;
  src2 : Kernel_info.t;
}

val info : t -> Kernel_info.t

(** [generate k1 k2] vertically fuses two kernels.  When thread counts
    differ, the smaller kernel's half runs under a thread guard — legal
    only if that kernel is barrier-free (vertical fusion has no partial
    barriers to fall back on).  [barrier_between] inserts a full
    [__syncthreads()] between the halves (off by default: the evaluation
    pairs are independent).

    @raise Fuse_common.Fusion_error on a guarded barrier-bearing kernel
    or unnormalisable input. *)
val generate : ?barrier_between:bool -> Kernel_info.t -> Kernel_info.t -> t

val to_source : t -> string

lib/core/search.ml: Fmt Hfuse Kernel_info List Occupancy Partition

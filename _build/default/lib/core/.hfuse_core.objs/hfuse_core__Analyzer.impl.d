lib/core/analyzer.ml: Ast Ast_util Ctype Cuda Float Fmt Fuse_common Kernel_info List Occupancy Option

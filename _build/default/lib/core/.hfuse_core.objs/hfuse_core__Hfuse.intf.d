lib/core/hfuse.mli: Cuda Kernel_info

lib/core/kernel_info.ml: Ast Ast_util Ctype Cuda Fmt List

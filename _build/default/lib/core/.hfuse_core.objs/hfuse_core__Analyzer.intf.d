lib/core/analyzer.mli: Cuda Fmt Kernel_info Occupancy

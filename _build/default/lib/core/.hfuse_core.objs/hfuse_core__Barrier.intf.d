lib/core/barrier.mli: Cuda

lib/core/partition.mli: Fmt Kernel_info

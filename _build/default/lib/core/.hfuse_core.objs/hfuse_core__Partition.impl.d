lib/core/partition.ml: Fmt Kernel_info List

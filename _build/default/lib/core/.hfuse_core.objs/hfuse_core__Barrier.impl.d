lib/core/barrier.ml: Ast Ast_util Cuda Fmt List

lib/core/multi.mli: Hfuse Kernel_info

lib/core/occupancy.ml: Fmt

lib/core/kernel_info.mli: Cuda Fmt

lib/core/vfuse.ml: Ast Ast_util Builtins Ctype Cuda Fuse_common Hfuse_frontend Inline Kernel_info List Pretty Rename

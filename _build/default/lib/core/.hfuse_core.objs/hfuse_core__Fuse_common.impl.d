lib/core/fuse_common.ml: Ast Ast_util Builtins Ctype Cuda Fmt Hashtbl Hfuse_frontend Kernel_info Lift_decls List Option Rename String

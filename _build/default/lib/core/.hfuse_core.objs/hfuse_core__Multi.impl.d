lib/core/multi.ml: Fuse_common Hfuse Kernel_info List

lib/core/fuse_common.mli: Cuda Format Hfuse_frontend Kernel_info

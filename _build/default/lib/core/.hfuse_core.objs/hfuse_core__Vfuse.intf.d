lib/core/vfuse.mli: Cuda Kernel_info

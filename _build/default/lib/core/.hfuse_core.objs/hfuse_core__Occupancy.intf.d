lib/core/occupancy.mli: Fmt

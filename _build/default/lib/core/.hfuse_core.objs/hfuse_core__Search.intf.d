lib/core/search.mli: Fmt Hfuse Kernel_info Occupancy Partition

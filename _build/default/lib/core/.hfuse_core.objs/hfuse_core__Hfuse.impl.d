lib/core/hfuse.ml: Ast Barrier Builtins Ctype Cuda Fuse_common Hfuse_frontend Inline Kernel_info List Pretty Rename

(** Static kernel analysis and fusion-partner recommendation — the
    paper's "optimization scenarios" contribution, operationalised:
    horizontal fusion pays when the two kernels have long-latency
    instructions that stress {e different} GPU resources (Sections I and
    IV-C).  The profiling search (Fig. 6) remains ground truth; this is
    the triage step that avoids profiling hopeless pairs. *)

(** Static instruction-mix summary of one kernel (loop bodies weighted
    by an assumed trip count, so the mix reflects the hot code). *)
type mix = {
  int_ops : int;
  float_ops : int;
  div_ops : int;  (** div/mod/transcendental (slow sequences) *)
  global_loads : int;
  global_stores : int;
  shared_ops : int;
  atomics : int;
  shuffles : int;
  barriers : int;
  loop_depth : int;
}

val empty_mix : mix
val analyze_fn : Cuda.Ast.fn -> mix

(** The paper's resource taxonomy (Section IV-C). *)
type character = Memory_intensive | Compute_intensive | Balanced

(** Classify by latency-weighted instruction mix. *)
val classify : mix -> character

val pp_character : character Fmt.t
val pp_mix : mix Fmt.t

(** Predicted fusion affinity in [0, 1]: 1 = the paper's ideal pairing
    (memory-intensive with compute-intensive, resources fit); near 0 =
    the anti-pattern (two compute kernels, occupancy collapse). *)
val affinity : ?limits:Occupancy.sm_limits -> Kernel_info.t -> Kernel_info.t -> float

(** All pairs from a candidate set, ranked best-first by {!affinity}. *)
val rank_pairs :
  ?limits:Occupancy.sm_limits ->
  Kernel_info.t list ->
  (Kernel_info.t * Kernel_info.t * float) list

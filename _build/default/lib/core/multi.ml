(* Extension: horizontal fusion of more than two kernels.

   The paper fuses pairs; nothing in the technique is 2-specific — the
   thread space partitions into N intervals, each original kernel gets
   its own hardware barrier id (PTX provides 16), and each body is
   guarded by its interval.  This module folds {!Hfuse.generate} over a
   list, which both demonstrates the extension and stress-tests re-fusing
   already-fused kernels (barrier-id freshness, label renaming).

   Limits inherited from the hardware: at most 1024 threads per fused
   block and at most 15 distinct partial-barrier ids. *)

type t = {
  fused : Hfuse.t;  (** the final fusion step *)
  inputs : Kernel_info.t list;  (** original kernels, in order *)
  offsets : int list;
      (** starting thread index of each input kernel's interval *)
}

(** [generate kernels] left-folds horizontal fusion over [kernels] (at
    their configured block dimensions).  Raises
    {!Fuse_common.Fusion_error} if fewer than two kernels are given or a
    hardware limit is hit. *)
let generate (kernels : Kernel_info.t list) : t =
  match kernels with
  | [] | [ _ ] ->
      Fuse_common.fail "multi-fusion needs at least two kernels (got %d)"
        (List.length kernels)
  | k0 :: rest ->
      let first =
        match rest with
        | k1 :: _ -> Hfuse.generate k0 k1
        | [] -> assert false
      in
      let fused, _ =
        List.fold_left
          (fun (_, acc_info) k ->
            let f = Hfuse.generate acc_info k in
            (f, Hfuse.info f))
          (first, Hfuse.info first)
          (List.tl rest)
      in
      let offsets =
        let _, offs =
          List.fold_left
            (fun (off, acc) (k : Kernel_info.t) ->
              (off + Kernel_info.threads_per_block k, off :: acc))
            (0, []) kernels
        in
        List.rev offs
      in
      { fused; inputs = kernels; offsets }

let threads_per_block (t : t) : int =
  List.fold_left
    (fun acc k -> acc + Kernel_info.threads_per_block k)
    0 t.inputs

let to_source (t : t) : string = Hfuse.to_source t.fused

(** Synchronisation-barrier replacement (Fig. 5, lines 5-6).

    [__syncthreads()] inside a fused kernel would wait for the other
    kernel's threads too — deadlock.  HFuse rewrites each barrier into
    the partial PTX barrier [bar.sync id, count], which synchronises
    exactly [count] threads on hardware barrier [id]. *)

(** PTX provides barrier ids 0..15; id 0 is the one [__syncthreads]
    itself uses, so fused kernels allocate from 1. *)
val max_barrier_id : int

exception Invalid_barrier of string

(** Replace every [__syncthreads()] with [bar.sync id, count].
    Pre-existing [bar.sync] statements (re-fusing an already fused
    kernel) pass through untouched.

    @raise Invalid_barrier when [id] is outside 1..15 or [count] is not
    a positive warp-size multiple. *)
val replace : id:int -> count:int -> Cuda.Ast.stmt list -> Cuda.Ast.stmt list

(** Barrier ids already claimed by [bar.sync] statements. *)
val used_ids : Cuda.Ast.stmt list -> int list

(** First id in 1..15 not in the list.
    @raise Invalid_barrier when all 15 are taken. *)
val fresh_id : int list -> int

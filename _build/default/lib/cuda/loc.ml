(* Source locations for diagnostics.

   Every token carries a [t]; parse errors and semantic errors report the
   position in the original CUDA source. *)

type t = {
  line : int;  (** 1-based line number *)
  col : int;  (** 1-based column number *)
  offset : int;  (** 0-based byte offset into the source buffer *)
}

let dummy = { line = 0; col = 0; offset = -1 }
let make ~line ~col ~offset = { line; col; offset }
let is_dummy t = t.offset < 0

let pp ppf t =
  if is_dummy t then Fmt.string ppf "<unknown>"
  else Fmt.pf ppf "%d:%d" t.line t.col

let to_string t = Fmt.str "%a" pp t

let compare a b =
  match compare a.offset b.offset with
  | 0 -> compare (a.line, a.col) (b.line, b.col)
  | c -> c

let equal a b = compare a b = 0

(** A span between two locations, used for multi-token constructs. *)
type span = { start_loc : t; end_loc : t }

let span start_loc end_loc = { start_loc; end_loc }
let pp_span ppf s = Fmt.pf ppf "%a-%a" pp s.start_loc pp s.end_loc

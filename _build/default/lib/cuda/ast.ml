(* Abstract syntax of the CUDA-C subset consumed and produced by HFuse.

   The subset matches what the paper's Section III assumes after
   preprocessing: macros expanded, device-function calls inlinable, local
   declarations liftable to the top of the kernel.  It covers the nine
   benchmark kernels (Section IV-A) plus the constructs HFuse itself emits:
   [goto]/labels and inline [bar.sync] PTX assembly. *)

(** Axis of a built-in index variable, e.g. the [.x] in [threadIdx.x]. *)
type dim = X | Y | Z

(** CUDA built-in special values. *)
type builtin =
  | Thread_idx of dim
  | Block_idx of dim
  | Block_dim of dim
  | Grid_dim of dim

type unop =
  | Neg  (** [-e] *)
  | Lnot  (** [!e] *)
  | Bnot  (** [~e] *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Land  (** [&&], short-circuit *)
  | Lor  (** [||], short-circuit *)
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type expr =
  | Int_lit of int64 * Ctype.t
      (** Value and literal type; [5] is [Int_lit (5L, Int)], [5u] is
          [Int_lit (5L, UInt)], [5ull] is [Int_lit (5L, ULong)]. *)
  | Float_lit of float * Ctype.t  (** [Float] or [Double] *)
  | Bool_lit of bool
  | Var of string
  | Builtin of builtin
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Assign of expr * expr  (** lvalue = rvalue *)
  | Op_assign of binop * expr * expr  (** [a += b] etc. *)
  | Incdec of { pre : bool; inc : bool; lval : expr }
      (** [++a] / [a++] / [--a] / [a--] *)
  | Ternary of expr * expr * expr
  | Call of string * expr list
      (** Device function call or intrinsic ([min], [atomicAdd],
          [__shfl_xor_sync], ...). *)
  | Index of expr * expr  (** [a[i]] *)
  | Deref of expr  (** [*p] *)
  | Addr_of of expr  (** [&lv] *)
  | Cast of Ctype.t * expr

(** Storage class of a local declaration. *)
type storage =
  | Local  (** ordinary automatic variable (register candidate) *)
  | Shared  (** [__shared__], statically sized *)
  | Shared_extern  (** [extern __shared__], size given at launch *)

type decl = {
  d_name : string;
  d_type : Ctype.t;
  d_storage : storage;
  d_init : expr option;
}

type stmt = { s : stmt_desc; s_loc : Loc.t }

and stmt_desc =
  | Decl of decl
  | Expr of expr
  | If of expr * stmt list * stmt list
  | For of for_init option * expr option * expr option * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | Return of expr option
  | Break
  | Continue
  | Sync  (** [__syncthreads()] *)
  | Bar_sync of int * int
      (** [asm("bar.sync <id>, <count>;")] — the partial barrier HFuse
          emits; synchronises [count] threads on hardware barrier [id]. *)
  | Goto of string
  | Label of string
  | Block of stmt list
  | Nop  (** empty statement [;] *)

and for_init = For_decl of decl list | For_expr of expr

(** Function-parameter qualifiers we track (only what matters to fusion). *)
type param = { p_name : string; p_type : Ctype.t }

type fun_kind =
  | Global  (** [__global__] kernel entry point *)
  | Device  (** [__device__] helper, inlined by the frontend *)

type fn = {
  f_name : string;
  f_kind : fun_kind;
  f_params : param list;
  f_ret : Ctype.t;
  f_body : stmt list;
  f_launch_bounds : int option;
      (** [__launch_bounds__(n)] when present; advisory only. *)
}

(** A parsed translation unit: [#define]-style integer constants plus
    function definitions, in source order. *)
type program = { defines : (string * int64) list; functions : fn list }

let mk_stmt ?(loc = Loc.dummy) s = { s; s_loc = loc }

(* -- Convenience constructors, used pervasively by the fusion passes. -- *)

let int_lit ?(ty = Ctype.Int) n = Int_lit (Int64.of_int n, ty)
let var x = Var x
let assign lv rv = mk_stmt (Expr (Assign (lv, rv)))

let decl ?(storage = Local) ?init name ty =
  mk_stmt (Decl { d_name = name; d_type = ty; d_storage = storage; d_init = init })

(** Expression-building infix operators; open locally where convenient. *)
module Infix = struct
  let ( + ) a b = Binop (Add, a, b)
  let ( - ) a b = Binop (Sub, a, b)
  let ( * ) a b = Binop (Mul, a, b)
  let ( / ) a b = Binop (Div, a, b)
  let ( % ) a b = Binop (Mod, a, b)
  let ( < ) a b = Binop (Lt, a, b)
  let ( <= ) a b = Binop (Le, a, b)
  let ( > ) a b = Binop (Gt, a, b)
  let ( >= ) a b = Binop (Ge, a, b)
  let ( = ) a b = Binop (Eq, a, b)
  let ( <> ) a b = Binop (Ne, a, b)
  let ( && ) a b = Binop (Land, a, b)
  let ( || ) a b = Binop (Lor, a, b)
end

(** Find a function by name. *)
let find_fn prog name =
  List.find_opt (fun f -> String.equal f.f_name name) prog.functions

(** The kernels ([__global__] functions) of a program, in source order. *)
let kernels prog =
  List.filter (fun f -> match f.f_kind with Global -> true | Device -> false)
    prog.functions

(* Hand-written lexer for the CUDA-C subset.

   Handles line ("//") and block comments, integer literals (decimal and
   hex, with [u]/[l]/[ll]/[ull] suffixes), float literals (with optional
   [f] suffix and exponents), string literals (for [asm] bodies), all the
   multi-character operators of C, and simple preprocessor lines:
   [#define NAME <integer>] is recorded, any other [#...] line is skipped
   (the frontend expects includes/macros to have been expanded already,
   matching the paper's Section III-C preprocessing assumption). *)

exception Error of string * Loc.t

type lexed = {
  tokens : (Token.t * Loc.t) array;
  defines : (string * int64) list;  (** [#define]d integer constants *)
}

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of beginning of current line *)
}

let loc st =
  Loc.make ~line:st.line ~col:(st.pos - st.bol + 1) ~offset:st.pos

let error st msg = raise (Error (msg, loc st))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let rec skip_ws_and_comments st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws_and_comments st
  | Some '/' when peek2 st = Some '/' ->
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_ws_and_comments st
  | Some '/' when peek2 st = Some '*' ->
      advance st;
      advance st;
      let rec to_close () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | None, _ -> error st "unterminated block comment"
        | Some _, _ ->
            advance st;
            to_close ()
      in
      to_close ();
      skip_ws_and_comments st
  | _ -> ()

(* Reads the rest of the current logical line (handling backslash
   continuations) and returns it. *)
let read_line st =
  let buf = Buffer.create 64 in
  let rec go () =
    match peek st with
    | None -> ()
    | Some '\\' when peek2 st = Some '\n' ->
        advance st;
        advance st;
        Buffer.add_char buf ' ';
        go ()
    | Some '\n' -> advance st
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Buffer.contents buf

(* [#define NAME 123] (or hex).  Anything fancier is ignored: the paper's
   pipeline assumes macros are pre-expanded (Section III-C); we accept the
   integer-constant case because the benchmark kernels use it (WARP_SIZE). *)
let parse_define line =
  let line = String.trim line in
  match String.index_opt line ' ' with
  | None -> None
  | Some i ->
      let name = String.sub line 0 i in
      let rest = String.trim (String.sub line i (String.length line - i)) in
      if name = "" || not (is_ident_start name.[0]) then None
      else if rest = "" then None
      else
        (* Allow a parenthesised constant expression of a single literal. *)
        let rest =
          if
            String.length rest >= 2
            && rest.[0] = '('
            && rest.[String.length rest - 1] = ')'
          then String.trim (String.sub rest 1 (String.length rest - 2))
          else rest
        in
        (try Some (name, Int64.of_string rest) with _ -> None)

let lex_number st =
  let start = st.pos in
  let start_loc = loc st in
  let hex =
    peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X')
  in
  if hex then (
    advance st;
    advance st;
    while (match peek st with Some c -> is_hex c | None -> false) do
      advance st
    done)
  else
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
  let is_float = ref false in
  if not hex then begin
    (match (peek st, peek2 st) with
    | Some '.', Some c when is_digit c || c = 'f' || c = 'F' ->
        is_float := true;
        advance st;
        while (match peek st with Some c -> is_digit c | None -> false) do
          advance st
        done
    | Some '.', (Some (' ' | ';' | ',' | ')' | ']' | '*' | '/' | '+' | '-') | None)
      ->
        (* "1." style literal *)
        is_float := true;
        advance st
    | _ -> ());
    match peek st with
    | Some ('e' | 'E')
      when match peek2 st with
           | Some c -> is_digit c || c = '+' || c = '-'
           | None -> false ->
        is_float := true;
        advance st;
        (match peek st with
        | Some ('+' | '-') -> advance st
        | _ -> ());
        while (match peek st with Some c -> is_digit c | None -> false) do
          advance st
        done
    | _ -> ()
  end;
  let digits = String.sub st.src start (st.pos - start) in
  if !is_float then begin
    let ty =
      match peek st with
      | Some ('f' | 'F') ->
          advance st;
          Ctype.Float
      | _ -> Ctype.Double
    in
    match float_of_string_opt digits with
    | Some v -> (Token.FLOAT_LIT (v, ty), start_loc)
    | None -> error st ("malformed float literal " ^ digits)
  end
  else begin
    (* integer suffixes: u, l, ul, ll, ull in any case *)
    let unsigned = ref false and long = ref false in
    let rec suffixes () =
      match peek st with
      | Some ('u' | 'U') ->
          unsigned := true;
          advance st;
          suffixes ()
      | Some ('l' | 'L') ->
          long := true;
          advance st;
          suffixes ()
      | _ -> ()
    in
    suffixes ();
    let ty : Ctype.t =
      match (!unsigned, !long) with
      | false, false -> Int
      | true, false -> UInt
      | false, true -> Long
      | true, true -> ULong
    in
    (* decimal literals above 2^63-1 are valid unsigned 64-bit values;
       OCaml's plain Int64.of_string rejects them, the 0u prefix accepts
       the full unsigned range *)
    match Int64.of_string_opt digits with
    | Some v -> (Token.INT_LIT (v, ty), start_loc)
    | None -> (
        match Int64.of_string_opt ("0u" ^ digits) with
        | Some v -> (Token.INT_LIT (v, ty), start_loc)
        | None -> error st ("malformed integer literal " ^ digits))
  end

let lex_string st =
  let start_loc = loc st in
  advance st;
  (* opening quote *)
  let buf = Buffer.create 32 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' ->
        advance st;
        (match peek st with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some c -> Buffer.add_char buf c
        | None -> error st "unterminated escape");
        advance st;
        go ()
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  (Token.STRING_LIT (Buffer.contents buf), start_loc)

let lex_ident st =
  let start = st.pos in
  let start_loc = loc st in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  if Token.is_keyword s then (Token.KW s, start_loc)
  else (Token.IDENT s, start_loc)

let lex_operator st =
  let l = loc st in
  let c = match peek st with Some c -> c | None -> error st "eof" in
  let two tok = advance st; advance st; (tok, l) in
  let three tok = advance st; advance st; advance st; (tok, l) in
  let one tok = advance st; (tok, l) in
  match (c, peek2 st) with
  | '<', Some '<' ->
      if st.pos + 2 < String.length st.src && st.src.[st.pos + 2] = '=' then
        three Token.LSHIFT_ASSIGN
      else two Token.LSHIFT
  | '>', Some '>' ->
      if st.pos + 2 < String.length st.src && st.src.[st.pos + 2] = '=' then
        three Token.RSHIFT_ASSIGN
      else two Token.RSHIFT
  | '<', Some '=' -> two Token.LE
  | '>', Some '=' -> two Token.GE
  | '=', Some '=' -> two Token.EQEQ
  | '!', Some '=' -> two Token.NEQ
  | '&', Some '&' -> two Token.ANDAND
  | '|', Some '|' -> two Token.OROR
  | '+', Some '+' -> two Token.PLUSPLUS
  | '-', Some '-' -> two Token.MINUSMINUS
  | '-', Some '>' -> two Token.ARROW
  | '+', Some '=' -> two Token.PLUS_ASSIGN
  | '-', Some '=' -> two Token.MINUS_ASSIGN
  | '*', Some '=' -> two Token.STAR_ASSIGN
  | '/', Some '=' -> two Token.SLASH_ASSIGN
  | '%', Some '=' -> two Token.PERCENT_ASSIGN
  | '&', Some '=' -> two Token.AMP_ASSIGN
  | '|', Some '=' -> two Token.PIPE_ASSIGN
  | '^', Some '=' -> two Token.CARET_ASSIGN
  | '(', _ -> one Token.LPAREN
  | ')', _ -> one Token.RPAREN
  | '{', _ -> one Token.LBRACE
  | '}', _ -> one Token.RBRACE
  | '[', _ -> one Token.LBRACKET
  | ']', _ -> one Token.RBRACKET
  | ';', _ -> one Token.SEMI
  | ',', _ -> one Token.COMMA
  | ':', _ -> one Token.COLON
  | '?', _ -> one Token.QUESTION
  | '.', _ -> one Token.DOT
  | '+', _ -> one Token.PLUS
  | '-', _ -> one Token.MINUS
  | '*', _ -> one Token.STAR
  | '/', _ -> one Token.SLASH
  | '%', _ -> one Token.PERCENT
  | '&', _ -> one Token.AMP
  | '|', _ -> one Token.PIPE
  | '^', _ -> one Token.CARET
  | '~', _ -> one Token.TILDE
  | '!', _ -> one Token.BANG
  | '<', _ -> one Token.LT
  | '>', _ -> one Token.GT
  | '=', _ -> one Token.ASSIGN
  | c, _ -> error st (Printf.sprintf "unexpected character %C" c)

(** Tokenise [src].  Raises {!Error} on malformed input. *)
let lex src : lexed =
  let st = { src; pos = 0; line = 1; bol = 0 } in
  let tokens = ref [] in
  let defines = ref [] in
  let rec go () =
    skip_ws_and_comments st;
    match peek st with
    | None -> tokens := (Token.EOF, loc st) :: !tokens
    | Some '#' ->
        advance st;
        skip_ws_and_comments st;
        let line = read_line st in
        (if String.length line >= 7 && String.sub line 0 7 = "define " then
           match parse_define (String.sub line 7 (String.length line - 7)) with
           | Some kv -> defines := kv :: !defines
           | None -> ()
         else if String.length line >= 6 && String.sub line 0 6 = "define" then
           match parse_define (String.sub line 6 (String.length line - 6)) with
           | Some kv -> defines := kv :: !defines
           | None -> ());
        go ()
    | Some c when is_digit c -> tokens := lex_number st :: !tokens; go ()
    | Some '.' when (match peek2 st with Some c -> is_digit c | None -> false)
      ->
        tokens := lex_number st :: !tokens;
        go ()
    | Some '"' -> tokens := lex_string st :: !tokens; go ()
    | Some c when is_ident_start c -> tokens := lex_ident st :: !tokens; go ()
    | Some _ -> tokens := lex_operator st :: !tokens; go ()
  in
  go ();
  { tokens = Array.of_list (List.rev !tokens); defines = List.rev !defines }

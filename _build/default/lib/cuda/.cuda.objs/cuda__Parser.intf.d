lib/cuda/parser.mli: Ast Loc

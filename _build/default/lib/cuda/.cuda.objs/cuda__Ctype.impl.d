lib/cuda/ctype.ml: Fmt

lib/cuda/ast_util.ml: Ast Hashtbl List Option Set String

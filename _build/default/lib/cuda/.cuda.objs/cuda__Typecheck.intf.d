lib/cuda/typecheck.mli: Ast Ctype Loc

lib/cuda/ast.ml: Ctype Int64 List Loc String

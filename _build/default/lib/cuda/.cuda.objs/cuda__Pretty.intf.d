lib/cuda/pretty.mli: Ast Fmt

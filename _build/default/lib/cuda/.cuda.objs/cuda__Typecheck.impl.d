lib/cuda/typecheck.ml: Ast Ast_util Ctype Fmt Hashtbl List Loc Option Result

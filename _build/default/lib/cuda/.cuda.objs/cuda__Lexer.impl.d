lib/cuda/lexer.ml: Array Buffer Ctype Int64 List Loc Printf String Token

lib/cuda/pretty.ml: Ast Ctype Float Fmt Int64 List Printf

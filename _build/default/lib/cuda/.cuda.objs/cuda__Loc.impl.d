lib/cuda/loc.ml: Fmt

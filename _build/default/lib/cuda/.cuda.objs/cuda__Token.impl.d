lib/cuda/token.ml: Ctype Float Fmt Hashtbl Int64 List String

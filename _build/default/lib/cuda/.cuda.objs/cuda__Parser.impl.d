lib/cuda/parser.ml: Array Ast Ctype Fmt Hashtbl Int64 Lexer List Loc Option String Token

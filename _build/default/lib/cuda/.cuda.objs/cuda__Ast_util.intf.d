lib/cuda/ast_util.mli: Ast Hashtbl Set

(** Recursive-descent parser for the CUDA-C subset.

    Expressions use precedence climbing over the full C operator table;
    declarations are recognised by their leading type keyword (the
    subset has no typedef).  CUDA sugar resolved here: [threadIdx.x] et
    al. become {!Ast.Builtin}s, [#define]d integer constants substitute
    for their value, [asm("bar.sync i, n;")] becomes {!Ast.Bar_sync},
    and [__syncthreads()] becomes {!Ast.Sync}. *)

exception Error of string * Loc.t

(** Constant folding over integer expressions ([None] when not constant);
    used for array dimensions and exposed for tools. *)
val const_eval_opt : Ast.expr -> int64 option

(** Parse a full translation unit.
    @raise Error (or {!Lexer.Error}) on malformed input. *)
val parse_program : string -> Ast.program

(** Parse a file expected to contain exactly one [__global__] kernel.
    @raise Failure when there is not exactly one. *)
val parse_kernel : string -> Ast.program * Ast.fn

(** Testing conveniences. *)
val parse_expr_string : string -> Ast.expr

val parse_stmts_string : string -> Ast.stmt list

(* Tokens of the CUDA-C subset. *)

type t =
  | INT_LIT of int64 * Ctype.t  (** value, literal type from suffix *)
  | FLOAT_LIT of float * Ctype.t
  | STRING_LIT of string  (** only inside [asm(...)] *)
  | IDENT of string
  | KW of string  (** reserved word, canonical spelling *)
  (* punctuation / operators *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | COLON
  | QUESTION
  | DOT
  | ARROW
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | LSHIFT
  | RSHIFT
  | LT
  | GT
  | LE
  | GE
  | EQEQ
  | NEQ
  | ANDAND
  | OROR
  | ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR_ASSIGN
  | SLASH_ASSIGN
  | PERCENT_ASSIGN
  | AMP_ASSIGN
  | PIPE_ASSIGN
  | CARET_ASSIGN
  | LSHIFT_ASSIGN
  | RSHIFT_ASSIGN
  | PLUSPLUS
  | MINUSMINUS
  | EOF

(** Reserved words recognised by the lexer.  Type names are handled as
    keywords so the parser can distinguish declarations from expressions
    without a symbol table. *)
let keywords =
  [
    "void"; "bool"; "char"; "short"; "int"; "long"; "float"; "double";
    "signed"; "unsigned"; "const"; "volatile"; "restrict"; "__restrict__";
    "uint8_t"; "uint16_t"; "uint32_t"; "uint64_t"; "int8_t"; "int16_t";
    "int32_t"; "int64_t"; "size_t"; "uint";
    "if"; "else"; "for"; "while"; "do"; "return"; "break"; "continue";
    "goto"; "true"; "false"; "asm";
    "__global__"; "__device__"; "__shared__"; "__host__"; "__forceinline__";
    "__launch_bounds__"; "extern"; "static"; "inline";
  ]

let keyword_set : (string, unit) Hashtbl.t =
  let h = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace h k ()) keywords;
  h

let is_keyword s = Hashtbl.mem keyword_set s

let pp ppf = function
  | INT_LIT (v, _) -> Fmt.pf ppf "int literal %Ld" v
  | FLOAT_LIT (v, _) -> Fmt.pf ppf "float literal %g" v
  | STRING_LIT s -> Fmt.pf ppf "string %S" s
  | IDENT s -> Fmt.pf ppf "identifier %s" s
  | KW s -> Fmt.pf ppf "keyword %s" s
  | LPAREN -> Fmt.string ppf "'('"
  | RPAREN -> Fmt.string ppf "')'"
  | LBRACE -> Fmt.string ppf "'{'"
  | RBRACE -> Fmt.string ppf "'}'"
  | LBRACKET -> Fmt.string ppf "'['"
  | RBRACKET -> Fmt.string ppf "']'"
  | SEMI -> Fmt.string ppf "';'"
  | COMMA -> Fmt.string ppf "','"
  | COLON -> Fmt.string ppf "':'"
  | QUESTION -> Fmt.string ppf "'?'"
  | DOT -> Fmt.string ppf "'.'"
  | ARROW -> Fmt.string ppf "'->'"
  | PLUS -> Fmt.string ppf "'+'"
  | MINUS -> Fmt.string ppf "'-'"
  | STAR -> Fmt.string ppf "'*'"
  | SLASH -> Fmt.string ppf "'/'"
  | PERCENT -> Fmt.string ppf "'%'"
  | AMP -> Fmt.string ppf "'&'"
  | PIPE -> Fmt.string ppf "'|'"
  | CARET -> Fmt.string ppf "'^'"
  | TILDE -> Fmt.string ppf "'~'"
  | BANG -> Fmt.string ppf "'!'"
  | LSHIFT -> Fmt.string ppf "'<<'"
  | RSHIFT -> Fmt.string ppf "'>>'"
  | LT -> Fmt.string ppf "'<'"
  | GT -> Fmt.string ppf "'>'"
  | LE -> Fmt.string ppf "'<='"
  | GE -> Fmt.string ppf "'>='"
  | EQEQ -> Fmt.string ppf "'=='"
  | NEQ -> Fmt.string ppf "'!='"
  | ANDAND -> Fmt.string ppf "'&&'"
  | OROR -> Fmt.string ppf "'||'"
  | ASSIGN -> Fmt.string ppf "'='"
  | PLUS_ASSIGN -> Fmt.string ppf "'+='"
  | MINUS_ASSIGN -> Fmt.string ppf "'-='"
  | STAR_ASSIGN -> Fmt.string ppf "'*='"
  | SLASH_ASSIGN -> Fmt.string ppf "'/='"
  | PERCENT_ASSIGN -> Fmt.string ppf "'%%='"
  | AMP_ASSIGN -> Fmt.string ppf "'&='"
  | PIPE_ASSIGN -> Fmt.string ppf "'|='"
  | CARET_ASSIGN -> Fmt.string ppf "'^='"
  | LSHIFT_ASSIGN -> Fmt.string ppf "'<<='"
  | RSHIFT_ASSIGN -> Fmt.string ppf "'>>='"
  | PLUSPLUS -> Fmt.string ppf "'++'"
  | MINUSMINUS -> Fmt.string ppf "'--'"
  | EOF -> Fmt.string ppf "end of input"

let to_string t = Fmt.str "%a" pp t

let equal (a : t) (b : t) =
  match (a, b) with
  | INT_LIT (x, tx), INT_LIT (y, ty) -> Int64.equal x y && Ctype.equal tx ty
  | FLOAT_LIT (x, tx), FLOAT_LIT (y, ty) -> Float.equal x y && Ctype.equal tx ty
  | STRING_LIT x, STRING_LIT y | IDENT x, IDENT y | KW x, KW y ->
      String.equal x y
  | a, b -> a = b

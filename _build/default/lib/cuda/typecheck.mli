(** A lightweight semantic checker: declaration-before-use, known
    intrinsics/device functions with correct arity, assignable lvalues,
    consistent-enough types for size computation and interpretation.
    Not a full C type checker; it is the validation HFuse needs before
    fusing.  Errors carry source locations. *)

exception Error of string * Loc.t

(** Intrinsics the whole pipeline understands (checker and interpreter
    agree on this list). *)
val intrinsics : string list

val is_intrinsic : string -> bool

(** Infer an expression's type in an environment; used by tools. *)
type env

val mk_env : Ast.program -> env
val declare : env -> Loc.t -> string -> Ctype.t -> unit
val type_of : env -> Loc.t -> Ast.expr -> Ctype.t

(** Check one function in its translation unit.
    @raise Error on the first problem. *)
val check_fn : Ast.program -> Ast.fn -> unit

val check_program : Ast.program -> unit
val check_program_result : Ast.program -> (unit, string * Loc.t) result

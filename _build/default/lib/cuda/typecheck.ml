(* A lightweight semantic checker for the CUDA subset.

   This is not a full C type checker; it is the validation layer HFuse
   needs before fusing: every variable must be declared before use, every
   called function must be a known intrinsic or a [__device__] function of
   the translation unit, lvalues must be assignable, and expression types
   must be consistent enough to compute sizes (shared-memory accounting)
   and to drive the interpreter.  Errors carry source locations. *)

exception Error of string * Loc.t

type env = {
  vars : (string, Ctype.t) Hashtbl.t;  (** in-scope variables *)
  prog : Ast.program;  (** for device-function lookup *)
  mutable scopes : string list list;  (** names per nesting level *)
}

(** Intrinsics understood by the whole pipeline (parser accepts any call;
    the checker and the interpreter agree on this list).  Each entry maps
    to a typing rule tag. *)
let intrinsics =
  [
    "min"; "max"; "fminf"; "fmaxf"; "fabsf"; "sqrtf"; "rsqrtf"; "expf";
    "logf"; "floorf"; "ceilf"; "roundf";
    "atomicAdd"; "atomicMax"; "atomicMin"; "atomicExch"; "atomicCAS";
    "__shfl_xor_sync"; "__shfl_down_sync"; "__shfl_sync"; "__ballot_sync";
    "WARP_SHFL_XOR"; "WARP_SHFL_DOWN";
    "getMSB"; "rotr32"; "rotl32"; "rotr64"; "rotl64"; "__syncwarp";
    "__threadfence"; "__threadfence_block";
  ]

let is_intrinsic name = List.mem name intrinsics

let mk_env (prog : Ast.program) : env =
  { vars = Hashtbl.create 64; prog; scopes = [ [] ] }

let push_scope env = env.scopes <- [] :: env.scopes

let pop_scope env =
  match env.scopes with
  | top :: rest ->
      List.iter (Hashtbl.remove env.vars) top;
      env.scopes <- rest
  | [] -> ()

let declare env loc name ty =
  if Hashtbl.mem env.vars name then
    raise (Error (Fmt.str "redeclaration of %s" name, loc));
  Hashtbl.replace env.vars name ty;
  match env.scopes with
  | top :: rest -> env.scopes <- (name :: top) :: rest
  | [] -> env.scopes <- [ [ name ] ]

let lookup env loc name =
  match Hashtbl.find_opt env.vars name with
  | Some t -> t
  | None -> raise (Error (Fmt.str "use of undeclared variable %s" name, loc))

let rec is_lvalue : Ast.expr -> bool = function
  | Var _ -> true
  | Index (a, _) -> is_lvalue_or_loadable a
  | Deref _ -> true
  | _ -> false

and is_lvalue_or_loadable = function
  | Var _ -> true
  | Index (a, _) -> is_lvalue_or_loadable a
  | Deref _ -> true
  | Cast (Ctype.Ptr _, e) -> is_lvalue_or_loadable e
  | _ -> false

(* Infer the type of an expression.  [loc] is the innermost statement
   location, used for error reporting. *)
let rec type_of env loc (e : Ast.expr) : Ctype.t =
  match e with
  | Int_lit (_, t) | Float_lit (_, t) -> t
  | Bool_lit _ -> Bool
  | Var x -> lookup env loc x
  | Builtin _ -> UInt
  | Unop (Lnot, e) ->
      ignore (type_of env loc e);
      Bool
  | Unop (Neg, e) | Unop (Bnot, e) -> (
      match type_of env loc e with
      | t when Ctype.is_arith t -> t
      | t ->
          raise
            (Error
               ( Fmt.str "unary operator applied to non-arithmetic type %s"
                   (Ctype.to_string t),
                 loc )))
  | Binop ((Land | Lor), a, b) ->
      ignore (type_of env loc a);
      ignore (type_of env loc b);
      Bool
  | Binop ((Eq | Ne | Lt | Le | Gt | Ge), a, b) ->
      ignore (type_of env loc a);
      ignore (type_of env loc b);
      Bool
  | Binop ((Shl | Shr), a, b) -> (
      ignore (type_of env loc b);
      match type_of env loc a with
      | t when Ctype.is_integer t -> t
      | Bool -> Int
      | t ->
          raise
            (Error
               (Fmt.str "shift of non-integer type %s" (Ctype.to_string t), loc)))
  | Binop ((Band | Bor | Bxor | Mod), a, b) -> (
      let ta = type_of env loc a and tb = type_of env loc b in
      match (ta, tb) with
      | ta, tb when Ctype.is_integer ta && Ctype.is_integer tb ->
          Ctype.arith_join ta tb
      | _ ->
          raise
            (Error
               ( Fmt.str "integer operator on %s and %s" (Ctype.to_string ta)
                   (Ctype.to_string tb),
                 loc )))
  | Binop ((Add | Sub), a, b) -> (
      let ta = type_of env loc a and tb = type_of env loc b in
      match (ta, tb) with
      (* pointer arithmetic *)
      | (Ptr _ as p), t when Ctype.is_integer t -> p
      | t, (Ptr _ as p) when Ctype.is_integer t -> p
      | (Array (el, _)), t when Ctype.is_integer t -> Ptr el
      | ta, tb when Ctype.is_arith ta && Ctype.is_arith tb ->
          Ctype.arith_join ta tb
      | _ ->
          raise
            (Error
               ( Fmt.str "cannot add/sub %s and %s" (Ctype.to_string ta)
                   (Ctype.to_string tb),
                 loc )))
  | Binop ((Mul | Div), a, b) -> (
      let ta = type_of env loc a and tb = type_of env loc b in
      match (ta, tb) with
      | ta, tb when Ctype.is_arith ta && Ctype.is_arith tb ->
          Ctype.arith_join ta tb
      | _ ->
          raise
            (Error
               ( Fmt.str "cannot multiply %s and %s" (Ctype.to_string ta)
                   (Ctype.to_string tb),
                 loc )))
  | Assign (l, r) ->
      if not (is_lvalue l) then
        raise (Error ("left side of assignment is not an lvalue", loc));
      let tl = type_of env loc l in
      ignore (type_of env loc r);
      tl
  | Op_assign (_, l, r) ->
      if not (is_lvalue l) then
        raise (Error ("left side of assignment is not an lvalue", loc));
      let tl = type_of env loc l in
      ignore (type_of env loc r);
      tl
  | Incdec { lval; _ } ->
      if not (is_lvalue lval) then
        raise (Error ("operand of ++/-- is not an lvalue", loc));
      type_of env loc lval
  | Ternary (c, a, b) ->
      ignore (type_of env loc c);
      let ta = type_of env loc a and tb = type_of env loc b in
      if Ctype.is_arith ta && Ctype.is_arith tb then Ctype.arith_join ta tb
      else ta
  | Call (f, args) -> type_of_call env loc f args
  | Index (a, i) -> (
      let ti = type_of env loc i in
      if not (Ctype.is_integer ti) then
        raise
          (Error
             (Fmt.str "array index has type %s" (Ctype.to_string ti), loc));
      match type_of env loc a with
      | Ptr t | Array (t, _) -> t
      | t ->
          raise
            (Error
               ( Fmt.str "subscript of non-pointer type %s"
                   (Ctype.to_string t),
                 loc )))
  | Deref a -> (
      match type_of env loc a with
      | Ptr t | Array (t, _) -> t
      | t ->
          raise
            (Error
               (Fmt.str "dereference of non-pointer %s" (Ctype.to_string t), loc)))
  | Addr_of a ->
      if not (is_lvalue a) then
        raise (Error ("address-of requires an lvalue", loc));
      Ptr (type_of env loc a)
  | Cast (t, e) ->
      ignore (type_of env loc e);
      t

and type_of_call env loc f args : Ctype.t =
  let targs = List.map (type_of env loc) args in
  let arity n =
    if List.length args <> n then
      raise
        (Error
           ( Fmt.str "%s expects %d arguments, got %d" f n (List.length args),
             loc ))
  in
  match f with
  | "min" | "max" -> (
      arity 2;
      match targs with
      | [ a; b ] when Ctype.is_arith a && Ctype.is_arith b ->
          Ctype.arith_join a b
      | _ -> raise (Error (f ^ " requires arithmetic arguments", loc)))
  | "fminf" | "fmaxf" ->
      arity 2;
      Float
  | "fabsf" | "sqrtf" | "rsqrtf" | "expf" | "logf" | "floorf" | "ceilf"
  | "roundf" ->
      arity 1;
      Float
  | "atomicAdd" | "atomicMax" | "atomicMin" | "atomicExch" -> (
      arity 2;
      match targs with
      | [ Ptr t; _ ] -> t
      | [ t; _ ] ->
          raise
            (Error
               ( Fmt.str "%s expects a pointer first argument, got %s" f
                   (Ctype.to_string t),
                 loc ))
      | _ -> assert false)
  | "atomicCAS" -> (
      arity 3;
      match targs with
      | [ Ptr t; _; _ ] -> t
      | _ -> raise (Error ("atomicCAS expects a pointer first argument", loc)))
  | "__shfl_xor_sync" | "__shfl_down_sync" | "__shfl_sync" -> (
      (* (mask, var, laneDelta [, width]) *)
      if List.length args < 3 || List.length args > 4 then
        raise (Error (f ^ " expects 3 or 4 arguments", loc));
      match targs with _ :: t :: _ -> t | _ -> assert false)
  | "WARP_SHFL_XOR" | "WARP_SHFL_DOWN" -> (
      (* PyTorch-style wrapper: (var, laneDelta [, width]) *)
      if List.length args < 2 || List.length args > 3 then
        raise (Error (f ^ " expects 2 or 3 arguments", loc));
      match targs with t :: _ -> t | _ -> assert false)
  | "__ballot_sync" ->
      arity 2;
      UInt
  | "getMSB" ->
      arity 1;
      Int
  | "rotr32" | "rotl32" ->
      arity 2;
      UInt
  | "rotr64" | "rotl64" ->
      arity 2;
      ULong
  | "__syncwarp" | "__threadfence" | "__threadfence_block" -> Void
  | f -> (
      (* device function of this translation unit *)
      match Ast.find_fn env.prog f with
      | Some fn ->
          if fn.f_kind <> Device then
            raise (Error (Fmt.str "cannot call __global__ %s" f, loc));
          arity (List.length fn.f_params);
          fn.f_ret
      | None -> raise (Error (Fmt.str "call to unknown function %s" f, loc)))

(* ------------------------------------------------------------------ *)
(* Statement checking                                                   *)
(* ------------------------------------------------------------------ *)

let check_decl env loc (d : Ast.decl) =
  (match d.d_storage with
  | Shared_extern -> (
      match d.d_type with
      | Array (_, None) -> ()
      | t ->
          raise
            (Error
               ( Fmt.str
                   "extern __shared__ %s must be an incomplete array, got %s"
                   d.d_name (Ctype.to_string t),
                 loc )))
  | Shared -> (
      match d.d_type with
      | Array (_, Some _) -> ()
      | t ->
          raise
            (Error
               ( Fmt.str "__shared__ %s must be a sized array, got %s" d.d_name
                   (Ctype.to_string t),
                 loc )))
  | Local -> ());
  (match d.d_init with
  | Some e ->
      if d.d_storage <> Local then
        raise (Error ("shared variables cannot have initializers", loc));
      ignore (type_of env loc e)
  | None -> ());
  declare env loc d.d_name d.d_type

let rec check_stmts env ~in_loop ~labels (stmts : Ast.stmt list) =
  push_scope env;
  List.iter (check_stmt env ~in_loop ~labels) stmts;
  pop_scope env

and check_stmt env ~in_loop ~labels (s : Ast.stmt) =
  let loc = s.s_loc in
  match s.s with
  | Decl d -> check_decl env loc d
  | Expr e -> ignore (type_of env loc e)
  | If (c, t, e) ->
      ignore (type_of env loc c);
      check_stmts env ~in_loop ~labels t;
      check_stmts env ~in_loop ~labels e
  | For (init, cond, step, body) ->
      push_scope env;
      (match init with
      | Some (For_decl ds) -> List.iter (check_decl env loc) ds
      | Some (For_expr e) -> ignore (type_of env loc e)
      | None -> ());
      Option.iter (fun e -> ignore (type_of env loc e)) cond;
      Option.iter (fun e -> ignore (type_of env loc e)) step;
      check_stmts env ~in_loop:true ~labels body;
      pop_scope env
  | While (c, body) ->
      ignore (type_of env loc c);
      check_stmts env ~in_loop:true ~labels body
  | Do_while (body, c) ->
      check_stmts env ~in_loop:true ~labels body;
      ignore (type_of env loc c)
  | Return e -> Option.iter (fun e -> ignore (type_of env loc e)) e
  | Break | Continue ->
      if not in_loop then
        raise (Error ("break/continue outside of a loop", loc))
  | Sync | Bar_sync _ | Nop | Label _ -> ()
  | Goto l ->
      if not (Ast_util.StrSet.mem l labels) then
        raise (Error (Fmt.str "goto to undefined label %s" l, loc))
  | Block b -> check_stmts env ~in_loop ~labels b

(** Check one function in the context of its translation unit.  Raises
    {!Error} on the first problem found. *)
let check_fn (prog : Ast.program) (f : Ast.fn) : unit =
  let env = mk_env prog in
  List.iter
    (fun (p : Ast.param) -> declare env Loc.dummy p.p_name p.p_type)
    f.f_params;
  let labels = Ast_util.labels f.f_body in
  check_stmts env ~in_loop:false ~labels f.f_body

(** Check every function of a program. *)
let check_program (prog : Ast.program) : unit =
  List.iter (check_fn prog) prog.functions

(** [check_program] as a result, for callers that prefer not to catch. *)
let check_program_result prog : (unit, string * Loc.t) result =
  match check_program prog with
  | () -> Ok ()
  | exception Error (msg, loc) -> Result.error (msg, loc)

(* The C type model of the CUDA subset.

   The subset is deliberately small but covers every type appearing in the
   nine benchmark kernels of the HFuse paper: 32/64-bit signed/unsigned
   integers (the crypto kernels need exact wrapping semantics), single- and
   double-precision floats, booleans, characters, pointers and
   statically-sized arrays.  Scalar sizes follow the CUDA ABI (LP64 device
   side: [int] is 32-bit, [long long]/[uint64_t] is 64-bit, pointers are
   8 bytes). *)

type t =
  | Void
  | Bool
  | Char  (** signed 8-bit *)
  | UChar  (** unsigned 8-bit; [extern __shared__ unsigned char smem[]] *)
  | Short
  | UShort
  | Int  (** signed 32-bit *)
  | UInt  (** unsigned 32-bit; also [uint32_t] *)
  | Long  (** signed 64-bit; also [int64_t], [long long] *)
  | ULong  (** unsigned 64-bit; also [uint64_t], [size_t] *)
  | Float
  | Double
  | Ptr of t
  | Array of t * int option
      (** [Array (t, Some n)] is [t x[n]]; [Array (t, None)] is an
          incomplete array type, used for [extern __shared__] buffers whose
          size is supplied at launch time. *)

let rec equal a b =
  match (a, b) with
  | Void, Void
  | Bool, Bool
  | Char, Char
  | UChar, UChar
  | Short, Short
  | UShort, UShort
  | Int, Int
  | UInt, UInt
  | Long, Long
  | ULong, ULong
  | Float, Float
  | Double, Double ->
      true
  | Ptr a, Ptr b -> equal a b
  | Array (a, na), Array (b, nb) -> equal a b && na = nb
  | _ -> false

let is_integer = function
  | Bool | Char | UChar | Short | UShort | Int | UInt | Long | ULong -> true
  | _ -> false

let is_float = function Float | Double -> true | _ -> false
let is_arith t = is_integer t || is_float t
let is_pointer = function Ptr _ -> true | _ -> false
let is_array = function Array _ -> true | _ -> false

let is_unsigned = function
  | Bool | UChar | UShort | UInt | ULong -> true
  | _ -> false

(** Size in bytes, per the CUDA device ABI.  Raises [Invalid_argument] for
    [Void] and incomplete arrays, whose size is not representable. *)
let rec sizeof = function
  | Void -> invalid_arg "Ctype.sizeof: void"
  | Bool | Char | UChar -> 1
  | Short | UShort -> 2
  | Int | UInt | Float -> 4
  | Long | ULong | Double | Ptr _ -> 8
  | Array (t, Some n) -> n * sizeof t
  | Array (_, None) -> invalid_arg "Ctype.sizeof: incomplete array"

(** Element type behind a pointer or array; [None] for scalars. *)
let element = function Ptr t | Array (t, _) -> Some t | _ -> None

(** Integer conversion rank, used for usual arithmetic conversions. *)
let rank = function
  | Bool -> 1
  | Char | UChar -> 2
  | Short | UShort -> 3
  | Int | UInt -> 4
  | Long | ULong -> 5
  | _ -> invalid_arg "Ctype.rank: not an integer type"

(** Result type of a binary arithmetic operation per (simplified) C usual
    arithmetic conversions: floats dominate integers, larger rank dominates
    smaller, unsigned dominates signed at equal rank, and everything below
    [int] promotes to [int]. *)
let arith_join a b =
  match (a, b) with
  | Double, _ | _, Double -> Double
  | Float, _ | _, Float -> Float
  | a, b when is_integer a && is_integer b ->
      let promote t = if rank t < rank Int then Int else t in
      let a = promote a and b = promote b in
      if rank a > rank b then a
      else if rank b > rank a then b
      else if is_unsigned a || is_unsigned b then
        if rank a = rank Long then ULong else UInt
      else a
  | _ -> invalid_arg "Ctype.arith_join: non-arithmetic operand"

let rec pp ppf t =
  match t with
  | Void -> Fmt.string ppf "void"
  | Bool -> Fmt.string ppf "bool"
  | Char -> Fmt.string ppf "char"
  | UChar -> Fmt.string ppf "unsigned char"
  | Short -> Fmt.string ppf "short"
  | UShort -> Fmt.string ppf "unsigned short"
  | Int -> Fmt.string ppf "int"
  | UInt -> Fmt.string ppf "unsigned int"
  | Long -> Fmt.string ppf "long long"
  | ULong -> Fmt.string ppf "unsigned long long"
  | Float -> Fmt.string ppf "float"
  | Double -> Fmt.string ppf "double"
  | Ptr t -> Fmt.pf ppf "%a*" pp t
  | Array (t, Some n) -> Fmt.pf ppf "%a[%d]" pp t n
  | Array (t, None) -> Fmt.pf ppf "%a[]" pp t

let to_string t = Fmt.str "%a" pp t

(** Declarator split: C syntax writes array sizes after the identifier.
    [base_and_suffix (Array (Int, Some 4))] is [(Int, "[4]")]. *)
let base_and_suffix t =
  let rec go t acc =
    match t with
    | Array (t, Some n) -> go t (acc ^ Fmt.str "[%d]" n)
    | Array (t, None) -> go t (acc ^ "[]")
    | t -> (t, acc)
  in
  go t ""

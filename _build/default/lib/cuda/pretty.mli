(** CUDA source emission.  HFuse is source-to-source: the output must be
    compilable CUDA-C.  Precedence-aware (inserts only the parentheses
    the grammar needs); exercised by a parse/print round-trip property
    test. *)

val pp_expr : Ast.expr Fmt.t
val pp_decl : Ast.decl Fmt.t
val pp_stmt : Ast.stmt Fmt.t
val pp_param : Ast.param Fmt.t
val pp_fn : Ast.fn Fmt.t
val pp_program : Ast.program Fmt.t

val expr_to_string : Ast.expr -> string
val stmt_to_string : Ast.stmt -> string
val fn_to_string : Ast.fn -> string
val program_to_string : Ast.program -> string

(** Exposed for tools that print operators. *)
val string_of_binop : Ast.binop -> string

val string_of_builtin : Ast.builtin -> string

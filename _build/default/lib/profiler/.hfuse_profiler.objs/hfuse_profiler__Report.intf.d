lib/profiler/report.mli: Buffer Experiment Kernel_corpus

lib/profiler/report.ml: Buffer Experiment Float Fmt Gpusim Kernel_corpus List Option Printf Spec

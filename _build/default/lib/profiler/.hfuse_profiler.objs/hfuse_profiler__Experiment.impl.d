lib/profiler/experiment.ml: Arch Float Gpusim Hashtbl Hfuse_core Kernel_corpus List Memory Metrics Option Registry Runner Spec Timing

lib/profiler/runner.mli: Gpusim Hfuse_core Kernel_corpus

lib/profiler/runner.ml: Arch Gpusim Hashtbl Hfuse_core Kernel_corpus Launch Memory Printf Spec Timing Trace Workload

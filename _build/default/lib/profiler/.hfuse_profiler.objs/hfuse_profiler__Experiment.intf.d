lib/profiler/experiment.mli: Gpusim Kernel_corpus

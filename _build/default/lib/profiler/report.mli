(** Text renderings of the evaluation artifacts, in the shape the paper
    prints them ("X / Y" cells are 1080Ti / V100). *)

val pair_name : Kernel_corpus.Spec.t * Kernel_corpus.Spec.t -> string
val render_sweep : Buffer.t -> Experiment.sweep -> unit
val figure7_to_string : Experiment.sweep list -> string
val figure8_to_string : Experiment.kernel_row list -> string
val figure9_to_string : Experiment.fused_row list -> string

(* Text renderings of the evaluation artifacts, in the shape the paper
   prints them ("X / Y" cells are 1080Ti / V100). *)

open Kernel_corpus

let pair_name ((s1, s2) : Spec.t * Spec.t) =
  Printf.sprintf "*%s*+%s" s1.Spec.name s2.Spec.name

let pp_reg_bound ppf = function
  | None -> Fmt.string ppf "-"
  | Some r -> Fmt.int ppf r

(* ------------------------------------------------------------------ *)
(* Figure 7                                                             *)
(* ------------------------------------------------------------------ *)

let render_sweep (b : Buffer.t) (s : Experiment.sweep) =
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "%s on %s\n" (pair_name s.pair) s.arch.Gpusim.Arch.name;
  add
    "  %8s %8s %10s | %8s %8s %8s | %10s %9s\n"
    "size1" "ratio" "native ms" "HFuse%" "VFuse%" "Naive%" "partition" "regbound";
  List.iter
    (fun (p : Experiment.point) ->
      let sp fused = Experiment.speedup ~native:p.native_ms ~fused in
      add "  %8d %8.2f %10.4f | %+8.1f %8s %8s | %5d/%-5d %9s\n" p.size1
        p.ratio p.native_ms (sp p.hfuse_ms)
        (match p.vfuse_ms with
        | Some v -> Printf.sprintf "%+.1f" (sp v)
        | None -> "n/a")
        (match p.naive_ms with
        | Some v -> Printf.sprintf "%+.1f" (sp v)
        | None -> "-")
        p.hfuse_d1 p.hfuse_d2
        (Fmt.str "%a" pp_reg_bound p.hfuse_reg_bound))
    s.points;
  add "  average speedup: HFuse %+.1f%%   VFuse %s\n\n"
    (Experiment.avg_hfuse_speedup s)
    (let v = Experiment.avg_vfuse_speedup s in
     if Float.is_nan v then "n/a" else Printf.sprintf "%+.1f%%" v)

let figure7_to_string (sweeps : Experiment.sweep list) : string =
  let b = Buffer.create 8192 in
  Buffer.add_string b
    "== Figure 7: kernel execution time speedup vs execution-time ratio ==\n\n";
  List.iter (render_sweep b) sweeps;
  (* summary in the shape of the paper's headline claims *)
  let by_arch name =
    List.filter (fun (s : Experiment.sweep) -> s.arch.Gpusim.Arch.name = name)
      sweeps
  in
  let wins sweeps =
    List.length
      (List.filter
         (fun s ->
           let h = Experiment.avg_hfuse_speedup s in
           let v = Experiment.avg_vfuse_speedup s in
           h > 0.0 && (Float.is_nan v || h > v))
         sweeps)
  in
  List.iter
    (fun arch_name ->
      let ss = by_arch arch_name in
      if ss <> [] then
        Buffer.add_string b
          (Printf.sprintf
             "%s: HFuse beats both native and VFuse (on average) for %d of \
              %d pairs\n"
             arch_name (wins ss) (List.length ss)))
    [ "1080Ti"; "V100" ];
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Figure 8                                                             *)
(* ------------------------------------------------------------------ *)

let cell2 f rows =
  (* "X / Y" pairs across the two architectures *)
  match rows with
  | [ (_, a); (_, b) ] -> Printf.sprintf "%.2f / %.2f" (f a) (f b)
  | [ (_, a) ] -> Printf.sprintf "%.2f" (f a)
  | _ -> "-"

let figure8_to_string (rows : Experiment.kernel_row list) : string =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "== Figure 8: metrics of individual kernels (1080Ti / V100) ==\n\n";
  add "%-12s %22s %22s %22s %22s\n" "Kernel" "Exec time (ms)"
    "IssueSlotUtil (%)" "MemInst Stall (%)" "Occupancy (%)";
  List.iter
    (fun (r : Experiment.kernel_row) ->
      add "%-12s %22s %22s %22s %22s\n" r.kernel.Spec.name
        (cell2 (fun m -> m.Gpusim.Metrics.time_ms) r.per_arch)
        (cell2 (fun m -> m.Gpusim.Metrics.issue_slot_util) r.per_arch)
        (cell2 (fun m -> m.Gpusim.Metrics.mem_stall) r.per_arch)
        (cell2 (fun m -> m.Gpusim.Metrics.occupancy) r.per_arch))
    rows;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Figure 9                                                             *)
(* ------------------------------------------------------------------ *)

let figure9_to_string (rows : Experiment.fused_row list) : string =
  let b = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add
    "== Figure 9: metrics of HFuse fused kernels (per architecture) ==\n\n";
  add "%-24s %-7s %-9s %9s %10s %10s %8s %6s %10s\n" "Pair" "Arch" "Type"
    "Speedup%" "FusedUtil%" "NativeUtil%" "MemStall%" "Occ%" "partition";
  List.iter
    (fun (r : Experiment.fused_row) ->
      let variant name (v : Experiment.fused_variant) =
        add "%-24s %-7s %-9s %9.1f %10.2f %10.2f %8.1f %6.1f %6d/%-4d%s\n"
          (Printf.sprintf "%s+%s" (fst r.f_pair).Spec.name
             (snd r.f_pair).Spec.name)
          r.f_arch.Gpusim.Arch.name name v.speedup_pct
          v.metrics.Gpusim.Metrics.issue_slot_util r.native_util
          v.metrics.Gpusim.Metrics.mem_stall v.metrics.Gpusim.Metrics.occupancy
          v.d1 v.d2
          (match v.reg_bound with
          | None -> ""
          | Some rb -> Printf.sprintf " r0=%d" rb)
      in
      variant "N-RegCap" r.no_regcap;
      Option.iter (variant "RegCap") r.regcap)
    rows;
  Buffer.contents b

(* Drives the four execution modes of the evaluation — native (parallel
   streams), vertically fused, horizontally fused (searched), and the
   Naive even-partition variant — through the simulator, with a trace
   cache so ratio sweeps don't re-interpret unchanged kernels.

   Profiling launches execute only the traced blocks ([exec_blocks]):
   the timing model replays block traces cyclically over the full grid,
   so functional execution of every block matters only for the
   correctness checks, which use [validate_*] with fresh memory. *)

open Gpusim
open Kernel_corpus

let trace_blocks = 1

(** A corpus kernel bound to a workload instance in some memory. *)
type configured = {
  spec : Spec.t;
  size : int;
  info : Hfuse_core.Kernel_info.t;  (** at native block dimensions *)
  inst : Workload.instance;
  mem : Memory.t;
}

let configure (mem : Memory.t) (spec : Spec.t) ~(size : int) : configured =
  let inst = spec.instantiate mem ~size in
  let info = Spec.kernel_info spec inst in
  { spec; size; info; inst; mem }

(* ------------------------------------------------------------------ *)
(* Trace cache                                                          *)
(* ------------------------------------------------------------------ *)

(* Keyed by kernel identity, workload size and block dimension: the
   dynamic trace of a kernel depends on exactly these (inputs are
   seed-deterministic). The cache is per-process and unbounded; a full
   figure-7 sweep fits comfortably. *)
let cache : (string * int * int, Trace.block array) Hashtbl.t =
  Hashtbl.create 64

let clear_cache () = Hashtbl.reset cache

(** Traces of [c] at block dimension [d] (defaults to native). *)
let traces_of (c : configured) ?(block_dim : int option) () :
    Trace.block array =
  let d =
    match block_dim with
    | None -> Hfuse_core.Kernel_info.threads_per_block c.info
    | Some d -> d
  in
  let key = (c.spec.name, c.size, d) in
  match Hashtbl.find_opt cache key with
  | Some t -> t
  | None ->
      let info = Hfuse_core.Kernel_info.with_block_dim c.info d in
      let r =
        Launch.launch_info ~exec_blocks:trace_blocks c.mem info
          ~args:c.inst.args ~trace_blocks
      in
      Hashtbl.replace cache key r.block_traces;
      r.block_traces

(* ------------------------------------------------------------------ *)
(* Timing-spec constructors                                             *)
(* ------------------------------------------------------------------ *)

let static_smem (info : Hfuse_core.Kernel_info.t) : int =
  Launch.static_shared_bytes info.fn.f_body

let spec_of (c : configured) ?(block_dim : int option) ~(stream : int) () :
    Timing.launch_spec =
  let d =
    match block_dim with
    | None -> Hfuse_core.Kernel_info.threads_per_block c.info
    | Some d -> d
  in
  {
    Timing.label = c.spec.name;
    block_traces = traces_of c ~block_dim:d ();
    grid = c.inst.grid;
    threads_per_block = d;
    regs = c.spec.regs;
    spill = 0;
    smem = static_smem c.info + c.inst.smem_dynamic;
    stream;
  }

(** Native baseline: both kernels submitted via parallel streams. *)
let native (arch : Arch.t) (c1 : configured) (c2 : configured) :
    Timing.report =
  Timing.run arch [ spec_of c1 ~stream:0 (); spec_of c2 ~stream:1 () ]

(** One kernel alone (Fig. 8 metrics; also the ratio probes). *)
let solo (arch : Arch.t) (c : configured) : Timing.report =
  Timing.run arch [ spec_of c ~stream:0 () ]

(* ------------------------------------------------------------------ *)
(* Fused runs                                                           *)
(* ------------------------------------------------------------------ *)

(** Interpret a horizontally fused kernel (profiling mode) and time it
    under an optional register bound. *)
let hfuse_report (arch : Arch.t) (c1 : configured) (c2 : configured)
    (f : Hfuse_core.Hfuse.t) ~(reg_bound : int option) : Timing.report =
  let finfo = Hfuse_core.Hfuse.info f in
  let key =
    ( Printf.sprintf "hfuse:%s+%s:%d" c1.spec.name c2.spec.name f.d1,
      c1.size * 1_000_003 + c2.size,
      f.d1 + f.d2 )
  in
  let traces =
    match Hashtbl.find_opt cache key with
    | Some t -> t
    | None ->
        let r =
          Launch.launch_info ~exec_blocks:trace_blocks c1.mem finfo
            ~args:(c1.inst.args @ c2.inst.args)
            ~trace_blocks
        in
        Hashtbl.replace cache key r.block_traces;
        r.block_traces
  in
  let regs, spill =
    match reg_bound with
    | Some r when r < f.regs -> (r, f.regs - r)
    | _ -> (f.regs, 0)
  in
  Timing.run arch
    [
      {
        Timing.label = f.fn.f_name;
        block_traces = traces;
        grid = f.grid;
        threads_per_block = f.d1 + f.d2;
        regs;
        spill;
        smem = static_smem finfo + f.smem_dynamic;
        stream = 0;
      };
    ]

(** Vertically fused baseline.  Both kernels run at the larger of the
    two native block dimensions (tunable kernels adapt; a fixed smaller
    kernel is guarded, which {!Hfuse_core.Vfuse} checks is legal). *)
let vfuse_block_dim (c1 : configured) (c2 : configured) : int =
  let d1 = Hfuse_core.Kernel_info.threads_per_block c1.info in
  let d2 = Hfuse_core.Kernel_info.threads_per_block c2.info in
  max d1 d2

let vfuse_generate (c1 : configured) (c2 : configured) : Hfuse_core.Vfuse.t =
  let d = vfuse_block_dim c1 c2 in
  let adapt (c : configured) =
    match c.info.tunability with
    | Hfuse_core.Kernel_info.Tunable _ ->
        Hfuse_core.Kernel_info.with_block_dim c.info d
    | Hfuse_core.Kernel_info.Fixed -> c.info
  in
  Hfuse_core.Vfuse.generate (adapt c1) (adapt c2)

let vfuse_report (arch : Arch.t) (c1 : configured) (c2 : configured)
    (v : Hfuse_core.Vfuse.t) : Timing.report =
  let vinfo = Hfuse_core.Vfuse.info v in
  let key =
    ( Printf.sprintf "vfuse:%s+%s" c1.spec.name c2.spec.name,
      c1.size * 1_000_003 + c2.size,
      v.block )
  in
  let traces =
    match Hashtbl.find_opt cache key with
    | Some t -> t
    | None ->
        let r =
          Launch.launch_info ~exec_blocks:trace_blocks c1.mem vinfo
            ~args:(c1.inst.args @ c2.inst.args)
            ~trace_blocks
        in
        Hashtbl.replace cache key r.block_traces;
        r.block_traces
  in
  Timing.run arch
    [
      {
        Timing.label = v.fn.f_name;
        block_traces = traces;
        grid = v.grid;
        threads_per_block = v.block;
        regs = v.regs;
        spill = 0;
        smem = static_smem vinfo + v.smem_dynamic;
        stream = 0;
      };
    ]

(* ------------------------------------------------------------------ *)
(* The Fig. 6 search, driven by the simulator                           *)
(* ------------------------------------------------------------------ *)

(** Fused block dimension target: the paper fuses to 1024 threads when
    both kernels are tunable; fixed kernels dictate their own sum. *)
let d0_for (c1 : configured) (c2 : configured) : int =
  match (c1.info.tunability, c2.info.tunability) with
  | Hfuse_core.Kernel_info.Fixed, Hfuse_core.Kernel_info.Fixed ->
      Hfuse_core.Kernel_info.threads_per_block c1.info
      + Hfuse_core.Kernel_info.threads_per_block c2.info
  | Hfuse_core.Kernel_info.Fixed, _ | _, Hfuse_core.Kernel_info.Fixed -> 1024
  | _ -> 1024

let search (arch : Arch.t) (c1 : configured) (c2 : configured) :
    Hfuse_core.Search.result =
  let profile fused ~reg_bound =
    (hfuse_report arch c1 c2 fused ~reg_bound).Timing.time_ms
  in
  Hfuse_core.Search.search
    ~limits:(Arch.sm_limits arch)
    ~profile ~d0:(d0_for c1 c2) c1.info c2.info

let naive_hfuse (c1 : configured) (c2 : configured) : Hfuse_core.Hfuse.t option
    =
  Hfuse_core.Search.naive ~d0:(d0_for c1 c2) c1.info c2.info

(* ------------------------------------------------------------------ *)
(* Correctness validation (full functional execution)                   *)
(* ------------------------------------------------------------------ *)

(** Run the fused kernel over the whole grid in fresh memory and check
    both kernels' outputs against their host references. *)
let validate_hfuse (s1 : Spec.t) ~(size1 : int) (s2 : Spec.t)
    ~(size2 : int) ~(d1 : int) ~(d2 : int) : (unit, string) result =
  let mem = Memory.create () in
  let i1 = s1.instantiate mem ~size:size1 in
  let i2 = s2.instantiate mem ~size:size2 in
  let k1 =
    Hfuse_core.Kernel_info.with_block_dim (Spec.kernel_info s1 i1) d1
  in
  let k2 =
    Hfuse_core.Kernel_info.with_block_dim (Spec.kernel_info s2 i2) d2
  in
  match Hfuse_core.Hfuse.generate k1 k2 with
  | exception Hfuse_core.Fuse_common.Fusion_error e -> Error e
  | f -> (
      let finfo = Hfuse_core.Hfuse.info f in
      match
        Launch.launch_info mem finfo ~args:(i1.args @ i2.args) ~trace_blocks:0
      with
      | exception Launch.Deadlock e -> Error e
      | _ -> (
          match i1.check mem with
          | Error _ as e -> e
          | Ok () -> i2.check mem))

let validate_vfuse (s1 : Spec.t) ~(size1 : int) (s2 : Spec.t)
    ~(size2 : int) : (unit, string) result =
  let mem = Memory.create () in
  let i1 = s1.instantiate mem ~size:size1 in
  let i2 = s2.instantiate mem ~size:size2 in
  let c1 = { spec = s1; size = size1; info = Spec.kernel_info s1 i1; inst = i1; mem } in
  let c2 = { spec = s2; size = size2; info = Spec.kernel_info s2 i2; inst = i2; mem } in
  match vfuse_generate c1 c2 with
  | exception Hfuse_core.Fuse_common.Fusion_error e -> Error e
  | v -> (
      let vinfo = Hfuse_core.Vfuse.info v in
      match
        Launch.launch_info mem vinfo ~args:(i1.args @ i2.args) ~trace_blocks:0
      with
      | exception Launch.Deadlock e -> Error e
      | _ -> (
          match i1.check mem with
          | Error _ as e -> e
          | Ok () -> i2.check mem))

(** Drives the evaluation's four execution modes — native (parallel
    streams), vertically fused, horizontally fused (searched), and the
    Naive even partition — through the simulator, with a trace cache so
    ratio sweeps do not re-interpret unchanged kernels.

    Profiling launches execute only the traced blocks; the correctness
    entry points ([validate_*]) run whole grids in fresh memory. *)

(** Blocks whose traces are recorded per profiling launch. *)
val trace_blocks : int

(** A corpus kernel bound to a workload instance in some memory. *)
type configured = {
  spec : Kernel_corpus.Spec.t;
  size : int;
  info : Hfuse_core.Kernel_info.t;  (** at native block dimensions *)
  inst : Kernel_corpus.Workload.instance;
  mem : Gpusim.Memory.t;
}

val configure :
  Gpusim.Memory.t -> Kernel_corpus.Spec.t -> size:int -> configured

val clear_cache : unit -> unit

(** Dynamic traces of [c] at a block dimension (default: native);
    cached. *)
val traces_of : configured -> ?block_dim:int -> unit -> Gpusim.Trace.block array

val static_smem : Hfuse_core.Kernel_info.t -> int

(** Timing spec for one kernel (building block for custom runs). *)
val spec_of :
  configured -> ?block_dim:int -> stream:int -> unit -> Gpusim.Timing.launch_spec

(** Native baseline: both kernels via parallel streams (FIFO dispatch). *)
val native : Gpusim.Arch.t -> configured -> configured -> Gpusim.Timing.report

(** One kernel alone (Fig. 8 metrics, ratio probes). *)
val solo : Gpusim.Arch.t -> configured -> Gpusim.Timing.report

(** Time a fused kernel under an optional register bound (interprets it
    in profiling mode on first use; cached thereafter). *)
val hfuse_report :
  Gpusim.Arch.t -> configured -> configured -> Hfuse_core.Hfuse.t ->
  reg_bound:int option -> Gpusim.Timing.report

val vfuse_block_dim : configured -> configured -> int

(** Vertical baseline at the larger native block dimension (tunable
    kernels adapt; a smaller fixed kernel is guarded).
    @raise Hfuse_core.Fuse_common.Fusion_error when illegal. *)
val vfuse_generate : configured -> configured -> Hfuse_core.Vfuse.t

val vfuse_report :
  Gpusim.Arch.t -> configured -> configured -> Hfuse_core.Vfuse.t ->
  Gpusim.Timing.report

(** Fused block dimension target: 1024 for tunable pairs; the native sum
    when both kernels are fixed. *)
val d0_for : configured -> configured -> int

(** The Fig. 6 search with the simulator as the profiling oracle. *)
val search :
  Gpusim.Arch.t -> configured -> configured -> Hfuse_core.Search.result

val naive_hfuse : configured -> configured -> Hfuse_core.Hfuse.t option

(** Full-grid correctness: run the fused kernel in fresh memory and
    check both kernels' outputs against their host references. *)
val validate_hfuse :
  Kernel_corpus.Spec.t -> size1:int -> Kernel_corpus.Spec.t -> size2:int ->
  d1:int -> d2:int -> (unit, string) result

val validate_vfuse :
  Kernel_corpus.Spec.t -> size1:int -> Kernel_corpus.Spec.t -> size2:int ->
  (unit, string) result

lib/frontend/inline.ml: Ast Ast_util Ctype Cuda Fmt Hashtbl Lift_decls List Option Rename String Typecheck

lib/frontend/rename.mli: Cuda Hashtbl

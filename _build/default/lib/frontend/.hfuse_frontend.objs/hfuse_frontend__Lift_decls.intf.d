lib/frontend/lift_decls.mli: Cuda

lib/frontend/rename.ml: Ast Ast_util Cuda Hashtbl List Option Printf String

lib/frontend/lift_decls.ml: Ast Ast_util Cuda List

lib/frontend/builtins.ml: Ast Ast_util Cuda List

lib/frontend/inline.mli: Cuda

lib/frontend/builtins.mli: Cuda

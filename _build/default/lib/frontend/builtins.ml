(* Built-in special value replacement (Fig. 5, line 4).

   In the fused kernel, [threadIdx.x] and [blockDim.x] refer to the fused
   kernel's geometry, not the original kernel's; HFuse therefore replaces
   them with prologue-defined variables ([tid_1]/[size_1] or
   [tid_2]/[size_2]).  The motivating example (Fig. 4) shows the 2-D
   variant, replacing [threadIdx.y] and [blockDim.y] as well.

   [blockIdx] and [gridDim] are left alone: the fused kernel keeps the
   original grid dimension, so those builtins still mean the same thing. *)

open Cuda

(** Replacement mapping for one input kernel: expressions to substitute
    for each thread-index / block-dimension axis. *)
type mapping = {
  tid : Ast.dim -> Ast.expr;
  bdim : Ast.dim -> Ast.expr;
}

(** Build a mapping from variable names, the common case: axis [x] maps to
    [Var names_x], etc. *)
let of_vars ~tid_x ~tid_y ~tid_z ~bdim_x ~bdim_y ~bdim_z : mapping =
  {
    tid =
      (function
      | Ast.X -> Ast.Var tid_x
      | Ast.Y -> Ast.Var tid_y
      | Ast.Z -> Ast.Var tid_z);
    bdim =
      (function
      | Ast.X -> Ast.Var bdim_x
      | Ast.Y -> Ast.Var bdim_y
      | Ast.Z -> Ast.Var bdim_z);
  }

(** Replace [threadIdx.*] and [blockDim.*] in [stmts] per [mapping].
    [blockIdx]/[gridDim] pass through. *)
let replace (m : mapping) (stmts : Ast.stmt list) : Ast.stmt list =
  Ast_util.replace_builtins
    (function
      | Ast.Thread_idx d -> Some (m.tid d)
      | Ast.Block_dim d -> Some (m.bdim d)
      | Ast.Block_idx _ | Ast.Grid_dim _ -> None)
    stmts

(** Does the kernel use any [.y]/[.z] thread geometry?  Fusion needs to
    know to emit the 2-D prologue of Fig. 4. *)
let uses_multidim (stmts : Ast.stmt list) : bool =
  List.exists
    (function
      | Ast.Thread_idx (Y | Z) | Ast.Block_dim (Y | Z) -> true
      | _ -> false)
    (Ast_util.used_builtins stmts)

(* Fresh-name generation and alpha-renaming.

   HFuse copies local-variable declarations from both input kernels into
   the fused kernel (Fig. 5, line 2) and must "properly rename these local
   variables to make sure each of them has a fresh name" (Section II-C).
   This module provides the freshness discipline: a [pool] of taken names
   and capture-free renaming of a kernel body against that pool. *)

open Cuda

type pool = { taken : (string, unit) Hashtbl.t }

let create () = { taken = Hashtbl.create 64 }

let of_names names =
  let p = create () in
  List.iter (fun n -> Hashtbl.replace p.taken n ()) names;
  p

let mem p name = Hashtbl.mem p.taken name
let reserve p name = Hashtbl.replace p.taken name ()
let names p = Hashtbl.fold (fun k () acc -> k :: acc) p.taken []

(** Smallest [base], [base_1], [base_2], ... not yet in the pool; the
    result is reserved before returning. *)
let fresh p base =
  let name =
    if not (mem p base) then base
    else begin
      let rec go i =
        let cand = Printf.sprintf "%s_%d" base i in
        if mem p cand then go (i + 1) else cand
      in
      go 1
    end
  in
  reserve p name;
  name

(** Rename every local declared in [stmts] (including for-init decls) so
    that no declared name collides with the pool; returns the rewritten
    statements and the (old -> new) table.  Names already unique are kept
    (and reserved).  Parameters are renamed by the caller via the same
    table mechanism if needed. *)
let rename_locals (p : pool) (stmts : Ast.stmt list) :
    Ast.stmt list * (string, string) Hashtbl.t =
  let table = Hashtbl.create 16 in
  List.iter
    (fun (d : Ast.decl) ->
      let fresh_name = fresh p d.d_name in
      if not (String.equal fresh_name d.d_name) then
        Hashtbl.replace table d.d_name fresh_name)
    (Ast_util.collect_decls stmts);
  (Ast_util.rename_stmts table stmts, table)

(** Rename the labels of [stmts] to be disjoint from [taken_labels];
    rewrites both [Label] and [Goto] statements. *)
let rename_labels (p : pool) (stmts : Ast.stmt list) : Ast.stmt list =
  let table = Hashtbl.create 4 in
  Ast_util.StrSet.iter
    (fun l ->
      let fresh_name = fresh p l in
      if not (String.equal fresh_name l) then Hashtbl.replace table l fresh_name)
    (Ast_util.labels stmts);
  if Hashtbl.length table = 0 then stmts
  else
    Ast_util.map_stmts
      (fun s ->
        match s.s with
        | Goto l -> (
            match Hashtbl.find_opt table l with
            | Some l' -> [ { s with s = Goto l' } ]
            | None -> [ s ])
        | Label l -> (
            match Hashtbl.find_opt table l with
            | Some l' -> [ { s with s = Label l' } ]
            | None -> [ s ])
        | _ -> [ s ])
      stmts

(** Uniquify shadowing declarations *within* one kernel body: C allows the
    same name to be declared in sibling or nested scopes; after
    declaration lifting (see {!Lift_decls}) all declarations live in one
    scope, so they must be distinct first.  Walks the statements with a
    scoped environment, renaming any declaration whose name is already
    visible. *)
let uniquify_shadowing (stmts : Ast.stmt list) : Ast.stmt list =
  let p = create () in
  (* Reserve every free name (parameters etc.) so locals can't capture. *)
  Ast_util.StrSet.iter (reserve p) (Ast_util.free_names stmts);
  let rec go_list (env : (string * string) list) stmts =
    let env = ref env in
    List.map
      (fun s ->
        let s' = go_stmt !env s in
        (match s.Ast.s with
        | Ast.Decl d ->
            let d' =
              match s'.Ast.s with Ast.Decl d' -> d' | _ -> assert false
            in
            env := (d.d_name, d'.d_name) :: !env
        | _ -> ());
        s')
      stmts
  and rename_decl env (d : Ast.decl) : Ast.decl * (string * string) =
    let new_name =
      if mem p d.d_name then fresh p d.d_name
      else begin
        reserve p d.d_name;
        d.d_name
      end
    in
    let d' =
      {
        d with
        d_name = new_name;
        d_init = Option.map (rewrite_expr env) d.d_init;
      }
    in
    (d', (d.d_name, new_name))
  and rewrite_expr env e =
    Ast_util.map_expr
      (fun e ->
        match e with
        | Var x -> (
            match List.assoc_opt x env with
            | Some x' -> Var x'
            | None -> e)
        | e -> e)
      e
  and go_stmt env (s : Ast.stmt) : Ast.stmt =
    let re = rewrite_expr env in
    let desc : Ast.stmt_desc =
      match s.s with
      | Decl d ->
          let d', _ = rename_decl env d in
          Decl d'
      | Expr e -> Expr (re e)
      | If (c, t, e) -> If (re c, go_list env t, go_list env e)
      | For (init, cond, step, body) ->
          let env', init' =
            match init with
            | None -> (env, None)
            | Some (Ast.For_expr e) -> (env, Some (Ast.For_expr (re e)))
            | Some (Ast.For_decl ds) ->
                let env', ds' =
                  List.fold_left
                    (fun (env, acc) d ->
                      let d', binding = rename_decl env d in
                      (binding :: env, d' :: acc))
                    (env, []) ds
                in
                (env', Some (Ast.For_decl (List.rev ds')))
          in
          For
            ( init',
              Option.map (rewrite_expr env') cond,
              Option.map (rewrite_expr env') step,
              go_list env' body )
      | While (c, body) -> While (re c, go_list env body)
      | Do_while (body, c) -> Do_while (go_list env body, re c)
      | Return e -> Return (Option.map re e)
      | Block b -> Block (go_list env b)
      | (Break | Continue | Sync | Bar_sync _ | Goto _ | Label _ | Nop) as d
        ->
          d
    in
    { s with s = desc }
  in
  go_list [] stmts

(** Device-function inlining (paper Section III-C): "inline all function
    calls in the input kernels"; recursion is rejected, as HFuse does.

    Expression functions ([return e;], possibly after pure bindings)
    inline anywhere by substitution — rejecting argument duplication
    with side effects; void statement functions inline at statement
    positions with parameters bound to fresh locals. *)

exception Error of string

(** Functions on a call-graph cycle (empty = recursion-free). *)
val recursive_functions : Cuda.Ast.program -> string list

(** Conservative side-effect test used by the substitution rule. *)
val expr_has_side_effects : Cuda.Ast.expr -> bool

(** Inline every device-function call in the kernel, to fixpoint.
    @raise Error on recursion or an uninlinable shape. *)
val inline_fn : Cuda.Ast.program -> Cuda.Ast.fn -> Cuda.Ast.fn

(** The full normalisation pipeline the fusers rely on: shadow
    uniquification, inlining, and declaration lifting. *)
val normalize_kernel : Cuda.Ast.program -> Cuda.Ast.fn -> Cuda.Ast.fn

(* Device-function inlining (paper Section III-C).

   "We also use the built-in functionalities from the Clang front-end to
   inline all function calls in the input kernels.  HFUSE does not support
   recursive function calls."

   Two shapes of [__device__] function are inlined:

   - expression functions — a body of the form [return e;] (possibly with
     leading declarations whose initializers are pure).  Calls in any
     expression position are inlined by argument substitution; arguments
     with side effects are rejected when their parameter occurs more than
     once (duplicate evaluation would change semantics).

   - void statement functions — called only as expression statements
     ([f(a, b);]).  The (alpha-renamed) body is spliced in place, with
     parameters bound by fresh local declarations.

   Recursion — direct or mutual — is detected via the call graph and
   reported as an error, matching HFUSE's stated limitation. *)

open Cuda

exception Error of string

(* ------------------------------------------------------------------ *)
(* Call graph / recursion detection                                     *)
(* ------------------------------------------------------------------ *)

let callees (f : Ast.fn) : string list =
  Ast_util.StrSet.elements (Ast_util.called_names f.f_body)

(** Names of functions involved in a call-graph cycle reachable from any
    function of the program; empty when the program is recursion-free. *)
let recursive_functions (prog : Ast.program) : string list =
  let graph = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.fn) ->
      Hashtbl.replace graph f.f_name
        (List.filter (fun c -> Ast.find_fn prog c <> None) (callees f)))
    prog.functions;
  let color = Hashtbl.create 16 in
  (* 0 = white, 1 = grey, 2 = black *)
  let in_cycle = ref Ast_util.StrSet.empty in
  let rec dfs stack name =
    match Hashtbl.find_opt color name with
    | Some 1 ->
        (* back edge: everything from [name] on the stack is cyclic *)
        let rec take = function
          | [] -> ()
          | x :: rest ->
              in_cycle := Ast_util.StrSet.add x !in_cycle;
              if not (String.equal x name) then take rest
        in
        take stack
    | Some _ -> ()
    | None ->
        Hashtbl.replace color name 1;
        List.iter (dfs (name :: stack))
          (Option.value (Hashtbl.find_opt graph name) ~default:[]);
        Hashtbl.replace color name 2
  in
  List.iter (fun (f : Ast.fn) -> dfs [] f.f_name) prog.functions;
  Ast_util.StrSet.elements !in_cycle

(* ------------------------------------------------------------------ *)
(* Purity                                                               *)
(* ------------------------------------------------------------------ *)

let rec expr_has_side_effects (e : Ast.expr) : bool =
  match e with
  | Assign _ | Op_assign _ | Incdec _ -> true
  | Call (f, args) ->
      (* intrinsic atomics mutate; other known intrinsics are pure; calls
         to program functions are conservatively impure (they will be
         inlined first anyway, bottom-up) *)
      let impure_intrinsic =
        match f with
        | "atomicAdd" | "atomicMax" | "atomicMin" | "atomicExch"
        | "atomicCAS" | "__syncwarp" | "__threadfence"
        | "__threadfence_block" ->
            true
        | f -> not (Typecheck.is_intrinsic f)
      in
      impure_intrinsic || List.exists expr_has_side_effects args
  | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ | Builtin _ -> false
  | Unop (_, a) | Deref a | Addr_of a | Cast (_, a) ->
      expr_has_side_effects a
  | Binop (_, a, b) | Index (a, b) ->
      expr_has_side_effects a || expr_has_side_effects b
  | Ternary (a, b, c) ->
      expr_has_side_effects a || expr_has_side_effects b
      || expr_has_side_effects c

let count_var_uses name stmts_expr =
  Ast_util.fold_expr
    (fun n e ->
      match e with Var x when String.equal x name -> n + 1 | _ -> n)
    0 stmts_expr

(* ------------------------------------------------------------------ *)
(* Inlining                                                             *)
(* ------------------------------------------------------------------ *)

(* An expression function: [return e;] possibly preceded by pure local
   declarations used only once.  We normalise to a single expression by
   substituting the declarations away. *)
let as_expression_fn (f : Ast.fn) : Ast.expr option =
  let rec go (bound : (string * Ast.expr) list) = function
    | [ { Ast.s = Ast.Return (Some e); _ } ] ->
        let table = Hashtbl.create 4 in
        List.iter (fun (k, v) -> Hashtbl.replace table k v) bound;
        let subst =
          Ast_util.map_expr (fun e ->
              match e with
              | Var x -> (
                  match Hashtbl.find_opt table x with
                  | Some v -> v
                  | None -> e)
              | e -> e)
        in
        Some (subst e)
    | { Ast.s = Ast.Decl { d_name; d_init = Some init; d_storage = Local; _ };
        _;
      }
      :: rest
      when not (expr_has_side_effects init) ->
        (* substitute the init (after substituting earlier bindings) *)
        let table = Hashtbl.create 4 in
        List.iter (fun (k, v) -> Hashtbl.replace table k v) bound;
        let init =
          Ast_util.map_expr
            (fun e ->
              match e with
              | Var x -> (
                  match Hashtbl.find_opt table x with
                  | Some v -> v
                  | None -> e)
              | e -> e)
            init
        in
        go ((d_name, init) :: bound) rest
    | _ -> None
  in
  go [] f.f_body

let substitute_args (f : Ast.fn) (body_expr : Ast.expr)
    (args : Ast.expr list) : Ast.expr =
  if List.length args <> List.length f.f_params then
    raise
      (Error
         (Fmt.str "%s called with %d arguments but declares %d" f.f_name
            (List.length args)
            (List.length f.f_params)));
  let table = Hashtbl.create 8 in
  List.iter2
    (fun (p : Ast.param) (a : Ast.expr) ->
      if expr_has_side_effects a && count_var_uses p.p_name body_expr > 1 then
        raise
          (Error
             (Fmt.str
                "cannot inline %s: argument for %s has side effects and is \
                 used %d times"
                f.f_name p.p_name
                (count_var_uses p.p_name body_expr)));
      Hashtbl.replace table p.p_name a)
    f.f_params args;
  Ast_util.map_expr
    (fun e ->
      match e with
      | Var x -> (
          match Hashtbl.find_opt table x with Some a -> a | None -> e)
      | e -> e)
    body_expr

(** Splice a void statement-function call [f(args);]: fresh-rename the
    body's locals against [pool], bind parameters as declarations, return
    the statement list. *)
let splice_void_call (pool : Rename.pool) (f : Ast.fn)
    (args : Ast.expr list) : Ast.stmt list =
  if List.length args <> List.length f.f_params then
    raise
      (Error
         (Fmt.str "%s called with %d arguments but declares %d" f.f_name
            (List.length args)
            (List.length f.f_params)));
  (* Bind each parameter to a fresh local initialized with the argument. *)
  let param_table = Hashtbl.create 8 in
  let param_decls =
    List.map2
      (fun (p : Ast.param) (a : Ast.expr) ->
        let name = Rename.fresh pool (f.f_name ^ "_" ^ p.p_name) in
        Hashtbl.replace param_table p.p_name name;
        Ast.decl ~init:a name p.p_type)
      f.f_params args
  in
  let body = Rename.uniquify_shadowing f.f_body in
  let body, _ = Rename.rename_locals pool body in
  let body =
    Ast_util.map_stmts_expr
      (fun e ->
        match e with
        | Var x -> (
            match Hashtbl.find_opt param_table x with
            | Some n -> Var n
            | None -> e)
        | e -> e)
      body
  in
  (* a bare [return;] in a void function maps to nothing harmful only if
     it is in tail position; reject otherwise *)
  let rec check_returns tail stmts =
    List.iteri
      (fun i (s : Ast.stmt) ->
        let is_last = i = List.length stmts - 1 in
        match s.s with
        | Return (Some _) ->
            raise (Error (f.f_name ^ ": void function returns a value"))
        | Return None when not (tail && is_last) ->
            raise
              (Error
                 (Fmt.str
                    "cannot inline %s: return in non-tail position"
                    f.f_name))
        | Return None -> ()
        | If (_, t, e) when tail && is_last ->
            check_returns true t;
            check_returns true e
        | If (_, t, e) ->
            check_returns false t;
            check_returns false e
        | For (_, _, _, b) | While (_, b) | Do_while (b, _) ->
            check_returns false b
        | Block b -> check_returns (tail && is_last) b
        | _ -> ())
      stmts
  in
  check_returns true body;
  let body =
    Ast_util.map_stmts
      (fun s -> match s.s with Return None -> [] | _ -> [ s ])
      body
  in
  param_decls @ body

(** Inline every call to a program-defined [__device__] function inside
    [kernel], to a fixpoint (callees may call other device functions).
    Raises {!Error} on recursion or uninlinable shapes. *)
let inline_fn (prog : Ast.program) (kernel : Ast.fn) : Ast.fn =
  (match recursive_functions prog with
  | [] -> ()
  | cyc ->
      raise
        (Error
           (Fmt.str "recursive function calls are not supported: %a"
              Fmt.(list ~sep:comma string)
              cyc)));
  let pool =
    Rename.of_names
      (Ast_util.StrSet.elements (Ast_util.used_names kernel.f_body)
      @ List.map (fun (p : Ast.param) -> p.p_name) kernel.f_params)
  in
  let target_fns =
    List.filter_map
      (fun (f : Ast.fn) ->
        match f.f_kind with Device -> Some f.f_name | Global -> None)
      prog.functions
  in
  let is_target name = List.mem name target_fns in
  let changed = ref true in
  let body = ref kernel.f_body in
  let guard = ref 0 in
  while !changed do
    incr guard;
    if !guard > 100 then
      raise (Error "inlining did not reach a fixpoint (runaway expansion)");
    changed := false;
    (* statement-level: void calls in statement position *)
    body :=
      Ast_util.map_stmts
        (fun s ->
          match s.s with
          | Expr (Call (name, args)) when is_target name -> (
              match Ast.find_fn prog name with
              | Some f when f.f_ret = Ctype.Void ->
                  changed := true;
                  splice_void_call pool f args
              | _ -> [ s ])
          | _ -> [ s ])
        !body;
    (* expression-level: expression functions anywhere *)
    body :=
      Ast_util.map_stmts_expr
        (fun e ->
          match e with
          | Call (name, args) when is_target name -> (
              match Ast.find_fn prog name with
              | Some f -> (
                  match as_expression_fn f with
                  | Some body_expr ->
                      changed := true;
                      substitute_args f body_expr args
                  | None ->
                      if f.f_ret = Ctype.Void then e
                        (* handled at statement level; if it survives
                           there it is used as a value — error below *)
                      else
                        raise
                          (Error
                             (Fmt.str
                                "cannot inline %s: body is not a single \
                                 return expression"
                                name)))
              | None -> e)
          | e -> e)
        !body;
    (* any remaining call to a device function in value position? *)
    if not !changed then
      Ast_util.StrSet.iter
        (fun name ->
          if is_target name then
            raise
              (Error
                 (Fmt.str "call to %s could not be inlined (used as a value?)"
                    name)))
        (Ast_util.called_names !body)
  done;
  { kernel with f_body = !body }

(** Convenience: parse+normalise pipeline used by the fusion driver.
    Runs shadowing-uniquification, inlining and declaration lifting on the
    kernel, returning a self-contained function ready for fusion. *)
let normalize_kernel (prog : Ast.program) (kernel : Ast.fn) : Ast.fn =
  let kernel =
    { kernel with f_body = Rename.uniquify_shadowing kernel.f_body }
  in
  let kernel = inline_fn prog kernel in
  let kernel =
    { kernel with f_body = Rename.uniquify_shadowing kernel.f_body }
  in
  Lift_decls.lift_fn kernel

(** Declaration lifting (paper Section III-C): all local declarations
    move, initialiser-less, to the top of the kernel; initialisers
    become assignments at the original positions.  Required because the
    fused kernel's [goto]s may not jump over declarations.

    Precondition: declared names are unique ({!Rename.uniquify_shadowing}). *)

(** [(decls, body')] where [body'] has declarations replaced by their
    initialising assignments. *)
val lift : Cuda.Ast.stmt list -> Cuda.Ast.decl list * Cuda.Ast.stmt list

(** Whole-kernel lifting; shared-memory declarations come first. *)
val lift_fn : Cuda.Ast.fn -> Cuda.Ast.fn

(** Postcondition check: declarations only in the leading block. *)
val is_lifted : Cuda.Ast.stmt list -> bool

(** Built-in special-value replacement (Fig. 5 line 4): inside the fused
    kernel, the original kernels' [threadIdx]/[blockDim] must refer to
    prologue-defined variables; [blockIdx]/[gridDim] keep their meaning
    (the fused kernel keeps the original grid). *)

type mapping = {
  tid : Cuda.Ast.dim -> Cuda.Ast.expr;
  bdim : Cuda.Ast.dim -> Cuda.Ast.expr;
}

(** Axis-to-variable mapping, the common case. *)
val of_vars :
  tid_x:string -> tid_y:string -> tid_z:string ->
  bdim_x:string -> bdim_y:string -> bdim_z:string -> mapping

(** Apply the mapping to every [threadIdx.*] / [blockDim.*]. *)
val replace : mapping -> Cuda.Ast.stmt list -> Cuda.Ast.stmt list

(** Does the code read [.y]/[.z] thread geometry (needs the 2-D
    prologue of Fig. 4)? *)
val uses_multidim : Cuda.Ast.stmt list -> bool

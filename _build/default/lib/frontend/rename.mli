(** Fresh-name generation and alpha-renaming.

    HFuse copies local declarations from both input kernels into the
    fused kernel (Fig. 5 line 2) and "properly renames these local
    variables to make sure each of them has a fresh name"
    (Section II-C).  A {!pool} is the set of taken names; all renaming
    is capture-free with respect to it. *)

type pool

val create : unit -> pool
val of_names : string list -> pool
val mem : pool -> string -> bool
val reserve : pool -> string -> unit
val names : pool -> string list

(** Smallest of [base], [base_1], [base_2], ... not in the pool;
    reserved before returning. *)
val fresh : pool -> string -> string

(** Rename every declared local (including for-init declarations) to be
    fresh w.r.t. the pool; returns the rewritten statements and the
    old-to-new table.  Already-unique names are kept and reserved. *)
val rename_locals :
  pool -> Cuda.Ast.stmt list -> Cuda.Ast.stmt list * (string, string) Hashtbl.t

(** Rename labels to be disjoint from the pool, rewriting [goto]s to
    match. *)
val rename_labels : pool -> Cuda.Ast.stmt list -> Cuda.Ast.stmt list

(** Make every declaration in the body unique (C scoping allows
    shadowing; after declaration lifting everything shares one scope, so
    shadowers must be renamed first).  References rewrite scope-
    correctly. *)
val uniquify_shadowing : Cuda.Ast.stmt list -> Cuda.Ast.stmt list

(* Declaration lifting (paper Section III-C).

   "HFUSE traverses the AST of the input kernel to locate all local
   variable declarations. ... It also lifts their declarations to the
   start of the kernel.  If the declaration of a local variable is
   associated with initialization assignments, it will still lift the
   declaration but create corresponding new assignment statements at the
   original location of the declaration.  HFUSE lifts local variable
   declarations because it instruments goto statements into the fused
   kernel and CUDA may not allow goto statements to jump over local
   variable declarations."

   Precondition: declared names are unique within the body (run
   {!Rename.uniquify_shadowing} first).  The pass:
   - replaces every [Decl] whose initializer exists with the assignment
     [name = init] at the original position, or with [Nop] when there is
     no initializer;
   - rewrites [for (int i = e; ...)] into a lifted [i] plus
     [for (i = e; ...)];
   - emits all declarations, initializer-less, at the top of the body
     (shared-memory declarations first, preserving relative order). *)

open Cuda

let strip_init (d : Ast.decl) : Ast.decl = { d with d_init = None }

(** [lift body] returns [(decls, body')] where [decls] are all local
    declarations of [body] (without initializers) and [body'] is the body
    with declarations replaced by their initializing assignments. *)
let lift (stmts : Ast.stmt list) : Ast.decl list * Ast.stmt list =
  let decls = Ast_util.collect_decls stmts in
  (* Arrays cannot be initialized by plain assignment in the subset, and
     shared decls cannot have initializers (checked by Typecheck). *)
  let body =
    Ast_util.map_stmts
      (fun s ->
        match s.s with
        | Decl { d_init = Some e; d_name; _ } ->
            [ { s with s = Expr (Assign (Var d_name, e)) } ]
        | Decl { d_init = None; _ } -> []
        | For (Some (For_decl ds), cond, step, body) ->
            (* initialize lifted loop variables before the loop; the loop
               header keeps the first declarator's assignment as its init
               expression when there is exactly one initializer *)
            let inits =
              List.filter_map
                (fun (d : Ast.decl) ->
                  match d.d_init with
                  | Some e -> Some (Ast.Assign (Var d.d_name, e))
                  | None -> None)
                ds
            in
            let for_init, prefix =
              match inits with
              | [] -> (None, [])
              | [ e ] -> (Some (Ast.For_expr e), [])
              | e :: rest ->
                  ( Some (Ast.For_expr e),
                    List.map (fun e -> { s with s = Ast.Expr e }) rest )
            in
            prefix @ [ { s with s = For (for_init, cond, step, body) } ]
        | _ -> [ s ])
      stmts
  in
  (List.map strip_init decls, body)

(** Lift declarations of a whole kernel: returns the kernel with all local
    declarations at the top of its body.  Shared declarations come first
    (they are block-scoped resources, not thread-locals). *)
let lift_fn (f : Ast.fn) : Ast.fn =
  let decls, body = lift f.f_body in
  let shared, local =
    List.partition
      (fun (d : Ast.decl) -> d.d_storage <> Ast.Local)
      decls
  in
  let decl_stmts =
    List.map (fun d -> Ast.mk_stmt (Ast.Decl d)) (shared @ local)
  in
  { f with f_body = decl_stmts @ body }

(** Check the postcondition: no declaration occurs after the leading
    declaration block (used by tests and asserted by fusion). *)
let is_lifted (stmts : Ast.stmt list) : bool =
  let rec skip_decls = function
    | { Ast.s = Ast.Decl _; _ } :: rest -> skip_decls rest
    | rest -> rest
  in
  let tail = skip_decls stmts in
  not
    (Ast_util.fold_stmts
       (fun acc s ->
         acc
         ||
         match s.s with
         | Decl _ -> true
         | For (Some (For_decl _), _, _, _) -> true
         | _ -> false)
       false tail)

(** Register-pressure analysis over lowered code: linear live intervals
    (first definition to last occurrence) with the classic linear-scan
    loop extension for values defined before a backward branch's target
    and used inside the loop. *)

type interval = { mutable first : int; mutable last : int }

val intervals : Pinstr.t array -> (Pinstr.vreg, interval) Hashtbl.t

(** Maximum simultaneously-live registers of one class. *)
val max_live_of_class : Pinstr.t array -> Pinstr.rclass -> int

(** Per-thread 32-bit register demand: b32+f32 plus two per b64/f64
    register, plus ABI overhead — the NRegs() quantity of Fig. 6.
    Note: per-thread arrays sit in the [.local] depot in this lowering,
    so array-heavy kernels (the unrolled miners) report the pressure of
    this lowering, not of nvcc's register-promoted code; the corpus
    calibration values remain the evaluation's source of truth. *)
val register_pressure : Lower.lowered -> int

(** Static instructions excluding labels and comments. *)
val static_instructions : Lower.lowered -> int

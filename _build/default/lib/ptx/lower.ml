(* Lowering from the CUDA AST to the PTX-flavoured virtual ISA.

   Operates on normalised kernels (device calls inlined, declarations
   lifted — the same precondition as fusion).  Scalars live in typed
   virtual registers; comparisons produce predicates; structured control
   flow lowers to labels and predicated branches; shared arrays resolve
   to compile-time offsets; per-thread local arrays get a [.local]
   depot.  The produced code is meant for inspection and for
   register-pressure analysis ({!Liveness}), not execution — the
   simulator interprets the AST directly. *)

open Cuda
open Pinstr

exception Unsupported of string

let fail fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

(* -- types -------------------------------------------------------------- *)

let ty_of_ctype (t : Ctype.t) : ty =
  match t with
  | Ctype.Bool -> PredT
  | Ctype.Char | Ctype.Short | Ctype.Int -> S32
  | Ctype.UChar | Ctype.UShort | Ctype.UInt -> U32
  | Ctype.Long -> S64
  | Ctype.ULong -> U64
  | Ctype.Float -> F32T
  | Ctype.Double -> F64T
  | Ctype.Ptr _ | Ctype.Array _ -> U64
  | Ctype.Void -> fail "void has no register type"

(* memory access width spelling *)
let mem_ty_of_ctype (t : Ctype.t) : ty =
  match t with
  | Ctype.Bool | Ctype.Char | Ctype.UChar -> U32 (* ld.u8 widened; simplified *)
  | t -> ty_of_ctype t

(* -- context ------------------------------------------------------------ *)

(** Memory space a pointer value ultimately refers to. *)
type binding_space = SGlobal | SShared | SLocal

(* A lowered value: operand, C type, and — for pointers — the space the
   pointee lives in (propagated through casts, arithmetic and
   assignments so shared-memory accesses emit [.shared]). *)
type value = { op : operand; vty : Ctype.t; sp : binding_space }

type binding =
  | BReg of vreg * Ctype.t * binding_space ref
      (** scalar local / parameter copy; for pointers the ref tracks the
          space of the pointee across reassignments *)
  | BShared of int * Ctype.t  (** shared array at byte offset, element *)
  | BLocal of int * Ctype.t  (** local-depot array at byte offset *)

type t = {
  mutable code : Pinstr.t list;  (** reversed *)
  counters : (rclass, int ref) Hashtbl.t;
  env : (string, binding) Hashtbl.t;
  mutable label_seq : int;
  mutable break_labels : string list;
  mutable continue_labels : string list;
  mutable local_depot : int;  (** bytes of .local space used *)
  mutable shared_off : int;  (** bytes of shared space laid out *)
  fn_name : string;
}

let create fn_name =
  let counters = Hashtbl.create 5 in
  List.iter
    (fun c -> Hashtbl.replace counters c (ref 0))
    [ Pred; B32; B64; F32; F64 ];
  {
    code = [];
    counters;
    env = Hashtbl.create 32;
    label_seq = 0;
    break_labels = [];
    continue_labels = [];
    local_depot = 0;
    shared_off = 0;
    fn_name;
  }

let emit ctx i = ctx.code <- i :: ctx.code

let fresh ctx (cls : rclass) : vreg =
  let c = Hashtbl.find ctx.counters cls in
  incr c;
  { cls; idx = !c }

let fresh_ty ctx (ty : ty) : vreg = fresh ctx (cls_of_ty ty)

let fresh_label ctx base =
  ctx.label_seq <- ctx.label_seq + 1;
  Printf.sprintf "$L_%s_%d" base ctx.label_seq

let reg_count ctx cls = !(Hashtbl.find ctx.counters cls)

(* -- value plumbing ------------------------------------------------------ *)



let ptx_space = function
  | SGlobal -> Global
  | SShared -> Shared
  | SLocal -> Local

let gval op vty = { op; vty; sp = SGlobal }

let as_reg ctx (v : value) : vreg =
  match v.op with
  | Reg r -> r
  | Imm _ | FImm _ ->
      let ty = ty_of_ctype v.vty in
      let r = fresh_ty ctx ty in
      emit ctx (Mov (ty, r, v.op));
      r

(* Convert a value to C type [want], emitting cvt/selp as needed. *)
let rec convert ctx (v : value) (want : Ctype.t) : value =
  if Ctype.equal v.vty want then v
  else
    match (v.vty, want) with
    | _, (Ctype.Ptr _ | Ctype.Array _) -> { v with vty = want }
    | (Ctype.Ptr _ | Ctype.Array _), _ -> { v with vty = want }
    | Ctype.Bool, w ->
        (* predicate -> 0/1 *)
        let ty = ty_of_ctype w in
        let d = fresh_ty ctx ty in
        let one, zero =
          match ty with
          | F32T | F64T -> (FImm 1.0, FImm 0.0)
          | _ -> (Imm 1L, Imm 0L)
        in
        emit ctx (Selp (ty, d, one, zero, v.op));
        { v with op = Reg d; vty = w }
    | s, Ctype.Bool ->
        let ty = ty_of_ctype s in
        let p = fresh ctx Pred in
        let zero = match ty with F32T | F64T -> FImm 0.0 | _ -> Imm 0L in
        emit ctx (Setp (NE, ty, p, v.op, zero));
        { v with op = Reg p; vty = Ctype.Bool }
    | s, w ->
        let sty = ty_of_ctype s and wty = ty_of_ctype w in
        if sty = wty then { v with vty = w }
        else begin
          let d = fresh_ty ctx wty in
          emit ctx (Cvt (wty, sty, d, (convert_imm ctx v sty).op));
          { v with op = Reg d; vty = w }
        end

(* cvt needs a register source for some forms; keep immediates simple *)
and convert_imm ctx v _sty =
  match v.op with
  | Reg _ -> v
  | _ -> { v with op = Reg (as_reg ctx v) }

(* usual arithmetic conversions for a binary op *)
let join_args ctx (a : value) (b : value) : value * value * Ctype.t =
  let t = Ctype.arith_join
      (if a.vty = Ctype.Bool then Ctype.Int else a.vty)
      (if b.vty = Ctype.Bool then Ctype.Int else b.vty)
  in
  (convert ctx a t, convert ctx b t, t)

(* -- expressions --------------------------------------------------------- *)

(* special registers *)
let special ctx (b : Ast.builtin) : value =
  let sreg =
    match b with
    | Ast.Thread_idx Ast.X -> "%tid.x"
    | Ast.Thread_idx Ast.Y -> "%tid.y"
    | Ast.Thread_idx Ast.Z -> "%tid.z"
    | Ast.Block_idx Ast.X -> "%ctaid.x"
    | Ast.Block_idx Ast.Y -> "%ctaid.y"
    | Ast.Block_idx Ast.Z -> "%ctaid.z"
    | Ast.Block_dim Ast.X -> "%ntid.x"
    | Ast.Block_dim Ast.Y -> "%ntid.y"
    | Ast.Block_dim Ast.Z -> "%ntid.z"
    | Ast.Grid_dim Ast.X -> "%nctaid.x"
    | Ast.Grid_dim Ast.Y -> "%nctaid.y"
    | Ast.Grid_dim Ast.Z -> "%nctaid.z"
  in
  let d = fresh ctx B32 in
  emit ctx (Sreg (d, sreg));
  gval (Reg d) Ctype.UInt

(* address of an element: returns (base reg b64, byte offset=0) with the
   index folded in *)
let rec lower_address ctx (base : Ast.expr) (index : Ast.expr) :
    vreg * binding_space * Ctype.t =
  let bv = lower_expr ctx base in
  let elem =
    match bv.vty with
    | Ctype.Ptr e | Ctype.Array (e, _) -> e
    | t -> fail "subscript of non-pointer (%s)" (Ctype.to_string t)
  in
  let space = bv.sp in
  let iv = lower_expr ctx index in
  let iv = convert ctx iv Ctype.ULong in
  let scaled = fresh ctx B64 in
  emit ctx (Mul (U64, scaled, iv.op, Imm (Int64.of_int (Ctype.sizeof elem))));
  let addr = fresh ctx B64 in
  emit ctx (Add (U64, addr, Reg (as_reg ctx bv), Reg scaled));
  (addr, space, elem)

and lower_expr ctx (e : Ast.expr) : value =
  match e with
  | Ast.Int_lit (v, t) -> gval (Imm v) t
  | Ast.Float_lit (v, t) -> gval (FImm v) t
  | Ast.Bool_lit b ->
      let p = fresh ctx Pred in
      emit ctx (Setp (EQ, S32, p, Imm 0L, Imm (if b then 0L else 1L)));
      gval (Reg p) Ctype.Bool
  | Ast.Var x -> (
      match Hashtbl.find_opt ctx.env x with
      | Some (BReg (r, t, sp)) -> { op = Reg r; vty = t; sp = !sp }
      | Some (BShared (off, elem)) ->
          (* array decays to its address *)
          let d = fresh ctx B64 in
          emit ctx (Mov (U64, d, Imm (Int64.of_int off)));
          { op = Reg d; vty = Ctype.Ptr elem; sp = SShared }
      | Some (BLocal (off, elem)) ->
          let d = fresh ctx B64 in
          emit ctx (Mov (U64, d, Imm (Int64.of_int off)));
          { op = Reg d; vty = Ctype.Ptr elem; sp = SLocal }
      | None -> fail "unbound variable %s" x)
  | Ast.Builtin b -> special ctx b
  | Ast.Unop (Ast.Neg, a) ->
      let v = lower_expr ctx a in
      let t = if v.vty = Ctype.Bool then Ctype.Int else v.vty in
      let v = convert ctx v t in
      let d = fresh_ty ctx (ty_of_ctype t) in
      emit ctx (Neg (ty_of_ctype t, d, v.op));
      gval (Reg d) t
  | Ast.Unop (Ast.Bnot, a) ->
      let v = lower_expr ctx a in
      let t = if v.vty = Ctype.Bool then Ctype.Int else v.vty in
      let v = convert ctx v t in
      let bty = match ty_of_ctype t with S64 | U64 -> B64T | _ -> B32T in
      let d = fresh_ty ctx bty in
      emit ctx (Not (bty, d, v.op));
      gval (Reg d) t
  | Ast.Unop (Ast.Lnot, a) ->
      let v = convert ctx (lower_expr ctx a) Ctype.Bool in
      let p = as_reg ctx v in
      let d = fresh ctx Pred in
      emit ctx (Not (PredT, d, Reg p));
      gval (Reg d) Ctype.Bool
  | Ast.Binop (op, a, b) -> lower_binop ctx op a b
  | Ast.Assign (lhs, rhs) ->
      let v = lower_expr ctx rhs in
      lower_store ctx lhs v
  | Ast.Op_assign (op, lhs, rhs) ->
      lower_store ctx lhs (lower_binop ctx op lhs rhs)
  | Ast.Incdec { pre = _; inc; lval } ->
      (* value semantics simplified: pre/post both yield the new value;
         the corpus never uses the result of a post-op *)
      let one = Ast.Int_lit (1L, Ctype.Int) in
      lower_expr ctx
        (Ast.Op_assign ((if inc then Ast.Add else Ast.Sub), lval, one))
  | Ast.Ternary (c, a, b) ->
      let p = convert ctx (lower_expr ctx c) Ctype.Bool in
      let va = lower_expr ctx a in
      let vb = lower_expr ctx b in
      let va, vb, t = join_args ctx va vb in
      let d = fresh_ty ctx (ty_of_ctype t) in
      emit ctx (Selp (ty_of_ctype t, d, va.op, vb.op, p.op));
      { op = Reg d; vty = t; sp = va.sp }
  | Ast.Call (f, args) -> lower_call ctx f args
  | Ast.Index (base, idx) ->
      let addr, space, elem = lower_address ctx base idx in
      lower_load ctx addr space elem
  | Ast.Deref p ->
      let v = lower_expr ctx p in
      let elem =
        match v.vty with
        | Ctype.Ptr e -> e
        | t -> fail "dereference of %s" (Ctype.to_string t)
      in
      lower_load ctx (as_reg ctx v) v.sp elem
  | Ast.Addr_of (Ast.Index (base, idx)) ->
      let addr, sp, elem = lower_address ctx base idx in
      { op = Reg addr; vty = Ctype.Ptr elem; sp }
  | Ast.Addr_of e -> fail "cannot take address of %s" (Pretty.expr_to_string e)
  | Ast.Cast (t, a) ->
      let v = lower_expr ctx a in
      convert ctx v t

and lower_load ctx (addr : vreg) (space : binding_space) (elem : Ctype.t) :
    value =
  let ty = mem_ty_of_ctype elem in
  let d = fresh_ty ctx ty in
  emit ctx (Ld (ptx_space space, ty, d, Reg addr, 0));
  gval (Reg d) elem

and lower_store ctx (lhs : Ast.expr) (v : value) : value =
  match lhs with
  | Ast.Var x -> (
      match Hashtbl.find_opt ctx.env x with
      | Some (BReg (r, t, sp)) ->
          let v = convert ctx v t in
          emit ctx (Mov (ty_of_ctype t, r, v.op));
          (match t with Ctype.Ptr _ -> sp := v.sp | _ -> ());
          { op = Reg r; vty = t; sp = !sp }
      | Some (BShared _ | BLocal _) -> fail "cannot assign to array %s" x
      | None -> fail "unbound variable %s" x)
  | Ast.Index (base, idx) ->
      let addr, space, elem = lower_address ctx base idx in
      let v = convert ctx v elem in
      let vr = as_reg ctx v in
      emit ctx (St (ptx_space space, mem_ty_of_ctype elem, Reg addr, 0, Reg vr));
      v
  | Ast.Deref p ->
      let pv = lower_expr ctx p in
      let elem =
        match pv.vty with
        | Ctype.Ptr e -> e
        | t -> fail "dereference of %s" (Ctype.to_string t)
      in
      let v = convert ctx v elem in
      emit ctx
        (St
           ( ptx_space pv.sp,
             mem_ty_of_ctype elem,
             Reg (as_reg ctx pv),
             0,
             Reg (as_reg ctx v) ));
      v
  | e -> fail "unsupported store target %s" (Pretty.expr_to_string e)

and lower_binop ctx (op : Ast.binop) (ea : Ast.expr) (eb : Ast.expr) : value =
  let a = lower_expr ctx ea and b = lower_expr ctx eb in
  match op with
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      let a, b, t = join_args ctx a b in
      let cc =
        match op with
        | Ast.Eq -> EQ
        | Ast.Ne -> NE
        | Ast.Lt -> LT
        | Ast.Le -> LE
        | Ast.Gt -> GT
        | _ -> GE
      in
      let p = fresh ctx Pred in
      emit ctx (Setp (cc, ty_of_ctype t, p, a.op, b.op));
      gval (Reg p) Ctype.Bool
  | Ast.Land | Ast.Lor ->
      let pa = as_reg ctx (convert ctx a Ctype.Bool) in
      let pb = as_reg ctx (convert ctx b Ctype.Bool) in
      let d = fresh ctx Pred in
      emit ctx
        (if op = Ast.Land then And (PredT, d, Reg pa, Reg pb)
         else Or (PredT, d, Reg pa, Reg pb));
      gval (Reg d) Ctype.Bool
  | _ -> (
      (* pointer arithmetic keeps its own path *)
      match (a.vty, op) with
      | (Ctype.Ptr e | Ctype.Array (e, _)), (Ast.Add | Ast.Sub) ->
          let iv = convert ctx b Ctype.ULong in
          let scaled = fresh ctx B64 in
          emit ctx
            (Mul (U64, scaled, iv.op, Imm (Int64.of_int (Ctype.sizeof e))));
          let d = fresh ctx B64 in
          emit ctx
            (if op = Ast.Add then Add (U64, d, Reg (as_reg ctx a), Reg scaled)
             else Sub (U64, d, Reg (as_reg ctx a), Reg scaled));
          { op = Reg d; vty = Ctype.Ptr e; sp = a.sp }
      | _ ->
          let a, b, t = join_args ctx a b in
          let ty = ty_of_ctype t in
          let bitty = match ty with S64 | U64 -> B64T | F64T -> F64T | F32T -> F32T | _ -> B32T in
          let d = fresh_ty ctx ty in
          (match op with
          | Ast.Add -> emit ctx (Add (ty, d, a.op, b.op))
          | Ast.Sub -> emit ctx (Sub (ty, d, a.op, b.op))
          | Ast.Mul -> emit ctx (Mul (ty, d, a.op, b.op))
          | Ast.Div -> emit ctx (Div (ty, d, a.op, b.op))
          | Ast.Mod -> emit ctx (Rem (ty, d, a.op, b.op))
          | Ast.Band -> emit ctx (And (bitty, d, a.op, b.op))
          | Ast.Bor -> emit ctx (Or (bitty, d, a.op, b.op))
          | Ast.Bxor -> emit ctx (Xor (bitty, d, a.op, b.op))
          | Ast.Shl -> emit ctx (Shl (bitty, d, a.op, b.op))
          | Ast.Shr -> emit ctx (Shr (ty, d, a.op, b.op))
          | _ -> assert false);
          gval (Reg d) t)

and lower_call ctx (f : string) (args : Ast.expr list) : value =
  let unary_f32 mk =
    match args with
    | [ a ] ->
        let v = convert ctx (lower_expr ctx a) Ctype.Float in
        let d = fresh ctx F32 in
        emit ctx (mk d v.op);
        gval (Reg d) Ctype.Float
    | _ -> fail "%s expects one argument" f
  in
  match (f, args) with
  | ("min" | "max"), [ a; b ] ->
      let va = lower_expr ctx a and vb = lower_expr ctx b in
      let va, vb, t = join_args ctx va vb in
      let d = fresh_ty ctx (ty_of_ctype t) in
      emit ctx
        (if f = "min" then Min (ty_of_ctype t, d, va.op, vb.op)
         else Max (ty_of_ctype t, d, va.op, vb.op));
      gval (Reg d) t
  | ("fminf" | "fmaxf"), [ a; b ] ->
      let va = convert ctx (lower_expr ctx a) Ctype.Float in
      let vb = convert ctx (lower_expr ctx b) Ctype.Float in
      let d = fresh ctx F32 in
      emit ctx
        (if f = "fminf" then Min (F32T, d, va.op, vb.op)
         else Max (F32T, d, va.op, vb.op));
      gval (Reg d) Ctype.Float
  | "sqrtf", _ -> unary_f32 (fun d a -> Sqrt (F32T, d, a))
  | "fabsf", _ ->
      (* |x| = max(x, -x) *)
      unary_f32 (fun d a ->
          let n = fresh ctx F32 in
          emit ctx (Neg (F32T, n, a));
          Max (F32T, d, a, Reg n))
  | ("atomicAdd" | "atomicMax" | "atomicMin" | "atomicExch"), [ addr; v ] ->
      let av = lower_expr ctx addr in
      let elem =
        match av.vty with
        | Ctype.Ptr e -> e
        | t -> fail "atomic on non-pointer %s" (Ctype.to_string t)
      in
      let vv = convert ctx (lower_expr ctx v) elem in
      let dd = fresh_ty ctx (ty_of_ctype elem) in
      let opname =
        match f with
        | "atomicAdd" -> "add"
        | "atomicMax" -> "max"
        | "atomicMin" -> "min"
        | _ -> "exch"
      in
      emit ctx
        (Atom
           ( ptx_space av.sp,
             opname,
             ty_of_ctype elem,
             dd,
             Reg (as_reg ctx av),
             Reg (as_reg ctx vv) ));
      gval (Reg dd) elem
  | ("WARP_SHFL_XOR" | "__shfl_xor_sync"), _ ->
      let v, lane =
        match (f, args) with
        | "WARP_SHFL_XOR", v :: l :: _ -> (v, l)
        | "__shfl_xor_sync", _ :: v :: l :: _ -> (v, l)
        | _ -> fail "%s: bad arguments" f
      in
      let vv = lower_expr ctx v in
      let lv = convert ctx (lower_expr ctx lane) Ctype.Int in
      let d = fresh ctx B32 in
      emit ctx (Shfl ("bfly", d, Reg (as_reg ctx vv), lv.op));
      gval (Reg d) vv.vty
  | ("WARP_SHFL_DOWN" | "__shfl_down_sync"), _ ->
      let v, lane =
        match (f, args) with
        | "WARP_SHFL_DOWN", v :: l :: _ -> (v, l)
        | _, _ :: v :: l :: _ -> (v, l)
        | _ -> fail "%s: bad arguments" f
      in
      let vv = lower_expr ctx v in
      let lv = convert ctx (lower_expr ctx lane) Ctype.Int in
      let d = fresh ctx B32 in
      emit ctx (Shfl ("down", d, Reg (as_reg ctx vv), lv.op));
      gval (Reg d) vv.vty
  | ("rotr32" | "rotl32"), [ a; b ] ->
      (* funnel: (x >> n) | (x << (32 - n)), n masked *)
      let x = convert ctx (lower_expr ctx a) Ctype.UInt in
      let n = convert ctx (lower_expr ctx b) Ctype.UInt in
      let n31 = fresh ctx B32 in
      emit ctx (And (B32T, n31, n.op, Imm 31L));
      let n' =
        if f = "rotl32" then begin
          let s = fresh ctx B32 in
          emit ctx (Sub (U32, s, Imm 32L, Reg n31));
          let m = fresh ctx B32 in
          emit ctx (And (B32T, m, Reg s, Imm 31L));
          m
        end
        else n31
      in
      let lo = fresh ctx B32 in
      emit ctx (Shr (U32, lo, x.op, Reg n'));
      let comp = fresh ctx B32 in
      emit ctx (Sub (U32, comp, Imm 32L, Reg n'));
      let m32 = fresh ctx B32 in
      emit ctx (And (B32T, m32, Reg comp, Imm 31L));
      let hi = fresh ctx B32 in
      emit ctx (Shl (B32T, hi, x.op, Reg m32));
      let d = fresh ctx B32 in
      emit ctx (Or (B32T, d, Reg lo, Reg hi));
      gval (Reg d) Ctype.UInt
  | ("rotr64" | "rotl64"), [ a; b ] ->
      let x = convert ctx (lower_expr ctx a) Ctype.ULong in
      let n = convert ctx (lower_expr ctx b) Ctype.UInt in
      let n63 = fresh ctx B32 in
      emit ctx (And (B32T, n63, n.op, Imm 63L));
      let n' =
        if f = "rotl64" then begin
          let s = fresh ctx B32 in
          emit ctx (Sub (U32, s, Imm 64L, Reg n63));
          let m = fresh ctx B32 in
          emit ctx (And (B32T, m, Reg s, Imm 63L));
          m
        end
        else n63
      in
      let lo = fresh ctx B64 in
      emit ctx (Shr (U64, lo, x.op, Reg n'));
      let comp = fresh ctx B32 in
      emit ctx (Sub (U32, comp, Imm 64L, Reg n'));
      let m64 = fresh ctx B32 in
      emit ctx (And (B32T, m64, Reg comp, Imm 63L));
      let hi = fresh ctx B64 in
      emit ctx (Shl (B64T, hi, x.op, Reg m64));
      let d = fresh ctx B64 in
      emit ctx (Or (B64T, d, Reg lo, Reg hi));
      gval (Reg d) Ctype.ULong
  | "getMSB", [ a ] -> (
      match Parser.const_eval_opt a with
      | Some v when Int64.compare v 0L > 0 ->
          let rec msb v acc = if v <= 1L then acc else msb (Int64.shift_right_logical v 1) (acc + 1) in
          gval (Imm (Int64.of_int (msb v 0))) Ctype.Int
      | _ -> fail "getMSB of a non-constant argument")
  | ("__syncwarp" | "__threadfence" | "__threadfence_block"), _ ->
      emit ctx (Comment (f ^ "()"));
      gval (Imm 0L) Ctype.Int
  | _ -> fail "cannot lower call to %s (inline device functions first)" f

(* -- statements ---------------------------------------------------------- *)

let rec lower_stmts ctx (stmts : Ast.stmt list) : unit =
  List.iter (lower_stmt ctx) stmts

and lower_stmt ctx (s : Ast.stmt) : unit =
  match s.s with
  | Ast.Nop -> ()
  | Ast.Decl d -> lower_decl ctx d
  | Ast.Expr e -> ignore (lower_expr ctx e)
  | Ast.Block b -> lower_stmts ctx b
  | Ast.If (c, t, e) ->
      let p = as_reg ctx (convert ctx (lower_expr ctx c) Ctype.Bool) in
      let l_else = fresh_label ctx "else" in
      let l_end = fresh_label ctx "endif" in
      emit ctx (BraPred (p, false, l_else));
      lower_stmts ctx t;
      if e <> [] then begin
        emit ctx (Bra l_end);
        emit ctx (Label l_else);
        lower_stmts ctx e;
        emit ctx (Label l_end)
      end
      else emit ctx (Label l_else)
  | Ast.While (c, body) ->
      let l_head = fresh_label ctx "while" in
      let l_end = fresh_label ctx "endwhile" in
      emit ctx (Label l_head);
      let p = as_reg ctx (convert ctx (lower_expr ctx c) Ctype.Bool) in
      emit ctx (BraPred (p, false, l_end));
      ctx.break_labels <- l_end :: ctx.break_labels;
      ctx.continue_labels <- l_head :: ctx.continue_labels;
      lower_stmts ctx body;
      ctx.break_labels <- List.tl ctx.break_labels;
      ctx.continue_labels <- List.tl ctx.continue_labels;
      emit ctx (Bra l_head);
      emit ctx (Label l_end)
  | Ast.Do_while (body, c) ->
      let l_head = fresh_label ctx "do" in
      let l_cont = fresh_label ctx "docond" in
      let l_end = fresh_label ctx "enddo" in
      emit ctx (Label l_head);
      ctx.break_labels <- l_end :: ctx.break_labels;
      ctx.continue_labels <- l_cont :: ctx.continue_labels;
      lower_stmts ctx body;
      ctx.break_labels <- List.tl ctx.break_labels;
      ctx.continue_labels <- List.tl ctx.continue_labels;
      emit ctx (Label l_cont);
      let p = as_reg ctx (convert ctx (lower_expr ctx c) Ctype.Bool) in
      emit ctx (BraPred (p, true, l_head));
      emit ctx (Label l_end)
  | Ast.For (init, cond, step, body) ->
      (match init with
      | None -> ()
      | Some (Ast.For_expr e) -> ignore (lower_expr ctx e)
      | Some (Ast.For_decl ds) -> List.iter (lower_decl ctx) ds);
      let l_head = fresh_label ctx "for" in
      let l_cont = fresh_label ctx "forstep" in
      let l_end = fresh_label ctx "endfor" in
      emit ctx (Label l_head);
      (match cond with
      | None -> ()
      | Some c ->
          let p = as_reg ctx (convert ctx (lower_expr ctx c) Ctype.Bool) in
          emit ctx (BraPred (p, false, l_end)));
      ctx.break_labels <- l_end :: ctx.break_labels;
      ctx.continue_labels <- l_cont :: ctx.continue_labels;
      lower_stmts ctx body;
      ctx.break_labels <- List.tl ctx.break_labels;
      ctx.continue_labels <- List.tl ctx.continue_labels;
      emit ctx (Label l_cont);
      (match step with None -> () | Some e -> ignore (lower_expr ctx e));
      emit ctx (Bra l_head);
      emit ctx (Label l_end)
  | Ast.Break -> (
      match ctx.break_labels with
      | l :: _ -> emit ctx (Bra l)
      | [] -> fail "break outside of a loop")
  | Ast.Continue -> (
      match ctx.continue_labels with
      | l :: _ -> emit ctx (Bra l)
      | [] -> fail "continue outside of a loop")
  | Ast.Return _ -> emit ctx Ret
  | Ast.Sync -> emit ctx (Bar (0, None))
  | Ast.Bar_sync (id, n) -> emit ctx (Bar (id, Some n))
  | Ast.Goto l -> emit ctx (Bra ("$U_" ^ l))
  | Ast.Label l -> emit ctx (Label ("$U_" ^ l))

and lower_decl ctx (d : Ast.decl) : unit =
  match (d.d_storage, d.d_type) with
  | Ast.Shared, Ctype.Array (el, Some n) ->
      (* compile-time shared offset, 16-byte aligned *)
      let off = align_shared ctx (Ctype.sizeof el) in
      Hashtbl.replace ctx.env d.d_name (BShared (off, el));
      shared_bump ctx (n * Ctype.sizeof el)
  | Ast.Shared_extern, Ctype.Array (el, None) ->
      let off = align_shared ctx 16 in
      Hashtbl.replace ctx.env d.d_name (BShared (off, el))
  | (Ast.Shared | Ast.Shared_extern), t ->
      fail "bad shared declaration %s : %s" d.d_name (Ctype.to_string t)
  | Ast.Local, Ctype.Array (el, Some n) ->
      let off = ctx.local_depot in
      ctx.local_depot <- ctx.local_depot + (n * Ctype.sizeof el);
      Hashtbl.replace ctx.env d.d_name (BLocal (off, el))
  | Ast.Local, Ctype.Array (_, None) ->
      fail "local array %s must have a size" d.d_name
  | Ast.Local, t ->
      let r = fresh_ty ctx (ty_of_ctype t) in
      let sp = ref SGlobal in
      Hashtbl.replace ctx.env d.d_name (BReg (r, t, sp));
      (match d.d_init with
      | None -> ()
      | Some e ->
          let v = convert ctx (lower_expr ctx e) t in
          (match t with Ctype.Ptr _ -> sp := v.sp | _ -> ());
          emit ctx (Mov (ty_of_ctype t, r, v.op)))

(* shared offsets are laid out at lowering time *)
and align_shared ctx align =
  let off = (ctx.shared_off + align - 1) / align * align in
  ctx.shared_off <- off;
  off

and shared_bump ctx n = ctx.shared_off <- ctx.shared_off + n

(* -- entry point --------------------------------------------------------- *)

type lowered = {
  name : string;
  params : Ast.param list;
  body : Pinstr.t list;
  reg_counts : (rclass * int) list;
  local_depot_bytes : int;
  shared_bytes : int;
}

(** Lower one normalised kernel. *)
let lower_fn (fn : Ast.fn) : lowered =
  let ctx = create fn.f_name in
  (* parameters: pointers arrive via ld.param + cvta; scalars via
     ld.param *)
  List.iteri
    (fun i (p : Ast.param) ->
      let t = p.p_type in
      let ty = ty_of_ctype t in
      let r = fresh_ty ctx ty in
      emit ctx
        (Comment
           (Printf.sprintf "ld.param %s <- [%s_param_%d]"
              (string_of_vreg r) fn.f_name i));
      emit ctx (Ld (Param, ty, r, Imm 0L, i * 8));
      (match t with
      | Ctype.Ptr _ ->
          let g = fresh ctx B64 in
          emit ctx (Cvta (Global, g, Reg r));
          Hashtbl.replace ctx.env p.p_name (BReg (g, t, ref SGlobal))
      | _ -> Hashtbl.replace ctx.env p.p_name (BReg (r, t, ref SGlobal))))
    fn.f_params;
  lower_stmts ctx fn.f_body;
  emit ctx Ret;
  {
    name = fn.f_name;
    params = fn.f_params;
    body = List.rev ctx.code;
    reg_counts =
      List.map (fun c -> (c, reg_count ctx c)) [ Pred; B32; B64; F32; F64 ];
    local_depot_bytes = ctx.local_depot;
    shared_bytes = ctx.shared_off;
  }

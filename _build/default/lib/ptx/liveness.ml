(* Register-pressure analysis over lowered code.

   Virtual registers are in SSA-ish form (most are defined once), so a
   linear live-interval analysis — first definition to last occurrence,
   maximum overlap per class — gives a faithful upper-ish bound on the
   registers a backend allocator would need before spilling.  Labels and
   backward branches make the linear view optimistic for loop-carried
   values; to compensate, any register used inside a loop region but
   defined before it has its interval extended to the loop's end
   (standard linear-scan loop-extension). *)

open Pinstr

type interval = { mutable first : int; mutable last : int }

let intervals (code : Pinstr.t array) : (vreg, interval) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  let touch i r =
    match Hashtbl.find_opt tbl r with
    | Some iv -> if i > iv.last then iv.last <- i
    | None -> Hashtbl.replace tbl r { first = i; last = i }
  in
  Array.iteri
    (fun i instr ->
      List.iter (touch i) (defs instr);
      List.iter (touch i) (uses instr))
    code;
  (* loop extension: for each backward branch at position i targeting
     label position t < i, every register live anywhere in [t, i] must
     stay live through i *)
  let label_pos = Hashtbl.create 16 in
  Array.iteri
    (fun i instr ->
      match instr with
      | Label l -> Hashtbl.replace label_pos l i
      | _ -> ())
    code;
  Array.iteri
    (fun i instr ->
      let target =
        match instr with
        | Bra l | BraPred (_, _, l) -> Hashtbl.find_opt label_pos l
        | _ -> None
      in
      match target with
      | Some t when t < i ->
          (* classic linear-scan rule: only values DEFINED BEFORE the
             loop and used inside it are loop-carried; values wholly
             inside the body get fresh definitions every iteration *)
          Hashtbl.iter
            (fun _ iv ->
              if iv.first < t && iv.last >= t && iv.last < i then
                iv.last <- i)
            tbl
      | _ -> ())
    code;
  tbl

(** Maximum number of simultaneously-live registers of one class. *)
let max_live_of_class (code : Pinstr.t array) (cls : rclass) : int =
  let tbl = intervals code in
  let n = Array.length code in
  let delta = Array.make (n + 1) 0 in
  Hashtbl.iter
    (fun (r : vreg) iv ->
      if r.cls = cls then begin
        delta.(iv.first) <- delta.(iv.first) + 1;
        delta.(iv.last + 1) <- delta.(iv.last + 1) - 1
      end)
    tbl;
  let live = ref 0 and best = ref 0 in
  Array.iter
    (fun d ->
      live := !live + d;
      if !live > !best then best := !live)
    delta;
  !best

(** Per-thread 32-bit register demand of a lowered kernel: 64-bit and
    double registers cost two 32-bit registers, predicates are free (a
    separate file on the hardware), plus a small ABI/addressing
    overhead — the same quantity NRegs() denotes in Fig. 6. *)
let register_pressure (l : Lower.lowered) : int =
  let code = Array.of_list l.body in
  let b32 = max_live_of_class code B32 in
  let b64 = max_live_of_class code B64 in
  let f32 = max_live_of_class code F32 in
  let f64 = max_live_of_class code F64 in
  let overhead = 6 in
  min 255 (max 16 (b32 + f32 + (2 * (b64 + f64)) + overhead))

(** Instruction count excluding labels/comments (static code size). *)
let static_instructions (l : Lower.lowered) : int =
  List.length
    (List.filter
       (function Label _ | Comment _ -> false | _ -> true)
       l.body)

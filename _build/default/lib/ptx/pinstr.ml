(* A PTX-flavoured virtual instruction set.

   The real HFuse hands its fused CUDA to nvcc; we keep the
   source-to-source contract but additionally lower kernels to this
   PTX-like ISA for two purposes:
   - emitting readable [.ptx] text (inspection, downstream assembly), and
   - liveness-based register-pressure analysis, which gives the Fig. 6
     occupancy computation a principled NRegs estimate — the role nvcc's
     register allocator plays for the paper's HFuse.

   The ISA is deliberately virtual: unlimited typed registers, structured
   memory spaces, PTX spellings. *)

(** Register classes, mirroring PTX [.reg] declarations. *)
type rclass =
  | Pred  (** predicate *)
  | B32  (** 32-bit integer/bit *)
  | B64  (** 64-bit integer/bit/pointer *)
  | F32
  | F64

(** A virtual register: class and index. *)
type vreg = { cls : rclass; idx : int }

type operand =
  | Reg of vreg
  | Imm of int64  (** integer immediate *)
  | FImm of float  (** floating immediate *)

(** PTX state spaces. *)
type space = Global | Shared | Param | Local

(** Comparison codes ([setp.<cc>]). *)
type cc = EQ | NE | LT | LE | GT | GE

(** Arithmetic/type suffixes ([add.s32], [mul.wide.u32], ...). *)
type ty = S32 | U32 | S64 | U64 | F32T | F64T | B32T | B64T | PredT

type t =
  | Mov of ty * vreg * operand
  | Add of ty * vreg * operand * operand
  | Sub of ty * vreg * operand * operand
  | Mul of ty * vreg * operand * operand  (** [mul.lo] for ints *)
  | Mad of ty * vreg * operand * operand * operand
  | Div of ty * vreg * operand * operand
  | Rem of ty * vreg * operand * operand
  | And of ty * vreg * operand * operand
  | Or of ty * vreg * operand * operand
  | Xor of ty * vreg * operand * operand
  | Not of ty * vreg * operand
  | Shl of ty * vreg * operand * operand
  | Shr of ty * vreg * operand * operand
  | Neg of ty * vreg * operand
  | Min of ty * vreg * operand * operand
  | Max of ty * vreg * operand * operand
  | Setp of cc * ty * vreg * operand * operand  (** dst is a Pred *)
  | Selp of ty * vreg * operand * operand * operand  (** cond is last *)
  | Cvt of ty * ty * vreg * operand  (** cvt.<dst>.<src> *)
  | Cvta of space * vreg * operand  (** to generic address *)
  | Ld of space * ty * vreg * operand * int  (** base operand + offset *)
  | St of space * ty * operand * int * operand  (** base, offset, value *)
  | Atom of space * string * ty * vreg * operand * operand
      (** [atom.<space>.<op>.<ty> dst, [addr], src] *)
  | Shfl of string * vreg * operand * operand  (** mode, dst, src, lane *)
  | Bar of int * int option  (** bar.sync id [, count] *)
  | Bra of string  (** unconditional branch *)
  | BraPred of vreg * bool * string  (** @p / @!p bra label *)
  | Label of string
  | Sqrt of ty * vreg * operand
  | Sreg of vreg * string  (** read a special register (%tid.x, ...) *)
  | Ret
  | Comment of string

(* -- register helpers -------------------------------------------------- *)

let cls_of_ty = function
  | S32 | U32 | B32T -> B32
  | S64 | U64 | B64T -> B64
  | F32T -> F32
  | F64T -> F64
  | PredT -> Pred

let string_of_ty = function
  | S32 -> "s32"
  | U32 -> "u32"
  | S64 -> "s64"
  | U64 -> "u64"
  | F32T -> "f32"
  | F64T -> "f64"
  | B32T -> "b32"
  | B64T -> "b64"
  | PredT -> "pred"

let string_of_cc = function
  | EQ -> "eq"
  | NE -> "ne"
  | LT -> "lt"
  | LE -> "le"
  | GT -> "gt"
  | GE -> "ge"

let string_of_space = function
  | Global -> "global"
  | Shared -> "shared"
  | Param -> "param"
  | Local -> "local"

let reg_prefix = function
  | Pred -> "%p"
  | B32 -> "%r"
  | B64 -> "%rd"
  | F32 -> "%f"
  | F64 -> "%fd"

let string_of_vreg r = Printf.sprintf "%s%d" (reg_prefix r.cls) r.idx

let string_of_operand = function
  | Reg r -> string_of_vreg r
  | Imm i -> Int64.to_string i
  | FImm f ->
      (* PTX hex float form is canonical; decimal is accepted for
         readability in this virtual ISA *)
      Printf.sprintf "0f%08lX" (Int32.bits_of_float f)

(** Registers written by an instruction. *)
let defs (i : t) : vreg list =
  match i with
  | Mov (_, d, _)
  | Not (_, d, _)
  | Neg (_, d, _)
  | Cvt (_, _, d, _)
  | Cvta (_, d, _)
  | Sqrt (_, d, _)
  | Ld (_, _, d, _, _) ->
      [ d ]
  | Add (_, d, _, _)
  | Sub (_, d, _, _)
  | Mul (_, d, _, _)
  | Div (_, d, _, _)
  | Rem (_, d, _, _)
  | And (_, d, _, _)
  | Or (_, d, _, _)
  | Xor (_, d, _, _)
  | Shl (_, d, _, _)
  | Shr (_, d, _, _)
  | Min (_, d, _, _)
  | Max (_, d, _, _)
  | Setp (_, _, d, _, _)
  | Atom (_, _, _, d, _, _)
  | Shfl (_, d, _, _) ->
      [ d ]
  | Mad (_, d, _, _, _) | Selp (_, d, _, _, _) -> [ d ]
  | Sreg (d, _) -> [ d ]
  | St _ | Bar _ | Bra _ | BraPred _ | Label _ | Ret | Comment _ -> []

let reg_of_operand = function Reg r -> [ r ] | Imm _ | FImm _ -> []

(** Registers read by an instruction. *)
let uses (i : t) : vreg list =
  let op = reg_of_operand in
  match i with
  | Mov (_, _, a) | Not (_, _, a) | Neg (_, _, a) | Cvt (_, _, _, a)
  | Cvta (_, _, a) | Sqrt (_, _, a) ->
      op a
  | Add (_, _, a, b) | Sub (_, _, a, b) | Mul (_, _, a, b)
  | Div (_, _, a, b) | Rem (_, _, a, b) | And (_, _, a, b)
  | Or (_, _, a, b) | Xor (_, _, a, b) | Shl (_, _, a, b)
  | Shr (_, _, a, b) | Min (_, _, a, b) | Max (_, _, a, b)
  | Setp (_, _, _, a, b) | Shfl (_, _, a, b) ->
      op a @ op b
  | Mad (_, _, a, b, c) | Selp (_, _, a, b, c) -> op a @ op b @ op c
  | Ld (_, _, _, base, _) -> op base
  | St (_, _, base, _, v) -> op base @ op v
  | Atom (_, _, _, _, addr, v) -> op addr @ op v
  | BraPred (p, _, _) -> [ p ]
  | Sreg _ | Bar _ | Bra _ | Label _ | Ret | Comment _ -> []

(* -- printing ----------------------------------------------------------- *)

let pp ppf (i : t) =
  let p fmt = Fmt.pf ppf fmt in
  let o = string_of_operand and r = string_of_vreg in
  let t3 op ty d a b =
    p "%s.%s \t%s, %s, %s;" op (string_of_ty ty) (r d) (o a) (o b)
  in
  match i with
  | Mov (ty, d, a) -> p "mov.%s \t%s, %s;" (string_of_ty ty) (r d) (o a)
  | Add (ty, d, a, b) -> t3 "add" ty d a b
  | Sub (ty, d, a, b) -> t3 "sub" ty d a b
  | Mul ((S32 | U32 | S64 | U64) as ty, d, a, b) ->
      p "mul.lo.%s \t%s, %s, %s;" (string_of_ty ty) (r d) (o a) (o b)
  | Mul (ty, d, a, b) -> t3 "mul" ty d a b
  | Mad ((F32T | F64T) as ty, d, a, b, c) ->
      p "fma.rn.%s \t%s, %s, %s, %s;" (string_of_ty ty) (r d) (o a) (o b) (o c)
  | Mad (ty, d, a, b, c) ->
      p "mad.lo.%s \t%s, %s, %s, %s;" (string_of_ty ty) (r d) (o a) (o b) (o c)
  | Div (F32T, d, a, b) -> p "div.rn.f32 \t%s, %s, %s;" (r d) (o a) (o b)
  | Div (ty, d, a, b) -> t3 "div" ty d a b
  | Rem (ty, d, a, b) -> t3 "rem" ty d a b
  | And (ty, d, a, b) -> t3 "and" ty d a b
  | Or (ty, d, a, b) -> t3 "or" ty d a b
  | Xor (ty, d, a, b) -> t3 "xor" ty d a b
  | Not (ty, d, a) -> p "not.%s \t%s, %s;" (string_of_ty ty) (r d) (o a)
  | Shl (ty, d, a, b) -> t3 "shl" ty d a b
  | Shr (ty, d, a, b) -> t3 "shr" ty d a b
  | Neg (ty, d, a) -> p "neg.%s \t%s, %s;" (string_of_ty ty) (r d) (o a)
  | Min (ty, d, a, b) -> t3 "min" ty d a b
  | Max (ty, d, a, b) -> t3 "max" ty d a b
  | Setp (cc, ty, d, a, b) ->
      p "setp.%s.%s \t%s, %s, %s;" (string_of_cc cc) (string_of_ty ty) (r d)
        (o a) (o b)
  | Selp (ty, d, a, b, c) ->
      p "selp.%s \t%s, %s, %s, %s;" (string_of_ty ty) (r d) (o a) (o b) (o c)
  | Cvt (dst, src, d, a) ->
      p "cvt.%s.%s \t%s, %s;" (string_of_ty dst) (string_of_ty src) (r d) (o a)
  | Cvta (sp, d, a) ->
      p "cvta.%s.u64 \t%s, %s;" (string_of_space sp) (r d) (o a)
  | Ld (sp, ty, d, base, off) ->
      p "ld.%s.%s \t%s, [%s+%d];" (string_of_space sp) (string_of_ty ty) (r d)
        (o base) off
  | St (sp, ty, base, off, v) ->
      p "st.%s.%s \t[%s+%d], %s;" (string_of_space sp) (string_of_ty ty)
        (o base) off (o v)
  | Atom (sp, op_, ty, d, addr, v) ->
      p "atom.%s.%s.%s \t%s, [%s], %s;" (string_of_space sp) op_
        (string_of_ty ty) (r d) (o addr) (o v)
  | Shfl (mode, d, a, b) ->
      p "shfl.sync.%s.b32 \t%s, %s, %s, 0x1f, 0xffffffff;" mode (r d) (o a)
        (o b)
  | Bar (id, Some n) -> p "bar.sync \t%d, %d;" id n
  | Bar (id, None) -> p "bar.sync \t%d;" id
  | Bra l -> p "bra.uni \t%s;" l
  | BraPred (pr, positive, l) ->
      p "@%s%s bra \t%s;" (if positive then "" else "!") (r pr) l
  | Label l -> p "%s:" l
  | Sqrt (ty, d, a) -> p "sqrt.rn.%s \t%s, %s;" (string_of_ty ty) (r d) (o a)
  | Sreg (d, sreg) -> p "mov.u32 \t%s, %s;" (r d) sreg
  | Ret -> p "ret;"
  | Comment c -> p "// %s" c

let to_string i = Fmt.str "%a" pp i

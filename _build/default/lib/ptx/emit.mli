(** Textual [.ptx] emission for lowered kernels. *)

val header : sm:int -> string

(** One kernel as PTX text ([sm] defaults to 61 = Pascal). *)
val kernel_to_string : ?sm:int -> Lower.lowered -> string

(** Normalise (inline + lift), lower and emit in one step. *)
val of_kernel : ?sm:int -> Cuda.Ast.program -> Cuda.Ast.fn -> string

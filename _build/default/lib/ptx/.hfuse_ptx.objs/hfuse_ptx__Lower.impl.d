lib/ptx/lower.ml: Ast Ctype Cuda Fmt Hashtbl Int64 List Parser Pinstr Pretty Printf

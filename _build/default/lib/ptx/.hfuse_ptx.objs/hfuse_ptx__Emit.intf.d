lib/ptx/emit.mli: Cuda Lower

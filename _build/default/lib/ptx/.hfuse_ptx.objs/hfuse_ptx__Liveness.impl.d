lib/ptx/liveness.ml: Array Hashtbl List Lower Pinstr

lib/ptx/liveness.mli: Hashtbl Lower Pinstr

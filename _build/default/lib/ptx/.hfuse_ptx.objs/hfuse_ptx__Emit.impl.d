lib/ptx/emit.ml: Buffer Cuda Hfuse_frontend List Lower Pinstr Printf String

lib/ptx/pinstr.ml: Fmt Int32 Int64 Printf

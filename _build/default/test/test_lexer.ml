(* Lexer unit tests. *)

open Cuda

let tokens src =
  let lexed = Lexer.lex src in
  Array.to_list lexed.tokens
  |> List.map fst
  |> List.filter (fun t -> t <> Token.EOF)

let token = Alcotest.testable Token.pp Token.equal

let check_tokens name src expected =
  Alcotest.(check (list token)) name expected (tokens src)

let test_idents_keywords () =
  check_tokens "identifiers vs keywords" "foo int threadIdx if elsewhere"
    [
      Token.IDENT "foo"; Token.KW "int"; Token.IDENT "threadIdx";
      Token.KW "if"; Token.IDENT "elsewhere";
    ]

let test_int_literals () =
  check_tokens "decimal" "42" [ Token.INT_LIT (42L, Ctype.Int) ];
  check_tokens "unsigned" "42u" [ Token.INT_LIT (42L, Ctype.UInt) ];
  check_tokens "ull" "42ull" [ Token.INT_LIT (42L, Ctype.ULong) ];
  check_tokens "ll" "42ll" [ Token.INT_LIT (42L, Ctype.Long) ];
  check_tokens "hex" "0xff" [ Token.INT_LIT (255L, Ctype.Int) ];
  check_tokens "hex unsigned" "0xFFu" [ Token.INT_LIT (255L, Ctype.UInt) ]

let test_u64_overflow_literal () =
  (* decimal above 2^63-1 must parse as its unsigned bit pattern *)
  check_tokens "big u64" "14695981039346656037ull"
    [ Token.INT_LIT (0xCBF29CE484222325L, Ctype.ULong) ]

let test_float_literals () =
  check_tokens "double" "1.5" [ Token.FLOAT_LIT (1.5, Ctype.Double) ];
  check_tokens "float suffix" "1.5f" [ Token.FLOAT_LIT (1.5, Ctype.Float) ];
  check_tokens "exponent" "2e3" [ Token.FLOAT_LIT (2000.0, Ctype.Double) ];
  check_tokens "exp+suffix" "2.5e-1f" [ Token.FLOAT_LIT (0.25, Ctype.Float) ];
  check_tokens "trailing dot" "3. " [ Token.FLOAT_LIT (3.0, Ctype.Double) ]

let test_operators () =
  check_tokens "shifts vs relations" "a << b >> c < d <= e"
    [
      Token.IDENT "a"; Token.LSHIFT; Token.IDENT "b"; Token.RSHIFT;
      Token.IDENT "c"; Token.LT; Token.IDENT "d"; Token.LE; Token.IDENT "e";
    ];
  check_tokens "compound assigns" "x += 1; y <<= 2;"
    [
      Token.IDENT "x"; Token.PLUS_ASSIGN; Token.INT_LIT (1L, Ctype.Int);
      Token.SEMI; Token.IDENT "y"; Token.LSHIFT_ASSIGN;
      Token.INT_LIT (2L, Ctype.Int); Token.SEMI;
    ];
  check_tokens "incdec and arrow" "p++ -- ->"
    [ Token.IDENT "p"; Token.PLUSPLUS; Token.MINUSMINUS; Token.ARROW ]

let test_comments () =
  check_tokens "line comment" "a // comment here\n b"
    [ Token.IDENT "a"; Token.IDENT "b" ];
  check_tokens "block comment" "a /* x \n y */ b"
    [ Token.IDENT "a"; Token.IDENT "b" ]

let test_unterminated_comment () =
  match Lexer.lex "a /* oops" with
  | exception Lexer.Error (msg, _) ->
      Alcotest.(check string) "message" "unterminated block comment" msg
  | _ -> Alcotest.fail "expected a lexer error"

let test_string_literal () =
  check_tokens "asm string" {|asm("bar.sync 1, 896;")|}
    [
      Token.KW "asm"; Token.LPAREN; Token.STRING_LIT "bar.sync 1, 896;";
      Token.RPAREN;
    ]

let test_defines () =
  let lexed = Lexer.lex "#define WARP_SIZE 32\n#define HEX 0x10\nint x;" in
  Alcotest.(check (list (pair string int64)))
    "defines" [ ("WARP_SIZE", 32L); ("HEX", 16L) ] lexed.defines

let test_define_ignores_nonconstant () =
  let lexed = Lexer.lex "#define F(x) ((x)+1)\n#include <cuda.h>\nint x;" in
  Alcotest.(check int) "no defines" 0 (List.length lexed.defines)

let test_positions () =
  let lexed = Lexer.lex "ab\n  cd" in
  let _, loc = lexed.tokens.(1) in
  Alcotest.(check int) "line" 2 loc.Loc.line;
  Alcotest.(check int) "col" 3 loc.Loc.col

let test_bad_char () =
  match Lexer.lex "@" with
  | exception Lexer.Error (msg, loc) ->
      Alcotest.(check string) "message" "unexpected character '@'" msg;
      Alcotest.(check int) "offset" 0 loc.Loc.offset
  | _ -> Alcotest.fail "expected a lexer error"

let suite =
  [
    Alcotest.test_case "idents and keywords" `Quick test_idents_keywords;
    Alcotest.test_case "int literals" `Quick test_int_literals;
    Alcotest.test_case "u64 overflow literal" `Quick test_u64_overflow_literal;
    Alcotest.test_case "float literals" `Quick test_float_literals;
    Alcotest.test_case "operators" `Quick test_operators;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "unterminated comment" `Quick test_unterminated_comment;
    Alcotest.test_case "string literal" `Quick test_string_literal;
    Alcotest.test_case "defines" `Quick test_defines;
    Alcotest.test_case "non-constant defines ignored" `Quick
      test_define_ignores_nonconstant;
    Alcotest.test_case "positions" `Quick test_positions;
    Alcotest.test_case "bad character" `Quick test_bad_char;
  ]

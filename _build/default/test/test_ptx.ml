(* PTX backend tests: lowering structure, emission well-formedness over
   the whole corpus (including fused kernels), and the liveness
   analysis. *)

open Hfuse_ptx

let lower_src src =
  let prog, fn = Test_util.kernel_of_source src in
  let fn = Hfuse_frontend.Inline.normalize_kernel prog fn in
  Lower.lower_fn fn

let count pred (l : Lower.lowered) =
  List.length (List.filter pred l.body)

let test_simple_lowering () =
  let l =
    lower_src
      {|
__global__ void k(float* a, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) { a[i] = a[i] * 2.0f; }
}
|}
  in
  Alcotest.(check int) "one global load" 1
    (count (function Pinstr.Ld (Pinstr.Global, _, _, _, _) -> true | _ -> false) l);
  Alcotest.(check int) "one global store" 1
    (count (function Pinstr.St (Pinstr.Global, _, _, _, _) -> true | _ -> false) l);
  Alcotest.(check int) "three special registers" 3
    (count (function Pinstr.Sreg _ -> true | _ -> false) l);
  Alcotest.(check bool) "a predicate was set" true
    (count (function Pinstr.Setp _ -> true | _ -> false) l >= 1);
  Alcotest.(check bool) "a guarded branch exists" true
    (count (function Pinstr.BraPred _ -> true | _ -> false) l >= 1)

let test_shared_space () =
  let l =
    lower_src
      {|
__global__ void k(int* out) {
  __shared__ int buf[64];
  extern __shared__ unsigned char dyn[];
  int* alias = (int*)dyn;
  buf[threadIdx.x % 64] = 1;
  alias[threadIdx.x % 8] = 2;
  atomicAdd(&buf[0], 3);
  __syncthreads();
  out[threadIdx.x] = buf[0];
}
|}
  in
  Alcotest.(check bool) "shared stores" true
    (count (function Pinstr.St (Pinstr.Shared, _, _, _, _) -> true | _ -> false) l
    >= 2);
  Alcotest.(check int) "shared atomic" 1
    (count
       (function Pinstr.Atom (Pinstr.Shared, "add", _, _, _, _) -> true | _ -> false)
       l);
  Alcotest.(check int) "full-block barrier" 1
    (count (function Pinstr.Bar (0, None) -> true | _ -> false) l);
  Alcotest.(check bool) "static shared laid out" true (l.shared_bytes >= 256)

let test_loop_lowering () =
  let l =
    lower_src
      {|
__global__ void k(int* a, int n) {
  for (int i = 0; i < n; i++) {
    if (i == 7) { continue; }
    if (i == 9) { break; }
    a[i] = i;
  }
}
|}
  in
  (* a for loop emits head/step/end labels plus two if-join labels *)
  Alcotest.(check bool) "labels emitted" true
    (count (function Pinstr.Label _ -> true | _ -> false) l >= 5);
  Alcotest.(check bool) "backward branch emitted" true
    (count (function Pinstr.Bra _ -> true | _ -> false) l >= 3)

let test_bar_sync_lowering () =
  let l =
    lower_src
      "__global__ void k(int* a) { asm(\"bar.sync 3, 256;\"); a[0] = 1; }"
  in
  Alcotest.(check int) "partial barrier" 1
    (count (function Pinstr.Bar (3, Some 256) -> true | _ -> false) l)

(* every corpus kernel (and a fused one) lowers and emits well-formed
   PTX: all labels referenced by branches are defined, every used
   register is below the declared count *)
let well_formed (l : Lower.lowered) : (unit, string) result =
  let labels = Hashtbl.create 16 in
  List.iter
    (function Pinstr.Label s -> Hashtbl.replace labels s () | _ -> ())
    l.body;
  let bad = ref None in
  List.iter
    (fun i ->
      (match i with
      | Pinstr.Bra l | Pinstr.BraPred (_, _, l) ->
          if not (Hashtbl.mem labels l) then bad := Some ("missing label " ^ l)
      | _ -> ());
      List.iter
        (fun (r : Pinstr.vreg) ->
          let declared = List.assoc r.cls l.reg_counts in
          if r.idx > declared then
            bad := Some (Printf.sprintf "register %s beyond declaration"
                           (Pinstr.string_of_vreg r)))
        (Pinstr.defs i @ Pinstr.uses i))
    l.body;
  match !bad with None -> Ok () | Some e -> Error e

let corpus_cases =
  List.map
    (fun (s : Kernel_corpus.Spec.t) ->
      Alcotest.test_case ("lower corpus: " ^ s.name) `Quick (fun () ->
          let prog, fn = Kernel_corpus.Spec.parse s in
          let fn = Hfuse_frontend.Inline.normalize_kernel prog fn in
          let l = Lower.lower_fn fn in
          (match well_formed l with
          | Ok () -> ()
          | Error e -> Alcotest.fail e);
          (* emission runs and produces the expected skeleton *)
          let ptx = Emit.kernel_to_string l in
          Alcotest.(check bool) "entry declared" true
            (Test_util.contains ptx (".visible .entry " ^ l.name));
          Alcotest.(check bool) "version header" true
            (Test_util.contains ptx ".version 6.5");
          (* pressure is within hardware range and at least the minimum *)
          let p = Liveness.register_pressure l in
          Alcotest.(check bool) "pressure sane" true (p >= 16 && p <= 255)))
    Kernel_corpus.Registry.all

let test_fused_kernel_lowers () =
  let s1 = Kernel_corpus.Registry.find_exn "Batchnorm" in
  let s2 = Kernel_corpus.Registry.find_exn "Hist" in
  let mem = Gpusim.Memory.create () in
  let i1 = s1.instantiate mem ~size:1 and i2 = s2.instantiate mem ~size:1 in
  let k1 =
    Hfuse_core.Kernel_info.with_block_dim (Kernel_corpus.Spec.kernel_info s1 i1) 896
  in
  let k2 =
    Hfuse_core.Kernel_info.with_block_dim (Kernel_corpus.Spec.kernel_info s2 i2) 128
  in
  let f = Hfuse_core.Hfuse.generate k1 k2 in
  let fn = Hfuse_frontend.Inline.normalize_kernel f.prog f.fn in
  let l = Lower.lower_fn fn in
  (match well_formed l with Ok () -> () | Error e -> Alcotest.fail e);
  (* the fused kernel's partial barriers survive into PTX *)
  Alcotest.(check bool) "bar.sync id 1 with 896 threads" true
    (List.exists
       (function Pinstr.Bar (1, Some 896) -> true | _ -> false)
       l.body);
  Alcotest.(check bool) "bar.sync id 2 with 128 threads" true
    (List.exists
       (function Pinstr.Bar (2, Some 128) -> true | _ -> false)
       l.body);
  (* the goto guards became branches to the user labels *)
  let ptx = Emit.kernel_to_string l in
  Alcotest.(check bool) "K1_end label present" true
    (Test_util.contains ptx "$U_K1_end:")

let test_liveness_basics () =
  let mk cls idx = { Pinstr.cls; idx } in
  let r1 = mk Pinstr.B32 1 and r2 = mk Pinstr.B32 2 and r3 = mk Pinstr.B32 3 in
  (* r1 and r2 overlap; r3 reuses the space after both die *)
  let code =
    [|
      Pinstr.Mov (Pinstr.S32, r1, Pinstr.Imm 1L);
      Pinstr.Mov (Pinstr.S32, r2, Pinstr.Imm 2L);
      Pinstr.Add (Pinstr.S32, r3, Pinstr.Reg r1, Pinstr.Reg r2);
      Pinstr.St (Pinstr.Global, Pinstr.S32, Pinstr.Imm 0L, 0, Pinstr.Reg r3);
    |]
  in
  Alcotest.(check int) "max live b32" 3
    (Liveness.max_live_of_class code Pinstr.B32)

let test_liveness_loop_extension () =
  let mk idx = { Pinstr.cls = Pinstr.B32; idx } in
  let base = mk 1 and tmp = mk 2 in
  (* [base] defined before the loop, used inside: it must stay live
     across the whole loop even though its last textual use is early *)
  let code =
    [|
      Pinstr.Mov (Pinstr.S32, base, Pinstr.Imm 5L);
      Pinstr.Label "L";
      Pinstr.Add (Pinstr.S32, tmp, Pinstr.Reg base, Pinstr.Imm 1L);
      Pinstr.St (Pinstr.Global, Pinstr.S32, Pinstr.Imm 0L, 0, Pinstr.Reg tmp);
      Pinstr.Bra "L";
    |]
  in
  let tbl = Liveness.intervals code in
  let iv = Hashtbl.find tbl base in
  Alcotest.(check int) "extended to the branch" 4 iv.Liveness.last

let test_unsupported_reported () =
  match lower_src "__global__ void k(int* a, int n) { a[0] = getMSB(n); }" with
  | exception Lower.Unsupported msg ->
      Alcotest.(check bool) "mentions getMSB" true
        (Test_util.contains msg "getMSB")
  | _ -> Alcotest.fail "expected Unsupported"

let suite =
  [
    Alcotest.test_case "simple lowering" `Quick test_simple_lowering;
    Alcotest.test_case "shared space" `Quick test_shared_space;
    Alcotest.test_case "loop lowering" `Quick test_loop_lowering;
    Alcotest.test_case "bar.sync lowering" `Quick test_bar_sync_lowering;
    Alcotest.test_case "fused kernel lowers" `Quick test_fused_kernel_lowers;
    Alcotest.test_case "liveness basics" `Quick test_liveness_basics;
    Alcotest.test_case "liveness loop extension" `Quick
      test_liveness_loop_extension;
    Alcotest.test_case "unsupported reported" `Quick test_unsupported_reported;
  ]
  @ corpus_cases

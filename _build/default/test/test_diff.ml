(* Differential property tests.

   1. Interpreter vs direct evaluation: a random integer expression over
      the thread id, stored to [out[tid]], must produce exactly the value
      obtained by folding the same AST with {!Value} semantics — this
      exercises the lock-step/mask machinery, the env, and the memory
      path independently of the expression generator.

   2. Fusion equivalence on random kernels: horizontally fusing two
      random straight-line kernels must leave both outputs bit-identical
      to native execution, for random partitions. *)

open Cuda
open Gpusim

(* -- random integer expressions over variable [t] ----------------------- *)

let gen_expr : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        return (Ast.Var "t");
        map (fun n -> Ast.int_lit (1 + abs n)) small_int;
        map (fun n -> Ast.Int_lit (Int64.of_int n, Ctype.UInt)) small_int;
      ]
  in
  (* division/modulo get a never-zero divisor; shifts a masked count *)
  let safe_ops = [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Band; Ast.Bor; Ast.Bxor ] in
  fix
    (fun self n ->
      if n <= 0 then leaf
      else
        frequency
          [
            (2, leaf);
            ( 5,
              oneofl safe_ops >>= fun op ->
              self (n / 2) >>= fun a ->
              self (n / 2) >|= fun b -> Ast.Binop (op, a, b) );
            ( 1,
              oneofl [ Ast.Div; Ast.Mod ] >>= fun op ->
              self (n / 2) >>= fun a ->
              self (n / 2) >|= fun b ->
              Ast.Binop (op, a, Ast.Binop (Ast.Bor, b, Ast.int_lit 1)) );
            ( 1,
              oneofl [ Ast.Shl; Ast.Shr ] >>= fun op ->
              self (n / 2) >>= fun a ->
              self (n / 2) >|= fun b ->
              Ast.Binop (op, a, Ast.Binop (Ast.Band, b, Ast.int_lit 7)) );
            ( 1,
              self (n / 3) >>= fun c ->
              self (n / 3) >>= fun a ->
              self (n / 3) >|= fun b ->
              Ast.Ternary (Ast.Binop (Ast.Lt, c, Ast.int_lit 7), a, b) );
            (1, self (n - 1) >|= fun a -> Ast.Unop (Ast.Bnot, a));
          ])
    6

let arb_expr = QCheck.make ~print:Pretty.expr_to_string gen_expr

(* direct evaluation of the expression with Value semantics *)
let rec eval_direct (t : Value.t) (e : Ast.expr) : Value.t =
  match e with
  | Ast.Var "t" -> t
  | Ast.Int_lit (v, Ctype.UInt) -> Value.UInt (Int64.to_int32 v)
  | Ast.Int_lit (v, _) -> Value.Int (Int64.to_int32 v)
  | Ast.Binop (op, a, b) ->
      Value.binop op (eval_direct t a) (eval_direct t b)
  | Ast.Unop (op, a) -> Value.unop op (eval_direct t a)
  | Ast.Ternary (c, a, b) ->
      if Value.truthy (eval_direct t c) then eval_direct t a
      else eval_direct t b
  | _ -> failwith "unexpected generated node"

let kernel_of_expr (e : Ast.expr) : string =
  Printf.sprintf "__global__ void k(int* out) { int t = threadIdx.x; out[threadIdx.x] = %s; }"
    (Pretty.expr_to_string e)

let interp_matches_direct =
  QCheck.Test.make ~name:"interpreter matches direct evaluation" ~count:200
    arb_expr (fun e ->
      let src = kernel_of_expr e in
      let prog, fn =
        try Parser.parse_kernel src
        with _ -> QCheck.Test.fail_reportf "reparse failed: %s" src
      in
      let mem = Memory.create () in
      let out = Memory.alloc mem ~name:"out" ~elem:Ctype.Int ~count:32 in
      ignore
        (Launch.launch mem ~prog ~fn ~args:[ Value.Ptr out ]
           {
             grid = 1;
             block = (32, 1, 1);
             smem_dynamic = 0;
             trace_blocks = 0;
             l1_sectors = 0;
             exec_blocks = None;
           });
      let got = Memory.read_int32s mem out 32 in
      let ok = ref true in
      for t = 0 to 31 do
        let expect =
          Value.convert Ctype.Int
            (eval_direct (Value.Int (Int32.of_int t)) e)
        in
        match expect with
        | Value.Int v -> if got.(t) <> v then ok := false
        | _ -> ok := false
      done;
      if not !ok then
        QCheck.Test.fail_reportf "mismatch for kernel:\n%s" src
      else true)

(* -- fusion equivalence on random kernels ------------------------------- *)

(* a random kernel: a few stores of random expressions, each to a
   distinct region of [out] so stores never race across threads *)
let gen_kernel_src : string QCheck.Gen.t =
  let open QCheck.Gen in
  list_size (int_range 1 4) gen_expr >|= fun exprs ->
  let stores =
    List.mapi
      (fun i e ->
        Printf.sprintf
          "out[threadIdx.x + blockIdx.x * blockDim.x + %d] = %s;"
          (i * 4096) (Pretty.expr_to_string e))
      exprs
  in
  Printf.sprintf
    "__global__ void k(int* out) { int t = threadIdx.x; %s }"
    (String.concat " " stores)

let arb_kernel_pair =
  QCheck.make
    ~print:(fun (a, b, d1) -> Printf.sprintf "d1=%d\n%s\n%s" d1 a b)
    QCheck.Gen.(
      gen_kernel_src >>= fun a ->
      gen_kernel_src >>= fun b ->
      int_range 1 7 >|= fun d -> (a, b, d * 128))

let run_native_and_fused (src1, src2, d1) =
  let d2 = 1024 - d1 in
  let info src block name : Hfuse_core.Kernel_info.t =
    let prog, fn = Parser.parse_kernel src in
    let fn = { fn with f_name = name } in
    let prog = { prog with Ast.functions = [ fn ] } in
    {
      fn; prog; block = (block, 1, 1); grid = 4; smem_dynamic = 0;
      regs = 16; tunability = Tunable { multiple_of = 32 };
    }
  in
  let k1 = info src1 d1 "ka" and k2 = info src2 d2 "kb" in
  let alloc mem tag =
    Memory.alloc mem ~name:tag ~elem:Ctype.Int ~count:(4 * 4096 + 4096)
  in
  let cfg block =
    {
      Launch.grid = 4; block = (block, 1, 1); smem_dynamic = 0;
      trace_blocks = 0; l1_sectors = 0; exec_blocks = None;
    }
  in
  (* native *)
  let mem_n = Memory.create () in
  let o1 = alloc mem_n "o1" and o2 = alloc mem_n "o2" in
  ignore (Launch.launch mem_n ~prog:k1.prog ~fn:k1.fn ~args:[ Value.Ptr o1 ] (cfg d1));
  ignore (Launch.launch mem_n ~prog:k2.prog ~fn:k2.fn ~args:[ Value.Ptr o2 ] (cfg d2));
  (* fused *)
  let fused = Hfuse_core.Hfuse.generate k1 k2 in
  let mem_f = Memory.create () in
  let p1 = alloc mem_f "o1" and p2 = alloc mem_f "o2" in
  ignore
    (Launch.launch_info ~l1_sectors:0 mem_f (Hfuse_core.Hfuse.info fused)
       ~args:[ Value.Ptr p1; Value.Ptr p2 ] ~trace_blocks:0);
  Memory.equal_snapshot (Memory.snapshot mem_n) (Memory.snapshot mem_f)

let fusion_equivalence =
  QCheck.Test.make ~name:"random-kernel fusion equivalence" ~count:60
    arb_kernel_pair (fun case ->
      try run_native_and_fused case
      with e ->
        QCheck.Test.fail_reportf "exception: %s" (Printexc.to_string e))

(* vertical fusion must also be equivalent on random kernels *)
let run_native_and_vfused (src1, src2, _) =
  let info src name : Hfuse_core.Kernel_info.t =
    let prog, fn = Parser.parse_kernel src in
    let fn = { fn with f_name = name } in
    let prog = { prog with Ast.functions = [ fn ] } in
    {
      fn; prog; block = (256, 1, 1); grid = 4; smem_dynamic = 0;
      regs = 16; tunability = Tunable { multiple_of = 32 };
    }
  in
  let k1 = info src1 "ka" and k2 = info src2 "kb" in
  let alloc mem tag =
    Memory.alloc mem ~name:tag ~elem:Ctype.Int ~count:(4 * 4096 + 4096)
  in
  let cfg =
    {
      Launch.grid = 4; block = (256, 1, 1); smem_dynamic = 0;
      trace_blocks = 0; l1_sectors = 0; exec_blocks = None;
    }
  in
  let mem_n = Memory.create () in
  let o1 = alloc mem_n "o1" and o2 = alloc mem_n "o2" in
  ignore (Launch.launch mem_n ~prog:k1.prog ~fn:k1.fn ~args:[ Value.Ptr o1 ] cfg);
  ignore (Launch.launch mem_n ~prog:k2.prog ~fn:k2.fn ~args:[ Value.Ptr o2 ] cfg);
  let v = Hfuse_core.Vfuse.generate k1 k2 in
  let mem_f = Memory.create () in
  let p1 = alloc mem_f "o1" and p2 = alloc mem_f "o2" in
  ignore
    (Launch.launch_info ~l1_sectors:0 mem_f (Hfuse_core.Vfuse.info v)
       ~args:[ Value.Ptr p1; Value.Ptr p2 ] ~trace_blocks:0);
  Memory.equal_snapshot (Memory.snapshot mem_n) (Memory.snapshot mem_f)

let vfusion_equivalence =
  QCheck.Test.make ~name:"random-kernel vertical-fusion equivalence"
    ~count:40 arb_kernel_pair (fun case ->
      try run_native_and_vfused case
      with e ->
        QCheck.Test.fail_reportf "exception: %s" (Printexc.to_string e))

(* and three-way horizontal fusion *)
let run_native_and_3fused (src1, src2, _) =
  let info src name : Hfuse_core.Kernel_info.t =
    let prog, fn = Parser.parse_kernel src in
    let fn = { fn with f_name = name } in
    let prog = { prog with Ast.functions = [ fn ] } in
    {
      fn; prog; block = (128, 1, 1); grid = 4; smem_dynamic = 0;
      regs = 16; tunability = Tunable { multiple_of = 32 };
    }
  in
  let k1 = info src1 "ka" and k2 = info src2 "kb" and k3 = info src1 "kc" in
  let alloc mem tag =
    Memory.alloc mem ~name:tag ~elem:Ctype.Int ~count:(4 * 4096 + 4096)
  in
  let cfg =
    {
      Launch.grid = 4; block = (128, 1, 1); smem_dynamic = 0;
      trace_blocks = 0; l1_sectors = 0; exec_blocks = None;
    }
  in
  let mem_n = Memory.create () in
  let os = List.map (fun t -> alloc mem_n t) [ "o1"; "o2"; "o3" ] in
  List.iter2
    (fun k o ->
      ignore
        (Launch.launch mem_n ~prog:k.Hfuse_core.Kernel_info.prog
           ~fn:k.Hfuse_core.Kernel_info.fn ~args:[ Value.Ptr o ] cfg))
    [ k1; k2; k3 ] os;
  let m = Hfuse_core.Multi.generate [ k1; k2; k3 ] in
  let mem_f = Memory.create () in
  let ps = List.map (fun t -> alloc mem_f t) [ "o1"; "o2"; "o3" ] in
  ignore
    (Launch.launch_info ~l1_sectors:0 mem_f (Hfuse_core.Hfuse.info m.fused)
       ~args:(List.map (fun p -> Value.Ptr p) ps)
       ~trace_blocks:0);
  Memory.equal_snapshot (Memory.snapshot mem_n) (Memory.snapshot mem_f)

let multi_fusion_equivalence =
  QCheck.Test.make ~name:"random-kernel 3-way fusion equivalence" ~count:30
    arb_kernel_pair (fun case ->
      try run_native_and_3fused case
      with e ->
        QCheck.Test.fail_reportf "exception: %s" (Printexc.to_string e))

let suite =
  Test_util.qcheck_cases
    [
      interp_matches_direct; fusion_equivalence; vfusion_equivalence;
      multi_fusion_equivalence;
    ]

(* Frontend-pass tests: fresh naming, shadow uniquification, declaration
   lifting and device-function inlining. *)

open Cuda
open Hfuse_frontend

(* -- Rename ---------------------------------------------------------- *)

let test_fresh_names () =
  let p = Rename.of_names [ "x"; "x_1" ] in
  Alcotest.(check string) "skips taken" "x_2" (Rename.fresh p "x");
  Alcotest.(check string) "new base untouched" "y" (Rename.fresh p "y");
  Alcotest.(check string) "now y is taken" "y_1" (Rename.fresh p "y")

let fresh_prop =
  QCheck.Test.make ~name:"fresh never collides" ~count:200
    QCheck.(small_list (string_gen_of_size (Gen.return 3) (Gen.char_range 'a' 'z')))
    (fun names ->
      let names = List.filter (fun s -> s <> "") names in
      let p = Rename.of_names names in
      let produced =
        List.map (fun n -> Rename.fresh p n) (names @ names)
      in
      (* all produced names distinct from each other and the originals *)
      let all = produced in
      List.length (List.sort_uniq compare all) = List.length all
      && List.for_all (fun n -> not (List.mem n names)) produced)

let test_rename_locals () =
  let stmts =
    Parser.parse_stmts_string "int i = 0; float v = i + 1; i = i + 2;"
  in
  let pool = Rename.of_names [ "i" ] in
  let stmts', table = Rename.rename_locals pool stmts in
  Alcotest.(check (option string))
    "i renamed" (Some "i_1")
    (Hashtbl.find_opt table "i");
  let used = Ast_util.used_names stmts' in
  Alcotest.(check bool) "no free i left" false (Ast_util.StrSet.mem "i" used);
  Alcotest.(check bool) "i_1 used" true (Ast_util.StrSet.mem "i_1" used)

let test_uniquify_shadowing () =
  let stmts =
    Parser.parse_stmts_string
      "int x = 1; { int x = 2; y = x; } z = x; for (int x = 0; x < 3; x++) { w = x; }"
  in
  let stmts' = Rename.uniquify_shadowing stmts in
  let decls = Ast_util.declared_names stmts' in
  Alcotest.(check int)
    "all decls distinct"
    (List.length decls)
    (List.length (List.sort_uniq compare decls));
  (* semantics: outer x still reaches z *)
  let printed = String.concat " " (List.map Pretty.stmt_to_string stmts') in
  Alcotest.(check bool) "inner ref renamed" true
    (Test_util.contains printed "y = x_1")

let test_rename_labels () =
  let stmts = Parser.parse_stmts_string "goto K1_end; K1_end: ;" in
  let pool = Rename.of_names [ "K1_end" ] in
  let stmts' = Rename.rename_labels pool stmts in
  match List.map (fun (s : Ast.stmt) -> s.s) stmts' with
  | [ Ast.Goto g; Ast.Label l; Ast.Nop ] ->
      Alcotest.(check string) "goto follows label rename" l g;
      Alcotest.(check bool) "renamed" true (l <> "K1_end")
  | _ -> Alcotest.fail "unexpected statement shape"

(* -- Lift_decls ------------------------------------------------------ *)

let test_lift_basic () =
  let _, f =
    Test_util.kernel_of_source
      {|
__global__ void k(int n, float* a) {
  int i = 2 * n;
  if (n > 0) { float t = a[0]; a[1] = t; }
  for (int j = 0; j < n; j++) { a[j] = 0.0f; }
}
|}
  in
  let f' = Lift_decls.lift_fn f in
  Alcotest.(check bool) "is lifted" true (Lift_decls.is_lifted f'.f_body);
  (* initializers must have become assignments at the original sites *)
  let printed = Pretty.fn_to_string f' in
  Alcotest.(check bool) "init preserved" true
    (Test_util.contains printed "i = 2 * n;");
  Alcotest.(check bool) "for header keeps assignment" true
    (Test_util.contains printed "for (j = 0;");
  (* declared names survive *)
  let names = Ast_util.declared_names f'.f_body in
  List.iter
    (fun n -> Alcotest.(check bool) ("decl " ^ n) true (List.mem n names))
    [ "i"; "t"; "j" ]

let test_lift_shared_first () =
  let _, f =
    Test_util.kernel_of_source
      {|
__global__ void k(int n) {
  int i = 0;
  __shared__ float buf[32];
  buf[i] = 0.0f;
}
|}
  in
  let f' = Lift_decls.lift_fn f in
  match f'.f_body with
  | { s = Ast.Decl d; _ } :: _ ->
      Alcotest.(check string) "shared decl first" "buf" d.d_name
  | _ -> Alcotest.fail "expected a leading declaration"

let test_lift_idempotent () =
  let _, f =
    Test_util.kernel_of_source
      "__global__ void k(int n) { int a = 1; int b = a + n; }"
  in
  let once = Lift_decls.lift_fn f in
  let twice = Lift_decls.lift_fn once in
  Alcotest.(check bool) "idempotent" true
    (Ast_util.equal_normalized once.f_body twice.f_body)

(* -- Inline ---------------------------------------------------------- *)

let test_inline_expression_fn () =
  let prog =
    Parser.parse_program
      {|
__device__ uint32_t fnv(uint32_t a, uint32_t b) { return (a * 16777619u) ^ b; }
__global__ void k(uint32_t* out) { out[0] = fnv(fnv(1u, 2u), 3u); }
|}
  in
  let k = List.hd (Ast.kernels prog) in
  let k' = Inline.inline_fn prog k in
  Alcotest.(check bool) "no calls left" true
    (Ast_util.StrSet.is_empty
       (Ast_util.StrSet.filter
          (fun c -> c = "fnv")
          (Ast_util.called_names k'.f_body)))

let test_inline_void_fn () =
  let prog =
    Parser.parse_program
      {|
__device__ void store2(float* p, float v) { p[0] = v; p[1] = v; }
__global__ void k(float* a) { store2(a, 3.0f); }
|}
  in
  let k = List.hd (Ast.kernels prog) in
  let k' = Inline.inline_fn prog k in
  Alcotest.(check bool) "no calls left" true
    (not (Ast_util.StrSet.mem "store2" (Ast_util.called_names k'.f_body)));
  let printed = Pretty.fn_to_string k' in
  Alcotest.(check bool) "parameter bound" true
    (Test_util.contains printed "store2_p")

let test_inline_rejects_recursion () =
  let prog =
    Parser.parse_program
      {|
__device__ int f(int n) { return g(n); }
__device__ int g(int n) { return f(n); }
__global__ void k(int* a) { a[0] = f(1); }
|}
  in
  let k = List.hd (Ast.kernels prog) in
  match Inline.inline_fn prog k with
  | exception Inline.Error msg ->
      Alcotest.(check bool) "mentions recursion" true
        (Test_util.contains msg "recursive")
  | _ -> Alcotest.fail "expected recursion error"

let test_inline_rejects_effectful_dup () =
  let prog =
    Parser.parse_program
      {|
__device__ int dup(int x) { return x + x; }
__global__ void k(int* a, int n) { a[0] = dup(n++); }
|}
  in
  let k = List.hd (Ast.kernels prog) in
  match Inline.inline_fn prog k with
  | exception Inline.Error msg ->
      Alcotest.(check bool) "mentions side effects" true
        (Test_util.contains msg "side effects")
  | _ -> Alcotest.fail "expected duplication error"

let test_normalize_pipeline () =
  let prog, k =
    Test_util.kernel_of_source
      {|
__device__ float sq(float x) { return x * x; }
__global__ void k(float* a, int n) {
  for (int i = 0; i < n; i++) { float v = sq(a[i]); a[i] = v; }
}
|}
  in
  let k' = Inline.normalize_kernel prog k in
  Alcotest.(check bool) "lifted" true (Lift_decls.is_lifted k'.f_body);
  Alcotest.(check bool) "inlined" true
    (not (Ast_util.StrSet.mem "sq" (Ast_util.called_names k'.f_body)))

(* -- Builtins -------------------------------------------------------- *)

let test_builtin_replacement () =
  let stmts =
    Parser.parse_stmts_string
      "x = threadIdx.x + blockDim.x * blockIdx.x; y = threadIdx.y;"
  in
  let m =
    Builtins.of_vars ~tid_x:"t0" ~tid_y:"t1" ~tid_z:"t2" ~bdim_x:"b0"
      ~bdim_y:"b1" ~bdim_z:"b2"
  in
  let printed =
    String.concat " "
      (List.map Pretty.stmt_to_string (Builtins.replace m stmts))
  in
  Alcotest.(check bool) "tid.x replaced" true
    (Test_util.contains printed "x = t0 + b0 * blockIdx.x;");
  Alcotest.(check bool) "tid.y replaced" true
    (Test_util.contains printed "y = t1;");
  Alcotest.(check bool) "blockIdx untouched" true
    (Test_util.contains printed "blockIdx.x")

let test_uses_multidim () =
  let s1 = Parser.parse_stmts_string "x = threadIdx.x;" in
  let s2 = Parser.parse_stmts_string "x = threadIdx.y;" in
  Alcotest.(check bool) "1-D" false (Builtins.uses_multidim s1);
  Alcotest.(check bool) "2-D" true (Builtins.uses_multidim s2)

let suite =
  [
    Alcotest.test_case "fresh names" `Quick test_fresh_names;
    Alcotest.test_case "rename locals" `Quick test_rename_locals;
    Alcotest.test_case "uniquify shadowing" `Quick test_uniquify_shadowing;
    Alcotest.test_case "rename labels" `Quick test_rename_labels;
    Alcotest.test_case "lift basic" `Quick test_lift_basic;
    Alcotest.test_case "lift shared first" `Quick test_lift_shared_first;
    Alcotest.test_case "lift idempotent" `Quick test_lift_idempotent;
    Alcotest.test_case "inline expression fn" `Quick test_inline_expression_fn;
    Alcotest.test_case "inline void fn" `Quick test_inline_void_fn;
    Alcotest.test_case "inline rejects recursion" `Quick
      test_inline_rejects_recursion;
    Alcotest.test_case "inline rejects effectful dup" `Quick
      test_inline_rejects_effectful_dup;
    Alcotest.test_case "normalize pipeline" `Quick test_normalize_pipeline;
    Alcotest.test_case "builtin replacement" `Quick test_builtin_replacement;
    Alcotest.test_case "uses_multidim" `Quick test_uses_multidim;
  ]
  @ Test_util.qcheck_cases [ fresh_prop ]

(* Parser unit tests: expression precedence, statements, declarations,
   functions, and error reporting. *)

open Cuda

let expr = Parser.parse_expr_string
let stmts = Parser.parse_stmts_string

let check_expr name src expected =
  Alcotest.(check string) name expected (Pretty.expr_to_string (expr src))

(* -- expressions ---------------------------------------------------- *)

let test_precedence () =
  (* the printer is precedence-minimal, so the printed form shows the
     parse structure *)
  check_expr "mul binds tighter" "a + b * c" "a + b * c";
  check_expr "explicit parens survive" "(a + b) * c" "(a + b) * c";
  check_expr "shift vs add" "a << b + c" "a << b + c";
  check_expr "shift vs relational" "a < b << c" "a < b << c";
  check_expr "bitand vs equality" "a & b == c" "a & b == c";
  check_expr "logical" "a && b || c && d" "a && b || c && d";
  check_expr "unary binds tightest" "-a * b" "-a * b";
  check_expr "neg of product" "-(a * b)" "-(a * b)"

let test_associativity () =
  let e = expr "a - b - c" in
  (match e with
  | Ast.Binop (Ast.Sub, Ast.Binop (Ast.Sub, _, _), Ast.Var "c") -> ()
  | _ -> Alcotest.fail "subtraction must be left-associative");
  let e = expr "a = b = c" in
  match e with
  | Ast.Assign (Ast.Var "a", Ast.Assign (Ast.Var "b", Ast.Var "c")) -> ()
  | _ -> Alcotest.fail "assignment must be right-associative"

let test_ternary () =
  match expr "a ? b : c ? d : e" with
  | Ast.Ternary (Ast.Var "a", Ast.Var "b", Ast.Ternary _) -> ()
  | _ -> Alcotest.fail "ternary must be right-associative"

let test_cast () =
  (match expr "(float)x" with
  | Ast.Cast (Ctype.Float, Ast.Var "x") -> ()
  | _ -> Alcotest.fail "simple cast");
  (match expr "(unsigned long long)x" with
  | Ast.Cast (Ctype.ULong, Ast.Var "x") -> ()
  | _ -> Alcotest.fail "multi-keyword cast");
  (match expr "(int*)p" with
  | Ast.Cast (Ctype.Ptr Ctype.Int, Ast.Var "p") -> ()
  | _ -> Alcotest.fail "pointer cast");
  (* parenthesised expression is NOT a cast *)
  match expr "(x)" with
  | Ast.Var "x" -> ()
  | _ -> Alcotest.fail "parenthesised var"

let test_postfix () =
  (match expr "a[i][j]" with
  | Ast.Index (Ast.Index (Ast.Var "a", Ast.Var "i"), Ast.Var "j") -> ()
  | _ -> Alcotest.fail "nested index");
  (match expr "f(a, b + 1)" with
  | Ast.Call ("f", [ Ast.Var "a"; Ast.Binop (Ast.Add, _, _) ]) -> ()
  | _ -> Alcotest.fail "call args");
  match expr "x++ + ++y" with
  | Ast.Binop
      ( Ast.Add,
        Ast.Incdec { pre = false; inc = true; _ },
        Ast.Incdec { pre = true; inc = true; _ } ) ->
      ()
  | _ -> Alcotest.fail "inc/dec"

let test_builtins () =
  (match expr "threadIdx.x" with
  | Ast.Builtin (Ast.Thread_idx Ast.X) -> ()
  | _ -> Alcotest.fail "threadIdx.x");
  (match expr "blockDim.y * gridDim.x" with
  | Ast.Binop
      ( Ast.Mul,
        Ast.Builtin (Ast.Block_dim Ast.Y),
        Ast.Builtin (Ast.Grid_dim Ast.X) ) ->
      ()
  | _ -> Alcotest.fail "blockDim/gridDim")

let test_addr_deref () =
  match expr "*&a[i]" with
  | Ast.Deref (Ast.Addr_of (Ast.Index _)) -> ()
  | _ -> Alcotest.fail "deref of addr-of"

(* -- statements ------------------------------------------------------ *)

let test_if_else () =
  match stmts "if (a) x = 1; else { y = 2; }" with
  | [ { s = Ast.If (Ast.Var "a", [ _ ], [ _ ]); _ } ] -> ()
  | _ -> Alcotest.fail "if/else shape"

let test_dangling_else () =
  match stmts "if (a) if (b) x = 1; else y = 2;" with
  | [ { s = Ast.If (_, [ { s = Ast.If (_, _, [ _ ]); _ } ], []); _ } ] -> ()
  | _ -> Alcotest.fail "else binds to nearest if"

let test_for_variants () =
  (match stmts "for (int i = 0; i < n; i++) { }" with
  | [ { s = Ast.For (Some (Ast.For_decl [ d ]), Some _, Some _, []); _ } ] ->
      Alcotest.(check string) "decl name" "i" d.d_name
  | _ -> Alcotest.fail "for with decl");
  (match stmts "for (i = 0; ; ) x++;" with
  | [ { s = Ast.For (Some (Ast.For_expr _), None, None, [ _ ]); _ } ] -> ()
  | _ -> Alcotest.fail "for with empty cond/step");
  match stmts "for (;;) break;" with
  | [ { s = Ast.For (None, None, None, [ { s = Ast.Break; _ } ]); _ } ] -> ()
  | _ -> Alcotest.fail "empty for"

let test_while_do () =
  (match stmts "while (x) x--;" with
  | [ { s = Ast.While (_, [ _ ]); _ } ] -> ()
  | _ -> Alcotest.fail "while");
  match stmts "do { x--; } while (x);" with
  | [ { s = Ast.Do_while ([ _ ], Ast.Var "x"); _ } ] -> ()
  | _ -> Alcotest.fail "do-while"

let test_goto_label () =
  match stmts "goto end; x = 1; end: ;" with
  | [
   { s = Ast.Goto "end"; _ }; { s = Ast.Expr _; _ }; { s = Ast.Label "end"; _ };
   { s = Ast.Nop; _ };
  ] ->
      ()
  | _ -> Alcotest.fail "goto/label"

let test_sync_and_bar () =
  (match stmts "__syncthreads();" with
  | [ { s = Ast.Sync; _ } ] -> ()
  | _ -> Alcotest.fail "__syncthreads");
  (match stmts {|asm("bar.sync 3, 256;");|} with
  | [ { s = Ast.Bar_sync (3, 256); _ } ] -> ()
  | _ -> Alcotest.fail "bar.sync");
  match stmts {|asm volatile("bar.sync 1, 32;");|} with
  | [ { s = Ast.Bar_sync (1, 32); _ } ] -> ()
  | _ -> Alcotest.fail "asm volatile"

let test_decl_group () =
  match stmts "int a = 1, *b, c[4];" with
  | [ { s = Ast.Block [ da; db; dc ]; _ } ] -> (
      match (da.s, db.s, dc.s) with
      | Ast.Decl a, Ast.Decl b, Ast.Decl c ->
          Alcotest.(check bool) "a init" true (a.d_init <> None);
          Alcotest.(check bool)
            "b is pointer"
            (b.d_type = Ctype.Ptr Ctype.Int)
            true;
          Alcotest.(check bool)
            "c is array"
            (c.d_type = Ctype.Array (Ctype.Int, Some 4))
            true
      | _ -> Alcotest.fail "decl group members")
  | _ -> Alcotest.fail "decl group"

let test_shared_decls () =
  (match stmts "__shared__ float buf[2 * 32];" with
  | [ { s = Ast.Decl d; _ } ] ->
      Alcotest.(check bool) "shared storage" true (d.d_storage = Ast.Shared);
      Alcotest.(check bool)
        "const-folded dim" true
        (d.d_type = Ctype.Array (Ctype.Float, Some 64))
  | _ -> Alcotest.fail "__shared__ decl");
  match stmts "extern __shared__ unsigned char smem[];" with
  | [ { s = Ast.Decl d; _ } ] ->
      Alcotest.(check bool)
        "extern shared" true
        (d.d_storage = Ast.Shared_extern
        && d.d_type = Ctype.Array (Ctype.UChar, None))
  | _ -> Alcotest.fail "extern __shared__ decl"

(* -- functions / programs -------------------------------------------- *)

let test_function_parsing () =
  let prog =
    Parser.parse_program
      {|
__device__ __forceinline__ float sq(float x) { return x * x; }
__global__ void __launch_bounds__(256) k(float* a, const int n, int dims[3]) {
  a[0] = sq(1.0f);
}
|}
  in
  Alcotest.(check int) "two functions" 2 (List.length prog.functions);
  let d = List.nth prog.functions 0 and g = List.nth prog.functions 1 in
  Alcotest.(check bool) "device kind" true (d.f_kind = Ast.Device);
  Alcotest.(check bool) "global kind" true (g.f_kind = Ast.Global);
  Alcotest.(check (option int)) "launch bounds" (Some 256) g.f_launch_bounds;
  (* array parameters decay to pointers *)
  let p3 = List.nth g.f_params 2 in
  Alcotest.(check bool) "array param decays" true (p3.p_type = Ctype.Ptr Ctype.Int)

let test_define_substitution () =
  let prog =
    Parser.parse_program
      "#define N 8\n__global__ void k(int* a) { a[0] = N * 2; }"
  in
  let k = List.hd prog.functions in
  match k.f_body with
  | [ { s = Ast.Expr (Ast.Assign (_, Ast.Binop (Ast.Mul, Ast.Int_lit (8L, _), _)));
        _ } ] ->
      ()
  | _ -> Alcotest.fail "define not substituted"

let test_parse_kernel_errors () =
  Alcotest.check_raises "no kernel"
    (Failure "parse_kernel: no __global__ kernel in input") (fun () ->
      ignore (Parser.parse_kernel "__device__ int f() { return 1; }"))

let test_syntax_error_location () =
  match Parser.parse_program "__global__ void k() { int x = ; }" with
  | exception Parser.Error (_, loc) ->
      Alcotest.(check int) "error line" 1 loc.Loc.line
  | _ -> Alcotest.fail "expected a parse error"

let test_const_dims_required () =
  match Parser.parse_stmts_string "__shared__ int a[n];" with
  | exception Parser.Error (msg, _) ->
      Alcotest.(check bool)
        "mentions constant" true
        (Test_util.contains msg "constant")
  | _ -> Alcotest.fail "expected constant-dimension error"

let suite =
  [
    Alcotest.test_case "precedence" `Quick test_precedence;
    Alcotest.test_case "associativity" `Quick test_associativity;
    Alcotest.test_case "ternary" `Quick test_ternary;
    Alcotest.test_case "casts" `Quick test_cast;
    Alcotest.test_case "postfix" `Quick test_postfix;
    Alcotest.test_case "builtins" `Quick test_builtins;
    Alcotest.test_case "addr/deref" `Quick test_addr_deref;
    Alcotest.test_case "if/else" `Quick test_if_else;
    Alcotest.test_case "dangling else" `Quick test_dangling_else;
    Alcotest.test_case "for variants" `Quick test_for_variants;
    Alcotest.test_case "while/do" `Quick test_while_do;
    Alcotest.test_case "goto/label" `Quick test_goto_label;
    Alcotest.test_case "sync and bar.sync" `Quick test_sync_and_bar;
    Alcotest.test_case "declaration groups" `Quick test_decl_group;
    Alcotest.test_case "shared declarations" `Quick test_shared_decls;
    Alcotest.test_case "functions" `Quick test_function_parsing;
    Alcotest.test_case "define substitution" `Quick test_define_substitution;
    Alcotest.test_case "parse_kernel errors" `Quick test_parse_kernel_errors;
    Alcotest.test_case "error locations" `Quick test_syntax_error_location;
    Alcotest.test_case "const dims required" `Quick test_const_dims_required;
  ]

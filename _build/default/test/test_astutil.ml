(* Ast_util traversal/query tests and Resource_model estimation tests. *)

open Cuda

let stmts = Parser.parse_stmts_string

let test_collect_decls () =
  let s =
    stmts
      "int a; if (x) { float b; } for (int c = 0; c < 2; c++) { int d; } \
       { int e; }"
  in
  Alcotest.(check (list string)) "all decls in order"
    [ "a"; "b"; "c"; "d"; "e" ]
    (Ast_util.declared_names s)

let test_free_names () =
  let s = stmts "int a = x + 1; y = a + z;" in
  Alcotest.(check (list string)) "free names"
    [ "x"; "y"; "z" ]
    (Ast_util.StrSet.elements (Ast_util.free_names s))

let test_called_and_labels () =
  let s = stmts "foo(bar(1)); lbl: baz(); goto lbl;" in
  Alcotest.(check (list string)) "calls" [ "bar"; "baz"; "foo" ]
    (Ast_util.StrSet.elements (Ast_util.called_names s));
  Alcotest.(check (list string)) "labels" [ "lbl" ]
    (Ast_util.StrSet.elements (Ast_util.labels s))

let test_barriers_and_builtins () =
  let s =
    stmts
      "__syncthreads(); asm(\"bar.sync 1, 64;\"); x = threadIdx.x + \
       blockDim.y;"
  in
  Alcotest.(check int) "barrier count" 2 (Ast_util.barrier_count s);
  Alcotest.(check bool) "has barrier" true (Ast_util.has_barrier s);
  Alcotest.(check int) "builtins" 2 (List.length (Ast_util.used_builtins s))

let test_map_stmts_expansion () =
  (* map_stmts may expand one statement into several, recursively *)
  let s = stmts "x = 1; if (c) { y = 2; }" in
  let doubled =
    Ast_util.map_stmts
      (fun st ->
        match st.s with Ast.Expr _ -> [ st; st ] | _ -> [ st ])
      s
  in
  let count =
    Ast_util.fold_stmts
      (fun n st -> match st.s with Ast.Expr _ -> n + 1 | _ -> n)
      0 doubled
  in
  Alcotest.(check int) "expressions doubled" 4 count

let test_subst_vars () =
  let s = stmts "int x = n; y[x] = n + m;" in
  let table = Hashtbl.create 2 in
  Hashtbl.replace table "n" (Parser.parse_expr_string "a * 2");
  let s' = Ast_util.subst_vars table s in
  let printed = String.concat " " (List.map Pretty.stmt_to_string s') in
  Alcotest.(check bool) "n replaced everywhere" true
    (Test_util.contains printed "int x = a * 2;"
    && Test_util.contains printed "y[x] = a * 2 + m;")

let test_rename_preserves_structure () =
  let s = stmts "int i = 0; for (i = 0; i < 9; i++) { acc += i; }" in
  let table = Hashtbl.create 1 in
  Hashtbl.replace table "i" "j";
  let s' = Ast_util.rename_stmts table s in
  Alcotest.(check (list string)) "decl renamed" [ "j" ]
    (Ast_util.declared_names s');
  Alcotest.(check bool) "no i left" false
    (Ast_util.StrSet.mem "i" (Ast_util.used_names s'))

let test_normalize () =
  let a = stmts "{ x = 1; ; { y = 2; } }" in
  let b = stmts "x = 1; y = 2;" in
  Alcotest.(check bool) "normalised equal" true
    (Ast_util.equal_normalized a b);
  Alcotest.(check bool) "raw not equal" false (Ast_util.equal_stmts a b)

(* -- Resource_model ---------------------------------------------------- *)

let test_reg_costs () =
  Alcotest.(check int) "int = 1" 1 (Gpusim.Resource_model.reg_cost_of_type Ctype.Int);
  Alcotest.(check int) "u64 = 2" 2
    (Gpusim.Resource_model.reg_cost_of_type Ctype.ULong);
  Alcotest.(check int) "ptr = 2" 2
    (Gpusim.Resource_model.reg_cost_of_type (Ctype.Ptr Ctype.Float));
  Alcotest.(check int) "array = 0 (not register-resident)" 0
    (Gpusim.Resource_model.reg_cost_of_type (Ctype.Array (Ctype.Int, Some 8)))

let test_estimate_monotone () =
  let est src =
    let _, fn = Test_util.kernel_of_source src in
    Gpusim.Resource_model.estimate_fn fn
  in
  let small = est "__global__ void k(float* a) { a[0] = 1.0f; }" in
  let big =
    est
      "__global__ void k(float* a, float* b, int n) { float x = 0.0f; \
       float y = 1.0f; float z = 2.0f; uint64_t w = 0ull; a[0] = x + y + z \
       + (float)w; }"
  in
  Alcotest.(check bool) "more locals, more registers" true (big > small);
  Alcotest.(check bool) "within hardware range" true
    (small >= 16 && big <= 255)

let test_estimate_depth () =
  Alcotest.(check int) "leaf depth" 0
    (Gpusim.Resource_model.expr_depth (Parser.parse_expr_string "x"));
  Alcotest.(check int) "chain depth" 3
    (Gpusim.Resource_model.expr_depth
       (Parser.parse_expr_string "((a + b) + c) + d"))

let test_calibration_preferred () =
  let s = Kernel_corpus.Registry.find_exn "Blake256" in
  let mem = Gpusim.Memory.create () in
  let inst = s.instantiate mem ~size:1 in
  let info = Kernel_corpus.Spec.kernel_info s inst in
  Alcotest.(check int) "calibrated value wins" s.regs
    (Gpusim.Resource_model.regs_of_info info);
  Alcotest.(check bool) "estimator used when uncalibrated" true
    (Gpusim.Resource_model.regs_of_info { info with regs = 0 } >= 16)

let suite =
  [
    Alcotest.test_case "collect decls" `Quick test_collect_decls;
    Alcotest.test_case "free names" `Quick test_free_names;
    Alcotest.test_case "calls and labels" `Quick test_called_and_labels;
    Alcotest.test_case "barriers and builtins" `Quick
      test_barriers_and_builtins;
    Alcotest.test_case "map_stmts expansion" `Quick test_map_stmts_expansion;
    Alcotest.test_case "subst vars" `Quick test_subst_vars;
    Alcotest.test_case "rename preserves structure" `Quick
      test_rename_preserves_structure;
    Alcotest.test_case "normalize" `Quick test_normalize;
    Alcotest.test_case "register type costs" `Quick test_reg_costs;
    Alcotest.test_case "estimate monotone" `Quick test_estimate_monotone;
    Alcotest.test_case "expression depth" `Quick test_estimate_depth;
    Alcotest.test_case "calibration preferred" `Quick
      test_calibration_preferred;
  ]

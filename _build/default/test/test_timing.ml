(* Timing-model tests against analytically-predictable traces. *)

open Gpusim

let arch = Arch.gtx1080ti

let mk_trace (instrs : Instr.t list) : Trace.t =
  let t = Trace.create () in
  List.iter (Trace.push t) instrs;
  t

let alus n = List.init n (fun _ -> Instr.Alu)

let spec ?(label = "t") ?(grid = 1) ?(threads = 32) ?(regs = 32) ?(spill = 0)
    ?(smem = 0) ?(stream = 0) (warp_instrs : Instr.t list list) :
    Timing.launch_spec =
  {
    Timing.label;
    block_traces = [| Array.of_list (List.map mk_trace warp_instrs) |];
    grid;
    threads_per_block = threads;
    regs;
    spill;
    smem;
    stream;
  }

let test_single_warp_alu_chain () =
  (* one warp of N dependent ALU ops: ~N * alu_latency cycles *)
  let n = 100 in
  let r = Timing.run arch [ spec [ alus n ] ] in
  let expected = n * arch.alu_latency in
  Alcotest.(check bool)
    (Printf.sprintf "cycles %d within 20%% of %d" r.elapsed_cycles expected)
    true
    (abs (r.elapsed_cycles - expected) < expected / 5)

let test_more_warps_hide_latency () =
  (* same per-warp work; more warps should not stretch time linearly *)
  let one = Timing.run arch [ spec [ alus 200 ] ] in
  let eight =
    Timing.run arch [ spec ~threads:256 (List.init 8 (fun _ -> alus 200)) ]
  in
  Alcotest.(check bool) "8 warps cost < 2x one warp" true
    (eight.elapsed_cycles < 2 * one.elapsed_cycles);
  Alcotest.(check bool) "utilisation rises" true
    (eight.issue_slot_util > one.issue_slot_util)

let test_issue_bound_saturation () =
  (* enough warps saturate the schedulers: util approaches 100% *)
  let r =
    Timing.run arch
      [ spec ~grid:(2 * arch.sms) ~threads:1024
          (List.init 32 (fun _ -> alus 500)) ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "util %.1f > 85" r.issue_slot_util)
    true (r.issue_slot_util > 85.0)

let test_memory_latency_dominates () =
  (* dependent uncoalesced loads: time >> instruction count; stalls are
     classified as memory *)
  let loads = List.init 20 (fun _ -> Instr.Ld_global (32, 0)) in
  let r = Timing.run arch [ spec [ loads ] ] in
  Alcotest.(check bool) "much slower than ALU" true
    (r.elapsed_cycles > 20 * arch.alu_latency * 4);
  Alcotest.(check bool)
    (Printf.sprintf "mem stalls dominate (%.1f%%)" r.mem_stall_pct)
    true (r.mem_stall_pct > 80.0)

let test_l1_hits_cheaper () =
  let misses = List.init 50 (fun _ -> Instr.Ld_global (4, 0)) in
  let hits = List.init 50 (fun _ -> Instr.Ld_global (0, 4)) in
  let rm = Timing.run arch [ spec [ misses ] ] in
  let rh = Timing.run arch [ spec [ hits ] ] in
  Alcotest.(check bool) "hits faster" true
    (rh.elapsed_cycles < rm.elapsed_cycles)

let test_barrier_synchronises () =
  (* two warps, one long one short, meeting at a barrier: elapsed must
     cover the long warp before the barrier releases *)
  let long_w = alus 300 @ [ Instr.Bar (1, 64) ] @ alus 10 in
  let short_w = alus 10 @ [ Instr.Bar (1, 64) ] @ alus 10 in
  let r = Timing.run arch [ spec ~threads:64 [ long_w; short_w ] ] in
  Alcotest.(check bool) "covers the long warp" true
    (r.elapsed_cycles >= 300 * arch.alu_latency / 2);
  Alcotest.(check bool) "sync stalls recorded" true (r.sync_stall_slots > 0)

let test_partial_barrier_ignores_nonparticipants () =
  (* warp 0 syncs alone on bar 1 with count 32; warp 1 never syncs: no
     deadlock, short elapsed *)
  let w0 = alus 5 @ [ Instr.Bar (1, 32) ] @ alus 5 in
  let w1 = alus 5 in
  let r = Timing.run arch [ spec ~threads:64 [ w0; w1 ] ] in
  Alcotest.(check bool) "completes quickly" true (r.elapsed_cycles < 1000)

let test_unsatisfiable_barrier_deadlocks () =
  let w0 = [ Instr.Bar (1, 64) ] in
  match Timing.run arch [ spec [ w0 ] ] with
  | exception Timing.Timing_error msg ->
      Alcotest.(check bool) "reports deadlock" true
        (Test_util.contains msg "deadlock")
  | _ -> Alcotest.fail "expected timing deadlock"

let test_occupancy_limits_blocks () =
  (* high register usage halves resident blocks and slows execution *)
  let work = List.init 16 (fun _ -> alus 200) in
  let light = Timing.run arch [ spec ~grid:16 ~threads:512 ~regs:32 work ] in
  let heavy = Timing.run arch [ spec ~grid:16 ~threads:512 ~regs:128 work ] in
  Alcotest.(check bool) "heavy regs slower" true
    (heavy.elapsed_cycles > light.elapsed_cycles);
  let kb b = (List.hd b.Timing.kernels).Timing.k_blocks_per_sm in
  Alcotest.(check int) "light fits 4 blocks" 4 (kb light);
  Alcotest.(check int) "heavy fits 1 block" 1 (kb heavy)

let test_kernel_too_big_rejected () =
  match
    Timing.run arch [ spec ~threads:1024 ~regs:255 [ alus 1 ] ]
  with
  | exception Timing.Timing_error msg ->
      Alcotest.(check bool) "reports misfit" true
        (Test_util.contains msg "cannot fit")
  | _ -> Alcotest.fail "expected an occupancy error"

let test_spill_slows () =
  let work = List.init 16 (fun _ -> alus 400) in
  let base = Timing.run arch [ spec ~grid:8 ~threads:512 work ] in
  let spilled =
    Timing.run arch [ spec ~grid:8 ~threads:512 ~spill:40 work ]
  in
  Alcotest.(check bool) "spilling costs time" true
    (spilled.elapsed_cycles > base.elapsed_cycles);
  Alcotest.(check bool) "spilling issues extra instructions" true
    (spilled.issued_slots > base.issued_slots)

let test_fifo_vs_leftover () =
  (* a long stream-0 kernel and a short stream-1 kernel: under FIFO the
     second waits; under the idealised Leftover policy it backfills *)
  let big = spec ~label:"big" ~grid:16 ~threads:1024 ~stream:0
      (List.init 32 (fun _ -> alus 400)) in
  let small = spec ~label:"small" ~grid:16 ~threads:256 ~stream:1
      (List.init 8 (fun _ -> alus 50)) in
  let fifo = Timing.run ~policy:Timing.Fifo arch [ big; small ] in
  let leftover = Timing.run ~policy:Timing.Leftover arch [ big; small ] in
  Alcotest.(check bool) "leftover overlaps better" true
    (leftover.elapsed_cycles <= fifo.elapsed_cycles)

let test_streams_vs_serial () =
  (* two kernels on separate streams must not be slower than the sum of
     their solo runs (FIFO allows tail overlap) *)
  let k1 () = spec ~label:"a" ~grid:8 ~threads:512 ~stream:0
      (List.init 16 (fun _ -> alus 300)) in
  let k2 () = spec ~label:"b" ~grid:8 ~threads:512 ~stream:1
      (List.init 16 (fun _ -> alus 300)) in
  let solo1 = Timing.run arch [ k1 () ] in
  let solo2 = Timing.run arch [ { (k2 ()) with stream = 0 } ] in
  let both = Timing.run arch [ k1 (); k2 () ] in
  Alcotest.(check bool) "pair <= sum + 10%" true
    (both.elapsed_cycles
    <= (solo1.elapsed_cycles + solo2.elapsed_cycles) * 11 / 10)

let test_report_accounting () =
  let r = Timing.run arch [ spec ~threads:64 [ alus 50; alus 50 ] ] in
  Alcotest.(check int) "issued = instructions" 100 r.issued_slots;
  Alcotest.(check bool) "slots add up" true
    (r.issued_slots + r.mem_stall_slots + r.sync_stall_slots
     + r.other_stall_slots + r.idle_slots
    = r.total_slots);
  Alcotest.(check bool) "time positive" true (r.time_ms > 0.0)

let test_determinism () =
  let mk () =
    spec ~grid:8 ~threads:512
      (List.init 16 (fun i ->
           alus (100 + i) @ [ Instr.Ld_global (4, 0) ] @ alus 50))
  in
  let a = Timing.run arch [ mk () ] and b = Timing.run arch [ mk () ] in
  Alcotest.(check int) "same cycles" a.elapsed_cycles b.elapsed_cycles;
  Alcotest.(check int) "same issue count" a.issued_slots b.issued_slots

let test_volta_fp32_issue () =
  (* fp32 costs two issue slots on the V100 model's 64-core partitions *)
  let work = [ List.init 200 (fun _ -> Instr.Falu) ] in
  let p = Timing.run Arch.gtx1080ti [ spec work ] in
  let v = Timing.run Arch.v100 [ spec work ] in
  Alcotest.(check bool) "V100 accounts more slots" true
    (v.issued_slots > p.issued_slots)

let suite =
  [
    Alcotest.test_case "single warp ALU chain" `Quick
      test_single_warp_alu_chain;
    Alcotest.test_case "warps hide latency" `Quick
      test_more_warps_hide_latency;
    Alcotest.test_case "issue-bound saturation" `Quick
      test_issue_bound_saturation;
    Alcotest.test_case "memory latency dominates" `Quick
      test_memory_latency_dominates;
    Alcotest.test_case "cache hits cheaper" `Quick test_l1_hits_cheaper;
    Alcotest.test_case "barrier synchronises" `Quick test_barrier_synchronises;
    Alcotest.test_case "partial barrier" `Quick
      test_partial_barrier_ignores_nonparticipants;
    Alcotest.test_case "unsatisfiable barrier" `Quick
      test_unsatisfiable_barrier_deadlocks;
    Alcotest.test_case "occupancy limits blocks" `Quick
      test_occupancy_limits_blocks;
    Alcotest.test_case "oversized kernel rejected" `Quick
      test_kernel_too_big_rejected;
    Alcotest.test_case "spilling costs" `Quick test_spill_slows;
    Alcotest.test_case "fifo vs leftover" `Quick test_fifo_vs_leftover;
    Alcotest.test_case "streams vs serial" `Quick test_streams_vs_serial;
    Alcotest.test_case "report accounting" `Quick test_report_accounting;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "Volta fp32 issue cost" `Quick test_volta_fp32_issue;
  ]

test/test_timing.ml: Alcotest Arch Array Gpusim Instr List Printf Test_util Timing Trace

test/test_memory.ml: Alcotest Array Ctype Cuda Gpusim Int32 List Memory Test_util Value

test/test_fusion.ml: Alcotest Ast Ast_util Barrier Cuda Fuse_common Hfuse Hfuse_core Hfuse_frontend Kernel_info List Multi Parser Test_util Typecheck Vfuse

test/test_diff.ml: Array Ast Ctype Cuda Gpusim Hfuse_core Int32 Int64 Launch List Memory Parser Pretty Printexc Printf QCheck String Test_util Value

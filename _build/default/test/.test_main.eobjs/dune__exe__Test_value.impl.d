test/test_value.ml: Alcotest Ast Ctype Cuda Float Gpusim Int32 Int64 QCheck Test_util Value

test/test_astutil.ml: Alcotest Ast Ast_util Ctype Cuda Gpusim Hashtbl Kernel_corpus List Parser Pretty String Test_util

test/test_occupancy.ml: Alcotest Hfuse_core Occupancy QCheck Test_util

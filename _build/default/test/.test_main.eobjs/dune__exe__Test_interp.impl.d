test/test_interp.ml: Alcotest Array Ctype Cuda Gpusim Instr Int32 Interp Kernel_corpus Launch Memory Printf Test_util Trace Value

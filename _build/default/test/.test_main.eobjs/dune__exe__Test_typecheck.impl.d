test/test_typecheck.ml: Alcotest Cuda Kernel_corpus List Loc Parser Test_util Typecheck

test/test_analyzer.ml: Alcotest Analyzer Gpusim Hfuse_core Kernel_corpus List Printf Registry Spec Test_util

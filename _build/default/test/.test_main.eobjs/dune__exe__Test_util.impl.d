test/test_util.ml: Alcotest Cuda Hfuse_core List QCheck QCheck_alcotest String

test/test_ptx.ml: Alcotest Emit Gpusim Hashtbl Hfuse_core Hfuse_frontend Hfuse_ptx Kernel_corpus List Liveness Lower Pinstr Printf Test_util

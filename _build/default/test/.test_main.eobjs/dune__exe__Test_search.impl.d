test/test_search.ml: Alcotest Hfuse Hfuse_core Kernel_info List Occupancy Partition QCheck Search Test_util

test/test_parser.ml: Alcotest Ast Ctype Cuda List Loc Parser Pretty Test_util

test/test_pretty.ml: Alcotest Ast Ast_util Ctype Cuda Int64 List Parser Pretty QCheck String Test_util

test/test_equivalence.ml: Alcotest Gpusim Hfuse_core Hfuse_profiler Kernel_corpus Launch List Memory Printf Registry Runner Spec Workload

test/test_kernels.ml: Alcotest Cuda Gpusim Hfuse_core Kernel_corpus Launch List Memory Printexc Prng Registry Spec String Test_util Workload

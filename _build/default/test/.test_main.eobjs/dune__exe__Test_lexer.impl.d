test/test_lexer.ml: Alcotest Array Ctype Cuda Lexer List Loc Token

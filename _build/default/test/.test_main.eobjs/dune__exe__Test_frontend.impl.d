test/test_frontend.ml: Alcotest Ast Ast_util Builtins Cuda Gen Hashtbl Hfuse_frontend Inline Lift_decls List Parser Pretty QCheck Rename String Test_util

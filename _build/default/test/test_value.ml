(* Runtime-value semantics: exact 32/64-bit wrapping, signedness,
   fp32 rounding, conversions and pointer arithmetic — checked against
   OCaml's Int32/Int64 reference operations. *)

open Cuda
open Gpusim

let i32 x = Value.Int x
let u32 x = Value.UInt x
let u64 x = Value.ULong x

let test_wrapping () =
  Alcotest.(check bool) "i32 add wraps" true
    (Value.binop Ast.Add (i32 Int32.max_int) (i32 1l) = i32 Int32.min_int);
  Alcotest.(check bool) "u32 mul wraps" true
    (Value.binop Ast.Mul (u32 0x9e3779b1l) (u32 0x9e3779b1l)
    = u32 (Int32.mul 0x9e3779b1l 0x9e3779b1l));
  Alcotest.(check bool) "u64 add wraps" true
    (Value.binop Ast.Add (u64 Int64.minus_one) (u64 2L) = u64 1L)

let test_signedness () =
  (* -1 as unsigned is the maximum *)
  Alcotest.(check bool) "u32 compare" true
    (Value.binop Ast.Lt (u32 1l) (u32 (-1l)) = Value.Bool true);
  Alcotest.(check bool) "i32 compare" true
    (Value.binop Ast.Lt (i32 (-1l)) (i32 1l) = Value.Bool true);
  Alcotest.(check bool) "u32 shift logical" true
    (Value.binop Ast.Shr (u32 (-2l)) (i32 1l) = u32 0x7FFFFFFFl);
  Alcotest.(check bool) "i32 shift arithmetic" true
    (Value.binop Ast.Shr (i32 (-2l)) (i32 1l) = i32 (-1l));
  Alcotest.(check bool) "u32 div" true
    (Value.binop Ast.Div (u32 (-1l)) (u32 2l) = u32 0x7FFFFFFFl);
  (* mixed signed/unsigned promotes to unsigned, as in C *)
  Alcotest.(check bool) "mixed promotes unsigned" true
    (Value.binop Ast.Lt (i32 (-1l)) (u32 1l) = Value.Bool false)

let test_f32_rounding () =
  (* 1 + 2^-30 is not representable in binary32 *)
  let v = Value.binop Ast.Add (Value.Float 1.0) (Value.Float (Float.pow 2.0 (-30.))) in
  Alcotest.(check bool) "f32 rounds" true (v = Value.Float 1.0);
  let d =
    Value.binop Ast.Add (Value.Double 1.0) (Value.Double (Float.pow 2.0 (-30.)))
  in
  Alcotest.(check bool) "f64 keeps precision" true
    (d <> Value.Double 1.0)

let test_conversions () =
  Alcotest.(check bool) "float->int truncates" true
    (Value.convert Ctype.Int (Value.Float 3.9) = i32 3l);
  Alcotest.(check bool) "negative trunc toward zero" true
    (Value.convert Ctype.Int (Value.Float (-3.9)) = i32 (-3l));
  Alcotest.(check bool) "uchar wraps" true
    (Value.convert Ctype.UChar (i32 260l) = u32 4l);
  Alcotest.(check bool) "char sign-extends" true
    (Value.convert Ctype.Char (i32 255l) = i32 (-1l));
  Alcotest.(check bool) "int->u64 sign-extends (C semantics)" true
    (Value.convert Ctype.ULong (i32 (-1l)) = u64 Int64.minus_one);
  Alcotest.(check bool) "u32->u64 zero-extends" true
    (Value.convert Ctype.ULong (u32 (-1l)) = u64 0xFFFFFFFFL);
  Alcotest.(check bool) "bool truthiness" true
    (Value.convert Ctype.Bool (i32 7l) = Value.Bool true)

let test_pointer_arith () =
  let p =
    { Value.space = Value.Global; buf = 0; off = 16; elem = Ctype.Float }
  in
  (match Value.binop Ast.Add (Value.Ptr p) (i32 3l) with
  | Value.Ptr q -> Alcotest.(check int) "offset scaled" 28 q.Value.off
  | _ -> Alcotest.fail "expected pointer");
  (match Value.binop Ast.Sub (Value.Ptr p) (i32 2l) with
  | Value.Ptr q -> Alcotest.(check int) "sub scaled" 8 q.Value.off
  | _ -> Alcotest.fail "expected pointer");
  let q = { p with Value.off = 32 } in
  Alcotest.(check bool) "pointer difference" true
    (Value.binop Ast.Sub (Value.Ptr q) (Value.Ptr p) = i32 4l);
  Alcotest.(check bool) "pointer compare" true
    (Value.binop Ast.Lt (Value.Ptr p) (Value.Ptr q) = Value.Bool true);
  (* reinterpret changes the stride *)
  match Value.convert (Ctype.Ptr Ctype.UChar) (Value.Ptr p) with
  | Value.Ptr r ->
      (match Value.binop Ast.Add (Value.Ptr r) (i32 3l) with
      | Value.Ptr r' -> Alcotest.(check int) "byte stride" 19 r'.Value.off
      | _ -> Alcotest.fail "expected pointer")
  | _ -> Alcotest.fail "expected pointer"

let test_division_by_zero () =
  (match Value.binop Ast.Div (i32 1l) (i32 0l) with
  | exception Value.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected div-by-zero error");
  match Value.binop Ast.Mod (u64 1L) (u64 0L) with
  | exception Value.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected mod-by-zero error"

(* -- reference properties ---------------------------------------------- *)

let arb_i32 = QCheck.map Int64.to_int32 (QCheck.int64)

let binop_matches_int32 =
  QCheck.Test.make ~name:"i32 binops match Int32 reference" ~count:500
    QCheck.(pair arb_i32 arb_i32)
    (fun (a, b) ->
      Value.binop Ast.Add (i32 a) (i32 b) = i32 (Int32.add a b)
      && Value.binop Ast.Sub (i32 a) (i32 b) = i32 (Int32.sub a b)
      && Value.binop Ast.Mul (i32 a) (i32 b) = i32 (Int32.mul a b)
      && Value.binop Ast.Band (i32 a) (i32 b) = i32 (Int32.logand a b)
      && Value.binop Ast.Bor (i32 a) (i32 b) = i32 (Int32.logor a b)
      && Value.binop Ast.Bxor (i32 a) (i32 b) = i32 (Int32.logxor a b))

let binop_matches_int64 =
  QCheck.Test.make ~name:"u64 binops match Int64 reference" ~count:500
    QCheck.(pair int64 int64)
    (fun (a, b) ->
      Value.binop Ast.Add (u64 a) (u64 b) = u64 (Int64.add a b)
      && Value.binop Ast.Mul (u64 a) (u64 b) = u64 (Int64.mul a b)
      && Value.binop Ast.Bxor (u64 a) (u64 b) = u64 (Int64.logxor a b)
      && Value.binop Ast.Lt (u64 a) (u64 b)
         = Value.Bool (Int64.unsigned_compare a b < 0))

let shifts_match =
  QCheck.Test.make ~name:"shifts mask the count as hardware does" ~count:500
    QCheck.(pair arb_i32 (int_range 0 100))
    (fun (a, n) ->
      Value.binop Ast.Shl (u32 a) (i32 (Int32.of_int n))
      = u32 (Int32.shift_left a (n land 31)))

let f32_idempotent =
  QCheck.Test.make ~name:"f32 rounding is idempotent" ~count:500 QCheck.float
    (fun x -> Value.f32 (Value.f32 x) = Value.f32 x)

let conversion_roundtrip =
  QCheck.Test.make ~name:"int conversion to wider type preserves value"
    ~count:300 arb_i32 (fun a ->
      Value.to_i64 (Value.convert Ctype.Long (i32 a)) = Int64.of_int32 a)

let suite =
  [
    Alcotest.test_case "wrapping" `Quick test_wrapping;
    Alcotest.test_case "signedness" `Quick test_signedness;
    Alcotest.test_case "f32 rounding" `Quick test_f32_rounding;
    Alcotest.test_case "conversions" `Quick test_conversions;
    Alcotest.test_case "pointer arithmetic" `Quick test_pointer_arith;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
  ]
  @ Test_util.qcheck_cases
      [
        binop_matches_int32; binop_matches_int64; shifts_match;
        f32_idempotent; conversion_roundtrip;
      ]

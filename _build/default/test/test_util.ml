(* Small shared helpers for the test suites. *)

let contains (s : string) (needle : string) : bool =
  let n = String.length needle and m = String.length s in
  if n = 0 then true
  else begin
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  end

(** Parse a kernel and fail the test on parse errors. *)
let kernel_of_source (src : string) : Cuda.Ast.program * Cuda.Ast.fn =
  try Cuda.Parser.parse_kernel src
  with Cuda.Parser.Error (msg, loc) ->
    Alcotest.failf "parse error at %a: %s" Cuda.Loc.pp loc msg

(** Build a [Kernel_info.t] quickly for fusion tests. *)
let info_of_source ?(block = (256, 1, 1)) ?(grid = 8) ?(smem_dynamic = 0)
    ?(regs = 24) ?(tunability = Hfuse_core.Kernel_info.Tunable { multiple_of = 32 })
    (src : string) : Hfuse_core.Kernel_info.t =
  let prog, fn = kernel_of_source src in
  { Hfuse_core.Kernel_info.fn; prog; block; grid; smem_dynamic; regs; tunability }

let qcheck_cases (tests : QCheck.Test.t list) : unit Alcotest.test_case list =
  List.map (QCheck_alcotest.to_alcotest ~long:false) tests

(* Static-analysis tests: instruction-mix attribution, the paper's
   resource taxonomy on the real corpus, and pairing scores that order
   the way the evaluation's results order. *)

open Hfuse_core
open Kernel_corpus

let mix_of (name : string) =
  let s = Registry.find_exn name in
  let _, fn = Spec.parse s in
  Analyzer.analyze_fn fn

let info_of (name : string) =
  let s = Registry.find_exn name in
  let mem = Gpusim.Memory.create () in
  let inst = s.instantiate mem ~size:1 in
  Spec.kernel_info s inst

let test_mix_attribution () =
  let _, fn =
    Test_util.kernel_of_source
      {|
__global__ void k(float* g, int n) {
  __shared__ float s[64];
  int t = threadIdx.x;
  s[t % 64] = g[t];              // 1 shared store, 1 global load
  __syncthreads();
  atomicAdd(&g[0], s[t % 64]);   // 1 atomic, 1 shared load
  float x = 1.0f + g[t] * 2.0f;  // float ops + global load
  g[t] = x / 3.0f;               // div + global store
}
|}
  in
  let m = Analyzer.analyze_fn fn in
  Alcotest.(check int) "global loads" 2 m.global_loads;
  Alcotest.(check int) "global stores" 1 m.global_stores;
  Alcotest.(check int) "shared ops" 2 m.shared_ops;
  Alcotest.(check int) "atomics" 1 m.atomics;
  Alcotest.(check int) "barriers" 1 m.barriers;
  Alcotest.(check int) "divs (two %% and one /)" 3 m.div_ops;
  Alcotest.(check bool) "float ops seen" true (m.float_ops >= 2)

let test_loops_weighted () =
  let body_of src =
    let _, fn = Test_util.kernel_of_source src in
    Analyzer.analyze_fn fn
  in
  let flat = body_of "__global__ void k(float* g) { g[0] = g[1]; }" in
  let looped =
    body_of
      "__global__ void k(float* g, int n) { for (int i = 0; i < n; i++) { \
       g[i] = g[i + 1]; } }"
  in
  Alcotest.(check bool) "loop bodies dominate" true
    (looped.global_loads > 4 * flat.global_loads);
  Alcotest.(check int) "loop depth" 1 looped.loop_depth

let test_shared_pointer_aliasing () =
  (* a pointer initialised from an extern shared buffer must count as
     shared, as in the histogram kernel *)
  let m = mix_of "Hist" in
  Alcotest.(check bool) "hist shared traffic seen" true (m.shared_ops > 0);
  Alcotest.(check bool) "hist atomics seen" true (m.atomics > 0)

let check_class name expected =
  let m = mix_of name in
  let got = Analyzer.classify m in
  if got <> expected then
    Alcotest.failf "%s: expected %a, got %a (%a)" name
      Analyzer.pp_character expected Analyzer.pp_character got
      Analyzer.pp_mix m

let test_corpus_taxonomy () =
  (* Fig. 8's resource story: crypto miners are compute-intensive,
     Ethash and Maxpool memory-intensive *)
  check_class "Blake256" Analyzer.Compute_intensive;
  check_class "Blake2B" Analyzer.Compute_intensive;
  check_class "SHA256" Analyzer.Compute_intensive;
  check_class "Ethash" Analyzer.Memory_intensive;
  check_class "Maxpool" Analyzer.Memory_intensive

let test_affinity_ordering () =
  (* the paper's result ordering: Ethash+Blake is the best crypto pair,
     Blake+SHA the worst *)
  let e = info_of "Ethash" and b = info_of "Blake256" in
  let s = info_of "SHA256" and b2 = info_of "Blake2B" in
  let good = Analyzer.affinity e b in
  let bad = Analyzer.affinity b s in
  Alcotest.(check bool)
    (Printf.sprintf "ethash+blake (%.2f) > blake+sha (%.2f)" good bad)
    true (good > bad);
  let bad2 = Analyzer.affinity b b2 in
  Alcotest.(check bool) "blake pairs score low" true (bad2 < 0.5)

let test_affinity_range () =
  let ks = List.map (fun (s : Spec.t) -> info_of s.name) Registry.all in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j then begin
            let v = Analyzer.affinity a b in
            if v < 0.0 || v > 1.0 then
              Alcotest.failf "affinity out of range: %f" v
          end)
        ks)
    ks

let test_rank_pairs () =
  let ks =
    List.map (fun n -> info_of n) [ "Ethash"; "Blake256"; "SHA256" ]
  in
  match Analyzer.rank_pairs ks with
  | (a, b, _) :: _ ->
      let names = [ a.fn.f_name; b.fn.f_name ] in
      Alcotest.(check bool) "top pair involves ethash" true
        (List.mem "ethash" names)
  | [] -> Alcotest.fail "expected ranked pairs"

let suite =
  [
    Alcotest.test_case "mix attribution" `Quick test_mix_attribution;
    Alcotest.test_case "loops weighted" `Quick test_loops_weighted;
    Alcotest.test_case "shared pointer aliasing" `Quick
      test_shared_pointer_aliasing;
    Alcotest.test_case "corpus taxonomy" `Quick test_corpus_taxonomy;
    Alcotest.test_case "affinity ordering" `Quick test_affinity_ordering;
    Alcotest.test_case "affinity in range" `Quick test_affinity_range;
    Alcotest.test_case "rank pairs" `Quick test_rank_pairs;
  ]

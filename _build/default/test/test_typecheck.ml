(* Semantic-checker tests: the corpus must pass; characteristic mistakes
   must be rejected with the right message. *)

open Cuda

let check_ok name src =
  Alcotest.test_case name `Quick (fun () ->
      let prog = Parser.parse_program src in
      match Typecheck.check_program prog with
      | () -> ()
      | exception Typecheck.Error (msg, loc) ->
          Alcotest.failf "unexpected type error at %a: %s" Loc.pp loc msg)

let check_err name src fragment =
  Alcotest.test_case name `Quick (fun () ->
      let prog = Parser.parse_program src in
      match Typecheck.check_program prog with
      | () -> Alcotest.failf "expected a type error mentioning %S" fragment
      | exception Typecheck.Error (msg, _) ->
          if not (Test_util.contains msg fragment) then
            Alcotest.failf "error %S does not mention %S" msg fragment)

let wrap body = "__global__ void k(float* a, int n) {" ^ body ^ "}"

let corpus_cases =
  List.map
    (fun (s : Kernel_corpus.Spec.t) ->
      check_ok ("corpus: " ^ s.name) s.source)
    Kernel_corpus.Registry.all

let suite =
  corpus_cases
  @ [
      check_ok "simple kernel" (wrap "a[threadIdx.x] = 1.0f;");
      check_ok "device call"
        "__device__ int sq(int x) { return x * x; }\n\
         __global__ void k(int* a) { a[0] = sq(3); }";
      check_ok "pointer arithmetic" (wrap "float* p = a + n; p[0] = 0.0f;");
      check_ok "goto to later label" (wrap "if (n > 0) goto end; a[0] = 1.0f; end: ;");
      check_ok "goto from nested scope"
        (wrap "if (n > 0) { if (n > 1) goto out; } out: ;");
      check_err "undeclared variable" (wrap "a[0] = z;") "undeclared variable z";
      check_err "redeclaration" (wrap "int x; float x;") "redeclaration of x";
      check_err "break outside loop" (wrap "break;") "break/continue outside";
      check_err "goto to missing label" (wrap "goto nowhere;")
        "undefined label nowhere";
      check_err "assignment to rvalue" (wrap "1 = 2;") "not an lvalue";
      check_err "subscript of scalar" (wrap "n[0] = 1;") "subscript of non-pointer";
      check_err "deref of scalar" (wrap "*n = 1;") "dereference of non-pointer";
      check_err "unknown function" (wrap "foo(1);") "unknown function foo";
      check_err "wrong intrinsic arity" (wrap "int x = min(1);")
        "min expects 2 arguments";
      check_err "call to __global__"
        "__global__ void g() { }\n__global__ void k() { g(); }"
        "cannot call __global__";
      check_err "shared must be sized array"
        "__global__ void k() { __shared__ int x; }" "must be a sized array";
      check_err "extern shared must be unsized"
        "__global__ void k() { extern __shared__ int x[4]; }"
        "must be an incomplete array";
      check_err "scope ends with block"
        (wrap "{ int t; } a[0] = t;")
        "undeclared variable t";
      check_ok "atomic on pointer" (wrap "atomicAdd(&a[0], 1.0f);");
      check_err "atomic on scalar" (wrap "atomicAdd(n, 1);")
        "pointer first argument";
      check_err "shift of float" (wrap "float f = 1.0f; int x = f << 2;")
        "shift of non-integer";
    ]

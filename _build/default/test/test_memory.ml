(* Simulated-memory tests: typed load/store round trips, reinterpretation
   across types, bounds checking, snapshots. *)

open Cuda
open Gpusim

let test_roundtrip_all_types () =
  let mem = Memory.create () in
  let p = Memory.alloc mem ~name:"buf" ~elem:Ctype.UChar ~count:64 in
  let data = Memory.buffer mem p.Value.buf in
  let cases =
    [
      (Ctype.Int, Value.Int (-123456l));
      (Ctype.UInt, Value.UInt 0xDEADBEEFl);
      (Ctype.Long, Value.Long (-1234567890123L));
      (Ctype.ULong, Value.ULong 0xCBF29CE484222325L);
      (Ctype.Float, Value.Float 3.25);
      (Ctype.Double, Value.Double 2.718281828459045);
      (Ctype.Bool, Value.Bool true);
      (Ctype.UChar, Value.UInt 200l);
      (Ctype.Char, Value.Int (-5l));
      (Ctype.Short, Value.Int (-3000l));
      (Ctype.UShort, Value.UInt 60000l);
    ]
  in
  List.iter
    (fun (ty, v) ->
      Memory.store_bytes data 8 ty v;
      let got = Memory.load_bytes data 8 ty in
      if got <> v then
        Alcotest.failf "%s: stored %a, loaded %a" (Ctype.to_string ty)
          Value.pp v Value.pp got)
    cases

let test_reinterpret () =
  let mem = Memory.create () in
  let p = Memory.alloc mem ~name:"buf" ~elem:Ctype.Float ~count:4 in
  let data = Memory.buffer mem p.Value.buf in
  Memory.store_bytes data 0 Ctype.Float (Value.Float 1.0);
  (* the bit pattern of 1.0f *)
  Alcotest.(check bool) "float bits as u32" true
    (Memory.load_bytes data 0 Ctype.UInt = Value.UInt 0x3F800000l)

let test_bounds () =
  let mem = Memory.create () in
  let p = Memory.alloc mem ~name:"buf" ~elem:Ctype.Int ~count:4 in
  let data = Memory.buffer mem p.Value.buf in
  (match Memory.load_bytes data 16 Ctype.Int with
  | exception Value.Runtime_error msg ->
      Alcotest.(check bool) "mentions bounds" true
        (Test_util.contains msg "out-of-bounds")
  | _ -> Alcotest.fail "expected OOB error");
  (match Memory.load_bytes data 13 Ctype.Int with
  | exception Value.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected OOB on straddling load");
  match Memory.store_bytes data (-1) Ctype.Int (Value.Int 0l) with
  | exception Value.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected OOB on negative offset"

let test_fill_read () =
  let mem = Memory.create () in
  let p = Memory.alloc mem ~name:"f" ~elem:Ctype.Float ~count:8 in
  let xs = Array.init 8 (fun i -> float_of_int i /. 4.0) in
  Memory.fill_floats mem p xs;
  Alcotest.(check (array (float 0.0))) "floats round trip" xs
    (Memory.read_floats mem p 8);
  let q = Memory.alloc mem ~name:"i" ~elem:Ctype.Int ~count:5 in
  let ys = Array.init 5 (fun i -> Int32.of_int (i * 7 - 3)) in
  Memory.fill_int32s mem q ys;
  Alcotest.(check (array int32)) "int32s round trip" ys
    (Memory.read_int32s mem q 5)

let test_snapshot_equal () =
  let mk () =
    let mem = Memory.create () in
    let p = Memory.alloc mem ~name:"a" ~elem:Ctype.Int ~count:4 in
    Memory.fill_int32s mem p [| 1l; 2l; 3l; 4l |];
    (mem, p)
  in
  let m1, _ = mk () and m2, p2 = mk () in
  Alcotest.(check bool) "identical memories" true
    (Memory.equal_snapshot (Memory.snapshot m1) (Memory.snapshot m2));
  Memory.fill_int32s m2 p2 [| 9l |];
  Alcotest.(check bool) "detects difference" false
    (Memory.equal_snapshot (Memory.snapshot m1) (Memory.snapshot m2))

let test_buffer_names () =
  let mem = Memory.create () in
  let p = Memory.alloc mem ~name:"weights" ~elem:Ctype.Float ~count:2 in
  Alcotest.(check string) "name kept" "weights"
    (Memory.buffer_name mem p.Value.buf);
  Alcotest.(check int) "size in bytes" 8 (Memory.size_bytes mem p.Value.buf)

let suite =
  [
    Alcotest.test_case "typed round trips" `Quick test_roundtrip_all_types;
    Alcotest.test_case "reinterpretation" `Quick test_reinterpret;
    Alcotest.test_case "bounds checking" `Quick test_bounds;
    Alcotest.test_case "fill/read helpers" `Quick test_fill_read;
    Alcotest.test_case "snapshots" `Quick test_snapshot_equal;
    Alcotest.test_case "buffer names" `Quick test_buffer_names;
  ]

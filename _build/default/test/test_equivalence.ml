(* The headline integration property: a horizontally fused kernel is
   functionally equivalent to its two inputs — both kernels' outputs
   match their host references after running only the fused kernel.
   Checked for every benchmark pair of the evaluation, plus vertical
   fusion where it is legal, plus a partition sweep for one pair. *)

open Kernel_corpus
open Hfuse_profiler

(* small sizes: these run the whole grid functionally *)
let size_for (s : Spec.t) = match s.kind with Spec.Crypto -> 1 | _ -> 2

let partition_for (s1 : Spec.t) (s2 : Spec.t) =
  (* fixed kernels keep native sizes; tunable pairs use an uneven split
     to exercise the builtin remapping *)
  match (s1.tunability, s2.tunability) with
  | Hfuse_core.Kernel_info.Fixed, Hfuse_core.Kernel_info.Fixed ->
      let d (s : Spec.t) =
        let x, y, z = s.native_block in
        x * y * z
      in
      (d s1, d s2)
  | Hfuse_core.Kernel_info.Fixed, _ ->
      let x, y, z = s1.native_block in
      (x * y * z, 1024 - (x * y * z))
  | _, Hfuse_core.Kernel_info.Fixed ->
      let x, y, z = s2.native_block in
      (1024 - (x * y * z), x * y * z)
  | _ -> (640, 384)

let hfuse_case ((s1, s2) : Spec.t * Spec.t) =
  Alcotest.test_case
    (Printf.sprintf "hfuse %s+%s" s1.name s2.name)
    `Slow
    (fun () ->
      let d1, d2 = partition_for s1 s2 in
      match
        Runner.validate_hfuse s1 ~size1:(size_for s1) s2 ~size2:(size_for s2)
          ~d1 ~d2
      with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)

let vfuse_case ((s1, s2) : Spec.t * Spec.t) =
  Alcotest.test_case
    (Printf.sprintf "vfuse %s+%s" s1.name s2.name)
    `Slow
    (fun () ->
      match
        Runner.validate_vfuse s1 ~size1:(size_for s1) s2 ~size2:(size_for s2)
      with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)

(* Every legal partition of one barrier-heavy pair must be equivalent —
   the partition only changes performance, never results. *)
let test_partition_sweep () =
  let s1 = Registry.find_exn "Batchnorm" and s2 = Registry.find_exn "Hist" in
  List.iter
    (fun d1 ->
      match
        Runner.validate_hfuse s1 ~size1:2 s2 ~size2:2 ~d1 ~d2:(1024 - d1)
      with
      | Ok () -> ()
      | Error e -> Alcotest.failf "partition %d/%d: %s" d1 (1024 - d1) e)
    [ 128; 512; 896 ]

(* Fusing in the opposite order must also be equivalent. *)
let test_order_independence () =
  let s1 = Registry.find_exn "Hist" and s2 = Registry.find_exn "Maxpool" in
  (match Runner.validate_hfuse s1 ~size1:2 s2 ~size2:2 ~d1:256 ~d2:256 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Runner.validate_hfuse s2 ~size1:2 s1 ~size2:2 ~d1:256 ~d2:256 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* Three-way fusion of barrier-free kernels stays correct. *)
let test_multi_equivalence () =
  let open Gpusim in
  let mem = Memory.create () in
  let specs =
    [ Registry.find_exn "Maxpool"; Registry.find_exn "Upsample";
      Registry.find_exn "Im2Col" ]
  in
  let insts = List.map (fun (s : Spec.t) -> (s, s.instantiate mem ~size:1)) specs in
  let infos =
    List.map
      (fun ((s : Spec.t), inst) ->
        Hfuse_core.Kernel_info.with_block_dim (Spec.kernel_info s inst) 256)
      insts
  in
  let m = Hfuse_core.Multi.generate infos in
  let args = List.concat_map (fun (_, i) -> i.Workload.args) insts in
  ignore
    (Launch.launch_info mem (Hfuse_core.Hfuse.info m.fused) ~args
       ~trace_blocks:0);
  List.iter
    (fun ((s : Spec.t), inst) ->
      match inst.Workload.check mem with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s in 3-way fusion: %s" s.name e)
    insts

let suite =
  List.map hfuse_case Registry.all_pairs
  @ List.map vfuse_case
      (* vertical fusion is legal except when a barrier-bearing kernel
         must run under a thread guard: Ethash pairs are fine (Ethash is
         barrier-free) *)
      Registry.all_pairs
  @ [
      Alcotest.test_case "partition sweep equivalence" `Slow
        test_partition_sweep;
      Alcotest.test_case "order independence" `Slow test_order_independence;
      Alcotest.test_case "3-way fusion equivalence" `Slow
        test_multi_equivalence;
    ]

(* Fusion-construction tests: the structure of Generate() output (Fig. 5
   / Fig. 4), barrier replacement, shared-memory layout, error cases,
   vertical fusion, and >2-way fusion. *)

open Cuda
open Hfuse_core

let k_with_barriers =
  {|
__global__ void red(float* out, float* a, int n) {
  __shared__ float buf[128];
  int tid = threadIdx.x;
  buf[tid % 128] = a[tid % n];
  __syncthreads();
  if (tid < 64) { buf[tid] = buf[tid] + buf[tid + 64]; }
  __syncthreads();
  if (tid == 0) { out[blockIdx.x] = buf[0]; }
}
|}

let k_plain =
  {|
__global__ void scale(float* b, int m) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < m) { b[i] = b[i] * 2.0f; }
}
|}

let k_extern =
  {|
__global__ void count(int* c, int* xs, int n, int nb) {
  extern __shared__ unsigned char raw[];
  int* bins = (int*)raw;
  for (int i = threadIdx.x; i < nb; i += blockDim.x) { bins[i] = 0; }
  __syncthreads();
  for (int i = threadIdx.x; i < n; i += blockDim.x) {
    atomicAdd(&bins[xs[i] % nb], 1);
  }
  __syncthreads();
  for (int i = threadIdx.x; i < nb; i += blockDim.x) {
    atomicAdd(&c[i], bins[i]);
  }
}
|}

let info = Test_util.info_of_source

let fuse ?(d1 = 256) ?(d2 = 128) ?(smem2 = 0) src1 src2 =
  Hfuse.generate
    (info ~block:(d1, 1, 1) src1)
    (info ~block:(d2, 1, 1) ~smem_dynamic:smem2 src2)

(* -- horizontal fusion structure -------------------------------------- *)

let test_basic_structure () =
  let f = fuse k_with_barriers k_plain in
  Alcotest.(check int) "d1" 256 f.d1;
  Alcotest.(check int) "d2" 128 f.d2;
  Alcotest.(check int) "params merged" 5 (List.length f.fn.f_params);
  (* fused kernel must typecheck as a standalone program *)
  Typecheck.check_program f.prog;
  (* no plain __syncthreads survives *)
  Alcotest.(check int) "no Sync left" 0
    (Ast_util.fold_stmts
       (fun acc s -> match s.s with Ast.Sync -> acc + 1 | _ -> acc)
       0 f.fn.f_body)

let test_barrier_ids_and_counts () =
  let f = fuse k_with_barriers k_extern ~smem2:256 in
  let bars =
    Ast_util.fold_stmts
      (fun acc s ->
        match s.s with Ast.Bar_sync (i, n) -> (i, n) :: acc | _ -> acc)
      [] f.fn.f_body
  in
  let b1 = List.filter (fun (i, _) -> i = f.bar1) bars in
  let b2 = List.filter (fun (i, _) -> i = f.bar2) bars in
  Alcotest.(check int) "kernel-1 barriers" 2 (List.length b1);
  Alcotest.(check int) "kernel-2 barriers" 2 (List.length b2);
  List.iter (fun (_, n) -> Alcotest.(check int) "count = d1" f.d1 n) b1;
  List.iter (fun (_, n) -> Alcotest.(check int) "count = d2" f.d2 n) b2;
  Alcotest.(check bool) "distinct ids" true (f.bar1 <> f.bar2)

let test_guards_and_labels () =
  let f = fuse k_with_barriers k_plain in
  let labels = Ast_util.labels f.fn.f_body in
  Alcotest.(check int) "two labels" 2 (Ast_util.StrSet.cardinal labels);
  let gotos =
    Ast_util.fold_stmts
      (fun acc s -> match s.s with Ast.Goto l -> l :: acc | _ -> acc)
      [] f.fn.f_body
  in
  Alcotest.(check int) "two gotos" 2 (List.length gotos);
  List.iter
    (fun l ->
      Alcotest.(check bool) ("goto target " ^ l) true
        (Ast_util.StrSet.mem l labels))
    gotos

let test_lifted_body () =
  let f = fuse k_with_barriers k_plain in
  Alcotest.(check bool) "fused body is goto-safe (lifted)" true
    (Hfuse_frontend.Lift_decls.is_lifted f.fn.f_body)

let test_extern_shared_layout () =
  (* both kernels use extern shared: the fused kernel must unify them
     into one buffer with disjoint, aligned offsets *)
  let k1 = info ~block:(128, 1, 1) ~smem_dynamic:100 k_extern in
  let k2 = info ~block:(128, 1, 1) ~smem_dynamic:256 k_extern in
  let f = Hfuse.generate k1 k2 in
  Alcotest.(check int) "dynamic smem = aligned(100) + 256" (112 + 256)
    f.smem_dynamic;
  let externs =
    List.filter
      (fun (d : Ast.decl) -> d.d_storage = Ast.Shared_extern)
      (Ast_util.collect_decls f.fn.f_body)
  in
  Alcotest.(check int) "exactly one extern buffer" 1 (List.length externs);
  let printed = Hfuse.to_source f in
  Alcotest.(check bool) "offset 0 bound" true
    (Test_util.contains printed "(__hf_dyn_smem + 0)");
  Alcotest.(check bool) "offset 112 bound" true
    (Test_util.contains printed "(__hf_dyn_smem + 112)")

let test_static_shared_summed () =
  let f = fuse k_with_barriers k_with_barriers in
  let total = Kernel_info.smem_static_of_body f.fn.f_body in
  Alcotest.(check int) "two 512B buffers" 1024 total

let test_register_estimate () =
  let k1 = info ~regs:34 ~block:(256, 1, 1) k_with_barriers in
  let k2 = info ~regs:24 ~block:(128, 1, 1) k_plain in
  let f = Hfuse.generate k1 k2 in
  Alcotest.(check int) "max + prologue" 38 f.regs

let test_grid_max_and_guard () =
  let k1 = { (info ~block:(256, 1, 1) k_plain) with grid = 4 } in
  let k2 = { (info ~block:(128, 1, 1) k_plain) with grid = 8 } in
  let f = Hfuse.generate k1 k2 in
  Alcotest.(check int) "grid is max" 8 f.grid;
  let printed = Hfuse.to_source f in
  Alcotest.(check bool) "blockIdx guard emitted" true
    (Test_util.contains printed "blockIdx.x >= 4")

let test_2d_prologue () =
  let bn =
    {|
__global__ void bn(float* a, int n) {
  int t = threadIdx.x + threadIdx.y * blockDim.x;
  if (t < n) { a[t] = 0.0f; }
}
|}
  in
  let f =
    Hfuse.generate (info ~block:(56, 16, 1) bn) (info ~block:(128, 1, 1) k_plain)
  in
  Alcotest.(check int) "d1 = 896" 896 f.d1;
  let printed = Hfuse.to_source f in
  Alcotest.(check bool) "x unflattened" true
    (Test_util.contains printed "global_tid % bdim1_x");
  Alcotest.(check bool) "y unflattened" true
    (Test_util.contains printed "/ bdim1_x % bdim1_y")

let test_param_maps () =
  let f = fuse k_plain k_plain in
  (* same parameter names on both sides must be disambiguated *)
  let fused_names = List.map (fun (p : Ast.param) -> p.p_name) f.fn.f_params in
  Alcotest.(check int) "all distinct" 4
    (List.length (List.sort_uniq compare fused_names));
  List.iter
    (fun (orig, fused) ->
      Alcotest.(check bool) ("fused param for " ^ orig) true
        (List.mem fused fused_names))
    (f.param_map1 @ f.param_map2)

(* -- error cases ------------------------------------------------------ *)

let test_rejects_oversized_block () =
  match fuse ~d1:896 ~d2:256 k_plain k_plain with
  | exception Fuse_common.Fusion_error msg ->
      Alcotest.(check bool) "mentions limit" true
        (Test_util.contains msg "1024")
  | _ -> Alcotest.fail "expected fusion error"

let test_rejects_non_warp_multiple () =
  match fuse ~d1:100 ~d2:128 k_plain k_plain with
  | exception Fuse_common.Fusion_error msg ->
      Alcotest.(check bool) "mentions warp" true
        (Test_util.contains msg "warp")
  | _ -> Alcotest.fail "expected fusion error"

(* -- vertical fusion --------------------------------------------------- *)

let test_vfuse_structure () =
  let v =
    Vfuse.generate (info ~block:(256, 1, 1) k_with_barriers)
      (info ~block:(256, 1, 1) k_plain)
  in
  Typecheck.check_program v.prog;
  (* vertical fusion keeps full-block __syncthreads *)
  Alcotest.(check int) "barriers preserved" 2
    (Ast_util.fold_stmts
       (fun acc s -> match s.s with Ast.Sync -> acc + 1 | _ -> acc)
       0 v.fn.f_body);
  Alcotest.(check int) "no partial barriers" 0
    (List.length (Barrier.used_ids v.fn.f_body))

let test_vfuse_unequal_guard () =
  let v =
    Vfuse.generate (info ~block:(128, 1, 1) k_plain)
      (info ~block:(256, 1, 1) k_plain)
  in
  Alcotest.(check int) "block is max" 256 v.block;
  let printed = Vfuse.to_source v in
  Alcotest.(check bool) "thread guard" true
    (Test_util.contains printed "global_tid < 128")

let test_vfuse_rejects_guarded_barriers () =
  match
    Vfuse.generate
      (info ~block:(128, 1, 1) k_with_barriers)
      (info ~block:(256, 1, 1) k_plain)
  with
  | exception Fuse_common.Fusion_error msg ->
      Alcotest.(check bool) "mentions barriers" true
        (Test_util.contains msg "barriers")
  | _ -> Alcotest.fail "expected fusion error"

(* -- multi-way fusion -------------------------------------------------- *)

let test_multi_fusion () =
  let m =
    Multi.generate
      [
        info ~block:(128, 1, 1) k_with_barriers;
        info ~block:(128, 1, 1) k_plain;
        info ~block:(128, 1, 1) ~smem_dynamic:64 k_extern;
      ]
  in
  Alcotest.(check int) "total threads" 384 (Multi.threads_per_block m);
  Alcotest.(check (list int)) "offsets" [ 0; 128; 256 ] m.offsets;
  Typecheck.check_program m.fused.prog;
  (* three kernels' barriers need three distinct ids *)
  let ids = Barrier.used_ids m.fused.fn.f_body in
  Alcotest.(check int) "at least 2 distinct barrier ids" 2
    (min 2 (List.length ids))

let test_multi_needs_two () =
  match Multi.generate [ info k_plain ] with
  | exception Fuse_common.Fusion_error _ -> ()
  | _ -> Alcotest.fail "expected fusion error"

(* -- barrier module ----------------------------------------------------- *)

let test_barrier_replace_validation () =
  let stmts = Parser.parse_stmts_string "__syncthreads();" in
  (match Barrier.replace ~id:0 ~count:128 stmts with
  | exception Barrier.Invalid_barrier _ -> ()
  | _ -> Alcotest.fail "id 0 is reserved");
  (match Barrier.replace ~id:16 ~count:128 stmts with
  | exception Barrier.Invalid_barrier _ -> ()
  | _ -> Alcotest.fail "id 16 out of range");
  match Barrier.replace ~id:1 ~count:100 stmts with
  | exception Barrier.Invalid_barrier _ -> ()
  | _ -> Alcotest.fail "count must be warp multiple"

let test_barrier_fresh_id () =
  Alcotest.(check int) "first free" 1 (Barrier.fresh_id []);
  Alcotest.(check int) "skips used" 3 (Barrier.fresh_id [ 1; 2 ]);
  match Barrier.fresh_id [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ] with
  | exception Barrier.Invalid_barrier _ -> ()
  | _ -> Alcotest.fail "expected exhaustion error"

let suite =
  [
    Alcotest.test_case "basic structure" `Quick test_basic_structure;
    Alcotest.test_case "barrier ids and counts" `Quick
      test_barrier_ids_and_counts;
    Alcotest.test_case "guards and labels" `Quick test_guards_and_labels;
    Alcotest.test_case "lifted body" `Quick test_lifted_body;
    Alcotest.test_case "extern shared layout" `Quick test_extern_shared_layout;
    Alcotest.test_case "static shared summed" `Quick test_static_shared_summed;
    Alcotest.test_case "register estimate" `Quick test_register_estimate;
    Alcotest.test_case "grid max and guard" `Quick test_grid_max_and_guard;
    Alcotest.test_case "2-D prologue" `Quick test_2d_prologue;
    Alcotest.test_case "param maps" `Quick test_param_maps;
    Alcotest.test_case "rejects oversized block" `Quick
      test_rejects_oversized_block;
    Alcotest.test_case "rejects non-warp-multiple" `Quick
      test_rejects_non_warp_multiple;
    Alcotest.test_case "vfuse structure" `Quick test_vfuse_structure;
    Alcotest.test_case "vfuse unequal guard" `Quick test_vfuse_unequal_guard;
    Alcotest.test_case "vfuse rejects guarded barriers" `Quick
      test_vfuse_rejects_guarded_barriers;
    Alcotest.test_case "multi fusion" `Quick test_multi_fusion;
    Alcotest.test_case "multi needs two" `Quick test_multi_needs_two;
    Alcotest.test_case "barrier validation" `Quick
      test_barrier_replace_validation;
    Alcotest.test_case "barrier fresh id" `Quick test_barrier_fresh_id;
  ]

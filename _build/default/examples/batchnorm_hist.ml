(* The paper's motivating example (Section II-C): fusing PyTorch's
   batch_norm_collect_statistics (Fig. 2) with kernelHistogram1D
   (Fig. 3), searching the thread-space partition exactly as Fig. 6
   does, on both GPU models.

   The paper reports: on the 1080Ti the best fused kernel assigns 896
   threads to batchnorm and 128 to the histogram with a register bound
   of 32, and runs 53.4% faster than native; on the V100 the best
   partition is 768/256 and runs 15.8% faster.

     dune exec examples/batchnorm_hist.exe *)

open Kernel_corpus
open Hfuse_profiler

let () =
  let bn = Registry.find_exn "Batchnorm" and hist = Registry.find_exn "Hist" in
  List.iter
    (fun arch ->
      Printf.printf "=== %s ===\n%!" arch.Gpusim.Arch.name;
      (* representative workload: execution-time ratio close to 1 *)
      let sizes = Experiment.representative_sizes arch in
      let mem = Gpusim.Memory.create () in
      let c1 = Runner.configure mem bn ~size:(Experiment.size_of sizes bn) in
      let c2 = Runner.configure mem hist ~size:(Experiment.size_of sizes hist) in
      let t1 = (Runner.solo arch c1).Gpusim.Timing.time_ms in
      let t2 = (Runner.solo arch c2).Gpusim.Timing.time_ms in
      Printf.printf "solo: batchnorm %.4f ms, hist %.4f ms (ratio %.2f)\n%!"
        t1 t2 (t1 /. t2);
      let native = (Runner.native arch c1 c2).Gpusim.Timing.time_ms in
      Printf.printf "native (parallel streams): %.4f ms\n%!" native;
      (* the Fig. 6 search, profiling each candidate on the simulator *)
      let sr = Runner.search arch c1 c2 in
      List.iter
        (fun (cand : Hfuse_core.Search.candidate) ->
          Printf.printf "  candidate %4d/%-4d %-12s %.4f ms (%+.1f%%)\n%!"
            cand.fused.d1 cand.fused.d2
            (match cand.config.reg_bound with
            | None -> "no bound"
            | Some r -> Printf.sprintf "bound %d" r)
            cand.time
            (Experiment.speedup ~native ~fused:cand.time))
        sr.all;
      let best = sr.best in
      Printf.printf
        "best: %d threads for batchnorm, %d for hist, %s -> %+.1f%% vs native\n"
        best.fused.d1 best.fused.d2
        (match best.config.reg_bound with
        | None -> "no register bound"
        | Some r -> Printf.sprintf "register bound %d" r)
        (Experiment.speedup ~native ~fused:best.time);
      (* show the prologue of the generated kernel, as in Fig. 4 *)
      if arch.Gpusim.Arch.name = "1080Ti" then begin
        let src = Hfuse_core.Hfuse.to_source best.fused in
        let lines = String.split_on_char '\n' src in
        Printf.printf "\nfused kernel prologue (first 20 lines):\n";
        List.iteri
          (fun i l -> if i < 20 then Printf.printf "  %s\n" l)
          lines
      end;
      print_newline ())
    Gpusim.Arch.all;
  (* functional check at the paper's 1080Ti partition *)
  match
    Runner.validate_hfuse (Registry.find_exn "Batchnorm") ~size1:2
      (Registry.find_exn "Hist") ~size2:2 ~d1:896 ~d2:128
  with
  | Ok () -> print_endline "fused 896/128 kernel validated against host references"
  | Error e ->
      Printf.eprintf "validation failed: %s\n" e;
      exit 1

examples/multi_fusion.mli:

examples/occupancy_explorer.mli:

examples/batchnorm_hist.mli:

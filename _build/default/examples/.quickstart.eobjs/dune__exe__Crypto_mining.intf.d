examples/crypto_mining.mli:

examples/occupancy_explorer.ml: Experiment Gpusim Hfuse_core Hfuse_profiler Kernel_corpus List Option Printf Registry Runner Sys

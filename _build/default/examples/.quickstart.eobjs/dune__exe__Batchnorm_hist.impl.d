examples/batchnorm_hist.ml: Experiment Gpusim Hfuse_core Hfuse_profiler Kernel_corpus List Printf Registry Runner String

examples/multi_fusion.ml: Arch Gpusim Hfuse_core Hfuse_profiler Kernel_corpus Launch List Memory Printf Registry Spec String Timing Workload

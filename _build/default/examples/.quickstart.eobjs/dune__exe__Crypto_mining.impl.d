examples/crypto_mining.ml: Experiment Gpusim Hfuse_core Hfuse_profiler Kernel_corpus List Printf Registry Runner Workload

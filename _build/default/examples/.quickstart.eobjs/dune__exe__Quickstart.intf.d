examples/quickstart.mli:

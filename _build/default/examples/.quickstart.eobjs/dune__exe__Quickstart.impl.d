examples/quickstart.ml: Array Cuda Gpusim Hfuse_core Kernel_corpus Launch Memory Printf Value

(* Extension demo: fusing more than two kernels (the technique is not
   2-specific — PTX offers 15 partial-barrier ids and the thread space
   partitions into as many intervals as fit in 1024 threads).

   Fuses three deep-learning kernels into one block, validates all three
   outputs against their host references, and compares simulated time
   against the native three-launch sequence.

     dune exec examples/multi_fusion.exe *)

open Gpusim
open Kernel_corpus

let () =
  let arch = Arch.gtx1080ti in
  let mem = Memory.create () in
  let picks = [ ("Maxpool", 256); ("Upsample", 256); ("Hist", 256) ] in
  let parts =
    List.map
      (fun (name, d) ->
        let s = Registry.find_exn name in
        let inst = s.instantiate mem ~size:4 in
        let info = Hfuse_core.Kernel_info.with_block_dim (Spec.kernel_info s inst) d in
        (s, inst, info))
      picks
  in
  let infos = List.map (fun (_, _, i) -> i) parts in
  let m = Hfuse_core.Multi.generate infos in
  Printf.printf "fused %d kernels into %d threads/block; intervals at %s\n"
    (List.length infos)
    (Hfuse_core.Multi.threads_per_block m)
    (String.concat ", " (List.map string_of_int m.offsets));
  Printf.printf "barrier ids in use: %s\n\n"
    (String.concat ", "
       (List.map string_of_int
          (Hfuse_core.Barrier.used_ids m.fused.fn.f_body)));

  (* correctness: one launch must reproduce all three kernels' outputs *)
  let args = List.concat_map (fun (_, i, _) -> i.Workload.args) parts in
  ignore
    (Launch.launch_info mem (Hfuse_core.Hfuse.info m.fused) ~args
       ~trace_blocks:2);
  List.iter
    (fun ((s : Spec.t), inst, _) ->
      match inst.Workload.check mem with
      | Ok () -> Printf.printf "%-9s output matches host reference\n" s.name
      | Error e ->
          Printf.eprintf "%s FAILED: %s\n" s.name e;
          exit 1)
    parts;

  (* timing: three native launches vs the single fused launch *)
  let mem2 = Memory.create () in
  let confs =
    List.map
      (fun (name, _) ->
        let s = Registry.find_exn name in
        Hfuse_profiler.Runner.configure mem2 s ~size:4)
      picks
  in
  let native =
    Timing.run arch
      (List.mapi
         (fun i c -> Hfuse_profiler.Runner.spec_of c ~stream:i ())
         confs)
  in
  let finfo = Hfuse_core.Hfuse.info m.fused in
  let r =
    Launch.launch_info ~exec_blocks:1 mem finfo ~args ~trace_blocks:1
  in
  let fused =
    Timing.run arch
      [
        {
          Timing.label = "fused3";
          block_traces = r.block_traces;
          grid = finfo.grid;
          threads_per_block = Hfuse_core.Multi.threads_per_block m;
          regs = m.fused.regs;
          spill = 0;
          smem = Hfuse_profiler.Runner.static_smem finfo + finfo.smem_dynamic;
          stream = 0;
        };
      ]
  in
  Printf.printf "\nnative 3 launches: %.4f ms   fused: %.4f ms (%+.1f%%)\n"
    native.Timing.time_ms fused.Timing.time_ms
    (100.0 *. ((native.Timing.time_ms /. fused.Timing.time_ms) -. 1.0))

(* Crypto-mining scenario (paper Section IV-B): a rig that mines two
   coins at once.  Fusing the memory-hard Ethash with a compute-hard
   miner (Blake256 / SHA256 / Blake2B) lets the warp scheduler hide
   Ethash's DAG-lookup latency behind hash arithmetic — the paper's
   strongest use case.  Fusing two compute-hard miners, by contrast,
   brings nothing and costs occupancy.

     dune exec examples/crypto_mining.exe *)

open Kernel_corpus
open Hfuse_profiler

let () =
  let arch = Gpusim.Arch.gtx1080ti in
  Printf.printf "dual-mining on the simulated %s\n\n%!" arch.Gpusim.Arch.name;
  Printf.printf "%-22s %10s %10s %9s %10s\n" "pair" "native ms" "fused ms"
    "speedup" "hashes/ms";
  List.iter
    (fun (n1, n2) ->
      let s1 = Registry.find_exn n1 and s2 = Registry.find_exn n2 in
      let mem = Gpusim.Memory.create () in
      (* equal iteration counts: the miner hashes until the DAG walk is
         done anyway *)
      let c1 = Runner.configure mem s1 ~size:2 in
      let c2 = Runner.configure mem s2 ~size:2 in
      let native = (Runner.native arch c1 c2).Gpusim.Timing.time_ms in
      let sr = Runner.search arch c1 c2 in
      let best = sr.Hfuse_core.Search.best in
      let fused_ms = best.Hfuse_core.Search.time in
      (* total hashes of both kernels per millisecond of fused execution *)
      let hashes =
        float_of_int (2 * Workload.default_grid * 2 * (128 + 256))
      in
      Printf.printf "%-22s %10.4f %10.4f %+8.1f%% %10.0f\n%!"
        (n1 ^ "+" ^ n2) native fused_ms
        (Experiment.speedup ~native ~fused:fused_ms)
        (hashes /. fused_ms))
    [
      ("Ethash", "Blake256"); ("Ethash", "SHA256"); ("Ethash", "Blake2B");
      ("Blake256", "Blake2B"); ("Blake256", "SHA256"); ("Blake2B", "SHA256");
    ];
  print_newline ();
  print_endline
    "Ethash pairs win: Ethash stalls on uncoalesced DAG reads while the\n\
     compute miner keeps the issue slots busy.  Compute+compute pairs\n\
     lose: they contend for the same pipelines and halve occupancy —\n\
     matching the paper's Fig. 7 crypto rows.";
  (* correctness spot check *)
  match
    Runner.validate_hfuse (Registry.find_exn "Ethash") ~size1:1
      (Registry.find_exn "Blake256") ~size2:1 ~d1:128 ~d2:256
  with
  | Ok () -> print_endline "fused Ethash+Blake256 validated against host references"
  | Error e ->
      Printf.eprintf "validation failed: %s\n" e;
      exit 1

(* Quickstart: fuse two CUDA kernels from source, print the fused CUDA,
   and check on the simulator that the fused kernel computes exactly
   what the two originals compute.

     dune exec examples/quickstart.exe *)

open Gpusim

(* Two small kernels, as a user would write them.  [saxpy] is a plain
   element-wise kernel; [block_sum] reduces each block's slice through
   shared memory, so it carries a __syncthreads() barrier that fusion
   must rewrite into a partial bar.sync. *)

let saxpy_src =
  {|
__global__ void saxpy(float* y, float* x, float a, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) { y[i] = a * x[i] + y[i]; }
}
|}

let block_sum_src =
  {|
__global__ void block_sum(float* out, float* v, int n) {
  __shared__ float buf[128];
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  buf[threadIdx.x] = (i < n ? v[i] : 0.0f);
  __syncthreads();
  for (int s = 64; s > 0; s = s / 2) {
    if (threadIdx.x < (unsigned int)s) {
      buf[threadIdx.x] = buf[threadIdx.x] + buf[threadIdx.x + s];
    }
    __syncthreads();
  }
  if (threadIdx.x == 0) { out[blockIdx.x] = buf[0]; }
}
|}

let () =
  (* 1. Parse both kernels and describe their launch configurations. *)
  let prog1, k1 = Cuda.Parser.parse_kernel saxpy_src in
  let prog2, k2 = Cuda.Parser.parse_kernel block_sum_src in
  let grid = 8 in
  let info1 : Hfuse_core.Kernel_info.t =
    { fn = k1; prog = prog1; block = (256, 1, 1); grid; smem_dynamic = 0;
      regs = 16; tunability = Tunable { multiple_of = 32 } }
  in
  let info2 : Hfuse_core.Kernel_info.t =
    { fn = k2; prog = prog2; block = (128, 1, 1); grid; smem_dynamic = 0;
      regs = 18; tunability = Fixed (* the reduction assumes 128 threads *) }
  in

  (* 2. Horizontally fuse them (Fig. 5 of the paper). *)
  let fused = Hfuse_core.Hfuse.generate info1 info2 in
  print_endline "=== fused CUDA source ===";
  print_endline (Hfuse_core.Hfuse.to_source fused);

  (* 3. Run natively and fused on the simulator; compare results. *)
  let n1 = grid * 256 and n2 = grid * 128 in
  let setup () =
    let mem = Memory.create () in
    let y = Memory.alloc mem ~name:"y" ~elem:Cuda.Ctype.Float ~count:n1 in
    let x = Memory.alloc mem ~name:"x" ~elem:Cuda.Ctype.Float ~count:n1 in
    let out = Memory.alloc mem ~name:"out" ~elem:Cuda.Ctype.Float ~count:grid in
    let v = Memory.alloc mem ~name:"v" ~elem:Cuda.Ctype.Float ~count:n2 in
    Memory.fill_floats mem y (Array.init n1 (fun i -> float_of_int i));
    Memory.fill_floats mem x (Array.init n1 (fun i -> float_of_int (i mod 7)));
    Memory.fill_floats mem v (Array.init n2 (fun i -> float_of_int (i mod 5)));
    (mem, y, x, out, v)
  in
  let args1 (y, x) = [ Value.Ptr y; Value.Ptr x; Value.Float 2.0; Kernel_corpus.Workload.iv n1 ] in
  let args2 (out, v) = [ Value.Ptr out; Value.Ptr v; Kernel_corpus.Workload.iv n2 ] in

  (* native: two separate launches *)
  let mem_a, y_a, x_a, out_a, v_a = setup () in
  ignore (Launch.launch_info mem_a info1 ~args:(args1 (y_a, x_a)) ~trace_blocks:0);
  ignore (Launch.launch_info mem_a info2 ~args:(args2 (out_a, v_a)) ~trace_blocks:0);

  (* fused: one launch with both kernels' arguments concatenated *)
  let mem_b, y_b, x_b, out_b, v_b = setup () in
  ignore
    (Launch.launch_info mem_b (Hfuse_core.Hfuse.info fused)
       ~args:(args1 (y_b, x_b) @ args2 (out_b, v_b))
       ~trace_blocks:0);

  let equal =
    Memory.read_floats mem_a y_a n1 = Memory.read_floats mem_b y_b n1
    && Memory.read_floats mem_a out_a grid = Memory.read_floats mem_b out_b grid
  in
  Printf.printf "\nfused kernel matches native results: %b\n" equal;
  Printf.printf "partition: %d + %d threads, barriers on ids %d and %d\n"
    fused.d1 fused.d2 fused.bar1 fused.bar2;
  if not equal then exit 1

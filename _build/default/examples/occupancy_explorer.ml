(* Occupancy explorer: the thread-level vs block-level parallelism
   trade-off of Section IV-C, made tangible.

   For a chosen pair this walks every thread-space partition, showing
   for each: the fused kernel's theoretical occupancy, the Fig. 6
   register bound r0, and what the bound buys (or costs) in simulated
   time.

     dune exec examples/occupancy_explorer.exe           # Batchnorm+Hist
     dune exec examples/occupancy_explorer.exe Hist Upsample *)

open Kernel_corpus
open Hfuse_profiler

let () =
  let name1, name2 =
    match Sys.argv with
    | [| _; a; b |] -> (a, b)
    | _ -> ("Batchnorm", "Hist")
  in
  let s1 = Registry.find_exn name1 and s2 = Registry.find_exn name2 in
  let arch = Gpusim.Arch.gtx1080ti in
  let lim = Gpusim.Arch.sm_limits arch in
  let sizes = Experiment.representative_sizes arch in
  let mem = Gpusim.Memory.create () in
  let c1 = Runner.configure mem s1 ~size:(Experiment.size_of sizes s1) in
  let c2 = Runner.configure mem s2 ~size:(Experiment.size_of sizes s2) in
  let native = (Runner.native arch c1 c2).Gpusim.Timing.time_ms in
  Printf.printf "%s + %s on %s (native: %.4f ms)\n\n" name1 name2
    arch.Gpusim.Arch.name native;
  Printf.printf "%-10s %7s %6s %6s | %12s | %12s %8s\n" "partition" "regs"
    "blk/SM" "occ%" "t none (ms)" "t r0 (ms)" "r0";
  let d0 = Runner.d0_for c1 c2 in
  List.iter
    (fun { Hfuse_core.Partition.d1; d2 } ->
      let k1 = Hfuse_core.Kernel_info.with_block_dim c1.info d1 in
      let k2 = Hfuse_core.Kernel_info.with_block_dim c2.info d2 in
      let fused = Hfuse_core.Hfuse.generate k1 k2 in
      let smem =
        Hfuse_core.Kernel_info.smem_total (Hfuse_core.Hfuse.info fused)
      in
      let blocks =
        Hfuse_core.Occupancy.blocks_per_sm lim ~regs:fused.regs
          ~threads:(d1 + d2) ~smem
      in
      let occ =
        100.0
        *. Hfuse_core.Occupancy.theoretical_occupancy lim ~regs:fused.regs
             ~threads:(d1 + d2) ~smem
      in
      let t_none =
        (Runner.hfuse_report arch c1 c2 fused ~reg_bound:None)
          .Gpusim.Timing.time_ms
      in
      let r0 =
        Hfuse_core.Occupancy.register_bound lim ~d1 ~regs1:c1.spec.regs ~d2
          ~regs2:c2.spec.regs ~fused_smem:smem
      in
      let t_r0 =
        Option.map
          (fun r ->
            (Runner.hfuse_report arch c1 c2 fused ~reg_bound:(Some r))
              .Gpusim.Timing.time_ms)
          r0
      in
      Printf.printf "%4d/%-5d %7d %6d %6.1f | %12.4f | %12s %8s\n" d1 d2
        fused.regs blocks occ t_none
        (match t_r0 with Some t -> Printf.sprintf "%.4f" t | None -> "-")
        (match r0 with Some r -> string_of_int r | None -> "-"))
    (Hfuse_core.Partition.enumerate c1.info c2.info ~d0);
  print_newline ();
  Printf.printf
    "Occupancy falls as one kernel's share grows past the register\n\
     breakpoint; the Fig. 6 bound r0 restores resident blocks at the\n\
     price of spilling.  Whether that trade pays is exactly what the\n\
     profiling search decides.\n"

(* hfuse — command-line front end.

     hfuse fuse a.cu b.cu --d1 896 --d2 128     horizontally fuse two files
     hfuse vfuse a.cu b.cu --block 512          vertically fuse two files
     hfuse check a.cu [b.cu]                    fusion-safety verifier report
     hfuse info a.cu                            parse/typecheck + resources
     hfuse corpus                               list benchmark kernels/pairs
     hfuse simulate --kernel Batchnorm          run a corpus kernel
     hfuse search --k1 Batchnorm --k2 Hist      Fig. 6 search on a pair

   Fusing arbitrary .cu files is purely source-to-source (no profiling:
   profiling needs launchable workloads, which only the corpus kernels
   carry). *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let or_die = function
  | Ok x -> x
  | Error msg ->
      Printf.eprintf "hfuse: %s\n" msg;
      exit 1

let parse_kernel_file path =
  match Cuda.Parser.parse_kernel (read_file path) with
  | pk -> Ok pk
  | exception Cuda.Parser.Error (msg, loc) ->
      Error (Fmt.str "%s:%a: %s" path Cuda.Loc.pp loc msg)
  | exception Cuda.Lexer.Error (msg, loc) ->
      Error (Fmt.str "%s:%a: %s" path Cuda.Loc.pp loc msg)
  | exception Failure msg -> Error (path ^ ": " ^ msg)

let info_of_file path ~block ~grid ~smem_dynamic ~regs : Hfuse_core.Kernel_info.t =
  let prog, fn = or_die (parse_kernel_file path) in
  (match Cuda.Typecheck.check_program prog with
  | () -> ()
  | exception Cuda.Typecheck.Error (msg, loc) ->
      Printf.eprintf "hfuse: %s:%s: %s\n" path (Cuda.Loc.to_string loc) msg;
      exit 1);
  let regs =
    match regs with Some r -> r | None -> Gpusim.Resource_model.estimate_fn fn
  in
  { fn; prog; block = (block, 1, 1); grid; smem_dynamic; regs;
    tunability = Hfuse_core.Kernel_info.Fixed }

(* -- daemon routing ----------------------------------------------------- *)

module Ops = Hfuse_serve.Ops
module Protocol = Hfuse_serve.Protocol

let kernel_src_of_file path ~block ~smem ~regs : Ops.kernel_src =
  { Ops.ks_path = path; ks_source = read_file path; ks_block = block;
    ks_smem = smem; ks_regs = regs }

(* print an outcome the way the in-line verb bodies used to: payload to
   stdout, diagnostics to stderr, then the verb's exit code *)
let finish (o : Ops.outcome) =
  print_string o.Ops.output;
  prerr_string o.Ops.log;
  if o.Ops.exit_code <> 0 then exit o.Ops.exit_code

(* When HFUSE_SERVER names a daemon socket, route the verb there with
   the CLI's effective settings (the installed fault plan travels as a
   spec string); otherwise run in process.  Both paths execute the same
   [Ops] body, so the bytes on stdout are identical either way. *)
let route ?settings (params : Ops.request_params) : Ops.outcome =
  match Hfuse_serve.Client.default_socket () with
  | None -> Ops.run ?settings params
  | Some socket -> (
      let settings =
        match settings with
        | Some s -> s
        | None -> Hfuse_profiler.Settings.current ()
      in
      let req =
        { Protocol.id = "cli"; priority = 0;
          settings = Protocol.spec_of_settings settings;
          verb = Protocol.Work params }
      in
      match Hfuse_serve.Client.call ~socket req with
      | Error msg ->
          Printf.eprintf "hfuse: %s\n" msg;
          exit 3
      | Ok (Protocol.Failure f) ->
          Printf.eprintf "hfuse: server: %s (%s)\n" f.message f.code;
          exit 1
      | Ok (Protocol.Result r) ->
          { Ops.output = r.output; log = r.log; exit_code = r.exit_code;
            telemetry = r.telemetry })

(* -- common args ------------------------------------------------------- *)

let arch_arg =
  let arch_conv =
    Arg.conv'
      ( (fun s ->
          match Gpusim.Arch.by_name s with
          | Some a -> Ok a
          | None -> Error ("unknown architecture " ^ s)),
        fun ppf a -> Fmt.string ppf a.Gpusim.Arch.name )
  in
  Arg.(
    value
    & opt arch_conv Gpusim.Arch.gtx1080ti
    & info [ "arch" ] ~docv:"ARCH" ~doc:"GPU model: 1080Ti or V100.")

let grid_arg =
  Arg.(value & opt int 8 & info [ "grid" ] ~docv:"N" ~doc:"Grid dimension.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Profile search candidates over $(docv) parallel domains \
           (missing traces are recorded concurrently too, deduped per \
           distinct key; results are identical for any N).")

(* --trace-blocks N widens the per-launch traced-block count (default 1,
   or the HFUSE_TRACE_BLOCKS environment) *)
let trace_blocks_arg =
  let set = function
    | None -> ()
    | Some n when n >= 1 -> Hfuse_profiler.Runner.set_trace_blocks n
    | Some n ->
        Printf.eprintf "hfuse: --trace-blocks expects N >= 1, got %d\n" n;
        exit 2
  in
  Term.(
    const set
    $ Arg.(
        value
        & opt (some int) None
        & info [ "trace-blocks" ] ~docv:"N"
            ~doc:
              "Record $(docv) blocks' traces per profiling launch \
               (default 1, the paper's one-representative-block \
               methodology, or $(b,HFUSE_TRACE_BLOCKS))."))

(* --cache / --no-cache override the HFUSE_CACHE / HFUSE_CACHE_DIR
   environment; with neither flag nor environment, the cache is off.
   Resolves to a cache *root*, not a handle: the root goes into the
   per-request settings record (and over the wire when routed), and
   the verb body opens its own handle from it. *)
let cache_dir_arg =
  let use =
    Arg.(
      value & flag
      & info [ "cache" ]
          ~doc:
            "Enable the persistent profiling cache (default directory \
             $(b,_hfuse_cache), or $(b,HFUSE_CACHE_DIR)).")
  in
  let no =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Disable the persistent profiling cache, overriding the \
                environment.")
  in
  let resolve use no : string option =
    if no then None
    else if use then
      Some
        (Option.value
           (Sys.getenv_opt "HFUSE_CACHE_DIR")
           ~default:Hfuse_profiler.Profile_cache.default_dir)
    else Hfuse_profiler.Profile_cache.env_dir ()
  in
  Term.(const resolve $ use $ no)

(* --fault SPEC arms the deterministic chaos harness (overrides the
   HFUSE_FAULT environment); malformed specs abort before any work *)
let fault_arg =
  let set = function
    | None -> ()
    | Some spec -> (
        match Hfuse_fault.Fault.configure spec with
        | Ok () -> ()
        | Error msg ->
            Printf.eprintf "hfuse: --fault: %s\n" msg;
            exit 2)
  in
  Term.(
    const set
    $ Arg.(
        value
        & opt (some string) None
        & info [ "fault" ] ~docv:"SPEC"
            ~doc:
              "Inject deterministic faults, e.g. \
               $(b,worker_crash:0.05,cache_corrupt:0.1,sim_hang:0.02)[,seed:N]. \
               Faults are recovered transparently; results are unchanged. \
               Overrides $(b,HFUSE_FAULT)."))

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Journal every profiled result to \
           $(b,_hfuse_cache/journal/<run_id>.jnl) and replay a previous \
           interrupted run's journal, recomputing only the remainder \
           (bit-identical to an uninterrupted run).")

(* --prune / --top-k K: phase-1.5 analytical pruning of the Fig. 6
   search.  --top-k implies --prune; --prune alone uses the default K. *)
let default_top_k = Hfuse_costmodel.default_top_k

let prune_arg =
  let prune =
    Arg.(
      value & flag
      & info [ "prune" ]
          ~doc:
            (Printf.sprintf
               "Rank candidates with the analytical cost model and \
                profile only the top K (default K = %d; see \
                $(b,--top-k)).  Without pruning the search is \
                exhaustive and the model only reports rank agreement \
                and regret."
               default_top_k))
  in
  let top_k =
    Arg.(
      value
      & opt (some int) None
      & info [ "top-k" ] ~docv:"K"
          ~doc:
            "Profile only the $(docv) best-scored candidates (implies \
             $(b,--prune)).  A K at or above the candidate count is \
             bit-identical to the exhaustive search.")
  in
  let resolve prune top_k =
    match top_k with
    | Some k when k < 1 ->
        Printf.eprintf "hfuse: --top-k expects K >= 1, got %d\n" k;
        exit 2
    | Some k -> Some k
    | None -> if prune then Some default_top_k else None
  in
  Term.(const resolve $ prune $ top_k)

(* The pruning configuration changes which candidates are profiled, so
   it is part of a resumable run's identity. *)
let prune_id_part = function
  | None -> "exhaustive"
  | Some k -> "top" ^ string_of_int k

(* -- fuse --------------------------------------------------------------- *)

let fuse_cmd =
  let run f1 f2 d1 d2 smem1 smem2 regs1 regs2 grid =
    finish
      (route
         (Ops.Fuse
            {
              f_k1 = kernel_src_of_file f1 ~block:d1 ~smem:smem1 ~regs:regs1;
              f_k2 = kernel_src_of_file f2 ~block:d2 ~smem:smem2 ~regs:regs2;
              f_grid = grid;
            }))
  in
  let f1 = Arg.(required & pos 0 (some file) None & info [] ~docv:"K1.cu") in
  let f2 = Arg.(required & pos 1 (some file) None & info [] ~docv:"K2.cu") in
  let d1 = Arg.(value & opt int 256 & info [ "d1" ] ~doc:"Threads for kernel 1.") in
  let d2 = Arg.(value & opt int 256 & info [ "d2" ] ~doc:"Threads for kernel 2.") in
  let smem1 = Arg.(value & opt int 0 & info [ "smem1" ] ~doc:"Dynamic shared bytes of kernel 1.") in
  let smem2 = Arg.(value & opt int 0 & info [ "smem2" ] ~doc:"Dynamic shared bytes of kernel 2.") in
  let regs1 = Arg.(value & opt (some int) None & info [ "regs1" ] ~doc:"Registers/thread of kernel 1.") in
  let regs2 = Arg.(value & opt (some int) None & info [ "regs2" ] ~doc:"Registers/thread of kernel 2.") in
  Cmd.v
    (Cmd.info "fuse" ~doc:"Horizontally fuse two CUDA kernels (Fig. 5).")
    Term.(const run $ f1 $ f2 $ d1 $ d2 $ smem1 $ smem2 $ regs1 $ regs2 $ grid_arg)

let vfuse_cmd =
  let run f1 f2 block grid =
    let k1 = info_of_file f1 ~block ~grid ~smem_dynamic:0 ~regs:None in
    let k2 = info_of_file f2 ~block ~grid ~smem_dynamic:0 ~regs:None in
    match Hfuse_core.Vfuse.generate k1 k2 with
    | v -> print_endline (Hfuse_core.Vfuse.to_source v)
    | exception Hfuse_core.Fuse_common.Fusion_error msg ->
        Printf.eprintf "hfuse: %s\n" msg;
        exit 1
  in
  let f1 = Arg.(required & pos 0 (some file) None & info [] ~docv:"K1.cu") in
  let f2 = Arg.(required & pos 1 (some file) None & info [] ~docv:"K2.cu") in
  let block =
    Arg.(value & opt int 256 & info [ "block" ] ~doc:"Block dimension.")
  in
  Cmd.v
    (Cmd.info "vfuse" ~doc:"Vertically fuse two CUDA kernels (baseline).")
    Term.(const run $ f1 $ f2 $ block $ grid_arg)

(* -- check -------------------------------------------------------------- *)

let check_cmd =
  let run arch f1 f2 d1 d2 smem1 smem2 regs1 regs2 grid repair =
    finish
      (route
         (Ops.Check
            {
              c_arch = arch;
              c_k1 = kernel_src_of_file f1 ~block:d1 ~smem:smem1 ~regs:regs1;
              c_k2 =
                Option.map
                  (fun f2 ->
                    kernel_src_of_file f2 ~block:d2 ~smem:smem2 ~regs:regs2)
                  f2;
              c_grid = grid;
              c_repair = repair;
            }))
  in
  let repair =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:
            "On rejection, run the diagnostic-driven repair engine and \
             report the transformed kernel's verdict.  Static preview \
             only: $(b,check) has no workload, so the differential \
             soundness oracle that gates admission in $(b,search) and \
             the fleet does not run here.")
  in
  let f1 = Arg.(required & pos 0 (some file) None & info [] ~docv:"K1.cu") in
  let f2 = Arg.(value & pos 1 (some file) None & info [] ~docv:"K2.cu") in
  let d1 =
    Arg.(value & opt int 256 & info [ "d1" ] ~doc:"Threads for kernel 1.")
  in
  let d2 =
    Arg.(value & opt int 256 & info [ "d2" ] ~doc:"Threads for kernel 2.")
  in
  let smem1 =
    Arg.(
      value & opt int 0
      & info [ "smem1" ] ~doc:"Dynamic shared bytes of kernel 1.")
  in
  let smem2 =
    Arg.(
      value & opt int 0
      & info [ "smem2" ] ~doc:"Dynamic shared bytes of kernel 2.")
  in
  let regs1 =
    Arg.(
      value
      & opt (some int) None
      & info [ "regs1" ] ~doc:"Registers/thread of kernel 1.")
  in
  let regs2 =
    Arg.(
      value
      & opt (some int) None
      & info [ "regs2" ] ~doc:"Registers/thread of kernel 2.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Static fusion-safety report: barrier ids/counts/divergence, \
          shared-memory races, resource budget.  With one file, checks \
          the kernel as-is; with two, checks their horizontal fusion.  \
          Exits 1 when any error-severity diagnostic is found.")
    Term.(
      const run $ arch_arg $ f1 $ f2 $ d1 $ d2 $ smem1 $ smem2 $ regs1
      $ regs2 $ grid_arg $ repair)

(* -- info --------------------------------------------------------------- *)

let info_cmd =
  let run path =
    let prog, fn = or_die (parse_kernel_file path) in
    (match Cuda.Typecheck.check_program_result prog with
    | Ok () -> Printf.printf "typecheck: ok\n"
    | Error (msg, loc) ->
        Printf.printf "typecheck: FAILED at %s: %s\n"
          (Cuda.Loc.to_string loc) msg);
    let body = (Hfuse_frontend.Inline.normalize_kernel prog fn).f_body in
    Printf.printf "kernel: %s\n" fn.f_name;
    Printf.printf "parameters: %d\n" (List.length fn.f_params);
    Printf.printf "barriers: %d\n" (Cuda.Ast_util.barrier_count body);
    Printf.printf "static shared memory: %d bytes\n"
      (Hfuse_core.Kernel_info.smem_static_of_body body);
    Printf.printf "estimated registers/thread (AST heuristic): %d\n"
      (Gpusim.Resource_model.estimate_fn fn);
    (match Hfuse_ptx.Lower.lower_fn { fn with f_body = body } with
    | l ->
        Printf.printf "lowered PTX instructions: %d\n"
          (Hfuse_ptx.Liveness.static_instructions l);
        Printf.printf "register pressure (PTX liveness): %d\n"
          (Hfuse_ptx.Liveness.register_pressure l)
    | exception Hfuse_ptx.Lower.Unsupported msg ->
        Printf.printf "PTX lowering unavailable: %s\n" msg)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"K.cu") in
  Cmd.v
    (Cmd.info "info" ~doc:"Parse, typecheck and summarise one kernel.")
    Term.(const run $ path)

(* -- corpus ------------------------------------------------------------- *)

let corpus_cmd =
  let run fleet () =
    let specs =
      if fleet then begin
        Hfuse_fleet.Corpus.install ();
        Hfuse_fleet.Corpus.all_specs ()
      end
      else Kernel_corpus.Registry.all
    in
    Printf.printf "%-11s %-13s %9s %6s %8s\n" "kernel" "kind" "block" "regs"
      "tunable";
    List.iter
      (fun (s : Kernel_corpus.Spec.t) ->
        let x, y, z = s.native_block in
        Printf.printf "%-11s %-13s %3dx%dx%d %6d %8s\n" s.name
          (Fmt.str "%a" Kernel_corpus.Spec.pp_kind s.kind)
          x y z s.regs
          (match s.tunability with
          | Hfuse_core.Kernel_info.Tunable _ -> "yes"
          | Hfuse_core.Kernel_info.Fixed -> "no"))
      specs;
    if fleet then begin
      let n = List.length specs in
      Printf.printf "\n%d kernels, %d fleet pairs, corpus digest %s\n" n
        (n * (n - 1) / 2)
        (Hfuse_fleet.Corpus.digest ())
    end
    else
      Printf.printf "\n%d benchmark pairs\n"
        (List.length Kernel_corpus.Registry.all_pairs)
  in
  let fleet =
    Arg.(
      value & flag
      & info [ "fleet" ]
          ~doc:
            "List the whole fleet corpus (extended registry + curated \
             generated kernels) and its digest instead of the paper's nine.")
  in
  Cmd.v
    (Cmd.info "corpus" ~doc:"List the paper's benchmark kernels.")
    Term.(const run $ fleet $ const ())

(* -- simulate ----------------------------------------------------------- *)

let kernel_arg flag_name =
  let kernel_conv =
    Arg.conv'
      ( (fun s ->
          match Kernel_corpus.Registry.find s with
          | Some k -> Ok k
          | None -> Error ("unknown corpus kernel " ^ s)),
        fun ppf (s : Kernel_corpus.Spec.t) -> Fmt.string ppf s.name )
  in
  Arg.(
    required
    & opt (some kernel_conv) None
    & info [ flag_name ] ~docv:"KERNEL" ~doc:"Corpus kernel name.")

let size_arg flag_name =
  Arg.(
    value
    & opt (some int) None
    & info [ flag_name ] ~docv:"N" ~doc:"Workload size (default: representative).")

let simulate_cmd =
  let run arch (spec : Kernel_corpus.Spec.t) size validate engine_stats () =
    finish
      (route
         (Ops.Simulate
            {
              m_arch = arch;
              m_kernel = spec;
              m_size = size;
              m_validate = validate;
              m_engine_stats = engine_stats;
            }))
  in
  let validate =
    Arg.(value & flag & info [ "validate" ] ~doc:"Check against host reference.")
  in
  let engine_stats =
    Arg.(
      value & flag
      & info [ "engine-stats" ]
          ~doc:
            "Print the replay engine's self-profiling counters (cycles \
             and SM-steps skipped by event-driven stepping, scan-skip \
             hits, warp-record reuse).")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run a corpus kernel on the simulator and print its metrics.")
    Term.(
      const run $ arch_arg $ kernel_arg "kernel" $ size_arg "size" $ validate
      $ engine_stats $ trace_blocks_arg)

(* -- search ------------------------------------------------------------- *)

let search_cmd =
  let run arch (s1 : Kernel_corpus.Spec.t) (s2 : Kernel_corpus.Spec.t) size1
      size2 emit jobs cache_dir resume top_k repair () () =
    (* the per-request settings record: one env/flag capture up front,
       threaded explicitly (and shipped to the daemon when routed) *)
    let settings = Hfuse_profiler.Settings.resolve ~cache_dir () in
    let checkpoint =
      if not resume then Hfuse_profiler.Checkpoint.disabled
      else
        (* the journal's identity needs the resolved sizes *)
        let sizes = Hfuse_profiler.Experiment.representative_sizes arch in
        let size_of (s : Kernel_corpus.Spec.t) o =
          Option.value o ~default:(Hfuse_profiler.Experiment.size_of sizes s)
        in
        let id =
          Hfuse_profiler.Checkpoint.run_id
            ~sim_fuel:settings.Hfuse_profiler.Settings.sim_fuel
            ~trace_blocks:settings.Hfuse_profiler.Settings.trace_blocks
            ~parts:
              ([
                 "search"; arch.Gpusim.Arch.name; s1.name;
                 string_of_int (size_of s1 size1); s2.name;
                 string_of_int (size_of s2 size2);
                 prune_id_part top_k;
               ]
               (* only when enabled: repair adds candidates, so it is
                  part of a resumable run's identity, but repair-off
                  ids must keep matching pre-repair journals *)
              @ if repair then [ "repair" ] else [])
            ()
        in
        let ck = Hfuse_profiler.Checkpoint.open_ ~run_id:id () in
        if Hfuse_profiler.Checkpoint.loaded ck > 0 then
          Printf.eprintf "resume: replaying %d journaled result(s) from %s\n%!"
            (Hfuse_profiler.Checkpoint.loaded ck)
            (Hfuse_profiler.Checkpoint.path ck);
        ck
    in
    let params =
      {
        Ops.s_arch = arch;
        s_k1 = s1;
        s_k2 = s2;
        s_size1 = size1;
        s_size2 = size2;
        s_emit = emit;
        s_jobs = jobs;
        s_top_k = top_k;
        s_repair = repair;
      }
    in
    let outcome =
      (* --resume journals to local disk, so it always runs in process *)
      try
        if resume then Ops.search ~settings ~checkpoint params
        else route ~settings (Ops.Search params)
      with Sys.Break ->
        Hfuse_profiler.Checkpoint.close checkpoint;
        Printf.eprintf "\nhfuse: interrupted%s\n"
          (if resume then
             "; journaled results saved — rerun with --resume to continue"
           else "; rerun with --resume to make interrupted runs resumable");
        exit 130
    in
    Hfuse_profiler.Checkpoint.close checkpoint;
    finish outcome
  in
  let emit =
    Arg.(value & flag & info [ "emit" ] ~doc:"Print the best fused source.")
  in
  let repair =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:
            "Hand verifier-rejected partitions to the diagnostic-driven \
             repair engine.  A repaired candidate enters profiling only \
             after the differential soundness oracle passes (unfused \
             vs. fused, global memory byte-for-byte); refuted repairs \
             fail closed back to rejection.")
  in
  Cmd.v
    (Cmd.info "search"
       ~doc:
         "Run the Fig. 6 profiling search for a corpus pair on the \
          simulator.")
    Term.(
      const run $ arch_arg $ kernel_arg "k1" $ kernel_arg "k2"
      $ size_arg "size1" $ size_arg "size2" $ emit $ jobs_arg $ cache_dir_arg
      $ resume_arg $ prune_arg $ repair $ fault_arg $ trace_blocks_arg)

(* -- model -------------------------------------------------------------- *)

(* Dump the analytical cost model's view of a corpus pair: the static
   per-kernel features and every candidate's score, without running the
   simulator.  The calibration workflow compares this against a
   simulated `search` of the same pair. *)
let model_cmd =
  let run arch (s1 : Kernel_corpus.Spec.t) (s2 : Kernel_corpus.Spec.t) size1
      size2 () =
    let sizes = Hfuse_profiler.Experiment.representative_sizes arch in
    let size_of (s : Kernel_corpus.Spec.t) o =
      Option.value o ~default:(Hfuse_profiler.Experiment.size_of sizes s)
    in
    let size1 = size_of s1 size1 and size2 = size_of s2 size2 in
    let mem = Gpusim.Memory.create () in
    let c1 = Hfuse_profiler.Runner.configure mem s1 ~size:size1 in
    let c2 = Hfuse_profiler.Runner.configure mem s2 ~size:size2 in
    let inputs = Hfuse_costmodel.of_pair ~arch c1.info c2.info in
    Printf.printf "arch: %s\n" arch.Gpusim.Arch.name;
    Printf.printf "k1 %-12s work %8d  mix %s\n" s1.name inputs.work1
      (Fmt.str "%a" Hfuse_core.Analyzer.pp_mix inputs.mix1);
    Printf.printf "k2 %-12s work %8d  mix %s\n" s2.name inputs.work2
      (Fmt.str "%a" Hfuse_core.Analyzer.pp_mix inputs.mix2);
    (* enumerate exactly as the search does, but score instead of
       profiling *)
    let sr =
      Hfuse_core.Search.search
        ~limits:(Gpusim.Arch.sm_limits arch)
        ~profile:(fun fused ~reg_bound ->
          Hfuse_costmodel.score inputs ~fused
            ~config:
              {
                Hfuse_core.Search.partition =
                  { Hfuse_core.Partition.d1 = fused.d1; d2 = fused.d2 };
                reg_bound;
              })
        ~d0:(Hfuse_profiler.Runner.d0_for c1 c2)
        c1.info c2.info
    in
    List.iter
      (fun (cand : Hfuse_core.Search.candidate) ->
        Printf.printf "%5d/%-5d %-9s model %.6g\n" cand.fused.d1
          cand.fused.d2
          (match cand.config.reg_bound with
          | None -> "unbounded"
          | Some r -> Printf.sprintf "r0=%d" r)
          cand.time)
      sr.all;
    let b = sr.best in
    Printf.printf "model pick: %d/%d %s\n" b.fused.d1 b.fused.d2
      (match b.config.reg_bound with
      | None -> "unbounded"
      | Some r -> Printf.sprintf "r0=%d" r)
  in
  Cmd.v
    (Cmd.info "model"
       ~doc:
         "Score a corpus pair's fusion candidates with the analytical \
          cost model (no simulation).")
    Term.(
      const run $ arch_arg $ kernel_arg "k1" $ kernel_arg "k2"
      $ size_arg "size1" $ size_arg "size2" $ trace_blocks_arg)

(* -- analyze ------------------------------------------------------------ *)

let analyze_cmd =
  let run path =
    let prog, fn = or_die (parse_kernel_file path) in
    let fn' = Hfuse_frontend.Inline.normalize_kernel prog fn in
    let m = Hfuse_core.Analyzer.analyze_fn fn' in
    Printf.printf "kernel: %s
" fn.f_name;
    Printf.printf "instruction mix: %s
"
      (Fmt.str "%a" Hfuse_core.Analyzer.pp_mix m);
    Printf.printf "character: %s
"
      (Fmt.str "%a" Hfuse_core.Analyzer.pp_character
         (Hfuse_core.Analyzer.classify m))
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"K.cu") in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static instruction-mix analysis and resource classification           (the paper's fusion-scenario guidance).")
    Term.(const run $ path)

(* -- pairs -------------------------------------------------------------- *)

let pairs_cmd =
  let run () =
    let infos =
      List.map
        (fun (s : Kernel_corpus.Spec.t) ->
          let mem = Gpusim.Memory.create () in
          let inst = s.instantiate mem ~size:1 in
          (s.name, Kernel_corpus.Spec.kernel_info s inst))
        Kernel_corpus.Registry.all
    in
    let by_info =
      List.map (fun (n, i) -> (i.Hfuse_core.Kernel_info.fn.f_name, n)) infos
    in
    Printf.printf "%-24s %9s   (predicted fusion affinity, best first)
"
      "pair" "affinity";
    List.iter
      (fun (a, b, score) ->
        let name k =
          Option.value
            (List.assoc_opt k.Hfuse_core.Kernel_info.fn.Cuda.Ast.f_name by_info)
            ~default:k.Hfuse_core.Kernel_info.fn.Cuda.Ast.f_name
        in
        Printf.printf "%-24s %9.2f
" (name a ^ "+" ^ name b) score)
      (Hfuse_core.Analyzer.rank_pairs (List.map snd infos))
  in
  Cmd.v
    (Cmd.info "pairs"
       ~doc:"Rank the corpus kernels' fusion pairs by predicted affinity.")
    Term.(const run $ const ())

(* -- ptx ---------------------------------------------------------------- *)

let ptx_cmd =
  let run path sm fuse_with d1 d2 =
    match fuse_with with
    | None ->
        let prog, fn = or_die (parse_kernel_file path) in
        print_string (Hfuse_ptx.Emit.of_kernel ~sm prog fn)
    | Some path2 ->
        let k1 = info_of_file path ~block:d1 ~grid:8 ~smem_dynamic:0 ~regs:None in
        let k2 = info_of_file path2 ~block:d2 ~grid:8 ~smem_dynamic:0 ~regs:None in
        (match Hfuse_core.Hfuse.generate k1 k2 with
        | fused -> print_string (Hfuse_ptx.Emit.of_kernel ~sm fused.prog fused.fn)
        | exception Hfuse_core.Fuse_common.Fusion_error msg ->
            Printf.eprintf "hfuse: %s\n" msg;
            exit 1)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"K.cu") in
  let sm = Arg.(value & opt int 61 & info [ "sm" ] ~doc:"Target SM version.") in
  let fuse_with =
    Arg.(value & opt (some file) None
         & info [ "fuse-with" ] ~docv:"K2.cu"
             ~doc:"Horizontally fuse with this kernel before lowering.")
  in
  let d1 = Arg.(value & opt int 256 & info [ "d1" ] ~doc:"Threads for kernel 1.") in
  let d2 = Arg.(value & opt int 256 & info [ "d2" ] ~doc:"Threads for kernel 2.") in
  Cmd.v
    (Cmd.info "ptx"
       ~doc:"Lower a kernel (optionally fused) to PTX-flavoured assembly.")
    Term.(const run $ path $ sm $ fuse_with $ d1 $ d2)

(* -- fuzz --------------------------------------------------------------- *)

let fuzz_cmd =
  let run runs seed jobs out weights_spec max_kernels no_minimize inject repair =
    let weights =
      match
        Hfuse_fuzz.Gen.weights_of_spec Hfuse_fuzz.Gen.default_weights
          weights_spec
      with
      | Ok w -> w
      | Error msg ->
          Printf.eprintf "hfuse fuzz: %s\n" msg;
          exit 2
    in
    let cfg =
      {
        Hfuse_fuzz.Driver.default_config with
        runs;
        seed;
        jobs;
        out_dir = out;
        weights;
        max_kernels;
        minimize = not no_minimize;
        inject =
          (if inject then Some Hfuse_fuzz.Driver.inject_barrier_count
           else None);
        repair;
      }
    in
    let report = Hfuse_fuzz.Driver.run cfg in
    Fmt.pr "%a@." Hfuse_fuzz.Driver.pp_report report;
    if report.failed > 0 then exit 1
  in
  let runs =
    Arg.(value & opt int 100
         & info [ "runs" ] ~docv:"N" ~doc:"Number of random cases.")
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"S" ~doc:"Campaign seed; fixes everything.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Write minimized repro files for failures to $(docv).")
  in
  let weights =
    Arg.(value & opt string ""
         & info [ "weights" ] ~docv:"K=V,..."
             ~doc:
               "Grammar weight overrides, e.g. $(b,sync=0,atomic=5). Keys: \
                global_store local_assign shared_store atomic sync \
                if_uniform if_divergent loop shuffle divergent_sync.")
  in
  let max_kernels =
    Arg.(value & opt int 3
         & info [ "max-kernels" ] ~docv:"K"
             ~doc:"2 fuzzes pairs only; 3 (default) adds occasional triples.")
  in
  let no_minimize =
    Arg.(value & flag
         & info [ "no-minimize" ] ~doc:"Skip delta-debugging of failures.")
  in
  let inject =
    Arg.(value & flag
         & info [ "inject-barrier-bug" ]
             ~doc:
               "Deliberately corrupt fused barrier counts (oracle \
                meta-test; every fusable case must fail).")
  in
  let repair =
    Arg.(value & flag
         & info [ "repair" ]
             ~doc:
               "Feed every rejected pair through the repair engine and \
                report the serviceable fraction. Repairs the differential \
                oracle refutes are minimized to repro files and count as \
                failures.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate random kernels, run them unfused \
          and fused on the simulator, and compare memory byte-for-byte. \
          Exits non-zero if any case fails.")
    Term.(
      const run $ runs $ seed $ jobs_arg $ out $ weights $ max_kernels
      $ no_minimize $ inject $ repair)

(* -- serve -------------------------------------------------------------- *)

let serve_cmd =
  let run socket jobs queue_limit () =
    match
      Hfuse_serve.Server.create
        { Hfuse_serve.Server.socket_path = socket; jobs; queue_limit }
    with
    | exception Failure msg ->
        Printf.eprintf "hfuse: serve: %s\n" msg;
        exit 1
    | t ->
        (* publish the fleet corpus before accepting requests, so
           name-based resolution ("k1":"gen007") works and the scan's
           cost is paid once at startup, not on the first search *)
        Hfuse_fleet.Corpus.install ();
        let stop _ = Hfuse_serve.Server.request_stop t in
        Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
        Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
        Printf.eprintf "hfuse: serving on %s (%d worker%s, queue limit %d)\n%!"
          socket jobs
          (if jobs = 1 then "" else "s")
          queue_limit;
        Hfuse_serve.Server.serve t
  in
  let socket =
    Arg.(
      value
      & opt string "_hfuse.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket to listen on.")
  in
  let jobs =
    Arg.(
      value
      & opt int (Hfuse_parallel.Pool.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains executing requests (default: machine size).")
  in
  let queue_limit =
    Arg.(
      value
      & opt int Hfuse_serve.Server.default_queue_limit
      & info [ "queue-limit" ] ~docv:"N"
          ~doc:
            "Admission control: answer $(b,overloaded) instead of queueing \
             more than $(docv) unstarted requests.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent fusion daemon: a Unix-socket server answering \
          fuse/check/simulate/search/stats requests (newline-delimited \
          JSON) with a shared warm trace cache.  Responses are \
          byte-identical to the one-shot CLI.  Point $(b,HFUSE_SERVER) at \
          the socket to route ordinary hfuse invocations through it.")
    Term.(const run $ socket $ jobs $ queue_limit $ fault_arg)

(* -- client ------------------------------------------------------------- *)

let client_cmd =
  let run socket line =
    let socket =
      match (socket, Hfuse_serve.Client.default_socket ()) with
      | Some s, _ | None, Some s -> s
      | None, None ->
          Printf.eprintf
            "hfuse: client: no server socket (--socket or HFUSE_SERVER)\n";
          exit 2
    in
    let send line =
      match Hfuse_serve.Client.roundtrip ~socket line with
      | Ok resp -> print_endline resp
      | Error msg ->
          Printf.eprintf "hfuse: %s\n" msg;
          exit 3
    in
    match line with
    | Some l -> send l
    | None -> (
        try
          while true do
            send (input_line stdin)
          done
        with End_of_file -> ())
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Daemon socket (default $(b,HFUSE_SERVER)).")
  in
  let line =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"REQUEST"
          ~doc:
            "One JSON request line (omitted: read request lines from \
             stdin).")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send raw protocol request lines to a running $(b,hfuse serve) \
          daemon and print the response lines.")
    Term.(const run $ socket $ line)

(* -- main --------------------------------------------------------------- *)

let () =
  (* exit-code policy lives here, not in the library: a malformed
     HFUSE_FAULT raises [Invalid_spec], and only the CLI turns it into
     the usage exit (a daemon maps it to an error response instead) *)
  (try Hfuse_fault.Fault.from_env ()
   with Hfuse_fault.Fault.Invalid_spec msg ->
     Printf.eprintf "hfuse: %s\n" msg;
     exit 2);
  Sys.catch_break true;
  let doc = "automatic horizontal fusion for GPU kernels (CGO 2022)" in
  exit
    (try
       Cmd.eval ~catch:false
         (Cmd.group
            (Cmd.info "hfuse" ~version:"1.0.0" ~doc)
            [
              fuse_cmd; vfuse_cmd; check_cmd; info_cmd; corpus_cmd;
              simulate_cmd; search_cmd; model_cmd; analyze_cmd; pairs_cmd; ptx_cmd;
              fuzz_cmd; serve_cmd; client_cmd;
            ])
     with
     | Gpusim.Launch.Sim_timeout { kernel; fuel; block } ->
         (* the fuel watchdog fired outside a recovery layer: a clean
            diagnostic, not cmdliner's "internal error" banner *)
         Printf.eprintf
           "hfuse: simulation watchdog: kernel %s exhausted its loop fuel \
            (%d steps) in block %d — runaway loop?  Raise HFUSE_SIM_FUEL to \
            allow longer simulations.\n"
           kernel fuel block;
         1
     | Sys.Break ->
         prerr_endline "hfuse: interrupted";
         130)

(* The domain pool behind the parallel profiling search: order
   preservation, exception propagation, reuse, and equivalence with the
   serial path for any worker count. *)

module Pool = Hfuse_parallel.Pool

let squares n = Array.init n (fun i -> i * i)

let test_serial_pool () =
  (* jobs <= 1 degenerates to the calling domain: no workers spawned *)
  Pool.with_pool 1 (fun p ->
      Alcotest.(check int) "serial size" 1 (Pool.size p);
      Alcotest.(check (array int)) "serial map" (squares 10)
        (Pool.map p (fun i -> i * i) (Array.init 10 Fun.id)));
  Pool.with_pool 0 (fun p ->
      Alcotest.(check int) "clamped to 1" 1 (Pool.size p))

let test_parallel_map_order () =
  Pool.with_pool 4 (fun p ->
      Alcotest.(check int) "pool size" 4 (Pool.size p);
      (* unequal per-element work shuffles completion order; the result
         must still land in input order *)
      let f i =
        let acc = ref 0 in
        for _ = 1 to (i mod 13) * 500 do
          incr acc
        done;
        ignore !acc;
        i * i
      in
      Alcotest.(check (array int)) "input order" (squares 100)
        (Pool.map p f (Array.init 100 Fun.id)))

let test_edge_sizes () =
  Pool.with_pool 4 (fun p ->
      Alcotest.(check (array int)) "empty" [||]
        (Pool.map p (fun i -> i) [||]);
      Alcotest.(check (array int)) "singleton" [| 42 |]
        (Pool.map p (fun i -> i * 2) [| 21 |]))

let test_map_list () =
  Pool.with_pool 3 (fun p ->
      Alcotest.(check (list int)) "list order" [ 2; 4; 6; 8 ]
        (Pool.map_list p (fun i -> i * 2) [ 1; 2; 3; 4 ]))

let test_exception_propagates () =
  Pool.with_pool 4 (fun p ->
      (match Pool.map p (fun i -> if i = 5 then failwith "boom" else i)
               (Array.init 8 Fun.id)
       with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure m -> Alcotest.(check string) "message" "boom" m);
      (* the pool survives a raising batch *)
      Alcotest.(check (array int)) "usable after failure" (squares 4)
        (Pool.map p (fun i -> i * i) (Array.init 4 Fun.id)))

let test_pool_reuse () =
  Pool.with_pool 2 (fun p ->
      for round = 1 to 5 do
        let n = 10 * round in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          (squares n)
          (Pool.map p (fun i -> i * i) (Array.init n Fun.id))
      done)

let test_default_jobs () =
  Alcotest.(check bool) "default jobs positive" true (Pool.default_jobs () >= 1)

(* -- isolation, retries, chaos ----------------------------------------- *)

module Fault = Hfuse_fault.Fault

let test_map_isolated_shapes () =
  Pool.with_pool 4 (fun p ->
      let results =
        Pool.map_isolated p
          (fun i -> if i mod 3 = 1 then failwith (string_of_int i) else i * i)
          (Array.init 9 Fun.id)
      in
      Array.iteri
        (fun i r ->
          match r with
          | Ok v ->
              Alcotest.(check bool) "only passing indices succeed" true
                (i mod 3 <> 1);
              Alcotest.(check int) "value" (i * i) v
          | Error (fl : Pool.failure) ->
              Alcotest.(check bool) "only failing indices fail" true
                (i mod 3 = 1);
              Alcotest.(check int) "failure carries its index" i fl.f_index;
              Alcotest.(check int) "no retries by default" 1 fl.f_attempts;
              (match fl.f_exn with
              | Failure m ->
                  Alcotest.(check string) "original exception" (string_of_int i)
                    m
              | _ -> Alcotest.fail "expected Failure");
              (* the backtrace was captured where the task raised *)
              ignore (Printexc.raw_backtrace_to_string fl.f_backtrace))
        results)

let test_map_isolated_retries () =
  Pool.reset_tally ();
  Pool.with_pool 2 (fun p ->
      (* each task fails on its first attempt and succeeds on retry;
         per-index atomics survive the task landing on any domain *)
      let n = 8 in
      let attempts = Array.init n (fun _ -> Atomic.make 0) in
      let results =
        Pool.map_isolated ~retries:1 p
          (fun i ->
            if Atomic.fetch_and_add attempts.(i) 1 = 0 then failwith "flaky";
            i + 100)
          (Array.init n Fun.id)
      in
      Array.iteri
        (fun i r ->
          match r with
          | Ok v -> Alcotest.(check int) "recovered value" (i + 100) v
          | Error _ -> Alcotest.failf "task %d not recovered" i)
        results;
      let t = Pool.tally () in
      Alcotest.(check bool) "retries counted" true (t.Pool.retries >= n);
      Alcotest.(check bool) "recoveries counted" true (t.Pool.recovered >= n);
      (* past the budget the task fails terminally with the attempt count *)
      let r =
        Pool.map_isolated ~retries:2 p
          (fun _ -> failwith "always")
          [| 0 |]
      in
      match r.(0) with
      | Ok _ -> Alcotest.fail "expected terminal failure"
      | Error fl -> Alcotest.(check int) "budget exhausted" 3 fl.f_attempts);
  Pool.reset_tally ()

let test_map_lowest_index_failure () =
  Pool.with_pool 4 (fun p ->
      match
        Pool.map p
          (fun i -> if i >= 5 then failwith (string_of_int i) else i)
          (Array.init 10 Fun.id)
      with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure m ->
          Alcotest.(check string) "lowest-index failure re-raised" "5" m)

let test_injected_crashes_recovered () =
  (* a certain worker-crash plan: every task is killed once and must
     still produce the fault-free answer, at any worker count *)
  (match Fault.configure "worker_crash:1.0" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "configure rejected: %s" e);
  Fun.protect ~finally:(fun () ->
      Fault.clear ();
      Fault.reset_tally ();
      Pool.reset_tally ())
  @@ fun () ->
  Fault.reset_tally ();
  Pool.reset_tally ();
  let xs = Array.init 24 Fun.id in
  let expect = Array.map (fun i -> (i * 7) + 1) xs in
  List.iter
    (fun jobs ->
      Pool.with_pool jobs (fun p ->
          Alcotest.(check (array int))
            (Printf.sprintf "bit-identical under crashes at -j %d" jobs)
            expect
            (Pool.map p (fun i -> (i * 7) + 1) xs)))
    [ 1; 4 ];
  Alcotest.(check bool) "crashes were injected" true
    (Fault.injected_total () >= Array.length xs);
  Alcotest.(check int) "every crash recovered" (Fault.injected_total ())
    (Fault.recovered_total ());
  let t = Pool.tally () in
  Alcotest.(check int) "no terminal failures" 0 t.Pool.failures

(* -- service pools: submit, priorities, admission ----------------------- *)

(* A gate the single worker parks on, so the submit queue's contents
   are deterministic while we poke at it from the test thread. *)
module Gate = struct
  type t = { m : Mutex.t; c : Condition.t; mutable open_ : bool }

  let make () = { m = Mutex.create (); c = Condition.create (); open_ = false }

  let wait g =
    Mutex.lock g.m;
    while not g.open_ do
      Condition.wait g.c g.m
    done;
    Mutex.unlock g.m

  let release g =
    Mutex.lock g.m;
    g.open_ <- true;
    Condition.broadcast g.c;
    Mutex.unlock g.m
end

let spin_until ?(timeout = 10.0) pred =
  let deadline = Unix.gettimeofday () +. timeout in
  while (not (pred ())) && Unix.gettimeofday () < deadline do
    Thread.yield ()
  done;
  Alcotest.(check bool) "condition reached before timeout" true (pred ())

let test_submit_priority_order () =
  let p = Pool.create ~queue_limit:16 1 in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  let gate = Gate.make () in
  let order = ref [] in
  let order_m = Mutex.create () in
  let done_count = Atomic.make 0 in
  let job tag () =
    Mutex.lock order_m;
    order := tag :: !order;
    Mutex.unlock order_m;
    Atomic.incr done_count
  in
  (* park the worker, then queue behind it in submission order
     0, 5a, 1, 5b, 9: drain order must be priority-major, FIFO within *)
  Alcotest.(check bool) "blocker admitted" true
    (Pool.submit p (fun () -> Gate.wait gate) = `Queued);
  spin_until (fun () -> Pool.pending_submits p = 0);
  List.iter
    (fun (prio, tag) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s admitted" tag)
        true
        (Pool.submit ~priority:prio p (job tag) = `Queued))
    [ (0, "p0"); (5, "p5a"); (1, "p1"); (5, "p5b"); (9, "p9") ];
  Alcotest.(check int) "all five waiting" 5 (Pool.pending_submits p);
  Gate.release gate;
  spin_until (fun () -> Atomic.get done_count = 5);
  Alcotest.(check (list string)) "priority-major, FIFO within"
    [ "p9"; "p5a"; "p5b"; "p1"; "p0" ]
    (List.rev !order)

let test_submit_admission () =
  let p = Pool.create ~queue_limit:2 1 in
  let gate = Gate.make () in
  Fun.protect ~finally:(fun () ->
      Gate.release gate;
      Pool.shutdown p)
  @@ fun () ->
  let ran = Atomic.make 0 in
  Alcotest.(check bool) "blocker admitted" true
    (Pool.submit p (fun () -> Gate.wait gate) = `Queued);
  (* the blocker may still be queued or already running; wait until the
     worker picked it up so exactly queue_limit slots remain *)
  spin_until (fun () -> Pool.pending_submits p = 0);
  Alcotest.(check bool) "slot 1 queued" true
    (Pool.submit p (fun () -> Atomic.incr ran) = `Queued);
  Alcotest.(check bool) "slot 2 queued" true
    (Pool.submit p (fun () -> Atomic.incr ran) = `Queued);
  Alcotest.(check bool) "past the limit: refused, not queued" true
    (Pool.submit p (fun () -> Atomic.incr ran) = `Overloaded);
  Alcotest.(check int) "refused job never counted" 2 (Pool.pending_submits p);
  Gate.release gate;
  spin_until (fun () -> Atomic.get ran = 2);
  (* a drained queue admits again *)
  Alcotest.(check bool) "admits after drain" true
    (Pool.submit p (fun () -> Atomic.incr ran) = `Queued);
  spin_until (fun () -> Atomic.get ran = 3)

let test_submit_shutdown_and_plain_pool () =
  (* submit on a worker-less serial pool is a programming error: there
     is no domain to ever drain the job *)
  Pool.with_pool 1 (fun p ->
      try
        ignore (Pool.submit p (fun () -> ()));
        Alcotest.fail "submit accepted on a worker-less pool"
      with Invalid_argument _ -> ());
  let p = Pool.create ~queue_limit:4 1 in
  Pool.shutdown p;
  Alcotest.(check bool) "submit after shutdown" true
    (Pool.submit p (fun () -> ()) = `Shutdown)

let test_pool_diff_clamps () =
  let before = { Pool.failures = 4; retries = 10; recovered = 3 } in
  let after = { Pool.failures = 2; retries = 16; recovered = 3 } in
  let d = Pool.diff ~before ~after in
  (* a reset between snapshots clamps at 0, never negative *)
  Alcotest.(check int) "failures clamped" 0 d.Pool.failures;
  Alcotest.(check int) "retries delta" 6 d.Pool.retries;
  Alcotest.(check int) "recovered delta" 0 d.Pool.recovered;
  let s = Fmt.str "%a" Pool.pp_tally d in
  Alcotest.(check string) "pp_tally" "0 failures, 6 retries, 0 recovered" s

(* Pool.map must equal Array.map for any jobs and any input *)
let prop_matches_serial =
  QCheck.Test.make ~name:"Pool.map equals Array.map for any worker count"
    ~count:25
    QCheck.(pair (int_range 1 8) (list small_int))
    (fun (jobs, xs) ->
      let xs = Array.of_list xs in
      let f x = (x * 3) + 1 in
      Pool.with_pool jobs (fun p -> Pool.map p f xs) = Array.map f xs)

let suite =
  [
    Alcotest.test_case "serial pool" `Quick test_serial_pool;
    Alcotest.test_case "parallel map preserves order" `Quick
      test_parallel_map_order;
    Alcotest.test_case "empty and singleton" `Quick test_edge_sizes;
    Alcotest.test_case "map over lists" `Quick test_map_list;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
    Alcotest.test_case "default jobs" `Quick test_default_jobs;
    Alcotest.test_case "map_isolated shapes" `Quick test_map_isolated_shapes;
    Alcotest.test_case "map_isolated retry budget" `Quick
      test_map_isolated_retries;
    Alcotest.test_case "map re-raises the lowest-index failure" `Quick
      test_map_lowest_index_failure;
    Alcotest.test_case "injected crashes recover transparently" `Quick
      test_injected_crashes_recovered;
    Alcotest.test_case "submit drains priority-major" `Quick
      test_submit_priority_order;
    Alcotest.test_case "submit admission control" `Quick test_submit_admission;
    Alcotest.test_case "submit on shut-down or map-only pools" `Quick
      test_submit_shutdown_and_plain_pool;
    Alcotest.test_case "pool tally diff clamps at zero" `Quick
      test_pool_diff_clamps;
  ]
  @ Test_util.qcheck_cases [ prop_matches_serial ]

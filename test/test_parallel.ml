(* The domain pool behind the parallel profiling search: order
   preservation, exception propagation, reuse, and equivalence with the
   serial path for any worker count. *)

module Pool = Hfuse_parallel.Pool

let squares n = Array.init n (fun i -> i * i)

let test_serial_pool () =
  (* jobs <= 1 degenerates to the calling domain: no workers spawned *)
  Pool.with_pool 1 (fun p ->
      Alcotest.(check int) "serial size" 1 (Pool.size p);
      Alcotest.(check (array int)) "serial map" (squares 10)
        (Pool.map p (fun i -> i * i) (Array.init 10 Fun.id)));
  Pool.with_pool 0 (fun p ->
      Alcotest.(check int) "clamped to 1" 1 (Pool.size p))

let test_parallel_map_order () =
  Pool.with_pool 4 (fun p ->
      Alcotest.(check int) "pool size" 4 (Pool.size p);
      (* unequal per-element work shuffles completion order; the result
         must still land in input order *)
      let f i =
        let acc = ref 0 in
        for _ = 1 to (i mod 13) * 500 do
          incr acc
        done;
        ignore !acc;
        i * i
      in
      Alcotest.(check (array int)) "input order" (squares 100)
        (Pool.map p f (Array.init 100 Fun.id)))

let test_edge_sizes () =
  Pool.with_pool 4 (fun p ->
      Alcotest.(check (array int)) "empty" [||]
        (Pool.map p (fun i -> i) [||]);
      Alcotest.(check (array int)) "singleton" [| 42 |]
        (Pool.map p (fun i -> i * 2) [| 21 |]))

let test_map_list () =
  Pool.with_pool 3 (fun p ->
      Alcotest.(check (list int)) "list order" [ 2; 4; 6; 8 ]
        (Pool.map_list p (fun i -> i * 2) [ 1; 2; 3; 4 ]))

let test_exception_propagates () =
  Pool.with_pool 4 (fun p ->
      (match Pool.map p (fun i -> if i = 5 then failwith "boom" else i)
               (Array.init 8 Fun.id)
       with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure m -> Alcotest.(check string) "message" "boom" m);
      (* the pool survives a raising batch *)
      Alcotest.(check (array int)) "usable after failure" (squares 4)
        (Pool.map p (fun i -> i * i) (Array.init 4 Fun.id)))

let test_pool_reuse () =
  Pool.with_pool 2 (fun p ->
      for round = 1 to 5 do
        let n = 10 * round in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          (squares n)
          (Pool.map p (fun i -> i * i) (Array.init n Fun.id))
      done)

let test_default_jobs () =
  Alcotest.(check bool) "default jobs positive" true (Pool.default_jobs () >= 1)

(* Pool.map must equal Array.map for any jobs and any input *)
let prop_matches_serial =
  QCheck.Test.make ~name:"Pool.map equals Array.map for any worker count"
    ~count:25
    QCheck.(pair (int_range 1 8) (list small_int))
    (fun (jobs, xs) ->
      let xs = Array.of_list xs in
      let f x = (x * 3) + 1 in
      Pool.with_pool jobs (fun p -> Pool.map p f xs) = Array.map f xs)

let suite =
  [
    Alcotest.test_case "serial pool" `Quick test_serial_pool;
    Alcotest.test_case "parallel map preserves order" `Quick
      test_parallel_map_order;
    Alcotest.test_case "empty and singleton" `Quick test_edge_sizes;
    Alcotest.test_case "map over lists" `Quick test_map_list;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
    Alcotest.test_case "default jobs" `Quick test_default_jobs;
  ]
  @ Test_util.qcheck_cases [ prop_matches_serial ]

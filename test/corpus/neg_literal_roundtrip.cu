// hfuse-fuzz repro
// seed: 2122592666237104735
// expect: equivalent
// detail: regression: negative float literals printed as "-3.0f" used to
// detail: reparse as Unop(Neg, lit) and fail the round-trip phase
// kernel k0: block=32x1x1 grid=1 n=64 fill=332476 smem=0
// kernel k1: block=32x1x1 grid=1 n=64 fill=527331 smem=0
__global__ void k0(float* k0_b0, int n) {
  float f0 = -3.0f;
  int t0 = -5;
  k0_b0[threadIdx.x & 63] += f0 * (float)t0;
}

__global__ void k1(float* k1_b0, int n) {
  k1_b0[threadIdx.x & 63] = -0.75f;
}

// hfuse-fuzz repro
// seed: 99
// expect: equivalent
// detail: three-way fusion (Multi.generate) with partial barriers,
// detail: static shared memory, and atomics on both memory spaces
// kernel k0: block=64x1x1 grid=2 n=128 fill=21 smem=0
// kernel k1: block=32x1x1 grid=2 n=64 fill=22 smem=0
// kernel k2: block=32x1x1 grid=2 n=64 fill=23 smem=0
__global__ void k0(float* k0_b0, int n) {
  __shared__ float k0_sh0[64];
  k0_sh0[threadIdx.x & 63] = k0_b0[threadIdx.x & 127] * 2.0f;
  __syncthreads();
  k0_b0[(threadIdx.x + blockIdx.x * blockDim.x) & 127] += k0_sh0[(threadIdx.x + 1) & 63];
}

__global__ void k1(int* k1_b0, int n) {
  atomicAdd(&k1_b0[threadIdx.x & 7], 3);
  k1_b0[(threadIdx.x + blockIdx.x * blockDim.x) & 63] ^= n;
}

__global__ void k2(float* k2_b0, int n) {
  __shared__ float k2_sh0[32];
  k2_sh0[threadIdx.x & 31] = 0.25f;
  __syncthreads();
  atomicAdd(&k2_b0[threadIdx.x & 63], k2_sh0[(threadIdx.x * 3) & 31]);
}

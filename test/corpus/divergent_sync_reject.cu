// hfuse-fuzz repro
// seed: 7
// expect: rejected
// detail: a barrier under a thread-dependent branch must be refused by
// detail: the static verifier before anything is executed
// kernel k0: block=32x1x1 grid=1 n=64 fill=11 smem=0
// kernel k1: block=32x1x1 grid=1 n=64 fill=12 smem=0
__global__ void k0(float* k0_b0, int n) {
  if (threadIdx.x < 16u) {
    __syncthreads();
  }
  k0_b0[threadIdx.x & 63] += 1.0f;
}

__global__ void k1(float* k1_b0, int n) {
  k1_b0[threadIdx.x & 63] += 2.0f;
}

// hfuse-fuzz repro
// seed: 560553596806919533
// expect: equivalent
// detail: regression: the fused geometry prologue used to rebind
// detail: threadIdx/blockDim to signed int locals, so unsigned
// detail: subtraction/division/comparison in the input kernels turned
// detail: signed after fusion and produced different memory
// kernel k0: block=32x1x1 grid=1 n=128 fill=380844 smem=0
// kernel k1: block=32x1x1 grid=1 n=128 fill=543811 smem=0
__global__ void k0(unsigned int* k0_b0, int n) {
  int t0 = blockDim.x - threadIdx.x - threadIdx.x;
  int t1 = threadIdx.x;
  k0_b0[((threadIdx.x ^ threadIdx.x) <= t0 ? t1 : min(t0, threadIdx.x)) & 127] *= threadIdx.x;
}

__global__ void k1(unsigned int* k1_b0, int n) {
  k1_b0[threadIdx.x * threadIdx.y & 127] = (1 - threadIdx.x) / 7;
}

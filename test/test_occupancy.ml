(* Occupancy / register-bound math (Fig. 6 lines 13-16), including the
   paper's motivating configuration, plus monotonicity properties. *)

open Hfuse_core

let lim = Occupancy.pascal_volta_limits

let test_blocks_per_sm () =
  (* the worked example from Section II-A: 24K shared, 512 threads,
     64 registers per thread -> 2 blocks, registers the bottleneck *)
  Alcotest.(check int) "paper example" 2
    (Occupancy.blocks_per_sm lim ~regs:64 ~threads:512 ~smem:(24 * 1024));
  Alcotest.(check bool) "register-limited" true
    (Occupancy.limiting_resource lim ~regs:64 ~threads:512 ~smem:(24 * 1024)
    = Occupancy.By_registers);
  (* ... and with 32 registers the occupancy doubles (paper: "the
     developer doubles the occupancy") *)
  Alcotest.(check int) "halved regs" 4
    (Occupancy.blocks_per_sm lim ~regs:32 ~threads:512 ~smem:(24 * 1024));
  Alcotest.(check int) "thread-limited" 2
    (Occupancy.blocks_per_sm lim ~regs:16 ~threads:1024 ~smem:0);
  Alcotest.(check int) "smem-limited" 3
    (Occupancy.blocks_per_sm lim ~regs:16 ~threads:128 ~smem:(32 * 1024));
  Alcotest.(check int) "block-slot-limited" 32
    (Occupancy.blocks_per_sm lim ~regs:8 ~threads:32 ~smem:0);
  Alcotest.(check int) "does not fit" 0
    (Occupancy.blocks_per_sm lim ~regs:255 ~threads:1024 ~smem:0)

let test_limiting_resource_no_smem () =
  (* regression: a zero-smem kernel bound by block slots used to report
     [By_smem] (the absent smem divisor defaulted to the slot limit) *)
  Alcotest.(check bool) "slot-limited, not smem" true
    (Occupancy.limiting_resource lim ~regs:8 ~threads:32 ~smem:0
    = Occupancy.By_block_slots);
  Alcotest.(check bool) "thread-limited zero smem" true
    (Occupancy.limiting_resource lim ~regs:16 ~threads:1024 ~smem:0
    = Occupancy.By_threads);
  Alcotest.(check bool) "smem-limited still reported" true
    (Occupancy.limiting_resource lim ~regs:16 ~threads:128 ~smem:(32 * 1024)
    = Occupancy.By_smem)

let test_theoretical_occupancy () =
  Alcotest.(check (float 1e-9)) "full" 1.0
    (Occupancy.theoretical_occupancy lim ~regs:32 ~threads:512 ~smem:0);
  Alcotest.(check (float 1e-9)) "half" 0.5
    (Occupancy.theoretical_occupancy lim ~regs:64 ~threads:1024 ~smem:0)

let test_register_bound_paper_case () =
  (* Batchnorm(896 threads, 34 regs) + Hist(128 threads, 24 regs):
     b1 = 65536/(896*34) = 2, b2 = 65536/(128*24) = 21, threads bound 2
     -> b0 = 2 -> r0 = 65536/(2*1024) = 32, the bound the paper reports
     for this pair on the 1080Ti (Section II-C / Fig. 9). *)
  Alcotest.(check (option int)) "r0 = 32" (Some 32)
    (Occupancy.register_bound lim ~d1:896 ~regs1:34 ~d2:128 ~regs2:24
       ~fused_smem:768)

let test_register_bound_smem_bound () =
  (* enormous fused shared memory forces b0 via smem *)
  Alcotest.(check (option int)) "smem binds b0" (Some 128)
    (Occupancy.register_bound lim ~d1:256 ~regs1:16 ~d2:256 ~regs2:16
       ~fused_smem:(96 * 1024))

let test_register_bound_none () =
  (* a kernel so register-hungry that b1 = 0: no bound can help *)
  Alcotest.(check (option int)) "no bound" None
    (Occupancy.register_bound lim ~d1:1024 ~regs1:255 ~d2:1024 ~regs2:16
       ~fused_smem:0)

let test_register_bound_slot_clamped () =
  (* regression: with nonzero fused shared memory, b0 was never clamped
     to the hardware block-slot limit — a tiny-smem kernel computed an
     impossible residency and, from it, an over-tight (too small) r0.
     On a 16-slot device: b1 = b2 = 65536/(32*8) = 256, by_smem =
     98304/768 = 128, threads 2048/64 = 32; unclamped b0 = 32 gave
     r0 = 32, but only 16 blocks can ever be resident, so r0 = 64. *)
  let lim16 = { lim with Occupancy.max_blocks_per_sm = 16 } in
  Alcotest.(check (option int)) "slot-clamped r0" (Some 64)
    (Occupancy.register_bound lim16 ~d1:32 ~regs1:8 ~d2:32 ~regs2:8
       ~fused_smem:768);
  (* the same shape on the real 32-slot limits sits exactly on the slot
     boundary: the clamp is a no-op and the bound is unchanged *)
  Alcotest.(check (option int)) "boundary case unchanged" (Some 32)
    (Occupancy.register_bound lim ~d1:32 ~regs1:8 ~d2:32 ~regs2:8
       ~fused_smem:768)

let test_register_bound_granularity () =
  (* regression: the raw r0 was not aligned down to the allocation
     granularity, so the hardware's own rounding could cross a
     breakpoint and cost a block per SM.  96+64 threads at 34 regs
     each: b1 = 65536/3264 = 20, b2 = 65536/2176 = 30, threads bound
     2048/160 = 12 -> b0 = 12 -> raw r0 = 65536/1920 = 34.  Launching
     at 34 the hardware allocates 40/thread and only 10 blocks fit —
     below the b0 = 12 the bound promised.  Aligned down to 32, all 12
     fit. *)
  Alcotest.(check (option int)) "aligned r0" (Some 32)
    (Occupancy.register_bound lim ~d1:96 ~regs1:34 ~d2:64 ~regs2:34
       ~fused_smem:0);
  (* the aligned bound really does preserve the promised residency
     under hardware rounding; the raw value of 34 would not *)
  Alcotest.(check int) "b0 preserved at 32" 12
    (Occupancy.blocks_per_sm lim ~regs:32 ~threads:160 ~smem:0);
  Alcotest.(check int) "raw 34 loses blocks" 10
    (Occupancy.blocks_per_sm lim ~regs:34 ~threads:160 ~smem:0)

let test_register_bound_granularity_floor () =
  (* the floor never drops below one allocation unit: on a device with
     a huge thread budget, b1 = b2 = 65536/(512*8) = 16 and the thread
     bound 16384/1024 = 16 give b0 = 16, so raw r0 = 65536/16384 = 4 —
     below the granularity of 8.  Align up to the single-unit minimum
     rather than down to an unallocatable 0. *)
  let lim_big = { lim with Occupancy.max_threads_per_sm = 16384 } in
  Alcotest.(check (option int)) "clamped to one unit" (Some 8)
    (Occupancy.register_bound lim_big ~d1:512 ~regs1:8 ~d2:512 ~regs2:8
       ~fused_smem:0)

let test_register_bound_clamped () =
  (* tiny kernels: r0 would exceed the 255-register hardware cap *)
  match
    Occupancy.register_bound lim ~d1:32 ~regs1:16 ~d2:32 ~regs2:16
      ~fused_smem:0
  with
  | Some r -> Alcotest.(check bool) "clamped" true (r <= 255)
  | None -> Alcotest.fail "expected a bound"

(* -- properties -------------------------------------------------------- *)

let arb_cfg =
  QCheck.(
    triple (int_range 8 255) (int_range 32 1024) (int_range 0 (96 * 1024)))

let blocks_monotone_regs =
  QCheck.Test.make ~name:"more registers never increase occupancy" ~count:300
    arb_cfg (fun (regs, threads, smem) ->
      let threads = threads / 32 * 32 in
      QCheck.assume (threads > 0);
      Occupancy.blocks_per_sm lim ~regs:(min 255 (regs + 8)) ~threads ~smem
      <= Occupancy.blocks_per_sm lim ~regs ~threads ~smem)

let blocks_monotone_smem =
  QCheck.Test.make ~name:"more shared memory never increases occupancy"
    ~count:300 arb_cfg (fun (regs, threads, smem) ->
      let threads = max 32 (threads / 32 * 32) in
      Occupancy.blocks_per_sm lim ~regs ~threads ~smem:(smem + 1024)
      <= Occupancy.blocks_per_sm lim ~regs ~threads ~smem)

let blocks_respect_limits =
  QCheck.Test.make ~name:"residency respects every hardware limit" ~count:300
    arb_cfg (fun (regs, threads, smem) ->
      let threads = max 32 (threads / 32 * 32) in
      let b = Occupancy.blocks_per_sm lim ~regs ~threads ~smem in
      b * threads <= lim.max_threads_per_sm
      && (smem = 0 || b * smem <= lim.smem_per_sm)
      && b <= lim.max_blocks_per_sm)

let bound_restores_occupancy =
  QCheck.Test.make
    ~name:"launching at r0 runs at least min(b1,b2) blocks (Fig. 6 intent)"
    ~count:300
    QCheck.(
      quad (int_range 8 64) (int_range 8 64) (int_range 1 7) (int_range 1 7))
    (fun (regs1, regs2, w1, w2) ->
      let d1 = w1 * 128 and d2 = w2 * 128 in
      QCheck.assume (d1 + d2 <= 1024);
      match
        Occupancy.register_bound lim ~d1 ~regs1 ~d2 ~regs2 ~fused_smem:0
      with
      | None -> QCheck.assume_fail ()
      | Some r0 ->
          let b1 = lim.regs_per_sm / (d1 * regs1) in
          let b2 = lim.regs_per_sm / (d2 * regs2) in
          let b0 =
            min (min b1 b2) (lim.max_threads_per_sm / (d1 + d2))
          in
          (* raw-regs residency at the bound (the formula's own metric) *)
          lim.regs_per_sm / (r0 * (d1 + d2)) >= b0)

let bound_granularity =
  QCheck.Test.make
    ~name:"register bound is allocation-granularity aligned" ~count:300
    QCheck.(
      quad (int_range 8 64) (int_range 8 64) (int_range 1 7) (int_range 1 7))
    (fun (regs1, regs2, w1, w2) ->
      let d1 = w1 * 128 and d2 = w2 * 128 in
      QCheck.assume (d1 + d2 <= 1024);
      match
        Occupancy.register_bound lim ~d1 ~regs1 ~d2 ~regs2 ~fused_smem:0
      with
      | None -> QCheck.assume_fail ()
      | Some r0 ->
          (r0 mod lim.reg_alloc_granularity = 0
          || r0 = lim.max_regs_per_thread)
          && r0 >= lim.reg_alloc_granularity)

let suite =
  [
    Alcotest.test_case "blocks per SM" `Quick test_blocks_per_sm;
    Alcotest.test_case "limiting resource (no smem)" `Quick
      test_limiting_resource_no_smem;
    Alcotest.test_case "theoretical occupancy" `Quick
      test_theoretical_occupancy;
    Alcotest.test_case "register bound (paper case)" `Quick
      test_register_bound_paper_case;
    Alcotest.test_case "register bound (smem-bound)" `Quick
      test_register_bound_smem_bound;
    Alcotest.test_case "register bound (impossible)" `Quick
      test_register_bound_none;
    Alcotest.test_case "register bound (slot-clamped)" `Quick
      test_register_bound_slot_clamped;
    Alcotest.test_case "register bound (granularity-aligned)" `Quick
      test_register_bound_granularity;
    Alcotest.test_case "register bound (granularity floor)" `Quick
      test_register_bound_granularity_floor;
    Alcotest.test_case "register bound (clamped)" `Quick
      test_register_bound_clamped;
  ]
  @ Test_util.qcheck_cases
      [
        blocks_monotone_regs; blocks_monotone_smem; blocks_respect_limits;
        bound_restores_occupancy; bound_granularity;
      ]

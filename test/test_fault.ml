(* The chaos-injection harness: spec parsing, pure deterministic draws,
   backoff jitter, retry/recovery semantics, and the fault tally.  Every
   test clears the plan on exit so the other suites stay fault-free. *)

module Fault = Hfuse_fault.Fault

let with_plan spec f =
  (match Fault.configure spec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "configure %S rejected: %s" spec e);
  Fun.protect ~finally:(fun () ->
      Fault.clear ();
      Fault.reset_tally ())
    f

let test_configure_ok () =
  with_plan "worker_crash:0.05,cache_corrupt:0.1,sim_hang:0.02,seed:7"
    (fun () ->
      Alcotest.(check bool) "enabled" true (Fault.enabled ());
      Alcotest.(check (float 0.0)) "crash rate" 0.05 (Fault.rate Worker_crash);
      Alcotest.(check (float 0.0)) "corrupt rate" 0.1 (Fault.rate Cache_corrupt);
      Alcotest.(check (float 0.0)) "hang rate" 0.02 (Fault.rate Sim_hang));
  Alcotest.(check bool) "cleared" false (Fault.enabled ());
  Alcotest.(check (float 0.0)) "rates drop to 0" 0.0 (Fault.rate Worker_crash)

let test_configure_errors () =
  let rejects spec =
    match Fault.configure spec with
    | Ok () ->
        Fault.clear ();
        Alcotest.failf "malformed spec %S accepted" spec
    | Error _ -> ()
  in
  rejects "worker_crash";
  rejects "worker_crash:nope";
  rejects "worker_crash:1.5";
  rejects "worker_crash:-0.1";
  rejects "disk_full:0.5";
  (* an empty spec is the documented way to clear the plan *)
  (match Fault.configure "worker_crash:1.0" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid spec rejected: %s" e);
  (match Fault.configure "" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "empty spec rejected: %s" e);
  Alcotest.(check bool) "empty spec clears" false (Fault.enabled ())

let test_fires_deterministic () =
  with_plan "worker_crash:0.5,seed:3" (fun () ->
      let draws = Array.init 512 (fun k -> Fault.fires Worker_crash ~key:k) in
      Array.iteri
        (fun k d ->
          Alcotest.(check bool)
            (Printf.sprintf "key %d draws the same answer twice" k)
            d
            (Fault.fires Worker_crash ~key:k))
        draws;
      let hits =
        Array.fold_left (fun n d -> if d then n + 1 else n) 0 draws
      in
      (* a 0.5 draw over 512 keys lands well inside [128, 384] *)
      Alcotest.(check bool)
        (Printf.sprintf "rate 0.5 fires about half the time (%d/512)" hits)
        true
        (hits > 128 && hits < 384))

let test_fires_extremes () =
  with_plan "cache_corrupt:1.0,sim_hang:0.0" (fun () ->
      for k = 0 to 255 do
        Alcotest.(check bool) "rate 1 always fires" true
          (Fault.fires Cache_corrupt ~key:k);
        Alcotest.(check bool) "rate 0 never fires" false
          (Fault.fires Sim_hang ~key:k);
        (* unconfigured kinds never fire either *)
        Alcotest.(check bool) "unconfigured kind never fires" false
          (Fault.fires Worker_crash ~key:k)
      done);
  Alcotest.(check bool) "disabled plan never fires" false
    (Fault.fires Cache_corrupt ~key:0)

let test_jitter () =
  for attempt = 0 to 8 do
    for key = 0 to 63 do
      let j = Fault.jitter ~key ~attempt in
      Alcotest.(check bool) "jitter positive" true (j > 0.0);
      Alcotest.(check bool) "jitter bounded" true (j < 1.0);
      Alcotest.(check (float 0.0)) "jitter deterministic" j
        (Fault.jitter ~key ~attempt)
    done
  done

let test_with_retries_injected () =
  with_plan "worker_crash:1.0" (fun () ->
      Fault.reset_tally ();
      (* an injected fault is transient: the wrapper retries until the
         task runs clean, even with no real-failure budget *)
      let calls = ref 0 in
      let v =
        Fault.with_retries ~key:11 (fun () ->
            incr calls;
            if !calls = 1 then raise (Fault.Injected Worker_crash);
            41 + 1)
      in
      Alcotest.(check int) "recovered value" 42 v;
      Alcotest.(check int) "retried once" 2 !calls;
      Alcotest.(check bool) "recovery noted" true
        (Fault.recovered_total () >= 1))

let test_with_retries_budget () =
  (* no plan installed: only the explicit budget applies *)
  Fault.clear ();
  Fault.reset_tally ();
  let calls = ref 0 in
  let v =
    Fault.with_retries ~budget:2 ~key:5 (fun () ->
        incr calls;
        if !calls < 3 then failwith "flaky";
        "ok")
  in
  Alcotest.(check string) "recovers within budget" "ok" v;
  Alcotest.(check int) "two retries used" 3 !calls;
  let calls = ref 0 in
  (match
     Fault.with_retries ~budget:1 ~key:5 (fun () ->
         incr calls;
         failwith "always")
   with
  | _ -> Alcotest.fail "exhausted retries must re-raise"
  | exception Failure msg ->
      Alcotest.(check string) "original exception" "always" msg);
  Alcotest.(check int) "budget 1 means two attempts" 2 !calls;
  (* default budget is zero: a real failure propagates immediately *)
  let calls = ref 0 in
  (match
     Fault.with_retries ~key:5 (fun () ->
         incr calls;
         failwith "once")
   with
  | _ -> Alcotest.fail "default budget must not retry"
  | exception Failure _ -> ());
  Alcotest.(check int) "single attempt" 1 !calls;
  Fault.reset_tally ()

let test_tally () =
  Fault.clear ();
  Fault.reset_tally ();
  Alcotest.(check int) "fresh tally empty" 0 (Fault.injected_total ());
  Fault.note_injected Worker_crash;
  Fault.note_injected Worker_crash;
  Fault.note_injected Sim_hang;
  Fault.note_recovered Worker_crash;
  let t = Fault.tally () in
  Alcotest.(check int) "injected total" 3 (Fault.injected_total ());
  Alcotest.(check int) "recovered total" 1 (Fault.recovered_total ());
  Alcotest.(check int) "crash count" 2
    (List.assoc Fault.Worker_crash t.Fault.injected);
  Alcotest.(check int) "hang count" 1
    (List.assoc Fault.Sim_hang t.Fault.injected);
  let s = Fmt.str "%a" Fault.pp_tally t in
  Alcotest.(check string) "pp_tally"
    "injected 3 (crash 2, corrupt 0, hang 1), recovered 1" s;
  Fault.reset_tally ();
  Alcotest.(check int) "reset" 0 (Fault.injected_total ())

let suite =
  [
    Alcotest.test_case "spec parsing accepts the documented form" `Quick
      test_configure_ok;
    Alcotest.test_case "spec parsing rejects malformed plans" `Quick
      test_configure_errors;
    Alcotest.test_case "draws are pure in the key" `Quick
      test_fires_deterministic;
    Alcotest.test_case "rate 0 and rate 1 are exact" `Quick test_fires_extremes;
    Alcotest.test_case "backoff jitter is bounded and deterministic" `Quick
      test_jitter;
    Alcotest.test_case "injected faults are retried to success" `Quick
      test_with_retries_injected;
    Alcotest.test_case "real failures respect the retry budget" `Quick
      test_with_retries_budget;
    Alcotest.test_case "fault tally" `Quick test_tally;
  ]

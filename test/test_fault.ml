(* The chaos-injection harness: spec parsing, pure deterministic draws,
   backoff jitter, retry/recovery semantics, and the fault tally.  Every
   test clears the plan on exit so the other suites stay fault-free. *)

module Fault = Hfuse_fault.Fault

let with_plan spec f =
  (match Fault.configure spec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "configure %S rejected: %s" spec e);
  Fun.protect ~finally:(fun () ->
      Fault.clear ();
      Fault.reset_tally ())
    f

let test_configure_ok () =
  with_plan "worker_crash:0.05,cache_corrupt:0.1,sim_hang:0.02,seed:7"
    (fun () ->
      Alcotest.(check bool) "enabled" true (Fault.enabled ());
      Alcotest.(check (float 0.0)) "crash rate" 0.05 (Fault.rate Worker_crash);
      Alcotest.(check (float 0.0)) "corrupt rate" 0.1 (Fault.rate Cache_corrupt);
      Alcotest.(check (float 0.0)) "hang rate" 0.02 (Fault.rate Sim_hang));
  Alcotest.(check bool) "cleared" false (Fault.enabled ());
  Alcotest.(check (float 0.0)) "rates drop to 0" 0.0 (Fault.rate Worker_crash)

let test_configure_errors () =
  let rejects spec =
    match Fault.configure spec with
    | Ok () ->
        Fault.clear ();
        Alcotest.failf "malformed spec %S accepted" spec
    | Error _ -> ()
  in
  rejects "worker_crash";
  rejects "worker_crash:nope";
  rejects "worker_crash:1.5";
  rejects "worker_crash:-0.1";
  rejects "disk_full:0.5";
  (* an empty spec is the documented way to clear the plan *)
  (match Fault.configure "worker_crash:1.0" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid spec rejected: %s" e);
  (match Fault.configure "" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "empty spec rejected: %s" e);
  Alcotest.(check bool) "empty spec clears" false (Fault.enabled ())

let test_fires_deterministic () =
  with_plan "worker_crash:0.5,seed:3" (fun () ->
      let draws = Array.init 512 (fun k -> Fault.fires Worker_crash ~key:k) in
      Array.iteri
        (fun k d ->
          Alcotest.(check bool)
            (Printf.sprintf "key %d draws the same answer twice" k)
            d
            (Fault.fires Worker_crash ~key:k))
        draws;
      let hits =
        Array.fold_left (fun n d -> if d then n + 1 else n) 0 draws
      in
      (* a 0.5 draw over 512 keys lands well inside [128, 384] *)
      Alcotest.(check bool)
        (Printf.sprintf "rate 0.5 fires about half the time (%d/512)" hits)
        true
        (hits > 128 && hits < 384))

let test_fires_extremes () =
  with_plan "cache_corrupt:1.0,sim_hang:0.0" (fun () ->
      for k = 0 to 255 do
        Alcotest.(check bool) "rate 1 always fires" true
          (Fault.fires Cache_corrupt ~key:k);
        Alcotest.(check bool) "rate 0 never fires" false
          (Fault.fires Sim_hang ~key:k);
        (* unconfigured kinds never fire either *)
        Alcotest.(check bool) "unconfigured kind never fires" false
          (Fault.fires Worker_crash ~key:k)
      done);
  Alcotest.(check bool) "disabled plan never fires" false
    (Fault.fires Cache_corrupt ~key:0)

let test_jitter () =
  for attempt = 0 to 8 do
    for key = 0 to 63 do
      let j = Fault.jitter ~key ~attempt () in
      Alcotest.(check bool) "jitter positive" true (j > 0.0);
      Alcotest.(check bool) "jitter bounded" true (j < 1.0);
      Alcotest.(check (float 0.0)) "jitter deterministic" j
        (Fault.jitter ~key ~attempt ())
    done
  done

let test_with_retries_injected () =
  with_plan "worker_crash:1.0" (fun () ->
      Fault.reset_tally ();
      (* an injected fault is transient: the wrapper retries until the
         task runs clean, even with no real-failure budget *)
      let calls = ref 0 in
      let v =
        Fault.with_retries ~key:11 (fun () ->
            incr calls;
            if !calls = 1 then raise (Fault.Injected Worker_crash);
            41 + 1)
      in
      Alcotest.(check int) "recovered value" 42 v;
      Alcotest.(check int) "retried once" 2 !calls;
      Alcotest.(check bool) "recovery noted" true
        (Fault.recovered_total () >= 1))

let test_with_retries_budget () =
  (* no plan installed: only the explicit budget applies *)
  Fault.clear ();
  Fault.reset_tally ();
  let calls = ref 0 in
  let v =
    Fault.with_retries ~budget:2 ~key:5 (fun () ->
        incr calls;
        if !calls < 3 then failwith "flaky";
        "ok")
  in
  Alcotest.(check string) "recovers within budget" "ok" v;
  Alcotest.(check int) "two retries used" 3 !calls;
  let calls = ref 0 in
  (match
     Fault.with_retries ~budget:1 ~key:5 (fun () ->
         incr calls;
         failwith "always")
   with
  | _ -> Alcotest.fail "exhausted retries must re-raise"
  | exception Failure msg ->
      Alcotest.(check string) "original exception" "always" msg);
  Alcotest.(check int) "budget 1 means two attempts" 2 !calls;
  (* default budget is zero: a real failure propagates immediately *)
  let calls = ref 0 in
  (match
     Fault.with_retries ~key:5 (fun () ->
         incr calls;
         failwith "once")
   with
  | _ -> Alcotest.fail "default budget must not retry"
  | exception Failure _ -> ());
  Alcotest.(check int) "single attempt" 1 !calls;
  Fault.reset_tally ()

let test_tally () =
  Fault.clear ();
  Fault.reset_tally ();
  Alcotest.(check int) "fresh tally empty" 0 (Fault.injected_total ());
  Fault.note_injected Worker_crash;
  Fault.note_injected Worker_crash;
  Fault.note_injected Sim_hang;
  Fault.note_recovered Worker_crash;
  let t = Fault.tally () in
  Alcotest.(check int) "injected total" 3 (Fault.injected_total ());
  Alcotest.(check int) "recovered total" 1 (Fault.recovered_total ());
  Alcotest.(check int) "crash count" 2
    (List.assoc Fault.Worker_crash t.Fault.injected);
  Alcotest.(check int) "hang count" 1
    (List.assoc Fault.Sim_hang t.Fault.injected);
  let s = Fmt.str "%a" Fault.pp_tally t in
  Alcotest.(check string) "pp_tally"
    "injected 3 (crash 2, corrupt 0, hang 1), recovered 1" s;
  Fault.reset_tally ();
  Alcotest.(check int) "reset" 0 (Fault.injected_total ())

let test_from_env_raises () =
  (* regression: a malformed HFUSE_FAULT used to exit the process with
     code 2 from library code — fatal inside a daemon.  It now raises
     Invalid_spec and leaves the installed plan untouched. *)
  Unix.putenv "HFUSE_FAULT" "bogus_kind:0.5";
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "HFUSE_FAULT" "";
      Fault.clear ())
    (fun () ->
      (match Fault.from_env () with
      | () -> Alcotest.fail "malformed HFUSE_FAULT accepted"
      | exception Fault.Invalid_spec msg ->
          Alcotest.(check bool) "message names the bad kind" true
            (String.length msg > 0));
      Alcotest.(check bool) "no plan installed" false (Fault.enabled ());
      Unix.putenv "HFUSE_FAULT" "sim_hang:0.5,seed:4";
      Fault.from_env ();
      Alcotest.(check (float 0.0)) "valid env installs" 0.5
        (Fault.rate Sim_hang))

let test_spec_round_trip () =
  let spec = "worker_crash:0.05,cache_corrupt:0.1,sim_hang:0.02,seed:7" in
  match Fault.plan_of_spec spec with
  | None -> Alcotest.fail "documented spec parsed to no plan"
  | Some plan -> (
      match Fault.plan_of_spec (Fault.to_spec plan) with
      | None -> Alcotest.fail "rendered spec parsed to no plan"
      | Some plan' ->
          List.iter
            (fun k ->
              Alcotest.(check (float 0.0))
                (Fault.kind_name k ^ " rate survives")
                (Fault.rate ~plan k)
                (Fault.rate ~plan:plan' k))
            Fault.all_kinds;
          (* same seed: the draw streams are identical *)
          for key = 0 to 255 do
            List.iter
              (fun k ->
                Alcotest.(check bool) "draw stream survives"
                  (Fault.fires ~plan k ~key)
                  (Fault.fires ~plan:plan' k ~key))
              Fault.all_kinds
          done)

let test_explicit_plans_are_independent () =
  (* two requests with different plans must not clobber each other, nor
     the installed process plan — the daemon threads ?plan explicitly *)
  let plan_of spec =
    match Fault.plan_of_spec spec with
    | Some p -> p
    | None -> Alcotest.failf "spec %S parsed to no plan" spec
  in
  let a = plan_of "worker_crash:1.0,seed:1" in
  let b = plan_of "sim_hang:1.0,seed:2" in
  with_plan "cache_corrupt:1.0,seed:3" (fun () ->
      let results = Array.make 2 true in
      let drain i plan kind other =
        for key = 0 to 999 do
          if not (Fault.fires ~plan kind ~key) || Fault.fires ~plan other ~key
          then results.(i) <- false
        done
      in
      let t1 = Thread.create (fun () -> drain 0 a Worker_crash Sim_hang) () in
      let t2 = Thread.create (fun () -> drain 1 b Sim_hang Worker_crash) () in
      Thread.join t1;
      Thread.join t2;
      Alcotest.(check bool) "plan a saw only its own rates" true results.(0);
      Alcotest.(check bool) "plan b saw only its own rates" true results.(1);
      (* the installed plan is untouched by the explicit draws *)
      Alcotest.(check (float 0.0)) "installed rate intact" 1.0
        (Fault.rate Cache_corrupt);
      Alcotest.(check (float 0.0)) "installed crash rate intact" 0.0
        (Fault.rate Worker_crash))

let test_diff_clamps () =
  let tally_of injected recovered = { Fault.injected; recovered } in
  let before =
    tally_of
      [ (Fault.Worker_crash, 5); (Fault.Cache_corrupt, 2); (Fault.Sim_hang, 0) ]
      [ (Fault.Worker_crash, 3); (Fault.Cache_corrupt, 0); (Fault.Sim_hang, 0) ]
  in
  let after =
    tally_of
      [ (Fault.Worker_crash, 7); (Fault.Cache_corrupt, 1); (Fault.Sim_hang, 4) ]
      [ (Fault.Worker_crash, 2); (Fault.Cache_corrupt, 0); (Fault.Sim_hang, 1) ]
  in
  let d = Fault.diff ~before ~after in
  Alcotest.(check int) "crash delta" 2
    (List.assoc Fault.Worker_crash d.Fault.injected);
  (* a counter reset between snapshots clamps at 0, never negative *)
  Alcotest.(check int) "corrupt delta clamped" 0
    (List.assoc Fault.Cache_corrupt d.Fault.injected);
  Alcotest.(check int) "hang delta" 4
    (List.assoc Fault.Sim_hang d.Fault.injected);
  Alcotest.(check int) "recovered delta clamped" 0
    (List.assoc Fault.Worker_crash d.Fault.recovered);
  Alcotest.(check int) "hang recovery delta" 1
    (List.assoc Fault.Sim_hang d.Fault.recovered)

let suite =
  [
    Alcotest.test_case "spec parsing accepts the documented form" `Quick
      test_configure_ok;
    Alcotest.test_case "spec parsing rejects malformed plans" `Quick
      test_configure_errors;
    Alcotest.test_case "draws are pure in the key" `Quick
      test_fires_deterministic;
    Alcotest.test_case "rate 0 and rate 1 are exact" `Quick test_fires_extremes;
    Alcotest.test_case "backoff jitter is bounded and deterministic" `Quick
      test_jitter;
    Alcotest.test_case "injected faults are retried to success" `Quick
      test_with_retries_injected;
    Alcotest.test_case "real failures respect the retry budget" `Quick
      test_with_retries_budget;
    Alcotest.test_case "fault tally" `Quick test_tally;
    Alcotest.test_case "malformed HFUSE_FAULT raises, never exits" `Quick
      test_from_env_raises;
    Alcotest.test_case "to_spec/plan_of_spec round trip" `Quick
      test_spec_round_trip;
    Alcotest.test_case "explicit plans never clobber each other" `Quick
      test_explicit_plans_are_independent;
    Alcotest.test_case "tally diff clamps at zero" `Quick test_diff_clamps;
  ]

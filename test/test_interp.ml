(* SIMT interpreter tests: control flow under divergence, shared memory
   and barriers, shuffles, atomics, goto discipline, local arrays,
   deadlock detection, and trace recording (coalescing, bank conflicts). *)

open Cuda
open Gpusim

let launch ?(grid = 1) ?(block = (32, 1, 1)) ?(smem_dynamic = 0)
    ?(trace_blocks = 0) src args =
  let mem = Memory.create () in
  let prog, fn = Test_util.kernel_of_source src in
  let r =
    Launch.launch mem ~prog ~fn ~args:(args mem)
      {
        grid;
        block;
        smem_dynamic;
        trace_blocks;
        l1_sectors = 512;
        exec_blocks = None;
      }
  in
  (mem, r)

let out_i32 mem n =
  Memory.read_int32s mem
    { Value.space = Value.Global; buf = 0; off = 0; elem = Ctype.Int }
    n

(* first allocation is the output unless stated otherwise *)
let alloc_out ?(count = 64) mem =
  Memory.alloc mem ~name:"out" ~elem:Ctype.Int ~count

let test_thread_ids () =
  let mem, _ =
    launch ~block:(8, 4, 1)
      {|
__global__ void k(int* out) {
  int lin = threadIdx.x + threadIdx.y * blockDim.x;
  out[lin] = threadIdx.y * 100 + threadIdx.x;
}
|}
      (fun mem -> [ Value.Ptr (alloc_out mem) ])
  in
  let got = out_i32 mem 32 in
  Alcotest.(check int32) "lin 0" 0l got.(0);
  Alcotest.(check int32) "lin 9 = y1 x1" 101l got.(9);
  Alcotest.(check int32) "lin 31 = y3 x7" 307l got.(31)

let test_divergent_if () =
  let mem, _ =
    launch
      {|
__global__ void k(int* out) {
  int t = threadIdx.x;
  if (t % 2 == 0) { out[t] = 10 + t; } else { out[t] = 20 + t; }
}
|}
      (fun mem -> [ Value.Ptr (alloc_out mem) ])
  in
  let got = out_i32 mem 32 in
  Alcotest.(check int32) "even lane" 10l got.(0);
  Alcotest.(check int32) "odd lane" 21l got.(1)

let test_divergent_loop_break_continue () =
  let mem, _ =
    launch
      {|
__global__ void k(int* out) {
  int t = threadIdx.x;
  int acc = 0;
  for (int i = 0; i < 10; i++) {
    if (i == t) { break; }      // lane t exits after t iterations
    if (i % 2 == 1) { continue; }
    acc = acc + 1;              // counts even i below t
  }
  out[t] = acc;
}
|}
      (fun mem -> [ Value.Ptr (alloc_out mem) ])
  in
  let got = out_i32 mem 32 in
  (* lane t counts even i in [0, min t 10) *)
  Array.iteri
    (fun t v ->
      let expect = (min t 10 + 1) / 2 in
      Alcotest.(check int32)
        (Printf.sprintf "lane %d" t)
        (Int32.of_int expect) v)
    got

let test_early_return () =
  let mem, _ =
    launch
      {|
__global__ void k(int* out) {
  int t = threadIdx.x;
  out[t] = 1;
  if (t < 16) { return; }
  out[t] = 2;
}
|}
      (fun mem -> [ Value.Ptr (alloc_out mem) ])
  in
  let got = out_i32 mem 32 in
  Alcotest.(check int32) "returned lane" 1l got.(3);
  Alcotest.(check int32) "surviving lane" 2l got.(20)

let test_while_and_do_while () =
  let mem, _ =
    launch
      {|
__global__ void k(int* out) {
  int t = threadIdx.x;
  int x = t;
  while (x > 4) { x = x - 3; }
  int y = 0;
  int n = t;
  do { y++; n = n / 2; } while (n > 0);
  out[t] = x * 100 + y;
}
|}
      (fun mem -> [ Value.Ptr (alloc_out mem) ])
  in
  let got = out_i32 mem 32 in
  let host t =
    let x = ref t in
    while !x > 4 do x := !x - 3 done;
    let y = ref 0 and n = ref t in
    let continue_ = ref true in
    while !continue_ do
      incr y;
      n := !n / 2;
      continue_ := !n > 0
    done;
    Int32.of_int ((!x * 100) + !y)
  in
  Array.iteri
    (fun t v -> Alcotest.(check int32) (Printf.sprintf "lane %d" t) (host t) v)
    got

let test_shared_memory_barrier () =
  (* reverse a block's values through shared memory: requires a working
     block-wide barrier across the two warps *)
  let mem, _ =
    launch ~block:(64, 1, 1)
      {|
__global__ void k(int* out) {
  __shared__ int buf[64];
  int t = threadIdx.x;
  buf[t] = t;
  __syncthreads();
  out[t] = buf[63 - t];
}
|}
      (fun mem -> [ Value.Ptr (alloc_out mem) ])
  in
  let got = out_i32 mem 64 in
  Alcotest.(check int32) "reversed 0" 63l got.(0);
  Alcotest.(check int32) "reversed 63" 0l got.(63)

let test_partial_barrier () =
  (* bar.sync 1, 64 synchronises the first 64 threads only; the other
     warp never participates and must not deadlock *)
  let mem, _ =
    launch ~block:(96, 1, 1)
      {|
__global__ void k(int* out) {
  __shared__ int buf[64];
  int t = threadIdx.x;
  if (t >= 64) goto other;
  buf[t] = t * 2;
  asm("bar.sync 1, 64;");
  out[t] = buf[63 - t];
  other:;
  if (t >= 64) { out[t] = -1; }
}
|}
      (fun mem -> [ Value.Ptr (alloc_out ~count:96 mem) ])
  in
  let got = out_i32 mem 96 in
  Alcotest.(check int32) "synced half" 126l got.(0);
  Alcotest.(check int32) "other half" (-1l) got.(70)

let test_deadlock_detection () =
  match
    launch ~block:(64, 1, 1)
      {|
__global__ void k(int* out) {
  if (threadIdx.x < 32) { __syncthreads(); }
  out[0] = 1;
}
|}
      (fun mem -> [ Value.Ptr (alloc_out mem) ])
  with
  | exception Launch.Deadlock msg ->
      Alcotest.(check bool) "names the barrier" true
        (Test_util.contains msg "barrier")
  | exception Interp.Exec_error msg ->
      (* a divergent __syncthreads inside one warp is also illegal *)
      Alcotest.(check bool) "divergent barrier" true
        (Test_util.contains msg "divergent")
  | _ -> Alcotest.fail "expected deadlock"

let test_divergent_goto_rejected () =
  match
    launch
      {|
__global__ void k(int* out) {
  if (threadIdx.x < 16) goto skip;
  out[threadIdx.x] = 1;
  skip:;
}
|}
      (fun mem -> [ Value.Ptr (alloc_out mem) ])
  with
  | exception Interp.Exec_error msg ->
      Alcotest.(check bool) "mentions goto" true
        (Test_util.contains msg "goto")
  | _ -> Alcotest.fail "expected divergent-goto error"

let test_shuffle_xor () =
  let mem, _ =
    launch
      {|
__global__ void k(int* out) {
  int t = threadIdx.x;
  int v = t * 10;
  int o = WARP_SHFL_XOR(v, 1, 32);
  out[t] = o;
}
|}
      (fun mem -> [ Value.Ptr (alloc_out mem) ])
  in
  let got = out_i32 mem 32 in
  Alcotest.(check int32) "lane 0 gets lane 1" 10l got.(0);
  Alcotest.(check int32) "lane 5 gets lane 4" 40l got.(5)

let test_warp_reduction () =
  (* full butterfly reduction: every lane ends with the warp sum *)
  let mem, _ =
    launch
      {|
__global__ void k(int* out) {
  int v = threadIdx.x + 1;
  for (int i = 0; i < 5; i++) {
    v = v + WARP_SHFL_XOR(v, 1 << i, 32);
  }
  out[threadIdx.x] = v;
}
|}
      (fun mem -> [ Value.Ptr (alloc_out mem) ])
  in
  let got = out_i32 mem 32 in
  Array.iter (fun v -> Alcotest.(check int32) "sum 1..32" 528l v) got

let test_atomics () =
  let mem, _ =
    launch ~grid:2 ~block:(64, 1, 1)
      {|
__global__ void k(int* out) {
  atomicAdd(&out[0], 1);
  atomicMax(&out[1], threadIdx.x);
  atomicMin(&out[2], -(int)threadIdx.x);
}
|}
      (fun mem -> [ Value.Ptr (alloc_out mem) ])
  in
  let got = out_i32 mem 3 in
  Alcotest.(check int32) "atomicAdd counts threads" 128l got.(0);
  Alcotest.(check int32) "atomicMax" 63l got.(1);
  Alcotest.(check int32) "atomicMin" (-63l) got.(2)

let test_shared_atomics () =
  let mem, _ =
    launch ~block:(128, 1, 1)
      {|
__global__ void k(int* out) {
  __shared__ int c[4];
  if (threadIdx.x < 4) { c[threadIdx.x] = 0; }
  __syncthreads();
  atomicAdd(&c[threadIdx.x % 4], 1);
  __syncthreads();
  if (threadIdx.x < 4) { out[threadIdx.x] = c[threadIdx.x]; }
}
|}
      (fun mem -> [ Value.Ptr (alloc_out mem) ])
  in
  let got = out_i32 mem 4 in
  Array.iter (fun v -> Alcotest.(check int32) "32 per bin" 32l v) got

let test_local_arrays () =
  let mem, _ =
    launch
      {|
__global__ void k(int* out) {
  int m[8];
  for (int i = 0; i < 8; i++) { m[i] = threadIdx.x * 8 + i; }
  int acc = 0;
  for (int i = 0; i < 8; i++) { acc += m[i]; }
  out[threadIdx.x] = acc;
}
|}
      (fun mem -> [ Value.Ptr (alloc_out mem) ])
  in
  let got = out_i32 mem 32 in
  Array.iteri
    (fun t v ->
      let expect = (8 * 8 * t) + 28 in
      Alcotest.(check int32) "per-lane array" (Int32.of_int expect) v)
    got

let test_grid_stride_and_blockidx () =
  let mem, _ =
    launch ~grid:4 ~block:(32, 1, 1)
      {|
__global__ void k(int* out, int n) {
  for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < n;
       i += blockDim.x * gridDim.x) {
    out[i] = i * 3;
  }
}
|}
      (fun mem -> [ Value.Ptr (alloc_out ~count:300 mem); Kernel_corpus.Workload.iv 300 ])
  in
  let got = out_i32 mem 300 in
  Alcotest.(check int32) "first" 0l got.(0);
  Alcotest.(check int32) "middle" (Int32.of_int (157 * 3)) got.(157);
  Alcotest.(check int32) "last" (Int32.of_int (299 * 3)) got.(299)

let test_extern_shared_reinterpret () =
  let mem, _ =
    launch ~smem_dynamic:128
      {|
__global__ void k(int* out) {
  extern __shared__ unsigned char raw[];
  float* f = (float*)raw;
  int* i = (int*)raw;
  if (threadIdx.x == 0) { f[0] = 1.0f; }
  __syncthreads();
  out[threadIdx.x] = i[0];
}
|}
      (fun mem -> [ Value.Ptr (alloc_out mem) ])
  in
  let got = out_i32 mem 32 in
  Alcotest.(check int32) "bit pattern of 1.0f" 0x3F800000l got.(0)

(* -- trace recording ---------------------------------------------------- *)

let count_instr pred (tr : Trace.block array) =
  Array.fold_left
    (fun acc block ->
      Array.fold_left
        (fun acc t -> Trace.fold (fun a i -> if pred i then a + 1 else a) acc t)
        acc block)
    0 tr

let test_coalescing () =
  (* coalesced loads: 32 consecutive floats = 4 sectors; strided by 32
     floats = 32 distinct sectors *)
  let _, r =
    launch ~trace_blocks:1
      {|
__global__ void k(int* out, float* a) {
  float x = a[threadIdx.x];           // coalesced
  float y = a[threadIdx.x * 32];      // strided
  out[threadIdx.x] = (int)(x + y);
}
|}
      (fun mem ->
        let out = alloc_out mem in
        let a = Memory.alloc mem ~name:"a" ~elem:Ctype.Float ~count:1024 in
        [ Value.Ptr out; Value.Ptr a ])
  in
  let tr = r.Launch.block_traces in
  let loads =
    Array.fold_left
      (fun acc t ->
        Trace.fold
          (fun a i ->
            match i with Instr.Ld_global (m, h) -> (m + h) :: a | _ -> a)
          acc t)
      [] tr.(0)
  in
  Alcotest.(check (list int)) "txns per load (reverse order)" [ 32; 4 ]
    loads

let test_bank_conflicts () =
  let _, r =
    launch ~trace_blocks:1
      {|
__global__ void k(int* out) {
  __shared__ int buf[1024];
  buf[threadIdx.x] = 1;              // conflict-free
  buf[threadIdx.x * 32] = 2;         // 32-way conflict
  buf[0] = 3;                        // broadcast (same word)
  out[threadIdx.x] = buf[threadIdx.x];
}
|}
      (fun mem -> [ Value.Ptr (alloc_out mem) ])
  in
  let stores =
    Array.fold_left
      (fun acc t ->
        Trace.fold
          (fun a i -> match i with Instr.St_shared n -> n :: a | _ -> a)
          acc t)
      [] r.Launch.block_traces.(0)
  in
  Alcotest.(check (list int)) "conflict ways (reverse order)" [ 1; 32; 1 ]
    stores

let test_barrier_in_trace () =
  let _, r =
    launch ~trace_blocks:1 ~block:(64, 1, 1)
      {|
__global__ void k(int* out) {
  __syncthreads();
  out[threadIdx.x] = 0;
}
|}
      (fun mem -> [ Value.Ptr (alloc_out mem) ])
  in
  Alcotest.(check int) "one Bar per warp" 2
    (count_instr
       (function Instr.Bar (0, 64) -> true | _ -> false)
       r.Launch.block_traces)

let test_determinism () =
  let run () =
    let mem, _ =
      launch ~grid:2 ~block:(64, 1, 1)
        {|
__global__ void k(int* out) {
  atomicAdd(&out[threadIdx.x % 8], threadIdx.x + blockIdx.x);
}
|}
        (fun mem -> [ Value.Ptr (alloc_out mem) ])
    in
    out_i32 mem 8
  in
  Alcotest.(check (array int32)) "bitwise deterministic" (run ()) (run ())

let test_loop_fuel () =
  match
    launch
      {|
__global__ void k(int* out) {
  while (true) { out[0] = out[0] + 1; }
}
|}
      (fun mem -> [ Value.Ptr (alloc_out mem) ])
  with
  | exception Launch.Sim_timeout { kernel; fuel; block } ->
      Alcotest.(check string) "kernel name" "k" kernel;
      Alcotest.(check bool) "positive fuel" true (fuel > 0);
      Alcotest.(check int) "block 0" 0 block
  | _ -> Alcotest.fail "expected loop-fuel exhaustion"

let suite =
  [
    Alcotest.test_case "thread ids" `Quick test_thread_ids;
    Alcotest.test_case "divergent if" `Quick test_divergent_if;
    Alcotest.test_case "divergent loop/break/continue" `Quick
      test_divergent_loop_break_continue;
    Alcotest.test_case "early return" `Quick test_early_return;
    Alcotest.test_case "while and do-while" `Quick test_while_and_do_while;
    Alcotest.test_case "shared memory + barrier" `Quick
      test_shared_memory_barrier;
    Alcotest.test_case "partial barrier" `Quick test_partial_barrier;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "divergent goto rejected" `Quick
      test_divergent_goto_rejected;
    Alcotest.test_case "shuffle xor" `Quick test_shuffle_xor;
    Alcotest.test_case "warp reduction" `Quick test_warp_reduction;
    Alcotest.test_case "global atomics" `Quick test_atomics;
    Alcotest.test_case "shared atomics" `Quick test_shared_atomics;
    Alcotest.test_case "local arrays" `Quick test_local_arrays;
    Alcotest.test_case "grid-stride loop" `Quick test_grid_stride_and_blockidx;
    Alcotest.test_case "extern shared reinterpret" `Quick
      test_extern_shared_reinterpret;
    Alcotest.test_case "coalescing analysis" `Quick test_coalescing;
    Alcotest.test_case "bank conflicts" `Quick test_bank_conflicts;
    Alcotest.test_case "barrier in trace" `Quick test_barrier_in_trace;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "loop fuel" `Quick test_loop_fuel;
  ]

(* Thread-space partition enumeration and the Fig. 6 search, driven by
   synthetic cost functions. *)

open Hfuse_core

let k_tunable =
  {|
__global__ void t(float* a, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) { a[i] = a[i] + 1.0f; }
}
|}

let info = Test_util.info_of_source

(* 32 regs/thread: high enough that the register bound r0 (32 at full
   SM thread load) stays below the fused estimate (36) — the search
   skips the bounded profile when the bound would not constrain the
   kernel, and these tests want both variants profiled *)
let tun ?(block = (256, 1, 1)) ?(regs = 32) () =
  info ~block ~regs ~tunability:(Kernel_info.Tunable { multiple_of = 32 })
    k_tunable

let fixed d = info ~block:(d, 1, 1) ~tunability:Kernel_info.Fixed k_tunable

(* -- Partition --------------------------------------------------------- *)

let test_enumerate_tunable () =
  let parts = Partition.enumerate (tun ()) (tun ()) ~d0:1024 in
  Alcotest.(check int) "7 partitions at granularity 128" 7
    (List.length parts);
  List.iter
    (fun { Partition.d1; d2 } ->
      Alcotest.(check int) "sums to d0" 1024 (d1 + d2);
      Alcotest.(check int) "d1 multiple of 128" 0 (d1 mod 128))
    parts

let test_enumerate_fixed_pair () =
  let parts = Partition.enumerate (fixed 256) (fixed 128) ~d0:999 in
  Alcotest.(check int) "single partition" 1 (List.length parts);
  let p = List.hd parts in
  Alcotest.(check int) "d1 native" 256 p.Partition.d1;
  Alcotest.(check int) "d2 native" 128 p.Partition.d2

let test_enumerate_fixed_oversized () =
  Alcotest.(check int) "fixed pair too big" 0
    (List.length (Partition.enumerate (fixed 768) (fixed 512) ~d0:1024))

let test_enumerate_mixed () =
  (* fixed 128 + tunable: partition fixed at the fixed side's size *)
  let parts = Partition.enumerate (fixed 128) (tun ()) ~d0:512 in
  Alcotest.(check int) "one partition" 1 (List.length parts);
  Alcotest.(check int) "tunable takes rest" 384 (List.hd parts).Partition.d2

let test_enumerate_2d_constraint () =
  (* a (x, 16) kernel needs d1 divisible by 16 — all multiples of 128
     qualify, but the constraint path must be exercised *)
  let bn = tun ~block:(32, 16, 1) () in
  let parts = Partition.enumerate bn (tun ()) ~d0:1024 in
  Alcotest.(check int) "still 7" 7 (List.length parts)

let test_enumerate_max_threads () =
  (* regression: the block-size cap is a parameter, not a hard-coded
     1024 — a fixed pair exceeding a smaller device cap is rejected *)
  Alcotest.(check int) "fixed pair over cap" 0
    (List.length
       (Partition.enumerate ~max_threads:256 (fixed 256) (fixed 128) ~d0:0));
  Alcotest.(check int) "fixed pair within cap" 1
    (List.length
       (Partition.enumerate ~max_threads:384 (fixed 256) (fixed 128) ~d0:0))

let test_naive_even () =
  match Partition.naive (tun ()) (tun ()) ~d0:1024 with
  | Some { Partition.d1 = 512; d2 = 512 } -> ()
  | Some p -> Alcotest.failf "expected 512/512, got %d/%d" p.d1 p.d2
  | None -> Alcotest.fail "expected a partition"

(* -- Search ------------------------------------------------------------ *)

let lim = Occupancy.pascal_volta_limits

let test_search_minimises () =
  (* synthetic cost: prefers d1 = 768, and the register bound always
     helps by 10% *)
  let profile (f : Hfuse.t) ~reg_bound =
    let base = float_of_int (abs (f.d1 - 768) + 100) in
    match reg_bound with Some _ -> base *. 0.9 | None -> base
  in
  let r = Search.search ~limits:lim ~profile ~d0:1024 (tun ()) (tun ()) in
  Alcotest.(check int) "best d1" 768 r.best.fused.d1;
  Alcotest.(check bool) "bound chosen" true
    (r.best.config.reg_bound <> None);
  (* every partition was profiled both ways (bound computable here) *)
  Alcotest.(check int) "candidate count" 14 (List.length r.all)

let test_search_prefers_unbounded_when_better () =
  let profile (f : Hfuse.t) ~reg_bound =
    let base = float_of_int (abs (f.d1 - 512) + 100) in
    match reg_bound with Some _ -> base *. 2.0 | None -> base
  in
  let r = Search.search ~limits:lim ~profile ~d0:1024 (tun ()) (tun ()) in
  Alcotest.(check int) "best d1" 512 r.best.fused.d1;
  Alcotest.(check (option int)) "no bound" None r.best.config.reg_bound

let test_search_no_partition () =
  match
    Search.search ~limits:lim
      ~profile:(fun _ ~reg_bound:_ -> 1.0)
      ~d0:1024 (fixed 768) (fixed 512)
  with
  | exception Search.No_valid_partition _ -> ()
  | _ -> Alcotest.fail "expected No_valid_partition"

let test_search_counts_profile_calls () =
  let calls = ref 0 in
  let profile _ ~reg_bound:_ =
    incr calls;
    1.0
  in
  ignore (Search.search ~limits:lim ~profile ~d0:512 (tun ()) (tun ()));
  (* 3 partitions (128..384) x 2 variants *)
  Alcotest.(check int) "profile calls" 6 !calls

let test_search_records_rejections () =
  (* a kernel carrying a barrier that waits for 256 threads: the
     d1 = 128 partition is unsafe and must never reach the profiler *)
  let k_wide =
    {|
__global__ void wide(float* a, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  asm("bar.sync 5, 256;");
  if (i < n) { a[i] = a[i] + 1.0f; }
}
|}
  in
  let k1 =
    info ~block:(256, 1, 1) ~regs:32
      ~tunability:(Kernel_info.Tunable { multiple_of = 32 })
      k_wide
  in
  let profiled = ref [] in
  let profile (f : Hfuse.t) ~reg_bound:_ =
    profiled := f.d1 :: !profiled;
    1.0
  in
  let r = Search.search ~limits:lim ~profile ~d0:512 k1 (tun ()) in
  Alcotest.(check int) "one rejection" 1 (List.length r.rejected);
  let p, ds = List.hd r.rejected in
  Alcotest.(check int) "rejected d1" 128 p.Partition.d1;
  Alcotest.(check bool) "rejected with errors" false
    (Hfuse_analysis.Diag.is_clean ds);
  Alcotest.(check bool) "never profiled" false (List.mem 128 !profiled);
  Alcotest.(check int) "2 safe partitions x 2 variants" 4
    (List.length r.all)

let test_search_skips_noop_bound () =
  (* regression: at 8 regs/thread the bound r0 (32) sits above the fused
     estimate (12) — profiling the bounded build would re-measure the
     identical kernel, so only the unbounded variant runs *)
  let calls = ref 0 in
  let profile _ ~reg_bound =
    incr calls;
    Alcotest.(check (option int)) "only unbounded" None reg_bound;
    1.0
  in
  ignore
    (Search.search ~limits:lim ~profile ~d0:512 (tun ~regs:8 ())
       (tun ~regs:8 ()));
  Alcotest.(check int) "3 partitions x 1 variant" 3 !calls

(* -- The batched phase-2 evaluator ------------------------------------- *)

let sig_of (r : Search.result) =
  List.map
    (fun (c : Search.candidate) ->
      (c.fused.d1, c.fused.d2, c.config.reg_bound, c.time))
    r.all

let cand_sig (c : Search.candidate) =
  (c.fused.d1, c.fused.d2, c.config.reg_bound, c.time)

let test_search_batch_matches_serial () =
  let cost (f : Hfuse.t) ~reg_bound =
    let base = float_of_int (abs (f.d1 - 768) + 100) in
    match reg_bound with
    | Some r -> (base *. 0.9) +. float_of_int (r mod 7)
    | None -> base
  in
  let serial = Search.search ~limits:lim ~profile:cost ~d0:1024 (tun ()) (tun ()) in
  let batches = ref 0 and direct = ref 0 in
  let profile_batch batch =
    incr batches;
    List.map
      (fun (f, (c : Search.config)) -> cost f ~reg_bound:c.reg_bound)
      batch
  in
  let profile f ~reg_bound =
    incr direct;
    cost f ~reg_bound
  in
  let r =
    Search.search ~limits:lim ~profile_batch ~profile ~d0:1024 (tun ())
      (tun ())
  in
  Alcotest.(check int) "whole candidate list in one batch" 1 !batches;
  Alcotest.(check int) "per-candidate profile never called" 0 !direct;
  Alcotest.(check bool) "all identical" true (sig_of r = sig_of serial);
  Alcotest.(check bool) "best identical" true
    (cand_sig r.best = cand_sig serial.best)

let test_search_batch_length_mismatch () =
  (* the hook must return one time per candidate, in order *)
  let profile_batch batch = List.map (fun _ -> 1.0) (List.tl batch) in
  match
    Search.search ~limits:lim ~profile_batch
      ~profile:(fun _ ~reg_bound:_ -> 1.0)
      ~d0:1024 (tun ()) (tun ())
  with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* fanning the batch over a domain pool is bit-identical to the serial
   path, for any worker count and any (pure) cost surface *)
let pool_batch_prop =
  QCheck.Test.make
    ~name:"batched search over a domain pool is bit-identical to serial"
    ~count:10
    QCheck.(pair (int_range 1 8) (int_range 0 1000))
    (fun (jobs, seed) ->
      let cost (f : Hfuse.t) ~reg_bound =
        let r = match reg_bound with None -> 1 | Some r -> r + 2 in
        float_of_int ((((f.d1 * 37) + (r * 101) + seed) mod 997) + 3)
      in
      let serial =
        Search.search ~limits:lim ~profile:cost ~d0:1024 (tun ()) (tun ())
      in
      let profile_batch batch =
        Hfuse_parallel.Pool.with_pool jobs (fun p ->
            Hfuse_parallel.Pool.map_list p
              (fun (f, (c : Search.config)) -> cost f ~reg_bound:c.reg_bound)
              batch)
      in
      let r =
        Search.search ~limits:lim ~profile_batch ~profile:cost ~d0:1024
          (tun ()) (tun ())
      in
      sig_of r = sig_of serial && cand_sig r.best = cand_sig serial.best)

(* -- phase 1.5: analytical ranking and top-k pruning ------------------- *)

(* a deterministic stand-in for the cost model: arbitrary but fixed
   scores, decorrelated from the cost surface by the seed *)
let mock_rank seed cands =
  List.map
    (fun ((f : Hfuse.t), (c : Search.config)) ->
      let r = match c.reg_bound with None -> 1 | Some r -> r + 2 in
      float_of_int ((((f.d1 * 13) + (r * 7) + seed) mod 101) + 1))
    cands

let conf_sig (c : Search.candidate) =
  (c.fused.d1, c.fused.d2, c.config.reg_bound)

let rec is_subseq xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _, [] -> false
  | x :: xt, y :: yt -> if x = y then is_subseq xt yt else is_subseq xs yt

let test_prune_keeps_top_k () =
  let cost (f : Hfuse.t) ~reg_bound =
    let r = match reg_bound with None -> 0 | Some r -> r in
    float_of_int (abs (f.d1 - 640) + r + 1)
  in
  let exhaustive =
    Search.search ~limits:lim ~profile:cost ~d0:1024 (tun ()) (tun ())
  in
  let n = List.length exhaustive.all in
  let rank = mock_rank 0 in
  let scores =
    rank
      (List.map
         (fun (c : Search.candidate) -> (c.fused, c.config))
         exhaustive.all)
  in
  let k = 3 in
  let r =
    Search.search ~limits:lim ~profile:cost ~rank ~top_k:k ~d0:1024 (tun ())
      (tun ())
  in
  Alcotest.(check int) "window size" k (List.length r.all);
  Alcotest.(check int) "rest pruned, un-profiled" (n - k)
    (List.length r.pruned);
  Alcotest.(check int) "survivor scores recorded" k (List.length r.scores);
  (* the survivors are exactly the k best-scored; ties keep search
     order *)
  let kth = List.nth (List.sort compare scores) (k - 1) in
  List.iter
    (fun s ->
      Alcotest.(check bool) "survivor within the score window" true (s <= kth))
    r.scores;
  List.iter
    (fun (_, _, s) ->
      Alcotest.(check bool) "pruned outside the score window" true (s >= kth))
    r.pruned;
  (* survivors keep search order and their profiled times are the
     exhaustive run's times for the same configurations *)
  Alcotest.(check bool) "survivors are a subsequence of the sweep" true
    (is_subseq (List.map cand_sig r.all) (sig_of exhaustive));
  (* the best is the fastest among the survivors only *)
  List.iter
    (fun (c : Search.candidate) ->
      Alcotest.(check bool) "best no slower than any survivor" true
        (r.best.time <= c.time))
    r.all

(* a top-k at or above the candidate count — or an absent rank — must
   leave the search bit-identical to the exhaustive sweep, for any
   worker count (the ISSUE's prune-identity property) *)
let prune_identity_prop =
  QCheck.Test.make
    ~name:"non-binding top-k is bit-identical to the exhaustive sweep"
    ~count:10
    QCheck.(triple (int_range 1 4) (int_range 0 1000) (int_range 0 20))
    (fun (jobs, seed, slack) ->
      let cost (f : Hfuse.t) ~reg_bound =
        let r = match reg_bound with None -> 1 | Some r -> r + 2 in
        float_of_int ((((f.d1 * 37) + (r * 101) + seed) mod 997) + 3)
      in
      let serial =
        Search.search ~limits:lim ~profile:cost ~d0:1024 (tun ()) (tun ())
      in
      let n = List.length serial.all in
      let profile_batch batch =
        Hfuse_parallel.Pool.with_pool jobs (fun p ->
            Hfuse_parallel.Pool.map_list p
              (fun (f, (c : Search.config)) -> cost f ~reg_bound:c.reg_bound)
              batch)
      in
      let ranked =
        Search.search ~limits:lim ~profile_batch ~profile:cost
          ~rank:(mock_rank seed) ~top_k:(n + slack) ~d0:1024 (tun ()) (tun ())
      in
      let unranked =
        Search.search ~limits:lim ~profile_batch ~profile:cost
          ~top_k:1 (* no rank: scores are empty, top_k cannot bite *)
          ~d0:1024 (tun ()) (tun ())
      in
      sig_of ranked = sig_of serial
      && cand_sig ranked.best = cand_sig serial.best
      && ranked.pruned = []
      && List.length ranked.scores = n
      && sig_of unranked = sig_of serial
      && unranked.pruned = [])

(* any top-k yields a window of min(n, max(1, k)) survivors, and
   survivors + pruned partition the exhaustive candidate set *)
let prune_window_prop =
  QCheck.Test.make
    ~name:"top-k window size and candidate-set partition" ~count:20
    QCheck.(pair (int_range (-2) 20) (int_range 0 1000))
    (fun (k, seed) ->
      let cost (f : Hfuse.t) ~reg_bound =
        let r = match reg_bound with None -> 1 | Some r -> r + 2 in
        float_of_int ((((f.d1 * 37) + (r * 101) + seed) mod 997) + 3)
      in
      let exhaustive =
        Search.search ~limits:lim ~profile:cost ~d0:1024 (tun ()) (tun ())
      in
      let n = List.length exhaustive.all in
      let r =
        Search.search ~limits:lim ~profile:cost ~rank:(mock_rank seed)
          ~top_k:k ~d0:1024 (tun ()) (tun ())
      in
      let kept = List.map conf_sig r.all in
      let cut =
        List.map
          (fun ((f : Hfuse.t), (c : Search.config), _) ->
            (f.d1, f.d2, c.reg_bound))
          r.pruned
      in
      List.length kept = min n (max 1 k)
      && List.sort compare (kept @ cut)
         = List.sort compare (List.map conf_sig exhaustive.all))

let test_naive_search () =
  match Search.naive ~d0:1024 (tun ()) (tun ()) with
  | Some f ->
      Alcotest.(check int) "even split d1" 512 f.d1;
      Alcotest.(check int) "even split d2" 512 f.d2
  | None -> Alcotest.fail "expected naive fusion"

(* partitions must respect tunability under random d0 *)
let partition_prop =
  QCheck.Test.make ~name:"enumerated partitions are well-formed" ~count:100
    QCheck.(int_range 2 8)
    (fun k ->
      let d0 = k * 128 in
      let parts = Partition.enumerate (tun ()) (tun ()) ~d0 in
      List.length parts = k - 1
      && List.for_all
           (fun { Partition.d1; d2 } ->
             d1 > 0 && d2 > 0 && d1 + d2 = d0 && d1 mod 128 = 0)
           parts)

let suite =
  [
    Alcotest.test_case "enumerate tunable" `Quick test_enumerate_tunable;
    Alcotest.test_case "enumerate fixed pair" `Quick test_enumerate_fixed_pair;
    Alcotest.test_case "enumerate fixed oversized" `Quick
      test_enumerate_fixed_oversized;
    Alcotest.test_case "enumerate mixed" `Quick test_enumerate_mixed;
    Alcotest.test_case "enumerate 2-D constraint" `Quick
      test_enumerate_2d_constraint;
    Alcotest.test_case "enumerate max-threads cap" `Quick
      test_enumerate_max_threads;
    Alcotest.test_case "naive even split" `Quick test_naive_even;
    Alcotest.test_case "search minimises" `Quick test_search_minimises;
    Alcotest.test_case "search prefers unbounded" `Quick
      test_search_prefers_unbounded_when_better;
    Alcotest.test_case "search without partitions" `Quick
      test_search_no_partition;
    Alcotest.test_case "search profile-call count" `Quick
      test_search_counts_profile_calls;
    Alcotest.test_case "search records verifier rejections" `Quick
      test_search_records_rejections;
    Alcotest.test_case "search skips no-op register bound" `Quick
      test_search_skips_noop_bound;
    Alcotest.test_case "search batch hook matches serial" `Quick
      test_search_batch_matches_serial;
    Alcotest.test_case "search batch length mismatch" `Quick
      test_search_batch_length_mismatch;
    Alcotest.test_case "prune keeps the top-k best-scored" `Quick
      test_prune_keeps_top_k;
    Alcotest.test_case "naive search" `Quick test_naive_search;
  ]
  @ Test_util.qcheck_cases
      [ partition_prop; pool_batch_prop; prune_identity_prop;
        prune_window_prop ]

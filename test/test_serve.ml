(* The serve daemon: wire-protocol round trips, pre-shaped error
   responses, per-request settings resolution, fault containment,
   admission control, and the acceptance bar — concurrent daemon
   searches byte-identical to the one-shot engine. *)

module Ops = Hfuse_serve.Ops
module Protocol = Hfuse_serve.Protocol
module Server = Hfuse_serve.Server
module Client = Hfuse_serve.Client
module Settings = Hfuse_profiler.Settings
module Registry = Kernel_corpus.Registry
module Fault = Hfuse_fault.Fault
module J = Hfuse_profiler.Report.Json

(* Unix-domain socket paths are length-limited (~108 bytes), so the
   harness binds under the system temp dir, never the build sandbox. *)
let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "hsrv-%d-%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    Filename.concat dir "d.sock"

let search_params : Ops.search_params =
  {
    s_arch = Gpusim.Arch.gtx1080ti;
    s_k1 = Registry.find_exn "Maxpool";
    s_k2 = Registry.find_exn "Upsample";
    s_size1 = Some 32;
    s_size2 = Some 32;
    s_emit = true;
    s_jobs = 1;
    s_top_k = None;
    s_repair = false;
  }

let search_request ?(priority = 0) ?(settings = Protocol.no_overrides) id :
    Protocol.request =
  { id; priority; settings; verb = Protocol.Work (Ops.Search search_params) }

(* Force the persistent cache off for every daemon request so the
   identity comparison never depends on leftover state in the build
   directory; the in-memory warm memos are exactly what is under test. *)
let no_disk_cache = { Protocol.no_overrides with sp_cache_dir = Some None }

(* ------------------------------------------------------------------ *)
(* Wire format                                                         *)

let fuse_request : Protocol.request =
  let src name body : Ops.kernel_src =
    { ks_path = name; ks_source = body; ks_block = 128; ks_smem = 16; ks_regs = Some 40 }
  in
  {
    id = "rt-fuse";
    priority = 3;
    settings =
      {
        sp_trace_blocks = Some 2;
        sp_sim_fuel = Some 100000;
        sp_trace_mem_mb = Some 64;
        sp_cache_dir = Some (Some "/tmp/cache");
        sp_fault = Some (Some "sim_hang:0.25,seed:9");
      };
    verb =
      Protocol.Work
        (Ops.Fuse
           {
             f_k1 = src "a.cu" "__global__ void a(int *p) {\n  p[0] = 1;\n}\n";
             f_k2 = src "b.cu" "__global__ void b(int *p) {\n  p[1] = 2;\n}\n";
             f_grid = 8;
           });
  }

let test_request_round_trip () =
  let check_fixed_point (req : Protocol.request) =
    let line = Protocol.request_to_line req in
    Alcotest.(check bool)
      "single line" false
      (String.contains line '\n');
    match Protocol.parse_request line with
    | Error _ -> Alcotest.failf "reparse rejected %s" line
    | Ok req' ->
        Alcotest.(check string) "id survives" req.id req'.id;
        Alcotest.(check int) "priority survives" req.priority req'.priority;
        (* the serializer is a fixed point of parse . serialize *)
        Alcotest.(check string)
          "canonical form" line
          (Protocol.request_to_line req')
  in
  check_fixed_point fuse_request;
  check_fixed_point (search_request ~priority:7 ~settings:no_disk_cache "rt-s");
  check_fixed_point { id = "rt-ping"; priority = 0;
                      settings = Protocol.no_overrides; verb = Protocol.Ping };
  check_fixed_point { id = "rt-stats"; priority = 1;
                      settings = Protocol.no_overrides; verb = Protocol.Stats }

let test_response_round_trip () =
  let resp =
    Protocol.Result
      {
        id = "r1";
        exit_code = 1;
        output = "line one\nline \"two\"\n\ttab\n";
        log = "hfuse: some diagnostic\n";
        telemetry = J.Obj [ ("n", J.Int 3); ("t", J.Float 0.5) ];
      }
  in
  let line = Protocol.response_to_line resp in
  Alcotest.(check bool) "single line" false (String.contains line '\n');
  (match Protocol.parse_response line with
  | Error e -> Alcotest.failf "reparse rejected: %s" e
  | Ok (Protocol.Result r) ->
      Alcotest.(check string) "id" "r1" r.id;
      Alcotest.(check int) "exit code" 1 r.exit_code;
      Alcotest.(check string) "output bytes" "line one\nline \"two\"\n\ttab\n"
        r.output;
      Alcotest.(check string) "log bytes" "hfuse: some diagnostic\n" r.log
  | Ok (Protocol.Failure _) -> Alcotest.fail "Result became Failure");
  let fail_line =
    Protocol.response_to_line
      (Protocol.failure ~id:"r2" Protocol.Overloaded "queue full")
  in
  match Protocol.parse_response fail_line with
  | Ok (Protocol.Failure f) ->
      Alcotest.(check (option string)) "id echoed" (Some "r2") f.id;
      Alcotest.(check string) "code" "overloaded" f.code;
      Alcotest.(check string) "message" "queue full" f.message
  | Ok (Protocol.Result _) -> Alcotest.fail "Failure became Result"
  | Error e -> Alcotest.failf "reparse rejected: %s" e

let expect_failure line code =
  match Protocol.parse_request line with
  | Ok _ -> Alcotest.failf "accepted %s" line
  | Error (Protocol.Result _) -> Alcotest.fail "error shaped as Result"
  | Error (Protocol.Failure f) ->
      Alcotest.(check string) (Printf.sprintf "code for %s" line) code f.code;
      f.id

let test_parse_errors_pre_shaped () =
  let id = expect_failure "this is not json" "parse_error" in
  Alcotest.(check (option string)) "no id readable" None id;
  let id = expect_failure {|{"id":"z","verb":"frobnicate","params":{}}|}
      "unknown_verb" in
  Alcotest.(check (option string)) "id echoed" (Some "z") id;
  ignore (expect_failure {|{"id":"z","verb":"search","params":{}}|}
            "invalid_request");
  ignore (expect_failure
            {|{"id":"z","verb":"search","params":{"k1":"Maxpool","k2":"NoSuchKernel"}}|}
            "invalid_request");
  ignore (expect_failure {|{"verb":"ping"}|} "invalid_request");
  ignore (expect_failure {|[1,2,3]|} "invalid_request")

(* ------------------------------------------------------------------ *)
(* Per-request settings                                                *)

let test_resolve_settings () =
  let spec =
    {
      Protocol.no_overrides with
      sp_trace_blocks = Some 3;
      sp_fault = Some (Some "sim_hang:0.25,seed:9");
    }
  in
  let s = Protocol.resolve_settings spec in
  Alcotest.(check int) "trace blocks override" 3 s.Settings.trace_blocks;
  (match s.Settings.fault with
  | None -> Alcotest.fail "fault plan dropped"
  | Some plan ->
      Alcotest.(check (float 0.0)) "plan rate" 0.25
        (Fault.rate ~plan Fault.Sim_hang));
  (* an explicit null forces the fault plan off even when the process
     has one installed — the daemon-safety rule that broke under the
     old ambient-global scheme *)
  (match Fault.configure "worker_crash:0.5,seed:3" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "configure: %s" e);
  Fun.protect ~finally:Fault.clear (fun () ->
      let s =
        Protocol.resolve_settings
          { Protocol.no_overrides with sp_fault = Some None }
      in
      Alcotest.(check bool) "null disables inherited plan" true
        (s.Settings.fault = None);
      let s = Protocol.resolve_settings Protocol.no_overrides in
      Alcotest.(check bool) "absent inherits installed plan" true
        (s.Settings.fault <> None));
  (* malformed specs raise instead of exiting the process *)
  (try
     ignore (Protocol.resolve_settings
               { Protocol.no_overrides with
                 sp_fault = Some (Some "bogus_kind:0.5") });
     Alcotest.fail "bad fault spec accepted"
   with Fault.Invalid_spec _ -> ());
  try
    ignore (Protocol.resolve_settings
              { Protocol.no_overrides with sp_trace_blocks = Some 0 });
    Alcotest.fail "trace_blocks 0 accepted"
  with Invalid_argument _ -> ()

let test_spec_of_settings_round_trip () =
  let plan =
    match Fault.plan_of_spec "cache_corrupt:0.125,seed:11" with
    | Some p -> p
    | None -> Alcotest.fail "plan_of_spec returned None"
  in
  let s =
    Settings.resolve ~trace_blocks:2 ~sim_fuel:50000 ~cache_dir:None
      ~fault:(Some plan) ()
  in
  let s' = Protocol.resolve_settings (Protocol.spec_of_settings s) in
  Alcotest.(check int) "trace blocks" s.Settings.trace_blocks
    s'.Settings.trace_blocks;
  Alcotest.(check int) "sim fuel" s.Settings.sim_fuel s'.Settings.sim_fuel;
  Alcotest.(check bool) "cache off" true (s'.Settings.cache_dir = None);
  match s'.Settings.fault with
  | None -> Alcotest.fail "fault plan lost in transit"
  | Some plan' ->
      Alcotest.(check string) "plan spec survives" (Fault.to_spec plan)
        (Fault.to_spec plan')

(* ------------------------------------------------------------------ *)
(* Daemon integration                                                  *)

(* One raw connection, many request lines: responses may come back in
   any order, so collect them all and index by id. *)
let burst ~socket lines =
  let addr = Unix.ADDR_UNIX socket in
  let ic, oc = Unix.open_connection addr in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.shutdown_connection ic with _ -> ());
      close_in_noerr ic)
    (fun () ->
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines;
      flush oc;
      List.map (fun _ -> input_line ic) lines)

let call_exn ~socket req =
  match Client.call ~socket req with
  | Ok resp -> resp
  | Error e -> Alcotest.failf "transport: %s" e

(* [Protocol.response]'s payloads are inlined records, which cannot
   escape a match; project the success arm into a plain record. *)
type result_fields = {
  rid : string;
  rexit : int;
  rout : string;
  rtel : J.t;
}

let expect_result = function
  | Protocol.Result { id; exit_code; output; telemetry; _ } ->
      { rid = id; rexit = exit_code; rout = output; rtel = telemetry }
  | Protocol.Failure f ->
      Alcotest.failf "unexpected failure %s: %s" f.code f.message

let test_daemon_end_to_end () =
  let socket = fresh_socket () in
  let server = Server.start { socket_path = socket; jobs = 2; queue_limit = 16 } in
  Fun.protect
    ~finally:(fun () -> try Server.stop server with _ -> ())
    (fun () ->
      (* a second daemon on a live socket is refused *)
      (try
         ignore (Server.create { socket_path = socket; jobs = 1; queue_limit = 1 });
         Alcotest.fail "second daemon bound a live socket"
       with Failure _ -> ());
      let ping =
        expect_result
          (call_exn ~socket
             { id = "p0"; priority = 0; settings = Protocol.no_overrides;
               verb = Protocol.Ping })
      in
      Alcotest.(check string) "pong" "pong\n" ping.rout;
      (* fault containment: a malformed line costs one error response *)
      (match burst ~socket [ "this is not json" ] with
      | [ line ] -> (
          match Protocol.parse_response line with
          | Ok (Protocol.Failure f) ->
              Alcotest.(check string) "parse error code" "parse_error" f.code
          | _ -> Alcotest.fail "malformed line not answered with parse_error")
      | _ -> Alcotest.fail "expected one response");
      (* ... as does an injected bad fault spec ... *)
      (match
         call_exn ~socket
           (search_request
              ~settings:{ no_disk_cache with sp_fault = Some (Some "bogus_kind:0.5") }
              "bad-fault")
       with
      | Protocol.Failure f ->
          Alcotest.(check string) "bad fault spec code" "invalid_request" f.code
      | Protocol.Result _ -> Alcotest.fail "bad fault spec accepted");
      (* ... and the daemon is still alive afterwards *)
      let ping =
        expect_result
          (call_exn ~socket
             { id = "p1"; priority = 0; settings = Protocol.no_overrides;
               verb = Protocol.Ping })
      in
      Alcotest.(check string) "still serving" "pong\n" ping.rout;
      (* acceptance: >= 4 concurrent searches, byte-identical to the
         one-shot engine path *)
      let settings = Settings.resolve ~cache_dir:None () in
      let oneshot = Ops.search ~settings search_params in
      Alcotest.(check int) "one-shot exit code" 0 oneshot.exit_code;
      let results = Array.make 4 None in
      let threads =
        List.init 4 (fun i ->
            Thread.create
              (fun i ->
                let req =
                  search_request ~priority:i ~settings:no_disk_cache
                    (Printf.sprintf "c%d" i)
                in
                results.(i) <- Some (Client.call ~socket req))
              i)
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i r ->
          match r with
          | None -> Alcotest.failf "request c%d never completed" i
          | Some (Error e) -> Alcotest.failf "c%d transport: %s" i e
          | Some (Ok resp) ->
              let r = expect_result resp in
              Alcotest.(check string)
                (Printf.sprintf "c%d id" i)
                (Printf.sprintf "c%d" i)
                r.rid;
              Alcotest.(check int)
                (Printf.sprintf "c%d exit code" i)
                oneshot.exit_code r.rexit;
              Alcotest.(check string)
                (Printf.sprintf "c%d output bytes" i)
                oneshot.output r.rout)
        results;
      (* stats reports per-request tallies *)
      let stats =
        expect_result
          (call_exn ~socket
             { id = "st"; priority = 0; settings = Protocol.no_overrides;
               verb = Protocol.Stats })
      in
      Alcotest.(check bool) "stats text" true
        (String.length stats.rout > 9
        && String.sub stats.rout 0 9 = "requests:");
      let member k =
        match J.member k stats.rtel with
        | Some v -> v
        | None -> Alcotest.failf "stats telemetry lacks %s" k
      in
      (match member "total" with
      | J.Int n -> Alcotest.(check bool) "total counts requests" true (n >= 7)
      | _ -> Alcotest.fail "total not an int");
      (match member "errors" with
      | J.Int n -> Alcotest.(check bool) "errors counted" true (n >= 2)
      | _ -> Alcotest.fail "errors not an int");
      (match member "recent" with
      | J.List entries ->
          Alcotest.(check bool) "recent entries present" true
            (List.length entries >= 4);
          List.iter
            (fun e ->
              if J.member "verb" e = Some (J.Str "search") then
                let tel = J.member "telemetry" e in
                let has k = Option.bind tel (J.member k) <> None in
                Alcotest.(check bool)
                  "search entries carry per-request tallies" true
                  (has "search" && has "pool" && has "fault"))
            entries
      | _ -> Alcotest.fail "recent not a list"));
  Alcotest.(check bool) "socket unlinked on stop" false (Sys.file_exists socket)

let test_daemon_admission_control () =
  let socket = fresh_socket () in
  let server = Server.start { socket_path = socket; jobs = 1; queue_limit = 1 } in
  Fun.protect
    ~finally:(fun () -> try Server.stop server with _ -> ())
    (fun () ->
      (* 8 searches into a 1-worker, 1-slot daemon: some run, some
         queue, and with at most 2 admitted at any instant at least
         one of the burst must be refused *)
      let lines =
        List.init 8 (fun i ->
            Protocol.request_to_line
              (search_request ~settings:no_disk_cache
                 (Printf.sprintf "b%d" i)))
      in
      let responses = burst ~socket lines in
      Alcotest.(check int) "every request answered" 8 (List.length responses);
      let ok, overloaded =
        List.fold_left
          (fun (ok, ov) line ->
            match Protocol.parse_response line with
            | Ok (Protocol.Result r) when r.exit_code = 0 -> (ok + 1, ov)
            | Ok (Protocol.Failure f) when f.code = "overloaded" -> (ok, ov + 1)
            | Ok _ -> Alcotest.failf "unexpected response: %s" line
            | Error e -> Alcotest.failf "unparseable response: %s" e)
          (0, 0) responses
      in
      Alcotest.(check bool) "some requests served" true (ok >= 1);
      Alcotest.(check bool) "some requests refused" true (overloaded >= 1);
      Alcotest.(check int) "no response lost" 8 (ok + overloaded);
      let stats =
        expect_result
          (call_exn ~socket
             { id = "st"; priority = 0; settings = Protocol.no_overrides;
               verb = Protocol.Stats })
      in
      match J.member "overloaded" stats.rtel with
      | Some (J.Int n) ->
          Alcotest.(check int) "stats counts refusals" overloaded n
      | _ -> Alcotest.fail "stats telemetry lacks overloaded")

let test_stale_socket_replaced () =
  let socket = fresh_socket () in
  (* simulate a dead daemon: a bound socket file with no listener *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket);
  Unix.close fd;
  Alcotest.(check bool) "stale file present" true (Sys.file_exists socket);
  let server = Server.start { socket_path = socket; jobs = 1; queue_limit = 1 } in
  Fun.protect
    ~finally:(fun () -> try Server.stop server with _ -> ())
    (fun () ->
      let ping =
        expect_result
          (call_exn ~socket
             { id = "p"; priority = 0; settings = Protocol.no_overrides;
               verb = Protocol.Ping })
      in
      Alcotest.(check string) "rebound over stale socket" "pong\n" ping.rout)

let suite =
  [
    Alcotest.test_case "request lines round-trip" `Quick
      test_request_round_trip;
    Alcotest.test_case "response lines round-trip" `Quick
      test_response_round_trip;
    Alcotest.test_case "malformed requests are pre-shaped errors" `Quick
      test_parse_errors_pre_shaped;
    Alcotest.test_case "per-request settings resolve" `Quick
      test_resolve_settings;
    Alcotest.test_case "settings spec round-trips client to daemon" `Quick
      test_spec_of_settings_round_trip;
    Alcotest.test_case "daemon end to end: identity, containment, stats" `Slow
      test_daemon_end_to_end;
    Alcotest.test_case "admission control refuses past the queue limit" `Slow
      test_daemon_admission_control;
    Alcotest.test_case "stale socket file is replaced" `Quick
      test_stale_socket_replaced;
  ]

(* The two-phase profiling search end to end: trace-cache keying (the
   packed-key collision regression), the persistent profile cache, and
   bit-identical results across worker counts and cache temperatures. *)

open Cuda
open Gpusim
open Kernel_corpus
module Runner = Hfuse_profiler.Runner
module Profile_cache = Hfuse_profiler.Profile_cache

let arch = Arch.gtx1080ti

(* Grid-strided synthetic kernels: work — and hence trace length and
   simulated time — scales with the workload size [n]. *)
let src name expr =
  Printf.sprintf
    {|
__global__ void %s(float* a, int n) {
  for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < n;
       i += gridDim.x * blockDim.x) {
    a[i] = %s;
  }
}
|}
    name expr

let mk_spec name expr ~tunability ~native_block : Spec.t =
  let instantiate mem ~size =
    let count = max 1 size in
    let buf = Memory.alloc mem ~name:(name ^ ".a") ~elem:Ctype.Float ~count in
    Memory.fill_floats mem buf
      (Array.init count (fun i -> (float_of_int ((i mod 7) + 1)) *. 0.5));
    {
      Workload.args = [ Value.Ptr buf; Workload.iv size ];
      grid = 2;
      smem_dynamic = 0;
      outputs = [ ((name ^ ".a"), buf, count) ];
      check = (fun _ -> Ok ());
    }
  in
  {
    Spec.name;
    kind = Spec.Deep_learning;
    source = src name expr;
    regs = 32;
    native_block;
    tunability;
    default_size = 4;
    instantiate;
  }

(* fixed 32-thread kernels for the trace-key regression *)
let ta_fixed =
  mk_spec "ta" "a[i] * 2.0f" ~tunability:Hfuse_core.Kernel_info.Fixed
    ~native_block:(32, 1, 1)

let tb_fixed =
  mk_spec "tb" "a[i] + 1.0f" ~tunability:Hfuse_core.Kernel_info.Fixed
    ~native_block:(32, 1, 1)

(* tunable kernels for the search determinism / cache tests *)
let ta_tun =
  mk_spec "tc" "a[i] * 2.0f"
    ~tunability:(Hfuse_core.Kernel_info.Tunable { multiple_of = 32 })
    ~native_block:(256, 1, 1)

let tb_tun =
  mk_spec "td" "a[i] + 1.0f"
    ~tunability:(Hfuse_core.Kernel_info.Tunable { multiple_of = 32 })
    ~native_block:(256, 1, 1)

(* -- Trace-cache key collision (regression) ---------------------------- *)

let hfuse_time ~size1 ~size2 =
  let mem = Memory.create () in
  let c1 = Runner.configure mem ta_fixed ~size:size1 in
  let c2 = Runner.configure mem tb_fixed ~size:size2 in
  let f =
    Hfuse_core.Hfuse.generate
      (Hfuse_core.Kernel_info.with_block_dim c1.Runner.info 32)
      (Hfuse_core.Kernel_info.with_block_dim c2.Runner.info 32)
  in
  (Runner.hfuse_report arch c1 c2 f ~reg_bound:None).Timing.time_ms

let test_trace_key_collision () =
  (* the old packed key folded the pair's sizes into
     [size1 * 1_000_003 + size2], so (2, 1) and (1, 1_000_004) mapped to
     the same entry (2_000_007) and the second pair silently reused the
     first pair's tiny trace.  With distinct keys the big workload must
     re-trace and run orders of magnitude longer. *)
  Runner.clear_cache ();
  let t_small = hfuse_time ~size1:2 ~size2:1 in
  let t_big = hfuse_time ~size1:1 ~size2:1_000_004 in
  Alcotest.(check bool)
    (Printf.sprintf "big pair re-traced (%g ms vs %g ms)" t_big t_small)
    true
    (t_big > t_small *. 10.0)

(* -- Profile_cache ------------------------------------------------------ *)

let tmp_cache_dir tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "hfuse_test_%s_%d" tag (Unix.getpid ()))

(* empty the versioned entry directory so each test run starts cold *)
let clear_cache_dir (cache : Profile_cache.t) =
  let dir = Profile_cache.dir cache in
  if dir <> "" && Sys.file_exists dir then
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if not (Sys.is_directory p) then Sys.remove p)
      (Sys.readdir dir)

let some_time = Alcotest.(option (float 0.0)) (* exact match *)

let mk_key ?(reg_bound = Some 32) () =
  Profile_cache.key ~arch:"GTX 1080 Ti" ~source:"__global__ void f() {}"
    ~d1:128 ~d2:896 ~grid:96 ~smem_dynamic:768 ~regs:36 ~reg_bound ~k1:"ta"
    ~size1:3 ~k2:"tb" ~size2:5 ~trace_blocks:1

let test_profile_cache_roundtrip () =
  let cache = Profile_cache.create ~dir:(tmp_cache_dir "roundtrip") () in
  clear_cache_dir cache;
  let key = mk_key () in
  Alcotest.check some_time "cold miss" None (Profile_cache.find cache ~key);
  (* a time with no short decimal representation must round-trip
     bit-for-bit through the hex-float entry format *)
  let t = 0.12345678901234567 /. 3.0 in
  Profile_cache.store cache ~key t;
  Alcotest.check some_time "bit-exact round trip" (Some t)
    (Profile_cache.find cache ~key);
  (* the register bound participates in the key *)
  let key' = mk_key ~reg_bound:None () in
  Alcotest.(check bool) "distinct keys" true (key <> key');
  Alcotest.check some_time "other key misses" None
    (Profile_cache.find cache ~key:key');
  Alcotest.(check int) "counters" 2 (Profile_cache.misses cache);
  Alcotest.(check int) "one hit" 1 (Profile_cache.hits cache);
  Alcotest.(check int) "one store" 1 (Profile_cache.stores cache)

let test_profile_cache_corrupt_entry () =
  let cache = Profile_cache.create ~dir:(tmp_cache_dir "corrupt") () in
  clear_cache_dir cache;
  let key = mk_key () in
  Profile_cache.store cache ~key 1.5;
  (* a torn/garbage entry must read as a miss, not an exception *)
  let path = Filename.concat (Profile_cache.dir cache) key in
  let oc = open_out path in
  output_string oc "not a float\n";
  close_out oc;
  Alcotest.check some_time "corrupt entry is a miss" None
    (Profile_cache.find cache ~key)

let test_profile_cache_disabled () =
  let cache = Profile_cache.disabled () in
  Alcotest.(check bool) "disabled" false (Profile_cache.enabled cache);
  let key = mk_key () in
  Profile_cache.store cache ~key 1.0;
  Alcotest.check some_time "never finds" None (Profile_cache.find cache ~key);
  Alcotest.(check int) "never stores" 0 (Profile_cache.stores cache)

(* -- Profile_cache: full-report entries --------------------------------- *)

(* finite floats with no short decimal representation: the %h entry
   format must reproduce every bit *)
let mk_report () : Timing.report =
  {
    Timing.elapsed_cycles = 123456;
    time_ms = 0.12345678901234567 /. 3.0;
    issued_slots = 9876;
    total_slots = 43210;
    issue_slot_util = 100.0 /. 3.0;
    mem_stall_slots = 11;
    sync_stall_slots = 22;
    other_stall_slots = 33;
    idle_slots = 44;
    mem_stall_pct = 2.0 /. 7.0;
    occupancy = 1.0 /. 9.0;
    kernels =
      [
        {
          Timing.k_label = "k one";
          k_elapsed_cycles = 5;
          k_issued = 6;
          k_blocks_per_sm = 7;
        };
        {
          Timing.k_label = "k2";
          k_elapsed_cycles = 8;
          k_issued = 9;
          k_blocks_per_sm = 10;
        };
      ];
  }

let mk_engine_stats () : Timing.engine_stats =
  {
    Timing.cycles_stepped = 1;
    cycles_skipped = 2;
    sm_steps = 3;
    sm_steps_skipped = 4;
    scan_skip_hits = 5;
    warp_allocs = 6;
    warp_reuses = 7;
  }

let test_report_cache_roundtrip () =
  let cache = Profile_cache.create ~dir:(tmp_cache_dir "report") () in
  clear_cache_dir cache;
  let mem = Memory.create () in
  let c = Runner.configure mem ta_tun ~size:3 in
  let specs = [ Runner.spec_of c ~stream:0 () ] in
  let key =
    Profile_cache.report_key ~arch:arch.Arch.name ~policy:"fifo" specs
  in
  Alcotest.(check bool)
    "cold miss" true
    (Profile_cache.find_report cache ~key = None);
  let entry = (mk_report (), mk_engine_stats ()) in
  Profile_cache.store_report cache ~key entry;
  Alcotest.(check bool)
    "bit-exact round trip" true
    (Profile_cache.find_report cache ~key = Some entry);
  (* the packed trace contents participate in the key: a different
     workload size re-traces and must map to a different entry *)
  let c' = Runner.configure mem ta_tun ~size:17 in
  let key' =
    Profile_cache.report_key ~arch:arch.Arch.name ~policy:"fifo"
      [ Runner.spec_of c' ~stream:0 () ]
  in
  Alcotest.(check bool) "trace contents keyed" true (key <> key');
  (* a torn/garbage entry must read as a miss, not an exception *)
  let oc = open_out (Filename.concat (Profile_cache.dir cache) key) in
  output_string oc "garbage\n";
  close_out oc;
  Alcotest.(check bool)
    "corrupt entry is a miss" true
    (Profile_cache.find_report cache ~key = None)

let test_run_many_report_cache () =
  let cache = Profile_cache.create ~dir:(tmp_cache_dir "run_many") () in
  clear_cache_dir cache;
  let mem = Memory.create () in
  let c1 = Runner.configure mem ta_tun ~size:3 in
  let c2 = Runner.configure mem tb_tun ~size:5 in
  let runs =
    [|
      (arch, [ Runner.spec_of c1 ~stream:0 () ]);
      ( arch,
        [ Runner.spec_of c1 ~stream:0 (); Runner.spec_of c2 ~stream:1 () ] );
    |]
  in
  let uncached = Runner.run_many runs in
  let cold = Runner.run_many ~cache runs in
  Alcotest.(check int) "cold stores" 2 (Profile_cache.stores cache);
  let warm = Runner.run_many ~cache runs in
  Alcotest.(check int) "warm hits" 2 (Profile_cache.hits cache);
  Alcotest.(check bool) "warm reports bit-identical" true (warm = cold);
  Alcotest.(check bool) "cache never changes reports" true (uncached = cold)

(* -- Runner.search: jobs / cache determinism ---------------------------- *)

let search_tun ~jobs ~cache =
  (* fresh memory and trace cache per run: each run re-traces from the
     same deterministic inputs, like independent processes would *)
  Runner.clear_cache ();
  let mem = Memory.create () in
  let c1 = Runner.configure mem ta_tun ~size:3 in
  let c2 = Runner.configure mem tb_tun ~size:5 in
  Runner.search ~jobs ~cache arch c1 c2

let sig_of (r : Hfuse_core.Search.result) =
  List.map
    (fun (c : Hfuse_core.Search.candidate) ->
      ( c.fused.Hfuse_core.Hfuse.d1,
        c.fused.Hfuse_core.Hfuse.d2,
        c.config.Hfuse_core.Search.reg_bound,
        c.time ))
    r.all

let best_of (r : Hfuse_core.Search.result) =
  let b = r.best in
  ( b.fused.Hfuse_core.Hfuse.d1,
    b.fused.Hfuse_core.Hfuse.d2,
    b.config.Hfuse_core.Search.reg_bound,
    b.time )

let test_search_jobs_deterministic () =
  let nocache = Profile_cache.disabled () in
  let base = search_tun ~jobs:1 ~cache:nocache in
  Alcotest.(check bool) "several partitions searched" true
    (List.length base.all >= 7);
  List.iter
    (fun jobs ->
      let r = search_tun ~jobs ~cache:(Profile_cache.disabled ()) in
      Alcotest.(check bool)
        (Printf.sprintf "all candidates identical at -j %d" jobs)
        true
        (sig_of r = sig_of base);
      Alcotest.(check bool)
        (Printf.sprintf "best identical at -j %d" jobs)
        true
        (best_of r = best_of base))
    [ 2; 8 ]

let test_search_cache_warm_matches_cold () =
  let dir = tmp_cache_dir "search" in
  let cold_cache = Profile_cache.create ~dir () in
  clear_cache_dir cold_cache;
  Runner.reset_search_stats ();
  let cold = search_tun ~jobs:2 ~cache:cold_cache in
  let n = List.length cold.all in
  let cold_stats = Runner.search_stats () in
  Alcotest.(check int) "cold run profiles every candidate once" n
    cold_stats.Runner.profiled;
  (* the cost model's probes are profiled during ranking and stored;
     phase 2 then re-hits exactly those entries, so the cold run's hit
     count IS the probe count *)
  let probes = cold_stats.Runner.cache_hits in
  Alcotest.(check bool) "probes hit, not re-simulated" true
    (probes > 0 && probes < n);
  Alcotest.(check int) "every candidate stored once, plus two solo reports"
    (n + 2)
    (Profile_cache.stores cold_cache);
  (* a second handle on the same directory — as a rerun of the process
     would create — answers everything from disk, bit-identically *)
  let warm_cache = Profile_cache.create ~dir () in
  Runner.reset_search_stats ();
  let warm = search_tun ~jobs:4 ~cache:warm_cache in
  let warm_stats = Runner.search_stats () in
  Alcotest.(check bool) "warm results identical to cold" true
    (sig_of warm = sig_of cold);
  Alcotest.(check bool) "warm best identical to cold" true
    (best_of warm = best_of cold);
  Alcotest.(check int) "warm run profiles nothing" 0 warm_stats.Runner.profiled;
  Alcotest.(check int) "warm run all cache hits (probes again + phase 2)"
    (n + probes) warm_stats.Runner.cache_hits;
  Alcotest.(check int) "disk hits include the two solo reports"
    (n + probes + 2)
    (Profile_cache.hits warm_cache)

(* -- crash-safe cache: quarantine + recompute --------------------------- *)

let corrupt_on_disk path =
  (* flip a byte in the middle of the committed entry *)
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  let i = n / 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x55));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_cache_quarantine () =
  let cache = Profile_cache.create ~dir:(tmp_cache_dir "quarantine") () in
  clear_cache_dir cache;
  let qdir =
    Filename.concat (Filename.dirname (Profile_cache.dir cache)) "quarantine"
  in
  if Sys.file_exists qdir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat qdir f))
      (Sys.readdir qdir);
  let key = mk_key () in
  let t = 0.12345678901234567 /. 3.0 in
  Profile_cache.store cache ~key t;
  let path = Filename.concat (Profile_cache.dir cache) key in
  (* a truncated entry (torn write) is quarantined and reads as a miss *)
  let oc = open_out_bin path in
  output_string oc "hfuse-cache v2 0123";
  close_out oc;
  Alcotest.check some_time "truncated entry is a miss" None
    (Profile_cache.find cache ~key);
  Alcotest.(check int) "one quarantined" 1 (Profile_cache.corrupt cache);
  Alcotest.(check bool) "entry moved aside" false (Sys.file_exists path);
  Alcotest.(check bool) "entry in quarantine" true
    (Sys.file_exists (Filename.concat qdir key));
  (* re-store and bit-flip: a checksum failure is also quarantined *)
  Profile_cache.store cache ~key t;
  corrupt_on_disk path;
  Alcotest.check some_time "bit-flipped entry is a miss" None
    (Profile_cache.find cache ~key);
  Alcotest.(check int) "two quarantined" 2 (Profile_cache.corrupt cache);
  Alcotest.(check bool) "flipped entry moved aside" false
    (Sys.file_exists path);
  (* recompute path: a fresh store over the quarantined key heals the
     cache and the value round-trips bit-exactly again *)
  Profile_cache.store cache ~key t;
  Alcotest.check some_time "healed entry round-trips" (Some t)
    (Profile_cache.find cache ~key)

let test_run_many_recomputes_corrupted () =
  let dir = tmp_cache_dir "heal" in
  let cache = Profile_cache.create ~dir () in
  clear_cache_dir cache;
  let mem = Memory.create () in
  let c1 = Runner.configure mem ta_tun ~size:3 in
  let c2 = Runner.configure mem tb_tun ~size:5 in
  let runs =
    [|
      (arch, [ Runner.spec_of c1 ~stream:0 () ]);
      ( arch,
        [ Runner.spec_of c1 ~stream:0 (); Runner.spec_of c2 ~stream:1 () ] );
    |]
  in
  let cold = Runner.run_many ~cache runs in
  (* corrupt every committed entry on disk *)
  Array.iter
    (fun f -> corrupt_on_disk (Filename.concat (Profile_cache.dir cache) f))
    (Sys.readdir (Profile_cache.dir cache));
  let healing = Profile_cache.create ~dir () in
  let healed = Runner.run_many ~cache:healing runs in
  Alcotest.(check bool) "recompute identical to cold run" true (healed = cold);
  Alcotest.(check int) "both entries quarantined" 2
    (Profile_cache.corrupt healing);
  Alcotest.(check int) "both entries recomputed and re-stored" 2
    (Profile_cache.stores healing);
  (* the healed cache answers from disk again *)
  let warm = Profile_cache.create ~dir () in
  Alcotest.(check bool) "healed cache hits" true
    (Runner.run_many ~cache:warm runs = cold);
  Alcotest.(check int) "two disk hits" 2 (Profile_cache.hits warm)

(* -- Checkpoint journal -------------------------------------------------- *)

module Checkpoint = Hfuse_profiler.Checkpoint

let fresh_journal tag =
  let dir = tmp_cache_dir ("jnl_" ^ tag) in
  let run_id = Checkpoint.run_id ~parts:[ "test"; tag ] () in
  let file = Filename.concat dir (run_id ^ ".jnl") in
  if Sys.file_exists file then Sys.remove file;
  (dir, run_id)

let test_checkpoint_roundtrip () =
  let dir, run_id = fresh_journal "roundtrip" in
  let ck = Checkpoint.open_ ~dir ~run_id () in
  Alcotest.(check bool) "enabled" true (Checkpoint.enabled ck);
  Alcotest.(check int) "fresh journal empty" 0 (Checkpoint.loaded ck);
  let t = 0.12345678901234567 /. 3.0 in
  let entry = (mk_report (), mk_engine_stats ()) in
  Checkpoint.record_time ck ~key:(mk_key ()) t;
  Checkpoint.record_report ck ~key:"rk" entry;
  Alcotest.check some_time "answers before close" (Some t)
    (Checkpoint.find_time ck ~key:(mk_key ()));
  Checkpoint.close ck;
  (* reopening the same run id replays both records bit-exactly *)
  let ck' = Checkpoint.open_ ~dir ~run_id () in
  Alcotest.(check int) "both records loaded" 2 (Checkpoint.loaded ck');
  Alcotest.(check int) "nothing torn" 0 (Checkpoint.torn ck');
  Alcotest.check some_time "time replayed" (Some t)
    (Checkpoint.find_time ck' ~key:(mk_key ()));
  Alcotest.(check bool) "report replayed (newlines survive escaping)" true
    (Checkpoint.find_report ck' ~key:"rk" = Some entry);
  Alcotest.check some_time "other keys still miss" None
    (Checkpoint.find_time ck' ~key:"absent");
  Checkpoint.close ck';
  (* a different run id opens a different journal: no stale replays *)
  let other = Checkpoint.open_ ~dir ~run_id:(run_id ^ "x") () in
  Alcotest.(check int) "other run sees nothing" 0 (Checkpoint.loaded other);
  Checkpoint.close other;
  (* the disabled journal records and answers nothing *)
  Alcotest.(check bool) "disabled" false (Checkpoint.enabled Checkpoint.disabled);
  Checkpoint.record_time Checkpoint.disabled ~key:"k" 1.0;
  Alcotest.check some_time "disabled never finds" None
    (Checkpoint.find_time Checkpoint.disabled ~key:"k")

let test_checkpoint_torn_tail () =
  let dir, run_id = fresh_journal "torn" in
  let ck = Checkpoint.open_ ~dir ~run_id () in
  let t = 1.0 /. 7.0 in
  Checkpoint.record_time ck ~key:"good" t;
  Checkpoint.close ck;
  (* simulate a crash mid-append: a checksum-failing line and a torn
     half-record after the good one *)
  let oc =
    open_out_gen [ Open_append ] 0o644 (Checkpoint.path ck)
  in
  output_string oc "T bad 00000000000000000000000000000000 0x1p-1\n";
  output_string oc "T torn 0123";
  close_out oc;
  let ck' = Checkpoint.open_ ~dir ~run_id () in
  Alcotest.(check int) "good record survives" 1 (Checkpoint.loaded ck');
  Alcotest.(check int) "damaged tail dropped" 2 (Checkpoint.torn ck');
  Alcotest.check some_time "good record replayed" (Some t)
    (Checkpoint.find_time ck' ~key:"good");
  Alcotest.check some_time "bad record not replayed" None
    (Checkpoint.find_time ck' ~key:"bad");
  Checkpoint.close ck'

let search_ck ~jobs ~checkpoint =
  Runner.clear_cache ();
  let mem = Memory.create () in
  let c1 = Runner.configure mem ta_tun ~size:3 in
  let c2 = Runner.configure mem tb_tun ~size:5 in
  Runner.search ~jobs ~cache:(Profile_cache.disabled ()) ~checkpoint arch c1 c2

let test_search_resume_identity () =
  let baseline = search_tun ~jobs:2 ~cache:(Profile_cache.disabled ()) in
  let n = List.length baseline.all in
  let dir, run_id = fresh_journal "resume" in
  let ck = Checkpoint.open_ ~dir ~run_id () in
  Runner.reset_search_stats ();
  let first = search_ck ~jobs:2 ~checkpoint:ck in
  Checkpoint.close ck;
  (* the first journaled run hits its own journal once per probe (the
     model profiles them in phase 1.5, phase 2 replays them) *)
  let probes = (Runner.search_stats ()).Runner.cache_hits in
  Alcotest.(check bool) "journaled run identical to plain run" true
    (sig_of first = sig_of baseline);
  (* a resumed run answers every candidate from the journal: nothing is
     re-profiled and the result is bit-identical *)
  let ck' = Checkpoint.open_ ~dir ~run_id () in
  Alcotest.(check bool) "journal replays candidates" true
    (Checkpoint.loaded ck' > 0);
  Runner.reset_search_stats ();
  let resumed = search_ck ~jobs:4 ~checkpoint:ck' in
  Checkpoint.close ck';
  let stats = Runner.search_stats () in
  Alcotest.(check bool) "resumed results identical" true
    (sig_of resumed = sig_of baseline);
  Alcotest.(check bool) "resumed best identical" true
    (best_of resumed = best_of baseline);
  Alcotest.(check int) "resume profiles nothing" 0 stats.Runner.profiled;
  Alcotest.(check int) "every candidate and probe replayed" (n + probes)
    stats.Runner.cache_hits

(* -- run ids fold in the simulator fuel budget --------------------------- *)

let test_run_id_sim_fuel () =
  (* a journal recorded under one fuel budget must be invisible to a
     resume under another: the same simulation can legitimately produce
     different times (a watchdogged candidate completes under a bigger
     budget), so replaying it would be wrong, not just stale *)
  let id_a = Checkpoint.run_id ~sim_fuel:1_000 ~parts:[ "fuel"; "t" ] () in
  let id_b = Checkpoint.run_id ~sim_fuel:2_000 ~parts:[ "fuel"; "t" ] () in
  Alcotest.(check bool) "different fuel, different run id" true
    (id_a <> id_b);
  Alcotest.(check string) "same fuel, same run id" id_a
    (Checkpoint.run_id ~sim_fuel:1_000 ~parts:[ "fuel"; "t" ] ());
  Alcotest.(check string) "default fuel is the engine's default"
    (Checkpoint.run_id ~sim_fuel:Gpusim.Launch.default_loop_fuel
       ~parts:[ "fuel"; "t" ] ())
    (Checkpoint.run_id ~parts:[ "fuel"; "t" ] ());
  let dir = tmp_cache_dir "jnl_fuel" in
  List.iter
    (fun id ->
      let f = Filename.concat dir (id ^ ".jnl") in
      if Sys.file_exists f then Sys.remove f)
    [ id_a; id_b ];
  let ck = Checkpoint.open_ ~dir ~run_id:id_a () in
  Checkpoint.record_time ck ~key:"cand" 1.0;
  Checkpoint.close ck;
  (* resuming under a changed fuel budget sees an empty journal... *)
  let ck_b = Checkpoint.open_ ~dir ~run_id:id_b () in
  Alcotest.(check int) "changed fuel: stale journal not reused" 0
    (Checkpoint.loaded ck_b);
  Alcotest.check some_time "changed fuel: no stale answer" None
    (Checkpoint.find_time ck_b ~key:"cand");
  Checkpoint.close ck_b;
  (* ...while the same budget replays it *)
  let ck_a = Checkpoint.open_ ~dir ~run_id:id_a () in
  Alcotest.(check int) "same fuel: journal replayed" 1
    (Checkpoint.loaded ck_a);
  Checkpoint.close ck_a

(* -- model_eval: the top-k window verdict -------------------------------- *)

let check_verdict = Alcotest.(check (option (pair int (float 1e-9))))

let test_model_eval_window () =
  let scores = [ 1.; 2.; 3.; 4. ] and times = [ 10.; 1.; 5.; 8. ] in
  (* k=1: the window is the model's single pick, which is 10x off *)
  check_verdict "k=1 pays the model's full regret" (Some (0, 900.))
    (Runner.model_eval ~k:1 ~scores ~times ());
  (* k=2: the window now contains the true best; regret vanishes *)
  check_verdict "k=2 window contains the optimum" (Some (1, 0.))
    (Runner.model_eval ~k:2 ~scores ~times ());
  (* score ties break to the earlier candidate, like the pruner *)
  check_verdict "ties keep search order" (Some (0, 250.))
    (Runner.model_eval ~k:1 ~scores:[ 5.; 5. ] ~times:[ 7.; 2. ] ());
  (* a failed profile (infinite time) can never be the window's pick *)
  check_verdict "failed candidates fall out of the window" (Some (1, 0.))
    (Runner.model_eval ~k:1 ~scores:[ 1.; 2. ]
       ~times:[ Float.infinity; 3. ] ());
  (* no verdict without a finite (score, time) pair *)
  check_verdict "no finite pair" None
    (Runner.model_eval ~scores:[ Float.nan ] ~times:[ 1. ] ());
  check_verdict "empty" None (Runner.model_eval ~scores:[] ~times:[] ())

(* -- report JSON: non-finite floats -------------------------------------- *)

module Report = Hfuse_profiler.Report
module Json = Report.Json

let test_json_nonfinite_null () =
  (* regression: Float.infinity used to print as a bare [inf], which no
     JSON parser (including ours) accepts — a single failed candidate
     poisoned the whole bench artifact *)
  Alcotest.(check string) "infinity serializes as null" "null"
    (String.trim (Json.to_string (Json.Float Float.infinity)));
  Alcotest.(check string) "nan serializes as null" "null"
    (String.trim (Json.to_string (Json.Float Float.nan)));
  Alcotest.(check string) "negative infinity too" "null"
    (String.trim (Json.to_string (Json.Float Float.neg_infinity)));
  (* the parser accepts the null back, and the bench gate's numeric
     coercion reads it as infinite — an infinite regret must FAIL the
     gate, not vanish *)
  (match Json.of_string "null" with
  | Ok v ->
      Alcotest.(check (option (float 0.))) "null reads as infinite"
        (Some Float.infinity) (Json.to_float_opt v)
  | Error e -> Alcotest.failf "null must parse: %s" e);
  match Json.of_string {|{"t": null, "u": 3.5}|} with
  | Ok obj ->
      Alcotest.(check (option (float 0.))) "null member" (Some Float.infinity)
        (Option.bind (Json.member "t" obj) Json.to_float_opt);
      Alcotest.(check (option (float 0.))) "finite member" (Some 3.5)
        (Option.bind (Json.member "u" obj) Json.to_float_opt)
  | Error e -> Alcotest.failf "object must parse: %s" e

let test_json_stats_roundtrip_nonfinite () =
  (* a search whose every window candidate failed leaves an infinite
     max-regret in the stats; the serialized artifact must still be
     machine-readable end to end *)
  let stats =
    {
      Runner.profiled = 3;
      cache_hits = 0;
      profile_wall_s = Float.nan;
      failed = 3;
      ranked = 3;
      pruned = 0;
      rank_agree = 0;
      rank_total = 1;
      max_regret_pct = Float.infinity;
      traced = 3;
      trace_hits = 0;
      trace_merged = 0;
      trace_wall_s = 0.0;
      repair_attempted = 0;
      repaired = 0;
      repair_unsound = 0;
      rejections = [];
    }
  in
  let s = Json.to_string (Report.json_of_search_stats stats) in
  match Json.of_string s with
  | Ok obj ->
      Alcotest.(check (option (float 0.))) "infinite regret survives"
        (Some Float.infinity)
        (Option.bind (Json.member "max_regret_pct" obj) Json.to_float_opt);
      Alcotest.(check (option (float 0.))) "nan wall survives as infinite"
        (Some Float.infinity)
        (Option.bind (Json.member "profile_wall_s" obj) Json.to_float_opt);
      Alcotest.(check (option (float 0.))) "finite fields unharmed"
        (Some 3.)
        (Option.bind (Json.member "profiled" obj) Json.to_float_opt)
  | Error e -> Alcotest.failf "stats JSON must parse: %s" e

(* -- chaos: injected faults leave results bit-identical ------------------ *)

module Fault = Hfuse_fault.Fault

let test_search_chaos_identity () =
  let baseline = search_tun ~jobs:2 ~cache:(Profile_cache.disabled ()) in
  Fun.protect ~finally:(fun () ->
      Fault.clear ();
      Fault.reset_tally ())
  @@ fun () ->
  (match
     Fault.configure "worker_crash:1.0,sim_hang:0.2,cache_corrupt:1.0,seed:3"
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "configure rejected: %s" e);
  Fault.reset_tally ();
  let dir = tmp_cache_dir "chaos" in
  let cache = Profile_cache.create ~dir () in
  clear_cache_dir cache;
  Runner.reset_search_stats ();
  let faulted = search_tun ~jobs:4 ~cache in
  (* regression: under injected worker crashes the stats JSON must stay
     machine-readable whatever the float fields hold *)
  (match
     Json.of_string
       (Json.to_string (Report.json_of_search_stats (Runner.search_stats ())))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "faulted stats JSON must parse: %s" e);
  Alcotest.(check bool) "faulted candidates identical to baseline" true
    (sig_of faulted = sig_of baseline);
  Alcotest.(check bool) "faulted best identical to baseline" true
    (best_of faulted = best_of baseline);
  Alcotest.(check bool) "faults were injected" true
    (Fault.injected_total () > 0);
  Alcotest.(check bool) "faults were recovered" true
    (Fault.recovered_total () > 0);
  (* cache_corrupt:1.0 truncated every committed entry; a warm run
     quarantines them all, recomputes, and still matches the baseline *)
  let warm_cache = Profile_cache.create ~dir () in
  let warm = search_tun ~jobs:2 ~cache:warm_cache in
  Alcotest.(check bool) "quarantine-and-recompute identical" true
    (sig_of warm = sig_of baseline);
  Alcotest.(check bool) "corrupted entries quarantined" true
    (Profile_cache.corrupt warm_cache > 0)

(* -- Trace binary codec -------------------------------------------------- *)

module Trace_store = Hfuse_profiler.Trace_store
module Settings = Hfuse_profiler.Settings
module Trace = Gpusim.Trace
module Pool = Hfuse_parallel.Pool

(* build a trace with deliberate capacity slack after [len]: the codec
   must serialize only the live prefix *)
let mk_trace codes payloads =
  let pad a = Array.append a (Array.make 3 max_int) in
  { Trace.codes = pad codes; payloads = pad payloads; len = Array.length codes }

let mk_blocks () : Trace.block array =
  [|
    [|
      mk_trace [| 0; 1; 2 |] [| 5; -7; 1 lsl 40 |];
      mk_trace [| 3 |] [| -(1 lsl 40) |];
    |];
    [| mk_trace [||] [||] |];
  |]

let test_trace_codec_roundtrip () =
  let blocks = mk_blocks () in
  let enc = Trace.encode_blocks blocks in
  (match Trace.decode_blocks enc with
  | None -> Alcotest.fail "decode rejected its own encoding"
  | Some dec ->
      Alcotest.(check int) "block count" 2 (Array.length dec);
      Alcotest.(check int) "warp count" 2 (Array.length dec.(0));
      Alcotest.(check int) "live prefix only" 3 dec.(0).(0).Trace.len;
      Alcotest.(check int) "negative payload survives" (-7)
        dec.(0).(0).Trace.payloads.(1);
      Alcotest.(check int) "wide payload survives" (1 lsl 40)
        dec.(0).(0).Trace.payloads.(2);
      (* decode . encode is a fixed point: re-encoding reproduces every
         byte, which is what makes warmed stores bit-identical *)
      Alcotest.(check string) "re-encode byte-identical" enc
        (Trace.encode_blocks dec));
  (* malformed inputs answer None, never raise or over-allocate *)
  List.iter
    (fun (label, s) ->
      Alcotest.(check bool) label true (Trace.decode_blocks s = None))
    [
      ("empty input", "");
      ("garbage input", "not a trace");
      ("truncated input", String.sub enc 0 (String.length enc - 1));
      ("trailing bytes", enc ^ "\x00");
    ]

(* -- Trace_store: key derivation ----------------------------------------- *)

let test_trace_store_keys () =
  let base ?(arch = "1080Ti") ?(sim_fuel = 1000) ?(trace_blocks = 1)
      ?(ident = [ "hfuse"; "ta"; "3"; "tb"; "5" ]) () =
    Trace_store.keys ~arch ~sim_fuel ~trace_blocks ~ident
  in
  let k = base () in
  Alcotest.(check bool) "deterministic" true (base () = k);
  (* fuel: a trace recorded under generous fuel must not mask a timeout
     under a tight one — both tiers invalidate *)
  let kf = base ~sim_fuel:2000 () in
  Alcotest.(check bool) "fuel changes mem digest" true (kf.Trace_store.mem <> k.Trace_store.mem);
  Alcotest.(check bool) "fuel changes disk digest" true
    (kf.Trace_store.disk <> k.Trace_store.disk);
  let kb = base ~trace_blocks:2 () in
  Alcotest.(check bool) "trace_blocks changes mem digest" true
    (kb.Trace_store.mem <> k.Trace_store.mem);
  Alcotest.(check bool) "trace_blocks changes disk digest" true
    (kb.Trace_store.disk <> k.Trace_store.disk);
  let ki = base ~ident:[ "hfuse"; "ta"; "4"; "tb"; "5" ] () in
  Alcotest.(check bool) "identity changes both digests" true
    (ki.Trace_store.mem <> k.Trace_store.mem
    && ki.Trace_store.disk <> k.Trace_store.disk);
  (* arch: traces are arch-independent, so the memory tier shares them
     across a two-arch sweep; persistent entries split defensively *)
  let ka = base ~arch:"V100" () in
  Alcotest.(check string) "arch keeps the mem digest" k.Trace_store.mem
    ka.Trace_store.mem;
  Alcotest.(check bool) "arch changes the disk digest" true
    (ka.Trace_store.disk <> k.Trace_store.disk)

(* -- Trace_store: disk round trip, quarantine, LRU ----------------------- *)

let clear_trace_root root =
  let rm d =
    if Sys.file_exists d then
      Array.iter
        (fun f ->
          let p = Filename.concat d f in
          if not (Sys.is_directory p) then Sys.remove p)
        (Sys.readdir d)
  in
  let traces = Filename.concat root "traces" in
  rm (Filename.concat traces Trace_store.version);
  rm (Filename.concat traces "quarantine")

let sf_key tag =
  Trace_store.keys ~arch:"1080Ti" ~sim_fuel:1000 ~trace_blocks:1
    ~ident:[ "test"; tag ]

let test_trace_store_roundtrip () =
  let root = tmp_cache_dir "traces_rt" in
  clear_trace_root root;
  Trace_store.clear_memory ();
  let store = Trace_store.create ~dir:root () in
  let key = sf_key "rt" in
  Alcotest.(check bool) "cold miss" true (Trace_store.find store ~key = None);
  let blocks = mk_blocks () in
  let before = Trace_store.tally () in
  Trace_store.add store ~key blocks;
  (* a second handle over a cold memory tier — as a fresh process would
     be — answers from disk, byte-identically *)
  Trace_store.clear_memory ();
  let store' = Trace_store.create ~dir:root () in
  (match Trace_store.find store' ~key with
  | None -> Alcotest.fail "warm disk lookup missed"
  | Some got ->
      Alcotest.(check string) "disk round trip byte-identical"
        (Trace.encode_blocks blocks)
        (Trace.encode_blocks got));
  (* ...and the disk hit was promoted into the memory tier *)
  (match Trace_store.find store' ~key with
  | Some _ -> ()
  | None -> Alcotest.fail "promotion into the memory tier failed");
  let d = Trace_store.diff ~before ~after:(Trace_store.tally ()) in
  Alcotest.(check int) "one recording" 1 d.Trace_store.recorded;
  Alcotest.(check int) "one disk store" 1 d.Trace_store.stores;
  Alcotest.(check int) "one disk hit" 1 d.Trace_store.disk_hits;
  Alcotest.(check bool) "memory hits counted" true (d.Trace_store.mem_hits >= 1)

let test_trace_store_quarantine () =
  let root = tmp_cache_dir "traces_q" in
  clear_trace_root root;
  Trace_store.clear_memory ();
  let store = Trace_store.create ~dir:root () in
  let key = sf_key "quarantine" in
  let blocks = mk_blocks () in
  Trace_store.add store ~key blocks;
  let path = Filename.concat (Trace_store.dir store) key.Trace_store.disk in
  corrupt_on_disk path;
  Trace_store.clear_memory ();
  let before = Trace_store.tally () in
  Alcotest.(check bool) "corrupt entry is a miss" true
    (Trace_store.find store ~key = None);
  let d = Trace_store.diff ~before ~after:(Trace_store.tally ()) in
  Alcotest.(check int) "one quarantined" 1 d.Trace_store.corrupt;
  Alcotest.(check bool) "entry moved aside" false (Sys.file_exists path);
  Alcotest.(check bool) "entry kept for post-mortem" true
    (Sys.file_exists
       (Filename.concat
          (Filename.concat (Filename.concat root "traces") "quarantine")
          key.Trace_store.disk));
  (* re-recording heals the store *)
  Trace_store.add store ~key blocks;
  Trace_store.clear_memory ();
  match Trace_store.find store ~key with
  | None -> Alcotest.fail "healed entry missed"
  | Some got ->
      Alcotest.(check string) "healed entry byte-identical"
        (Trace.encode_blocks blocks)
        (Trace.encode_blocks got)

let test_trace_store_single_flight () =
  Trace_store.clear_memory ();
  let store = Trace_store.disabled () in
  let key = sf_key "single_flight" in
  let blocks = mk_blocks () in
  let recordings = Atomic.make 0 in
  let before = Trace_store.tally () in
  let results =
    Pool.with_pool 4 (fun p ->
        Pool.map p
          (fun _ ->
            Trace_store.get_or_record store ~key (fun () ->
                Atomic.incr recordings;
                (* widen the race window: waiters must block on the
                   claim, not re-record *)
                Unix.sleepf 0.02;
                blocks))
          [| 0; 1; 2; 3 |])
  in
  Alcotest.(check int) "exactly one recording ran" 1 (Atomic.get recordings);
  Array.iter
    (fun got ->
      Alcotest.(check string) "every caller shares the recording"
        (Trace.encode_blocks blocks)
        (Trace.encode_blocks got))
    results;
  let d = Trace_store.diff ~before ~after:(Trace_store.tally ()) in
  Alcotest.(check int) "store saw one recording" 1 d.Trace_store.recorded

let test_trace_store_lru_eviction () =
  let root = tmp_cache_dir "traces_lru" in
  clear_trace_root root;
  Trace_store.clear_memory ();
  let store = Trace_store.create ~dir:root () in
  let blocks = mk_blocks () in
  let keys = List.map (fun i -> sf_key (Printf.sprintf "lru%d" i)) [ 1; 2; 3 ] in
  Fun.protect ~finally:(fun () ->
      Trace_store.set_mem_limit_override None;
      Trace_store.clear_memory ())
  @@ fun () ->
  (* a 1-byte bound: every insertion evicts its predecessor, but the
     just-inserted entry always survives (a search can keep the trace
     it is about to replay) *)
  Trace_store.set_mem_limit_override (Some 1);
  let before = Trace_store.tally () in
  List.iter (fun key -> Trace_store.add store ~key blocks) keys;
  Alcotest.(check int) "bound holds at one entry" 1 (Trace_store.mem_entries ());
  let d = Trace_store.diff ~before ~after:(Trace_store.tally ()) in
  Alcotest.(check int) "two evictions" 2 d.Trace_store.evictions;
  (* an evicted key re-fetches from disk, byte-identically *)
  match Trace_store.find store ~key:(List.hd keys) with
  | None -> Alcotest.fail "evicted entry lost (disk refetch missed)"
  | Some got ->
      Alcotest.(check string) "refetched entry byte-identical"
        (Trace.encode_blocks blocks)
        (Trace.encode_blocks got)

(* -- Runner.search over the trace store ---------------------------------- *)

let search_traced ~jobs ~dir =
  Runner.clear_cache ();
  let settings = Settings.resolve ~cache_dir:(Some dir) () in
  let mem = Memory.create () in
  let c1 = Runner.configure mem ta_tun ~size:3 in
  let c2 = Runner.configure mem tb_tun ~size:5 in
  Runner.search ~jobs ~settings ~cache:(Profile_cache.disabled ()) arch c1 c2

let test_search_trace_store_warm_identity () =
  let baseline = search_tun ~jobs:1 ~cache:(Profile_cache.disabled ()) in
  let root = tmp_cache_dir "traces_search" in
  clear_trace_root root;
  Runner.reset_search_stats ();
  let cold = search_traced ~jobs:2 ~dir:root in
  let cold_stats = Runner.search_stats () in
  Alcotest.(check bool) "store never changes results" true
    (sig_of cold = sig_of baseline);
  Alcotest.(check bool) "cold run records traces" true
    (cold_stats.Runner.traced > 0);
  Alcotest.(check int) "cold run hits nothing" 0 cold_stats.Runner.trace_hits;
  (* register-bound variants of one partition share a trace key: the
     batch dedups them instead of recording per candidate *)
  Alcotest.(check bool) "batch dedup merged candidates" true
    (cold_stats.Runner.trace_merged > 0);
  (* [search_traced] clears the in-process tiers, so this rerun answers
     from the persistent store alone — like a fresh process would *)
  Runner.reset_search_stats ();
  let warm = search_traced ~jobs:4 ~dir:root in
  let warm_stats = Runner.search_stats () in
  Alcotest.(check bool) "warm results identical to cold" true
    (sig_of warm = sig_of cold);
  Alcotest.(check bool) "warm best identical" true (best_of warm = best_of cold);
  Alcotest.(check int) "warm run records nothing" 0 warm_stats.Runner.traced;
  Alcotest.(check int) "warm run all store hits" cold_stats.Runner.traced
    warm_stats.Runner.trace_hits;
  (* an LRU bound tight enough to evict continuously still reproduces
     the same results (evict-then-refetch identity) *)
  Fun.protect ~finally:(fun () -> Trace_store.set_mem_limit_override None)
  @@ fun () ->
  Trace_store.set_mem_limit_override (Some 1);
  let bounded = search_traced ~jobs:2 ~dir:root in
  Alcotest.(check bool) "bounded store identical results" true
    (sig_of bounded = sig_of cold)

let test_search_trace_chaos_heal () =
  let baseline = search_tun ~jobs:2 ~cache:(Profile_cache.disabled ()) in
  Fun.protect ~finally:(fun () ->
      Fault.clear ();
      Fault.reset_tally ())
  @@ fun () ->
  (match Fault.configure "cache_corrupt:1.0,seed:5" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "configure rejected: %s" e);
  Fault.reset_tally ();
  let root = tmp_cache_dir "traces_chaos" in
  clear_trace_root root;
  (* every committed trace entry is torn by the chaos hook; lookups
     quarantine and re-record, and the search never notices *)
  let cold = search_traced ~jobs:2 ~dir:root in
  Alcotest.(check bool) "chaos cold identical to baseline" true
    (sig_of cold = sig_of baseline);
  Alcotest.(check bool) "trace corruption injected" true
    (Fault.injected_total () > 0);
  let before = Trace_store.tally () in
  let warm = search_traced ~jobs:2 ~dir:root in
  let d = Trace_store.diff ~before ~after:(Trace_store.tally ()) in
  Alcotest.(check bool) "chaos warm identical to baseline" true
    (sig_of warm = sig_of baseline);
  Alcotest.(check bool) "torn entries quarantined" true
    (d.Trace_store.corrupt > 0);
  Alcotest.(check bool) "quarantined entries re-recorded" true
    (d.Trace_store.recorded > 0);
  Alcotest.(check bool) "recoveries tallied" true
    (Fault.recovered_total () > 0)

(* -- run ids fold in the traced-block count ------------------------------- *)

let test_run_id_trace_blocks () =
  (* same bug class as the fuel fix: profiled times are a function of
     how many blocks were traced, so a journal recorded at one width
     must be invisible to a resume at another *)
  let id_a = Checkpoint.run_id ~trace_blocks:1 ~parts:[ "tb"; "t" ] () in
  let id_b = Checkpoint.run_id ~trace_blocks:4 ~parts:[ "tb"; "t" ] () in
  Alcotest.(check bool) "different width, different run id" true (id_a <> id_b);
  Alcotest.(check string) "same width, same run id" id_a
    (Checkpoint.run_id ~trace_blocks:1 ~parts:[ "tb"; "t" ] ());
  Alcotest.(check string) "default width is one block" id_a
    (Checkpoint.run_id ~parts:[ "tb"; "t" ] ());
  let dir = tmp_cache_dir "jnl_tb" in
  List.iter
    (fun id ->
      let f = Filename.concat dir (id ^ ".jnl") in
      if Sys.file_exists f then Sys.remove f)
    [ id_a; id_b ];
  let ck = Checkpoint.open_ ~dir ~run_id:id_a () in
  Checkpoint.record_time ck ~key:"cand" 1.0;
  Checkpoint.close ck;
  let ck_b = Checkpoint.open_ ~dir ~run_id:id_b () in
  Alcotest.(check int) "changed width: stale journal not reused" 0
    (Checkpoint.loaded ck_b);
  Checkpoint.close ck_b

let suite =
  [
    Alcotest.test_case "trace-key size-pair collision (regression)" `Quick
      test_trace_key_collision;
    Alcotest.test_case "profile cache round trip" `Quick
      test_profile_cache_roundtrip;
    Alcotest.test_case "profile cache corrupt entry" `Quick
      test_profile_cache_corrupt_entry;
    Alcotest.test_case "profile cache disabled" `Quick
      test_profile_cache_disabled;
    Alcotest.test_case "report cache round trip" `Quick
      test_report_cache_roundtrip;
    Alcotest.test_case "run_many report cache" `Quick
      test_run_many_report_cache;
    Alcotest.test_case "search determinism across -j" `Quick
      test_search_jobs_deterministic;
    Alcotest.test_case "warm cache reproduces cold run" `Quick
      test_search_cache_warm_matches_cold;
    Alcotest.test_case "corrupted entries quarantined" `Quick
      test_cache_quarantine;
    Alcotest.test_case "run_many heals a corrupted cache" `Quick
      test_run_many_recomputes_corrupted;
    Alcotest.test_case "checkpoint journal round trip" `Quick
      test_checkpoint_roundtrip;
    Alcotest.test_case "checkpoint torn tail dropped" `Quick
      test_checkpoint_torn_tail;
    Alcotest.test_case "resumed search is bit-identical" `Quick
      test_search_resume_identity;
    Alcotest.test_case "run id folds in the fuel budget" `Quick
      test_run_id_sim_fuel;
    Alcotest.test_case "model_eval window verdict" `Quick
      test_model_eval_window;
    Alcotest.test_case "JSON non-finite floats become null" `Quick
      test_json_nonfinite_null;
    Alcotest.test_case "stats JSON round-trips non-finite fields" `Quick
      test_json_stats_roundtrip_nonfinite;
    Alcotest.test_case "chaos run is bit-identical" `Quick
      test_search_chaos_identity;
    Alcotest.test_case "trace codec round trip" `Quick
      test_trace_codec_roundtrip;
    Alcotest.test_case "trace store key derivation" `Quick
      test_trace_store_keys;
    Alcotest.test_case "trace store disk round trip" `Quick
      test_trace_store_roundtrip;
    Alcotest.test_case "trace store quarantines torn entries" `Quick
      test_trace_store_quarantine;
    Alcotest.test_case "trace recording is single-flight" `Quick
      test_trace_store_single_flight;
    Alcotest.test_case "trace store LRU eviction and refetch" `Quick
      test_trace_store_lru_eviction;
    Alcotest.test_case "warm trace store reproduces cold search" `Quick
      test_search_trace_store_warm_identity;
    Alcotest.test_case "chaos-torn trace store heals" `Quick
      test_search_trace_chaos_heal;
    Alcotest.test_case "run id folds in trace blocks" `Quick
      test_run_id_trace_blocks;
  ]

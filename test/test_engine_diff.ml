(* Differential validation of the event-driven {!Gpusim.Timing} engine
   against the frozen {!Gpusim.Timing_legacy} reference.  Both engines
   replay the SAME physical trace arrays, and every report field must
   match — ints exactly, floats bitwise — on corpus workloads and on
   randomized multi-kernel launches (streams, spill, partial barriers).
   A final test pins the pooled figure measurement: -j 1 and -j 4 must
   produce the same Figure 9 row. *)

open Gpusim
open Hfuse_profiler

let arch = Arch.gtx1080ti

let to_legacy (s : Timing.launch_spec) : Timing_legacy.launch_spec =
  {
    (* shares [s]'s physical trace arrays: identical inputs by
       construction *)
    Timing_legacy.label = s.Timing.label;
    block_traces = s.Timing.block_traces;
    grid = s.Timing.grid;
    threads_per_block = s.Timing.threads_per_block;
    regs = s.Timing.regs;
    spill = s.Timing.spill;
    smem = s.Timing.smem;
    stream = s.Timing.stream;
  }

(* Names of the report fields that differ (empty = bit-identical). *)
let diff (n : Timing.report) (l : Timing_legacy.report) : string list =
  let fb = Int64.bits_of_float in
  let kernels_eq =
    List.length n.Timing.kernels = List.length l.Timing_legacy.kernels
    && List.for_all2
         (fun (a : Timing.kernel_metrics) (b : Timing_legacy.kernel_metrics) ->
           a.Timing.k_label = b.Timing_legacy.k_label
           && a.Timing.k_elapsed_cycles = b.Timing_legacy.k_elapsed_cycles
           && a.Timing.k_issued = b.Timing_legacy.k_issued
           && a.Timing.k_blocks_per_sm = b.Timing_legacy.k_blocks_per_sm)
         n.Timing.kernels l.Timing_legacy.kernels
  in
  List.filter_map
    (fun (name, ok) -> if ok then None else Some name)
    [
      ("elapsed_cycles", n.Timing.elapsed_cycles = l.Timing_legacy.elapsed_cycles);
      ("time_ms", fb n.Timing.time_ms = fb l.Timing_legacy.time_ms);
      ("issued_slots", n.Timing.issued_slots = l.Timing_legacy.issued_slots);
      ("total_slots", n.Timing.total_slots = l.Timing_legacy.total_slots);
      ( "issue_slot_util",
        fb n.Timing.issue_slot_util = fb l.Timing_legacy.issue_slot_util );
      ( "mem_stall_slots",
        n.Timing.mem_stall_slots = l.Timing_legacy.mem_stall_slots );
      ( "sync_stall_slots",
        n.Timing.sync_stall_slots = l.Timing_legacy.sync_stall_slots );
      ( "other_stall_slots",
        n.Timing.other_stall_slots = l.Timing_legacy.other_stall_slots );
      ("idle_slots", n.Timing.idle_slots = l.Timing_legacy.idle_slots);
      ("mem_stall_pct", fb n.Timing.mem_stall_pct = fb l.Timing_legacy.mem_stall_pct);
      ("occupancy", fb n.Timing.occupancy = fb l.Timing_legacy.occupancy);
      ("kernels", kernels_eq);
    ]

let run_both ?(policy = Timing.Fifo) (a : Arch.t)
    (specs : Timing.launch_spec list) =
  let lpolicy =
    match policy with
    | Timing.Fifo -> Timing_legacy.Fifo
    | Timing.Leftover -> Timing_legacy.Leftover
  in
  let n =
    try Ok (Timing.run ~policy a specs) with Timing.Timing_error m -> Error m
  in
  let l =
    try Ok (Timing_legacy.run ~policy:lpolicy a (List.map to_legacy specs))
    with Timing_legacy.Timing_error m -> Error m
  in
  (n, l)

let check_specs ?policy ctx (a : Arch.t) (specs : Timing.launch_spec list) =
  match run_both ?policy a specs with
  | Ok n, Ok l -> (
      match diff n l with
      | [] -> ()
      | ms ->
          Alcotest.failf "%s: report fields differ from legacy: %s" ctx
            (String.concat ", " ms))
  | Error a, Error b -> Alcotest.(check string) (ctx ^ ": same error") b a
  | Ok _, Error m ->
      Alcotest.failf "%s: legacy raised (%s) but the new engine succeeded" ctx m
  | Error m, Ok _ ->
      Alcotest.failf "%s: new engine raised (%s) but legacy succeeded" ctx m

(* -- synthetic launches (same helpers as test_timing) ------------------ *)

let mk_trace (instrs : Instr.t list) : Trace.t =
  let t = Trace.create () in
  List.iter (Trace.push t) instrs;
  t

let alus n = List.init n (fun _ -> Instr.Alu)

let spec ?(label = "t") ?(grid = 1) ?(threads = 32) ?(regs = 32) ?(spill = 0)
    ?(smem = 0) ?(stream = 0) (warp_instrs : Instr.t list list) :
    Timing.launch_spec =
  {
    Timing.label;
    block_traces = [| Array.of_list (List.map mk_trace warp_instrs) |];
    grid;
    threads_per_block = threads;
    regs;
    spill;
    smem;
    stream;
  }

let test_synthetic_corpus () =
  (* hand-picked launches covering every stall class and structural pipe *)
  check_specs "alu chain" arch [ spec [ alus 120 ] ];
  check_specs "mixed pipes" arch
    [
      spec ~threads:128 ~grid:4
        [
          alus 20 @ [ Instr.Ld_global (8, 4) ] @ alus 30;
          [ Instr.Ld_shared 2; Instr.St_shared 1 ] @ alus 40;
          [ Instr.Sfu; Instr.Falu; Instr.Falu ] @ alus 25;
          [ Instr.St_global 4 ] @ alus 10 @ [ Instr.Atom_shared 3 ];
        ];
    ];
  check_specs "full barrier" arch
    [
      spec ~threads:64
        [ alus 200 @ [ Instr.Bar (0, 64) ] @ alus 5;
          alus 10 @ [ Instr.Bar (0, 64) ] @ alus 5 ];
    ];
  check_specs "partial barrier" arch
    [
      spec ~threads:96
        [
          alus 5 @ [ Instr.Bar (1, 64) ] @ alus 5;
          alus 90 @ [ Instr.Bar (1, 64) ];
          alus 3;
        ];
    ];
  check_specs "spill + smem occupancy" arch
    [ spec ~grid:12 ~threads:512 ~regs:96 ~spill:24 ~smem:16384
        (List.init 16 (fun i -> alus (50 + (7 * i)))) ];
  check_specs "two streams fifo" arch
    [
      spec ~label:"a" ~grid:16 ~threads:1024 ~stream:0
        (List.init 32 (fun _ -> alus 150));
      spec ~label:"b" ~grid:6 ~threads:256 ~stream:1
        (List.init 8 (fun _ -> [ Instr.Ld_global (4, 0) ] @ alus 40));
    ];
  check_specs ~policy:Timing.Leftover "two streams leftover" arch
    [
      spec ~label:"a" ~grid:16 ~threads:1024 ~stream:0
        (List.init 32 (fun _ -> alus 150));
      spec ~label:"b" ~grid:6 ~threads:256 ~stream:1
        (List.init 8 (fun _ -> alus 30));
    ];
  check_specs "volta fp32" Arch.v100 [ spec [ List.init 80 (fun _ -> Instr.Falu) ] ];
  (* both engines must refuse identically *)
  check_specs "deadlock" arch [ spec [ [ Instr.Bar (2, 64) ] ] ];
  check_specs "misfit" arch [ spec ~threads:1024 ~regs:255 [ alus 1 ] ]

(* -- corpus workloads -------------------------------------------------- *)

let corpus_pair ctx (a : Arch.t) n1 n2 ~size1 ~size2 =
  let s1 = Kernel_corpus.Registry.find_exn n1
  and s2 = Kernel_corpus.Registry.find_exn n2 in
  let mem = Memory.create () in
  let c1 = Runner.configure mem s1 ~size:size1 in
  let c2 = Runner.configure mem s2 ~size:size2 in
  check_specs (ctx ^ ": solo1") a [ Runner.spec_of c1 ~stream:0 () ];
  check_specs (ctx ^ ": native")
    a
    [ Runner.spec_of c1 ~stream:0 (); Runner.spec_of c2 ~stream:1 () ];
  match Runner.naive_hfuse c1 c2 with
  | None -> ()
  | Some f ->
      let traces = Runner.hfuse_traces c1 c2 f in
      check_specs (ctx ^ ": hfused") a
        [ Runner.hfuse_spec f ~reg_bound:None ~traces ]

let test_corpus_pairs () =
  corpus_pair "Batchnorm+Hist/1080Ti" arch "Batchnorm" "Hist" ~size1:8 ~size2:8;
  corpus_pair "Batchnorm+Hist/V100" Arch.v100 "Batchnorm" "Hist" ~size1:8
    ~size2:8;
  corpus_pair "Upsample+Hist/1080Ti" arch "Upsample" "Hist" ~size1:8 ~size2:8;
  corpus_pair "Blake2B+Ethash/1080Ti" arch "Blake2B" "Ethash" ~size1:8 ~size2:8

(* -- randomized launches ----------------------------------------------- *)

let gen_instr : Instr.t QCheck.Gen.t =
  let open QCheck.Gen in
  frequency
    [
      (8, return Instr.Alu);
      (2, return Instr.Falu);
      (1, return Instr.Sfu);
      (1, return Instr.Shfl);
      ( 3,
        pair (int_bound 6) (int_bound 6) >|= fun (m, h) ->
        if m = 0 && h = 0 then Instr.Ld_global (1, 0) else Instr.Ld_global (m, h)
      );
      (1, int_range 1 6 >|= fun s -> Instr.St_global s);
      (1, int_range 1 4 >|= fun d -> Instr.Ld_shared d);
      (1, int_range 1 4 >|= fun d -> Instr.St_shared d);
      (1, int_range 1 3 >|= fun d -> Instr.Atom_shared d);
      (1, return Instr.Ld_local);
      (1, return Instr.St_local);
      (1, return Instr.Branch);
    ]

(* One random kernel: 1-8 warps of random work; optionally a full-block
   barrier on every warp and a partial barrier over the first k warps
   (every participant reaches it, so the launch always terminates). *)
let gen_kernel (idx : int) : Timing.launch_spec QCheck.Gen.t =
  let open QCheck.Gen in
  int_range 1 8 >>= fun n_warps ->
  int_range 1 6 >>= fun grid ->
  oneofl [ 32; 40; 64; 96 ] >>= fun regs ->
  oneofl [ 0; 0; 0; 12 ] >>= fun spill ->
  oneofl [ 0; 0; 8192 ] >>= fun smem ->
  int_bound 1 >>= fun stream ->
  bool >>= fun full_bar ->
  bool >>= fun partial_bar ->
  int_range 1 n_warps >>= fun k ->
  list_repeat n_warps (list_size (int_bound 30) gen_instr) >>= fun warps ->
  let threads = n_warps * 32 in
  let warps =
    if full_bar then List.map (fun w -> w @ [ Instr.Bar (0, threads) ]) warps
    else warps
  in
  let warps =
    if partial_bar then
      List.mapi
        (fun i w -> if i < k then w @ [ Instr.Bar (1, k * 32) ] else w)
        warps
    else warps
  in
  return (spec ~label:(Printf.sprintf "k%d" idx) ~grid ~threads ~regs ~spill
            ~smem ~stream warps)

let gen_specs : Timing.launch_spec list QCheck.Gen.t =
  let open QCheck.Gen in
  int_range 1 3 >>= fun n ->
  let rec go i acc =
    if i = n then return (List.rev acc)
    else gen_kernel i >>= fun s -> go (i + 1) (s :: acc)
  in
  go 0 []

let print_specs (specs : Timing.launch_spec list) : string =
  String.concat "; "
    (List.map
       (fun (s : Timing.launch_spec) ->
         Printf.sprintf
           "%s{grid=%d thr=%d regs=%d spill=%d smem=%d stream=%d lens=[%s]}"
           s.Timing.label s.Timing.grid s.Timing.threads_per_block
           s.Timing.regs s.Timing.spill s.Timing.smem s.Timing.stream
           (String.concat ","
              (Array.to_list
                 (Array.map
                    (fun t -> string_of_int (Trace.length t))
                    s.Timing.block_traces.(0)))))
       specs)

let random_specs_bitidentical =
  QCheck.Test.make ~name:"randomized launches: new report = legacy report"
    ~count:80
    (QCheck.make ~print:print_specs gen_specs)
    (fun specs ->
      match run_both arch specs with
      | Ok n, Ok l -> (
          match diff n l with
          | [] -> true
          | ms ->
              QCheck.Test.fail_reportf "report fields differ: %s"
                (String.concat ", " ms))
      | Error a, Error b -> a = b
      | Ok _, Error m ->
          QCheck.Test.fail_reportf "legacy raised (%s), new succeeded" m
      | Error m, Ok _ ->
          QCheck.Test.fail_reportf "new raised (%s), legacy succeeded" m)

(* -- engine self-profiling --------------------------------------------- *)

let test_engine_stats () =
  (* dependent global loads leave long provably-idle windows; a grid
     bigger than residency forces block turnover (warp reuse) *)
  let loads = List.init 12 (fun _ -> Instr.Ld_global (8, 0)) in
  let specs =
    [
      (* regs 128 caps residency at 4 blocks/SM, so a 10x-SM grid takes
         several waves and completed blocks' warp records get recycled *)
      spec ~label:"mem" ~grid:(10 * arch.Arch.sms) ~threads:128 ~regs:128
        (List.init 4 (fun _ -> loads @ alus 20));
    ]
  in
  let _, es = Timing.run_with_stats arch specs in
  Alcotest.(check bool)
    (Printf.sprintf "warp_reuses > 0 (got %d)" es.Timing.warp_reuses)
    true (es.Timing.warp_reuses > 0);
  Alcotest.(check bool) "some cycles visited" true (es.Timing.cycles_stepped > 0);
  (* a single-block grid keeps one SM issuing while the rest sleep, so
     visited cycles are served from the sleepers' cached contribution *)
  let _, es1 =
    Timing.run_with_stats arch [ spec ~label:"solo" [ alus 400 ] ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "sm_steps_skipped > 0 (got %d)" es1.Timing.sm_steps_skipped)
    true (es1.Timing.sm_steps_skipped > 0)

(* -- pooled figure measurement determinism ----------------------------- *)

let numeric_of_row (r : Experiment.fused_row) =
  (* project away Spec.t/Arch.t (closures) before comparing *)
  let v (x : Experiment.fused_variant) =
    ( Int64.bits_of_float x.Experiment.speedup_pct,
      x.Experiment.metrics,
      x.Experiment.d1,
      x.Experiment.d2,
      x.Experiment.reg_bound )
  in
  ( Int64.bits_of_float r.Experiment.native_util,
    v r.Experiment.no_regcap,
    Option.map v r.Experiment.regcap )

let test_pool_determinism () =
  let pair =
    ( Kernel_corpus.Registry.find_exn "Batchnorm",
      Kernel_corpus.Registry.find_exn "Hist" )
  in
  let sizes = [ ("Batchnorm", 4); ("Hist", 4) ] in
  let r1 = Experiment.figure9_pair ~jobs:1 arch sizes pair in
  Runner.clear_cache ();
  let r4 = Experiment.figure9_pair ~jobs:4 arch sizes pair in
  Alcotest.(check bool) "-j 1 and -j 4 rows identical" true
    (numeric_of_row r1 = numeric_of_row r4)

let suite =
  [
    Alcotest.test_case "synthetic launches vs legacy" `Quick
      test_synthetic_corpus;
    Alcotest.test_case "corpus pairs vs legacy" `Slow test_corpus_pairs;
    Alcotest.test_case "engine stats counters" `Quick test_engine_stats;
    Alcotest.test_case "pooled figure9 determinism" `Slow test_pool_determinism;
  ]
  @ Test_util.qcheck_cases [ random_specs_bitidentical ]

(* The repair engine: one regression per serviceable [Diag.kind]
   strategy, the unserviceable negatives, a qcheck byte-identity
   property over repaired fusions (the differential gate must agree
   with every admitted repair), the corpus-wide spot-check that every
   fully-rejected registry pair is repairable, and [Runner.search
   ~repair] determinism across worker counts. *)

open Cuda
open Hfuse_core
module Diag = Hfuse_analysis.Diag
module V = Hfuse_analysis.Verifier
module Repair = Hfuse_repair.Repair
module Gen = Hfuse_fuzz.Gen
module Oracle = Hfuse_fuzz.Oracle
module Runner = Hfuse_profiler.Runner
module Profile_cache = Hfuse_profiler.Profile_cache
module Settings = Hfuse_profiler.Settings
module Registry = Kernel_corpus.Registry
module Spec = Kernel_corpus.Spec

let info = Test_util.info_of_source

let ok_exn = function
  | Ok r -> r
  | Error f -> Alcotest.failf "repair failed: %a" Repair.pp_failure f

let has_action (acts : Repair.action list) tag =
  List.exists (fun (a : Repair.action) -> a.Repair.a_tag = tag) acts

let rejects k1 k2 =
  match Hfuse.generate k1 k2 with
  | _ -> false
  | exception Diag.Unsafe_fusion _ -> true

(* -- per-strategy regressions ------------------------------------------ *)

(* each already fused once: both carry a hardware barrier on id 1 *)
let k_bar1 name =
  Fmt.str
    {|
__global__ void %s(float* a, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  asm("bar.sync 1, 128;");
  if (i < n) { a[i] = a[i] + 1.0f; }
}
|}
    name

let k_plain =
  {|
__global__ void plain(float* b, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) { b[i] = b[i] * 2.0f; }
}
|}

let test_repairs_barrier_id_collision () =
  let k1 = info ~block:(128, 1, 1) (k_bar1 "left") in
  let k2 = info ~block:(128, 1, 1) (k_bar1 "right") in
  Alcotest.(check bool) "pair starts rejected" true (rejects k1 k2);
  let r = ok_exn (Repair.attempt k1 k2) in
  Alcotest.(check bool) "renumbered a barrier" true
    (has_action r.Repair.actions "renumber-barrier");
  Alcotest.(check bool) "repaired fusion verifies clean" true
    (Diag.is_clean (Hfuse.verify r.Repair.fused))

let test_repairs_oversized_count () =
  (* a pre-existing barrier waiting for more threads than its side owns *)
  let src =
    {|
__global__ void wide(float* a, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  asm("bar.sync 5, 256;");
  if (i < n) { a[i] = a[i] + 1.0f; }
}
|}
  in
  let k1 = info ~block:(128, 1, 1) ~tunability:Kernel_info.Fixed src in
  let k2 = info ~block:(128, 1, 1) ~tunability:Kernel_info.Fixed k_plain in
  Alcotest.(check bool) "pair starts rejected" true (rejects k1 k2);
  let r = ok_exn (Repair.attempt k1 k2) in
  Alcotest.(check bool) "count rewritten to the side's partition" true
    (has_action r.Repair.actions "set-barrier-count");
  Alcotest.(check bool) "repaired fusion verifies clean" true
    (Diag.is_clean (Hfuse.verify r.Repair.fused))

let test_repairs_uniform_write_race () =
  let racy =
    {|
__global__ void racy(float* a, int n) {
  __shared__ float acc[32];
  acc[0] = a[threadIdx.x];
  __syncthreads();
  if (threadIdx.x < n) { a[threadIdx.x] = acc[0]; }
}
|}
  in
  let k1 = info ~block:(128, 1, 1) ~tunability:Kernel_info.Fixed racy in
  let k2 = info ~block:(128, 1, 1) ~tunability:Kernel_info.Fixed k_plain in
  Alcotest.(check bool) "pair starts rejected" true (rejects k1 k2);
  let r = ok_exn (Repair.attempt k1 k2) in
  Alcotest.(check bool) "write elected behind a leader" true
    (has_action r.Repair.actions "guard-shared-write");
  Alcotest.(check bool) "repaired fusion verifies clean" true
    (Diag.is_clean (Hfuse.verify r.Repair.fused))

let test_repairs_over_budget_registers () =
  (* 512 + 512 threads at ~200 registers each blow the 64K-register SM;
     the only residency-restoring bound is 65536/1024 = 64 *)
  let heavy name =
    Fmt.str
      {|
__global__ void %s(float* a, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) { a[i] = a[i] + 1.0f; }
}
|}
      name
  in
  let k1 =
    info ~block:(512, 1, 1) ~regs:200 ~tunability:Kernel_info.Fixed
      (heavy "h1")
  in
  let k2 =
    info ~block:(512, 1, 1) ~regs:200 ~tunability:Kernel_info.Fixed
      (heavy "h2")
  in
  Alcotest.(check bool) "pair starts rejected" true (rejects k1 k2);
  let r = ok_exn (Repair.attempt k1 k2) in
  Alcotest.(check bool) "register bound forced" true
    (has_action r.Repair.actions "bound-registers");
  Alcotest.(check (option int)) "residency bound" (Some 64) r.Repair.reg_bound;
  let fused = r.Repair.fused in
  let regs =
    match r.Repair.reg_bound with
    | Some b -> min b fused.Hfuse.regs
    | None -> fused.Hfuse.regs
  in
  Alcotest.(check bool) "clean under the forced bound" true
    (Diag.is_clean
       (V.verify
          ~threads:(Hfuse.threads_per_block fused)
          ~regs ~smem_dynamic:fused.Hfuse.smem_dynamic fused.Hfuse.sides))

let test_divergent_barrier_unserviceable () =
  let divergent =
    {|
__global__ void div_bar(float* a, int n) {
  __shared__ float buf[128];
  int i = threadIdx.x;
  if (i < 32) {
    buf[i] = a[i];
    __syncthreads();
  }
  if (i < n) { a[i] = buf[0]; }
}
|}
  in
  let k1 = info ~block:(128, 1, 1) ~tunability:Kernel_info.Fixed divergent in
  let k2 = info ~block:(128, 1, 1) ~tunability:Kernel_info.Fixed k_plain in
  Alcotest.(check bool) "pair starts rejected" true (rejects k1 k2);
  match Repair.attempt k1 k2 with
  | Ok _ -> Alcotest.fail "divergent barriers must be unserviceable"
  | Error (Repair.Unserviceable ds) ->
      Alcotest.(check bool) "diagnostics preserved" true
        (List.exists
           (fun (d : Diag.t) ->
             match d.Diag.kind with
             | Diag.Divergent_barrier _ -> true
             | _ -> false)
           ds)
  | Error f -> Alcotest.failf "expected Unserviceable, got %a" Repair.pp_failure f

(* -- sides-level strategies (the check verb's path) -------------------- *)

let test_sides_repairs_full_barrier () =
  let half = V.side ~label:"half" ~count:128 [ Ast.mk_stmt Ast.Sync ] in
  let rest = V.side ~label:"rest" ~count:128 [] in
  let before = V.verify ~threads:256 ~regs:32 ~smem_dynamic:0 [ half; rest ] in
  Alcotest.(check bool) "full barrier rejected first" false
    (Diag.is_clean before);
  let r =
    ok_exn
      (Repair.repair_sides ~threads:256 ~regs:32 ~smem_dynamic:0
         [ half; rest ])
  in
  Alcotest.(check bool) "rewritten to a counted barrier" true
    (has_action r.Repair.r_actions "partial-barrier");
  Alcotest.(check bool) "repaired sides verify clean" true
    (Diag.is_clean
       (V.verify ~threads:256 ~regs:32 ~smem_dynamic:r.Repair.r_smem_dynamic
          r.Repair.r_sides))

let test_sides_rebases_overlap () =
  let region name off bytes =
    { V.r_name = name; r_bytes = bytes; r_offset = off; r_dynamic = true }
  in
  let s1 = V.side ~label:"left" ~count:128 ~shared:[ region "lbuf" 0 512 ] [] in
  let s2 =
    V.side ~label:"right" ~count:128 ~shared:[ region "rbuf" 256 512 ] []
  in
  let r =
    ok_exn
      (Repair.repair_sides ~threads:256 ~regs:16 ~smem_dynamic:768 [ s1; s2 ])
  in
  Alcotest.(check bool) "regions re-based" true
    (has_action r.Repair.r_actions "rebase-shared-regions");
  Alcotest.(check int) "serial 16-aligned total" 1024 r.Repair.r_smem_dynamic;
  Alcotest.(check bool) "repaired sides verify clean" true
    (Diag.is_clean
       (V.verify ~threads:256 ~regs:16 ~smem_dynamic:r.Repair.r_smem_dynamic
          r.Repair.r_sides))

(* -- byte-identity: the differential gate agrees with every repair ----- *)

(* prepend [bar.sync 1, blockDim] to a generated kernel: doing it to
   both sides of a pair manufactures a guaranteed id collision (and
   usually a count mismatch after partitioning) that repair must
   renumber/recount without changing observable bytes *)
let prepend_bar1 (k : Gen.kernel) : Gen.kernel =
  let ki = k.Gen.g_info in
  let threads = Kernel_info.threads_per_block ki in
  let bar = Ast.mk_stmt (Ast.Bar_sync (1, threads)) in
  let fn = { ki.Kernel_info.fn with Ast.f_body = bar :: ki.Kernel_info.fn.Ast.f_body } in
  let functions =
    List.map
      (fun (f : Ast.fn) ->
        if String.equal f.Ast.f_name fn.Ast.f_name then fn else f)
      ki.Kernel_info.prog.Ast.functions
  in
  {
    k with
    Gen.g_info =
      { ki with Kernel_info.fn; prog = { ki.Kernel_info.prog with Ast.functions } };
  }

let prop_injected_collision_repair_sound =
  QCheck.Test.make ~name:"repaired fusions are byte-identical" ~count:15
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let case =
        Gen.generate_case ~weights:Gen.default_weights ~max_kernels:2 ~seed ()
      in
      match case.Gen.c_kernels with
      | [ k1; k2 ] -> (
          let case =
            { case with Gen.c_kernels = [ prepend_bar1 k1; prepend_bar1 k2 ] }
          in
          match Oracle.run case with
          | Oracle.Rejected _ -> (
              match case.Gen.c_kernels with
              | [ k1'; k2' ] -> (
                  match Repair.attempt k1'.Gen.g_info k2'.Gen.g_info with
                  | Error _ -> true (* failing closed is always sound *)
                  | Ok r -> (
                      match Oracle.run_repaired case r.Repair.fused with
                      | Oracle.Equivalent -> true
                      | Oracle.Invalid_input _ ->
                          true (* the unfused reference itself broke *)
                      | v ->
                          QCheck.Test.fail_reportf "unsound repair: %s"
                            (Oracle.verdict_to_string v)))
              | _ -> true)
          | _ -> true (* the injected collision did not bite; vacuous *))
      | _ -> true)

(* -- corpus: every fully-rejected registry pair is repairable ---------- *)

let test_corpus_rejected_pairs_all_repairable () =
  let specs = Array.of_list Registry.extended in
  let n = Array.length specs in
  let rejected_pairs = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let s1 = specs.(i) and s2 = specs.(j) in
      let mem = Gpusim.Memory.create () in
      let k1 = Spec.kernel_info s1 (s1.Spec.instantiate mem ~size:1) in
      let k2 = Spec.kernel_info s2 (s2.Spec.instantiate mem ~size:1) in
      let parts = Partition.enumerate k1 k2 ~d0:1024 in
      let rejections =
        List.filter_map
          (fun { Partition.d1; d2 } ->
            let c1 = Kernel_info.with_block_dim k1 d1 in
            let c2 = Kernel_info.with_block_dim k2 d2 in
            match Hfuse.generate c1 c2 with
            | _ -> None
            | exception Diag.Unsafe_fusion _ -> Some (c1, c2))
          parts
      in
      if parts <> [] && List.length rejections = List.length parts then begin
        incr rejected_pairs;
        let c1, c2 = List.hd rejections in
        let r =
          match Repair.attempt c1 c2 with
          | Ok r -> r
          | Error f ->
              Alcotest.failf "%s+%s unrepairable: %a" s1.Spec.name s2.Spec.name
                Repair.pp_failure f
        in
        Alcotest.(check bool)
          (Fmt.str "%s+%s repaired via a register bound" s1.Spec.name
             s2.Spec.name)
          true
          (has_action r.Repair.actions "bound-registers"
          && r.Repair.reg_bound <> None)
      end
    done
  done;
  (* the honest census EXPERIMENTS.md reports: the crypto kernels'
     register appetite rejects every pairing with the wider corpus *)
  Alcotest.(check int) "36 fully-rejected registry pairs" 36 !rejected_pairs

(* -- Runner.search ~repair: admission, gating, determinism ------------- *)

let search_repaired ~jobs =
  Runner.clear_cache ();
  Runner.reset_search_stats ();
  let mem = Gpusim.Memory.create () in
  let c1 = Runner.configure mem (Registry.find_exn "Maxpool") ~size:1 in
  let c2 = Runner.configure mem (Registry.find_exn "SHA256") ~size:1 in
  let r =
    Runner.search ~jobs
      ~settings:(Settings.resolve ~cache_dir:None ~fault:None ())
      ~cache:(Profile_cache.disabled ()) ~repair:true Gpusim.Arch.gtx1080ti c1
      c2
  in
  (r, Runner.search_stats ())

let cand_sig (r : Search.result) =
  List.map
    (fun (c : Search.candidate) ->
      ( c.Search.fused.Hfuse.d1,
        c.Search.fused.Hfuse.d2,
        c.Search.config.Search.reg_bound,
        c.Search.repaired,
        c.Search.time ))
    r.Search.all

let test_search_repair_admits_rejected_pair () =
  (* without repair the pair has no valid partition at all *)
  (let mem = Gpusim.Memory.create () in
   let c1 = Runner.configure mem (Registry.find_exn "Maxpool") ~size:1 in
   let c2 = Runner.configure mem (Registry.find_exn "SHA256") ~size:1 in
   match
     Runner.search
       ~settings:(Settings.resolve ~cache_dir:None ~fault:None ())
       ~cache:(Profile_cache.disabled ()) Gpusim.Arch.gtx1080ti c1 c2
   with
   | _ -> Alcotest.fail "expected No_valid_partition without repair"
   | exception Search.No_valid_partition _ -> ());
  let r, stats = search_repaired ~jobs:1 in
  Alcotest.(check int) "nothing admitted directly" 0 r.Search.admitted;
  Alcotest.(check bool) "at least one partition repaired" true
    (r.Search.repaired >= 1);
  Alcotest.(check bool) "best candidate carries provenance" true
    r.Search.best.Search.repaired;
  Alcotest.(check bool) "stats agree" true (stats.Runner.repaired >= 1);
  Alcotest.(check int) "no unsound repairs" 0 stats.Runner.repair_unsound;
  Alcotest.(check bool) "attempts cover admissions" true
    (stats.Runner.repair_attempted >= stats.Runner.repaired)

let test_search_repair_deterministic_across_jobs () =
  let base, _ = search_repaired ~jobs:1 in
  let wide, _ = search_repaired ~jobs:4 in
  Alcotest.(check bool) "candidates identical at -j 4" true
    (cand_sig wide = cand_sig base)

let suite =
  [
    Alcotest.test_case "repairs barrier-id collision" `Quick
      test_repairs_barrier_id_collision;
    Alcotest.test_case "repairs oversized count" `Quick
      test_repairs_oversized_count;
    Alcotest.test_case "repairs uniform-write race" `Quick
      test_repairs_uniform_write_race;
    Alcotest.test_case "repairs over-budget registers" `Quick
      test_repairs_over_budget_registers;
    Alcotest.test_case "divergent barrier unserviceable" `Quick
      test_divergent_barrier_unserviceable;
    Alcotest.test_case "sides: full barrier to counted" `Quick
      test_sides_repairs_full_barrier;
    Alcotest.test_case "sides: overlap re-based" `Quick
      test_sides_rebases_overlap;
    Alcotest.test_case "corpus rejected pairs repairable" `Slow
      test_corpus_rejected_pairs_all_repairable;
    Alcotest.test_case "search --repair admits rejected pair" `Slow
      test_search_repair_admits_rejected_pair;
    Alcotest.test_case "search --repair deterministic" `Slow
      test_search_repair_deterministic_across_jobs;
  ]
  @ Test_util.qcheck_cases [ prop_injected_collision_repair_sound ]

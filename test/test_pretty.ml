(* Printer tests: specific precedence cases plus a QCheck round-trip
   property — printing a random expression and re-parsing it must yield
   the same AST. *)

open Cuda

let reprint src = Pretty.expr_to_string (Parser.parse_expr_string src)

let test_minimal_parens () =
  Alcotest.(check string) "assoc chain kept flat" "a + b + c"
    (reprint "a + b + c");
  Alcotest.(check string)
    "right-nested sub parenthesised" "a - (b - c)"
    (reprint "a - (b - c)");
  Alcotest.(check string) "cast tight" "(float)x + y" (reprint "(float)x + y");
  Alcotest.(check string)
    "assign in call arg" "f(a = b)" (reprint "f(a = b)");
  Alcotest.(check string)
    "ternary nested" "a ? b : c ? d : e"
    (reprint "a ? b : c ? d : e");
  Alcotest.(check string)
    "index of deref" "(*p)[i]" (reprint "(*p)[i]")

let test_stmt_printing () =
  let s = Parser.parse_stmts_string "if (a < b) { x += 1; } else y = 2;" in
  let printed = String.concat "\n" (List.map Pretty.stmt_to_string s) in
  let s2 = Parser.parse_stmts_string printed in
  Alcotest.(check bool) "stmt round trip" true (Ast_util.equal_normalized s s2)

let test_fn_round_trip () =
  let src =
    {|
__global__ void k(float* a, int n) {
  __shared__ float buf[32];
  extern __shared__ unsigned char dyn[];
  for (int i = threadIdx.x; i < n; i += blockDim.x) {
    if (i % 2 == 0) { a[i] = buf[i % 32] * 2.0f; } else { continue; }
  }
  __syncthreads();
  asm("bar.sync 1, 128;");
  do { n--; } while (n > 0);
}
|}
  in
  let _, f = Test_util.kernel_of_source src in
  let _, f2 = Test_util.kernel_of_source (Pretty.fn_to_string f) in
  Alcotest.(check bool)
    "function body round trip" true
    (Ast_util.equal_normalized f.f_body f2.f_body);
  Alcotest.(check int)
    "params preserved"
    (List.length f.f_params)
    (List.length f2.f_params)

(* -- QCheck round-trip ------------------------------------------------ *)

let gen_expr : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let var = oneofl [ "a"; "b"; "c"; "x"; "y" ] >|= fun v -> Ast.Var v in
  let lit =
    oneof
      [
        (map (fun n -> Ast.Int_lit (Int64.of_int (abs n), Ctype.Int)) small_int);
        ( map
            (fun n -> Ast.Int_lit (Int64.of_int (abs n), Ctype.UInt))
            small_int );
        return (Ast.Float_lit (1.5, Ctype.Float));
        return (Ast.Bool_lit true);
        return (Ast.Builtin (Ast.Thread_idx Ast.X));
      ]
  in
  let binops =
    [
      Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Land; Ast.Lor;
      Ast.Band; Ast.Bor; Ast.Bxor; Ast.Shl; Ast.Shr; Ast.Eq; Ast.Ne; Ast.Lt;
      Ast.Le; Ast.Gt; Ast.Ge;
    ]
  in
  fix
    (fun self n ->
      if n <= 0 then oneof [ var; lit ]
      else
        frequency
          [
            (2, oneof [ var; lit ]);
            ( 6,
              oneofl binops >>= fun op ->
              self (n / 2) >>= fun a ->
              self (n / 2) >|= fun b -> Ast.Binop (op, a, b) );
            ( 1,
              oneofl [ Ast.Neg; Ast.Lnot; Ast.Bnot ] >>= fun op ->
              self (n - 1) >|= fun a -> Ast.Unop (op, a) );
            ( 1,
              self (n / 3) >>= fun c ->
              self (n / 3) >>= fun a ->
              self (n / 3) >|= fun b -> Ast.Ternary (c, a, b) );
            ( 1,
              self (n - 1) >|= fun a -> Ast.Cast (Ctype.Float, a) );
            ( 1,
              self (n / 2) >>= fun a ->
              self (n / 2) >|= fun i ->
              Ast.Index (Ast.Var "arr", Ast.Binop (Ast.Add, a, i)) );
            ( 1,
              self (n / 2) >>= fun a ->
              self (n / 2) >|= fun b -> Ast.Call ("min", [ a; b ]) );
          ])
    8

let arb_expr =
  QCheck.make ~print:Pretty.expr_to_string gen_expr

(* The parser canonicalises negation of a literal into a negative
   literal (so printed negative constants round-trip); the property
   compares against that canonical form. *)
let canon =
  Ast_util.map_expr (function
    | Ast.Unop (Ast.Neg, Ast.Int_lit (v, ty))
      when not (Int64.equal v Int64.min_int) ->
        Ast.Int_lit (Int64.neg v, ty)
    | Ast.Unop (Ast.Neg, Ast.Float_lit (v, ty)) -> Ast.Float_lit (-.v, ty)
    | e -> e)

let round_trip_prop =
  QCheck.Test.make ~name:"print/parse round trip" ~count:500 arb_expr
    (fun e ->
      let printed = Pretty.expr_to_string e in
      match Parser.parse_expr_string printed with
      | e' -> canon e = e'
      | exception _ ->
          QCheck.Test.fail_reportf "did not re-parse: %s" printed)

let print_deterministic =
  QCheck.Test.make ~name:"printing is deterministic" ~count:100 arb_expr
    (fun e ->
      String.equal (Pretty.expr_to_string e) (Pretty.expr_to_string e))

let suite =
  [
    Alcotest.test_case "minimal parens" `Quick test_minimal_parens;
    Alcotest.test_case "statement printing" `Quick test_stmt_printing;
    Alcotest.test_case "function round trip" `Quick test_fn_round_trip;
  ]
  @ Test_util.qcheck_cases [ round_trip_prop; print_deterministic ]

(* Fleet tests: deterministic corpus curation, shard partitioning, row
   identity across shard counts, and kill/resume journal replay. *)

module Corpus = Hfuse_fleet.Corpus
module Fleet = Hfuse_fleet.Fleet
module Gen = Hfuse_fuzz.Gen
module Oracle = Hfuse_fuzz.Oracle
module Registry = Kernel_corpus.Registry
module Prng = Kernel_corpus.Prng
module Settings = Hfuse_profiler.Settings

(* a few in-process searches per test: quiet, no cache, no chaos *)
let test_settings () =
  Settings.resolve ~cache_dir:None ~fault:None ()

let test_cfg ?(limit = 3) () =
  { (Fleet.default_config ()) with limit = Some limit; settings = test_settings () }

let row_repr (r : Fleet.row) =
  Printf.sprintf "%d|%s|%s|%s|%s|%.17g|%.17g|%.17g" r.Fleet.r_index
    r.Fleet.r_pair r.Fleet.r_domain r.Fleet.r_status r.Fleet.r_digest
    r.Fleet.r_native_ms r.Fleet.r_best_ms r.Fleet.r_speedup_pct

let test_corpus_curated () =
  let entries = Corpus.curated () in
  Alcotest.(check int) "curated count" Corpus.generated_count
    (List.length entries);
  (* ascending, duplicate-free seeds; names encode the seed *)
  let seeds = List.map (fun e -> e.Corpus.seed) entries in
  Alcotest.(check bool) "seeds ascending" true
    (List.sort_uniq compare seeds = seeds);
  List.iter
    (fun e ->
      Alcotest.(check string) "name encodes seed"
        (Corpus.kernel_name e.Corpus.seed)
        e.Corpus.spec.Kernel_corpus.Spec.name)
    entries

let test_corpus_replay () =
  (* regenerating a curated seed reproduces the identical kernel, and
     it still vets — the scan is a pure function of the generator *)
  let entries = Corpus.curated () in
  List.iteri
    (fun i e ->
      if i < 3 then begin
        let prng = Prng.create (0x464C5400 + e.Corpus.seed) in
        let k =
          Gen.generate_kernel ~prng
            ~name:(Corpus.kernel_name e.Corpus.seed)
            ~grid:Kernel_corpus.Workload.default_grid ~allow_griddim:false ()
        in
        Alcotest.(check string)
          (Printf.sprintf "seed %d source stable" e.Corpus.seed)
          (Gen.kernel_source e.Corpus.kernel)
          (Gen.kernel_source k);
        match Corpus.vet k with
        | Ok () -> ()
        | Error msg ->
            Alcotest.failf "seed %d no longer vets: %s" e.Corpus.seed msg
      end)
    entries

let test_corpus_digest_stable () =
  Alcotest.(check string) "digest idempotent" (Corpus.digest ())
    (Corpus.digest ());
  Alcotest.(check int) "48 kernels"
    (List.length Registry.extended + Corpus.generated_count)
    (List.length (Corpus.all_specs ()))

let test_corpus_install () =
  Corpus.install ();
  Alcotest.(check bool) "gen kernel resolvable" true
    (Registry.find (Corpus.kernel_name
                      (List.hd (Corpus.curated ())).Corpus.seed)
     <> None);
  Alcotest.(check bool) "paper kernel still resolvable" true
    (Registry.find "Batchnorm" <> None)

let test_curated_pair_oracle () =
  (* the differential oracle accepts a curated pair: fused-vs-unfused
     memories agree (or fusion rejects it) — never a Failed verdict *)
  match Corpus.curated () with
  | e1 :: e2 :: _ -> (
      let case =
        { Gen.c_seed = e1.Corpus.seed; c_kernels = [ e1.Corpus.kernel; e2.Corpus.kernel ] }
      in
      match Oracle.run case with
      | Oracle.Equivalent | Oracle.Rejected _ -> ()
      | v -> Alcotest.failf "curated pair: %s" (Oracle.verdict_to_string v))
  | _ -> Alcotest.fail "corpus has fewer than two curated kernels"

let test_shard_partition () =
  (* for several shard counts: shards are disjoint and union to exactly
     the full pair list, preserving indices *)
  let full =
    Fleet.all_pairs () |> List.map (fun p -> p.Fleet.p_index)
  in
  Alcotest.(check int) "pair count"
    (let n = List.length (Corpus.all_specs ()) in
     n * (n - 1) / 2)
    (List.length full);
  List.iter
    (fun shards ->
      let parts =
        List.init shards (fun shard ->
            Fleet.shard_pairs
              { (test_cfg ()) with Fleet.shards; shard; limit = None })
      in
      let union =
        List.concat parts
        |> List.map (fun p -> p.Fleet.p_index)
        |> List.sort compare
      in
      Alcotest.(check (list int))
        (Printf.sprintf "%d shards union" shards)
        full union;
      (* disjoint: union has no duplicates iff lengths add up *)
      Alcotest.(check int)
        (Printf.sprintf "%d shards disjoint" shards)
        (List.length full)
        (List.fold_left ( + ) 0 (List.map List.length parts)))
    [ 1; 2; 3; 7 ]

let test_run_id_invariants () =
  let cfg = test_cfg () in
  Alcotest.(check string) "stable" (Fleet.run_id cfg) (Fleet.run_id cfg);
  (* jobs and via_server must NOT shape the journal identity — rows
     are bit-identical across them, so a resume may change either *)
  Alcotest.(check string) "jobs excluded" (Fleet.run_id cfg)
    (Fleet.run_id { cfg with Fleet.jobs = 7 });
  Alcotest.(check string) "via_server excluded" (Fleet.run_id cfg)
    (Fleet.run_id { cfg with Fleet.via_server = Some "/tmp/x.sock" });
  (* the shard, the cut and the corpus DO shape it *)
  Alcotest.(check bool) "shard included" true
    (Fleet.run_id cfg <> Fleet.run_id { cfg with Fleet.shards = 2; shard = 1 });
  Alcotest.(check bool) "limit included" true
    (Fleet.run_id cfg <> Fleet.run_id { cfg with Fleet.limit = Some 9 })

let test_rows_identical_across_shards () =
  (* the tentpole invariant at test scale: a 4-pair fleet run whole and
     run as two shards yields byte-identical rows *)
  let whole = Fleet.run { (test_cfg ~limit:4 ()) with Fleet.jobs = 1 } in
  let s0 =
    Fleet.run { (test_cfg ~limit:4 ()) with Fleet.shards = 2; shard = 0 }
  in
  let s1 =
    Fleet.run
      { (test_cfg ~limit:4 ()) with Fleet.shards = 2; shard = 1; jobs = 2 }
  in
  let union =
    List.sort
      (fun a b -> compare a.Fleet.r_index b.Fleet.r_index)
      (s0.Fleet.rows @ s1.Fleet.rows)
  in
  Alcotest.(check (list string))
    "sharded union == whole run"
    (List.map row_repr whole.Fleet.rows)
    (List.map row_repr union);
  List.iter
    (fun (r : Fleet.row) ->
      Alcotest.(check bool)
        (r.Fleet.r_pair ^ " has digest")
        (r.Fleet.r_status = "ok")
        (r.Fleet.r_digest <> ""))
    whole.Fleet.rows

let test_resume_identity () =
  (* journaled rows replay bit-identically: run once with --resume to
     populate, run again — everything resumes, nothing recomputes *)
  let cfg =
    { (test_cfg ~limit:2 ()) with Fleet.resume = true; size = 2 }
  in
  let path = Filename.concat Hfuse_profiler.Checkpoint.default_dir
               (Fleet.run_id cfg ^ ".rows") in
  if Sys.file_exists path then Sys.remove path;
  let first = Fleet.run cfg in
  Alcotest.(check int) "first run executes" 2 first.Fleet.executed;
  let second = Fleet.run cfg in
  Alcotest.(check int) "second run resumes" 2 second.Fleet.resumed;
  Alcotest.(check int) "second run computes nothing" 0 second.Fleet.executed;
  Alcotest.(check (list string)) "resumed rows identical"
    (List.map row_repr first.Fleet.rows)
    (List.map row_repr second.Fleet.rows);
  (* a fresh no-resume run agrees too: the journal didn't shape rows *)
  let clean = Fleet.run { cfg with Fleet.resume = false } in
  Alcotest.(check (list string)) "no-resume rows identical"
    (List.map row_repr first.Fleet.rows)
    (List.map row_repr clean.Fleet.rows)

let test_report_shape () =
  let cfg = test_cfg ~limit:2 () in
  let r = Fleet.run cfg in
  let j = Fleet.report_json cfg r in
  let module Json = Hfuse_profiler.Report.Json in
  let str k =
    match Json.member k j with Some (Json.Str s) -> s | _ -> "" in
  let int k =
    match Json.member k j with Some (Json.Int i) -> i | _ -> -1 in
  Alcotest.(check string) "bench tag" "fleet" (str "bench");
  Alcotest.(check string) "digest" (Corpus.digest ()) (str "corpus_digest");
  Alcotest.(check int) "rows_run" 2 (int "rows_run");
  (match Json.member "fault" j with
  | Some f ->
      Alcotest.(check bool) "unrecovered present" true
        (Json.member "unrecovered" f <> None)
  | None -> Alcotest.fail "missing fault section");
  (* the report round-trips through the JSON printer/parser *)
  match Json.of_string (Json.to_string j) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "report does not reparse: %s" e

let suite =
  [
    Alcotest.test_case "curated corpus" `Quick test_corpus_curated;
    Alcotest.test_case "curated replay" `Quick test_corpus_replay;
    Alcotest.test_case "corpus digest" `Quick test_corpus_digest_stable;
    Alcotest.test_case "corpus install" `Quick test_corpus_install;
    Alcotest.test_case "curated pair oracle" `Slow test_curated_pair_oracle;
    Alcotest.test_case "shard partition" `Quick test_shard_partition;
    Alcotest.test_case "run id invariants" `Quick test_run_id_invariants;
    Alcotest.test_case "rows identical across shards" `Slow
      test_rows_identical_across_shards;
    Alcotest.test_case "resume identity" `Slow test_resume_identity;
    Alcotest.test_case "report shape" `Quick test_report_shape;
  ]

let () =
  Alcotest.run "hfuse"
    [
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("pretty", Test_pretty.suite);
      ("typecheck", Test_typecheck.suite);
      ("frontend", Test_frontend.suite);
      ("ast-util", Test_astutil.suite);
      ("fusion", Test_fusion.suite);
      ("occupancy", Test_occupancy.suite);
      ("verifier", Test_verifier.suite);
      ("search", Test_search.suite);
      ("costmodel", Test_costmodel.suite);
      ("value", Test_value.suite);
      ("memory", Test_memory.suite);
      ("interp", Test_interp.suite);
      ("timing", Test_timing.suite);
      ("fault", Test_fault.suite);
      ("parallel", Test_parallel.suite);
      ("profiler", Test_profiler.suite);
      ("analyzer", Test_analyzer.suite);
      ("ptx", Test_ptx.suite);
      ("kernels", Test_kernels.suite);
      ("equivalence", Test_equivalence.suite);
      ("differential", Test_diff.suite);
      ("engine-diff", Test_engine_diff.suite);
      ("fuzz", Test_fuzz.suite);
      ("repair", Test_repair.suite);
      ("serve", Test_serve.suite);
      ("fleet", Test_fleet.suite);
    ]

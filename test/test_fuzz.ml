(* The fuzzing subsystem's own tests: generator sanity properties,
   driver determinism across worker counts, the injected-bug meta-test
   (the oracle must catch a deliberately corrupted barrier count and
   minimize it), and replay of the committed seed corpus. *)

open Hfuse_fuzz

let case_of_seed seed = Gen.generate_case ~seed ()

(* -- generator sanity ------------------------------------------------- *)

let test_well_typed () =
  for seed = 0 to 40 do
    let case = case_of_seed seed in
    List.iter
      (fun (k : Gen.kernel) ->
        match Cuda.Typecheck.check_program_result k.g_info.prog with
        | Ok () -> ()
        | Error (msg, _) ->
            Alcotest.failf "seed %d kernel %s ill-typed: %s" seed
              k.g_info.fn.f_name msg)
      case.c_kernels
  done

let test_generator_deterministic () =
  for seed = 0 to 20 do
    let a = Gen.case_source (case_of_seed seed) in
    let b = Gen.case_source (case_of_seed seed) in
    Alcotest.(check string) (Printf.sprintf "seed %d" seed) a b
  done

let test_kernel_round_trip () =
  for seed = 0 to 30 do
    let case = case_of_seed seed in
    List.iter
      (fun (k : Gen.kernel) ->
        let src = Gen.kernel_source k in
        let prog = Cuda.Parser.parse_program src in
        match Cuda.Ast.find_fn prog k.g_info.fn.f_name with
        | None -> Alcotest.failf "seed %d: kernel lost in reparse" seed
        | Some fn ->
            Alcotest.(check bool)
              (Printf.sprintf "seed %d %s body round-trips" seed fn.f_name)
              true
              (Cuda.Ast_util.equal_normalized k.g_info.fn.f_body fn.f_body))
      case.c_kernels
  done

(* -- oracle ------------------------------------------------------------ *)

(* Default weights generate only valid input, so every case must come
   back equivalent (the verifier may still reject; it must never be
   contradicted by execution, which [Oracle.run] internally asserts by
   classifying any accepted-but-different pair as a failure). *)
let test_oracle_no_failures () =
  for seed = 0 to 25 do
    let v = Oracle.run (case_of_seed seed) in
    if Oracle.is_failure v then
      Alcotest.failf "seed %d: %s" seed (Oracle.verdict_to_string v);
    match v with
    | Oracle.Invalid_input r ->
        Alcotest.failf "seed %d generated invalid input: %s" seed r
    | _ -> ()
  done

let test_divergent_sync_rejected () =
  (* cranking the invalid production up must eventually produce cases
     the verifier refuses — and refusal must happen statically, before
     the (deadlocking) kernels would ever run *)
  let weights = { Gen.default_weights with w_divergent_sync = 20; w_sync = 0 } in
  let rejected = ref 0 in
  for seed = 0 to 30 do
    let case = Gen.generate_case ~weights ~seed () in
    match Oracle.run case with
    | Oracle.Rejected _ -> incr rejected
    | v when Oracle.is_failure v ->
        Alcotest.failf "seed %d: %s" seed (Oracle.verdict_to_string v)
    | _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "some divergent-sync case rejected (%d)" !rejected)
    true (!rejected > 0)

(* -- driver ------------------------------------------------------------ *)

let small_config =
  { Driver.default_config with runs = 10; seed = 123; shrink_budget = 300 }

let report_string r = Fmt.str "%a" Driver.pp_report r

let test_driver_deterministic_jobs () =
  let r1 = Driver.run { small_config with jobs = 1 } in
  let r3 = Driver.run { small_config with jobs = 3 } in
  Alcotest.(check string) "jobs=1 and jobs=3 agree" (report_string r1)
    (report_string r3);
  Alcotest.(check int) "clean campaign" 0 r1.failed

let test_injected_barrier_bug_caught () =
  let cfg =
    {
      small_config with
      runs = 6;
      seed = 42;
      inject = Some Driver.inject_barrier_count;
    }
  in
  let r = Driver.run cfg in
  Alcotest.(check bool) "at least one injected failure caught" true
    (r.failed > 0);
  List.iter
    (fun (f : Driver.failure) ->
      Alcotest.(check string)
        "caught as a fused-side crash" "fail-fused-crash"
        (Oracle.verdict_tag f.verdict);
      let lines = Repro.line_count f.repro in
      Alcotest.(check bool)
        (Printf.sprintf "repro minimized to %d <= 30 lines" lines)
        true (lines <= 30))
    r.failures

(* -- shrinker ---------------------------------------------------------- *)

let stmt_count (c : Gen.case) =
  List.fold_left
    (fun n (k : Gen.kernel) ->
      n + Cuda.Ast_util.fold_stmts (fun n _ -> n + 1) 0 k.g_info.fn.f_body)
    0 c.c_kernels

let test_shrinker_reduces () =
  (* find a seed whose first kernel contains a barrier, then minimize
     under the predicate "kernel 0 still has a barrier" *)
  let seed = ref 0 in
  while
    not
      (Cuda.Ast_util.has_barrier
         (List.hd (case_of_seed !seed).c_kernels).g_info.fn.f_body)
  do
    incr seed
  done;
  let case = case_of_seed !seed in
  let pred (c : Gen.case) =
    match c.c_kernels with
    | k :: _ -> Cuda.Ast_util.has_barrier k.g_info.fn.f_body
    | [] -> false
  in
  let minimized, attempts = Shrink.minimize ~budget:500 pred case in
  Alcotest.(check bool) "attempts spent" true (attempts > 0);
  Alcotest.(check bool) "barrier preserved" true (pred minimized);
  Alcotest.(check bool)
    (Printf.sprintf "shrank %d -> %d statements" (stmt_count case)
       (stmt_count minimized))
    true
    (stmt_count minimized < stmt_count case)

(* -- repro format ------------------------------------------------------ *)

let test_repro_round_trip () =
  let case = case_of_seed 5 in
  let r = Repro.of_case ~expect:"equivalent" ~detail:"two\nlines" case in
  let s = Repro.to_string r in
  match Repro.of_string s with
  | Error e -> Alcotest.failf "repro did not parse back: %s" e
  | Ok r' ->
      Alcotest.(check string) "stable rendering" s (Repro.to_string r');
      Alcotest.(check string) "expectation kept" r.expect r'.expect;
      Alcotest.(check (option string)) "detail kept" r.detail r'.detail;
      Alcotest.(check int) "seed kept" case.c_seed r'.case.c_seed

(* -- committed corpus replay ------------------------------------------- *)

let corpus_dir () =
  (* dune runtest runs from _build/default/test; dune exec from the
     workspace root *)
  if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"

let corpus_files () =
  let dir = corpus_dir () in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".cu")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_corpus_replay () =
  let files = corpus_files () in
  Alcotest.(check bool) "corpus present" true (List.length files >= 4);
  let rejections = ref 0 in
  List.iter
    (fun path ->
      match Repro.of_string (read_file path) with
      | Error e -> Alcotest.failf "%s: %s" path e
      | Ok r ->
          let v = Oracle.run r.case in
          (match v with Oracle.Rejected _ -> incr rejections | _ -> ());
          Alcotest.(check string)
            (Printf.sprintf "%s replays as %s" path r.expect)
            r.expect (Oracle.verdict_tag v))
    files;
  Alcotest.(check bool) "corpus covers a verifier rejection" true
    (!rejections > 0)

let suite =
  [
    Alcotest.test_case "generator well-typed" `Quick test_well_typed;
    Alcotest.test_case "generator deterministic" `Quick
      test_generator_deterministic;
    Alcotest.test_case "kernel print/parse round trip" `Quick
      test_kernel_round_trip;
    Alcotest.test_case "oracle: default weights never fail" `Slow
      test_oracle_no_failures;
    Alcotest.test_case "oracle: divergent sync statically rejected" `Slow
      test_divergent_sync_rejected;
    Alcotest.test_case "driver deterministic across jobs" `Slow
      test_driver_deterministic_jobs;
    Alcotest.test_case "injected barrier bug caught and minimized" `Slow
      test_injected_barrier_bug_caught;
    Alcotest.test_case "shrinker reduces while preserving predicate" `Quick
      test_shrinker_reduces;
    Alcotest.test_case "repro file round trip" `Quick test_repro_round_trip;
    Alcotest.test_case "seed corpus replay" `Slow test_corpus_replay;
  ]

(* The static fusion-safety verifier: every corpus pair at every
   enumerated partition verifies clean (no error-severity diagnostics;
   warnings allowed), hand-written unsafe kernels are rejected with the
   expected structured diagnostic, and the [~check:false] escape hatch
   still generates. *)

open Hfuse_core
module Diag = Hfuse_analysis.Diag
module V = Hfuse_analysis.Verifier

let info = Test_util.info_of_source

let has_error ds pred = List.exists (fun d -> Diag.is_error d && pred d) ds

(* -- corpus sweep ------------------------------------------------------ *)

let test_corpus_pairs_verify_clean () =
  List.iter
    (fun ((s1 : Kernel_corpus.Spec.t), (s2 : Kernel_corpus.Spec.t)) ->
      let mem = Gpusim.Memory.create () in
      let k1 =
        Kernel_corpus.Spec.kernel_info s1 (s1.instantiate mem ~size:1)
      in
      let k2 =
        Kernel_corpus.Spec.kernel_info s2 (s2.instantiate mem ~size:1)
      in
      List.iter
        (fun { Partition.d1; d2 } ->
          let k1c = Kernel_info.with_block_dim k1 d1 in
          let k2c = Kernel_info.with_block_dim k2 d2 in
          match Hfuse.generate k1c k2c with
          | fused ->
              (* generate already ran the verifier; re-running must agree *)
              Alcotest.(check bool)
                (Fmt.str "%s+%s at %d/%d re-verifies" s1.name s2.name d1 d2)
                true
                (Diag.is_clean (Hfuse.verify fused))
          | exception Diag.Unsafe_fusion ds ->
              Alcotest.failf "%s + %s at %d/%d rejected:\n%s" s1.name
                s2.name d1 d2 (Diag.report_to_string ds))
        (Partition.enumerate k1 k2 ~d0:1024))
    Kernel_corpus.Registry.all_pairs

(* -- hand-written negatives -------------------------------------------- *)

(* each already fused once: both carry a hardware barrier on id 1 *)
let k_bar1 name =
  Fmt.str
    {|
__global__ void %s(float* a, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  asm("bar.sync 1, 128;");
  if (i < n) { a[i] = a[i] + 1.0f; }
}
|}
    name

let test_rejects_barrier_id_collision () =
  let k1 = info ~block:(128, 1, 1) (k_bar1 "left") in
  let k2 = info ~block:(128, 1, 1) (k_bar1 "right") in
  match Hfuse.generate k1 k2 with
  | _ -> Alcotest.fail "expected Unsafe_fusion"
  | exception Diag.Unsafe_fusion ds ->
      Alcotest.(check bool) "id collision reported" true
        (has_error ds (fun d ->
             match d.Diag.kind with
             | Diag.Barrier_id_collision { id = 1; _ } -> true
             | _ -> false))

let test_vfuse_allows_barrier_id_reuse () =
  (* vertical halves run sequentially: reusing id 1 is legal there *)
  let k1 = info ~block:(128, 1, 1) (k_bar1 "left") in
  let k2 = info ~block:(128, 1, 1) (k_bar1 "right") in
  let fused = Vfuse.generate k1 k2 in
  Alcotest.(check bool) "vertical fusion clean" true
    (Diag.is_clean (Vfuse.verify fused))

let k_divergent =
  {|
__global__ void div_bar(float* a, int n) {
  __shared__ float buf[128];
  int i = threadIdx.x;
  if (i < 32) {
    buf[i] = a[i];
    __syncthreads();
  }
  if (i < n) { a[i] = buf[0]; }
}
|}

let k_plain =
  {|
__global__ void plain(float* b, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) { b[i] = b[i] * 2.0f; }
}
|}

let test_rejects_divergent_barrier () =
  let k1 = info ~block:(128, 1, 1) k_divergent in
  let k2 = info ~block:(128, 1, 1) k_plain in
  match Hfuse.generate k1 k2 with
  | _ -> Alcotest.fail "expected Unsafe_fusion"
  | exception Diag.Unsafe_fusion ds ->
      Alcotest.(check bool) "divergent barrier reported" true
        (has_error ds (fun d ->
             match d.Diag.kind with
             | Diag.Divergent_barrier { label = "div_bar"; _ } -> true
             | _ -> false))

let test_rejects_oversized_count () =
  (* a pre-existing barrier waiting for more threads than its side owns *)
  let src =
    {|
__global__ void wide(float* a, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  asm("bar.sync 5, 256;");
  if (i < n) { a[i] = a[i] + 1.0f; }
}
|}
  in
  let k1 = info ~block:(128, 1, 1) ~tunability:Kernel_info.Fixed src in
  let k2 = info ~block:(128, 1, 1) ~tunability:Kernel_info.Fixed k_plain in
  match Hfuse.generate k1 k2 with
  | _ -> Alcotest.fail "expected Unsafe_fusion"
  | exception Diag.Unsafe_fusion ds ->
      Alcotest.(check bool) "count mismatch reported" true
        (has_error ds (fun d ->
             match d.Diag.kind with
             | Diag.Barrier_count_mismatch { id = 5; count = 256; _ } -> true
             | _ -> false))

let test_rejects_uniform_write_race () =
  let src =
    {|
__global__ void racy(float* a, int n) {
  __shared__ float acc[32];
  acc[0] = a[threadIdx.x];
  __syncthreads();
  if (threadIdx.x < n) { a[threadIdx.x] = acc[0]; }
}
|}
  in
  let _, fn = Test_util.kernel_of_source src in
  let ds =
    V.verify_kernel ~label:"racy" ~threads:128 ~regs:16 ~smem_dynamic:0
      fn.f_body
  in
  Alcotest.(check bool) "write/write race reported" true
    (has_error ds (fun d ->
         match d.Diag.kind with
         | Diag.Shared_race { array = "acc"; write_write = true; _ } -> true
         | _ -> false))

let test_accepts_singleton_guard () =
  let src =
    {|
__global__ void leader(float* a, int n) {
  __shared__ float acc[32];
  if (threadIdx.x == 0) { acc[0] = a[0]; }
  __syncthreads();
  if (threadIdx.x < n) { a[threadIdx.x] = acc[0]; }
}
|}
  in
  let _, fn = Test_util.kernel_of_source src in
  let ds =
    V.verify_kernel ~label:"leader" ~threads:128 ~regs:16 ~smem_dynamic:0
      fn.f_body
  in
  Alcotest.(check bool) "leader election is clean" true (Diag.is_clean ds)

let test_rejects_overlapping_regions () =
  (* two sides whose dynamic carve-outs of the extern buffer intersect *)
  let region name off bytes =
    { V.r_name = name; r_bytes = bytes; r_offset = off; r_dynamic = true }
  in
  let s1 =
    V.side ~label:"left" ~count:128
      ~shared:[ region "lbuf" 0 512 ]
      []
  in
  let s2 =
    V.side ~label:"right" ~count:128
      ~shared:[ region "rbuf" 256 512 ]
      []
  in
  let ds = V.verify ~threads:256 ~regs:16 ~smem_dynamic:768 [ s1; s2 ] in
  Alcotest.(check bool) "overlap reported" true
    (has_error ds (fun d ->
         match d.Diag.kind with
         | Diag.Shared_overlap { name1 = "lbuf"; name2 = "rbuf"; _ } -> true
         | _ -> false))

let test_rejects_over_budget_smem () =
  let ds =
    V.verify ~threads:256 ~regs:16
      ~smem_dynamic:(128 * 1024)
      [ V.side ~label:"huge" ~count:256 [] ]
  in
  Alcotest.(check bool) "smem over budget" true
    (has_error ds (fun d ->
         match d.Diag.kind with
         | Diag.Over_budget { resource = Hfuse_analysis.Limits.By_smem; _ }
           ->
             true
         | _ -> false))

let test_rejects_over_budget_threads () =
  let ds =
    V.verify ~threads:2048 ~regs:16 ~smem_dynamic:0
      [ V.side ~label:"wide" ~count:2048 [] ]
  in
  Alcotest.(check bool) "thread cap" true
    (has_error ds (fun d ->
         match d.Diag.kind with
         | Diag.Over_budget { resource = Hfuse_analysis.Limits.By_threads; _ }
           ->
             true
         | _ -> false))

(* -- escape hatch ------------------------------------------------------ *)

let test_check_false_escape_hatch () =
  let k1 = info ~block:(128, 1, 1) (k_bar1 "left") in
  let k2 = info ~block:(128, 1, 1) (k_bar1 "right") in
  (* generation itself succeeds; the verdict is available on demand *)
  let fused = Hfuse.generate ~check:false k1 k2 in
  let ds = Hfuse.verify fused in
  Alcotest.(check bool) "diags still produced" false (Diag.is_clean ds);
  Alcotest.(check bool) "report mentions the ids" true
    (Test_util.contains (Diag.report_to_string ds) "barrier id 1")

let suite =
  [
    Alcotest.test_case "corpus pairs verify clean" `Quick
      test_corpus_pairs_verify_clean;
    Alcotest.test_case "rejects barrier-id collision" `Quick
      test_rejects_barrier_id_collision;
    Alcotest.test_case "vfuse allows id reuse" `Quick
      test_vfuse_allows_barrier_id_reuse;
    Alcotest.test_case "rejects divergent barrier" `Quick
      test_rejects_divergent_barrier;
    Alcotest.test_case "rejects oversized count" `Quick
      test_rejects_oversized_count;
    Alcotest.test_case "rejects uniform-index write race" `Quick
      test_rejects_uniform_write_race;
    Alcotest.test_case "accepts singleton guard" `Quick
      test_accepts_singleton_guard;
    Alcotest.test_case "rejects overlapping regions" `Quick
      test_rejects_overlapping_regions;
    Alcotest.test_case "rejects over-budget smem" `Quick
      test_rejects_over_budget_smem;
    Alcotest.test_case "rejects over-budget threads" `Quick
      test_rejects_over_budget_threads;
    Alcotest.test_case "check:false escape hatch" `Quick
      test_check_false_escape_hatch;
  ]

(* Benchmark-corpus tests: every kernel parses, typechecks, and its
   simulated output matches the OCaml host reference, at two workload
   sizes.  Plus registry/pair bookkeeping and generator determinism. *)

open Gpusim
open Kernel_corpus

let validate (s : Spec.t) ~size () =
  let mem = Memory.create () in
  let inst = s.instantiate mem ~size in
  let info = Spec.kernel_info s inst in
  (match Launch.launch_info mem info ~args:inst.Workload.args ~trace_blocks:0 with
  | _ -> ()
  | exception e -> Alcotest.failf "%s: launch failed: %s" s.name (Printexc.to_string e));
  match inst.Workload.check mem with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" s.name e

(* every hand-written kernel — the paper nine AND the fleet extensions —
   must match its OCaml host reference at two sizes *)
let corpus_cases =
  List.concat_map
    (fun (s : Spec.t) ->
      [
        Alcotest.test_case (s.name ^ " @size=1") `Quick (validate s ~size:1);
        Alcotest.test_case (s.name ^ " @size=3") `Slow (validate s ~size:3);
      ])
    Registry.extended

let test_registry_inventory () =
  Alcotest.(check int) "9 kernels" 9 (List.length Registry.all);
  Alcotest.(check int) "5 deep-learning" 5 (List.length Registry.deep_learning);
  Alcotest.(check int) "4 crypto" 4 (List.length Registry.crypto);
  Alcotest.(check int) "4 image" 4 (List.length Registry.image);
  Alcotest.(check int) "2 reduction" 2 (List.length Registry.reduction);
  Alcotest.(check int) "15 extended" 15 (List.length Registry.extended);
  Alcotest.(check int) "10 DL pairs" 10 (List.length Registry.dl_pairs);
  Alcotest.(check int) "6 crypto pairs" 6 (List.length Registry.crypto_pairs);
  Alcotest.(check int) "16 total" 16 (List.length Registry.all_pairs)

let test_registry_lookup () =
  Alcotest.(check bool) "case-insensitive" true
    (Registry.find "batchNORM" <> None);
  Alcotest.(check bool) "unknown" true (Registry.find "nope" = None);
  match Registry.find_exn "nope" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_all_typecheck () =
  List.iter
    (fun (s : Spec.t) ->
      let prog, _ = Spec.parse s in
      try Cuda.Typecheck.check_program prog
      with Cuda.Typecheck.Error (msg, _) ->
        Alcotest.failf "%s: %s" s.name msg)
    Registry.extended

let test_tunability_declared () =
  List.iter
    (fun (s : Spec.t) ->
      match (s.kind, s.tunability) with
      | Spec.Deep_learning, Hfuse_core.Kernel_info.Tunable _ -> ()
      | Spec.Crypto, Hfuse_core.Kernel_info.Fixed -> ()
      (* fleet extensions: image kernels retune like DL; block-per-
         segment reductions bake blockDim into the tree and stay fixed *)
      | Spec.Image, Hfuse_core.Kernel_info.Tunable _ -> ()
      | Spec.Reduction, Hfuse_core.Kernel_info.Fixed -> ()
      | Spec.Generated, Hfuse_core.Kernel_info.Fixed -> ()
      | _ ->
          Alcotest.failf "%s: tunability does not match its domain (DL/image \
                          tunable, crypto/reduction/generated fixed)" s.name)
    Registry.extended

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_u64 a) (Prng.next_u64 b)
  done;
  let c = Prng.create 43 in
  Alcotest.(check bool) "different seed differs" true
    (Prng.next_u64 (Prng.create 42) <> Prng.next_u64 c)

let test_prng_bounds () =
  let r = Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Prng.next_int r ~bound:17 in
    if x < 0 || x >= 17 then Alcotest.failf "out of range: %d" x;
    let f = Prng.next_float r in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_workload_determinism () =
  (* instantiating the same workload twice yields identical memory *)
  let snap (s : Spec.t) =
    let mem = Memory.create () in
    ignore (s.instantiate mem ~size:2);
    Memory.snapshot mem
  in
  List.iter
    (fun (s : Spec.t) ->
      Alcotest.(check bool)
        (s.name ^ " deterministic")
        true
        (Memory.equal_snapshot (snap s) (snap s)))
    Registry.extended

let test_crypto_sources_generated () =
  (* the generated crypto sources must parse to exactly one kernel and
     contain the expected round structure *)
  List.iter
    (fun name ->
      let s = Registry.find_exn name in
      let _, fn = Spec.parse s in
      Alcotest.(check string) "kernel name" (String.lowercase_ascii name)
        (String.lowercase_ascii fn.f_name))
    [ "SHA256"; "Blake256"; "Blake2B" ];
  Alcotest.(check bool) "sha256 has 64 rounds" true
    (Test_util.contains (Registry.find_exn "SHA256").source "// round 63");
  Alcotest.(check bool) "blake256 has 14 rounds" true
    (Test_util.contains (Registry.find_exn "Blake256").source "// round 13");
  Alcotest.(check bool) "blake2b has 12 rounds" true
    (Test_util.contains (Registry.find_exn "Blake2B").source "// round 11")

let suite =
  corpus_cases
  @ [
      Alcotest.test_case "registry inventory" `Quick test_registry_inventory;
      Alcotest.test_case "registry lookup" `Quick test_registry_lookup;
      Alcotest.test_case "corpus typechecks" `Quick test_all_typecheck;
      Alcotest.test_case "tunability" `Quick test_tunability_declared;
      Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
      Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
      Alcotest.test_case "workload determinism" `Quick
        test_workload_determinism;
      Alcotest.test_case "generated crypto sources" `Quick
        test_crypto_sources_generated;
    ]

(* The analytical cost model: monotonicity of the static roofline,
   probe-fit behaviour, and the model-vs-simulator evaluation helpers.
   Candidates come from a real Search.search over the synthetic tunable
   kernel, so the fused registers / shared memory / partitions are the
   ones the model sees in production. *)

open Hfuse_core
module Cm = Hfuse_costmodel

let k_tunable =
  {|
__global__ void t(float* a, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) { a[i] = a[i] + 1.0f; }
}
|}

let info = Test_util.info_of_source

let tun ?(block = (256, 1, 1)) ?(regs = 32) () =
  info ~block ~regs ~tunability:(Kernel_info.Tunable { multiple_of = 32 })
    k_tunable

let lim = Occupancy.pascal_volta_limits
let arch = List.hd Gpusim.Arch.all

(* every enumerated candidate of the tunable pair, via a free profile *)
let candidates ?(d0 = 1024) () =
  let r =
    Search.search ~limits:lim
      ~profile:(fun _ ~reg_bound:_ -> 1.0)
      ~d0 (tun ()) (tun ())
  in
  List.map (fun (c : Search.candidate) -> (c.fused, c.config)) r.all

let inputs () = Cm.of_pair ~limits:lim ~arch (tun ()) (tun ())

let d1_of ((_, cfg) : Hfuse.t * Search.config) =
  cfg.Search.partition.Partition.d1

let unbounded cands =
  List.filter
    (fun ((_, cfg) : Hfuse.t * Search.config) -> cfg.Search.reg_bound = None)
    cands

let score_of inp ((fused, config) : Hfuse.t * Search.config) =
  Cm.score inp ~fused ~config

(* -- static roofline --------------------------------------------------- *)

let test_of_pair_defaults () =
  let inp = inputs () in
  Alcotest.(check (float 0.)) "cal1 raw" 1.0 inp.Cm.cal1;
  Alcotest.(check (float 0.)) "cal2 raw" 1.0 inp.Cm.cal2;
  Alcotest.(check bool) "no probe model" true (inp.Cm.probe = None);
  Alcotest.(check int) "work1 = grid x block" (8 * 256) inp.Cm.work1

let test_rank_shape () =
  let cands = candidates () in
  let scores = Cm.rank (inputs ()) cands in
  Alcotest.(check int) "one score per candidate" (List.length cands)
    (List.length scores);
  List.iter
    (fun s -> Alcotest.(check bool) "finite and positive" true (s > 0.))
    scores

let test_starved_scores_worse () =
  (* the pair is symmetric, so the even split exposes the least
     latency; the further a partition starves one side, the worse its
     score must get — monotonically along each flank *)
  let inp = inputs () in
  let unb =
    List.sort
      (fun a b -> compare (d1_of a) (d1_of b))
      (unbounded (candidates ()))
  in
  let scores = List.map (fun c -> (d1_of c, score_of inp c)) unb in
  let even = List.assoc 512 scores in
  List.iter
    (fun (d1, s) ->
      if d1 <> 512 then
        Alcotest.(check bool)
          (Printf.sprintf "d1=%d worse than even split" d1)
          true (s > even))
    scores;
  (* extreme starvation is the worst of all *)
  let extreme = List.assoc 128 scores in
  List.iter
    (fun (d1, s) ->
      if d1 <> 128 && d1 <> 896 then
        Alcotest.(check bool)
          (Printf.sprintf "d1=%d better than extreme" d1)
          true (s < extreme))
    scores

let test_spill_monotone () =
  (* same partition, same residency, deeper spill: score must get
     worse.  At 512 threads every bound from 32 down leaves b
     thread-limited (2048/512 = 4 blocks), so only the spill depth
     differs.  (Unbounded is NOT comparable: the 36-register estimate
     caps residency at 3 blocks, so a bound that lifts b to 4 may
     legitimately score better — that is the point of Fig. 6's r0.) *)
  let inp = inputs () in
  let fused, config =
    List.find (fun c -> d1_of c = 256) (unbounded (candidates ~d0:512 ()))
  in
  let with_bound r = { config with Search.reg_bound = r } in
  let s_32 = Cm.score inp ~fused ~config:(with_bound (Some 32)) in
  let s_24 = Cm.score inp ~fused ~config:(with_bound (Some 24)) in
  let s_16 = Cm.score inp ~fused ~config:(with_bound (Some 16)) in
  Alcotest.(check bool) "fused kernel spills under 32" true
    (fused.Hfuse.regs > 32);
  Alcotest.(check bool) "deeper spill is worse (24 vs 32)" true (s_24 > s_32);
  Alcotest.(check bool) "deeper spill is worse (16 vs 24)" true (s_16 > s_24)

let test_unrunnable_scores_infinite () =
  (* a device whose SM cannot host even one 1024-thread block *)
  let tiny = { lim with Occupancy.max_threads_per_sm = 512 } in
  let inp = Cm.of_pair ~limits:tiny ~arch (tun ()) (tun ()) in
  let c = List.hd (unbounded (candidates ())) in
  let fused, config = c in
  Alcotest.(check bool) "zero residency is infinite" true
    (Cm.score inp ~fused ~config = Float.infinity)

(* -- solo calibration -------------------------------------------------- *)

let test_calibrate () =
  let inp = inputs () in
  let cal = Cm.calibrate inp ~solo1:2000. ~solo2:1000. in
  Alcotest.(check bool) "cal1 positive" true (cal.Cm.cal1 > 0.);
  Alcotest.(check bool) "cal2 positive" true (cal.Cm.cal2 > 0.);
  (* the pair is symmetric, so doubling kernel 1's observed solo time
     doubles its multiplier relative to kernel 2's *)
  Alcotest.(check (float 1e-9)) "ratio follows observations" 2.0
    (cal.Cm.cal1 /. cal.Cm.cal2);
  (* unusable observations leave the model uncalibrated *)
  let raw = Cm.calibrate inp ~solo1:Float.nan ~solo2:(-1.) in
  Alcotest.(check (float 0.)) "nan solo ignored" 1.0 raw.Cm.cal1;
  Alcotest.(check (float 0.)) "negative solo ignored" 1.0 raw.Cm.cal2

let test_calibration_shifts_ranking () =
  (* make kernel 1 observably 8x the cost of kernel 2: the model must
     hand kernel 1 the bigger thread share *)
  let inp = inputs () in
  let cal = Cm.calibrate inp ~solo1:8000. ~solo2:1000. in
  let unb = unbounded (candidates ()) in
  let scores = List.map (fun c -> (d1_of c, score_of cal c)) unb in
  let best_d1, _ =
    List.fold_left
      (fun (bd, bs) (d, s) -> if s < bs then (d, s) else (bd, bs))
      (0, Float.infinity) scores
  in
  Alcotest.(check bool) "kernel 1 gets the majority" true (best_d1 > 512)

(* -- probe fits -------------------------------------------------------- *)

(* synthesize probe times from a known family and check the fit
   recovers it: floor + max(l1/(b*d1), l2/(b*d2)) *)
let synth_time inp (floor, l1, l2) ((fused, config) : Hfuse.t * Search.config)
    =
  let { Partition.d1; d2 } = config.Search.partition in
  let eff =
    match config.Search.reg_bound with
    | Some r -> min r fused.Hfuse.regs
    | None -> fused.Hfuse.regs
  in
  let b =
    Occupancy.blocks_per_sm inp.Cm.limits ~regs:eff ~threads:(d1 + d2)
      ~smem:(Kernel_info.smem_total (Hfuse.info fused))
  in
  floor
  +. Float.max
       (l1 /. float_of_int (b * d1))
       (l2 /. float_of_int (b * d2))

let probe_extremes cands =
  let unb = unbounded cands in
  let lo =
    List.fold_left (fun m c -> if d1_of c < d1_of m then c else m)
      (List.hd unb) unb
  in
  let hi =
    List.fold_left (fun m c -> if d1_of c > d1_of m then c else m)
      (List.hd unb) unb
  in
  let mid = List.find (fun c -> d1_of c = 512) unb in
  (lo, mid, hi)

let test_probe_fit_recovers_family () =
  let inp = inputs () in
  let cands = candidates () in
  let fam = (0.02, 30., 20.) in
  let t = synth_time inp fam in
  let lo, mid, hi = probe_extremes cands in
  let inp =
    Cm.calibrate_probes inp ~lo:(lo, t lo) ~mid:(mid, t mid) ~hi:(hi, t hi) ()
  in
  (match inp.Cm.probe with
  | None -> Alcotest.fail "expected a probe model"
  | Some p ->
      Alcotest.(check bool) "floor recovered" true
        (Float.abs (p.Cm.p_unb.Cm.f_floor -. 0.02) < 1e-6);
      Alcotest.(check int) "three probe times anchored" 3
        (List.length p.Cm.p_times));
  (* every unbounded candidate is now predicted at its true time: the
     probes anchor exactly, the rest interpolate on the recovered
     family *)
  List.iter
    (fun c ->
      let fused, config = c in
      let s = Cm.score inp ~fused ~config in
      Alcotest.(check bool)
        (Printf.sprintf "d1=%d predicted on family" (d1_of c))
        true
        (Float.abs (s -. t c) < 1e-6))
    (unbounded cands)

let test_probe_no_mid_floor_zero () =
  let inp = inputs () in
  let cands = candidates () in
  let lo, _, hi = probe_extremes cands in
  let t = synth_time inp (0., 30., 20.) in
  let inp = Cm.calibrate_probes inp ~lo:(lo, t lo) ~hi:(hi, t hi) () in
  match inp.Cm.probe with
  | None -> Alcotest.fail "expected a probe model"
  | Some p ->
      Alcotest.(check (float 0.)) "no middle probe, floor 0" 0.
        p.Cm.p_unb.Cm.f_floor

let test_probe_unusable_extreme_disables () =
  let inp = inputs () in
  let cands = candidates () in
  let lo, mid, hi = probe_extremes cands in
  let t = synth_time inp (0., 30., 20.) in
  (* a failed profile (infinite time) on one extreme *)
  let inp1 =
    Cm.calibrate_probes inp ~lo:(lo, Float.infinity) ~mid:(mid, t mid)
      ~hi:(hi, t hi) ()
  in
  Alcotest.(check bool) "failed extreme disables probes" true
    (inp1.Cm.probe = None);
  (* a register-bounded candidate passed as an unbounded extreme *)
  let bounded =
    List.find
      (fun ((_, cfg) : Hfuse.t * Search.config) -> cfg.Search.reg_bound <> None)
      cands
  in
  let inp2 =
    Cm.calibrate_probes inp ~lo:(bounded, 1.0) ~hi:(hi, t hi) ()
  in
  Alcotest.(check bool) "bounded extreme disables probes" true
    (inp2.Cm.probe = None)

let test_probe_capped_family () =
  let inp = inputs () in
  let cands = candidates () in
  let lo, mid, hi = probe_extremes cands in
  let t_unb = synth_time inp (0.01, 30., 20.) in
  (* the capped group lives on its own, slower family *)
  let t_cap = synth_time inp (0.05, 90., 60.) in
  let spilling =
    List.filter
      (fun ((f, cfg) : Hfuse.t * Search.config) ->
        match cfg.Search.reg_bound with
        | Some r -> f.Hfuse.regs > r
        | None -> false)
      cands
  in
  Alcotest.(check bool) "pair has spilling candidates" true
    (List.length spilling >= 2);
  let r0 =
    match (List.hd spilling : Hfuse.t * Search.config) with
    | _, { Search.reg_bound = Some r; _ } -> r
    | _ -> assert false
  in
  let capped = List.map (fun c -> (c, t_cap c)) spilling in
  let inp =
    Cm.calibrate_probes inp ~lo:(lo, t_unb lo) ~mid:(mid, t_unb mid) ~capped
      ~hi:(hi, t_unb hi) ()
  in
  (match inp.Cm.probe with
  | None -> Alcotest.fail "expected a probe model"
  | Some p ->
      Alcotest.(check bool) "capped family fitted for the bound" true
        (List.mem_assoc r0 p.Cm.p_capped));
  (* capped candidates are predicted on their own family, not the
     unbounded one under a static multiplier *)
  List.iter
    (fun c ->
      let fused, config = c in
      let s = Cm.score inp ~fused ~config in
      Alcotest.(check bool) "capped candidate on capped family" true
        (Float.abs (s -. t_cap c) < 1e-6))
    spilling;
  (* a single capped probe is not enough for a family *)
  let inp1 =
    Cm.calibrate_probes (inputs ()) ~lo:(lo, t_unb lo) ~mid:(mid, t_unb mid)
      ~capped:[ List.hd capped ] ~hi:(hi, t_unb hi) ()
  in
  match inp1.Cm.probe with
  | None -> Alcotest.fail "expected a probe model"
  | Some p ->
      Alcotest.(check bool) "one probe fits no family" true
        (p.Cm.p_capped = [])

(* -- evaluation helpers ------------------------------------------------ *)

let test_model_pick () =
  Alcotest.(check (option int)) "first finite minimum" (Some 2)
    (Cm.model_pick [ Float.nan; 3.0; 1.0; Float.infinity; 1.0 ]);
  Alcotest.(check (option int)) "all non-finite" None
    (Cm.model_pick [ Float.nan; Float.infinity ]);
  Alcotest.(check (option int)) "empty" None (Cm.model_pick [])

let test_calibrate_scale () =
  (match Cm.calibrate_scale ~scores:[ 1.0; 2.0 ] ~times:[ 2.0; 4.0 ] with
  | Some c -> Alcotest.(check (float 1e-12)) "exact scale" 2.0 c
  | None -> Alcotest.fail "expected a scale");
  (match
     Cm.calibrate_scale
       ~scores:[ Float.infinity; 1.0 ]
       ~times:[ 5.0; 3.0 ]
   with
  | Some c -> Alcotest.(check (float 1e-12)) "non-finite pairs dropped" 3.0 c
  | None -> Alcotest.fail "expected a scale");
  Alcotest.(check bool) "no finite pair" true
    (Cm.calibrate_scale ~scores:[ Float.nan ] ~times:[ 1.0 ] = None)

let test_default_top_k () =
  Alcotest.(check bool) "window is sane" true
    (Cm.default_top_k >= 1 && Cm.default_top_k <= 16)

(* ranking is invariant under any positive rescaling of the scores *)
let scale_invariance_prop =
  QCheck.Test.make ~name:"model_pick invariant under positive scaling"
    ~count:50
    QCheck.(pair (list_of_size Gen.(1 -- 10) (float_range 0. 100.)) pos_float)
    (fun (scores, c) ->
      QCheck.assume (c > 1e-6 && Float.is_finite c);
      Cm.model_pick scores = Cm.model_pick (List.map (fun s -> s *. c) scores))

let suite =
  [
    Alcotest.test_case "of_pair defaults" `Quick test_of_pair_defaults;
    Alcotest.test_case "rank shape" `Quick test_rank_shape;
    Alcotest.test_case "starved partitions score worse" `Quick
      test_starved_scores_worse;
    Alcotest.test_case "spill is monotone at fixed residency" `Quick
      test_spill_monotone;
    Alcotest.test_case "unrunnable candidate scores infinite" `Quick
      test_unrunnable_scores_infinite;
    Alcotest.test_case "solo calibration" `Quick test_calibrate;
    Alcotest.test_case "calibration shifts the ranking" `Quick
      test_calibration_shifts_ranking;
    Alcotest.test_case "probe fit recovers the family" `Quick
      test_probe_fit_recovers_family;
    Alcotest.test_case "no middle probe means floor zero" `Quick
      test_probe_no_mid_floor_zero;
    Alcotest.test_case "unusable extreme disables probes" `Quick
      test_probe_unusable_extreme_disables;
    Alcotest.test_case "capped probes fit their own family" `Quick
      test_probe_capped_family;
    Alcotest.test_case "model pick" `Quick test_model_pick;
    Alcotest.test_case "calibrate scale" `Quick test_calibrate_scale;
    Alcotest.test_case "default top-k" `Quick test_default_top_k;
  ]
  @ Test_util.qcheck_cases [ scale_invariance_prop ]

(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section IV) on the simulated GPUs, plus ablations and
   Bechamel micro-benchmarks of the compiler itself.

     dune exec bench/main.exe              # everything (default scope)
     dune exec bench/main.exe -- fig7      # Figure 7 only
     dune exec bench/main.exe -- fig8      # Figure 8 only
     dune exec bench/main.exe -- fig9      # Figure 9 only
     dune exec bench/main.exe -- ablation  # dispatch-policy & partition ablations
     dune exec bench/main.exe -- micro     # compiler micro-benchmarks
     dune exec bench/main.exe -- fig7 --full   # 5-point ratio sweeps
     dune exec bench/main.exe -- fig7 -j 4 --cache   # parallel + cached search

   The default ratio sweep uses 3 points per pair (0.5x, 1x, 2x the
   representative size); [--full] uses the paper's 5.

   [-j N] fans the search's timing replays AND the figure measurement
   replays over N domains; [--cache] / [--no-cache] control the
   persistent profiling cache (default: the HFUSE_CACHE /
   HFUSE_CACHE_DIR environment, else off).  Figures are bit-identical
   for any -j and any cache temperature; a search-stats line
   (candidates profiled, cache hits, profiling wall time) and an
   engine-stats line (cycles/SM-steps skipped by the event-driven
   replay engine, warp-record reuse) follow every figure.

   [--json] additionally writes BENCH_figN.json next to the cwd — the
   machine-readable perf trajectory (per-pair time_ms and
   elapsed_cycles, wall-clock, cache stats, engine stats) that future
   changes diff instead of eyeballing logs.  [--pairs K1+K2[,K3+K4..]]
   restricts fig7/fig9 to the named corpus pairs (CI smoke runs one);
   [--trace-blocks N] widens the per-launch traced-block count.

   [--prune] / [--top-k K] enable the analytical cost model's phase-1.5
   pruning: candidates are ranked (statically, then refined by a few
   profiled probes) and only the top K ([Hfuse_costmodel.default_top_k]
   under --prune) are profiled.  Without either flag the search stays
   exhaustive; the model still scores every candidate and the search
   line / JSON report its rank agreement and worst regret.

   Fault tolerance: [--resume] journals every profiled result to
   _hfuse_cache/journal/<run_id>.jnl as it is produced, so a run killed
   mid-figure (crash, SIGKILL, Ctrl-C) restarted with the same flags
   replays the journal and recomputes only the remainder —
   bit-identically to an uninterrupted run.  [--fault SPEC] (or
   HFUSE_FAULT) arms the chaos harness, e.g.
   [--fault worker_crash:0.05,cache_corrupt:0.1,sim_hang:0.02]: faults
   are injected deterministically, recovered transparently, and tallied
   in [fault:]/[pool:] lines; figures are unchanged under any spec.

   [fleet] is the corpus-scale soak: every unordered pair of the fleet
   corpus (extended registry + curated fuzzer-generated kernels), each
   pair a full Fig. 6 search, deterministically sharded with
   [--shards N --shard I] and optionally cut to the first [--limit N]
   pairs.  [--via-server SOCKET] drives a live [hfuse serve] daemon
   with [-j] concurrent client threads instead of searching
   in-process; [--out DIR] writes .cu repros of failed pairs;
   [--resume] journals finished rows (and candidate times) so a killed
   shard resumes without recomputation.  Per-pair rows are
   bit-identical across shard counts, [-j], cache temperature, chaos
   specs and daemon routing — the invariant [bench_gate --fleet]
   enforces; [--json] writes the BENCH_fleet.json it gates. *)

open Hfuse_profiler
open Kernel_corpus
module Fault = Hfuse_fault.Fault

let say fmt = Printf.printf (fmt ^^ "\n%!")

let section title =
  say "";
  say "%s" (String.make 74 '=');
  say "%s" title;
  say "%s" (String.make 74 '=')

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  say "[%s: %.1fs]" name (Unix.gettimeofday () -. t0);
  r

(* search parallelism / persistent profiling cache / output shape, set
   by the CLI flags *)
let jobs = ref 1
let cache = ref (Hfuse_profiler.Profile_cache.from_env ())
let json_out = ref false
let pair_filter : (Spec.t * Spec.t) list option ref = ref None

(* --prune / --top-k K: phase-1.5 analytical pruning of the search.
   --top-k implies --prune; --prune alone uses the default K. *)
let default_top_k = Hfuse_costmodel.default_top_k
let top_k : int option ref = ref None

(* checkpoint/resume state: --resume opens one journal per figure,
   identified by everything that shapes the figure's outputs (the pairs
   spec, --full, --trace-blocks).  -j and --fault are deliberately
   excluded: results are bit-identical across them, so a resume may
   change either. *)
let resume = ref false
let raw_pairs = ref "all"
let full_ref = ref false
let active_checkpoint = ref Checkpoint.disabled

(* fleet subcommand state: sharding, corpus cut, daemon routing.  The
   profile cache resolves through Settings (the fleet drives the verb
   engine, which derives its own handles), so --cache/--no-cache are
   tracked as a cache_dir override here. *)
let fleet_shards = ref 1
let fleet_shard = ref 0
let fleet_limit : int option ref = ref None
let fleet_size = ref 1
let fleet_server : string option ref = ref None
let fleet_out : string option ref = ref None
let fleet_repair = ref false
let cache_dir_override : string option option ref = ref None

let checkpoint_for (figure : string) : Checkpoint.t =
  if not !resume then Checkpoint.disabled
  else begin
    let id =
      Checkpoint.run_id
        ~sim_fuel:(Settings.current ()).Settings.sim_fuel
        ~trace_blocks:(Runner.trace_blocks ())
        ~parts:
          [
            figure;
            !raw_pairs;
            (if !full_ref then "full" else "short");
            (match !top_k with
            | None -> "exhaustive"
            | Some k -> "top" ^ string_of_int k);
          ]
        ()
    in
    let ck = Checkpoint.open_ ~run_id:id () in
    if Checkpoint.loaded ck > 0 then
      say "[resume: replaying %d journaled result%s from %s]"
        (Checkpoint.loaded ck)
        (if Checkpoint.loaded ck = 1 then "" else "s")
        (Checkpoint.path ck);
    active_checkpoint := ck;
    ck
  end

let finish_checkpoint () =
  Checkpoint.close !active_checkpoint;
  active_checkpoint := Checkpoint.disabled

(* chaos observability: how many faults were injected and recovered
   (the figures themselves must not change under any fault spec) *)
let chaos_report () =
  if Fault.enabled () then begin
    say "[fault: %s]" (Fmt.str "%a" Fault.pp_tally (Fault.tally ()));
    say "[pool: %s]"
      (Fmt.str "%a" Hfuse_parallel.Pool.pp_tally (Hfuse_parallel.Pool.tally ()))
  end

let timed_search name f =
  Runner.reset_search_stats ();
  Trace_store.reset_tally ();
  let r = timed name f in
  say "[search: %s]"
    (Fmt.str "%a" Runner.pp_search_stats (Runner.search_stats ()));
  r

(* Wall time + the engine's self-profiling counters around a figure.
   The cumulative counters aggregate across pool worker domains, so
   they see the fanned-out measurement replays too. *)
let instrumented f =
  Gpusim.Timing.reset_cumulative_stats ();
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let wall = Unix.gettimeofday () -. t0 in
  let engine = Gpusim.Timing.cumulative_stats () in
  say "[engine: %s]" (Fmt.str "%a" Gpusim.Timing.pp_engine_stats engine);
  (r, wall, engine)

let write_json name ~wall ~engine rows =
  let open Report.Json in
  let j =
    Obj
      [
        ("bench", Str name);
        ("wall_s", Float wall);
        ("jobs", Int !jobs);
        ("trace_blocks", Int (Runner.trace_blocks ()));
        ("cache", Report.json_of_cache !cache);
        ("search", Report.json_of_search_stats (Runner.search_stats ()));
        ("trace_store", Report.json_of_trace_tally (Trace_store.tally ()));
        ("engine_stats", Report.json_of_engine_stats engine);
        ("rows", rows);
      ]
  in
  let file = Printf.sprintf "BENCH_%s.json" name in
  let oc = open_out file in
  output_string oc (to_string j);
  close_out oc;
  say "[json: wrote %s]" file

(* ------------------------------------------------------------------ *)
(* Figures                                                              *)
(* ------------------------------------------------------------------ *)

let multipliers ~full =
  if full then Experiment.default_multipliers else [ 0.5; 1.0; 2.0 ]

let run_fig7 ~full () =
  section "Figure 7: speedup vs execution-time ratio (16 pairs x 2 GPUs)";
  let checkpoint = checkpoint_for "fig7" in
  let sweeps, wall, engine =
    instrumented (fun () ->
        timed_search "figure 7" (fun () ->
            Experiment.figure7 ~multipliers:(multipliers ~full) ~jobs:!jobs
              ~cache:!cache ~checkpoint ?top_k:!top_k ?pairs:!pair_filter ()))
  in
  finish_checkpoint ();
  print_string (Report.figure7_to_string sweeps);
  chaos_report ();
  if !json_out then write_json "fig7" ~wall ~engine (Report.figure7_json sweeps)

let run_fig8 () =
  section "Figure 8: metrics of individual kernels";
  let checkpoint = checkpoint_for "fig8" in
  let rows, wall, engine =
    instrumented (fun () ->
        timed "figure 8" (fun () ->
            Experiment.figure8 ~jobs:!jobs ~cache:!cache ~checkpoint ()))
  in
  finish_checkpoint ();
  print_string (Report.figure8_to_string rows);
  chaos_report ();
  if !json_out then write_json "fig8" ~wall ~engine (Report.figure8_json rows)

let run_fig9 () =
  section "Figure 9: metrics of HFuse fused kernels (RegCap / N-RegCap)";
  let checkpoint = checkpoint_for "fig9" in
  let rows, wall, engine =
    instrumented (fun () ->
        timed_search "figure 9" (fun () ->
            Experiment.figure9 ~jobs:!jobs ~cache:!cache ~checkpoint
              ?top_k:!top_k ?pairs:!pair_filter ()))
  in
  finish_checkpoint ();
  print_string (Report.figure9_to_string rows);
  chaos_report ();
  if !json_out then write_json "fig9" ~wall ~engine (Report.figure9_json rows)

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md E5)                                             *)
(* ------------------------------------------------------------------ *)

let run_ablation () =
  section "Ablation A: block-dispatch policy (why parallel streams lose)";
  (* the native baseline under the real FIFO Grid-Management-Unit policy
     vs an idealised backfilling distributor *)
  let arch = Gpusim.Arch.gtx1080ti in
  let sizes = Experiment.representative_sizes arch in
  say "%-24s %14s %14s %9s" "pair" "FIFO (ms)" "Leftover (ms)" "overlap%";
  List.iter
    (fun (n1, n2) ->
      let s1 = Registry.find_exn n1 and s2 = Registry.find_exn n2 in
      let mem = Gpusim.Memory.create () in
      let c1 = Runner.configure mem s1 ~size:(Experiment.size_of sizes s1) in
      let c2 = Runner.configure mem s2 ~size:(Experiment.size_of sizes s2) in
      let specs =
        [ Runner.spec_of c1 ~stream:0 (); Runner.spec_of c2 ~stream:1 () ]
      in
      let fifo = Gpusim.Timing.run ~policy:Gpusim.Timing.Fifo arch specs in
      let leftover =
        Gpusim.Timing.run ~policy:Gpusim.Timing.Leftover arch specs
      in
      say "%-24s %14.4f %14.4f %8.1f%%"
        (n1 ^ "+" ^ n2)
        fifo.Gpusim.Timing.time_ms leftover.Gpusim.Timing.time_ms
        (100.0
        *. (1.0
           -. (leftover.Gpusim.Timing.time_ms /. fifo.Gpusim.Timing.time_ms))))
    [
      (* Batchnorm reaches full occupancy solo — nothing to backfill, so
         the policies coincide: streams cannot help a saturating kernel *)
      ("Batchnorm", "Hist");
      (* Upsample (56 regs) and Blake2B (64 regs) leave half an SM free:
         the idealised distributor overlaps, the real FIFO one cannot *)
      ("Upsample", "Hist");
      ("Blake2B", "Ethash");
    ];
  section "Ablation B: thread-space partition landscape (Batchnorm+Hist)";
  let s1 = Registry.find_exn "Batchnorm" and s2 = Registry.find_exn "Hist" in
  let mem = Gpusim.Memory.create () in
  let sizes = Experiment.representative_sizes arch in
  let c1 = Runner.configure mem s1 ~size:(Experiment.size_of sizes s1) in
  let c2 = Runner.configure mem s2 ~size:(Experiment.size_of sizes s2) in
  let native = (Runner.native arch c1 c2).Gpusim.Timing.time_ms in
  let sr = Runner.search ~jobs:!jobs ~cache:!cache arch c1 c2 in
  say "%-12s %-10s %12s %10s" "partition" "regbound" "time (ms)" "speedup%";
  List.iter
    (fun (cand : Hfuse_core.Search.candidate) ->
      say "%5d/%-6d %-10s %12.4f %+9.1f%%" cand.fused.d1 cand.fused.d2
        (match cand.config.reg_bound with
        | None -> "-"
        | Some r -> string_of_int r)
        cand.time
        (Experiment.speedup ~native ~fused:cand.time))
    sr.all;
  let b = sr.best in
  say "best: %d/%d %s" b.fused.d1 b.fused.d2
    (match b.config.reg_bound with
    | None -> "no register bound"
    | Some r -> Printf.sprintf "register bound %d" r)

(* ------------------------------------------------------------------ *)
(* Fleet: corpus-scale sharded soak                                     *)
(* ------------------------------------------------------------------ *)

let run_fleet () =
  let module Fleet = Hfuse_fleet.Fleet in
  section
    (Printf.sprintf "Fleet: corpus-scale fusion-search soak (shard %d/%d)"
       !fleet_shard !fleet_shards);
  (* the fleet drives the verb engine, which derives cache/trace-store
     handles from an explicit settings record *)
  let settings = Settings.resolve ?cache_dir:!cache_dir_override () in
  let progress_every = 25 in
  let on_row ~completed ~total (r : Fleet.row) =
    if r.Fleet.r_status <> "ok" then
      say "  [%d/%d] %s: %s" completed total r.Fleet.r_pair r.Fleet.r_status
    else if completed mod progress_every = 0 || completed = total then
      say "  [%d/%d] %s %+.1f%%" completed total r.Fleet.r_pair
        r.Fleet.r_speedup_pct
  in
  let cfg =
    {
      Fleet.arch = Gpusim.Arch.gtx1080ti;
      shards = !fleet_shards;
      shard = !fleet_shard;
      limit = !fleet_limit;
      jobs = !jobs;
      size = !fleet_size;
      top_k = !top_k;
      repair = !fleet_repair;
      via_server = !fleet_server;
      resume = !resume;
      out_dir = !fleet_out;
      settings;
      on_row;
    }
  in
  say "corpus digest %s%s%s" (Hfuse_fleet.Corpus.digest ())
    (match !fleet_limit with
    | None -> ""
    | Some n -> Printf.sprintf ", first %d pairs" n)
    (match !fleet_server with
    | None -> ""
    | Some s -> Printf.sprintf ", via daemon at %s" s);
  let r = timed "fleet" (fun () -> Fleet.run cfg) in
  let count st =
    List.length (List.filter (fun x -> x.Fleet.r_status = st) r.Fleet.rows)
  in
  say "%d kernels, %d corpus pairs; shard ran %d rows: %d ok, %d rejected, \
       %d failed (%d executed, %d resumed)"
    r.Fleet.kernels r.Fleet.pairs_total
    (List.length r.Fleet.rows)
    (count "ok") (count "rejected") (count "failed") r.Fleet.executed
    r.Fleet.resumed;
  say "wall %.1fs, %.1f searches/min" r.Fleet.wall_s
    (if r.Fleet.wall_s > 0.0 then
       float_of_int r.Fleet.executed /. r.Fleet.wall_s *. 60.0
     else 0.0);
  let tget = Fleet.telemetry_get r.Fleet.telemetry in
  if !fleet_repair then
    say "repair: %d attempted, %d admitted, %d unsound; %d rows repaired \
         (%d newly fusable)"
      (tget "search" "repair_attempted")
      (tget "search" "repaired")
      (tget "search" "repair_unsound")
      (List.length (List.filter (fun x -> x.Fleet.r_repaired) r.Fleet.rows))
      (List.length
         (List.filter (fun x -> x.Fleet.r_newly_fusable) r.Fleet.rows));
  let hits = tget "cache" "hits" and misses = tget "cache" "misses" in
  if hits + misses > 0 then
    say "cache: %d hits / %d misses (%.1f%% hit rate), %d stores, %d \
         quarantined"
      hits misses
      (100.0 *. float_of_int hits /. float_of_int (hits + misses))
      (tget "cache" "stores")
      (tget "cache" "quarantined");
  say "trace store: %d mem hits, %d disk hits, %d recorded"
    (tget "trace_store" "mem_hits")
    (tget "trace_store" "disk_hits")
    (tget "trace_store" "recorded");
  if tget "fault" "injected" > 0 || tget "pool" "retries" > 0 then
    say "fault: %d injected, %d recovered, %d unrecovered; pool: %d \
         retries, %d recovered"
      (tget "fault" "injected")
      (tget "fault" "recovered")
      (count "failed")
      (tget "pool" "retries")
      (tget "pool" "recovered");
  (* per-domain speedup distribution over ok rows *)
  let domains =
    List.sort_uniq compare (List.map (fun x -> x.Fleet.r_domain) r.Fleet.rows)
  in
  say "%-12s %6s %6s %9s %9s %9s" "domain" "pairs" "ok" "min%" "median%"
    "max%";
  List.iter
    (fun d ->
      let dr =
        List.filter (fun x -> x.Fleet.r_domain = d) r.Fleet.rows
      in
      let ok = List.filter (fun x -> x.Fleet.r_status = "ok") dr in
      let ss =
        List.map (fun x -> x.Fleet.r_speedup_pct) ok |> List.sort compare
      in
      match ss with
      | [] ->
          say "%-12s %6d %6d %9s %9s %9s" d (List.length dr) 0 "-" "-" "-"
      | _ ->
          let arr = Array.of_list ss in
          let n = Array.length arr in
          let median =
            if n mod 2 = 1 then arr.(n / 2)
            else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0
          in
          say "%-12s %6d %6d %+8.1f%% %+8.1f%% %+8.1f%%" d (List.length dr)
            n arr.(0) median arr.(n - 1))
    domains;
  chaos_report ();
  if !json_out then begin
    let file = Printf.sprintf "BENCH_fleet.json" in
    let oc = open_out file in
    output_string oc (Report.Json.to_string (Fleet.report_json cfg r));
    close_out oc;
    say "[json: wrote %s]" file
  end

(* ------------------------------------------------------------------ *)
(* Compiler micro-benchmarks (Bechamel)                                 *)
(* ------------------------------------------------------------------ *)

let run_micro () =
  section "Compiler micro-benchmarks (Bechamel; one Test.make per stage)";
  let open Bechamel in
  let open Toolkit in
  let bn = Registry.find_exn "Batchnorm" and hist = Registry.find_exn "Hist" in
  let mk_info (s : Spec.t) d =
    let mem = Gpusim.Memory.create () in
    let inst = s.instantiate mem ~size:2 in
    Hfuse_core.Kernel_info.with_block_dim (Spec.kernel_info s inst) d
  in
  let k1 = mk_info bn 896 and k2 = mk_info hist 128 in
  (* a native-pair replay: the hot loop the tentpole optimises *)
  let arch = Gpusim.Arch.gtx1080ti in
  let replay_specs =
    let mem = Gpusim.Memory.create () in
    let c1 = Runner.configure mem bn ~size:32 in
    let c2 = Runner.configure mem hist ~size:32 in
    [ Runner.spec_of c1 ~stream:0 (); Runner.spec_of c2 ~stream:1 () ]
  in
  let tests =
    [
      Test.make ~name:"parse corpus kernel"
        (Staged.stage (fun () -> ignore (Cuda.Parser.parse_kernel bn.source)));
      Test.make ~name:"typecheck corpus kernel"
        (let prog = Cuda.Parser.parse_program bn.source in
         Staged.stage (fun () -> Cuda.Typecheck.check_program prog));
      Test.make ~name:"normalize (inline+lift)"
        (let prog, fn = Cuda.Parser.parse_kernel bn.source in
         Staged.stage (fun () ->
             ignore (Hfuse_frontend.Inline.normalize_kernel prog fn)));
      Test.make ~name:"hfuse generate"
        (Staged.stage (fun () -> ignore (Hfuse_core.Hfuse.generate k1 k2)));
      Test.make ~name:"vfuse generate"
        (let k2' = Hfuse_core.Kernel_info.with_block_dim k2 896 in
         Staged.stage (fun () ->
             ignore (Hfuse_core.Vfuse.generate k1 k2')));
      Test.make ~name:"emit fused source"
        (let f = Hfuse_core.Hfuse.generate k1 k2 in
         Staged.stage (fun () -> ignore (Hfuse_core.Hfuse.to_source f)));
      Test.make ~name:"search (synthetic profile)"
        (Staged.stage (fun () ->
             ignore
               (Hfuse_core.Search.search
                  ~profile:(fun f ~reg_bound ->
                    float_of_int
                      (f.Hfuse_core.Hfuse.d1
                      + match reg_bound with Some r -> r | None -> 0))
                  ~d0:1024 k1 k2)));
      Test.make ~name:"timing replay (native pair)"
        (Staged.stage (fun () ->
             ignore (Gpusim.Timing.run arch replay_specs)));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  say "%-28s %14s" "stage" "ns/run";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let anl = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (t :: _) -> say "%-28s %14.0f" name t
          | _ -> say "%-28s %14s" name "n/a")
        anl)
    tests;
  (* engine self-profiling for one instrumented replay of the same pair *)
  let report, es = Gpusim.Timing.run_with_stats arch replay_specs in
  say "";
  say "replay engine stats (native pair, %d cycles):"
    report.Gpusim.Timing.elapsed_cycles;
  say "  %s" (Fmt.str "%a" Gpusim.Timing.pp_engine_stats es)

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)
(* ------------------------------------------------------------------ *)

let () =
  (try Fault.from_env ()
   with Fault.Invalid_spec msg ->
     Printf.eprintf "bench: %s\n" msg;
     exit 2);
  Sys.catch_break true;
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  full_ref := full;
  let args = List.filter (fun a -> a <> "--full") args in
  (* -j N / --jobs N, --cache, --no-cache *)
  let rec parse_flags = function
    | ("-j" | "--jobs") :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> jobs := n
        | _ ->
            Printf.eprintf "bench: -j expects a positive integer, got %s\n" n;
            exit 2);
        parse_flags rest
    | "--cache" :: rest ->
        cache :=
          Hfuse_profiler.Profile_cache.create
            ?dir:(Sys.getenv_opt "HFUSE_CACHE_DIR") ();
        cache_dir_override :=
          Some
            (Some
               (Option.value
                  (Sys.getenv_opt "HFUSE_CACHE_DIR")
                  ~default:Hfuse_profiler.Profile_cache.default_dir));
        parse_flags rest
    | "--no-cache" :: rest ->
        cache := Hfuse_profiler.Profile_cache.disabled ();
        cache_dir_override := Some None;
        parse_flags rest
    | "--json" :: rest ->
        json_out := true;
        parse_flags rest
    | "--trace-blocks" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> Runner.set_trace_blocks n
        | _ ->
            Printf.eprintf
              "bench: --trace-blocks expects a positive integer, got %s\n" n;
            exit 2);
        parse_flags rest
    | "--pairs" :: spec :: rest ->
        let parse_one s =
          match String.index_opt s '+' with
          | Some i ->
              let n1 = String.sub s 0 i
              and n2 = String.sub s (i + 1) (String.length s - i - 1) in
              (Registry.find_exn n1, Registry.find_exn n2)
          | None ->
              Printf.eprintf
                "bench: --pairs expects K1+K2[,K3+K4...], got %s\n" s;
              exit 2
        in
        raw_pairs := spec;
        pair_filter :=
          Some (List.map parse_one (String.split_on_char ',' spec));
        parse_flags rest
    | "--resume" :: rest ->
        resume := true;
        parse_flags rest
    | "--prune" :: rest ->
        if !top_k = None then top_k := Some default_top_k;
        parse_flags rest
    | "--top-k" :: n :: rest ->
        (match int_of_string_opt n with
        | Some k when k >= 1 -> top_k := Some k
        | _ ->
            Printf.eprintf "bench: --top-k expects a positive integer, got %s\n" n;
            exit 2);
        parse_flags rest
    | "--fault" :: spec :: rest ->
        (match Fault.configure spec with
        | Ok () -> ()
        | Error msg ->
            Printf.eprintf "bench: --fault: %s\n" msg;
            exit 2);
        parse_flags rest
    | "--shards" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> fleet_shards := n
        | _ ->
            Printf.eprintf "bench: --shards expects a positive integer, got %s\n" n;
            exit 2);
        parse_flags rest
    | "--shard" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 0 -> fleet_shard := n
        | _ ->
            Printf.eprintf "bench: --shard expects a non-negative integer, got %s\n" n;
            exit 2);
        parse_flags rest
    | "--limit" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> fleet_limit := Some n
        | _ ->
            Printf.eprintf "bench: --limit expects a positive integer, got %s\n" n;
            exit 2);
        parse_flags rest
    | "--size" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> fleet_size := n
        | _ ->
            Printf.eprintf "bench: --size expects a positive integer, got %s\n" n;
            exit 2);
        parse_flags rest
    | "--via-server" :: socket :: rest ->
        fleet_server := Some socket;
        parse_flags rest
    | "--out" :: dir :: rest ->
        fleet_out := Some dir;
        parse_flags rest
    | "--repair" :: rest ->
        fleet_repair := true;
        parse_flags rest
    | a :: rest -> a :: parse_flags rest
    | [] -> []
  in
  let args = parse_flags args in
  let t0 = Unix.gettimeofday () in
  (try
     match args with
     | [] ->
         run_fig8 ();
         run_fig9 ();
         run_fig7 ~full ();
         run_ablation ();
         run_micro ()
     | [ "fig7" ] -> run_fig7 ~full ()
     | [ "fig8" ] -> run_fig8 ()
     | [ "fig9" ] -> run_fig9 ()
     | [ "ablation" ] -> run_ablation ()
     | [ "micro" ] -> run_micro ()
     | [ "fleet" ] -> run_fleet ()
     | other ->
         Printf.eprintf
           "unknown arguments: %s\n\
            usage: main.exe [fig7|fig8|fig9|ablation|micro|fleet] [--full] \
            [-j N] [--cache|--no-cache] [--json] [--pairs K1+K2[,..]] \
            [--trace-blocks N] [--resume] [--prune] [--top-k K] \
            [--fault SPEC] [--shards N --shard I] [--limit N] [--size N] \
            [--via-server SOCKET] [--out DIR] [--repair]\n"
           (String.concat " " other);
         exit 2
   with Sys.Break ->
     (* journal records are flushed as written; close for good measure
        and point at the resume path *)
     Checkpoint.flush !active_checkpoint;
     Checkpoint.close !active_checkpoint;
     Printf.eprintf
       "\nbench: interrupted%s\n"
       (if !resume then
          "; journaled results saved — rerun with --resume to continue"
        else "; rerun with --resume to make interrupted runs resumable");
     exit 130);
  say "";
  say "total bench time: %.1fs" (Unix.gettimeofday () -. t0)

(* Bench regression gate: compare a freshly produced fig9 JSON report
   against a committed baseline and fail on any drift in the
   *simulated* metrics.  Wall-clock-derived fields (wall_s, cache and
   search counters, engine stats, jobs) vary run to run and are
   excluded; everything the simulator computes deterministically —
   per-row native utilisation, speedups, chosen (d1, d2, reg_bound)
   partitions, and the five metric fields — must match exactly.

   Usage: bench_gate BASELINE.json FRESH.json [--pairs A+B,C+D]
   With --pairs, only the named pairs are compared (the CI smoke run
   produces a single-pair report against the full committed baseline). *)

module Json = Hfuse_profiler.Report.Json

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

let read_json path =
  let ic = try open_in_bin path with Sys_error e -> die "%s" e in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Json.of_string s with
  | Ok v -> v
  | Error e -> die "%s: %s" path e

let member_exn path key j =
  match Json.member key j with
  | Some v -> v
  | None -> die "%s: missing field %S" path key

(* The gated (simulated, deterministic) leaves of one row. *)
let metric_fields =
  [ "time_ms"; "elapsed_cycles"; "issue_slot_util"; "mem_stall"; "occupancy" ]

let config_fields = [ "speedup_pct"; "d1"; "d2"; "reg_bound" ]

let leaf_to_string = function
  | Json.Null -> "null"
  | Json.Int i -> string_of_int i
  | Json.Float f -> Printf.sprintf "%.17g" f
  | Json.Str s -> s
  | Json.Bool b -> string_of_bool b
  | Json.List _ | Json.Obj _ -> "<structure>"

(** Flatten one row to comparable (label, value) leaves. *)
let row_leaves path (row : Json.t) : (string * string) list =
  let leaf prefix obj field =
    let v = member_exn path field obj in
    (prefix ^ "." ^ field, leaf_to_string v)
  in
  let base = [ leaf "" row "native_util" ] in
  let side name =
    match Json.member name row with
    | None -> die "%s: row missing %S" path name
    | Some cfg ->
        let cfg_leaves = List.map (leaf name cfg) config_fields in
        let metrics = member_exn path "metrics" cfg in
        let metric_leaves =
          List.map (fun f -> leaf (name ^ ".metrics") metrics f) metric_fields
        in
        cfg_leaves @ metric_leaves
  in
  base @ side "no_regcap" @ side "regcap"

let row_key path row =
  let s k =
    match member_exn path k row with
    | Json.Str s -> s
    | _ -> die "%s: row field %S is not a string" path k
  in
  (s "pair", s "arch")

let rows_of path (j : Json.t) : ((string * string) * Json.t) list =
  match member_exn path "rows" j with
  | Json.List rows -> List.map (fun r -> (row_key path r, r)) rows
  | _ -> die "%s: \"rows\" is not a list" path

let () =
  let args = Array.to_list Sys.argv in
  let baseline_path, fresh_path, pairs_filter =
    match args with
    | [ _; b; f ] -> (b, f, None)
    | [ _; b; f; "--pairs"; ps ] ->
        (b, f, Some (String.split_on_char ',' ps))
    | _ ->
        die "usage: %s BASELINE.json FRESH.json [--pairs A+B,C+D]"
          Sys.executable_name
  in
  let baseline = rows_of baseline_path (read_json baseline_path) in
  let fresh = rows_of fresh_path (read_json fresh_path) in
  let wanted (pair, _arch) =
    match pairs_filter with
    | None -> true
    | Some ps -> List.mem pair ps
  in
  let fresh = List.filter (fun (k, _) -> wanted k) fresh in
  if fresh = [] then die "%s: no rows to compare" fresh_path;
  let drift = ref 0 in
  let compared = ref 0 in
  List.iter
    (fun ((pair, arch), fresh_row) ->
      match List.assoc_opt (pair, arch) baseline with
      | None ->
          incr drift;
          Printf.printf "DRIFT %s/%s: not in baseline\n" pair arch
      | Some base_row ->
          incr compared;
          let b = row_leaves baseline_path base_row in
          let f = row_leaves fresh_path fresh_row in
          List.iter2
            (fun (label, bv) (label', fv) ->
              assert (label = label');
              if bv <> fv then begin
                incr drift;
                Printf.printf "DRIFT %s/%s %s: baseline %s, fresh %s\n" pair
                  arch label bv fv
              end)
            b f)
    fresh;
  if !drift > 0 then begin
    Printf.printf "bench gate: %d drifting value(s) across %d row(s)\n" !drift
      !compared;
    exit 1
  end;
  Printf.printf
    "bench gate: %d row(s) match the baseline (simulated metrics only)\n"
    !compared

(* Bench regression gate: compare a freshly produced fig9 JSON report
   against a committed baseline and fail on any drift in the
   *simulated* metrics.  Wall-clock-derived fields (wall_s, cache,
   search and trace_store counters, engine stats, jobs) vary run to
   run and are excluded; everything the simulator computes
   deterministically —
   per-row native utilisation, speedups, chosen (d1, d2, reg_bound)
   partitions, and the five metric fields — must match exactly.

   Usage: bench_gate BASELINE.json FRESH.json [--pairs A+B,C+D]
                     [--max-regret PCT]
   With --pairs, only the named pairs are compared (the CI smoke run
   produces a single-pair report against the full committed baseline).

   The gate also reads the fresh report's cost-model quality fields
   (search.rank_agree / rank_total / max_regret_pct): when present, the
   model's worst chosen-vs-best regret must stay within --max-regret
   percent (default 2) — the bound that keeps top-K pruned searches
   honest.  Reports from before the cost model (no such fields) pass. *)

module Json = Hfuse_profiler.Report.Json

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

let read_json path =
  let ic = try open_in_bin path with Sys_error e -> die "%s" e in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Json.of_string s with
  | Ok v -> v
  | Error e -> die "%s: %s" path e

let member_exn path key j =
  match Json.member key j with
  | Some v -> v
  | None -> die "%s: missing field %S" path key

(* The gated (simulated, deterministic) leaves of one row. *)
let metric_fields =
  [ "time_ms"; "elapsed_cycles"; "issue_slot_util"; "mem_stall"; "occupancy" ]

let config_fields = [ "speedup_pct"; "d1"; "d2"; "reg_bound" ]

let leaf_to_string = function
  | Json.Null -> "null"
  | Json.Int i -> string_of_int i
  | Json.Float f -> Printf.sprintf "%.17g" f
  | Json.Str s -> s
  | Json.Bool b -> string_of_bool b
  | Json.List _ | Json.Obj _ -> "<structure>"

(** Flatten one row to comparable (label, value) leaves. *)
let row_leaves path (row : Json.t) : (string * string) list =
  let leaf prefix obj field =
    let v = member_exn path field obj in
    (prefix ^ "." ^ field, leaf_to_string v)
  in
  let base = [ leaf "" row "native_util" ] in
  let side name =
    match Json.member name row with
    | None -> die "%s: row missing %S" path name
    | Some cfg ->
        let cfg_leaves = List.map (leaf name cfg) config_fields in
        let metrics = member_exn path "metrics" cfg in
        let metric_leaves =
          List.map (fun f -> leaf (name ^ ".metrics") metrics f) metric_fields
        in
        cfg_leaves @ metric_leaves
  in
  base @ side "no_regcap" @ side "regcap"

let row_key path row =
  let s k =
    match member_exn path k row with
    | Json.Str s -> s
    | _ -> die "%s: row field %S is not a string" path k
  in
  (s "pair", s "arch")

let rows_of path (j : Json.t) : ((string * string) * Json.t) list =
  match member_exn path "rows" j with
  | Json.List rows -> List.map (fun r -> (row_key path r, r)) rows
  | _ -> die "%s: \"rows\" is not a list" path

(* Cost-model quality gate over the fresh report's "search" stats.
   [max_regret_pct] non-finite values arrive as JSON null and read back
   as infinity via [to_float_opt] — an infinite regret must fail, not
   vanish. *)
let check_model_quality ~(max_regret : float) path (j : Json.t) : int =
  match Json.member "search" j with
  | None -> 0
  | Some search -> (
      let int_of k =
        Option.bind (Json.member k search) (function
          | Json.Int i -> Some i
          | _ -> None)
      in
      match
        Option.bind (Json.member "max_regret_pct" search) (fun v ->
            Json.to_float_opt v)
      with
      | None -> 0 (* pre-cost-model report *)
      | Some regret ->
          let agree = Option.value (int_of "rank_agree") ~default:0 in
          let total = Option.value (int_of "rank_total") ~default:0 in
          Printf.printf
            "bench gate: model rank agreement %d/%d, max regret %s%%\n"
            agree total
            (if Float.is_finite regret then Printf.sprintf "%.3f" regret
             else "inf");
          if regret > max_regret then begin
            Printf.printf
              "REGRET %s: cost-model regret %s%% exceeds the %.2f%% bound\n"
              path
              (if Float.is_finite regret then Printf.sprintf "%.3f" regret
               else "inf")
              max_regret;
            1
          end
          else 0)

(* Informational only: surface the fresh report's trace-store traffic
   (recorded vs answered vs deduped) so cold/warm CI steps are easy to
   eyeball.  Never gated — temperature legitimately differs per run. *)
let print_trace_traffic (j : Json.t) : unit =
  match Json.member "trace_store" j with
  | None -> () (* pre-trace-store report *)
  | Some ts ->
      let int_of k =
        match Json.member k ts with Some (Json.Int i) -> i | _ -> 0
      in
      Printf.printf
        "bench gate: trace store %d recorded, %d hit(s) (%d mem + %d disk), \
         %d merged (not gated)\n"
        (int_of "recorded")
        (int_of "mem_hits" + int_of "disk_hits")
        (int_of "mem_hits") (int_of "disk_hits") (int_of "merges")

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let usage () =
    die
      "usage: %s BASELINE.json FRESH.json [--pairs A+B,C+D] [--max-regret \
       PCT]"
      Sys.executable_name
  in
  let positional = ref [] in
  let pairs_filter = ref None in
  let max_regret = ref 2.0 in
  let rec parse = function
    | [] -> ()
    | "--pairs" :: ps :: rest ->
        pairs_filter := Some (String.split_on_char ',' ps);
        parse rest
    | "--max-regret" :: p :: rest ->
        (match float_of_string_opt p with
        | Some v when v >= 0.0 -> max_regret := v
        | _ -> die "bench_gate: --max-regret expects a percentage, got %s" p);
        parse rest
    | a :: _ when String.length a > 1 && a.[0] = '-' ->
        die "bench_gate: unknown flag %s" a
    | a :: rest ->
        positional := a :: !positional;
        parse rest
  in
  parse args;
  let baseline_path, fresh_path =
    match List.rev !positional with [ b; f ] -> (b, f) | _ -> usage ()
  in
  let pairs_filter = !pairs_filter in
  let baseline = rows_of baseline_path (read_json baseline_path) in
  let fresh_json = read_json fresh_path in
  let fresh = rows_of fresh_path fresh_json in
  let wanted (pair, _arch) =
    match pairs_filter with
    | None -> true
    | Some ps -> List.mem pair ps
  in
  let fresh = List.filter (fun (k, _) -> wanted k) fresh in
  if fresh = [] then die "%s: no rows to compare" fresh_path;
  let drift = ref 0 in
  let compared = ref 0 in
  List.iter
    (fun ((pair, arch), fresh_row) ->
      match List.assoc_opt (pair, arch) baseline with
      | None ->
          incr drift;
          Printf.printf "DRIFT %s/%s: not in baseline\n" pair arch
      | Some base_row ->
          incr compared;
          let b = row_leaves baseline_path base_row in
          let f = row_leaves fresh_path fresh_row in
          List.iter2
            (fun (label, bv) (label', fv) ->
              assert (label = label');
              if bv <> fv then begin
                incr drift;
                Printf.printf "DRIFT %s/%s %s: baseline %s, fresh %s\n" pair
                  arch label bv fv
              end)
            b f)
    fresh;
  let regret_failures =
    check_model_quality ~max_regret:!max_regret fresh_path fresh_json
  in
  print_trace_traffic fresh_json;
  if !drift > 0 || regret_failures > 0 then begin
    if !drift > 0 then
      Printf.printf "bench gate: %d drifting value(s) across %d row(s)\n"
        !drift !compared;
    exit 1
  end;
  Printf.printf
    "bench gate: %d row(s) match the baseline (simulated metrics only)\n"
    !compared

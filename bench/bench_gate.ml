(* Bench regression gate: compare a freshly produced fig9 JSON report
   against a committed baseline and fail on any drift in the
   *simulated* metrics.  Wall-clock-derived fields (wall_s, cache,
   search and trace_store counters, engine stats, jobs) vary run to
   run and are excluded; everything the simulator computes
   deterministically —
   per-row native utilisation, speedups, chosen (d1, d2, reg_bound)
   partitions, and the five metric fields — must match exactly.

   Usage: bench_gate BASELINE.json FRESH.json [--pairs A+B,C+D]
                     [--max-regret PCT]
   With --pairs, only the named pairs are compared (the CI smoke run
   produces a single-pair report against the full committed baseline).

   The gate also reads the fresh report's cost-model quality fields
   (search.rank_agree / rank_total / max_regret_pct): when present, the
   model's worst chosen-vs-best regret must stay within --max-regret
   percent (default 2) — the bound that keeps top-K pruned searches
   honest.  Reports from before the cost model (no such fields) pass.

   Fleet mode: bench_gate --fleet BASELINE.json FRESH.json...
                          [--min-hit-rate PCT] [--min-throughput N]
   compares BENCH_fleet.json reports.  FRESH may be several shard
   reports: their rows must partition the baseline's exactly — every
   baseline index covered once, no overlap, no strays — and each row's
   deterministic fields (pair, domain, status, output digest, times,
   speedup) must match byte-for-byte, which is how CI enforces
   bit-identical results across shard counts, -j and cache
   temperature.  Corpus digests must agree (different corpus,
   incomparable rows).  Every fresh report must report zero
   unrecovered faults (fault.unrecovered — failed rows — is the chaos
   invariant).  --min-hit-rate gates the aggregate profile-cache hit
   rate (the warm-run scaling check); --min-throughput prints the
   aggregate searches/min and warns below the floor but never fails —
   wall clock is not a simulated metric. *)

module Json = Hfuse_profiler.Report.Json

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

let read_json path =
  let ic = try open_in_bin path with Sys_error e -> die "%s" e in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Json.of_string s with
  | Ok v -> v
  | Error e -> die "%s: %s" path e

let member_exn path key j =
  match Json.member key j with
  | Some v -> v
  | None -> die "%s: missing field %S" path key

(* The gated (simulated, deterministic) leaves of one row. *)
let metric_fields =
  [ "time_ms"; "elapsed_cycles"; "issue_slot_util"; "mem_stall"; "occupancy" ]

let config_fields = [ "speedup_pct"; "d1"; "d2"; "reg_bound" ]

let leaf_to_string = function
  | Json.Null -> "null"
  | Json.Int i -> string_of_int i
  | Json.Float f -> Printf.sprintf "%.17g" f
  | Json.Str s -> s
  | Json.Bool b -> string_of_bool b
  | Json.List _ | Json.Obj _ -> "<structure>"

(** Flatten one row to comparable (label, value) leaves. *)
let row_leaves path (row : Json.t) : (string * string) list =
  let leaf prefix obj field =
    let v = member_exn path field obj in
    (prefix ^ "." ^ field, leaf_to_string v)
  in
  let base = [ leaf "" row "native_util" ] in
  let side name =
    match Json.member name row with
    | None -> die "%s: row missing %S" path name
    | Some cfg ->
        let cfg_leaves = List.map (leaf name cfg) config_fields in
        let metrics = member_exn path "metrics" cfg in
        let metric_leaves =
          List.map (fun f -> leaf (name ^ ".metrics") metrics f) metric_fields
        in
        cfg_leaves @ metric_leaves
  in
  base @ side "no_regcap" @ side "regcap"

let row_key path row =
  let s k =
    match member_exn path k row with
    | Json.Str s -> s
    | _ -> die "%s: row field %S is not a string" path k
  in
  (s "pair", s "arch")

let rows_of path (j : Json.t) : ((string * string) * Json.t) list =
  match member_exn path "rows" j with
  | Json.List rows -> List.map (fun r -> (row_key path r, r)) rows
  | _ -> die "%s: \"rows\" is not a list" path

(* Cost-model quality gate over the fresh report's "search" stats.
   [max_regret_pct] non-finite values arrive as JSON null and read back
   as infinity via [to_float_opt] — an infinite regret must fail, not
   vanish. *)
let check_model_quality ~(max_regret : float) path (j : Json.t) : int =
  match Json.member "search" j with
  | None -> 0
  | Some search -> (
      let int_of k =
        Option.bind (Json.member k search) (function
          | Json.Int i -> Some i
          | _ -> None)
      in
      match
        Option.bind (Json.member "max_regret_pct" search) (fun v ->
            Json.to_float_opt v)
      with
      | None -> 0 (* pre-cost-model report *)
      | Some regret ->
          let agree = Option.value (int_of "rank_agree") ~default:0 in
          let total = Option.value (int_of "rank_total") ~default:0 in
          Printf.printf
            "bench gate: model rank agreement %d/%d, max regret %s%%\n"
            agree total
            (if Float.is_finite regret then Printf.sprintf "%.3f" regret
             else "inf");
          if regret > max_regret then begin
            Printf.printf
              "REGRET %s: cost-model regret %s%% exceeds the %.2f%% bound\n"
              path
              (if Float.is_finite regret then Printf.sprintf "%.3f" regret
               else "inf")
              max_regret;
            1
          end
          else 0)

(* Informational only: surface the fresh report's trace-store traffic
   (recorded vs answered vs deduped) so cold/warm CI steps are easy to
   eyeball.  Never gated — temperature legitimately differs per run. *)
let print_trace_traffic (j : Json.t) : unit =
  match Json.member "trace_store" j with
  | None -> () (* pre-trace-store report *)
  | Some ts ->
      let int_of k =
        match Json.member k ts with Some (Json.Int i) -> i | _ -> 0
      in
      Printf.printf
        "bench gate: trace store %d recorded, %d hit(s) (%d mem + %d disk), \
         %d merged (not gated)\n"
        (int_of "recorded")
        (int_of "mem_hits" + int_of "disk_hits")
        (int_of "mem_hits") (int_of "disk_hits") (int_of "merges")

(* ------------------------------------------------------------------ *)
(* Fleet mode                                                           *)
(* ------------------------------------------------------------------ *)

(* The deterministic leaves of one fleet row: everything except wall
   time, which fleet reports deliberately keep out of rows. *)
let fleet_row_fields =
  [ "pair"; "domain"; "status"; "digest"; "native_ms"; "best_ms"; "speedup_pct" ]

(* Deterministic too, but absent from pre-repair baselines: compare
   with a [false] default so old baselines stay comparable. *)
let fleet_row_bool_fields = [ "repaired"; "newly_fusable" ]

let fleet_rows_of path (j : Json.t) : (int * Json.t) list =
  match member_exn path "rows" j with
  | Json.List rows ->
      List.map
        (fun r ->
          match member_exn path "i" r with
          | Json.Int i -> (i, r)
          | _ -> die "%s: row field \"i\" is not an integer" path)
        rows
  | _ -> die "%s: \"rows\" is not a list" path

let fleet_int path key j =
  match Json.member key j with
  | Some (Json.Int i) -> i
  | _ -> die "%s: missing integer field %S" path key

let fleet_str path key j =
  match Json.member key j with
  | Some (Json.Str s) -> s
  | _ -> die "%s: missing string field %S" path key

let run_fleet_gate ~baseline_path ~fresh_paths ~min_hit_rate ~min_throughput =
  let baseline_json = read_json baseline_path in
  let baseline = fleet_rows_of baseline_path baseline_json in
  let base_digest = fleet_str baseline_path "corpus_digest" baseline_json in
  let drift = ref 0 in
  let seen : (int, string) Hashtbl.t = Hashtbl.create 1024 in
  let hits = ref 0 and misses = ref 0 in
  let throughput = ref 0.0 in
  List.iter
    (fun path ->
      let j = read_json path in
      let digest = fleet_str path "corpus_digest" j in
      if digest <> base_digest then
        die "%s: corpus digest %s differs from baseline %s — incomparable rows"
          path digest base_digest;
      let unrecovered =
        match Json.member "fault" j with
        | Some f -> fleet_int path "unrecovered" f
        | None -> die "%s: missing \"fault\" section" path
      in
      if unrecovered > 0 then begin
        incr drift;
        Printf.printf "FAULT %s: %d unrecovered fault(s) (failed rows)\n" path
          unrecovered
      end;
      (* Repair soundness invariant: every oracle-refuted repair must
         fail closed, so the summed counter must be exactly zero.
         Absent on pre-repair reports. *)
      (match Json.member "search" j with
      | Some search -> (
          let int_of k =
            match Json.member k search with Some (Json.Int i) -> i | _ -> 0
          in
          match Json.member "repair_unsound" search with
          | Some (Json.Int u) ->
              if int_of "repair_attempted" > 0 then
                Printf.printf
                  "bench gate: fleet repair %d attempted, %d admitted, %d \
                   unsound\n"
                  (int_of "repair_attempted") (int_of "repaired") u;
              if u > 0 then begin
                incr drift;
                Printf.printf
                  "UNSOUND %s: %d repair(s) refuted by the differential \
                   oracle\n"
                  path u
              end
          | _ -> ())
      | None -> ());
      (match Json.member "cache" j with
      | Some c ->
          hits := !hits + fleet_int path "hits" c;
          misses := !misses + fleet_int path "misses" c
      | None -> ());
      (match
         Option.bind (Json.member "searches_per_min" j) Json.to_float_opt
       with
      | Some t -> throughput := !throughput +. t
      | None -> ());
      List.iter
        (fun (i, row) ->
          (if Hashtbl.mem seen i then begin
             incr drift;
             Printf.printf "OVERLAP row %d: in both %s and %s\n" i
               (Hashtbl.find seen i) path
           end);
          Hashtbl.replace seen i path;
          match List.assoc_opt i baseline with
          | None ->
              incr drift;
              Printf.printf "DRIFT %s row %d: not in baseline\n" path i
          | Some base_row ->
              List.iter
                (fun field ->
                  let bv = leaf_to_string (member_exn baseline_path field base_row) in
                  let fv = leaf_to_string (member_exn path field row) in
                  if bv <> fv then begin
                    incr drift;
                    Printf.printf "DRIFT row %d %s: baseline %s, fresh %s\n" i
                      field bv fv
                  end)
                fleet_row_fields;
              List.iter
                (fun field ->
                  let default_false o =
                    match Json.member field o with
                    | Some v -> leaf_to_string v
                    | None -> "false"
                  in
                  let bv = default_false base_row and fv = default_false row in
                  if bv <> fv then begin
                    incr drift;
                    Printf.printf "DRIFT row %d %s: baseline %s, fresh %s\n" i
                      field bv fv
                  end)
                fleet_row_bool_fields)
        (fleet_rows_of path j))
    fresh_paths;
  (* coverage: the fresh shards must union to exactly the baseline *)
  List.iter
    (fun (i, _) ->
      if not (Hashtbl.mem seen i) then begin
        incr drift;
        Printf.printf "MISSING row %d: in baseline but no fresh shard\n" i
      end)
    baseline;
  (match min_hit_rate with
  | None -> ()
  | Some floor ->
      let total = !hits + !misses in
      let rate =
        if total = 0 then 0.0
        else 100.0 *. float_of_int !hits /. float_of_int total
      in
      Printf.printf "bench gate: fleet cache hit rate %.1f%% (%d/%d)\n" rate
        !hits total;
      if rate < floor then begin
        incr drift;
        Printf.printf "HITRATE: %.1f%% below the %.1f%% floor\n" rate floor
      end);
  (match min_throughput with
  | None -> ()
  | Some floor ->
      Printf.printf
        "bench gate: fleet throughput %.1f searches/min (informational%s)\n"
        !throughput
        (if !throughput < floor then
           Printf.sprintf "; below the %.1f floor — NOT gated" floor
         else ""));
  if !drift > 0 then begin
    Printf.printf "bench gate: %d fleet violation(s) across %d fresh row(s)\n"
      !drift (Hashtbl.length seen);
    exit 1
  end;
  Printf.printf
    "bench gate: %d fleet row(s) partition the baseline exactly (%d shard \
     report(s))\n"
    (Hashtbl.length seen) (List.length fresh_paths)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let usage () =
    die
      "usage: %s BASELINE.json FRESH.json [--pairs A+B,C+D] [--max-regret \
       PCT]\n\
      \       %s --fleet BASELINE.json FRESH.json... [--min-hit-rate PCT] \
       [--min-throughput N]"
      Sys.executable_name Sys.executable_name
  in
  let positional = ref [] in
  let pairs_filter = ref None in
  let max_regret = ref 2.0 in
  let fleet_mode = ref false in
  let min_hit_rate = ref None in
  let min_throughput = ref None in
  let rec parse = function
    | [] -> ()
    | "--pairs" :: ps :: rest ->
        pairs_filter := Some (String.split_on_char ',' ps);
        parse rest
    | "--max-regret" :: p :: rest ->
        (match float_of_string_opt p with
        | Some v when v >= 0.0 -> max_regret := v
        | _ -> die "bench_gate: --max-regret expects a percentage, got %s" p);
        parse rest
    | "--fleet" :: rest ->
        fleet_mode := true;
        parse rest
    | "--min-hit-rate" :: p :: rest ->
        (match float_of_string_opt p with
        | Some v when v >= 0.0 -> min_hit_rate := Some v
        | _ -> die "bench_gate: --min-hit-rate expects a percentage, got %s" p);
        parse rest
    | "--min-throughput" :: p :: rest ->
        (match float_of_string_opt p with
        | Some v when v >= 0.0 -> min_throughput := Some v
        | _ ->
            die "bench_gate: --min-throughput expects a number, got %s" p);
        parse rest
    | a :: _ when String.length a > 1 && a.[0] = '-' ->
        die "bench_gate: unknown flag %s" a
    | a :: rest ->
        positional := a :: !positional;
        parse rest
  in
  parse args;
  if !fleet_mode then begin
    match List.rev !positional with
    | baseline_path :: (_ :: _ as fresh_paths) ->
        run_fleet_gate ~baseline_path ~fresh_paths
          ~min_hit_rate:!min_hit_rate ~min_throughput:!min_throughput;
        exit 0
    | _ -> usage ()
  end;
  let baseline_path, fresh_path =
    match List.rev !positional with [ b; f ] -> (b, f) | _ -> usage ()
  in
  let pairs_filter = !pairs_filter in
  let baseline = rows_of baseline_path (read_json baseline_path) in
  let fresh_json = read_json fresh_path in
  let fresh = rows_of fresh_path fresh_json in
  let wanted (pair, _arch) =
    match pairs_filter with
    | None -> true
    | Some ps -> List.mem pair ps
  in
  let fresh = List.filter (fun (k, _) -> wanted k) fresh in
  if fresh = [] then die "%s: no rows to compare" fresh_path;
  let drift = ref 0 in
  let compared = ref 0 in
  List.iter
    (fun ((pair, arch), fresh_row) ->
      match List.assoc_opt (pair, arch) baseline with
      | None ->
          incr drift;
          Printf.printf "DRIFT %s/%s: not in baseline\n" pair arch
      | Some base_row ->
          incr compared;
          let b = row_leaves baseline_path base_row in
          let f = row_leaves fresh_path fresh_row in
          List.iter2
            (fun (label, bv) (label', fv) ->
              assert (label = label');
              if bv <> fv then begin
                incr drift;
                Printf.printf "DRIFT %s/%s %s: baseline %s, fresh %s\n" pair
                  arch label bv fv
              end)
            b f)
    fresh;
  let regret_failures =
    check_model_quality ~max_regret:!max_regret fresh_path fresh_json
  in
  print_trace_traffic fresh_json;
  if !drift > 0 || regret_failures > 0 then begin
    if !drift > 0 then
      Printf.printf "bench gate: %d drifting value(s) across %d row(s)\n"
        !drift !compared;
    exit 1
  end;
  Printf.printf
    "bench gate: %d row(s) match the baseline (simulated metrics only)\n"
    !compared

(** Static fusion-safety verifier.

    Checks a fused (or about-to-be-fused) kernel for barrier safety
    (ids in 1..15, warp-aligned counts matching each side's partition,
    no cross-side id collisions, no barrier under thread-dependent
    divergence, no surviving full [__syncthreads] in a partial side),
    shared-memory races (disjointness of the sides' dynamic regions;
    intra-side accesses not separated by a barrier), and resource
    legality against {!Limits.t}.

    Provable deadlocks/races are [Diag.Error]; patterns the analysis
    cannot prove safe are [Diag.Warning].  {!Diag.is_clean} — no errors
    — is the acceptance predicate. *)

(** A shared-memory region a side owns. *)
type region = {
  r_name : string;
  r_bytes : int;
  r_offset : int;  (** offset within the unified dynamic buffer *)
  r_dynamic : bool;
      (** carved from the [extern __shared__] buffer (offsets comparable
          across sides) rather than statically allocated *)
}

(** One input kernel's share of the fused block. *)
type side = {
  s_label : string;  (** kernel name, for diagnostics *)
  s_body : Cuda.Ast.stmt list;
  s_count : int;  (** threads the side owns *)
  s_bar : (int * int) option;
      (** (id, count) its [__syncthreads] were rewritten to, if any *)
  s_shared : region list;
  s_tainted : string list;
      (** extra thread-dependent variables (prologue-defined thread-id
          mappings defined outside [s_body]) *)
}

val side :
  ?bar:int * int ->
  ?shared:region list ->
  ?tainted:string list ->
  label:string ->
  count:int ->
  Cuda.Ast.stmt list ->
  side

(** Static shared memory of the sides: non-dynamic regions plus sized
    in-body [__shared__] declarations.  Exposed for the repair engine's
    residency arithmetic. *)
val static_smem : side list -> int

(** [verify ~threads ~regs ~smem_dynamic sides] checks a fused kernel of
    [threads] threads per block.  Static shared memory is computed from
    the sides' non-dynamic regions and in-body [__shared__]
    declarations; [smem_dynamic] is added on top for the resource
    checks.  [concurrent] (default true) states that the sides run
    simultaneously, as in horizontal fusion — barrier-id collisions
    across sides are only a fault then; vertically fused halves run
    sequentially and may legally reuse ids. *)
val verify :
  ?limits:Limits.t ->
  ?concurrent:bool ->
  threads:int ->
  regs:int ->
  smem_dynamic:int ->
  side list ->
  Diag.t list

(** Single-kernel mode (the CLI's [check] on an unfused source): one
    full-width side, no assigned barrier. *)
val verify_kernel :
  ?limits:Limits.t ->
  ?label:string ->
  threads:int ->
  regs:int ->
  smem_dynamic:int ->
  Cuda.Ast.stmt list ->
  Diag.t list

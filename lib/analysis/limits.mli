(** Per-SM (and per-block) hardware resource limits plus the residency
    arithmetic shared by {!Hfuse_core.Occupancy} (which re-exports the
    record type as an equation and delegates) and the fusion-safety
    {!Verifier}. *)

type t = {
  regs_per_sm : int;  (** SMNRegs; 64K on Pascal and Volta *)
  smem_per_sm : int;  (** SMShMem; 96K *)
  max_threads_per_sm : int;  (** SMNThreads; 2048 *)
  max_blocks_per_sm : int;  (** hardware block slots; 32 *)
  reg_alloc_granularity : int;  (** allocation unit per thread; 8 *)
  max_regs_per_thread : int;  (** 255 *)
  max_threads_per_block : int;  (** hardware block-size cap; 1024 *)
}

val pascal_volta : t

(** Round a register count up to the hardware allocation granularity. *)
val round_up_regs : t -> int -> int

(** Concurrent blocks per SM for a kernel with the given per-thread
    registers, per-block threads and shared memory; 0 when one block
    cannot fit. *)
val blocks_per_sm : t -> regs:int -> threads:int -> smem:int -> int

(** Which resource limits a kernel's occupancy (reports/ablations). *)
type limiter = By_registers | By_threads | By_smem | By_block_slots

(** The binding constraint of {!blocks_per_sm}.  A kernel that uses no
    shared memory is never reported [By_smem]; ties otherwise resolve in
    the order registers, threads, shared memory, block slots. *)
val limiting_resource : t -> regs:int -> threads:int -> smem:int -> limiter

val pp_limiter : limiter Fmt.t

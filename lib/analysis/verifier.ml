(* The static fusion-safety verifier.

   Horizontal fusion rewrites [__syncthreads()] into partial
   [bar.sync id, count] barriers (Fig. 5) — exactly the transformation
   where a wrong id, count, or divergent control path silently becomes a
   deadlock or a cross-kernel shared-memory race.  This module checks a
   fused (or about-to-be-fused) kernel statically, in the spirit of
   GPURepair's barrier-divergence and race properties, instead of
   waiting for the simulator to hit [Launch.Deadlock] at profile time.

   Three families of checks:

   1. Barrier safety — every [bar.sync id, count] has 1 <= id <= 15 and
      a warp-aligned count consistent with its sub-kernel's partition;
      the fused sides' barrier ids do not collide; no barrier sits under
      thread-dependent divergence; no full [__syncthreads] survives
      inside a partial side.

   2. Shared-memory race detection — the sides' dynamic shared regions
      are pairwise disjoint after the fused layout assigns offsets, and
      intra-side accesses to a shared array that are not separated by a
      barrier are classified: a non-atomic write at a block-uniform
      index with no singleton guard is a definite race (error);
      thread-indexed writes the may-alias pass cannot separate are
      flagged as warnings (real kernels use them correctly all the
      time).

   3. Resource legality — the fused block's threads, registers and
      shared memory fit {!Limits.t}, with the failing limit named.

   The analyses are deliberately conservative in *both* directions by
   severity: anything that provably deadlocks or races is an [Error];
   anything merely unprovable is a [Warning].  [Diag.is_clean] (no
   errors) is the acceptance predicate. *)

open Cuda
module SS = Ast_util.StrSet

let warp_size = 32

type region = {
  r_name : string;
  r_bytes : int;
  r_offset : int;  (** offset within the unified dynamic buffer *)
  r_dynamic : bool;
      (** carved out of the [extern __shared__] buffer (offsets
          comparable across sides) rather than statically allocated *)
}

type side = {
  s_label : string;  (** kernel name, for diagnostics *)
  s_body : Ast.stmt list;
  s_count : int;  (** threads the side owns *)
  s_bar : (int * int) option;
      (** the (id, count) this side's [__syncthreads] were rewritten to,
          when fusion assigned one *)
  s_shared : region list;
  s_tainted : string list;
      (** extra thread-dependent variables (prologue-defined thread-id
          mappings whose definitions lie outside [s_body]) *)
}

let side ?bar ?(shared = []) ?(tainted = []) ~label ~count body =
  {
    s_label = label;
    s_body = body;
    s_count = count;
    s_bar = bar;
    s_shared = shared;
    s_tainted = tainted;
  }

(* -- barrier safety -------------------------------------------------- *)

let side_barrier_ids (s : side) : int list =
  let used = ref [] in
  Ast_util.iter_stmts
    (fun st ->
      match st.Ast.s with
      | Ast.Bar_sync (id, _) -> used := id :: !used
      | _ -> ())
    s.s_body;
  let used =
    match s.s_bar with Some (id, _) -> id :: !used | None -> !used
  in
  List.sort_uniq compare used

let check_barriers ~threads ~tainted (s : side) : Diag.t list =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let divergent guards =
    List.exists (Ast_util.expr_thread_dependent ~tainted) guards
  in
  Ast_util.fold_stmts_guarded
    (fun () ~guards st ->
      match st.Ast.s with
      | Ast.Bar_sync (id, count) ->
            if id < 1 || id > 15 then
              emit
                (Diag.error
                   (Barrier_id_out_of_range { id; count })
                   (Fmt.str
                      "%s: bar.sync id %d outside the PTX range 1..15"
                      s.s_label id));
            if count <= 0 || count mod warp_size <> 0 then
              emit
                (Diag.error
                   (Barrier_count_unaligned { id; count })
                   (Fmt.str
                      "%s: bar.sync %d synchronises %d threads, not a \
                       positive multiple of the warp size"
                      s.s_label id count));
            (match s.s_bar with
            | Some (bid, bcount) when id = bid && count <> bcount ->
                emit
                  (Diag.error
                     (Barrier_count_mismatch { id; count; expected = bcount })
                     (Fmt.str
                        "%s: bar.sync %d waits for %d threads but the \
                         partition assigns it %d"
                        s.s_label id count bcount))
            | _ ->
                if count > s.s_count then
                  emit
                    (Diag.error
                       (Barrier_count_mismatch
                          { id; count; expected = s.s_count })
                       (Fmt.str
                          "%s: bar.sync %d waits for %d threads but its \
                           side owns only %d — the rest never arrive"
                          s.s_label id count s.s_count)));
            if divergent guards then
              emit
                (Diag.error
                   (Divergent_barrier { id = Some id; label = s.s_label })
                   (Fmt.str
                      "%s: bar.sync %d sits under a thread-dependent \
                       condition; threads that skip it deadlock the rest"
                      s.s_label id))
      | Ast.Sync ->
            if s.s_count < threads then
              emit
                (Diag.error
                   (Full_barrier_in_partition { label = s.s_label })
                   (Fmt.str
                      "%s: __syncthreads() waits for all %d threads but \
                       the side owns only %d — the other side's threads \
                       never arrive"
                      s.s_label threads s.s_count))
            else if divergent guards then
              emit
                (Diag.error
                   (Divergent_barrier { id = None; label = s.s_label })
                   (Fmt.str
                      "%s: __syncthreads() sits under a thread-dependent \
                       condition"
                      s.s_label))
      | _ -> ())
    () s.s_body;
  List.rev !diags

let check_id_collisions (sides : side list) : Diag.t list =
  let rec pairs = function
    | [] -> []
    | s :: rest -> List.map (fun s' -> (s, s')) rest @ pairs rest
  in
  List.concat_map
    (fun (s1, s2) ->
      let ids1 = side_barrier_ids s1 and ids2 = side_barrier_ids s2 in
      List.filter_map
        (fun id ->
          if List.mem id ids2 then
            Some
              (Diag.error
                 (Barrier_id_collision
                    { id; label1 = s1.s_label; label2 = s2.s_label })
                 (Fmt.str
                    "%s and %s both use hardware barrier id %d; their \
                     thread groups would wait on each other"
                    s1.s_label s2.s_label id))
          else None)
        ids1)
    (pairs sides)

(* -- shared-memory races --------------------------------------------- *)

let regions_overlap a b =
  a.r_offset < b.r_offset + b.r_bytes && b.r_offset < a.r_offset + a.r_bytes

let check_region_overlap (sides : side list) : Diag.t list =
  let rec pairs = function
    | [] -> []
    | s :: rest -> List.map (fun s' -> (s, s')) rest @ pairs rest
  in
  List.concat_map
    (fun (s1, s2) ->
      List.concat_map
        (fun r1 ->
          if not r1.r_dynamic then []
          else
            List.filter_map
              (fun r2 ->
                if r2.r_dynamic && r1.r_bytes > 0 && r2.r_bytes > 0
                   && regions_overlap r1 r2
                then
                  Some
                    (Diag.error
                       (Shared_overlap
                          {
                            name1 = r1.r_name;
                            label1 = s1.s_label;
                            name2 = r2.r_name;
                            label2 = s2.s_label;
                          })
                       (Fmt.str
                          "shared regions overlap: %s's %s \
                           [%d, %d) and %s's %s [%d, %d)"
                          s1.s_label r1.r_name r1.r_offset
                          (r1.r_offset + r1.r_bytes) s2.s_label r2.r_name
                          r2.r_offset
                          (r2.r_offset + r2.r_bytes)))
                else None)
              s2.s_shared)
        s1.s_shared)
    (pairs sides)

(** Does some guard pin the access to (at most) one thread per value of
    a uniform expression — the [if (tid == 0)] leader-election idiom?
    Detected as an equality with exactly one thread-dependent operand. *)
let singleton_guard ~tainted guards =
  List.exists
    (fun g ->
      Ast_util.fold_expr
        (fun acc e ->
          acc
          ||
          match e with
          | Ast.Binop (Ast.Eq, a, b) ->
              Ast_util.expr_thread_dependent ~tainted a
              <> Ast_util.expr_thread_dependent ~tainted b
          | _ -> false)
        false g)
    guards

let check_races ~tainted (s : side) : Diag.t list =
  let shared_names =
    let from_regions =
      List.fold_left (fun acc r -> SS.add r.r_name acc) SS.empty s.s_shared
    in
    List.fold_left
      (fun acc (d : Ast.decl) ->
        match d.d_storage with
        | Ast.Shared | Ast.Shared_extern -> SS.add d.d_name acc
        | Ast.Local -> acc)
      from_regions
      (Ast_util.collect_decls s.s_body)
  in
  if SS.is_empty shared_names then []
  else begin
    let accs =
      List.filter
        (fun (a : Ast_util.access) -> SS.mem a.acc_array shared_names)
        (Ast_util.array_accesses s.s_body)
    in
    let diags = ref [] in
    let reported_err = ref SS.empty and reported_warn = ref SS.empty in
    (* definite race: a non-atomic write at a block-uniform index with no
       singleton guard — every thread of the side stores to the same
       address in the same barrier interval *)
    List.iter
      (fun (a : Ast_util.access) ->
        if
          a.acc_kind = `Write
          && (not (Ast_util.expr_thread_dependent ~tainted a.acc_index))
          && (not (singleton_guard ~tainted a.acc_guards))
          && not (SS.mem a.acc_array !reported_err)
        then begin
          reported_err := SS.add a.acc_array !reported_err;
          diags :=
            Diag.error
              (Shared_race
                 { label = s.s_label; array = a.acc_array; write_write = true })
              (Fmt.str
                 "%s: all %d threads write %s[] at a block-uniform index \
                  with no single-writer guard — write/write race"
                 s.s_label s.s_count a.acc_array)
            :: !diags
        end)
      accs;
    (* may-race: two accesses to the same array in the same barrier
       interval, at least one a write, that the alias analysis cannot
       separate.  Syntactically equal thread-dependent indices are the
       per-thread-slot idiom (safe); two atomics are safe; distinct
       integer literals are disjoint. *)
    let rec scan = function
      | [] -> ()
      | (a : Ast_util.access) :: rest ->
          List.iter
            (fun (b : Ast_util.access) ->
              let racy =
                a.acc_array = b.acc_array
                && a.acc_interval = b.acc_interval
                && (a.acc_kind = `Write || b.acc_kind = `Write)
                && (not (a.acc_kind = `Atomic && b.acc_kind = `Atomic))
                && (not
                      (Ast_util.equal_expr a.acc_index b.acc_index
                      && Ast_util.expr_thread_dependent ~tainted a.acc_index
                      ))
                &&
                match (a.acc_index, b.acc_index) with
                | Ast.Int_lit (x, _), Ast.Int_lit (y, _) -> Int64.equal x y
                | _ -> true
              in
              if
                racy
                && (not (SS.mem a.acc_array !reported_err))
                && not (SS.mem a.acc_array !reported_warn)
              then begin
                reported_warn := SS.add a.acc_array !reported_warn;
                let ww = a.acc_kind = `Write && b.acc_kind = `Write in
                diags :=
                  Diag.warning
                    (Shared_race
                       {
                         label = s.s_label;
                         array = a.acc_array;
                         write_write = ww;
                       })
                    (Fmt.str
                       "%s: %s accesses to %s[] in the same barrier \
                        interval may alias (cannot prove disjoint)"
                       s.s_label
                       (if ww then "write/write" else "read/write")
                       a.acc_array)
                  :: !diags
              end)
            rest;
          scan rest
    in
    scan accs;
    List.rev !diags
  end

(* -- resource legality ----------------------------------------------- *)

let check_resources ~(limits : Limits.t) ~threads ~regs ~smem : Diag.t list =
  let over resource required available detail =
    [ Diag.error (Over_budget { resource; required; available }) detail ]
  in
  if threads > limits.max_threads_per_block then
    over By_threads threads limits.max_threads_per_block
      (Fmt.str
         "fused block of %d threads exceeds the %d-thread hardware limit"
         threads limits.max_threads_per_block)
  else if regs > limits.max_regs_per_thread then
    over By_registers regs limits.max_regs_per_thread
      (Fmt.str "%d registers per thread exceed the hardware cap of %d" regs
         limits.max_regs_per_thread)
  else if smem > limits.smem_per_sm then
    over By_smem smem limits.smem_per_sm
      (Fmt.str "%d bytes of shared memory exceed the SM's %d" smem
         limits.smem_per_sm)
  else if Limits.blocks_per_sm limits ~regs ~threads ~smem = 0 then begin
    match Limits.limiting_resource limits ~regs ~threads ~smem with
    | By_registers ->
        over By_registers
          (Limits.round_up_regs limits regs * threads)
          limits.regs_per_sm
          (Fmt.str
             "no block fits: %d threads x %d registers exceed the SM's %d"
             threads
             (Limits.round_up_regs limits regs)
             limits.regs_per_sm)
    | By_threads ->
        over By_threads threads limits.max_threads_per_sm
          (Fmt.str "no block fits: %d threads exceed the SM's %d" threads
             limits.max_threads_per_sm)
    | By_smem ->
        over By_smem smem limits.smem_per_sm
          (Fmt.str
             "no block fits: %d bytes of shared memory exceed the SM's %d"
             smem limits.smem_per_sm)
    | By_block_slots ->
        (* blocks_per_sm = 0 cannot come from the slot limit *)
        []
  end
  else []

(* -- entry points ---------------------------------------------------- *)

let static_smem (sides : side list) : int =
  List.fold_left
    (fun acc s ->
      let from_regions =
        List.fold_left
          (fun a r -> if r.r_dynamic then a else a + r.r_bytes)
          0 s.s_shared
      in
      let from_decls =
        List.fold_left
          (fun a (d : Ast.decl) ->
            match d.d_storage with
            | Ast.Shared -> a + Ctype.sizeof d.d_type
            | _ -> a)
          0
          (Ast_util.collect_decls s.s_body)
      in
      acc + from_regions + from_decls)
    0 sides

let verify ?(limits = Limits.pascal_volta) ?(concurrent = true) ~threads
    ~regs ~smem_dynamic (sides : side list) : Diag.t list =
  let per_side =
    List.concat_map
      (fun s ->
        let tainted =
          Ast_util.thread_dependent_vars
            ~seeds:(SS.of_list s.s_tainted)
            s.s_body
        in
        check_barriers ~threads ~tainted s @ check_races ~tainted s)
      sides
  in
  let smem = smem_dynamic + static_smem sides in
  per_side
  @ (if concurrent then check_id_collisions sides else [])
  @ check_region_overlap sides
  @ check_resources ~limits ~threads ~regs ~smem

let verify_kernel ?limits ?(label = "kernel") ~threads ~regs ~smem_dynamic
    (body : Ast.stmt list) : Diag.t list =
  verify ?limits ~threads ~regs ~smem_dynamic
    [ side ~label ~count:threads body ]

(* Per-SM (and per-block) hardware resource limits, plus the residency
   arithmetic shared by the occupancy model and the fusion-safety
   verifier.

   This lives in the analysis library — below [Hfuse_core] in the
   dependency order — so the verifier can reason about resource legality
   without depending on the search/occupancy machinery that *uses* the
   verifier.  [Hfuse_core.Occupancy] re-exports the record type (as an
   equation, so the two are interchangeable) and delegates here. *)

type t = {
  regs_per_sm : int;  (** SMNRegs; 64K for Pascal and Volta *)
  smem_per_sm : int;  (** SMShMem; 96K for Pascal and Volta *)
  max_threads_per_sm : int;  (** SMNThreads; 2048 for Pascal and Volta *)
  max_blocks_per_sm : int;  (** hardware block-slot limit; 32 *)
  reg_alloc_granularity : int;
      (** registers are allocated in units of this per thread *)
  max_regs_per_thread : int;  (** 255 on both architectures *)
  max_threads_per_block : int;  (** hardware block-size cap; 1024 *)
}

let pascal_volta =
  {
    regs_per_sm = 65536;
    smem_per_sm = 96 * 1024;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 32;
    reg_alloc_granularity = 8;
    max_regs_per_thread = 255;
    max_threads_per_block = 1024;
  }

let round_up_regs lim r =
  let g = lim.reg_alloc_granularity in
  max g ((r + g - 1) / g * g)

(** Concurrent blocks per SM for a kernel with the given per-thread
    register count, per-block thread count and per-block shared memory.
    Zero when a single block cannot fit at all. *)
let blocks_per_sm (lim : t) ~regs ~threads ~smem : int =
  if threads <= 0 then invalid_arg "blocks_per_sm: threads <= 0";
  let regs = round_up_regs lim regs in
  let by_regs = lim.regs_per_sm / max 1 (regs * threads) in
  let by_threads = lim.max_threads_per_sm / threads in
  let by_smem =
    if smem = 0 then lim.max_blocks_per_sm else lim.smem_per_sm / smem
  in
  min (min by_regs by_threads) (min by_smem lim.max_blocks_per_sm)

(** Which resource limits a kernel's occupancy (for reports/ablations). *)
type limiter = By_registers | By_threads | By_smem | By_block_slots

let limiting_resource (lim : t) ~regs ~threads ~smem : limiter =
  let regs' = round_up_regs lim regs in
  let by_regs = lim.regs_per_sm / max 1 (regs' * threads) in
  let by_threads = lim.max_threads_per_sm / threads in
  (* a kernel using no shared memory is never smem-limited: leave the
     divisor absent rather than defaulting it to the block-slot limit,
     which used to make slot-limited zero-smem kernels report
     [By_smem] *)
  let by_smem = if smem = 0 then max_int else lim.smem_per_sm / smem in
  let b = min (min by_regs by_threads) (min by_smem lim.max_blocks_per_sm) in
  if b = by_regs && by_regs <= by_threads && by_regs <= by_smem then
    By_registers
  else if b = by_threads && by_threads <= by_smem then By_threads
  else if smem > 0 && b = by_smem then By_smem
  else By_block_slots

let pp_limiter ppf = function
  | By_registers -> Fmt.string ppf "registers"
  | By_threads -> Fmt.string ppf "threads"
  | By_smem -> Fmt.string ppf "shared memory"
  | By_block_slots -> Fmt.string ppf "block slots"

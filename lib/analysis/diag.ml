(* Structured diagnostics produced by the fusion-safety verifier.

   Each diagnostic pairs a machine-matchable [kind] (tests and callers
   dispatch on it) with a pre-rendered human-readable [detail] line (the
   CLI report prints it).  [Error] means the fused kernel is unsafe to
   launch — deadlock, data race, or a block that cannot be scheduled;
   [Warning] means the analysis cannot prove safety but the pattern is
   one the corpus legitimately uses (e.g. thread-indexed shared writes
   the may-alias pass cannot separate). *)

type severity = Error | Warning

type kind =
  | Barrier_id_out_of_range of { id : int; count : int }
  | Barrier_count_unaligned of { id : int; count : int }
  | Barrier_count_mismatch of { id : int; count : int; expected : int }
  | Barrier_id_collision of { id : int; label1 : string; label2 : string }
  | Full_barrier_in_partition of { label : string }
  | Divergent_barrier of { id : int option; label : string }
  | Shared_overlap of {
      name1 : string;
      label1 : string;
      name2 : string;
      label2 : string;
    }
  | Shared_race of { label : string; array : string; write_write : bool }
  | Over_budget of { resource : Limits.limiter; required : int; available : int }

type t = { severity : severity; kind : kind; detail : string }

exception Unsafe_fusion of t list

let error kind detail = { severity = Error; kind; detail }
let warning kind detail = { severity = Warning; kind; detail }
let is_error d = d.severity = Error
let errors ds = List.filter is_error ds
let is_clean ds = not (List.exists is_error ds)

(** Raise {!Unsafe_fusion} carrying every diagnostic when any is an
    [Error]; warnings alone never raise. *)
let raise_if_unsafe ds = if not (is_clean ds) then raise (Unsafe_fusion ds)

(* Stable machine-parsable tag per diagnostic kind.  The repair engine
   keys its strategy table on these, report lines carry them in
   brackets, and the rejection histograms use them as JSON field
   suffixes — treat the vocabulary as a wire format. *)
let kind_tag = function
  | Barrier_id_out_of_range _ -> "barrier-id-out-of-range"
  | Barrier_count_unaligned _ -> "barrier-count-unaligned"
  | Barrier_count_mismatch _ -> "barrier-count-mismatch"
  | Barrier_id_collision _ -> "barrier-id-collision"
  | Full_barrier_in_partition _ -> "full-barrier-in-partition"
  | Divergent_barrier _ -> "divergent-barrier"
  | Shared_overlap _ -> "shared-overlap"
  | Shared_race _ -> "shared-race"
  | Over_budget _ -> "over-budget"

let all_kind_tags =
  [
    "barrier-id-out-of-range";
    "barrier-count-unaligned";
    "barrier-count-mismatch";
    "barrier-id-collision";
    "full-barrier-in-partition";
    "divergent-barrier";
    "shared-overlap";
    "shared-race";
    "over-budget";
  ]

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"

let pp ppf d = Fmt.pf ppf "%a: %s" pp_severity d.severity d.detail

let pp_tagged ppf d =
  Fmt.pf ppf "%a[%s]: %s" pp_severity d.severity (kind_tag d.kind) d.detail

(** Multi-line report: one diagnostic per line, errors first, with a
    closing verdict line.  Each line carries its kind tag in brackets
    ([error[shared-race]: ...]) so logs and repro headers can be
    machine-parsed. *)
let pp_report ppf ds =
  let errs = errors ds in
  let warns = List.filter (fun d -> not (is_error d)) ds in
  List.iter (fun d -> Fmt.pf ppf "%a@." pp_tagged d) (errs @ warns);
  match (errs, warns) with
  | [], [] -> Fmt.pf ppf "OK: no fusion-safety issues found@."
  | [], w -> Fmt.pf ppf "OK: no errors (%d warning(s))@." (List.length w)
  | e, _ -> Fmt.pf ppf "UNSAFE: %d error(s)@." (List.length e)

let report_to_string ds = Fmt.str "%a" pp_report ds

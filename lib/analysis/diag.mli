(** Structured diagnostics produced by the fusion-safety {!Verifier}.

    [Error] means the fused kernel is unsafe to launch (deadlock, data
    race, or unschedulable block); [Warning] means the analysis cannot
    prove safety but the pattern is one real kernels legitimately use. *)

type severity = Error | Warning

type kind =
  | Barrier_id_out_of_range of { id : int; count : int }
      (** [bar.sync id] with id outside 1..15 *)
  | Barrier_count_unaligned of { id : int; count : int }
      (** barrier thread count not a positive multiple of the warp size *)
  | Barrier_count_mismatch of { id : int; count : int; expected : int }
      (** barrier count inconsistent with its sub-kernel's partition *)
  | Barrier_id_collision of { id : int; label1 : string; label2 : string }
      (** two fused sides use the same hardware barrier id *)
  | Full_barrier_in_partition of { label : string }
      (** [__syncthreads()] inside a side that owns only part of the
          block — the other side's threads never arrive: deadlock *)
  | Divergent_barrier of { id : int option; label : string }
      (** barrier under a thread-dependent condition; [id = None] for a
          full [__syncthreads()] *)
  | Shared_overlap of {
      name1 : string;
      label1 : string;
      name2 : string;
      label2 : string;
    }  (** the two sides' shared-memory regions overlap *)
  | Shared_race of { label : string; array : string; write_write : bool }
      (** shared-array accesses that may race (not barrier-separated) *)
  | Over_budget of { resource : Limits.limiter; required : int; available : int }
      (** the fused kernel exceeds a hardware resource limit *)

type t = { severity : severity; kind : kind; detail : string }

exception Unsafe_fusion of t list

val error : kind -> string -> t
val warning : kind -> string -> t
val is_error : t -> bool
val errors : t list -> t list

(** No [Error]-severity diagnostics (warnings allowed). *)
val is_clean : t list -> bool

(** Raise {!Unsafe_fusion} with all diagnostics when any is an error. *)
val raise_if_unsafe : t list -> unit

(** Stable machine-parsable kebab-case tag for a diagnostic kind
    (e.g. ["shared-race"]).  Used by report lines, the repair engine's
    strategy table and the rejection histograms; the vocabulary is a
    wire format — do not rename tags. *)
val kind_tag : kind -> string

(** Every tag {!kind_tag} can produce, in declaration order. *)
val all_kind_tags : string list

val pp_severity : severity Fmt.t
val pp : t Fmt.t

(** Like {!pp} but with the kind tag in brackets after the severity:
    [error[shared-race]: <detail>]. *)
val pp_tagged : t Fmt.t

(** Multi-line report, errors first (each line tagged as {!pp_tagged}),
    with a closing verdict line. *)
val pp_report : t list Fmt.t

val report_to_string : t list -> string

(* A fixed-size pool of OCaml 5 worker domains with a shared task
   queue, built on Domain/Mutex/Condition only (no external deps).

   The profiling search uses it to fan out the pure [Timing.run]
   candidate evaluations: tracing mutates [Memory.t] and stays on the
   calling domain; timing replays immutable traces and parallelises
   safely.  [map] preserves input order, so search results are
   bit-identical to the serial path regardless of worker count. *)

type t = {
  size : int;  (** worker domains; [<= 1] means no domains, run serial *)
  mutex : Mutex.t;  (** guards [queue] and [shutting_down] *)
  has_work : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable shutting_down : bool;
  mutable workers : unit Domain.t list;
}

(* a backstop against absurd [-j] values, not a tuning choice: domains
   are OS threads and oversubscription is merely wasteful, never wrong *)
let max_workers = 64

let rec worker (p : t) : unit =
  Mutex.lock p.mutex;
  let rec next () =
    if p.shutting_down then None
    else
      match Queue.take_opt p.queue with
      | Some _ as task -> task
      | None ->
          Condition.wait p.has_work p.mutex;
          next ()
  in
  let task = next () in
  Mutex.unlock p.mutex;
  match task with
  | None -> ()
  | Some task ->
      task ();
      worker p

let create (jobs : int) : t =
  let size = min (max jobs 0) max_workers in
  let p =
    {
      size;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      queue = Queue.create ();
      shutting_down = false;
      workers = [];
    }
  in
  if size > 1 then
    p.workers <- List.init size (fun _ -> Domain.spawn (fun () -> worker p));
  p

let size (p : t) : int = max 1 p.size

let shutdown (p : t) : unit =
  Mutex.lock p.mutex;
  p.shutting_down <- true;
  Condition.broadcast p.has_work;
  Mutex.unlock p.mutex;
  List.iter Domain.join p.workers;
  p.workers <- []

let with_pool (jobs : int) (f : t -> 'a) : 'a =
  let p = create jobs in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)

let map (p : t) (f : 'a -> 'b) (xs : 'a array) : 'b array =
  let n = Array.length xs in
  if p.size <= 1 || n <= 1 then Array.map f xs
  else begin
    let results : 'b option array = Array.make n None in
    (* per-call completion latch; the pool mutex only guards the queue *)
    let latch = Mutex.create () in
    let all_done = Condition.create () in
    let remaining = ref n in
    let first_exn = ref None in
    let task i () =
      (match f xs.(i) with
      | v -> results.(i) <- Some v
      | exception e ->
          Mutex.lock latch;
          if !first_exn = None then first_exn := Some e;
          Mutex.unlock latch);
      Mutex.lock latch;
      decr remaining;
      if !remaining = 0 then Condition.signal all_done;
      Mutex.unlock latch
    in
    Mutex.lock p.mutex;
    for i = 0 to n - 1 do
      Queue.add (task i) p.queue
    done;
    Condition.broadcast p.has_work;
    Mutex.unlock p.mutex;
    Mutex.lock latch;
    while !remaining > 0 do
      Condition.wait all_done latch
    done;
    Mutex.unlock latch;
    match !first_exn with
    | Some e -> raise e
    | None ->
        Array.map (function Some v -> v | None -> assert false) results
  end

let map_list (p : t) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  Array.to_list (map p f (Array.of_list xs))

let default_jobs () = min max_workers (Domain.recommended_domain_count ())

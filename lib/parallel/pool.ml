(* A fixed-size pool of OCaml 5 worker domains with a shared task
   queue, built on Domain/Mutex/Condition.

   The profiling search uses it to fan out the pure [Timing.run]
   candidate evaluations: tracing mutates [Memory.t] and stays on the
   calling domain; timing replays immutable traces and parallelises
   safely.  [map] preserves input order, so search results are
   bit-identical to the serial path regardless of worker count.

   Availability: every task runs inside [run_task], which isolates
   exceptions (one dying task never kills the pool or its siblings),
   retries transient faults with deterministic seed-mixed backoff, and
   feeds the process-wide failures/retries/recovered tally.  The
   serial path runs the identical wrapper so fault-injection draws and
   tallies cannot depend on [-j].

   Service pools ([create ~queue_limit]) additionally accept
   fire-and-forget {!submit} jobs with integer priorities and a
   bounded admission queue — the scheduling substrate of the fusion
   daemon.  Tasks are drained highest-priority-first, FIFO within a
   priority; [map] batches ride the same queue at priority 0. *)

module Fault = Hfuse_fault.Fault

(* priority buckets: the map key is the negated priority, so the
   smallest binding is the most urgent; a Queue per bucket keeps FIFO
   order within a priority *)
module Buckets = Map.Make (Int)

type t = {
  size : int;  (** worker domains; [<= 1] means no domains, run serial *)
  mutex : Mutex.t;  (** guards [buckets], [pending_submits], [shutting_down] *)
  has_work : Condition.t;
  mutable buckets : (unit -> unit) Queue.t Buckets.t;
  queue_limit : int option;
      (** admission bound on queued-not-yet-started {!submit} jobs *)
  mutable pending_submits : int;
  mutable shutting_down : bool;
  mutable workers : unit Domain.t list;
}

(* a backstop against absurd [-j] values, not a tuning choice: domains
   are OS threads and oversubscription is merely wasteful, never wrong *)
let max_workers = 64

let enqueue (p : t) ~(priority : int) (task : unit -> unit) : unit =
  let key = -priority in
  let q =
    match Buckets.find_opt key p.buckets with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        p.buckets <- Buckets.add key q p.buckets;
        q
  in
  Queue.add task q

let dequeue (p : t) : (unit -> unit) option =
  match Buckets.min_binding_opt p.buckets with
  | None -> None
  | Some (key, q) ->
      let task = Queue.take q in
      if Queue.is_empty q then p.buckets <- Buckets.remove key p.buckets;
      Some task

let rec worker (p : t) : unit =
  Mutex.lock p.mutex;
  let rec next () =
    if p.shutting_down then None
    else
      match dequeue p with
      | Some _ as task -> task
      | None ->
          Condition.wait p.has_work p.mutex;
          next ()
  in
  let task = next () in
  Mutex.unlock p.mutex;
  match task with
  | None -> ()
  | Some task ->
      (* a raising task must not take its worker down with it — in a
         long-lived server the pool outlives any one job.  [map] tasks
         never raise ([run_task] is terminal); this guards [submit]
         jobs whose response path fails (e.g. a vanished client). *)
      (try task () with _ -> ());
      worker p

let create ?queue_limit (jobs : int) : t =
  let size = min (max jobs 0) max_workers in
  let p =
    {
      size;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      buckets = Buckets.empty;
      queue_limit;
      pending_submits = 0;
      shutting_down = false;
      workers = [];
    }
  in
  (* a service pool must drain asynchronously even at width 1, so it
     always spawns; plain pools keep the degenerate serial path *)
  let spawn =
    if queue_limit <> None then max 1 size else if size > 1 then size else 0
  in
  if spawn > 0 then
    p.workers <- List.init spawn (fun _ -> Domain.spawn (fun () -> worker p));
  p

let size (p : t) : int = max 1 p.size

let shutdown (p : t) : unit =
  Mutex.lock p.mutex;
  p.shutting_down <- true;
  Condition.broadcast p.has_work;
  Mutex.unlock p.mutex;
  List.iter Domain.join p.workers;
  p.workers <- []

let with_pool ?queue_limit (jobs : int) (f : t -> 'a) : 'a =
  let p = create ?queue_limit jobs in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)

(* ------------------------------------------------------------------ *)
(* Bounded prioritised submission (the daemon's scheduler)              *)
(* ------------------------------------------------------------------ *)

type admission = [ `Queued | `Overloaded | `Shutdown ]

let submit ?(priority = 0) (p : t) (job : unit -> unit) : admission =
  if p.queue_limit = None then
    invalid_arg "Pool.submit: pool has no workers (create with ~queue_limit)";
  Mutex.lock p.mutex;
  (* a fully shut-down service pool has no workers left: answer
     [`Shutdown] like a pool mid-teardown, never raise — a late
     request racing the daemon's exit must cost one refusal, not the
     reader thread *)
  if p.shutting_down || p.workers = [] then begin
    Mutex.unlock p.mutex;
    `Shutdown
  end
  else if
    match p.queue_limit with
    | Some l -> p.pending_submits >= l
    | None -> false
  then begin
    (* admission control: refuse now instead of queueing into
       unbounded latency — the caller answers [overloaded] *)
    Mutex.unlock p.mutex;
    `Overloaded
  end
  else begin
    p.pending_submits <- p.pending_submits + 1;
    enqueue p ~priority (fun () ->
        (* the admission slot frees when the job starts running: the
           bound is on queued-not-yet-started work *)
        Mutex.lock p.mutex;
        p.pending_submits <- p.pending_submits - 1;
        Mutex.unlock p.mutex;
        job ());
    Condition.signal p.has_work;
    Mutex.unlock p.mutex;
    `Queued
  end

let pending_submits (p : t) : int =
  Mutex.lock p.mutex;
  let n = p.pending_submits in
  Mutex.unlock p.mutex;
  n

(* ------------------------------------------------------------------ *)
(* Per-task isolation and retry                                         *)
(* ------------------------------------------------------------------ *)

type failure = {
  f_index : int;
  f_attempts : int;
  f_exn : exn;
  f_backtrace : Printexc.raw_backtrace;
}

type tally = { failures : int; retries : int; recovered : int }

let failures_c = Atomic.make 0
let retries_c = Atomic.make 0
let recovered_c = Atomic.make 0

let tally () =
  {
    failures = Atomic.get failures_c;
    retries = Atomic.get retries_c;
    recovered = Atomic.get recovered_c;
  }

let reset_tally () =
  Atomic.set failures_c 0;
  Atomic.set retries_c 0;
  Atomic.set recovered_c 0

(* per-request deltas for a long-lived server: counters only grow, so
   the difference of two snapshots is the work in between (clamped to
   guard a reset between them) *)
let diff ~(before : tally) ~(after : tally) : tally =
  {
    failures = max 0 (after.failures - before.failures);
    retries = max 0 (after.retries - before.retries);
    recovered = max 0 (after.recovered - before.recovered);
  }

let pp_tally ppf (t : tally) =
  Format.fprintf ppf "%d failure%s, %d retr%s, %d recovered" t.failures
    (if t.failures = 1 then "" else "s")
    t.retries
    (if t.retries = 1 then "y" else "ies")
    t.recovered

(* injected faults are transient by construction (the retry re-draws or
   skips the injection point); the cap only guards rates close to 1 *)
let injected_cap = 64

(* per-[map] call salt: combined with the task index it gives every
   task a stable draw key, deterministic for a given call sequence *)
let call_seq = Atomic.make 0

(* Run one task to a terminal [Ok]/[Error], never raising.  Injection
   of [Worker_crash] happens once, before the first attempt, keyed on
   (call salt, task index) — pure, so the same task crashes (or not)
   at any [-j].  The fault plan is the caller's: a server threads each
   request's plan explicitly, so concurrent requests draw from their
   own plans.  Backoff sleeps are deterministic in duration
   ([Fault.jitter] is a pure function) and never touch result
   ordering: [map_isolated] slots results by index. *)
let run_task ~(retries : int) ~(salt : int) ~(fault : Fault.plan option)
    (i : int) (f : 'a -> 'b) (x : 'a) : ('b, failure) result =
  let key = Fault.mix salt i in
  let rec go attempt ever_failed =
    let res =
      try
        if attempt = 0 && Fault.fires ?plan:fault Worker_crash ~key then begin
          Fault.note_injected Worker_crash;
          raise (Fault.Injected Worker_crash)
        end;
        Ok (f x)
      with e -> Error (e, Printexc.get_raw_backtrace ())
    in
    match res with
    | Ok v ->
        if ever_failed then Atomic.incr recovered_c;
        Ok v
    | Error (Fault.Injected k, _) when attempt < injected_cap -> (
        Atomic.incr retries_c;
        Unix.sleepf (Fault.jitter ?plan:fault ~key ~attempt ());
        match go (attempt + 1) true with
        | Ok _ as ok ->
            Fault.note_recovered k;
            ok
        | Error _ as err -> err)
    | Error (_, _) when attempt < retries ->
        Atomic.incr retries_c;
        Unix.sleepf (Fault.jitter ?plan:fault ~key ~attempt ());
        go (attempt + 1) true
    | Error (e, bt) ->
        Atomic.incr failures_c;
        Error { f_index = i; f_attempts = attempt + 1; f_exn = e; f_backtrace = bt }
  in
  go 0 false

let map_isolated ?(retries = 0) ?fault (p : t) (f : 'a -> 'b) (xs : 'a array) :
    ('b, failure) result array =
  let n = Array.length xs in
  let salt = Atomic.fetch_and_add call_seq 1 in
  let task i x = run_task ~retries ~salt ~fault i f x in
  if p.size <= 1 || n <= 1 then Array.mapi task xs
  else begin
    let results : ('b, failure) result option array = Array.make n None in
    (* per-call completion latch; the pool mutex only guards the queue *)
    let latch = Mutex.create () in
    let all_done = Condition.create () in
    let remaining = ref n in
    let job i () =
      let r = task i xs.(i) in
      (* [run_task] never raises, so the slot is always filled *)
      results.(i) <- Some r;
      Mutex.lock latch;
      decr remaining;
      if !remaining = 0 then Condition.signal all_done;
      Mutex.unlock latch
    in
    Mutex.lock p.mutex;
    for i = 0 to n - 1 do
      enqueue p ~priority:0 (job i)
    done;
    Condition.broadcast p.has_work;
    Mutex.unlock p.mutex;
    Mutex.lock latch;
    while !remaining > 0 do
      Condition.wait all_done latch
    done;
    Mutex.unlock latch;
    Array.map (function Some r -> r | None -> assert false) results
  end

let map ?fault (p : t) (f : 'a -> 'b) (xs : 'a array) : 'b array =
  let rs = map_isolated ?fault p f xs in
  (* the lowest-index terminal failure is re-raised with the backtrace
     captured where it was raised — deterministic at any [-j], and the
     trace points into the task, not at the pool plumbing *)
  let first_failure = ref None in
  Array.iter
    (fun r ->
      match (r, !first_failure) with
      | Error fl, None -> first_failure := Some fl
      | _ -> ())
    rs;
  match !first_failure with
  | Some fl -> Printexc.raise_with_backtrace fl.f_exn fl.f_backtrace
  | None -> Array.map (function Ok v -> v | Error _ -> assert false) rs

let map_list ?fault (p : t) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  Array.to_list (map ?fault p f (Array.of_list xs))

let default_jobs () = min max_workers (Domain.recommended_domain_count ())

(** A fixed-size pool of OCaml 5 worker domains with a shared task
    queue (Domain/Mutex/Condition only).

    Built for the profiling search: tracing mutates [Memory.t] and
    stays on the calling domain, while the pure [Timing.run] candidate
    evaluations fan out here.  {!map} preserves input order, so callers
    get results bit-identical to a serial run regardless of worker
    count.

    Every task runs isolated: an exception in one task never kills the
    pool or the other tasks.  Failed tasks are retried a bounded number
    of times with deterministic, seed-mixed backoff
    ({!Hfuse_fault.Fault.jitter} — a pure function of the task key and
    attempt, never the wall clock), so retries cannot perturb result
    determinism at any [-j].  Faults injected by the chaos harness
    ({!Hfuse_fault.Fault.Injected}) are transient by construction and
    always retried.  The serial ([jobs <= 1]) path runs the identical
    isolation/retry wrapper, so fault draws and tallies do not depend
    on worker count. *)

type t

(** [create jobs] spawns [min jobs 64] worker domains.  [jobs <= 1]
    creates a degenerate pool that runs everything on the calling
    domain (no domains spawned) — unless [queue_limit] is given, which
    makes a {e service} pool: at least one worker always spawns (so
    {!submit} jobs drain asynchronously) and at most [queue_limit]
    submitted jobs may wait unstarted before {!submit} answers
    [`Overloaded] (admission control for a long-lived server). *)
val create : ?queue_limit:int -> int -> t

(** Effective parallelism: worker count, or 1 for a serial pool. *)
val size : t -> int

(** One task's terminal failure: the exception that exhausted its
    retry budget, with the backtrace captured where it was raised. *)
type failure = {
  f_index : int;  (** index into the input array *)
  f_attempts : int;  (** total attempts made (>= 1) *)
  f_exn : exn;
  f_backtrace : Printexc.raw_backtrace;
}

(** [map_isolated p f xs] applies [f] to every element with per-task
    isolation: each element yields either its result or its terminal
    {!failure}; one task's failure never affects another's.  Results
    are in input order.  [retries] bounds re-runs after a *real*
    exception (default 0 — a deterministic simulator usually fails the
    same way twice); injected faults are always retried.  [fault]
    scopes chaos-injection draws to an explicit plan (e.g. one
    request's plan in a server); omitted, the installed process plan
    applies as before.  [f] must be safe to run on another domain (no
    shared mutable state). *)
val map_isolated :
  ?retries:int -> ?fault:Hfuse_fault.Fault.plan -> t -> ('a -> 'b) ->
  'a array -> ('b, failure) result array

(** [map p f xs] is {!map_isolated} that re-raises on failure: if any
    task fails terminally, the lowest-index failure's exception is
    re-raised with its original backtrace after all tasks finish
    (deterministic at any [-j]; satellite of debuggability — the trace
    points at the raising task, not at the pool). *)
val map : ?fault:Hfuse_fault.Fault.plan -> t -> ('a -> 'b) -> 'a array -> 'b array

(** {!map} over lists, preserving order. *)
val map_list : ?fault:Hfuse_fault.Fault.plan -> t -> ('a -> 'b) -> 'a list -> 'b list

(** Admission verdict for one {!submit}. *)
type admission = [ `Queued | `Overloaded | `Shutdown ]

(** [submit ?priority p job] enqueues a fire-and-forget job on a
    service pool ({!create} with [~queue_limit]).  Higher [priority]
    (default 0) drains sooner; FIFO within a priority — {!map} batches
    ride the same queue at priority 0.  Answers [`Overloaded] without
    queueing when [queue_limit] unstarted jobs are already waiting,
    and [`Shutdown] once {!shutdown} began (including after it
    completed — a late submit racing a server's exit is refused, never
    an exception).  [job] runs on a worker domain; its exceptions are
    swallowed (the pool must outlive any one job), so the job itself
    must report its outcome.
    @raise Invalid_argument on a non-service pool (no [queue_limit]). *)
val submit : ?priority:int -> t -> (unit -> unit) -> admission

(** Submitted jobs queued but not yet started (always within
    [queue_limit]); the daemon's [stats] telemetry. *)
val pending_submits : t -> int

(** Signal workers to exit and join them.  The pool must not be used
    afterwards. *)
val shutdown : t -> unit

(** [with_pool jobs f] runs [f] with a fresh pool and always shuts it
    down, even if [f] raises.  [queue_limit] as in {!create}. *)
val with_pool : ?queue_limit:int -> int -> (t -> 'a) -> 'a

(** A sensible default worker count for this machine
    ([Domain.recommended_domain_count], capped). *)
val default_jobs : unit -> int

(** Process-wide availability counters: terminal task failures, retry
    attempts, and tasks that failed at least once but ultimately
    succeeded.  Domain-safe. *)
type tally = { failures : int; retries : int; recovered : int }

val tally : unit -> tally
val reset_tally : unit -> unit

(** [diff ~before ~after] — deltas between two {!tally} snapshots
    (clamped at 0): per-request availability telemetry in a long-lived
    server, without resetting the cumulative counters the one-shot
    CLIs print. *)
val diff : before:tally -> after:tally -> tally

(** ["F failures, R retries, C recovered"]. *)
val pp_tally : Format.formatter -> tally -> unit

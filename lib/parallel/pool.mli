(** A fixed-size pool of OCaml 5 worker domains with a shared task
    queue (Domain/Mutex/Condition only, no external dependencies).

    Built for the profiling search: tracing mutates [Memory.t] and
    stays on the calling domain, while the pure [Timing.run] candidate
    evaluations fan out here.  {!map} preserves input order, so callers
    get results bit-identical to a serial run regardless of worker
    count. *)

type t

(** [create jobs] spawns [min jobs 64] worker domains.  [jobs <= 1]
    creates a degenerate pool that runs everything on the calling
    domain (no domains spawned). *)
val create : int -> t

(** Effective parallelism: worker count, or 1 for a serial pool. *)
val size : t -> int

(** [map p f xs] applies [f] to every element, distributing work over
    the pool's domains.  The result array is in input order.  [f] must
    be safe to run on another domain (no shared mutable state).  If any
    application raises, the first exception observed is re-raised after
    all tasks finish. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** {!map} over lists, preserving order. *)
val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

(** Signal workers to exit and join them.  The pool must not be used
    afterwards. *)
val shutdown : t -> unit

(** [with_pool jobs f] runs [f] with a fresh pool and always shuts it
    down, even if [f] raises. *)
val with_pool : int -> (t -> 'a) -> 'a

(** A sensible default worker count for this machine
    ([Domain.recommended_domain_count], capped). *)
val default_jobs : unit -> int

(** A fixed-size pool of OCaml 5 worker domains with a shared task
    queue (Domain/Mutex/Condition only).

    Built for the profiling search: tracing mutates [Memory.t] and
    stays on the calling domain, while the pure [Timing.run] candidate
    evaluations fan out here.  {!map} preserves input order, so callers
    get results bit-identical to a serial run regardless of worker
    count.

    Every task runs isolated: an exception in one task never kills the
    pool or the other tasks.  Failed tasks are retried a bounded number
    of times with deterministic, seed-mixed backoff
    ({!Hfuse_fault.Fault.jitter} — a pure function of the task key and
    attempt, never the wall clock), so retries cannot perturb result
    determinism at any [-j].  Faults injected by the chaos harness
    ({!Hfuse_fault.Fault.Injected}) are transient by construction and
    always retried.  The serial ([jobs <= 1]) path runs the identical
    isolation/retry wrapper, so fault draws and tallies do not depend
    on worker count. *)

type t

(** [create jobs] spawns [min jobs 64] worker domains.  [jobs <= 1]
    creates a degenerate pool that runs everything on the calling
    domain (no domains spawned). *)
val create : int -> t

(** Effective parallelism: worker count, or 1 for a serial pool. *)
val size : t -> int

(** One task's terminal failure: the exception that exhausted its
    retry budget, with the backtrace captured where it was raised. *)
type failure = {
  f_index : int;  (** index into the input array *)
  f_attempts : int;  (** total attempts made (>= 1) *)
  f_exn : exn;
  f_backtrace : Printexc.raw_backtrace;
}

(** [map_isolated p f xs] applies [f] to every element with per-task
    isolation: each element yields either its result or its terminal
    {!failure}; one task's failure never affects another's.  Results
    are in input order.  [retries] bounds re-runs after a *real*
    exception (default 0 — a deterministic simulator usually fails the
    same way twice); injected faults are always retried.  [f] must be
    safe to run on another domain (no shared mutable state). *)
val map_isolated :
  ?retries:int -> t -> ('a -> 'b) -> 'a array -> ('b, failure) result array

(** [map p f xs] is {!map_isolated} that re-raises on failure: if any
    task fails terminally, the lowest-index failure's exception is
    re-raised with its original backtrace after all tasks finish
    (deterministic at any [-j]; satellite of debuggability — the trace
    points at the raising task, not at the pool). *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** {!map} over lists, preserving order. *)
val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

(** Signal workers to exit and join them.  The pool must not be used
    afterwards. *)
val shutdown : t -> unit

(** [with_pool jobs f] runs [f] with a fresh pool and always shuts it
    down, even if [f] raises. *)
val with_pool : int -> (t -> 'a) -> 'a

(** A sensible default worker count for this machine
    ([Domain.recommended_domain_count], capped). *)
val default_jobs : unit -> int

(** Process-wide availability counters: terminal task failures, retry
    attempts, and tasks that failed at least once but ultimately
    succeeded.  Domain-safe. *)
type tally = { failures : int; retries : int; recovered : int }

val tally : unit -> tally
val reset_tally : unit -> unit

(** ["F failures, R retries, C recovered"]. *)
val pp_tally : Format.formatter -> tally -> unit

(* Deterministic chaos injection (see the interface for the model).

   A fault plan is a set of per-kind probabilities plus a campaign
   seed.  Draws are pure: [fires k ~key] hashes (seed, kind, key)
   through a SplitMix64-style finalizer and compares the top 53 bits
   against the rate, so the same call site faults (or not) identically
   on every run, at any [-j], in any interleaving.  No wall clock and
   no global PRNG anywhere.

   The plan and the tallies are process-wide: the plan is installed
   once at startup (before worker domains exist) and read-only after;
   tallies are [Atomic] counters so injection points on worker domains
   can note faults without locks. *)

type kind = Worker_crash | Cache_corrupt | Sim_hang

let all_kinds = [ Worker_crash; Cache_corrupt; Sim_hang ]

let kind_name = function
  | Worker_crash -> "worker_crash"
  | Cache_corrupt -> "cache_corrupt"
  | Sim_hang -> "sim_hang"

let kind_index = function Worker_crash -> 0 | Cache_corrupt -> 1 | Sim_hang -> 2
let nkinds = 3

exception Injected of kind

(** A malformed fault spec.  Raised instead of exiting: library code
    must never kill its host process (a daemon serving many requests
    maps this to one failed request, the CLI maps it to exit 2). *)
exception Invalid_spec of string

let () =
  Printexc.register_printer (function
    | Injected k -> Some ("Fault.Injected(" ^ kind_name k ^ ")")
    | Invalid_spec msg -> Some ("Fault.Invalid_spec(" ^ msg ^ ")")
    | _ -> None)

type plan = { seed : int; rates : float array (* indexed by kind_index *) }

let installed_plan : plan option Atomic.t = Atomic.make None

(* ------------------------------------------------------------------ *)
(* Spec parsing                                                         *)
(* ------------------------------------------------------------------ *)

let kind_of_name = function
  | "worker_crash" -> Some Worker_crash
  | "cache_corrupt" -> Some Cache_corrupt
  | "sim_hang" -> Some Sim_hang
  | _ -> None

let parse (spec : string) : (plan option, string) result =
  let spec = String.trim spec in
  if spec = "" then Ok None
  else
    let rates = Array.make nkinds 0.0 in
    let seed = ref 1 in
    let entry e =
      match String.index_opt e ':' with
      | None -> Error (Printf.sprintf "expected kind:rate, got %S" e)
      | Some i -> (
          let name = String.trim (String.sub e 0 i) in
          let v = String.trim (String.sub e (i + 1) (String.length e - i - 1)) in
          match name with
          | "seed" -> (
              match int_of_string_opt v with
              | Some s ->
                  seed := s;
                  Ok ()
              | None -> Error (Printf.sprintf "seed expects an integer, got %S" v))
          | _ -> (
              match kind_of_name name with
              | None -> Error (Printf.sprintf "unknown fault kind %S" name)
              | Some k -> (
                  match float_of_string_opt v with
                  | Some r when r >= 0.0 && r <= 1.0 ->
                      rates.(kind_index k) <- r;
                      Ok ()
                  | _ ->
                      Error
                        (Printf.sprintf "rate for %s must be in [0, 1], got %S"
                           name v))))
    in
    let rec go = function
      | [] -> Ok (Some { seed = !seed; rates })
      | e :: rest -> ( match entry e with Ok () -> go rest | Error _ as err -> err)
    in
    go (List.filter (fun s -> String.trim s <> "") (String.split_on_char ',' spec))

(* [plan_of_spec] is the request-scoped entry point: it never touches
   the installed process plan, so concurrent requests can each carry
   their own plan without clobbering one another. *)
let plan_of_spec spec =
  match parse spec with Ok p -> p | Error msg -> raise (Invalid_spec msg)

let install p = Atomic.set installed_plan p
let installed () = Atomic.get installed_plan

(* Round-trips through {!plan_of_spec}: rates print with enough digits
   to reparse exactly, so a client can ship its installed plan to a
   server verbatim. *)
let to_spec (p : plan) : string =
  let parts =
    List.filter_map
      (fun k ->
        let r = p.rates.(kind_index k) in
        if r > 0.0 then Some (Printf.sprintf "%s:%.17g" (kind_name k) r)
        else None)
      all_kinds
  in
  String.concat "," (parts @ [ "seed:" ^ string_of_int p.seed ])

let configure spec =
  match parse spec with
  | Ok p ->
      install p;
      Ok ()
  | Error _ as e -> e

let from_env () =
  match Sys.getenv_opt "HFUSE_FAULT" with
  | None -> ()
  | Some spec -> (
      match configure spec with
      | Ok () -> ()
      | Error msg -> raise (Invalid_spec ("HFUSE_FAULT: " ^ msg)))

let clear () = install None

(* An explicitly passed [?plan] wins; omitted falls back to the
   installed process plan — the one-shot default. *)
let effective = function
  | Some _ as p -> p
  | None -> Atomic.get installed_plan

let enabled ?plan () = effective plan <> None

let rate ?plan k =
  match effective plan with
  | None -> 0.0
  | Some p -> p.rates.(kind_index k)

(* ------------------------------------------------------------------ *)
(* Draws                                                                *)
(* ------------------------------------------------------------------ *)

(* SplitMix64 finalizer: full-avalanche mix, so consecutive keys give
   independent-looking draws (same construction as Kernel_corpus.Prng,
   replicated here to keep this library dependency-free). *)
let mix64 (z : int64) : int64 =
  let z = Int64.add z 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let mix (a : int) (b : int) : int =
  Int64.to_int (mix64 (Int64.logxor (mix64 (Int64.of_int a)) (Int64.of_int b)))

(* top 53 bits as a uniform float in [0, 1) *)
let uniform ~(seed : int) ~(salt : int) ~(key : int) : float =
  let h = mix64 (Int64.of_int (mix (mix seed salt) key)) in
  Int64.to_float (Int64.shift_right_logical h 11) *. 0x1p-53

let fires ?plan k ~key =
  match effective plan with
  | None -> false
  | Some p ->
      let r = p.rates.(kind_index k) in
      r > 0.0 && uniform ~seed:p.seed ~salt:(kind_index k) ~key < r

let key_seq = Array.init nkinds (fun _ -> Atomic.make 0)
let fresh_key k = Atomic.fetch_and_add key_seq.(kind_index k) 1

(* Deterministic backoff: 0.5 ms * 2^attempt (capped at 2^6), plus up
   to 100% seed-mixed jitter so simultaneous retries de-correlate —
   still a pure function of (key, attempt). *)
let jitter ?plan ~key ~attempt () =
  let seed = match effective plan with None -> 0 | Some p -> p.seed in
  let base = 0.0005 *. Float.of_int (1 lsl min attempt 6) in
  base *. (1.0 +. uniform ~seed ~salt:100 ~key:(mix key attempt))

(* ------------------------------------------------------------------ *)
(* Tally                                                                *)
(* ------------------------------------------------------------------ *)

type tally = { injected : (kind * int) list; recovered : (kind * int) list }

let injected_counts = Array.init nkinds (fun _ -> Atomic.make 0)
let recovered_counts = Array.init nkinds (fun _ -> Atomic.make 0)
let note_injected k = Atomic.incr injected_counts.(kind_index k)
let note_recovered k = Atomic.incr recovered_counts.(kind_index k)

let tally () =
  let snap arr = List.map (fun k -> (k, Atomic.get arr.(kind_index k))) all_kinds in
  { injected = snap injected_counts; recovered = snap recovered_counts }

let total arr = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 arr
let injected_total () = total injected_counts
let recovered_total () = total recovered_counts

let reset_tally () =
  Array.iter (fun c -> Atomic.set c 0) injected_counts;
  Array.iter (fun c -> Atomic.set c 0) recovered_counts

(* Per-request telemetry in a long-lived process: snapshot the
   cumulative tally around a request and report the delta.  Counters
   only grow, so the difference is non-negative for a consistent pair
   of snapshots; clamping guards a reset between them. *)
let diff ~(before : tally) ~(after : tally) : tally =
  let sub a b =
    List.map
      (fun (k, n) ->
        let m = try List.assoc k b with Not_found -> 0 in
        (k, max 0 (n - m)))
      a
  in
  { injected = sub after.injected before.injected;
    recovered = sub after.recovered before.recovered }

let pp_tally ppf (t : tally) =
  let count kind l = try List.assoc kind l with Not_found -> 0 in
  let sum l = List.fold_left (fun acc (_, n) -> acc + n) 0 l in
  Fmt.pf ppf "injected %d (crash %d, corrupt %d, hang %d), recovered %d"
    (sum t.injected)
    (count Worker_crash t.injected)
    (count Cache_corrupt t.injected)
    (count Sim_hang t.injected)
    (sum t.recovered)

(* ------------------------------------------------------------------ *)
(* Retry wrapper                                                        *)
(* ------------------------------------------------------------------ *)

(* Injected faults are transient by construction (a retry re-draws or
   skips the injection point), so they always get another attempt, up
   to a hard cap that only a rate close to 1.0 can reach.  Real
   exceptions are retried [budget] times — in a deterministic
   simulator a genuine failure usually repeats, so the default is no
   retry.  No sleeping here: this library has no Unix dependency;
   callers that want backoff pair the loop with {!jitter}. *)
let injected_cap = 64

let with_retries ?(budget = 0) ~key:_ (f : unit -> 'a) : 'a =
  let rec go attempt =
    match f () with
    | v -> v
    | exception Injected k when attempt < injected_cap ->
        (* recovery is noted when the retried attempt succeeds *)
        let v = go (attempt + 1) in
        note_recovered k;
        v
    | exception e when (match e with Injected _ -> false | _ -> true) && attempt < budget ->
        let bt = Printexc.get_raw_backtrace () in
        (match go (attempt + 1) with
        | v -> v
        | exception _ -> Printexc.raise_with_backtrace e bt)
  in
  go 0

(** Deterministic chaos injection for the profiling pipeline.

    The harness injects three availability faults — a worker domain
    crashing mid-task, a committed cache entry getting corrupted, and a
    simulated kernel hanging — so the recovery paths (retry, quarantine
    + recompute, fuel watchdog) are exercised in tests and CI, the same
    philosophy as the fuzzer's [--inject-barrier-bug] extended from
    correctness to availability.

    Every draw is a pure hash of (campaign seed, fault kind, call-site
    key): whether a given operation faults never depends on wall time,
    worker count, or scheduling, so runs with injection enabled remain
    reproducible.  Injected faults are transient by construction — a
    retry of the same operation draws a fresh key (or skips the
    injection point) and succeeds — which is what makes the end-to-end
    guarantee testable: results under [--fault] are bit-identical to a
    fault-free run. *)

type kind =
  | Worker_crash  (** a pool task dies with an exception mid-flight *)
  | Cache_corrupt  (** a committed cache entry is truncated on disk *)
  | Sim_hang  (** a launch spins until the fuel watchdog fires *)

val all_kinds : kind list
val kind_name : kind -> string

(** Raised at an injection point when the draw fires.  Recovery layers
    treat it as transient: retry (pool, launch) or recompute
    (quarantined cache entry). *)
exception Injected of kind

(** A malformed fault spec.  Raised by {!plan_of_spec} and {!from_env}
    instead of exiting: library code never kills its host process.  A
    daemon maps it to one failed request; the CLIs map it to exit 2. *)
exception Invalid_spec of string

(** A parsed fault plan: per-kind rates plus a campaign seed.  Beyond
    the single installed process plan, plans are first-class so a
    long-lived server can thread one per request ([?plan] on the draw
    functions below) without concurrent requests clobbering each
    other's configuration. *)
type plan

(** [plan_of_spec spec] parses a spec without installing it.  [spec] is
    a comma-separated [kind:rate] list, e.g.
    ["worker_crash:0.05,cache_corrupt:0.1,sim_hang:0.02"], optionally
    with a [seed:N] entry (default seed 1).  Rates must be in [0, 1].
    [None] for an empty spec (no faults).
    @raise Invalid_spec on a malformed spec. *)
val plan_of_spec : string -> plan option

(** Render a plan as a spec string that {!plan_of_spec} reparses to an
    equal plan — how a client ships its installed plan to a server. *)
val to_spec : plan -> string

(** Install a plan as the process default ([None] clears it). *)
val install : plan option -> unit

(** The installed process plan, if any. *)
val installed : unit -> plan option

(** [configure spec] parses and installs a fault plan (spec syntax as
    {!plan_of_spec}).  An empty spec clears the plan. *)
val configure : string -> (unit, string) result

(** Install a plan from the [HFUSE_FAULT] environment variable, if set
    (same syntax as {!configure}).
    @raise Invalid_spec on a malformed value, so CI never silently
    runs fault-free — the CLI entry points map it to exit 2. *)
val from_env : unit -> unit

(** Remove the installed plan: all draws stop firing. *)
val clear : unit -> unit

(** Whether a fault plan is in force.  An explicit [?plan] is
    consulted instead of the installed process plan — the same
    convention as every draw function below: the installed plan is
    only the one-shot default. *)
val enabled : ?plan:plan -> unit -> bool

(** Configured rate for a kind (0 when unconfigured or disabled). *)
val rate : ?plan:plan -> kind -> float

(** [fires k ~key] — pure deterministic draw: true with probability
    [rate k], as a hash of (seed, kind, key).  Same key, same answer. *)
val fires : ?plan:plan -> kind -> key:int -> bool

(** A fresh draw key for call sites with no natural stable key (e.g.
    launches): a per-kind atomic sequence number.  Monotonic within a
    process; combined with the seed by {!fires}. *)
val fresh_key : kind -> int

(** [mix a b] — a cheap avalanche mix of two ints, for deriving
    per-task draw keys (e.g. pool call id x task index). *)
val mix : int -> int -> int

(** Deterministic retry backoff: exponential in [attempt] with
    seed-mixed jitter derived from [key] — no wall clock, no global
    PRNG, so a retried schedule is identical on every run.  Seconds;
    bounded (~2 ms at attempt 0, capped well under a second). *)
val jitter : ?plan:plan -> key:int -> attempt:int -> unit -> float

(** Tally of injected faults and recoveries, process-wide and
    domain-safe.  [recovered] counts operations that failed with an
    injected fault and subsequently succeeded (retry) or were repaired
    (quarantine + recompute). *)
type tally = {
  injected : (kind * int) list;  (** per kind, [all_kinds] order *)
  recovered : (kind * int) list;
}

val note_injected : kind -> unit
val note_recovered : kind -> unit
val tally : unit -> tally
val injected_total : unit -> int
val recovered_total : unit -> int
val reset_tally : unit -> unit

(** [diff ~before ~after] — per-kind deltas between two {!tally}
    snapshots, clamped at 0.  A long-lived server brackets each
    request with {!tally} and reports the difference, so per-request
    telemetry never bleeds earlier requests' counts. *)
val diff : before:tally -> after:tally -> tally

(** ["injected N (crash C, corrupt K, hang H), recovered M"]. *)
val pp_tally : tally Fmt.t

(** [with_retries ~key f] runs [f], re-running it after an {!Injected}
    fault (deterministic backoff-free retry; injected faults re-draw
    and are transient, capped at 64 attempts) and up to [budget]
    (default 0) times after any other exception.  Notes a recovery when
    a retried call succeeds.  When attempts are exhausted the last
    exception is re-raised with its original backtrace. *)
val with_retries : ?budget:int -> key:int -> (unit -> 'a) -> 'a

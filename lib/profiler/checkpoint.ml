(* Append-only checkpoint journal; see checkpoint.mli.

   Record grammar (one record per line):

     # <free-form header, ignored>
     T <key> <md5> <escaped-payload>      candidate time
     R <key> <md5> <escaped-payload>      measurement replay

   The payload is the exact Profile_cache text encoding with newlines,
   backslashes and NULs escaped so a record is one line; the digest
   covers kind, key and the escaped payload, so any torn or damaged
   line fails verification and is dropped on load (counted in [torn])
   rather than crashing the resume.  Appends are flushed per record:
   after a kill, at most the line being written is lost, and that line
   is exactly what the digest check drops. *)

type entry = Gpusim.Timing.report * Gpusim.Timing.engine_stats

type t = {
  enabled : bool;
  path : string;
  mutable oc : out_channel option;
  times : (string, float) Hashtbl.t;
  reports : (string, entry) Hashtbl.t;
  mutable loaded : int;
  mutable torn : int;
}

let default_dir = Filename.concat "_hfuse_cache" "journal"

let disabled =
  {
    enabled = false;
    path = "";
    oc = None;
    times = Hashtbl.create 1;
    reports = Hashtbl.create 1;
    loaded = 0;
    torn = 0;
  }

let enabled t = t.enabled
let path t = t.path
let loaded t = t.loaded
let torn t = t.torn

(* The simulation fuel changes every simulated outcome (a run that
   times out under a small budget may succeed under a larger one), so a
   journal written under one HFUSE_SIM_FUEL must never be resumed under
   another — fold the effective fuel into the identity.  The traced-
   block count is folded in for the same reason: every profiled time is
   a function of how many blocks were traced, so resuming a 1-block
   journal under HFUSE_TRACE_BLOCKS=4 must re-profile, not replay. *)
let run_id ?(sim_fuel = Gpusim.Launch.default_loop_fuel)
    ?(trace_blocks = 1) ~(parts : string list) () : string =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          (parts
          @ [
              Printf.sprintf "sim_fuel=%d" sim_fuel;
              Printf.sprintf "trace_blocks=%d" trace_blocks;
            ])))

(* ------------------------------------------------------------------ *)
(* Record encoding                                                      *)
(* ------------------------------------------------------------------ *)

let escape (s : string) : string =
  let buf = Buffer.create (String.length s + 16) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\x00' -> Buffer.add_string buf "\\z"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape (s : string) : string =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '\\' when !i + 1 < n ->
        incr i;
        Buffer.add_char buf
          (match s.[!i] with
          | 'n' -> '\n'
          | 'z' -> '\x00'
          | c (* includes '\\' *) -> c)
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let record_digest ~kind ~key ~escaped =
  Digest.to_hex (Digest.string (kind ^ "\x00" ^ key ^ "\x00" ^ escaped))

let append t ~kind ~key (payload : string) : unit =
  match t.oc with
  | None -> ()
  | Some oc ->
      let escaped = escape payload in
      Printf.fprintf oc "%s %s %s %s\n" kind key
        (record_digest ~kind ~key ~escaped)
        escaped;
      (* a record is durable the moment it is written: a kill can only
         tear the line in flight, which the load-time digest drops *)
      flush oc

(* [T key digest escaped-payload] -> (kind, key, payload) *)
let parse_line (line : string) : (string * string * string) option =
  match String.split_on_char ' ' line with
  | kind :: key :: digest :: rest when kind = "T" || kind = "R" ->
      let escaped = String.concat " " rest in
      if digest = record_digest ~kind ~key ~escaped then
        Some (kind, key, unescape escaped)
      else None
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                            *)
(* ------------------------------------------------------------------ *)

let load (t : t) : unit =
  match open_in t.path with
  | exception Sys_error _ -> ()
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try
            while true do
              let line = input_line ic in
              if line <> "" && line.[0] <> '#' then
                match parse_line line with
                | Some ("T", key, payload) -> (
                    match Profile_cache.decode_time payload with
                    | v ->
                        Hashtbl.replace t.times key v;
                        t.loaded <- t.loaded + 1
                    | exception _ -> t.torn <- t.torn + 1)
                | Some ("R", key, payload) -> (
                    match Profile_cache.decode_report payload with
                    | v ->
                        Hashtbl.replace t.reports key v;
                        t.loaded <- t.loaded + 1
                    | exception _ -> t.torn <- t.torn + 1)
                | Some _ | None -> t.torn <- t.torn + 1
            done
          with End_of_file -> ())

let open_ ?(dir = default_dir) ~(run_id : string) () : t =
  Profile_cache.mkdir_p dir;
  let path = Filename.concat dir (run_id ^ ".jnl") in
  let t =
    {
      enabled = true;
      path;
      oc = None;
      times = Hashtbl.create 64;
      reports = Hashtbl.create 64;
      loaded = 0;
      torn = 0;
    }
  in
  load t;
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  if t.loaded = 0 && t.torn = 0 then
    Printf.fprintf oc "# hfuse-journal %s run %s\n" Profile_cache.version
      run_id;
  t.oc <- Some oc;
  t

(* ------------------------------------------------------------------ *)
(* Records                                                              *)
(* ------------------------------------------------------------------ *)

let find_time t ~key = if t.enabled then Hashtbl.find_opt t.times key else None

let record_time t ~key (v : float) : unit =
  if t.enabled && not (Hashtbl.mem t.times key) then begin
    Hashtbl.replace t.times key v;
    append t ~kind:"T" ~key (Profile_cache.encode_time v)
  end

let find_report t ~key =
  if t.enabled then Hashtbl.find_opt t.reports key else None

let record_report t ~key (v : entry) : unit =
  if t.enabled && not (Hashtbl.mem t.reports key) then begin
    Hashtbl.replace t.reports key v;
    append t ~kind:"R" ~key (Profile_cache.encode_report v)
  end

let flush t =
  match t.oc with Some oc -> Stdlib.flush oc | None -> ()

let close t =
  match t.oc with
  | Some oc ->
      t.oc <- None;
      (try Stdlib.flush oc with Sys_error _ -> ());
      close_out_noerr oc
  | None -> ()

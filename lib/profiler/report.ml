(* Text renderings of the evaluation artifacts, in the shape the paper
   prints them ("X / Y" cells are 1080Ti / V100). *)

open Kernel_corpus

let pair_name ((s1, s2) : Spec.t * Spec.t) =
  Printf.sprintf "*%s*+%s" s1.Spec.name s2.Spec.name

let pp_reg_bound ppf = function
  | None -> Fmt.string ppf "-"
  | Some r -> Fmt.int ppf r

(* ------------------------------------------------------------------ *)
(* Figure 7                                                             *)
(* ------------------------------------------------------------------ *)

let render_sweep (b : Buffer.t) (s : Experiment.sweep) =
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "%s on %s\n" (pair_name s.pair) s.arch.Gpusim.Arch.name;
  add
    "  %8s %8s %10s | %8s %8s %8s | %10s %9s\n"
    "size1" "ratio" "native ms" "HFuse%" "VFuse%" "Naive%" "partition" "regbound";
  List.iter
    (fun (p : Experiment.point) ->
      let sp fused = Experiment.speedup ~native:p.native_ms ~fused in
      add "  %8d %8.2f %10.4f | %+8.1f %8s %8s | %5d/%-5d %9s\n" p.size1
        p.ratio p.native_ms (sp p.hfuse_ms)
        (match p.vfuse_ms with
        | Some v -> Printf.sprintf "%+.1f" (sp v)
        | None -> "n/a")
        (match p.naive_ms with
        | Some v -> Printf.sprintf "%+.1f" (sp v)
        | None -> "-")
        p.hfuse_d1 p.hfuse_d2
        (Fmt.str "%a" pp_reg_bound p.hfuse_reg_bound))
    s.points;
  add "  average speedup: HFuse %+.1f%%   VFuse %s\n\n"
    (Experiment.avg_hfuse_speedup s)
    (let v = Experiment.avg_vfuse_speedup s in
     if Float.is_nan v then "n/a" else Printf.sprintf "%+.1f%%" v)

let figure7_to_string (sweeps : Experiment.sweep list) : string =
  let b = Buffer.create 8192 in
  Buffer.add_string b
    "== Figure 7: kernel execution time speedup vs execution-time ratio ==\n\n";
  List.iter (render_sweep b) sweeps;
  (* summary in the shape of the paper's headline claims *)
  let by_arch name =
    List.filter (fun (s : Experiment.sweep) -> s.arch.Gpusim.Arch.name = name)
      sweeps
  in
  let wins sweeps =
    List.length
      (List.filter
         (fun s ->
           let h = Experiment.avg_hfuse_speedup s in
           let v = Experiment.avg_vfuse_speedup s in
           h > 0.0 && (Float.is_nan v || h > v))
         sweeps)
  in
  List.iter
    (fun arch_name ->
      let ss = by_arch arch_name in
      if ss <> [] then
        Buffer.add_string b
          (Printf.sprintf
             "%s: HFuse beats both native and VFuse (on average) for %d of \
              %d pairs\n"
             arch_name (wins ss) (List.length ss)))
    [ "1080Ti"; "V100" ];
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Figure 8                                                             *)
(* ------------------------------------------------------------------ *)

let cell2 f rows =
  (* "X / Y" pairs across the two architectures *)
  match rows with
  | [ (_, a); (_, b) ] -> Printf.sprintf "%.2f / %.2f" (f a) (f b)
  | [ (_, a) ] -> Printf.sprintf "%.2f" (f a)
  | _ -> "-"

let figure8_to_string (rows : Experiment.kernel_row list) : string =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "== Figure 8: metrics of individual kernels (1080Ti / V100) ==\n\n";
  add "%-12s %22s %22s %22s %22s\n" "Kernel" "Exec time (ms)"
    "IssueSlotUtil (%)" "MemInst Stall (%)" "Occupancy (%)";
  List.iter
    (fun (r : Experiment.kernel_row) ->
      add "%-12s %22s %22s %22s %22s\n" r.kernel.Spec.name
        (cell2 (fun m -> m.Gpusim.Metrics.time_ms) r.per_arch)
        (cell2 (fun m -> m.Gpusim.Metrics.issue_slot_util) r.per_arch)
        (cell2 (fun m -> m.Gpusim.Metrics.mem_stall) r.per_arch)
        (cell2 (fun m -> m.Gpusim.Metrics.occupancy) r.per_arch))
    rows;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Figure 9                                                             *)
(* ------------------------------------------------------------------ *)

let figure9_to_string (rows : Experiment.fused_row list) : string =
  let b = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add
    "== Figure 9: metrics of HFuse fused kernels (per architecture) ==\n\n";
  add "%-24s %-7s %-9s %9s %10s %10s %8s %6s %10s\n" "Pair" "Arch" "Type"
    "Speedup%" "FusedUtil%" "NativeUtil%" "MemStall%" "Occ%" "partition";
  List.iter
    (fun (r : Experiment.fused_row) ->
      let variant name (v : Experiment.fused_variant) =
        add "%-24s %-7s %-9s %9.1f %10.2f %10.2f %8.1f %6.1f %6d/%-4d%s\n"
          (Printf.sprintf "%s+%s" (fst r.f_pair).Spec.name
             (snd r.f_pair).Spec.name)
          r.f_arch.Gpusim.Arch.name name v.speedup_pct
          v.metrics.Gpusim.Metrics.issue_slot_util r.native_util
          v.metrics.Gpusim.Metrics.mem_stall v.metrics.Gpusim.Metrics.occupancy
          v.d1 v.d2
          (match v.reg_bound with
          | None -> ""
          | Some rb -> Printf.sprintf " r0=%d" rb)
      in
      variant "N-RegCap" r.no_regcap;
      Option.iter (variant "RegCap") r.regcap)
    rows;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSON (hand-rolled; the perf-trajectory files future PRs diff)        *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let opt f = function None -> Null | Some x -> f x

  (* Shortest decimal string that round-trips the float exactly, so the
     files stay stable (and diffable) across emitter runs. *)
  let float_str f =
    if not (Float.is_finite f) then "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else
      let s15 = Printf.sprintf "%.15g" f in
      if float_of_string s15 = f then s15
      else
        let s16 = Printf.sprintf "%.16g" f in
        if float_of_string s16 = f then s16 else Printf.sprintf "%.17g" f

  let escape b s =
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'

  let rec emit b indent t =
    let pad n = Buffer.add_string b (String.make n ' ') in
    match t with
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_str f)
    | Str s -> escape b s
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
        Buffer.add_string b "[\n";
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string b ",\n";
            pad (indent + 2);
            emit b (indent + 2) x)
          xs;
        Buffer.add_char b '\n';
        pad indent;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
        Buffer.add_string b "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string b ",\n";
            pad (indent + 2);
            escape b k;
            Buffer.add_string b ": ";
            emit b (indent + 2) v)
          kvs;
        Buffer.add_char b '\n';
        pad indent;
        Buffer.add_char b '}'

  let to_string t =
    let b = Buffer.create 4096 in
    emit b 0 t;
    Buffer.add_char b '\n';
    Buffer.contents b

  (* compact single-line emission: the daemon's newline-delimited wire
     framing needs values with no embedded raw newlines ([escape]
     already encodes them inside strings).  [of_string] reads both
     forms identically. *)
  let rec emit_compact b t =
    match t with
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_str f)
    | Str s -> escape b s
    | List xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            emit_compact b x)
          xs;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            escape b k;
            Buffer.add_char b ':';
            emit_compact b v)
          kvs;
        Buffer.add_char b '}'

  let to_line t =
    let b = Buffer.create 1024 in
    emit_compact b t;
    Buffer.contents b

  (* -- parsing (the bench regression gate reads committed baselines) -- *)

  exception Parse_error of string

  type parser_state = { src : string; mutable pos : int }

  let peek_char st =
    if st.pos < String.length st.src then Some st.src.[st.pos] else None

  let skip_ws st =
    while
      st.pos < String.length st.src
      && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      st.pos <- st.pos + 1
    done

  let expect st c =
    if peek_char st = Some c then st.pos <- st.pos + 1
    else
      raise
        (Parse_error
           (Printf.sprintf "expected '%c' at offset %d" c st.pos))

  let literal st word value =
    let n = String.length word in
    if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word
    then (
      st.pos <- st.pos + n;
      value)
    else raise (Parse_error (Printf.sprintf "bad literal at offset %d" st.pos))

  let parse_string_lit st =
    expect st '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek_char st with
      | None -> raise (Parse_error "unterminated string")
      | Some '"' -> st.pos <- st.pos + 1
      | Some '\\' -> (
          st.pos <- st.pos + 1;
          match peek_char st with
          | Some 'n' -> Buffer.add_char b '\n'; st.pos <- st.pos + 1; go ()
          | Some 't' -> Buffer.add_char b '\t'; st.pos <- st.pos + 1; go ()
          | Some 'r' -> Buffer.add_char b '\r'; st.pos <- st.pos + 1; go ()
          | Some 'u' ->
              if st.pos + 5 > String.length st.src then
                raise (Parse_error "truncated \\u escape");
              let code = int_of_string ("0x" ^ String.sub st.src (st.pos + 1) 4) in
              (* the emitter only writes \u for control bytes *)
              Buffer.add_char b (Char.chr (code land 0xff));
              st.pos <- st.pos + 5;
              go ()
          | Some c -> Buffer.add_char b c; st.pos <- st.pos + 1; go ()
          | None -> raise (Parse_error "unterminated escape"))
      | Some c ->
          Buffer.add_char b c;
          st.pos <- st.pos + 1;
          go ()
    in
    go ();
    Buffer.contents b

  let parse_number st =
    let start = st.pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while
      st.pos < String.length st.src && is_num_char st.src.[st.pos]
    do
      st.pos <- st.pos + 1
    done;
    let s = String.sub st.src start (st.pos - start) in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'E'
    then Float (float_of_string s)
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> Float (float_of_string s)

  let rec parse_value st =
    skip_ws st;
    match peek_char st with
    | None -> raise (Parse_error "unexpected end of input")
    | Some '{' ->
        st.pos <- st.pos + 1;
        skip_ws st;
        if peek_char st = Some '}' then (
          st.pos <- st.pos + 1;
          Obj [])
        else
          let rec members acc =
            skip_ws st;
            let k = parse_string_lit st in
            skip_ws st;
            expect st ':';
            let v = parse_value st in
            skip_ws st;
            match peek_char st with
            | Some ',' ->
                st.pos <- st.pos + 1;
                members ((k, v) :: acc)
            | Some '}' ->
                st.pos <- st.pos + 1;
                Obj (List.rev ((k, v) :: acc))
            | _ -> raise (Parse_error "expected ',' or '}'")
          in
          members []
    | Some '[' ->
        st.pos <- st.pos + 1;
        skip_ws st;
        if peek_char st = Some ']' then (
          st.pos <- st.pos + 1;
          List [])
        else
          let rec elements acc =
            let v = parse_value st in
            skip_ws st;
            match peek_char st with
            | Some ',' ->
                st.pos <- st.pos + 1;
                elements (v :: acc)
            | Some ']' ->
                st.pos <- st.pos + 1;
                List (List.rev (v :: acc))
            | _ -> raise (Parse_error "expected ',' or ']'")
          in
          elements []
    | Some '"' -> Str (parse_string_lit st)
    | Some 't' -> literal st "true" (Bool true)
    | Some 'f' -> literal st "false" (Bool false)
    | Some 'n' -> literal st "null" Null
    | Some _ -> parse_number st

  let of_string (s : string) : (t, string) result =
    let st = { src = s; pos = 0 } in
    match parse_value st with
    | v ->
        skip_ws st;
        if st.pos = String.length s then Ok v
        else Error (Printf.sprintf "trailing input at offset %d" st.pos)
    | exception Parse_error msg -> Error msg
    | exception Failure msg -> Error msg

  (* -- structural helpers for gate-style consumers -- *)

  let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

  let to_float_opt = function
    | Float f -> Some f
    | Int i -> Some (float_of_int i)
    (* non-finite floats serialize as [null] (JSON has no inf/nan);
       failed candidates carry infinite time, so [null] reads back as
       the infinity it stood for rather than vanishing — a gate
       comparing two reports must see the failure, not a missing key *)
    | Null -> Some Float.infinity
    | _ -> None
end

let json_of_metrics (m : Gpusim.Metrics.t) : Json.t =
  Json.Obj
    [
      ("time_ms", Json.Float m.Gpusim.Metrics.time_ms);
      ("elapsed_cycles", Json.Int m.Gpusim.Metrics.elapsed_cycles);
      ("issue_slot_util", Json.Float m.Gpusim.Metrics.issue_slot_util);
      ("mem_stall", Json.Float m.Gpusim.Metrics.mem_stall);
      ("occupancy", Json.Float m.Gpusim.Metrics.occupancy);
    ]

let json_of_engine_stats (s : Gpusim.Timing.engine_stats) : Json.t =
  Json.Obj
    [
      ("cycles_stepped", Json.Int s.Gpusim.Timing.cycles_stepped);
      ("cycles_skipped", Json.Int s.Gpusim.Timing.cycles_skipped);
      ("sm_steps", Json.Int s.Gpusim.Timing.sm_steps);
      ("sm_steps_skipped", Json.Int s.Gpusim.Timing.sm_steps_skipped);
      ("scan_skip_hits", Json.Int s.Gpusim.Timing.scan_skip_hits);
      ("warp_allocs", Json.Int s.Gpusim.Timing.warp_allocs);
      ("warp_reuses", Json.Int s.Gpusim.Timing.warp_reuses);
    ]

let json_of_search_stats (s : Runner.search_stats) : Json.t =
  Json.Obj
    ([
      ("profiled", Json.Int s.Runner.profiled);
      ("cache_hits", Json.Int s.Runner.cache_hits);
      ("profile_wall_s", Json.Float s.Runner.profile_wall_s);
      ("failed", Json.Int s.Runner.failed);
      ("ranked", Json.Int s.Runner.ranked);
      ("pruned", Json.Int s.Runner.pruned);
      ("rank_agree", Json.Int s.Runner.rank_agree);
      ("rank_total", Json.Int s.Runner.rank_total);
      ("max_regret_pct", Json.Float s.Runner.max_regret_pct);
      ("traced", Json.Int s.Runner.traced);
      ("trace_hits", Json.Int s.Runner.trace_hits);
      ("trace_merged", Json.Int s.Runner.trace_merged);
      ("trace_wall_s", Json.Float s.Runner.trace_wall_s);
      ("repair_attempted", Json.Int s.Runner.repair_attempted);
      ("repaired", Json.Int s.Runner.repaired);
      ("repair_unsound", Json.Int s.Runner.repair_unsound);
    ]
    (* rejection histogram entries are flat [rej_<kind-tag>] integers so
       the fleet's telemetry aggregation (which sums integer leaves per
       section.field) adds them across shards without special cases *)
    @ List.map
        (fun (tag, n) -> ("rej_" ^ tag, Json.Int n))
        s.Runner.rejections)

let json_of_trace_tally (t : Trace_store.tally) : Json.t =
  Json.Obj
    [
      ("mem_hits", Json.Int t.Trace_store.mem_hits);
      ("disk_hits", Json.Int t.Trace_store.disk_hits);
      ("recorded", Json.Int t.Trace_store.recorded);
      ("stores", Json.Int t.Trace_store.stores);
      ("quarantined", Json.Int t.Trace_store.corrupt);
      ("evictions", Json.Int t.Trace_store.evictions);
      ("merges", Json.Int t.Trace_store.merges);
      ("mem_entries", Json.Int (Trace_store.mem_entries ()));
      ("mem_bytes", Json.Int (Trace_store.mem_bytes ()));
    ]

let json_of_cache (c : Profile_cache.t) : Json.t =
  Json.Obj
    [
      ("enabled", Json.Bool (Profile_cache.enabled c));
      ("hits", Json.Int (Profile_cache.hits c));
      ("misses", Json.Int (Profile_cache.misses c));
      ("stores", Json.Int (Profile_cache.stores c));
      ("quarantined", Json.Int (Profile_cache.corrupt c));
    ]

let figure7_json (sweeps : Experiment.sweep list) : Json.t =
  let point (p : Experiment.point) =
    Json.Obj
      [
        ("size1", Json.Int p.size1);
        ("size2", Json.Int p.size2);
        ("ratio", Json.Float p.ratio);
        ("native_ms", Json.Float p.native_ms);
        ("hfuse_ms", Json.Float p.hfuse_ms);
        ("hfuse_d1", Json.Int p.hfuse_d1);
        ("hfuse_d2", Json.Int p.hfuse_d2);
        ("hfuse_reg_bound", Json.opt (fun r -> Json.Int r) p.hfuse_reg_bound);
        ("vfuse_ms", Json.opt (fun v -> Json.Float v) p.vfuse_ms);
        ("naive_ms", Json.opt (fun v -> Json.Float v) p.naive_ms);
      ]
  in
  Json.List
    (List.map
       (fun (s : Experiment.sweep) ->
         Json.Obj
           [
             ("pair", Json.Str (pair_name s.pair));
             ("arch", Json.Str s.arch.Gpusim.Arch.name);
             ("varied_first", Json.Bool s.varied_first);
             ("avg_hfuse_speedup", Json.Float (Experiment.avg_hfuse_speedup s));
             ("avg_vfuse_speedup", Json.Float (Experiment.avg_vfuse_speedup s));
             ("points", Json.List (List.map point s.points));
           ])
       sweeps)

let figure8_json (rows : Experiment.kernel_row list) : Json.t =
  Json.List
    (List.map
       (fun (r : Experiment.kernel_row) ->
         Json.Obj
           [
             ("kernel", Json.Str r.kernel.Spec.name);
             ( "per_arch",
               Json.List
                 (List.map
                    (fun (arch, m) ->
                      Json.Obj
                        [
                          ("arch", Json.Str arch.Gpusim.Arch.name);
                          ("metrics", json_of_metrics m);
                        ])
                    r.per_arch) );
           ])
       rows)

let figure9_json (rows : Experiment.fused_row list) : Json.t =
  let variant (v : Experiment.fused_variant) =
    Json.Obj
      [
        ("speedup_pct", Json.Float v.speedup_pct);
        ("metrics", json_of_metrics v.metrics);
        ("d1", Json.Int v.d1);
        ("d2", Json.Int v.d2);
        ("reg_bound", Json.opt (fun r -> Json.Int r) v.reg_bound);
      ]
  in
  Json.List
    (List.map
       (fun (r : Experiment.fused_row) ->
         Json.Obj
           [
             ( "pair",
               Json.Str
                 (Printf.sprintf "%s+%s" (fst r.f_pair).Spec.name
                    (snd r.f_pair).Spec.name) );
             ("arch", Json.Str r.f_arch.Gpusim.Arch.name);
             ("native_util", Json.Float r.native_util);
             ("no_regcap", variant r.no_regcap);
             ("regcap", Json.opt variant r.regcap);
           ])
       rows)

(** Persistent, bounded, shared store of recorded block traces.

    Traces are a pure function of their key (the interpreter's
    payloads are coalescing analysis results, not addresses, and the
    recording environment is a fresh memory with only the keyed
    workload instantiated — see Runner), so a warmed store reproduces
    cold-run results bit-for-bit.

    Two tiers: a process-wide in-memory LRU shared by every handle
    (bounded via [limit_bytes], see {!Settings.trace_mem_mb}), and a
    per-handle on-disk tier mirroring Profile_cache v2 — checksummed
    entries under [<root>/traces/v1/<digest>], unique-tmp + rename
    commits, corrupt entries quarantined and re-recorded.  A
    single-flight table dedups concurrent recordings of one key. *)

(** Entry-format/version tag baked into paths and keys. *)
val version : string

(** The two-tier digest pair for one trace identity. *)
type key = private { mem : string; disk : string }

(** Derive both digests.  [ident] is the rendered trace identity
    (kernel names, sizes, partition, geometry, plus a source digest);
    [sim_fuel] and [trace_blocks] always participate (a trace recorded
    under generous fuel must not mask a timeout under a tight one).
    [arch] participates only in the disk digest: traces are
    arch-independent, so the in-memory tier shares them across a
    two-arch sweep, while long-lived shared directories pay for the
    defensive split. *)
val keys :
  arch:string -> sim_fuel:int -> trace_blocks:int -> ident:string list -> key

type t

(** An enabled store rooted at [dir] (default
    [Profile_cache.default_dir]); entries live under [dir/traces/v1].
    [fault] scopes this handle's chaos-corruption draws to an explicit
    plan; omitted, the installed process plan applies. *)
val create : ?dir:string -> ?fault:Hfuse_fault.Fault.plan -> unit -> t

(** A store whose disk tier never hits and never writes (the shared
    memory tier still works). *)
val disabled : unit -> t

(** Handle from a resolved root: [Some dir] enables, [None] disables. *)
val of_dir : ?fault:Hfuse_fault.Fault.plan -> string option -> t

val enabled : t -> bool

(** Versioned entry directory (empty for a disabled store). *)
val dir : t -> string

(** Memory-then-disk lookup.  A disk hit is decoded, verified, and
    promoted into the memory tier; a checksum- or decode-failing entry
    is quarantined to [<root>/traces/quarantine/<digest>] and treated
    as a miss. *)
val find : t -> key:key -> Gpusim.Trace.block array option

(** Insert a fresh recording: memory tier (evicting past [limit_bytes]
    if given), then disk.  Counts one [recorded]. *)
val add :
  t -> ?limit_bytes:int -> key:key -> Gpusim.Trace.block array -> unit

(** [find] then [record]-and-[add] under single-flight arbitration:
    when several callers want one absent key, the first records while
    the rest block and share the result (each counted in [merges]).
    If the recorder raises, the claim is released and a waiter retries.
    Disk I/O and recording happen outside the store lock. *)
val get_or_record :
  t ->
  ?limit_bytes:int ->
  key:key ->
  (unit -> Gpusim.Trace.block array) ->
  Gpusim.Trace.block array

(** Drop every memory-tier entry (disk entries survive) — the trace
    half of [Runner.clear_cache]. *)
val clear_memory : unit -> unit

(** Test hook: force the memory bound to [Some bytes] regardless of
    the per-call [limit_bytes] ([None] restores normal behaviour). *)
val set_mem_limit_override : int option -> unit

(** Memory-tier occupancy, for daemon telemetry and tests. *)
val mem_entries : unit -> int

val mem_bytes : unit -> int

(** Process-wide cumulative counters (all handles share them, like the
    pool and fault tallies); [recorded] doubles as the miss count. *)
type tally = {
  mem_hits : int;
  disk_hits : int;
  recorded : int;
  stores : int;
  corrupt : int;
  evictions : int;
  merges : int;
}

val tally : unit -> tally
val reset_tally : unit -> unit

(** Per-request delta between two snapshots. *)
val diff : before:tally -> after:tally -> tally

(** Credit [n] recordings saved by batch-level key dedup (the search's
    deterministic counterpart of the single-flight table). *)
val note_merged : int -> unit

val pp_tally : tally Fmt.t

(* One explicit record for the knobs that used to be read from the
   environment at their use sites ([HFUSE_TRACE_BLOCKS],
   [HFUSE_SIM_FUEL], [HFUSE_CACHE]/[HFUSE_CACHE_DIR]) plus the chaos
   plan.  A one-shot CLI resolves it once at startup; a long-lived
   server resolves one per request — possibly overridden by the
   request itself — and threads it explicitly, so two concurrent
   requests with different knobs cannot observe each other. *)

module Fault = Hfuse_fault.Fault

type t = {
  trace_blocks : int;
  sim_fuel : int;
  trace_mem_mb : int;
  cache_dir : string option;
  fault : Fault.plan option;
}

let env_positive name ~default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ -> default)
  | None -> default

(* like [env_positive] but 0 is meaningful ("unbounded") *)
let env_nonneg name ~default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 0 -> n
      | _ -> default)
  | None -> default

(* Process-default traced-block count.  The environment seeds it at
   startup; [set_trace_blocks] (the CLIs' [--trace-blocks]) retunes it.
   Per-request work should capture it through {!resolve} instead of
   reading the mutable default at use sites. *)
let trace_blocks_ref = ref (env_positive "HFUSE_TRACE_BLOCKS" ~default:1)
let trace_blocks () = !trace_blocks_ref

let set_trace_blocks n =
  if n <= 0 then invalid_arg "Settings.set_trace_blocks: need n > 0";
  trace_blocks_ref := n

(* The environment is consulted here, once per resolution, not at the
   eventual use sites deep in the profiler. *)
let current () =
  {
    trace_blocks = trace_blocks ();
    sim_fuel =
      env_positive "HFUSE_SIM_FUEL" ~default:Gpusim.Launch.default_loop_fuel;
    trace_mem_mb = env_nonneg "HFUSE_TRACE_MEM_MB" ~default:0;
    cache_dir = Profile_cache.env_dir ();
    fault = Fault.installed ();
  }

let resolve ?trace_blocks:tb ?sim_fuel ?trace_mem_mb ?cache_dir ?fault () =
  let d = current () in
  (match tb with
  | Some n when n <= 0 -> invalid_arg "Settings.resolve: need trace_blocks > 0"
  | _ -> ());
  (match sim_fuel with
  | Some n when n <= 0 -> invalid_arg "Settings.resolve: need sim_fuel > 0"
  | _ -> ());
  (match trace_mem_mb with
  | Some n when n < 0 -> invalid_arg "Settings.resolve: need trace_mem_mb >= 0"
  | _ -> ());
  {
    trace_blocks = Option.value tb ~default:d.trace_blocks;
    sim_fuel = Option.value sim_fuel ~default:d.sim_fuel;
    trace_mem_mb = Option.value trace_mem_mb ~default:d.trace_mem_mb;
    cache_dir = (match cache_dir with Some v -> v | None -> d.cache_dir);
    fault = (match fault with Some v -> v | None -> d.fault);
  }

let cache (s : t) : Profile_cache.t =
  Profile_cache.of_dir ?fault:s.fault s.cache_dir

let trace_store (s : t) : Trace_store.t =
  Trace_store.of_dir ?fault:s.fault s.cache_dir

let trace_limit_bytes (s : t) : int option =
  if s.trace_mem_mb > 0 then Some (s.trace_mem_mb * 1024 * 1024) else None

let pp ppf (s : t) =
  Fmt.pf ppf "trace_blocks=%d sim_fuel=%d trace_mem=%s cache=%s fault=%s"
    s.trace_blocks s.sim_fuel
    (if s.trace_mem_mb > 0 then Printf.sprintf "%dMB" s.trace_mem_mb
     else "unbounded")
    (match s.cache_dir with Some d -> d | None -> "off")
    (if s.fault = None then "off" else "on")

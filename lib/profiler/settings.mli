(** Per-request profiling configuration, resolved once and threaded
    explicitly.

    Historically the profiler read [HFUSE_TRACE_BLOCKS],
    [HFUSE_SIM_FUEL] and [HFUSE_CACHE]/[HFUSE_CACHE_DIR] at their use
    sites, which is fine for a one-shot CLI but racy in a daemon where
    concurrent requests want different knobs.  A {!t} captures every
    knob at one point in time; the environment (and the installed
    process chaos plan) is only the {e default source}, consulted by
    {!current}/{!resolve}, never by the code that uses the values. *)

type t = {
  trace_blocks : int;  (** traced blocks per profiling launch *)
  sim_fuel : int;  (** per-warp interpreter loop-fuel watchdog budget *)
  trace_mem_mb : int;
      (** byte bound (in MB) on the process-wide in-memory trace
          store; [0] means unbounded ([HFUSE_TRACE_MEM_MB]) *)
  cache_dir : string option;
      (** persistent profile-cache root; [None] disables the cache *)
  fault : Hfuse_fault.Fault.plan option;
      (** chaos plan scoping this work's injection draws; [None] means
          no injection (the installed process plan is captured into
          this field at resolution, not consulted later) *)
}

(** Process-default traced-block count: seeded from
    [HFUSE_TRACE_BLOCKS] at startup, retuned by {!set_trace_blocks}. *)
val trace_blocks : unit -> int

(** Set the process-default traced-block count ([--trace-blocks]).
    @raise Invalid_argument when [n <= 0]. *)
val set_trace_blocks : int -> unit

(** The process defaults, resolved now: the current traced-block
    default, [HFUSE_SIM_FUEL] (or the simulator's 3M default),
    [HFUSE_CACHE]/[HFUSE_CACHE_DIR], and the installed chaos plan. *)
val current : unit -> t

(** {!current} with per-field overrides (a server request's knobs).
    @raise Invalid_argument on non-positive [trace_blocks]/[sim_fuel]. *)
val resolve :
  ?trace_blocks:int ->
  ?sim_fuel:int ->
  ?trace_mem_mb:int ->
  ?cache_dir:string option ->
  ?fault:Hfuse_fault.Fault.plan option ->
  unit ->
  t

(** A fresh profile-cache handle for these settings: enabled at
    [cache_dir] when set (chaos draws scoped to [fault]), disabled
    otherwise.  Handles are cheap; concurrent requests sharing one
    directory are safe (entries commit by atomic rename). *)
val cache : t -> Profile_cache.t

(** A fresh trace-store handle for these settings: its disk tier lives
    under [cache_dir/traces/] when [cache_dir] is set, disabled
    otherwise (the shared in-memory tier always works). *)
val trace_store : t -> Trace_store.t

(** The memory-tier bound in bytes, or [None] for unbounded
    ([trace_mem_mb = 0]). *)
val trace_limit_bytes : t -> int option

(** ["trace_blocks=N sim_fuel=M trace_mem=KMB|unbounded cache=DIR|off
    fault=on|off"]. *)
val pp : t Fmt.t

(** Drives the evaluation's four execution modes — native (parallel
    streams), vertically fused, horizontally fused (searched), and the
    Naive even partition — through the simulator, with a two-tier
    trace store ({!Trace_store}) so ratio sweeps do not re-interpret
    unchanged kernels and warm reruns re-interpret nothing at all.

    Profiling launches execute only the traced blocks; the correctness
    entry points ([validate_*]) run whole grids in fresh memory.

    Every trace is recorded in a canonical environment — a fresh
    [Gpusim.Memory.t] holding only the keyed workload — which makes
    recordings pure functions of their key: they parallelize (each
    recording task owns its memory), persist on disk, and stay
    byte-identical to in-search recordings (trace payloads are
    coalescing analysis results, invariant under buffer renaming).

    {!search} is a two-phase engine: candidates are enumerated and
    verified serially, missing traces are recorded concurrently
    (deduped per distinct trace key), and the pure [Timing.run]
    replays fan out over an OCaml 5 domain pool ([~jobs]) with a
    persistent on-disk profiling cache ({!Profile_cache}, [~cache]).
    Results are bit-identical to the serial path for any worker count
    and any cache/store temperature. *)

(** Blocks whose traces are recorded per profiling launch.  Defaults to
    1 (the paper's one-representative-block methodology) or the
    [HFUSE_TRACE_BLOCKS] environment variable. *)
val trace_blocks : unit -> int

(** Set the traced-block count for subsequent profiling launches
    ([--trace-blocks] on the CLIs).  The in-process trace cache and the
    persistent {!Profile_cache} both key on it, so entries recorded at
    other widths are never returned.
    @raise Invalid_argument when [n <= 0]. *)
val set_trace_blocks : int -> unit

(** A corpus kernel bound to a workload instance in some memory. *)
type configured = {
  spec : Kernel_corpus.Spec.t;
  size : int;
  info : Hfuse_core.Kernel_info.t;  (** at native block dimensions *)
  inst : Kernel_corpus.Workload.instance;
  mem : Gpusim.Memory.t;
}

val configure :
  Gpusim.Memory.t -> Kernel_corpus.Spec.t -> size:int -> configured

(** Trace key: kernel identity, workload size(s) and block
    dimension(s).  Structured — both sizes and both block dimensions of
    a fused pair appear explicitly, so distinct size pairs can never
    collide onto one entry (the old packed encoding could, returning a
    stale trace).  {!Trace_store} digests additionally fold in the
    simulation fuel, the kernel source, and (on disk) the arch. *)
type trace_key =
  | K_solo of { kernel : string; size : int; block_dim : int; tb : int }
  | K_hfuse of {
      k1 : string;
      size1 : int;
      k2 : string;
      size2 : int;
      d1 : int;
      d2 : int;
      tb : int;
    }
  | K_vfuse of {
      k1 : string;
      size1 : int;
      k2 : string;
      size2 : int;
      block : int;
      tb : int;
    }

(** Drop the in-process memo tiers (trace-store memory, solo/report/
    time memos); persistent entries survive. *)
val clear_cache : unit -> unit

(** Dynamic traces of [c] at a block dimension (default: native);
    stored.  [arch] scopes only the persistent trace entry — traces
    themselves are arch-independent, so the in-memory tier shares
    them across archs. *)
val traces_of :
  ?settings:Settings.t -> ?arch:string -> configured -> ?block_dim:int ->
  unit -> Gpusim.Trace.block array

val static_smem : Hfuse_core.Kernel_info.t -> int

(** Timing spec for one kernel (building block for custom runs). *)
val spec_of :
  ?settings:Settings.t -> ?arch:string -> configured -> ?block_dim:int ->
  stream:int -> unit -> Gpusim.Timing.launch_spec

(** Native baseline: both kernels via parallel streams (FIFO dispatch). *)
val native :
  ?settings:Settings.t -> Gpusim.Arch.t -> configured -> configured ->
  Gpusim.Timing.report

(** One kernel alone (Fig. 8 metrics, ratio probes). *)
val solo :
  ?settings:Settings.t -> Gpusim.Arch.t -> configured -> Gpusim.Timing.report

(** Traces of a horizontally fused kernel (recorded in a fresh memory
    on first use; stored).  Single-flighted: concurrent callers of one
    key share the first recording. *)
val hfuse_traces :
  ?settings:Settings.t -> ?arch:string -> configured -> configured ->
  Hfuse_core.Hfuse.t -> Gpusim.Trace.block array

(** Launch spec for a fused candidate over already-recorded traces.
    Pure — safe to build and [Timing.run] on any domain. *)
val hfuse_spec :
  Hfuse_core.Hfuse.t -> reg_bound:int option ->
  traces:Gpusim.Trace.block array -> Gpusim.Timing.launch_spec

(** Time a fused kernel under an optional register bound (interprets it
    in profiling mode on first use; cached thereafter). *)
val hfuse_report :
  ?settings:Settings.t -> Gpusim.Arch.t -> configured -> configured ->
  Hfuse_core.Hfuse.t -> reg_bound:int option -> Gpusim.Timing.report

val vfuse_block_dim : configured -> configured -> int

(** Vertical baseline at the larger native block dimension (tunable
    kernels adapt; a smaller fixed kernel is guarded).
    @raise Hfuse_core.Fuse_common.Fusion_error when illegal. *)
val vfuse_generate : configured -> configured -> Hfuse_core.Vfuse.t

(** Launch spec for the vertical baseline over stored traces (records
    them in a fresh memory on first use; the spec is pure). *)
val vfuse_spec :
  ?settings:Settings.t -> ?arch:string -> configured -> configured ->
  Hfuse_core.Vfuse.t -> Gpusim.Timing.launch_spec

val vfuse_report :
  ?settings:Settings.t -> Gpusim.Arch.t -> configured -> configured ->
  Hfuse_core.Vfuse.t -> Gpusim.Timing.report

(** Fused block dimension target: 1024 for tunable pairs; the native sum
    when both kernels are fixed. *)
val d0_for : configured -> configured -> int

(** Cumulative observability counters for the profiling search. *)
type search_stats = {
  mutable profiled : int;  (** candidates timed on the simulator *)
  mutable cache_hits : int;
      (** candidates answered by the disk cache or a resume journal *)
  mutable profile_wall_s : float;  (** wall time inside batch profiling *)
  mutable failed : int;
      (** candidates whose profile failed and were excluded from the
          search (their time is infinite, so they can never win) *)
  mutable ranked : int;
      (** candidates scored by the analytical cost model (phase 1.5) *)
  mutable pruned : int;
      (** verified candidates top-K pruning skipped (never profiled) *)
  mutable rank_agree : int;
      (** searches where the model's pick matched the simulated best
          time exactly *)
  mutable rank_total : int;
      (** searches that produced a model-vs-simulator verdict *)
  mutable max_regret_pct : float;
      (** worst gap between the model's pick and the fastest simulated
          candidate, in percent of the latter (0 when they agree) *)
  mutable traced : int;
      (** distinct trace keys freshly recorded (interpreter runs) *)
  mutable trace_hits : int;
      (** distinct trace keys answered by the store, memory or disk *)
  mutable trace_merged : int;
      (** candidate trace needs deduped onto an already-requested key
          (register-bound variants of one partition share a trace) *)
  mutable trace_wall_s : float;
      (** wall time inside trace acquisition (lookup + record + store) *)
  mutable repair_attempted : int;
      (** rejected partitions handed to the repair engine *)
  mutable repaired : int;
      (** partitions repaired, oracle-gated and admitted to profiling *)
  mutable repair_unsound : int;
      (** statically clean repairs the differential oracle refuted
          (failed closed back to rejection) *)
  mutable rejections : (string * int) list;
      (** per-{!Hfuse_analysis.Diag.kind_tag} histogram of the error
          diagnostics on finally-rejected partitions, sorted by tag *)
}

(** A zeroed record — one per server request, passed to {!search}'s
    [?stats] so per-request telemetry never mixes across requests. *)
val fresh_search_stats : unit -> search_stats

(** Snapshot of the process-wide counters. *)
val search_stats : unit -> search_stats

val reset_search_stats : unit -> unit
val pp_search_stats : search_stats Fmt.t

(** Model-vs-simulator verdict over one search's profiled candidates:
    [Some (i, regret_pct)] where [i] is the index of the fastest
    simulated candidate inside the model's top-[k] window (default 1)
    and [regret_pct] that candidate's simulated-time gap to the overall
    fastest, in percent — i.e. what a [--top-k k] pruned search would
    have lost against the exhaustive sweep.  [0.] means the window
    contains the true optimum.  [None] when no candidate has both a
    finite score and a finite time — no model ran, or every profile
    failed (failed candidates carry infinite time and are never
    picked). *)
val model_eval :
  ?k:int -> scores:float list -> times:float list -> unit -> (int * float) option

(** Fan pure [Timing.run] replays over worker domains: one
    (arch, launch-spec list) per report, results in input order
    (bit-identical to a serial loop for any width).  Pass [?pool] to
    reuse a live pool across many calls (figure sweeps); otherwise a
    fresh pool of [jobs] workers is scoped to the call.  Spec lists
    must already hold their traces — building them traces kernels,
    which stays on the calling domain.

    An enabled [cache] serves entries from the persistent report cache
    ({!Profile_cache.find_report}; keyed over the specs and their packed
    traces) and only fans the misses out, storing their reports after.
    Hits are bit-identical to replays, and each hit's recorded engine
    stats are folded into {!Gpusim.Timing.cumulative_stats}.

    An enabled [checkpoint] journal is consulted before the cache and
    records every result, so a killed run resumed with the same journal
    replays this call's answers bit-identically. *)
val run_many :
  ?pool:Hfuse_parallel.Pool.t -> ?jobs:int -> ?cache:Profile_cache.t ->
  ?checkpoint:Checkpoint.t ->
  (Gpusim.Arch.t * Gpusim.Timing.launch_spec list) array ->
  Gpusim.Timing.report array

(** The Fig. 6 search with the simulator as the profiling oracle.

    @param jobs  domain-pool width for the phase-2 timing fan-out
                 (default 1: everything on the calling domain).
    @param pool  reuse a live pool instead of spawning [jobs] workers
                 per profiling batch (takes precedence over [jobs]).
    @param settings per-request configuration ({!Settings.t}: traced
                 blocks, simulator fuel, cache root, chaos plan).
                 Default: {!Settings.current} — the process defaults,
                 resolved at call time.
    @param stats per-request telemetry sink; counters accumulate into
                 the caller's record instead of the process-wide one
                 ({!fresh_search_stats} mints an empty record).
    @param cache persistent profiling cache (default: minted from
                 [settings] — disabled unless its [cache_dir] is set,
                 which the [HFUSE_CACHE]/[HFUSE_CACHE_DIR] environment
                 seeds).
    @param checkpoint resume journal: candidate times already recorded
                 by an interrupted run are replayed, and every fresh
                 time is journaled (default {!Checkpoint.disabled}).
    @param top_k profile only the [top_k] candidates the analytical
                 cost model ({!Hfuse_costmodel}) ranks best; the rest
                 are recorded un-profiled in [result.pruned].  Without
                 it the search stays exhaustive — the model still
                 scores every candidate (reported in [result.scores]
                 and the rank-agreement/regret stats) but prunes
                 nothing, so results are bit-identical to previous
                 releases.
    [best], [all] and [rejected] are bit-identical across any [jobs],
    across cold/warm cache runs, and across interrupted-and-resumed
    runs — and, for a given [top_k], across all of those too.

    Fault tolerance: a candidate whose profile fails (simulator
    watchdog trip, deadlock, a crashed worker past its retry budget)
    is excluded with an infinite time and a stderr warning, and the
    search degrades to best-of-completed; only when {e every}
    candidate fails does the call raise [Failure].

    With [~repair:true], partitions the fusion-safety verifier rejects
    get one {!Hfuse_repair.Repair.attempt}; a statically repaired
    fusion is admitted as a candidate only after the differential
    soundness oracle passes — both kernels launched sequentially in
    fresh memory versus the repaired fusion in fresh memory, global
    memory compared byte-for-byte.  Oracle-refuted (or undecidable)
    repairs fail closed back to rejection and count as
    [repair_unsound].  Rejection histograms ([rejections]) accumulate
    regardless of [repair]. *)
val search :
  ?jobs:int -> ?pool:Hfuse_parallel.Pool.t -> ?settings:Settings.t ->
  ?stats:search_stats -> ?cache:Profile_cache.t ->
  ?checkpoint:Checkpoint.t -> ?top_k:int -> ?repair:bool ->
  Gpusim.Arch.t -> configured -> configured -> Hfuse_core.Search.result

val naive_hfuse : configured -> configured -> Hfuse_core.Hfuse.t option

(** Full-grid correctness: run the fused kernel in fresh memory and
    check both kernels' outputs against their host references. *)
val validate_hfuse :
  ?settings:Settings.t -> Kernel_corpus.Spec.t -> size1:int ->
  Kernel_corpus.Spec.t -> size2:int -> d1:int -> d2:int ->
  (unit, string) result

val validate_vfuse :
  ?settings:Settings.t -> Kernel_corpus.Spec.t -> size1:int ->
  Kernel_corpus.Spec.t -> size2:int -> (unit, string) result

(* Drives the four execution modes of the evaluation — native (parallel
   streams), vertically fused, horizontally fused (searched), and the
   Naive even-partition variant — through the simulator, with a
   two-tier trace store so ratio sweeps don't re-interpret unchanged
   kernels (and warm reruns don't re-interpret anything at all).

   Profiling launches execute only the traced blocks ([exec_blocks]):
   the timing model replays block traces cyclically over the full grid,
   so functional execution of every block matters only for the
   correctness checks, which use [validate_*] with fresh memory.

   Every trace is recorded in a canonical environment: a fresh
   [Memory.t] holding only the keyed workload, instantiated in key
   order.  The interpreter's trace payloads are coalescing analysis
   results over distinct (buffer, sector) pairs — not addresses — and
   buffer-id renaming is order-isomorphic for both the coalescer and
   the L1 sector FIFO, so these recordings are byte-identical to the
   old in-search ones while being pure functions of their key.  That
   purity buys two things: recordings parallelize (each task owns its
   memory), and they persist ({!Trace_store}'s disk tier).

   The Fig. 6 search runs as a two-phase engine.  Phase 1 is serial
   enumeration/verification ([Search.search]); the batch evaluator
   then resolves candidate times from the journal/cache/memo tiers,
   records the missing traces concurrently (deduped per distinct
   trace key — N register-bound variants of one partition share one
   recording), and fans the pure [Timing.run] replays out over an
   OCaml 5 domain pool ([Hfuse_parallel.Pool]) with a persistent
   on-disk cache ({!Profile_cache}) keyed by content.  Results are
   bit-identical to the serial path for any worker count and any
   cache temperature. *)

open Gpusim
open Kernel_corpus
module Fault = Hfuse_fault.Fault

(* Traced blocks per profiling launch.  1 matches the paper's
   methodology (one representative block, replayed cyclically over the
   grid by the timing model); raising it trades profiling time for
   sensitivity to inter-block variation.  The knob now lives in
   {!Settings} (the per-request configuration record); these delegates
   keep the historical entry points working.  Every profiling function
   below takes [?settings] and captures its knobs from there — the
   process default is only the fallback source. *)
let trace_blocks = Settings.trace_blocks
let set_trace_blocks = Settings.set_trace_blocks

(* [?settings] resolution: an omitted record means "the process
   defaults, resolved now" — exactly what a one-shot CLI wants. *)
let resolved : Settings.t option -> Settings.t = function
  | Some s -> s
  | None -> Settings.current ()

(** A corpus kernel bound to a workload instance in some memory. *)
type configured = {
  spec : Spec.t;
  size : int;
  info : Hfuse_core.Kernel_info.t;  (** at native block dimensions *)
  inst : Workload.instance;
  mem : Memory.t;
}

let configure (mem : Memory.t) (spec : Spec.t) ~(size : int) : configured =
  let inst = spec.instantiate mem ~size in
  let info = Spec.kernel_info spec inst in
  { spec; size; info; inst; mem }

(* ------------------------------------------------------------------ *)
(* Trace store                                                          *)
(* ------------------------------------------------------------------ *)

(** Trace key: kernel identity, workload size(s) and block
    dimension(s) — exactly what a dynamic trace depends on (inputs are
    seed-deterministic).  Structured, not packed: the old encoding
    folded both sizes of a pair into [size1 * 1_000_003 + size2], which
    collides for distinct size pairs (e.g. (2, 1) and (1, 1_000_004))
    and silently returned a stale trace. *)
type trace_key =
  | K_solo of { kernel : string; size : int; block_dim : int; tb : int }
  | K_hfuse of {
      k1 : string;
      size1 : int;
      k2 : string;
      size2 : int;
      d1 : int;
      d2 : int;
      tb : int;
    }
  | K_vfuse of {
      k1 : string;
      size1 : int;
      k2 : string;
      size2 : int;
      block : int;
      tb : int;
    }

(* Traces themselves live in {!Trace_store}: a process-wide in-memory
   LRU (shared by every request, bounded by [Settings.trace_mem_mb])
   over a persistent on-disk tier under the profile-cache root.  The
   store's digests fold in everything the keys above name plus the
   simulation fuel, the kernel source (names alone would go stale when
   a kernel's source changes under a persistent directory), and — on
   disk only — the arch.  This mutex guards the report/time/solo memos
   below. *)
let cache_mutex = Mutex.create ()

let locked (f : unit -> 'a) : 'a =
  Mutex.lock cache_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_mutex) f

(* Per-kernel solo elapsed cycles for the cost model's calibration,
   memoized per process (see [solo_cycles] below; same mutex). *)
let solo_memo : (string, float option) Hashtbl.t = Hashtbl.create 16

(* In-memory candidate-report memo, content-keyed exactly like the
   persistent report cache (specs + packed traces + arch), shared by
   every request in the process: the daemon's warm profile cache.
   Hits are bit-identical to replays — the simulator is deterministic
   and entries keep every report field.  Consulted only after the
   checkpoint journal and the persistent cache, so their observable
   behaviour (hit/store counters) is unchanged in one-shot runs. *)
let report_memo : (string, Timing.report * Timing.engine_stats) Hashtbl.t =
  Hashtbl.create 256

let report_memo_find key = locked (fun () -> Hashtbl.find_opt report_memo key)

let report_memo_store key v =
  locked (fun () -> Hashtbl.replace report_memo key v)

(* Same idea for the search's per-candidate times (the persistent
   cache's time entries, keyed by [candidate_key]): a daemon answering
   the same search twice replays nothing the second time. *)
let time_memo : (string, float) Hashtbl.t = Hashtbl.create 256
let time_memo_find key = locked (fun () -> Hashtbl.find_opt time_memo key)
let time_memo_store key v = locked (fun () -> Hashtbl.replace time_memo key v)

let clear_cache () =
  Trace_store.clear_memory ();
  locked @@ fun () ->
  Hashtbl.reset solo_memo;
  Hashtbl.reset report_memo;
  Hashtbl.reset time_memo

(* render a trace key into the store's digest input *)
let trace_ident (key : trace_key) : string list =
  match key with
  | K_solo { kernel; size; block_dim; tb } ->
      [ "solo"; kernel; string_of_int size; string_of_int block_dim;
        string_of_int tb ]
  | K_hfuse { k1; size1; k2; size2; d1; d2; tb } ->
      [ "hfuse"; k1; string_of_int size1; k2; string_of_int size2;
        string_of_int d1; string_of_int d2; string_of_int tb ]
  | K_vfuse { k1; size1; k2; size2; block; tb } ->
      [ "vfuse"; k1; string_of_int size1; k2; string_of_int size2;
        string_of_int block; string_of_int tb ]

let store_key ~(s : Settings.t) ~(arch : string) ~(source : string)
    (key : trace_key) : Trace_store.key =
  Trace_store.keys ~arch ~sim_fuel:s.Settings.sim_fuel
    ~trace_blocks:s.Settings.trace_blocks
    ~ident:(trace_ident key @ [ Digest.to_hex (Digest.string source) ])

let traced ~(s : Settings.t) ~(arch : string) ~(source : string)
    (key : trace_key) (record : unit -> Trace.block array) :
    Trace.block array =
  Trace_store.get_or_record (Settings.trace_store s)
    ?limit_bytes:(Settings.trace_limit_bytes s)
    ~key:(store_key ~s ~arch ~source key)
    (fun () ->
      (* every trace-recording launch is an injection point for the
         chaos harness's sim_hang; injected faults are transient, so
         the retry wrapper keeps them out of callers *)
      Fault.with_retries ~key:(Hashtbl.hash key) record)

(** Traces of [c] at block dimension [d] (defaults to native).
    [arch] scopes only the persistent entry (traces themselves are
    arch-independent). *)
let traces_of ?settings ?(arch = "-") (c : configured)
    ?(block_dim : int option) () : Trace.block array =
  let s = resolved settings in
  let d =
    match block_dim with
    | None -> Hfuse_core.Kernel_info.threads_per_block c.info
    | Some d -> d
  in
  let tb = s.Settings.trace_blocks in
  traced ~s ~arch ~source:c.spec.source
    (K_solo { kernel = c.spec.name; size = c.size; block_dim = d; tb })
    (fun () ->
      (* canonical recording environment: a fresh memory holding only
         this workload (see the header comment) *)
      let mem = Memory.create () in
      let inst = c.spec.instantiate mem ~size:c.size in
      let info = Hfuse_core.Kernel_info.with_block_dim c.info d in
      (Launch.launch_info ~exec_blocks:tb ?fault:s.Settings.fault
         ~loop_fuel:s.Settings.sim_fuel mem info ~args:inst.args
         ~trace_blocks:tb)
        .block_traces)

(* ------------------------------------------------------------------ *)
(* Timing-spec constructors                                             *)
(* ------------------------------------------------------------------ *)

let static_smem (info : Hfuse_core.Kernel_info.t) : int =
  Launch.static_shared_bytes info.fn.f_body

let spec_of ?settings ?arch (c : configured) ?(block_dim : int option)
    ~(stream : int) () : Timing.launch_spec =
  let d =
    match block_dim with
    | None -> Hfuse_core.Kernel_info.threads_per_block c.info
    | Some d -> d
  in
  {
    Timing.label = c.spec.name;
    block_traces = traces_of ?settings ?arch c ~block_dim:d ();
    grid = c.inst.grid;
    threads_per_block = d;
    regs = c.spec.regs;
    spill = 0;
    smem = static_smem c.info + c.inst.smem_dynamic;
    stream;
  }

(** Native baseline: both kernels submitted via parallel streams. *)
let native ?settings (arch : Arch.t) (c1 : configured) (c2 : configured) :
    Timing.report =
  Timing.run arch
    [
      spec_of ?settings ~arch:arch.Arch.name c1 ~stream:0 ();
      spec_of ?settings ~arch:arch.Arch.name c2 ~stream:1 ();
    ]

(** One kernel alone (Fig. 8 metrics; also the ratio probes). *)
let solo ?settings (arch : Arch.t) (c : configured) : Timing.report =
  Timing.run arch [ spec_of ?settings ~arch:arch.Arch.name c ~stream:0 () ]

(* ------------------------------------------------------------------ *)
(* Fused runs                                                           *)
(* ------------------------------------------------------------------ *)

(** The canonical recording of a horizontally fused candidate's
    traces: a fresh memory with both workloads instantiated in pair
    order.  Pure up to its inputs — safe to run on any domain (the
    batch evaluator fans these over the pool). *)
let record_hfuse ~(s : Settings.t) (c1 : configured) (c2 : configured)
    (f : Hfuse_core.Hfuse.t) : Trace.block array =
  let tb = s.Settings.trace_blocks in
  let mem = Memory.create () in
  let i1 = c1.spec.instantiate mem ~size:c1.size in
  let i2 = c2.spec.instantiate mem ~size:c2.size in
  (Launch.launch_info ~exec_blocks:tb ?fault:s.Settings.fault
     ~loop_fuel:s.Settings.sim_fuel mem
     (Hfuse_core.Hfuse.info f)
     ~args:(i1.args @ i2.args) ~trace_blocks:tb)
    .block_traces

let hfuse_key ~(tb : int) (c1 : configured) (c2 : configured)
    (f : Hfuse_core.Hfuse.t) : trace_key =
  K_hfuse
    {
      k1 = c1.spec.name;
      size1 = c1.size;
      k2 = c2.spec.name;
      size2 = c2.size;
      d1 = f.d1;
      d2 = f.d2;
      tb;
    }

(** Traces of the horizontally fused kernel (recorded on first use;
    stored).  [arch] scopes only the persistent entry. *)
let hfuse_traces ?settings ?(arch = "-") (c1 : configured) (c2 : configured)
    (f : Hfuse_core.Hfuse.t) : Trace.block array =
  let s = resolved settings in
  traced ~s ~arch
    ~source:(Hfuse_core.Hfuse.to_source f)
    (hfuse_key ~tb:s.Settings.trace_blocks c1 c2 f)
    (fun () -> record_hfuse ~s c1 c2 f)

(** Launch spec for a fused candidate over already-recorded traces.
    Pure — safe to build and [Timing.run] on any domain. *)
let hfuse_spec (f : Hfuse_core.Hfuse.t) ~(reg_bound : int option)
    ~(traces : Trace.block array) : Timing.launch_spec =
  let finfo = Hfuse_core.Hfuse.info f in
  let regs, spill =
    match reg_bound with
    | Some r when r < f.regs -> (r, f.regs - r)
    | _ -> (f.regs, 0)
  in
  {
    Timing.label = f.fn.f_name;
    block_traces = traces;
    grid = f.grid;
    threads_per_block = f.d1 + f.d2;
    regs;
    spill;
    smem = static_smem finfo + f.smem_dynamic;
    stream = 0;
  }

(** Interpret a horizontally fused kernel (profiling mode) and time it
    under an optional register bound. *)
let hfuse_report ?settings (arch : Arch.t) (c1 : configured)
    (c2 : configured) (f : Hfuse_core.Hfuse.t) ~(reg_bound : int option) :
    Timing.report =
  let traces = hfuse_traces ?settings ~arch:arch.Arch.name c1 c2 f in
  Timing.run arch [ hfuse_spec f ~reg_bound ~traces ]

(** Vertically fused baseline.  Both kernels run at the larger of the
    two native block dimensions (tunable kernels adapt; a fixed smaller
    kernel is guarded, which {!Hfuse_core.Vfuse} checks is legal). *)
let vfuse_block_dim (c1 : configured) (c2 : configured) : int =
  let d1 = Hfuse_core.Kernel_info.threads_per_block c1.info in
  let d2 = Hfuse_core.Kernel_info.threads_per_block c2.info in
  max d1 d2

let vfuse_generate (c1 : configured) (c2 : configured) : Hfuse_core.Vfuse.t =
  let d = vfuse_block_dim c1 c2 in
  let adapt (c : configured) =
    match c.info.tunability with
    | Hfuse_core.Kernel_info.Tunable _ ->
        Hfuse_core.Kernel_info.with_block_dim c.info d
    | Hfuse_core.Kernel_info.Fixed -> c.info
  in
  Hfuse_core.Vfuse.generate (adapt c1) (adapt c2)

(** Launch spec for the vertical baseline (records the fused kernel's
    traces in a fresh memory on first use; stored). *)
let vfuse_spec ?settings ?(arch = "-") (c1 : configured) (c2 : configured)
    (v : Hfuse_core.Vfuse.t) : Timing.launch_spec =
  let s = resolved settings in
  let vinfo = Hfuse_core.Vfuse.info v in
  let tb = s.Settings.trace_blocks in
  let traces =
    traced ~s ~arch
      ~source:(Hfuse_core.Vfuse.to_source v)
      (K_vfuse
         {
           k1 = c1.spec.name;
           size1 = c1.size;
           k2 = c2.spec.name;
           size2 = c2.size;
           block = v.block;
           tb;
         })
      (fun () ->
        let mem = Memory.create () in
        let i1 = c1.spec.instantiate mem ~size:c1.size in
        let i2 = c2.spec.instantiate mem ~size:c2.size in
        (Launch.launch_info ~exec_blocks:tb ?fault:s.Settings.fault
           ~loop_fuel:s.Settings.sim_fuel mem vinfo
           ~args:(i1.args @ i2.args) ~trace_blocks:tb)
          .block_traces)
  in
  {
    Timing.label = v.fn.f_name;
    block_traces = traces;
    grid = v.grid;
    threads_per_block = v.block;
    regs = v.regs;
    spill = 0;
    smem = static_smem vinfo + v.smem_dynamic;
    stream = 0;
  }

let vfuse_report ?settings (arch : Arch.t) (c1 : configured)
    (c2 : configured) (v : Hfuse_core.Vfuse.t) : Timing.report =
  Timing.run arch [ vfuse_spec ?settings ~arch:arch.Arch.name c1 c2 v ]

(* ------------------------------------------------------------------ *)
(* The Fig. 6 search, driven by the simulator                           *)
(* ------------------------------------------------------------------ *)

(** Fused block dimension target: the paper fuses to 1024 threads when
    both kernels are tunable; fixed kernels dictate their own sum. *)
let d0_for (c1 : configured) (c2 : configured) : int =
  match (c1.info.tunability, c2.info.tunability) with
  | Hfuse_core.Kernel_info.Fixed, Hfuse_core.Kernel_info.Fixed ->
      Hfuse_core.Kernel_info.threads_per_block c1.info
      + Hfuse_core.Kernel_info.threads_per_block c2.info
  | Hfuse_core.Kernel_info.Fixed, _ | _, Hfuse_core.Kernel_info.Fixed -> 1024
  | _ -> 1024

(** Cumulative observability counters for the profiling search. *)
type search_stats = {
  mutable profiled : int;  (** candidates timed on the simulator *)
  mutable cache_hits : int;  (** candidates answered by the disk cache *)
  mutable profile_wall_s : float;  (** wall time inside batch profiling *)
  mutable failed : int;  (** candidates whose profile failed (excluded) *)
  mutable ranked : int;  (** candidates scored by the cost model *)
  mutable pruned : int;  (** candidates top-K pruning skipped *)
  mutable rank_agree : int;
      (** searches where the model's pick tied the simulated best *)
  mutable rank_total : int;  (** searches with a model-vs-sim verdict *)
  mutable max_regret_pct : float;
      (** worst chosen-vs-best simulated-time gap, percent *)
  mutable traced : int;  (** distinct trace keys freshly recorded *)
  mutable trace_hits : int;
      (** distinct trace keys answered by the store (memory or disk) *)
  mutable trace_merged : int;
      (** candidate trace needs deduped onto an already-requested key *)
  mutable trace_wall_s : float;  (** wall time inside trace acquisition *)
  mutable repair_attempted : int;
      (** rejected partitions handed to the repair engine *)
  mutable repaired : int;
      (** partitions repaired, oracle-gated and admitted to profiling *)
  mutable repair_unsound : int;
      (** statically clean repairs the differential oracle refuted
          (failed closed back to rejection) *)
  mutable rejections : (string * int) list;
      (** per-{!Hfuse_analysis.Diag.kind_tag} histogram of the error
          diagnostics on finally-rejected partitions, sorted by tag *)
}

let fresh_search_stats () : search_stats =
  {
    profiled = 0;
    cache_hits = 0;
    profile_wall_s = 0.0;
    failed = 0;
    ranked = 0;
    pruned = 0;
    rank_agree = 0;
    rank_total = 0;
    max_regret_pct = 0.0;
    traced = 0;
    trace_hits = 0;
    trace_merged = 0;
    trace_wall_s = 0.0;
    repair_attempted = 0;
    repaired = 0;
    repair_unsound = 0;
    rejections = [];
  }

(** Count each error diagnostic's kind into the [rejections]
    histogram (kept sorted by tag for deterministic reports). *)
let count_rejections (st : search_stats) (ds : Hfuse_analysis.Diag.t list) :
    unit =
  let bump hist tag =
    let rec go = function
      | [] -> [ (tag, 1) ]
      | (t, n) :: rest when String.equal t tag -> (t, n + 1) :: rest
      | kv :: rest -> kv :: go rest
    in
    go hist
  in
  let hist =
    List.fold_left
      (fun hist (d : Hfuse_analysis.Diag.t) ->
        bump hist (Hfuse_analysis.Diag.kind_tag d.kind))
      st.rejections
      (Hfuse_analysis.Diag.errors ds)
  in
  st.rejections <-
    List.sort (fun (a, _) (b, _) -> String.compare a b) hist

(* the process-wide accumulator the one-shot CLIs print; a server
   passes each request its own [fresh_search_stats ()] via [?stats] *)
let global_stats : search_stats = fresh_search_stats ()

let search_stats () =
  {
    profiled = global_stats.profiled;
    cache_hits = global_stats.cache_hits;
    profile_wall_s = global_stats.profile_wall_s;
    failed = global_stats.failed;
    ranked = global_stats.ranked;
    pruned = global_stats.pruned;
    rank_agree = global_stats.rank_agree;
    rank_total = global_stats.rank_total;
    max_regret_pct = global_stats.max_regret_pct;
    traced = global_stats.traced;
    trace_hits = global_stats.trace_hits;
    trace_merged = global_stats.trace_merged;
    trace_wall_s = global_stats.trace_wall_s;
    repair_attempted = global_stats.repair_attempted;
    repaired = global_stats.repaired;
    repair_unsound = global_stats.repair_unsound;
    rejections = global_stats.rejections;
  }

let reset_search_stats () =
  global_stats.profiled <- 0;
  global_stats.cache_hits <- 0;
  global_stats.profile_wall_s <- 0.0;
  global_stats.failed <- 0;
  global_stats.ranked <- 0;
  global_stats.pruned <- 0;
  global_stats.rank_agree <- 0;
  global_stats.rank_total <- 0;
  global_stats.max_regret_pct <- 0.0;
  global_stats.traced <- 0;
  global_stats.trace_hits <- 0;
  global_stats.trace_merged <- 0;
  global_stats.trace_wall_s <- 0.0;
  global_stats.repair_attempted <- 0;
  global_stats.repaired <- 0;
  global_stats.repair_unsound <- 0;
  global_stats.rejections <- []

let pp_search_stats ppf (s : search_stats) =
  Fmt.pf ppf "%d candidate%s profiled, %d cache hit%s, %.2fs profiling wall"
    s.profiled
    (if s.profiled = 1 then "" else "s")
    s.cache_hits
    (if s.cache_hits = 1 then "" else "s")
    s.profile_wall_s;
  Fmt.pf ppf ", %d trace%s recorded, %d trace hit%s, %d merged, %.2fs trace wall"
    s.traced
    (if s.traced = 1 then "" else "s")
    s.trace_hits
    (if s.trace_hits = 1 then "" else "s")
    s.trace_merged s.trace_wall_s;
  if s.failed > 0 then Fmt.pf ppf ", %d failed" s.failed;
  if s.pruned > 0 then Fmt.pf ppf ", %d pruned" s.pruned;
  if s.rank_total > 0 then
    Fmt.pf ppf ", model agreement %d/%d (max regret %.2f%%)" s.rank_agree
      s.rank_total s.max_regret_pct;
  if s.repair_attempted > 0 then
    Fmt.pf ppf ", %d/%d partition%s repaired (%d unsound)" s.repaired
      s.repair_attempted
      (if s.repair_attempted = 1 then "" else "s")
      s.repair_unsound;
  if s.rejections <> [] then
    Fmt.pf ppf ", rejections %a"
      Fmt.(list ~sep:sp (pair ~sep:(any "×") string int))
      s.rejections

(* Model-vs-simulator verdict over one (exhaustive) search's profiled
   candidates: what would top-[k] pruning have cost?  The model's
   window is the [k] lowest-scored candidates whose profiles completed
   (ties to the earlier candidate, matching the pruning order); the
   pruned search would then profile exactly that window and pick its
   fastest member, so the verdict is (index of that member, its regret
   versus the exhaustive best, in percent).  Regret 0 means pruning
   would have selected an exhaustive winner.  [None] when no candidate
   has both a finite score and a finite time (no model ran, or every
   profile failed). *)
let model_eval ?(k = 1) ~(scores : float list) ~(times : float list) () :
    (int * float) option =
  let sarr = Array.of_list scores and tarr = Array.of_list times in
  let n = min (Array.length sarr) (Array.length tarr) in
  let order = Array.init n Fun.id in
  Array.sort
    (fun i j ->
      match compare sarr.(i) sarr.(j) with 0 -> compare i j | c -> c)
    order;
  let best_t = ref Float.infinity in
  for i = 0 to n - 1 do
    if Float.is_finite tarr.(i) && tarr.(i) < !best_t then best_t := tarr.(i)
  done;
  let window_pick = ref None and taken = ref 0 in
  Array.iter
    (fun i ->
      if
        !taken < max 1 k
        && Float.is_finite sarr.(i)
        && Float.is_finite tarr.(i)
      then begin
        incr taken;
        match !window_pick with
        | Some (_, t) when t <= tarr.(i) -> ()
        | _ -> window_pick := Some (i, tarr.(i))
      end)
    order;
  match !window_pick with
  | Some (i, t) when Float.is_finite !best_t ->
      let regret =
        if !best_t <= 0.0 then 0.0
        else (t -. !best_t) /. !best_t *. 100.0
      in
      Some (i, regret)
  | _ -> None

let candidate_key ?settings (arch : Arch.t) (c1 : configured)
    (c2 : configured) (f : Hfuse_core.Hfuse.t) ~(reg_bound : int option) :
    string =
  let s = resolved settings in
  Profile_cache.key ~arch:arch.Arch.name
    ~source:(Hfuse_core.Hfuse.to_source f)
    ~d1:f.d1 ~d2:f.d2 ~grid:f.grid ~smem_dynamic:f.smem_dynamic ~regs:f.regs
    ~reg_bound ~k1:c1.spec.name ~size1:c1.size ~k2:c2.spec.name
    ~size2:c2.size ~trace_blocks:s.Settings.trace_blocks

(* Fan pure [Timing.run] replays over a pool: one (arch, spec list) per
   report.  [Pool.map] preserves order, so results are bit-identical to
   a serial loop for any pool width.  A caller-supplied [?pool] is
   reused (figure sweeps time hundreds of spec lists; spawning domains
   per call would dominate); otherwise a fresh pool of [jobs] workers
   is scoped to this call.

   With an enabled [cache], each entry is first looked up in the
   persistent report cache (content-keyed over the specs and their
   packed traces, so any input change misses); only the misses reach
   the pool, and their reports are stored afterwards.  Cache hits are
   bit-identical to replays — entries hold every report field exactly —
   and each hit folds the producing replay's engine stats into the
   process-wide counters so cumulative stats still describe the work
   behind the reported numbers.  Cache I/O stays on the calling
   domain.

   An enabled [checkpoint] journal is consulted before the cache (a
   resumed run answers everything the interrupted run already
   produced), and every result — cache hit or fresh replay — is also
   recorded into it, so a later resume replays this call entirely from
   the journal. *)
let run_many ?pool ?(jobs = 1) ?(cache = Profile_cache.disabled ())
    ?(checkpoint = Checkpoint.disabled)
    (runs : (Arch.t * Timing.launch_spec list) array) : Timing.report array =
  let n = Array.length runs in
  let use_cache = Profile_cache.enabled cache in
  let use_ckpt = Checkpoint.enabled checkpoint in
  let keys = Array.make n "" in
  let results : Timing.report option array = Array.make n None in
  Array.iteri
    (fun i (arch, specs) ->
      let key =
        Profile_cache.report_key ~arch:arch.Arch.name ~policy:"fifo" specs
      in
      keys.(i) <- key;
      match
        if use_ckpt then Checkpoint.find_report checkpoint ~key else None
      with
      | Some (r, es) ->
          Timing.accumulate_stats es;
          results.(i) <- Some r
      | None -> (
          match
            if use_cache then Profile_cache.find_report cache ~key else None
          with
          | Some (r, es) ->
              Timing.accumulate_stats es;
              Checkpoint.record_report checkpoint ~key (r, es);
              report_memo_store key (r, es);
              results.(i) <- Some r
          | None -> (
              match report_memo_find key with
              | Some ((r, es) as v) ->
                  Timing.accumulate_stats es;
                  if use_ckpt then Checkpoint.record_report checkpoint ~key v;
                  (* a warm-memo hit backfills an enabled persistent
                     cache that missed (e.g. a fresh cache root) *)
                  if use_cache then Profile_cache.store_report cache ~key v;
                  results.(i) <- Some r
              | None -> ())))
    runs;
  let miss_idx =
    List.filter (fun i -> Option.is_none results.(i)) (List.init n Fun.id)
    |> Array.of_list
  in
  let missing = Array.map (fun i -> runs.(i)) miss_idx in
  let go p =
    Hfuse_parallel.Pool.map p
      (fun (arch, specs) -> Timing.run_with_stats arch specs)
      missing
  in
  let fresh =
    if Array.length missing = 0 then [||]
    else
      match pool with
      | Some p -> go p
      | None -> Hfuse_parallel.Pool.with_pool jobs go
  in
  Array.iteri
    (fun j i ->
      let r, es = fresh.(j) in
      results.(i) <- Some r;
      report_memo_store keys.(i) (r, es);
      if use_cache then Profile_cache.store_report cache ~key:keys.(i) (r, es);
      if use_ckpt then Checkpoint.record_report checkpoint ~key:keys.(i) (r, es))
    miss_idx;
  Checkpoint.flush checkpoint;
  Array.map (function Some r -> r | None -> assert false) results

(* Exceptions that fail one candidate's profile without invalidating
   the rest of the search: simulator watchdog trips, launch/geometry
   problems and runtime faults in the candidate itself.  Anything else
   (Out_of_memory, programming errors) still aborts the search. *)
let is_profile_failure = function
  | Launch.Sim_timeout _ | Launch.Deadlock _ | Launch.Launch_error _
  | Interp.Exec_error _ | Value.Runtime_error _ ->
      true
  | _ -> false

(* Observed solo elapsed cycles of one kernel at its native launch —
   the cost model's per-kernel calibration input.  Memoized per process
   and persisted through the report cache (content-keyed over the spec
   and its packed traces, so any trace change self-invalidates); a
   warm search never re-simulates it.  A failed solo yields [None] and
   the model runs uncalibrated. *)
let solo_cycles ?settings ~(cache : Profile_cache.t) (arch : Arch.t)
    (c : configured) : float option =
  let s = resolved settings in
  let memo_key =
    Printf.sprintf "%s|%s|%d|%d" arch.Arch.name c.spec.name c.size
      s.Settings.trace_blocks
  in
  match locked (fun () -> Hashtbl.find_opt solo_memo memo_key) with
  | Some v -> v
  | None ->
      let v =
        match
          let spec = spec_of ~settings:s ~arch:arch.Arch.name c ~stream:0 () in
          let key =
            Profile_cache.report_key ~arch:arch.Arch.name ~policy:"fifo"
              [ spec ]
          in
          match Profile_cache.find_report cache ~key with
          | Some (r, es) ->
              Timing.accumulate_stats es;
              r
          | None ->
              let r, es = Timing.run_with_stats arch [ spec ] in
              Profile_cache.store_report cache ~key (r, es);
              r
        with
        | r -> Some (float_of_int r.Timing.elapsed_cycles)
        | exception e when is_profile_failure e -> None
      in
      locked (fun () -> Hashtbl.replace solo_memo memo_key v);
      v

(* Differential soundness oracle for repaired fusions: launch the two
   kernels sequentially in one fresh memory (the unfused reference) and
   the repaired fusion in another, then compare global memory
   byte-for-byte.  Anything short of bit-identical output — including a
   deadlock, a fuel trip or a launch error in either run — fails the
   gate, so an unsound (or undecidable) repair is never admitted. *)
let repair_gate ~(s : Settings.t) (c1 : configured) (c2 : configured)
    (f : Hfuse_core.Hfuse.t) : bool =
  let launch mem info args =
    ignore
      (Launch.launch_info ?fault:s.Settings.fault
         ~loop_fuel:s.Settings.sim_fuel mem info ~args ~trace_blocks:0)
  in
  let snapshot_of launches =
    (* instantiation order matches every other fresh-memory run, so the
       two snapshots are over identically-named, identically-seeded
       buffers and [equal_snapshot] compares like with like *)
    let mem = Memory.create () in
    let i1 = c1.spec.Spec.instantiate mem ~size:c1.size in
    let i2 = c2.spec.Spec.instantiate mem ~size:c2.size in
    launches mem i1 i2;
    Memory.snapshot mem
  in
  match
    Fault.with_retries
      ~key:
        (Hashtbl.hash
           ( "repair-gate", c1.spec.Spec.name, c2.spec.Spec.name,
             f.Hfuse_core.Hfuse.d1, f.Hfuse_core.Hfuse.d2 ))
    @@ fun () ->
    let reference =
      snapshot_of (fun mem i1 i2 ->
          let k1 =
            Hfuse_core.Kernel_info.with_block_dim
              (Spec.kernel_info c1.spec i1)
              f.Hfuse_core.Hfuse.d1
          in
          let k2 =
            Hfuse_core.Kernel_info.with_block_dim
              (Spec.kernel_info c2.spec i2)
              f.Hfuse_core.Hfuse.d2
          in
          launch mem k1 i1.args;
          launch mem k2 i2.args)
    in
    let fused =
      snapshot_of (fun mem i1 i2 ->
          launch mem (Hfuse_core.Hfuse.info f) (i1.args @ i2.args))
    in
    Memory.equal_snapshot reference fused
  with
  | equal -> equal
  | exception e when is_profile_failure e -> false

let search ?(jobs = 1) ?pool ?settings ?stats ?cache
    ?(checkpoint = Checkpoint.disabled) ?(top_k : int option)
    ?(repair = false) (arch : Arch.t) (c1 : configured) (c2 : configured) :
    Hfuse_core.Search.result =
  let s = resolved settings in
  (* per-request stats land in the caller's record; the historical
     default keeps accumulating into the process-wide counters *)
  let stats = match stats with Some st -> st | None -> global_stats in
  let cache = match cache with Some c -> c | None -> Settings.cache s in
  (* a candidate whose profile fails (fuel exhaustion, deadlock, a
     crashed worker past its retry budget) is excluded by giving it an
     infinite time: the Fig. 6 fold keeps the first strictly-fastest
     candidate, so infinity never wins while any candidate completed *)
  let candidate_failed (f : Hfuse_core.Hfuse.t) (e : exn) : float =
    stats.failed <- stats.failed + 1;
    Printf.eprintf "hfuse: warning: candidate %s (d1=%d d2=%d) failed: %s\n%!"
      f.fn.f_name f.d1 f.d2 (Printexc.to_string e);
    Float.infinity
  in
  let profile fused ~reg_bound =
    Fault.with_retries ~key:(Hashtbl.hash (fused.Hfuse_core.Hfuse.d1, reg_bound))
      (fun () ->
        (hfuse_report ~settings:s arch c1 c2 fused ~reg_bound).Timing.time_ms)
  in
  (* phase 2 evaluator: disk-cache probes run serially on this domain
     (the cache file I/O and its counters are single-domain), missing
     traces are recorded concurrently in fresh memories (deduped per
     distinct trace key), then the pure Timing.run replays fan out
     over the pool.  Candidate order is preserved end-to-end, so
     results are bit-identical to the serial path for any [jobs] and
     any cache/store temperature. *)
  let profile_batch (batch : (Hfuse_core.Hfuse.t * Hfuse_core.Search.config) list)
      : float list =
    let t0 = Unix.gettimeofday () in
    let batch = Array.of_list batch in
    let keys =
      Array.map
        (fun (f, (cfg : Hfuse_core.Search.config)) ->
          candidate_key ~settings:s arch c1 c2 f ~reg_bound:cfg.reg_bound)
        batch
    in
    (* resolution order: checkpoint journal (a resumed run replays the
       interrupted run's answers), then the persistent cache (hits are
       journaled so the resume no longer depends on the cache file),
       then the process-wide warm memo (a long-lived daemon's previous
       requests; hits backfill the cache and journal) *)
    let cached =
      Array.map
        (fun key ->
          match Checkpoint.find_time checkpoint ~key with
          | Some t -> Some t
          | None -> (
              match Profile_cache.find cache ~key with
              | Some t ->
                  Checkpoint.record_time checkpoint ~key t;
                  time_memo_store key t;
                  Some t
              | None -> (
                  match time_memo_find key with
                  | Some t ->
                      Profile_cache.store cache ~key t;
                      Checkpoint.record_time checkpoint ~key t;
                      Some t
                  | None -> None)))
        keys
    in
    let times = Array.map (Option.value ~default:nan) cached in
    (* trace acquisition for the misses: one fresh-memory recording
       per *distinct* trace key, fanned over the worker pool.
       Candidates sharing a key — the same partition under different
       register bounds — are merged onto one recording (the search's
       deterministic single-flight).  Keys are collected in candidate
       order and recordings are pure, so results are bit-identical
       for any [jobs] and any store temperature. *)
    let t_trace = Unix.gettimeofday () in
    let store = Settings.trace_store s in
    let limit_bytes = Settings.trace_limit_bytes s in
    let tb = s.Settings.trace_blocks in
    let key_slot : (trace_key, int) Hashtbl.t = Hashtbl.create 16 in
    let uniq_rev = ref [] and n_uniq = ref 0 and miss_candidates = ref 0 in
    Array.iteri
      (fun i (f, (_ : Hfuse_core.Search.config)) ->
        match cached.(i) with
        | Some _ -> ()
        | None ->
            incr miss_candidates;
            let k = hfuse_key ~tb c1 c2 f in
            if not (Hashtbl.mem key_slot k) then begin
              Hashtbl.add key_slot k !n_uniq;
              incr n_uniq;
              uniq_rev := f :: !uniq_rev
            end)
      batch;
    let uniq = Array.of_list (List.rev !uniq_rev) in
    let skeys =
      Array.map
        (fun f ->
          store_key ~s ~arch:arch.Arch.name
            ~source:(Hfuse_core.Hfuse.to_source f)
            (hfuse_key ~tb c1 c2 f))
        uniq
    in
    (* store lookups stay on the coordinating domain (disk I/O and the
       shared memory tier's counters) *)
    let have = Array.map (fun k -> Trace_store.find store ~key:k) skeys in
    let to_record =
      List.init (Array.length uniq) Fun.id
      |> List.filter (fun j -> Option.is_none have.(j))
      |> Array.of_list
    in
    let recorded =
      let go p =
        Hfuse_parallel.Pool.map_isolated ?fault:s.Settings.fault p
          (fun j -> record_hfuse ~s c1 c2 uniq.(j))
          to_record
      in
      if Array.length to_record = 0 then [||]
      else
        match pool with
        | Some p -> go p
        | None -> Hfuse_parallel.Pool.with_pool jobs go
    in
    (* an exception that is not a per-candidate profile failure
       (Out_of_memory, programming errors) still aborts the search,
       exactly as it did when recording ran inline *)
    Array.iter
      (function
        | Error (fl : Hfuse_parallel.Pool.failure)
          when not (is_profile_failure fl.f_exn) ->
            Printexc.raise_with_backtrace fl.f_exn fl.f_backtrace
        | _ -> ())
      recorded;
    let rec_failed : (int, exn) Hashtbl.t = Hashtbl.create 4 in
    let fresh_traces = ref 0 in
    (* stores run on the coordinating domain, in key order *)
    Array.iteri
      (fun jj j ->
        match recorded.(jj) with
        | Ok traces ->
            incr fresh_traces;
            Trace_store.add store ?limit_bytes ~key:skeys.(j) traces;
            have.(j) <- Some traces
        | Error (fl : Hfuse_parallel.Pool.failure) ->
            Hashtbl.add rec_failed j fl.f_exn)
      to_record;
    let miss_specs =
      Array.mapi
        (fun i (f, (cfg : Hfuse_core.Search.config)) ->
          match cached.(i) with
          | Some _ -> None
          | None -> (
              let j = Hashtbl.find key_slot (hfuse_key ~tb c1 c2 f) in
              match have.(j) with
              | Some traces ->
                  Some (hfuse_spec f ~reg_bound:cfg.reg_bound ~traces)
              | None ->
                  times.(i) <- candidate_failed f (Hashtbl.find rec_failed j);
                  None))
        batch
    in
    stats.traced <- stats.traced + !fresh_traces;
    stats.trace_hits <-
      stats.trace_hits + (Array.length uniq - Array.length to_record);
    let merged = !miss_candidates - !n_uniq in
    stats.trace_merged <- stats.trace_merged + merged;
    Trace_store.note_merged merged;
    stats.trace_wall_s <-
      stats.trace_wall_s +. (Unix.gettimeofday () -. t_trace);
    let miss_idx =
      Array.to_list miss_specs
      |> List.mapi (fun i s -> (i, s))
      |> List.filter_map (fun (i, s) -> Option.map (fun s -> (i, s)) s)
      |> Array.of_list
    in
    (* per-task isolation: a worker exception (or a crashed injected
       task past its retry budget) fails one candidate, not the batch *)
    let time_misses p =
      Hfuse_parallel.Pool.map_isolated ?fault:s.Settings.fault p
        (fun (_, spec) -> (Timing.run arch [ spec ]).Timing.time_ms)
        miss_idx
    in
    let miss_times =
      match pool with
      | Some p -> time_misses p
      | None -> Hfuse_parallel.Pool.with_pool jobs time_misses
    in
    let completed = ref 0 in
    Array.iteri
      (fun j (i, _) ->
        match miss_times.(j) with
        | Ok t ->
            incr completed;
            times.(i) <- t;
            let key = keys.(i) in
            time_memo_store key t;
            Profile_cache.store cache ~key t;
            Checkpoint.record_time checkpoint ~key t
        | Error (fl : Hfuse_parallel.Pool.failure) ->
            let f, _ = batch.(i) in
            times.(i) <- candidate_failed f fl.f_exn)
      miss_idx;
    Checkpoint.flush checkpoint;
    stats.profiled <- stats.profiled + !completed;
    stats.cache_hits <-
      stats.cache_hits
      + Array.fold_left
          (fun acc c -> acc + if Option.is_some c then 1 else 0)
          0 cached;
    stats.profile_wall_s <-
      stats.profile_wall_s +. (Unix.gettimeofday () -. t0);
    Array.to_list times
  in
  let failed_before = stats.failed in
  (* phase 1.5: the analytical cost model always scores the verified
     candidates (scores are static and cheap, and the default
     exhaustive run uses them to report model quality — rank agreement
     and regret — against the full simulated sweep).  Only an explicit
     [top_k] makes the scores prune. *)
  let rank candidates =
    let inputs =
      Hfuse_costmodel.of_pair
        ~limits:(Arch.sm_limits arch)
        ~arch c1.info c2.info
    in
    (* pin each side's cost magnitude to its observed solo run (cached
       and shared across every pair involving the kernel); a failed
       solo leaves the model uncalibrated rather than failing the
       search *)
    let inputs =
      match
        ( solo_cycles ~settings:s ~cache arch c1,
          solo_cycles ~settings:s ~cache arch c2 )
      with
      | Some s1, Some s2 -> Hfuse_costmodel.calibrate inputs ~solo1:s1 ~solo2:s2
      | _ -> inputs
    in
    (* fit the pair's empirical time-vs-partition shape from profiled
       probes: the two extreme unbounded candidates (minimal d1 starves
       kernel 1, maximal d1 starves kernel 2), the unbounded one
       nearest the middle (pins the residency-invariant floor), and per
       spilling register bound that group's extremes and middle.  The
       probes are real candidates profiled through [profile_batch], so
       they fan out over the worker pool and their times come from
       (and land in) the same caches as phase 2.

       When a [top_k] was requested but cannot cut anything (the pair
       has no more candidates than the window), the probe simulations
       would buy nothing — the search profiles every candidate anyway —
       so they are skipped and the static scores stand.  An exhaustive
       run (no [top_k]) always fits probes: it is the only run that can
       measure model quality, and with caching enabled the probes are
       phase-2 cache hits, not extra simulations. *)
    let probes_useful =
      match top_k with
      | None -> true
      | Some k -> max 1 k < List.length candidates
    in
    let inputs =
      if not probes_useful then inputs
      else
      let unbounded, bounded =
        List.partition
          (fun ((_, cfg) : Hfuse_core.Hfuse.t * Hfuse_core.Search.config) ->
            cfg.Hfuse_core.Search.reg_bound = None)
          candidates
      in
      let d1_of ((_, cfg) : Hfuse_core.Hfuse.t * Hfuse_core.Search.config) =
        cfg.Hfuse_core.Search.partition.Hfuse_core.Partition.d1
      in
      match unbounded with
      | first :: (_ :: _ as rest) ->
          let lo, hi =
            List.fold_left
              (fun (mn, mx) c ->
                ( (if d1_of c < d1_of mn then c else mn),
                  if d1_of c > d1_of mx then c else mx ))
              (first, first) rest
          in
          let target = (d1_of lo + d1_of hi) / 2 in
          let nearest_mid pool ~skip_extremes =
            List.fold_left
              (fun best c ->
                if skip_extremes && (c == lo || c == hi) then best
                else
                  match best with
                  | Some b when abs (d1_of b - target) <= abs (d1_of c - target)
                    ->
                      best
                  | _ -> Some c)
              None pool
          in
          let mid = nearest_mid unbounded ~skip_extremes:true in
          let capped =
            (* per spilling register bound: that group's extremes and
               the member nearest the middle — only candidates whose
               bound actually forces spilling reveal the capped
               physics *)
            let spilling =
              List.filter
                (fun ((f, cfg) : Hfuse_core.Hfuse.t * Hfuse_core.Search.config)
                   ->
                  match cfg.Hfuse_core.Search.reg_bound with
                  | Some r -> f.Hfuse_core.Hfuse.regs > r
                  | None -> false)
                bounded
            in
            let bounds =
              List.sort_uniq compare
                (List.filter_map
                   (fun ((_, cfg) :
                          Hfuse_core.Hfuse.t * Hfuse_core.Search.config) ->
                     cfg.Hfuse_core.Search.reg_bound)
                   spilling)
            in
            List.concat_map
              (fun r ->
                let group =
                  List.filter
                    (fun ((_, cfg) :
                           Hfuse_core.Hfuse.t * Hfuse_core.Search.config) ->
                      cfg.Hfuse_core.Search.reg_bound = Some r)
                    spilling
                in
                match group with
                | [] -> []
                | first :: rest ->
                    let glo, ghi =
                      List.fold_left
                        (fun (mn, mx) c ->
                          ( (if d1_of c < d1_of mn then c else mn),
                            if d1_of c > d1_of mx then c else mx ))
                        (first, first) rest
                    in
                    let gmid =
                      List.fold_left
                        (fun best c ->
                          if c == glo || c == ghi then best
                          else
                            let gt = (d1_of glo + d1_of ghi) / 2 in
                            match best with
                            | Some b
                              when abs (d1_of b - gt) <= abs (d1_of c - gt) ->
                                best
                            | _ -> Some c)
                        None group
                    in
                    List.filter_map Fun.id
                      [ Some glo; gmid; (if ghi == glo then None else Some ghi) ])
              bounds
          in
          let probes = (lo :: Option.to_list mid) @ (hi :: capped) in
          let timed = List.combine probes (profile_batch probes) in
          let time_of c = List.assq c timed in
          Hfuse_costmodel.calibrate_probes inputs
            ~lo:(lo, time_of lo)
            ?mid:(Option.map (fun c -> (c, time_of c)) mid)
            ~capped:(List.map (fun c -> (c, time_of c)) capped)
            ~hi:(hi, time_of hi)
            ()
      | _ -> inputs
    in
    Checkpoint.flush checkpoint;
    Hfuse_costmodel.rank inputs candidates
  in
  (* the histogram hook fires for every finally-rejected partition —
     including when the verifier rejects them all and [Search.search]
     raises, where [result.rejected] is unreachable *)
  let on_reject _partition ds = count_rejections stats ds in
  let repair_cb =
    if not repair then None
    else
      Some
        (fun ~k1 ~k2 (_ds : Hfuse_analysis.Diag.t list) ->
          stats.repair_attempted <- stats.repair_attempted + 1;
          match
            Hfuse_repair.Repair.attempt ~limits:(Arch.sm_limits arch) k1 k2
          with
          | Error _ -> None
          | Ok (r : Hfuse_repair.Repair.repaired) ->
              if repair_gate ~s c1 c2 r.fused then begin
                stats.repaired <- stats.repaired + 1;
                Some
                  {
                    Hfuse_core.Search.r_fused = r.fused;
                    r_reg_bound = r.reg_bound;
                  }
              end
              else begin
                stats.repair_unsound <- stats.repair_unsound + 1;
                None
              end)
  in
  let result =
    Hfuse_core.Search.search
      ~limits:(Arch.sm_limits arch)
      ~profile_batch ~profile ~rank ?top_k ?repair:repair_cb ~on_reject
      ~d0:(d0_for c1 c2) c1.info c2.info
  in
  stats.ranked <-
    stats.ranked
    + List.length result.Hfuse_core.Search.scores
    + List.length result.Hfuse_core.Search.pruned;
  stats.pruned <- stats.pruned + List.length result.Hfuse_core.Search.pruned;
  (* Model quality is only measurable against an exhaustive sweep: a
     pruned run has no ground truth beyond its own window (its best IS
     the window's best, regret trivially zero), so the verdict is
     recorded only when no pruning was requested. *)
  (if top_k = None then
     match
       model_eval ~k:Hfuse_costmodel.default_top_k
         ~scores:result.Hfuse_core.Search.scores
         ~times:
           (List.map
              (fun (c : Hfuse_core.Search.candidate) -> c.time)
              result.Hfuse_core.Search.all)
         ()
     with
     | Some (_, regret) ->
         stats.rank_total <- stats.rank_total + 1;
         if regret <= 0.0 then stats.rank_agree <- stats.rank_agree + 1;
         if regret > stats.max_regret_pct then stats.max_regret_pct <- regret
     | None -> ());
  if not (Float.is_finite result.Hfuse_core.Search.best.Hfuse_core.Search.time)
  then
    failwith
      (Printf.sprintf "Runner.search: every candidate of %s + %s failed to profile"
         c1.spec.name c2.spec.name);
  if stats.failed > failed_before then
    Printf.eprintf
      "hfuse: warning: search %s + %s degraded: %d candidate(s) failed, best \
       is best-of-completed\n\
       %!"
      c1.spec.name c2.spec.name
      (stats.failed - failed_before);
  result

let naive_hfuse (c1 : configured) (c2 : configured) : Hfuse_core.Hfuse.t option
    =
  Hfuse_core.Search.naive ~d0:(d0_for c1 c2) c1.info c2.info

(* ------------------------------------------------------------------ *)
(* Correctness validation (full functional execution)                   *)
(* ------------------------------------------------------------------ *)

(** Run the fused kernel over the whole grid in fresh memory and check
    both kernels' outputs against their host references. *)
let validate_hfuse ?settings (s1 : Spec.t) ~(size1 : int) (s2 : Spec.t)
    ~(size2 : int) ~(d1 : int) ~(d2 : int) : (unit, string) result =
  let s = resolved settings in
  (* retried from scratch on an injected hang: the whole run restarts
     with fresh memory, so a partial first execution cannot leak into
     the correctness check *)
  Fault.with_retries ~key:(Hashtbl.hash (s1.Spec.name, s2.Spec.name, d1, d2))
  @@ fun () ->
  let mem = Memory.create () in
  let i1 = s1.instantiate mem ~size:size1 in
  let i2 = s2.instantiate mem ~size:size2 in
  let k1 =
    Hfuse_core.Kernel_info.with_block_dim (Spec.kernel_info s1 i1) d1
  in
  let k2 =
    Hfuse_core.Kernel_info.with_block_dim (Spec.kernel_info s2 i2) d2
  in
  match Hfuse_core.Hfuse.generate k1 k2 with
  | exception Hfuse_core.Fuse_common.Fusion_error e -> Error e
  | f -> (
      let finfo = Hfuse_core.Hfuse.info f in
      match
        Launch.launch_info ?fault:s.Settings.fault
          ~loop_fuel:s.Settings.sim_fuel mem finfo ~args:(i1.args @ i2.args)
          ~trace_blocks:0
      with
      | exception Launch.Deadlock e -> Error e
      | _ -> (
          match i1.check mem with
          | Error _ as e -> e
          | Ok () -> i2.check mem))

let validate_vfuse ?settings (s1 : Spec.t) ~(size1 : int) (s2 : Spec.t)
    ~(size2 : int) : (unit, string) result =
  let s = resolved settings in
  Fault.with_retries ~key:(Hashtbl.hash (s1.Spec.name, s2.Spec.name))
  @@ fun () ->
  let mem = Memory.create () in
  let i1 = s1.instantiate mem ~size:size1 in
  let i2 = s2.instantiate mem ~size:size2 in
  let c1 = { spec = s1; size = size1; info = Spec.kernel_info s1 i1; inst = i1; mem } in
  let c2 = { spec = s2; size = size2; info = Spec.kernel_info s2 i2; inst = i2; mem } in
  match vfuse_generate c1 c2 with
  | exception Hfuse_core.Fuse_common.Fusion_error e -> Error e
  | v -> (
      let vinfo = Hfuse_core.Vfuse.info v in
      match
        Launch.launch_info ?fault:s.Settings.fault
          ~loop_fuel:s.Settings.sim_fuel mem vinfo ~args:(i1.args @ i2.args)
          ~trace_blocks:0
      with
      | exception Launch.Deadlock e -> Error e
      | _ -> (
          match i1.check mem with
          | Error _ as e -> e
          | Ok () -> i2.check mem))

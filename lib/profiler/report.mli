(** Text renderings of the evaluation artifacts, in the shape the paper
    prints them ("X / Y" cells are 1080Ti / V100). *)

val pair_name : Kernel_corpus.Spec.t * Kernel_corpus.Spec.t -> string
val render_sweep : Buffer.t -> Experiment.sweep -> unit
val figure7_to_string : Experiment.sweep list -> string
val figure8_to_string : Experiment.kernel_row list -> string
val figure9_to_string : Experiment.fused_row list -> string

(** Minimal JSON emitter for the machine-readable bench artifacts
    ([BENCH_figN.json]); floats are printed with the shortest
    round-tripping decimal (non-finite values become [null]). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val opt : ('a -> t) -> 'a option -> t
  val to_string : t -> string

  (** Compact single-line rendering (no trailing newline; raw newlines
      only ever appear escaped inside strings) — the daemon's
      newline-delimited wire framing.  {!of_string} reads both forms. *)
  val to_line : t -> string

  (** Parse the subset of JSON {!to_string} emits (sufficient for any
      output of this module; numbers become [Int] when they have no
      fraction or exponent).  Used by the bench regression gate to read
      committed baseline reports. *)
  val of_string : string -> (t, string) result

  (** [member k (Obj ...)] is the value bound to [k], if any. *)
  val member : string -> t -> t option

  (** Numeric coercion: [Int]s widen to float. *)
  val to_float_opt : t -> float option
end

val json_of_metrics : Gpusim.Metrics.t -> Json.t
val json_of_engine_stats : Gpusim.Timing.engine_stats -> Json.t
val json_of_search_stats : Runner.search_stats -> Json.t

(** Cumulative trace-store counters plus current memory-tier occupancy
    ([mem_entries]/[mem_bytes] are sampled at render time). *)
val json_of_trace_tally : Trace_store.tally -> Json.t

val json_of_cache : Profile_cache.t -> Json.t
val figure7_json : Experiment.sweep list -> Json.t
val figure8_json : Experiment.kernel_row list -> Json.t
val figure9_json : Experiment.fused_row list -> Json.t

(* The paper's evaluation (Section IV), experiment by experiment:

   - Figure 7: speedup vs execution-time ratio for all 16 benchmark
     pairs, comparing HFuse, VFuse and (for deep-learning pairs) the
     Naive even partition, on both GPU models.
   - Figure 8: metrics of the 9 individual kernels at representative
     workloads whose pairwise execution-time ratios are close to one.
   - Figure 9: metrics of the 16 HFuse fused kernels, with and without
     the register bound.

   Every figure runs in two phases.  Phase 1 is serial on the calling
   domain: workload configuration, trace acquisition and the Fig. 6
   searches (tracing interprets kernels in [Memory.t], which is
   single-domain state) — measurement replays are only *described*, as
   (arch, launch-spec list) entries pushed onto a run list in the same
   order the old serial code executed them.  Phase 2 fans the pure
   [Timing.run] replays over one shared [Hfuse_parallel.Pool]
   ([Runner.run_many], order-preserving).  Because tracing order — and
   hence [Memory.t] evolution — is unchanged and replays are pure,
   every figure is bit-identical to the serial path for any [jobs]. *)

open Gpusim
open Kernel_corpus

(* ------------------------------------------------------------------ *)
(* Representative workloads                                             *)
(* ------------------------------------------------------------------ *)

(** Pick per-kernel sizes so solo execution times land close to a common
    target (the paper: "we select a representative input size so that
    the execution time ratios of the benchmark pairs are close to one",
    Section IV-A).  Assumes work scales ~linearly with [size], which
    holds for the whole corpus (spatial width or hash iterations). *)
let rep_cache : (string, (string * int) list) Hashtbl.t = Hashtbl.create 4

let representative_sizes_uncached ?pool ?cache ?checkpoint (arch : Arch.t) :
    (string * int) list =
  let mem = Memory.create () in
  (* configure+trace each kernel in registry order, then replay pooled *)
  let prepped =
    List.map
      (fun (s : Spec.t) ->
        let c = Runner.configure mem s ~size:s.default_size in
        (s, (arch, [ Runner.spec_of c ~stream:0 () ])))
      Registry.all
  in
  let reports =
    Runner.run_many ?pool ?cache ?checkpoint
      (Array.of_list (List.map snd prepped))
  in
  let timed =
    List.mapi (fun i (s, _) -> (s, reports.(i).Timing.time_ms)) prepped
  in
  let times = List.map snd timed |> List.sort compare in
  let target = List.nth times (List.length times / 2) in
  List.map
    (fun ((s : Spec.t), t) ->
      let scaled =
        int_of_float
          (Float.round (float_of_int s.default_size *. target /. t))
      in
      (s.name, max 1 scaled))
    timed

let representative_sizes ?pool ?cache ?checkpoint (arch : Arch.t) :
    (string * int) list =
  match Hashtbl.find_opt rep_cache arch.Arch.name with
  | Some sizes -> sizes
  | None ->
      let sizes = representative_sizes_uncached ?pool ?cache ?checkpoint arch in
      Hashtbl.replace rep_cache arch.Arch.name sizes;
      sizes

let size_of sizes (s : Spec.t) =
  match List.assoc_opt s.name sizes with Some n -> n | None -> s.default_size

(* A run list under construction: phase 1 pushes (arch, specs) entries
   and remembers their indices into the phase-2 report array. *)
type runlist = {
  mutable rl_rev : (Arch.t * Timing.launch_spec list) list;
  mutable rl_n : int;
}

let runlist () = { rl_rev = []; rl_n = 0 }

let push rl entry =
  rl.rl_rev <- entry :: rl.rl_rev;
  rl.rl_n <- rl.rl_n + 1;
  rl.rl_n - 1

let runs_of rl = Array.of_list (List.rev rl.rl_rev)

(* ------------------------------------------------------------------ *)
(* Figure 7: ratio sweeps                                               *)
(* ------------------------------------------------------------------ *)

type point = {
  size1 : int;
  size2 : int;
  ratio : float;  (** solo time of kernel 1 / solo time of kernel 2 *)
  native_ms : float;
  hfuse_ms : float;
  hfuse_d1 : int;
  hfuse_d2 : int;
  hfuse_reg_bound : int option;
  vfuse_ms : float option;  (** [None] when vertical fusion is illegal *)
  naive_ms : float option;  (** even partition; deep-learning pairs only *)
}

let speedup ~native ~fused = 100.0 *. ((native /. fused) -. 1.0)

type sweep = {
  pair : Spec.t * Spec.t;
  arch : Arch.t;
  varied_first : bool;  (** the paper stars the kernel whose size varies *)
  points : point list;
}

let avg xs =
  match xs with
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let avg_hfuse_speedup (s : sweep) =
  avg
    (List.map (fun p -> speedup ~native:p.native_ms ~fused:p.hfuse_ms) s.points)

let avg_vfuse_speedup (s : sweep) =
  avg
    (List.filter_map
       (fun p ->
         Option.map
           (fun v -> speedup ~native:p.native_ms ~fused:v)
           p.vfuse_ms)
       s.points)

let default_multipliers = [ 0.25; 0.5; 1.0; 2.0; 4.0 ]

(** Sweep one pair on one arch: vary the first kernel's size over
    [multipliers] x its representative size.  [jobs]/[pool]/[cache] are
    passed through to {!Runner.search} and the measurement fan-out. *)
let sweep_pair ?(multipliers = default_multipliers) ?jobs ?pool ?cache
    ?checkpoint ?top_k (arch : Arch.t) (sizes : (string * int) list)
    ((s1, s2) : Spec.t * Spec.t) : sweep =
  let mem = Memory.create () in
  let base1 = size_of sizes s1 and size2 = size_of sizes s2 in
  let rl = runlist () in
  (* phase 1: configure, trace and search each point in order *)
  let prepped =
    List.map
      (fun m ->
        let size1 =
          max 1 (int_of_float (Float.round (float_of_int base1 *. m)))
        in
        let c1 = Runner.configure mem s1 ~size:size1 in
        let c2 = Runner.configure mem s2 ~size:size2 in
        let i1 = push rl (arch, [ Runner.spec_of c1 ~stream:0 () ]) in
        let i2 = push rl (arch, [ Runner.spec_of c2 ~stream:0 () ]) in
        let inat =
          push rl
            ( arch,
              [ Runner.spec_of c1 ~stream:0 (); Runner.spec_of c2 ~stream:1 () ]
            )
        in
        let sr = Runner.search ?jobs ?pool ?cache ?checkpoint ?top_k arch c1 c2 in
        let best = sr.Hfuse_core.Search.best in
        let ivf =
          match Runner.vfuse_generate c1 c2 with
          | v -> Some (push rl (arch, [ Runner.vfuse_spec c1 c2 v ]))
          | exception Hfuse_core.Fuse_common.Fusion_error _ -> None
        in
        let inv =
          if s1.kind = Spec.Deep_learning && s2.kind = Spec.Deep_learning
          then
            match Runner.naive_hfuse c1 c2 with
            | Some f ->
                let traces = Runner.hfuse_traces c1 c2 f in
                Some
                  (push rl
                     (arch, [ Runner.hfuse_spec f ~reg_bound:None ~traces ]))
            | None -> None
          else None
        in
        (size1, i1, i2, inat, best, ivf, inv))
      multipliers
  in
  (* phase 2: pure measurement replays, fanned over the pool *)
  let reports = Runner.run_many ?pool ?jobs ?cache ?checkpoint (runs_of rl) in
  let points =
    List.map
      (fun (size1, i1, i2, inat, best, ivf, inv) ->
        let t1 = reports.(i1).Timing.time_ms in
        let t2 = reports.(i2).Timing.time_ms in
        {
          size1;
          size2;
          ratio = t1 /. t2;
          native_ms = reports.(inat).Timing.time_ms;
          hfuse_ms = best.Hfuse_core.Search.time;
          hfuse_d1 = best.Hfuse_core.Search.fused.Hfuse_core.Hfuse.d1;
          hfuse_d2 = best.Hfuse_core.Search.fused.Hfuse_core.Hfuse.d2;
          hfuse_reg_bound =
            best.Hfuse_core.Search.config.Hfuse_core.Search.reg_bound;
          vfuse_ms = Option.map (fun i -> reports.(i).Timing.time_ms) ivf;
          naive_ms = Option.map (fun i -> reports.(i).Timing.time_ms) inv;
        })
      prepped
  in
  { pair = (s1, s2); arch; varied_first = true; points }

(** The full Figure 7: 16 pairs x 2 architectures, one shared pool. *)
let figure7 ?multipliers ?(jobs = 1) ?cache ?checkpoint ?top_k ?(archs = Arch.all)
    ?(pairs = Registry.all_pairs) () : sweep list =
  Hfuse_parallel.Pool.with_pool jobs (fun pool ->
      List.concat_map
        (fun arch ->
          let sizes = representative_sizes ~pool ?cache ?checkpoint arch in
          List.map
            (fun pair ->
              sweep_pair ?multipliers ~pool ?cache ?checkpoint ?top_k arch sizes pair)
            pairs)
        archs)

(* ------------------------------------------------------------------ *)
(* Figure 8: individual kernel metrics                                  *)
(* ------------------------------------------------------------------ *)

type kernel_row = {
  kernel : Spec.t;
  per_arch : (Arch.t * Metrics.t) list;  (** in [archs] order *)
}

let figure8 ?(jobs = 1) ?pool ?cache ?checkpoint ?(archs = Arch.all) () :
    kernel_row list =
  let go pool =
    let rl = runlist () in
    let prepped =
      List.map
        (fun (s : Spec.t) ->
          ( s,
            List.map
              (fun arch ->
                let sizes = representative_sizes ~pool ?cache ?checkpoint arch in
                let mem = Memory.create () in
                let c = Runner.configure mem s ~size:(size_of sizes s) in
                (arch, push rl (arch, [ Runner.spec_of c ~stream:0 () ])))
              archs ))
        Registry.all
    in
    let reports = Runner.run_many ~pool ?cache ?checkpoint (runs_of rl) in
    List.map
      (fun ((s : Spec.t), per_arch) ->
        {
          kernel = s;
          per_arch =
            List.map
              (fun (arch, i) ->
                (arch, Metrics.of_report ~label:s.name reports.(i)))
              per_arch;
        })
      prepped
  in
  match pool with
  | Some p -> go p
  | None -> Hfuse_parallel.Pool.with_pool jobs go

(* ------------------------------------------------------------------ *)
(* Figure 9: fused kernel metrics, RegCap vs N-RegCap                   *)
(* ------------------------------------------------------------------ *)

type fused_variant = {
  speedup_pct : float;  (** vs native parallel-stream execution *)
  metrics : Metrics.t;
  d1 : int;
  d2 : int;
  reg_bound : int option;
}

type fused_row = {
  f_pair : Spec.t * Spec.t;
  f_arch : Arch.t;
  native_util : float;  (** cycle-weighted average of the two solos *)
  no_regcap : fused_variant;
  regcap : fused_variant option;
      (** [None] when the bound is not computable (b0 = 0) *)
}

(* phase-1 product for one fig-9 row: run indices + the searched fusion *)
type f9_prep = {
  p_pair : Spec.t * Spec.t;
  p_arch : Arch.t;
  p_i1 : int;
  p_i2 : int;
  p_inat : int;
  p_fused : Hfuse_core.Hfuse.t;
  p_ihf0 : int;  (** index of the unbounded variant's replay *)
  p_regcap : (int * int) option;  (** (r0, replay index) *)
}

let f9_prepare ?jobs ?pool ?cache ?checkpoint ?top_k (arch : Arch.t)
    (sizes : (string * int) list) ((s1, s2) : Spec.t * Spec.t) rl : f9_prep =
  let mem = Memory.create () in
  let c1 = Runner.configure mem s1 ~size:(size_of sizes s1) in
  let c2 = Runner.configure mem s2 ~size:(size_of sizes s2) in
  let i1 = push rl (arch, [ Runner.spec_of c1 ~stream:0 () ]) in
  let i2 = push rl (arch, [ Runner.spec_of c2 ~stream:0 () ]) in
  let inat =
    push rl
      (arch, [ Runner.spec_of c1 ~stream:0 (); Runner.spec_of c2 ~stream:1 () ])
  in
  let sr = Runner.search ?jobs ?pool ?cache ?checkpoint ?top_k arch c1 c2 in
  let fused = sr.Hfuse_core.Search.best.Hfuse_core.Search.fused in
  let traces = Runner.hfuse_traces c1 c2 fused in
  let ihf0 = push rl (arch, [ Runner.hfuse_spec fused ~reg_bound:None ~traces ]) in
  let fused_smem =
    Hfuse_core.Kernel_info.smem_total (Hfuse_core.Hfuse.info fused)
  in
  let r0 =
    Hfuse_core.Occupancy.register_bound
      (Arch.sm_limits arch)
      ~d1:fused.Hfuse_core.Hfuse.d1 ~regs1:s1.regs
      ~d2:fused.Hfuse_core.Hfuse.d2 ~regs2:s2.regs ~fused_smem
  in
  let regcap =
    Option.map
      (fun r ->
        ( r,
          push rl
            (arch, [ Runner.hfuse_spec fused ~reg_bound:(Some r) ~traces ]) ))
      r0
  in
  {
    p_pair = (s1, s2);
    p_arch = arch;
    p_i1 = i1;
    p_i2 = i2;
    p_inat = inat;
    p_fused = fused;
    p_ihf0 = ihf0;
    p_regcap = regcap;
  }

let f9_row (reports : Timing.report array) (p : f9_prep) : fused_row =
  let s1, s2 = p.p_pair in
  let m1 = Metrics.of_report ~label:s1.Spec.name reports.(p.p_i1) in
  let m2 = Metrics.of_report ~label:s2.Spec.name reports.(p.p_i2) in
  let native = reports.(p.p_inat).Timing.time_ms in
  let fused = p.p_fused in
  let variant reg_bound (r : Timing.report) =
    {
      speedup_pct = speedup ~native ~fused:r.Timing.time_ms;
      metrics = Metrics.of_report ~label:fused.Hfuse_core.Hfuse.fn.f_name r;
      d1 = fused.Hfuse_core.Hfuse.d1;
      d2 = fused.Hfuse_core.Hfuse.d2;
      reg_bound;
    }
  in
  {
    f_pair = p.p_pair;
    f_arch = p.p_arch;
    native_util = Metrics.weighted_issue_util [ m1; m2 ];
    no_regcap = variant None reports.(p.p_ihf0);
    regcap =
      Option.map (fun (r, i) -> variant (Some r) reports.(i)) p.p_regcap;
  }

let figure9_pair ?jobs ?pool ?cache ?checkpoint ?top_k (arch : Arch.t)
    (sizes : (string * int) list) (pair : Spec.t * Spec.t) : fused_row =
  let rl = runlist () in
  let prep = f9_prepare ?jobs ?pool ?cache ?checkpoint ?top_k arch sizes pair rl in
  let reports = Runner.run_many ?pool ?jobs ?cache ?checkpoint (runs_of rl) in
  f9_row reports prep

(** Figure 9 over all pairs and architectures: every pair's traces and
    search run serially (phase 1), then a single pool-wide fan-out
    replays all measurement runs at once. *)
let figure9 ?(jobs = 1) ?cache ?checkpoint ?top_k ?(archs = Arch.all)
    ?(pairs = Registry.all_pairs) () : fused_row list =
  Hfuse_parallel.Pool.with_pool jobs (fun pool ->
      let rl = runlist () in
      let preps =
        List.concat_map
          (fun arch ->
            let sizes = representative_sizes ~pool ?cache ?checkpoint arch in
            List.map
              (fun pair ->
                f9_prepare ~pool ?cache ?checkpoint ?top_k arch sizes pair rl)
              pairs)
          archs
      in
      let reports = Runner.run_many ~pool ?cache ?checkpoint (runs_of rl) in
      List.map (f9_row reports) preps)

(* The paper's evaluation (Section IV), experiment by experiment:

   - Figure 7: speedup vs execution-time ratio for all 16 benchmark
     pairs, comparing HFuse, VFuse and (for deep-learning pairs) the
     Naive even partition, on both GPU models.
   - Figure 8: metrics of the 9 individual kernels at representative
     workloads whose pairwise execution-time ratios are close to one.
   - Figure 9: metrics of the 16 HFuse fused kernels, with and without
     the register bound. *)

open Gpusim
open Kernel_corpus

(* ------------------------------------------------------------------ *)
(* Representative workloads                                             *)
(* ------------------------------------------------------------------ *)

(** Pick per-kernel sizes so solo execution times land close to a common
    target (the paper: "we select a representative input size so that
    the execution time ratios of the benchmark pairs are close to one",
    Section IV-A).  Assumes work scales ~linearly with [size], which
    holds for the whole corpus (spatial width or hash iterations). *)
let rep_cache : (string, (string * int) list) Hashtbl.t = Hashtbl.create 4

let representative_sizes_uncached (arch : Arch.t) : (string * int) list =
  let mem = Memory.create () in
  let solo_default (s : Spec.t) =
    let c = Runner.configure mem s ~size:s.default_size in
    (s, (Runner.solo arch c).Timing.time_ms)
  in
  let timed = List.map solo_default Registry.all in
  let times = List.map snd timed |> List.sort compare in
  let target = List.nth times (List.length times / 2) in
  List.map
    (fun ((s : Spec.t), t) ->
      let scaled =
        int_of_float
          (Float.round (float_of_int s.default_size *. target /. t))
      in
      (s.name, max 1 scaled))
    timed

let representative_sizes (arch : Arch.t) : (string * int) list =
  match Hashtbl.find_opt rep_cache arch.Arch.name with
  | Some sizes -> sizes
  | None ->
      let sizes = representative_sizes_uncached arch in
      Hashtbl.replace rep_cache arch.Arch.name sizes;
      sizes

let size_of sizes (s : Spec.t) =
  match List.assoc_opt s.name sizes with Some n -> n | None -> s.default_size

(* ------------------------------------------------------------------ *)
(* Figure 7: ratio sweeps                                               *)
(* ------------------------------------------------------------------ *)

type point = {
  size1 : int;
  size2 : int;
  ratio : float;  (** solo time of kernel 1 / solo time of kernel 2 *)
  native_ms : float;
  hfuse_ms : float;
  hfuse_d1 : int;
  hfuse_d2 : int;
  hfuse_reg_bound : int option;
  vfuse_ms : float option;  (** [None] when vertical fusion is illegal *)
  naive_ms : float option;  (** even partition; deep-learning pairs only *)
}

let speedup ~native ~fused = 100.0 *. ((native /. fused) -. 1.0)

type sweep = {
  pair : Spec.t * Spec.t;
  arch : Arch.t;
  varied_first : bool;  (** the paper stars the kernel whose size varies *)
  points : point list;
}

let avg xs =
  match xs with
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let avg_hfuse_speedup (s : sweep) =
  avg
    (List.map (fun p -> speedup ~native:p.native_ms ~fused:p.hfuse_ms) s.points)

let avg_vfuse_speedup (s : sweep) =
  avg
    (List.filter_map
       (fun p ->
         Option.map
           (fun v -> speedup ~native:p.native_ms ~fused:v)
           p.vfuse_ms)
       s.points)

let default_multipliers = [ 0.25; 0.5; 1.0; 2.0; 4.0 ]

(** Sweep one pair on one arch: vary the first kernel's size over
    [multipliers] x its representative size.  [jobs]/[cache] are passed
    through to {!Runner.search}. *)
let sweep_pair ?(multipliers = default_multipliers) ?jobs ?cache
    (arch : Arch.t) (sizes : (string * int) list)
    ((s1, s2) : Spec.t * Spec.t) : sweep =
  let mem = Memory.create () in
  let base1 = size_of sizes s1 and size2 = size_of sizes s2 in
  let points =
    List.map
      (fun m ->
        let size1 =
          max 1 (int_of_float (Float.round (float_of_int base1 *. m)))
        in
        let c1 = Runner.configure mem s1 ~size:size1 in
        let c2 = Runner.configure mem s2 ~size:size2 in
        let t1 = (Runner.solo arch c1).Timing.time_ms in
        let t2 = (Runner.solo arch c2).Timing.time_ms in
        let native = (Runner.native arch c1 c2).Timing.time_ms in
        let sr = Runner.search ?jobs ?cache arch c1 c2 in
        let best = sr.Hfuse_core.Search.best in
        let vfuse_ms =
          match Runner.vfuse_generate c1 c2 with
          | v -> Some (Runner.vfuse_report arch c1 c2 v).Timing.time_ms
          | exception Hfuse_core.Fuse_common.Fusion_error _ -> None
        in
        let naive_ms =
          if s1.kind = Spec.Deep_learning && s2.kind = Spec.Deep_learning
          then
            match Runner.naive_hfuse c1 c2 with
            | Some f ->
                Some
                  (Runner.hfuse_report arch c1 c2 f ~reg_bound:None)
                    .Timing.time_ms
            | None -> None
          else None
        in
        {
          size1;
          size2;
          ratio = t1 /. t2;
          native_ms = native;
          hfuse_ms = best.Hfuse_core.Search.time;
          hfuse_d1 = best.Hfuse_core.Search.fused.Hfuse_core.Hfuse.d1;
          hfuse_d2 = best.Hfuse_core.Search.fused.Hfuse_core.Hfuse.d2;
          hfuse_reg_bound =
            best.Hfuse_core.Search.config.Hfuse_core.Search.reg_bound;
          vfuse_ms;
          naive_ms;
        })
      multipliers
  in
  { pair = (s1, s2); arch; varied_first = true; points }

(** The full Figure 7: 16 pairs x 2 architectures. *)
let figure7 ?multipliers ?jobs ?cache ?(archs = Arch.all)
    ?(pairs = Registry.all_pairs) () : sweep list =
  List.concat_map
    (fun arch ->
      let sizes = representative_sizes arch in
      List.map
        (fun pair -> sweep_pair ?multipliers ?jobs ?cache arch sizes pair)
        pairs)
    archs

(* ------------------------------------------------------------------ *)
(* Figure 8: individual kernel metrics                                  *)
(* ------------------------------------------------------------------ *)

type kernel_row = {
  kernel : Spec.t;
  per_arch : (Arch.t * Metrics.t) list;  (** in [archs] order *)
}

let figure8 ?(archs = Arch.all) () : kernel_row list =
  List.map
    (fun (s : Spec.t) ->
      {
        kernel = s;
        per_arch =
          List.map
            (fun arch ->
              let sizes = representative_sizes arch in
              let mem = Memory.create () in
              let c = Runner.configure mem s ~size:(size_of sizes s) in
              (arch, Metrics.of_report ~label:s.name (Runner.solo arch c)))
            archs;
      })
    Registry.all

(* ------------------------------------------------------------------ *)
(* Figure 9: fused kernel metrics, RegCap vs N-RegCap                   *)
(* ------------------------------------------------------------------ *)

type fused_variant = {
  speedup_pct : float;  (** vs native parallel-stream execution *)
  metrics : Metrics.t;
  d1 : int;
  d2 : int;
  reg_bound : int option;
}

type fused_row = {
  f_pair : Spec.t * Spec.t;
  f_arch : Arch.t;
  native_util : float;  (** cycle-weighted average of the two solos *)
  no_regcap : fused_variant;
  regcap : fused_variant option;
      (** [None] when the bound is not computable (b0 = 0) *)
}

let figure9_pair ?jobs ?cache (arch : Arch.t) (sizes : (string * int) list)
    ((s1, s2) : Spec.t * Spec.t) : fused_row =
  let mem = Memory.create () in
  let c1 = Runner.configure mem s1 ~size:(size_of sizes s1) in
  let c2 = Runner.configure mem s2 ~size:(size_of sizes s2) in
  let m1 = Metrics.of_report ~label:s1.name (Runner.solo arch c1) in
  let m2 = Metrics.of_report ~label:s2.name (Runner.solo arch c2) in
  let native = (Runner.native arch c1 c2).Timing.time_ms in
  let sr = Runner.search ?jobs ?cache arch c1 c2 in
  (* variants at the searched-best partition *)
  let best = sr.Hfuse_core.Search.best in
  let fused = best.Hfuse_core.Search.fused in
  let variant reg_bound =
    let r = Runner.hfuse_report arch c1 c2 fused ~reg_bound in
    {
      speedup_pct = speedup ~native ~fused:r.Timing.time_ms;
      metrics = Metrics.of_report ~label:fused.Hfuse_core.Hfuse.fn.f_name r;
      d1 = fused.Hfuse_core.Hfuse.d1;
      d2 = fused.Hfuse_core.Hfuse.d2;
      reg_bound;
    }
  in
  let fused_smem =
    Hfuse_core.Kernel_info.smem_total (Hfuse_core.Hfuse.info fused)
  in
  let r0 =
    Hfuse_core.Occupancy.register_bound
      (Arch.sm_limits arch)
      ~d1:fused.Hfuse_core.Hfuse.d1 ~regs1:s1.regs
      ~d2:fused.Hfuse_core.Hfuse.d2 ~regs2:s2.regs ~fused_smem
  in
  {
    f_pair = (s1, s2);
    f_arch = arch;
    native_util = Metrics.weighted_issue_util [ m1; m2 ];
    no_regcap = variant None;
    regcap = Option.map (fun r -> variant (Some r)) r0;
  }

let figure9 ?jobs ?cache ?(archs = Arch.all) ?(pairs = Registry.all_pairs)
    () : fused_row list =
  List.concat_map
    (fun arch ->
      let sizes = representative_sizes arch in
      List.map (figure9_pair ?jobs ?cache arch sizes) pairs)
    archs

(** Persistent on-disk cache of profiled candidate times.

    Keys are content hashes of everything a candidate's simulated time
    depends on (GPU model, fused source, partition, launch geometry,
    register bound, workload sizes, trace-block count), so repeated
    [bench] / [hfuse search] sweeps skip the simulator entirely and the
    cache self-invalidates when any input — including the compiler's
    emitted source — changes.

    Crash safety: every entry under [dir]/v2/ carries a one-line header
    with an MD5 checksum of its payload and is committed with a unique
    temp file + atomic rename.  An entry whose header or checksum fails
    (torn write from a crash, bit flip, truncation) is moved to
    [<root>/quarantine/<key>] for post-mortem, counted in {!corrupt},
    and treated as a miss, so the value is recomputed and re-stored —
    a corrupted cache can slow a run down but never change its result.
    Lookups and stores must stay on the search's coordinating domain. *)

type t

(** Entry-format/version tag baked into paths and keys. *)
val version : string

(** Default cache directory ([_hfuse_cache], relative to the cwd). *)
val default_dir : string

(** An enabled cache rooted at [dir] (default {!default_dir}).
    [fault] scopes this handle's chaos-corruption draws to an explicit
    plan (e.g. one server request's); omitted, the installed process
    plan applies. *)
val create : ?dir:string -> ?fault:Hfuse_fault.Fault.plan -> unit -> t

(** A cache that never hits and never stores. *)
val disabled : unit -> t

(** The environment's cache-root answer: [None] when disabled
    ([HFUSE_CACHE=0] or nothing set), [Some root] when enabled
    ([HFUSE_CACHE_DIR=path], or [HFUSE_CACHE=1] for {!default_dir}).
    Lets a per-request settings record capture the resolution once. *)
val env_dir : unit -> string option

(** Handle from a resolved root: [Some dir] enables, [None] disables. *)
val of_dir : ?fault:Hfuse_fault.Fault.plan -> string option -> t

(** Configuration from the environment: [of_dir (env_dir ())]. *)
val from_env : unit -> t

val enabled : t -> bool

(** Versioned entry directory (empty for a disabled cache). *)
val dir : t -> string

(** Directory-creation helper shared with the checkpoint journal:
    [mkdir -p] semantics that tolerate concurrent creators (EEXIST from
    a racing worker or process is success, not an error). *)
val mkdir_p : string -> unit

(** Content hash identifying one profiled candidate. *)
val key :
  arch:string ->
  source:string ->
  d1:int ->
  d2:int ->
  grid:int ->
  smem_dynamic:int ->
  regs:int ->
  reg_bound:int option ->
  k1:string ->
  size1:int ->
  k2:string ->
  size2:int ->
  trace_blocks:int ->
  string

(** Cached time for [key], if present and well-formed.  Counts a hit or
    a miss; a checksum-failing entry is quarantined and counts as both
    a miss and a {!corrupt}. *)
val find : t -> key:string -> float option

(** Persist a time for [key] (no-op when disabled). *)
val store : t -> key:string -> float -> unit

(** Content hash identifying one measurement replay: the launch specs
    and the packed traces themselves (hashed in full), plus the GPU
    model and dispatch policy.  Any trace change self-invalidates. *)
val report_key :
  arch:string -> policy:string -> Gpusim.Timing.launch_spec list -> string

(** Cached report (with the engine stats of the replay that produced
    it) for [key], if present and well-formed.  Bit-identical to
    re-running the engine: every counter is stored exactly and every
    float as a [%h] hex literal.  Counts a hit or a miss. *)
val find_report :
  t -> key:string -> (Gpusim.Timing.report * Gpusim.Timing.engine_stats) option

(** Persist a report and its engine stats (no-op when disabled). *)
val store_report :
  t ->
  key:string ->
  Gpusim.Timing.report * Gpusim.Timing.engine_stats ->
  unit

(** Exact textual payload encodings, shared with the checkpoint
    journal.  [encode_time]/[encode_report] round-trip bit-identically
    through their decoders; the decoders raise [Failure] on malformed
    input. *)
val encode_time : float -> string

val decode_time : string -> float
val encode_report : Gpusim.Timing.report * Gpusim.Timing.engine_stats -> string
val decode_report : string -> Gpusim.Timing.report * Gpusim.Timing.engine_stats

(** Lifetime counters for this handle. *)
val hits : t -> int

val misses : t -> int
val stores : t -> int

(** Entries quarantined after a header/checksum/decode failure. *)
val corrupt : t -> int

(** ["N hits, M misses, K stores(, J quarantined)"], or ["disabled"]. *)
val pp_stats : t Fmt.t

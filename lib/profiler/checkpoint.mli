(** Crash-safe checkpoint journal for interrupted runs.

    A journal records every profiled result of one logical run — the
    candidate times of the Fig. 6 searches and the full measurement
    replays — as it is produced, so a run killed mid-flight (crash,
    SIGKILL, Ctrl-C) can be resumed with [--resume]: already-journaled
    work is answered from the journal and only the remainder is
    recomputed.  Because every entry stores its value exactly (the
    {!Profile_cache} [%h] encodings) and lookups happen at the same
    points of the same deterministic schedule, an interrupted-and-
    resumed run produces output bit-identical to an uninterrupted one.

    The journal is an append-only text file under
    [_hfuse_cache/journal/<run_id>.jnl], flushed after every record.
    Each record carries an MD5 checksum; loading silently drops a torn
    tail (the record being written when the process died) and any
    corrupted lines, counting them in {!torn} — resuming from a
    damaged journal recomputes the lost entries instead of failing.

    Run ids are content hashes of the run's parameters (figure, pairs,
    sizes, trace blocks...), so a resume with different parameters
    opens a different journal and never replays stale results.

    All operations stay on the coordinating domain, like the profile
    cache. *)

type t

(** Journal directory default: [_hfuse_cache/journal]. *)
val default_dir : string

(** A journal that records nothing and answers nothing. *)
val disabled : t

(** Open (creating or resuming) the journal for [run_id].  Existing
    records are loaded into memory; subsequent records append. *)
val open_ : ?dir:string -> run_id:string -> unit -> t

val enabled : t -> bool

(** Content-hash a run identity from its defining parameters.
    [sim_fuel] (default {!Gpusim.Launch.default_loop_fuel}, i.e. the
    effective [HFUSE_SIM_FUEL]) and [trace_blocks] (default [1]) are
    always folded in: simulated outcomes depend on the fuel budget and
    on how many blocks were traced, so a journal written under one
    value of either must not be resumed under another. *)
val run_id : ?sim_fuel:int -> ?trace_blocks:int -> parts:string list -> unit -> string

(** Path of the journal file (empty when disabled). *)
val path : t -> string

(** Records loaded from a pre-existing journal at {!open_} time. *)
val loaded : t -> int

(** Checksum-failing records dropped while loading (torn tail). *)
val torn : t -> int

(** Candidate-time records, keyed by {!Profile_cache.key}. *)
val find_time : t -> key:string -> float option

val record_time : t -> key:string -> float -> unit

(** Measurement-replay records, keyed by {!Profile_cache.report_key}. *)
val find_report :
  t -> key:string -> (Gpusim.Timing.report * Gpusim.Timing.engine_stats) option

val record_report :
  t ->
  key:string ->
  Gpusim.Timing.report * Gpusim.Timing.engine_stats ->
  unit

(** Force buffered records to disk (records are flushed as written;
    this is a barrier for signal handlers). *)
val flush : t -> unit

(** Flush and close the journal file.  The handle stays queryable. *)
val close : t -> unit

(* Persistent on-disk cache of profiled candidate times.

   The Fig. 6 search re-profiles the same fused kernels on every
   [bench] or [hfuse search] rerun; the cycle-level simulator makes
   each of those profiles expensive.  This cache keys a candidate by a
   content hash of everything its simulated time depends on — GPU
   model, fused kernel source, partition, launch geometry, register
   bound, workload sizes, and the trace-block count — so a warmed cache
   reproduces cold-run times exactly and invalidates itself whenever
   any input changes (including compiler changes that alter the emitted
   fused source).

   Entries live under [dir]/v1/<digest> as a single hex-float line
   ([%h], exact round-trip).  A second entry kind ([r-<digest>] files)
   caches whole measurement-replay reports; see the full-report section
   below.  Writes go through a temp file + rename so
   a concurrent reader never sees a torn entry.  Lookups and stores are
   only ever issued from the search's coordinating domain (the timing
   fan-out never touches the cache), so no locking is needed. *)

(* bump whenever the key derivation or the timing model's inputs change
   incompatibly; old entries are simply never looked up again *)
let version = "v1"

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
}

type t = {
  enabled : bool;
  dir : string;  (** versioned entry directory *)
  stats : stats;
}

let fresh_stats () = { hits = 0; misses = 0; stores = 0 }
let hits t = t.stats.hits
let misses t = t.stats.misses
let stores t = t.stats.stores
let enabled t = t.enabled
let dir t = t.dir

let default_dir = "_hfuse_cache"

let create ?(dir = default_dir) () =
  { enabled = true; dir = Filename.concat dir version; stats = fresh_stats () }

let disabled () = { enabled = false; dir = ""; stats = fresh_stats () }

(** Environment-driven configuration, so CI and scripts can flip the
    cache without threading flags everywhere: [HFUSE_CACHE=0] disables
    it; [HFUSE_CACHE_DIR=path] (or [HFUSE_CACHE=1]) enables it.  With
    neither set the cache is off. *)
let from_env () =
  match Sys.getenv_opt "HFUSE_CACHE" with
  | Some ("0" | "off" | "no" | "false") -> disabled ()
  | on -> (
      match Sys.getenv_opt "HFUSE_CACHE_DIR" with
      | Some dir -> create ~dir ()
      | None -> if on <> None then create () else disabled ())

(* ------------------------------------------------------------------ *)
(* Keys                                                                 *)
(* ------------------------------------------------------------------ *)

(** Content hash of a profiled candidate.  Every input the simulated
    time depends on participates; the fused source (not just the pair's
    names) makes compiler changes self-invalidating. *)
let key ~(arch : string) ~(source : string) ~(d1 : int) ~(d2 : int)
    ~(grid : int) ~(smem_dynamic : int) ~(regs : int)
    ~(reg_bound : int option) ~(k1 : string) ~(size1 : int) ~(k2 : string)
    ~(size2 : int) ~(trace_blocks : int) : string =
  let buf = Buffer.create 512 in
  List.iter
    (fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\x00')
    [
      version;
      arch;
      k1;
      string_of_int size1;
      k2;
      string_of_int size2;
      string_of_int d1;
      string_of_int d2;
      string_of_int grid;
      string_of_int smem_dynamic;
      string_of_int regs;
      (match reg_bound with None -> "-" | Some r -> string_of_int r);
      string_of_int trace_blocks;
      source;
    ];
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Storage                                                              *)
(* ------------------------------------------------------------------ *)

let entry_path t k = Filename.concat t.dir k

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755
    with Sys_error _ when Sys.file_exists d -> ()
  end

let find (t : t) ~(key : string) : float option =
  if not t.enabled then None
  else
    let read () =
      let ic = open_in (entry_path t key) in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> float_of_string (String.trim (input_line ic)))
    in
    match read () with
    | v ->
        t.stats.hits <- t.stats.hits + 1;
        Some v
    | exception (Sys_error _ | End_of_file | Failure _) ->
        (* absent or torn/corrupt: treat as a miss; a store overwrites *)
        t.stats.misses <- t.stats.misses + 1;
        None

let store (t : t) ~(key : string) (time_ms : float) : unit =
  if t.enabled then begin
    mkdir_p t.dir;
    let final = entry_path t key in
    let tmp = final ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        (* %h is a hexadecimal float literal: exact binary round-trip,
           so warmed-cache runs reproduce cold-run times bit-for-bit *)
        Printf.fprintf oc "%h\n" time_ms);
    Sys.rename tmp final;
    t.stats.stores <- t.stats.stores + 1
  end

(* ------------------------------------------------------------------ *)
(* Full-report entries (measurement replays)                            *)
(* ------------------------------------------------------------------ *)

(* The figure sweeps spend most of their warm-run wall time in pure
   measurement replays whose inputs (traces included) have not changed
   since the previous run.  Report entries cache the complete
   [Timing.report] — every counter exact, every float stored as [%h] —
   keyed by a content hash over the launch specs and the packed traces
   themselves, so a hit is bit-identical to re-running the engine and
   any trace change (compiler, interpreter, workload) self-invalidates.
   Each entry also records the producing replay's [engine_stats]; a hit
   folds those into the process-wide counters so cumulative stats keep
   describing the replays behind the reported numbers. *)

(* FNV-1a-style fold over a packed int array: one xor-multiply per
   element keeps hashing multi-million-instruction traces cheap; the
   64-bit state is then digested with everything else, so collisions
   need simultaneous FNV and MD5 collisions. *)
let fold_ints (h : int64) (arr : int array) (len : int) : int64 =
  let h = ref h in
  for i = 0 to len - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int arr.(i))) 0x100000001b3L
  done;
  !h

let fnv_basis = 0xcbf29ce484222325L

let report_key ~(arch : string) ~(policy : string)
    (specs : Gpusim.Timing.launch_spec list) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf version;
  Buffer.add_string buf ":report\x00";
  Buffer.add_string buf arch;
  Buffer.add_char buf '\x00';
  Buffer.add_string buf policy;
  Buffer.add_char buf '\x00';
  List.iter
    (fun (s : Gpusim.Timing.launch_spec) ->
      Buffer.add_string buf s.label;
      List.iter
        (fun n ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int n))
        [
          s.grid;
          s.threads_per_block;
          s.regs;
          s.spill;
          s.smem;
          s.stream;
          Array.length s.block_traces;
        ];
      Array.iter
        (fun (block : Gpusim.Trace.block) ->
          Buffer.add_char buf '|';
          Buffer.add_string buf (string_of_int (Array.length block));
          Array.iter
            (fun (tr : Gpusim.Trace.t) ->
              let h = fold_ints fnv_basis tr.Gpusim.Trace.codes tr.len in
              let h = fold_ints h tr.payloads tr.len in
              Buffer.add_char buf ',';
              Buffer.add_string buf (string_of_int tr.len);
              Buffer.add_char buf ':';
              Buffer.add_string buf (Printf.sprintf "%Lx" h))
            block)
        s.block_traces;
      Buffer.add_char buf '\n')
    specs;
  (* distinct filename namespace from candidate-time entries *)
  "r-" ^ Digest.to_hex (Digest.string (Buffer.contents buf))

(* entry layout (text, one record per line):
     line 1: the 11 top-level report fields, floats as %h
     line 2: kernel count N
     N lines: label NUL elapsed issued blocks_per_sm
     last:    the 7 engine_stats counters *)

let store_report (t : t) ~(key : string)
    ((r : Gpusim.Timing.report), (es : Gpusim.Timing.engine_stats)) : unit =
  if t.enabled then begin
    mkdir_p t.dir;
    let final = entry_path t key in
    let tmp = final ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Printf.fprintf oc "%d %h %d %d %h %d %d %d %d %h %h\n"
          r.elapsed_cycles r.time_ms r.issued_slots r.total_slots
          r.issue_slot_util r.mem_stall_slots r.sync_stall_slots
          r.other_stall_slots r.idle_slots r.mem_stall_pct r.occupancy;
        Printf.fprintf oc "%d\n" (List.length r.kernels);
        List.iter
          (fun (k : Gpusim.Timing.kernel_metrics) ->
            Printf.fprintf oc "%s\x00%d %d %d\n" k.k_label k.k_elapsed_cycles
              k.k_issued k.k_blocks_per_sm)
          r.kernels;
        Printf.fprintf oc "%d %d %d %d %d %d %d\n" es.cycles_stepped
          es.cycles_skipped es.sm_steps es.sm_steps_skipped es.scan_skip_hits
          es.warp_allocs es.warp_reuses);
    Sys.rename tmp final;
    t.stats.stores <- t.stats.stores + 1
  end

let find_report (t : t) ~(key : string) :
    (Gpusim.Timing.report * Gpusim.Timing.engine_stats) option =
  if not t.enabled then None
  else
    let split line = String.split_on_char ' ' (String.trim line) in
    let read () =
      let ic = open_in (entry_path t key) in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let top =
            match split (input_line ic) with
            | [ ec; tm; is; ts; ut; ms; ss; os; id; mp; oc_ ] ->
                {
                  Gpusim.Timing.elapsed_cycles = int_of_string ec;
                  time_ms = float_of_string tm;
                  issued_slots = int_of_string is;
                  total_slots = int_of_string ts;
                  issue_slot_util = float_of_string ut;
                  mem_stall_slots = int_of_string ms;
                  sync_stall_slots = int_of_string ss;
                  other_stall_slots = int_of_string os;
                  idle_slots = int_of_string id;
                  mem_stall_pct = float_of_string mp;
                  occupancy = float_of_string oc_;
                  kernels = [];
                }
            | _ -> failwith "report header"
          in
          let n = int_of_string (String.trim (input_line ic)) in
          let kernels =
            List.init n (fun _ ->
                let line = input_line ic in
                let cut = String.index line '\x00' in
                let label = String.sub line 0 cut in
                let rest =
                  String.sub line (cut + 1) (String.length line - cut - 1)
                in
                match split rest with
                | [ ke; ki; kb ] ->
                    {
                      Gpusim.Timing.k_label = label;
                      k_elapsed_cycles = int_of_string ke;
                      k_issued = int_of_string ki;
                      k_blocks_per_sm = int_of_string kb;
                    }
                | _ -> failwith "report kernel line")
          in
          let es =
            match split (input_line ic) with
            | [ cs; ck; st; sk; sc; wa; wr ] ->
                {
                  Gpusim.Timing.cycles_stepped = int_of_string cs;
                  cycles_skipped = int_of_string ck;
                  sm_steps = int_of_string st;
                  sm_steps_skipped = int_of_string sk;
                  scan_skip_hits = int_of_string sc;
                  warp_allocs = int_of_string wa;
                  warp_reuses = int_of_string wr;
                }
            | _ -> failwith "report stats line"
          in
          ({ top with kernels }, es))
    in
    match read () with
    | v ->
        t.stats.hits <- t.stats.hits + 1;
        Some v
    | exception (Sys_error _ | End_of_file | Failure _ | Not_found) ->
        t.stats.misses <- t.stats.misses + 1;
        None

let pp_stats ppf (t : t) =
  if t.enabled then
    Fmt.pf ppf "%d hit%s, %d miss%s, %d store%s" t.stats.hits
      (if t.stats.hits = 1 then "" else "s")
      t.stats.misses
      (if t.stats.misses = 1 then "" else "es")
      t.stats.stores
      (if t.stats.stores = 1 then "" else "s")
  else Fmt.string ppf "disabled"

(* Persistent on-disk cache of profiled candidate times.

   The Fig. 6 search re-profiles the same fused kernels on every
   [bench] or [hfuse search] rerun; the cycle-level simulator makes
   each of those profiles expensive.  This cache keys a candidate by a
   content hash of everything its simulated time depends on — GPU
   model, fused kernel source, partition, launch geometry, register
   bound, workload sizes, and the trace-block count — so a warmed cache
   reproduces cold-run times exactly and invalidates itself whenever
   any input changes (including compiler changes that alter the emitted
   fused source).

   Entries live under [dir]/v1/<digest> as a single hex-float line
   ([%h], exact round-trip).  Writes go through a temp file + rename so
   a concurrent reader never sees a torn entry.  Lookups and stores are
   only ever issued from the search's coordinating domain (the timing
   fan-out never touches the cache), so no locking is needed. *)

(* bump whenever the key derivation or the timing model's inputs change
   incompatibly; old entries are simply never looked up again *)
let version = "v1"

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
}

type t = {
  enabled : bool;
  dir : string;  (** versioned entry directory *)
  stats : stats;
}

let fresh_stats () = { hits = 0; misses = 0; stores = 0 }
let hits t = t.stats.hits
let misses t = t.stats.misses
let stores t = t.stats.stores
let enabled t = t.enabled
let dir t = t.dir

let default_dir = "_hfuse_cache"

let create ?(dir = default_dir) () =
  { enabled = true; dir = Filename.concat dir version; stats = fresh_stats () }

let disabled () = { enabled = false; dir = ""; stats = fresh_stats () }

(** Environment-driven configuration, so CI and scripts can flip the
    cache without threading flags everywhere: [HFUSE_CACHE=0] disables
    it; [HFUSE_CACHE_DIR=path] (or [HFUSE_CACHE=1]) enables it.  With
    neither set the cache is off. *)
let from_env () =
  match Sys.getenv_opt "HFUSE_CACHE" with
  | Some ("0" | "off" | "no" | "false") -> disabled ()
  | on -> (
      match Sys.getenv_opt "HFUSE_CACHE_DIR" with
      | Some dir -> create ~dir ()
      | None -> if on <> None then create () else disabled ())

(* ------------------------------------------------------------------ *)
(* Keys                                                                 *)
(* ------------------------------------------------------------------ *)

(** Content hash of a profiled candidate.  Every input the simulated
    time depends on participates; the fused source (not just the pair's
    names) makes compiler changes self-invalidating. *)
let key ~(arch : string) ~(source : string) ~(d1 : int) ~(d2 : int)
    ~(grid : int) ~(smem_dynamic : int) ~(regs : int)
    ~(reg_bound : int option) ~(k1 : string) ~(size1 : int) ~(k2 : string)
    ~(size2 : int) ~(trace_blocks : int) : string =
  let buf = Buffer.create 512 in
  List.iter
    (fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\x00')
    [
      version;
      arch;
      k1;
      string_of_int size1;
      k2;
      string_of_int size2;
      string_of_int d1;
      string_of_int d2;
      string_of_int grid;
      string_of_int smem_dynamic;
      string_of_int regs;
      (match reg_bound with None -> "-" | Some r -> string_of_int r);
      string_of_int trace_blocks;
      source;
    ];
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Storage                                                              *)
(* ------------------------------------------------------------------ *)

let entry_path t k = Filename.concat t.dir k

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755
    with Sys_error _ when Sys.file_exists d -> ()
  end

let find (t : t) ~(key : string) : float option =
  if not t.enabled then None
  else
    let read () =
      let ic = open_in (entry_path t key) in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> float_of_string (String.trim (input_line ic)))
    in
    match read () with
    | v ->
        t.stats.hits <- t.stats.hits + 1;
        Some v
    | exception (Sys_error _ | End_of_file | Failure _) ->
        (* absent or torn/corrupt: treat as a miss; a store overwrites *)
        t.stats.misses <- t.stats.misses + 1;
        None

let store (t : t) ~(key : string) (time_ms : float) : unit =
  if t.enabled then begin
    mkdir_p t.dir;
    let final = entry_path t key in
    let tmp = final ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        (* %h is a hexadecimal float literal: exact binary round-trip,
           so warmed-cache runs reproduce cold-run times bit-for-bit *)
        Printf.fprintf oc "%h\n" time_ms);
    Sys.rename tmp final;
    t.stats.stores <- t.stats.stores + 1
  end

let pp_stats ppf (t : t) =
  if t.enabled then
    Fmt.pf ppf "%d hit%s, %d miss%s, %d store%s" t.stats.hits
      (if t.stats.hits = 1 then "" else "s")
      t.stats.misses
      (if t.stats.misses = 1 then "" else "es")
      t.stats.stores
      (if t.stats.stores = 1 then "" else "s")
  else Fmt.string ppf "disabled"

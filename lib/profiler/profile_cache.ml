(* Persistent on-disk cache of profiled candidate times.

   The Fig. 6 search re-profiles the same fused kernels on every
   [bench] or [hfuse search] rerun; the cycle-level simulator makes
   each of those profiles expensive.  This cache keys a candidate by a
   content hash of everything its simulated time depends on — GPU
   model, fused kernel source, partition, launch geometry, register
   bound, workload sizes, and the trace-block count — so a warmed cache
   reproduces cold-run times exactly and invalidates itself whenever
   any input changes (including compiler changes that alter the emitted
   fused source).

   Entries live under [dir]/v2/<digest>: a one-line header
   ([hfuse-cache v2 <md5-of-payload>]) followed by the payload (times
   as a single [%h] hex-float line; [r-<digest>] files hold whole
   measurement-replay reports — see the full-report section below).
   Writes go through a unique temp file + rename so a concurrent
   reader never sees a torn entry even with several processes sharing
   the directory; the header checksum catches everything rename cannot
   (a crash that left a truncated file behind, bit rot, a partial copy)
   and such entries are moved aside to [<root>/quarantine/<key>] and
   treated as misses, so the value is recomputed and re-stored.
   Lookups and stores are only ever issued from the search's
   coordinating domain (the timing fan-out never touches the cache),
   so no in-process locking is needed. *)

module Fault = Hfuse_fault.Fault

(* bump whenever the key derivation, the entry format, or the timing
   model's inputs change incompatibly; old entries are simply never
   looked up again *)
let version = "v2"
let magic = "hfuse-cache"

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable corrupt : int;  (** entries quarantined after checksum failure *)
}

type t = {
  enabled : bool;
  dir : string;  (** versioned entry directory *)
  stats : stats;
  fault : Fault.plan option;
      (** chaos plan for this handle's corruption draws; [None] falls
          back to the installed process plan.  A server threads each
          request's plan through its per-request handle. *)
}

let fresh_stats () = { hits = 0; misses = 0; stores = 0; corrupt = 0 }
let hits t = t.stats.hits
let misses t = t.stats.misses
let stores t = t.stats.stores
let corrupt t = t.stats.corrupt
let enabled t = t.enabled
let dir t = t.dir

let default_dir = "_hfuse_cache"

let create ?(dir = default_dir) ?fault () =
  {
    enabled = true;
    dir = Filename.concat dir version;
    stats = fresh_stats ();
    fault;
  }

let disabled () =
  { enabled = false; dir = ""; stats = fresh_stats (); fault = None }

(** Environment-driven configuration, so CI and scripts can flip the
    cache without threading flags everywhere: [HFUSE_CACHE=0] disables
    it; [HFUSE_CACHE_DIR=path] (or [HFUSE_CACHE=1]) enables it.  With
    neither set the cache is off.  [env_dir] exposes just the
    resolution (the root directory, or [None] for disabled), so a
    per-request settings record can capture the environment's answer
    once and mint fresh handles from it. *)
let env_dir () =
  match Sys.getenv_opt "HFUSE_CACHE" with
  | Some ("0" | "off" | "no" | "false") -> None
  | on -> (
      match Sys.getenv_opt "HFUSE_CACHE_DIR" with
      | Some dir -> Some dir
      | None -> if on <> None then Some default_dir else None)

let of_dir ?fault = function
  | Some dir -> create ~dir ?fault ()
  | None -> disabled ()

let from_env () = of_dir (env_dir ())

(* ------------------------------------------------------------------ *)
(* Keys                                                                 *)
(* ------------------------------------------------------------------ *)

(** Content hash of a profiled candidate.  Every input the simulated
    time depends on participates; the fused source (not just the pair's
    names) makes compiler changes self-invalidating. *)
let key ~(arch : string) ~(source : string) ~(d1 : int) ~(d2 : int)
    ~(grid : int) ~(smem_dynamic : int) ~(regs : int)
    ~(reg_bound : int option) ~(k1 : string) ~(size1 : int) ~(k2 : string)
    ~(size2 : int) ~(trace_blocks : int) : string =
  let buf = Buffer.create 512 in
  List.iter
    (fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\x00')
    [
      version;
      arch;
      k1;
      string_of_int size1;
      k2;
      string_of_int size2;
      string_of_int d1;
      string_of_int d2;
      string_of_int grid;
      string_of_int smem_dynamic;
      string_of_int regs;
      (match reg_bound with None -> "-" | Some r -> string_of_int r);
      string_of_int trace_blocks;
      source;
    ];
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Storage                                                              *)
(* ------------------------------------------------------------------ *)

let entry_path t k = Filename.concat t.dir k

(* Tolerates concurrent creators: several workers (or several [bench]
   processes) may race to create the directory, so EEXIST is success,
   not an error.  The old [Sys.file_exists]-then-[Sys.mkdir] dance had
   a window where both checks passed and one mkdir failed. *)
let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" then
    match Unix.mkdir d 0o755 with
    | () -> ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
        mkdir_p (Filename.dirname d);
        (try Unix.mkdir d 0o755
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

let checksum payload = Digest.to_hex (Digest.string payload)

(* whole-file read; [Sys_error] means the entry is simply absent *)
let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* header check: magic, version, and payload digest must all match *)
let parse_entry (raw : string) : string option =
  match String.index_opt raw '\n' with
  | None -> None
  | Some nl -> (
      let header = String.sub raw 0 nl in
      let payload = String.sub raw (nl + 1) (String.length raw - nl - 1) in
      match String.split_on_char ' ' header with
      | [ m; v; d ] when m = magic && v = version && d = checksum payload ->
          Some payload
      | _ -> None)

let quarantine_dir t = Filename.concat (Filename.dirname t.dir) "quarantine"

(* A checksum-failing entry is evidence of a crash or corruption, not a
   stale format: keep the bytes for post-mortem instead of deleting
   them, and get the entry out of the lookup path so the value is
   recomputed. *)
let quarantine t ~key ~path =
  t.stats.corrupt <- t.stats.corrupt + 1;
  (try
     mkdir_p (quarantine_dir t);
     Sys.rename path (Filename.concat (quarantine_dir t) key)
   with Sys_error _ -> ( try Sys.remove path with Sys_error _ -> ()));
  if Fault.enabled ?plan:t.fault () then Fault.note_recovered Fault.Cache_corrupt

type 'a entry = Absent | Corrupt | Found of 'a

let read_entry (t : t) ~(key : string) (decode : string -> 'a) : 'a entry =
  let path = entry_path t key in
  match read_file path with
  | exception Sys_error _ -> Absent
  | raw -> (
      match parse_entry raw with
      | None ->
          quarantine t ~key ~path;
          Corrupt
      | Some payload -> (
          (* a payload that passed its digest but fails to decode means
             the format and the checksum disagree — same treatment *)
          match decode payload with
          | v -> Found v
          | exception _ ->
              quarantine t ~key ~path;
              Corrupt))

let tmp_seq = Atomic.make 0

let write_entry (t : t) ~(key : string) (payload : string) : unit =
  mkdir_p t.dir;
  let final = entry_path t key in
  (* pid + per-process counter: unique even when one process stores the
     same key twice or two processes share the directory *)
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" final (Unix.getpid ())
      (Atomic.fetch_and_add tmp_seq 1)
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "%s %s %s\n" magic version (checksum payload);
      output_string oc payload);
  Sys.rename tmp final;
  t.stats.stores <- t.stats.stores + 1;
  (* chaos hook: model a crash that committed a torn entry.  Drawn from
     the entry key so the same (seed, key) corrupts on every run
     regardless of scheduling; the checksum path above recovers it. *)
  if
    Fault.enabled ?plan:t.fault ()
    && Fault.fires ?plan:t.fault Fault.Cache_corrupt ~key:(Hashtbl.hash key)
  then begin
    Fault.note_injected Fault.Cache_corrupt;
    try Unix.truncate final (max 8 (String.length payload / 2))
    with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Candidate-time entries                                               *)
(* ------------------------------------------------------------------ *)

(* %h is a hexadecimal float literal: exact binary round-trip, so
   warmed-cache runs reproduce cold-run times bit-for-bit *)
let encode_time (time_ms : float) : string = Printf.sprintf "%h\n" time_ms
let decode_time (s : string) : float = float_of_string (String.trim s)

let find (t : t) ~(key : string) : float option =
  if not t.enabled then None
  else
    match read_entry t ~key decode_time with
    | Found v ->
        t.stats.hits <- t.stats.hits + 1;
        Some v
    | Absent | Corrupt ->
        t.stats.misses <- t.stats.misses + 1;
        None

let store (t : t) ~(key : string) (time_ms : float) : unit =
  if t.enabled then write_entry t ~key (encode_time time_ms)

(* ------------------------------------------------------------------ *)
(* Full-report entries (measurement replays)                            *)
(* ------------------------------------------------------------------ *)

(* The figure sweeps spend most of their warm-run wall time in pure
   measurement replays whose inputs (traces included) have not changed
   since the previous run.  Report entries cache the complete
   [Timing.report] — every counter exact, every float stored as [%h] —
   keyed by a content hash over the launch specs and the packed traces
   themselves, so a hit is bit-identical to re-running the engine and
   any trace change (compiler, interpreter, workload) self-invalidates.
   Each entry also records the producing replay's [engine_stats]; a hit
   folds those into the process-wide counters so cumulative stats keep
   describing the replays behind the reported numbers. *)

(* FNV-1a-style fold over a packed int array: one xor-multiply per
   element keeps hashing multi-million-instruction traces cheap; the
   64-bit state is then digested with everything else, so collisions
   need simultaneous FNV and MD5 collisions. *)
let fold_ints (h : int64) (arr : int array) (len : int) : int64 =
  let h = ref h in
  for i = 0 to len - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int arr.(i))) 0x100000001b3L
  done;
  !h

let fnv_basis = 0xcbf29ce484222325L

let report_key ~(arch : string) ~(policy : string)
    (specs : Gpusim.Timing.launch_spec list) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf version;
  Buffer.add_string buf ":report\x00";
  Buffer.add_string buf arch;
  Buffer.add_char buf '\x00';
  Buffer.add_string buf policy;
  Buffer.add_char buf '\x00';
  List.iter
    (fun (s : Gpusim.Timing.launch_spec) ->
      Buffer.add_string buf s.label;
      List.iter
        (fun n ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int n))
        [
          s.grid;
          s.threads_per_block;
          s.regs;
          s.spill;
          s.smem;
          s.stream;
          Array.length s.block_traces;
        ];
      Array.iter
        (fun (block : Gpusim.Trace.block) ->
          Buffer.add_char buf '|';
          Buffer.add_string buf (string_of_int (Array.length block));
          Array.iter
            (fun (tr : Gpusim.Trace.t) ->
              let h = fold_ints fnv_basis tr.Gpusim.Trace.codes tr.len in
              let h = fold_ints h tr.payloads tr.len in
              Buffer.add_char buf ',';
              Buffer.add_string buf (string_of_int tr.len);
              Buffer.add_char buf ':';
              Buffer.add_string buf (Printf.sprintf "%Lx" h))
            block)
        s.block_traces;
      Buffer.add_char buf '\n')
    specs;
  (* distinct filename namespace from candidate-time entries *)
  "r-" ^ Digest.to_hex (Digest.string (Buffer.contents buf))

(* payload layout (text, one record per line):
     line 1: the 11 top-level report fields, floats as %h
     line 2: kernel count N
     N lines: label NUL elapsed issued blocks_per_sm
     last:    the 7 engine_stats counters
   Also the checkpoint journal's report encoding (see Checkpoint). *)

let encode_report
    ((r : Gpusim.Timing.report), (es : Gpusim.Timing.engine_stats)) : string =
  let buf = Buffer.create 512 in
  Printf.bprintf buf "%d %h %d %d %h %d %d %d %d %h %h\n" r.elapsed_cycles
    r.time_ms r.issued_slots r.total_slots r.issue_slot_util r.mem_stall_slots
    r.sync_stall_slots r.other_stall_slots r.idle_slots r.mem_stall_pct
    r.occupancy;
  Printf.bprintf buf "%d\n" (List.length r.kernels);
  List.iter
    (fun (k : Gpusim.Timing.kernel_metrics) ->
      Printf.bprintf buf "%s\x00%d %d %d\n" k.k_label k.k_elapsed_cycles
        k.k_issued k.k_blocks_per_sm)
    r.kernels;
  Printf.bprintf buf "%d %d %d %d %d %d %d\n" es.cycles_stepped
    es.cycles_skipped es.sm_steps es.sm_steps_skipped es.scan_skip_hits
    es.warp_allocs es.warp_reuses;
  Buffer.contents buf

let decode_report (s : string) :
    Gpusim.Timing.report * Gpusim.Timing.engine_stats =
  let lines = ref (String.split_on_char '\n' s) in
  let next () =
    match !lines with
    | [] -> failwith "report: truncated"
    | l :: rest ->
        lines := rest;
        l
  in
  let split line = String.split_on_char ' ' (String.trim line) in
  let top =
    match split (next ()) with
    | [ ec; tm; is; ts; ut; ms; ss; os; id; mp; oc_ ] ->
        {
          Gpusim.Timing.elapsed_cycles = int_of_string ec;
          time_ms = float_of_string tm;
          issued_slots = int_of_string is;
          total_slots = int_of_string ts;
          issue_slot_util = float_of_string ut;
          mem_stall_slots = int_of_string ms;
          sync_stall_slots = int_of_string ss;
          other_stall_slots = int_of_string os;
          idle_slots = int_of_string id;
          mem_stall_pct = float_of_string mp;
          occupancy = float_of_string oc_;
          kernels = [];
        }
    | _ -> failwith "report header"
  in
  let n = int_of_string (String.trim (next ())) in
  let kernels =
    List.init n (fun _ ->
        let line = next () in
        let cut = String.index line '\x00' in
        let label = String.sub line 0 cut in
        let rest = String.sub line (cut + 1) (String.length line - cut - 1) in
        match split rest with
        | [ ke; ki; kb ] ->
            {
              Gpusim.Timing.k_label = label;
              k_elapsed_cycles = int_of_string ke;
              k_issued = int_of_string ki;
              k_blocks_per_sm = int_of_string kb;
            }
        | _ -> failwith "report kernel line")
  in
  let es =
    match split (next ()) with
    | [ cs; ck; st; sk; sc; wa; wr ] ->
        {
          Gpusim.Timing.cycles_stepped = int_of_string cs;
          cycles_skipped = int_of_string ck;
          sm_steps = int_of_string st;
          sm_steps_skipped = int_of_string sk;
          scan_skip_hits = int_of_string sc;
          warp_allocs = int_of_string wa;
          warp_reuses = int_of_string wr;
        }
    | _ -> failwith "report stats line"
  in
  ({ top with kernels }, es)

let store_report (t : t) ~(key : string)
    (entry : Gpusim.Timing.report * Gpusim.Timing.engine_stats) : unit =
  if t.enabled then write_entry t ~key (encode_report entry)

let find_report (t : t) ~(key : string) :
    (Gpusim.Timing.report * Gpusim.Timing.engine_stats) option =
  if not t.enabled then None
  else
    match read_entry t ~key decode_report with
    | Found v ->
        t.stats.hits <- t.stats.hits + 1;
        Some v
    | Absent | Corrupt ->
        t.stats.misses <- t.stats.misses + 1;
        None

let pp_stats ppf (t : t) =
  if t.enabled then begin
    Fmt.pf ppf "%d hit%s, %d miss%s, %d store%s" t.stats.hits
      (if t.stats.hits = 1 then "" else "s")
      t.stats.misses
      (if t.stats.misses = 1 then "" else "es")
      t.stats.stores
      (if t.stats.stores = 1 then "" else "s");
    if t.stats.corrupt > 0 then
      Fmt.pf ppf ", %d quarantined" t.stats.corrupt
  end
  else Fmt.string ppf "disabled"

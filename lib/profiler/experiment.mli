(** The paper's evaluation (Section IV), experiment by experiment:
    Figure 7 ratio sweeps, Figure 8 individual-kernel metrics, Figure 9
    fused-kernel metrics with and without the register bound.

    Every figure runs in two phases: configuration, tracing and the
    Fig. 6 searches stay serial on the calling domain (they mutate
    [Gpusim.Memory.t]), while the pure measurement replays fan out over
    one shared [Hfuse_parallel.Pool] ([~jobs]/[~pool]).  Tracing order
    is exactly the old serial order, so results are bit-identical for
    any worker count. *)

(** Per-kernel sizes with solo times close to a common target, per
    architecture (the paper's "execution time ratios close to one");
    memoised.  [pool] parallelises the solo probes on a memo miss;
    [cache] serves them from the persistent report cache. *)
val representative_sizes :
  ?pool:Hfuse_parallel.Pool.t ->
  ?cache:Profile_cache.t ->
  ?checkpoint:Checkpoint.t ->
  Gpusim.Arch.t ->
  (string * int) list

val size_of : (string * int) list -> Kernel_corpus.Spec.t -> int

type point = {
  size1 : int;
  size2 : int;
  ratio : float;  (** solo time 1 / solo time 2 *)
  native_ms : float;
  hfuse_ms : float;  (** best searched configuration *)
  hfuse_d1 : int;
  hfuse_d2 : int;
  hfuse_reg_bound : int option;
  vfuse_ms : float option;  (** [None] when vertical fusion is illegal *)
  naive_ms : float option;  (** even partition; deep-learning pairs only *)
}

(** Speedup percentage of [fused] vs [native] ((native/fused - 1)*100). *)
val speedup : native:float -> fused:float -> float

type sweep = {
  pair : Kernel_corpus.Spec.t * Kernel_corpus.Spec.t;
  arch : Gpusim.Arch.t;
  varied_first : bool;  (** the paper stars the varied kernel *)
  points : point list;
}

val avg_hfuse_speedup : sweep -> float
val avg_vfuse_speedup : sweep -> float

(** The paper's ratio points: 0.25x .. 4x the representative size. *)
val default_multipliers : float list

(** [jobs]/[pool]/[cache]/[top_k] are handed to every {!Runner.search}
    the sweep performs and to the measurement fan-out. *)
val sweep_pair :
  ?multipliers:float list ->
  ?jobs:int ->
  ?pool:Hfuse_parallel.Pool.t ->
  ?cache:Profile_cache.t ->
  ?checkpoint:Checkpoint.t ->
  ?top_k:int ->
  Gpusim.Arch.t ->
  (string * int) list ->
  Kernel_corpus.Spec.t * Kernel_corpus.Spec.t ->
  sweep

(** Figure 7: all pairs x all architectures, over one shared pool. *)
val figure7 :
  ?multipliers:float list ->
  ?jobs:int ->
  ?cache:Profile_cache.t ->
  ?checkpoint:Checkpoint.t ->
  ?top_k:int ->
  ?archs:Gpusim.Arch.t list ->
  ?pairs:(Kernel_corpus.Spec.t * Kernel_corpus.Spec.t) list ->
  unit ->
  sweep list

type kernel_row = {
  kernel : Kernel_corpus.Spec.t;
  per_arch : (Gpusim.Arch.t * Gpusim.Metrics.t) list;
}

(** Figure 8: each kernel solo at its representative workload. *)
val figure8 :
  ?jobs:int ->
  ?pool:Hfuse_parallel.Pool.t ->
  ?cache:Profile_cache.t ->
  ?checkpoint:Checkpoint.t ->
  ?archs:Gpusim.Arch.t list ->
  unit ->
  kernel_row list

type fused_variant = {
  speedup_pct : float;
  metrics : Gpusim.Metrics.t;
  d1 : int;
  d2 : int;
  reg_bound : int option;
}

type fused_row = {
  f_pair : Kernel_corpus.Spec.t * Kernel_corpus.Spec.t;
  f_arch : Gpusim.Arch.t;
  native_util : float;  (** cycle-weighted average of the two solos *)
  no_regcap : fused_variant;
  regcap : fused_variant option;  (** [None] when r0 is not computable *)
}

val figure9_pair :
  ?jobs:int ->
  ?pool:Hfuse_parallel.Pool.t ->
  ?cache:Profile_cache.t ->
  ?checkpoint:Checkpoint.t ->
  ?top_k:int ->
  Gpusim.Arch.t ->
  (string * int) list ->
  Kernel_corpus.Spec.t * Kernel_corpus.Spec.t ->
  fused_row

(** Figure 9: both register-bound variants at the searched partition.
    Phase 1 (tracing + search) is serial over all pairs; one pool-wide
    fan-out then replays every measurement run at once. *)
val figure9 :
  ?jobs:int ->
  ?cache:Profile_cache.t ->
  ?checkpoint:Checkpoint.t ->
  ?top_k:int ->
  ?archs:Gpusim.Arch.t list ->
  ?pairs:(Kernel_corpus.Spec.t * Kernel_corpus.Spec.t) list ->
  unit ->
  fused_row list

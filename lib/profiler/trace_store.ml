(* Persistent, bounded, shared store of recorded block traces.

   PR 6 left the serial trace phase dominating warm searches: every
   [bench] / [hfuse search] rerun re-interprets the same kernels to
   re-record the same traces, and the daemon re-traces identical
   kernels across requests.  This store makes traces behave like the
   profile cache made times behave: recorded once, shared everywhere.

   Soundness rests on traces being a pure function of their key.  The
   interpreter's trace payloads are coalescing/bank-conflict *analysis
   results* (distinct (buffer, sector) counts — see Instr), not
   addresses, and buffer-id renaming is order-isomorphic for both the
   coalescer and the L1 sector FIFO; inputs are seeded-deterministic.
   So a recording made in a fresh memory with only the keyed workload
   instantiated is byte-identical to one made mid-search — Runner
   records all traces that way, and warmed-store runs reproduce
   cold-run results exactly.

   Two tiers:

   - a process-wide in-memory LRU keyed by a digest of everything the
     trace depends on (kernel identities + sizes + partition + launch
     geometry + trace-block count + simulation fuel).  One table for
     the whole process, so concurrent daemon requests share warm
     traces; an optional byte bound ([Settings.trace_mem_mb]) keeps a
     long-lived daemon from growing without limit.

   - a per-handle on-disk tier mirroring Profile_cache v2: entries
     under [<root>/traces/v1/<digest>] with a checksummed one-line
     header, unique-tmp + atomic-rename commits, and corrupt entries
     quarantined to [<root>/traces/quarantine/<digest>] and re-recorded.
     Disk keys additionally fold in the GPU model name and a source
     digest, so shared directories self-invalidate across archs and
     kernel-source changes even though trace keys only carry kernel
     *names*.

   A single-flight table dedups concurrent recordings of one key:
   the first caller records while the rest wait and share the result
   (counted in [merges]).  Disk I/O happens outside the lock. *)

module Fault = Hfuse_fault.Fault
module Trace = Gpusim.Trace

(* bump whenever the key derivation or Trace.encode_blocks changes
   incompatibly; old entries are simply never looked up again *)
let version = "v1"
let magic = "hfuse-traces"

(* ------------------------------------------------------------------ *)
(* Keys                                                                 *)
(* ------------------------------------------------------------------ *)

type key = {
  mem : string;
      (** in-memory tier digest: everything the recorded trace is a
          function of.  Deliberately excludes [arch] — traces are
          arch-independent (the interpreter takes no device model), so
          a two-arch sweep records each pair once. *)
  disk : string;
      (** on-disk tier digest: [mem]'s inputs plus arch.  Disk entries
          outlive the process and may be shared across machines, so
          they pay for defensive splitting the memory tier need not. *)
}

let digest parts = Digest.to_hex (Digest.string (String.concat "\x00" parts))

let keys ~(arch : string) ~(sim_fuel : int) ~(trace_blocks : int)
    ~(ident : string list) : key =
  let base =
    magic :: version
    :: string_of_int sim_fuel
    :: string_of_int trace_blocks
    :: ident
  in
  { mem = digest base; disk = digest (arch :: base) }

(* ------------------------------------------------------------------ *)
(* Process-wide tally                                                   *)
(* ------------------------------------------------------------------ *)

type tally = {
  mem_hits : int;
  disk_hits : int;
  recorded : int;  (** fresh recordings added to the store *)
  stores : int;  (** on-disk entry writes *)
  corrupt : int;  (** on-disk entries quarantined *)
  evictions : int;  (** memory-tier entries dropped by the LRU bound *)
  merges : int;  (** recordings saved by single-flight / batch dedup *)
}

let c_mem_hits = Atomic.make 0
let c_disk_hits = Atomic.make 0
let c_recorded = Atomic.make 0
let c_stores = Atomic.make 0
let c_corrupt = Atomic.make 0
let c_evictions = Atomic.make 0
let c_merges = Atomic.make 0

let tally () =
  {
    mem_hits = Atomic.get c_mem_hits;
    disk_hits = Atomic.get c_disk_hits;
    recorded = Atomic.get c_recorded;
    stores = Atomic.get c_stores;
    corrupt = Atomic.get c_corrupt;
    evictions = Atomic.get c_evictions;
    merges = Atomic.get c_merges;
  }

let reset_tally () =
  List.iter
    (fun c -> Atomic.set c 0)
    [
      c_mem_hits;
      c_disk_hits;
      c_recorded;
      c_stores;
      c_corrupt;
      c_evictions;
      c_merges;
    ]

let diff ~(before : tally) ~(after : tally) : tally =
  {
    mem_hits = after.mem_hits - before.mem_hits;
    disk_hits = after.disk_hits - before.disk_hits;
    recorded = after.recorded - before.recorded;
    stores = after.stores - before.stores;
    corrupt = after.corrupt - before.corrupt;
    evictions = after.evictions - before.evictions;
    merges = after.merges - before.merges;
  }

let note_merged n = if n > 0 then ignore (Atomic.fetch_and_add c_merges n)

let pp_tally ppf (t : tally) =
  Fmt.pf ppf "%d mem hit%s, %d disk hit%s, %d recorded, %d merged"
    t.mem_hits
    (if t.mem_hits = 1 then "" else "s")
    t.disk_hits
    (if t.disk_hits = 1 then "" else "s")
    t.recorded t.merges;
  if t.evictions > 0 then Fmt.pf ppf ", %d evicted" t.evictions;
  if t.corrupt > 0 then Fmt.pf ppf ", %d quarantined" t.corrupt

(* ------------------------------------------------------------------ *)
(* Memory tier: process-wide LRU                                        *)
(* ------------------------------------------------------------------ *)

type mem_entry = {
  blocks : Trace.block array;
  bytes : int;
  mutable stamp : int;  (** last-use tick, for LRU eviction *)
}

let mem_mutex = Mutex.create ()
let mem_cond = Condition.create ()
let mem_tbl : (string, mem_entry) Hashtbl.t = Hashtbl.create 64
let mem_total = ref 0
let mem_clock = ref 0

(* keys currently being recorded (single-flight); waiters sleep on
   [mem_cond] until the recorder publishes or gives up *)
let in_flight : (string, unit) Hashtbl.t = Hashtbl.create 8

(* test hook: overrides any per-call limit so eviction can be forced
   with sub-megabyte budgets *)
let limit_override : int option ref = ref None
let set_mem_limit_override v = limit_override := v

let mem_entries () = Mutex.protect mem_mutex (fun () -> Hashtbl.length mem_tbl)
let mem_bytes () = Mutex.protect mem_mutex (fun () -> !mem_total)

let clear_memory () =
  Mutex.protect mem_mutex (fun () ->
      Hashtbl.reset mem_tbl;
      mem_total := 0;
      mem_clock := 0)

let touch (e : mem_entry) =
  incr mem_clock;
  e.stamp <- !mem_clock

(* caller holds [mem_mutex] *)
let evict_to (limit : int) =
  while !mem_total > limit && Hashtbl.length mem_tbl > 1 do
    let victim = ref None in
    Hashtbl.iter
      (fun k e ->
        match !victim with
        | Some (_, v) when v.stamp <= e.stamp -> ()
        | _ -> victim := Some (k, e))
      mem_tbl;
    match !victim with
    | None -> ()
    | Some (k, e) ->
        Hashtbl.remove mem_tbl k;
        mem_total := !mem_total - e.bytes;
        ignore (Atomic.fetch_and_add c_evictions 1)
  done

(* caller holds [mem_mutex].  The just-inserted entry carries the
   freshest stamp, so it survives its own insertion even when it alone
   exceeds the bound (the [> 1] guard above); a search can always keep
   the trace it is about to replay. *)
let insert_mem ~(limit_bytes : int option) (k : string)
    (blocks : Trace.block array) : unit =
  (if not (Hashtbl.mem mem_tbl k) then begin
     let e = { blocks; bytes = Trace.blocks_bytes blocks; stamp = 0 } in
     touch e;
     Hashtbl.add mem_tbl k e;
     mem_total := !mem_total + e.bytes
   end);
  match (!limit_override, limit_bytes) with
  | Some l, _ | None, Some l -> evict_to l
  | None, None -> ()

let find_mem (k : string) : Trace.block array option =
  Mutex.protect mem_mutex (fun () ->
      match Hashtbl.find_opt mem_tbl k with
      | Some e ->
          touch e;
          ignore (Atomic.fetch_and_add c_mem_hits 1);
          Some e.blocks
      | None -> None)

(* ------------------------------------------------------------------ *)
(* Disk tier                                                            *)
(* ------------------------------------------------------------------ *)

type t = {
  enabled : bool;
  dir : string;  (** versioned entry directory: [<root>/traces/v1] *)
  fault : Fault.plan option;
      (** chaos plan for this handle's corruption draws; [None] falls
          back to the installed process plan *)
}

let enabled t = t.enabled
let dir t = t.dir

let create ?(dir = Profile_cache.default_dir) ?fault () =
  {
    enabled = true;
    dir = Filename.concat (Filename.concat dir "traces") version;
    fault;
  }

let disabled () = { enabled = false; dir = ""; fault = None }

let of_dir ?fault = function
  | Some dir -> create ~dir ?fault ()
  | None -> disabled ()

let entry_path t k = Filename.concat t.dir k
let checksum payload = Digest.to_hex (Digest.string payload)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_entry (raw : string) : string option =
  match String.index_opt raw '\n' with
  | None -> None
  | Some nl -> (
      let header = String.sub raw 0 nl in
      let payload = String.sub raw (nl + 1) (String.length raw - nl - 1) in
      match String.split_on_char ' ' header with
      | [ m; v; d ] when m = magic && v = version && d = checksum payload ->
          Some payload
      | _ -> None)

let quarantine_dir t = Filename.concat (Filename.dirname t.dir) "quarantine"

(* same policy as Profile_cache: keep the bytes for post-mortem, get
   the entry out of the lookup path, recover by re-recording *)
let quarantine t ~key ~path =
  ignore (Atomic.fetch_and_add c_corrupt 1);
  (try
     Profile_cache.mkdir_p (quarantine_dir t);
     Sys.rename path (Filename.concat (quarantine_dir t) key)
   with Sys_error _ -> ( try Sys.remove path with Sys_error _ -> ()));
  if Fault.enabled ?plan:t.fault () then
    Fault.note_recovered Fault.Cache_corrupt

let find_disk (t : t) (k : string) : Trace.block array option =
  if not t.enabled then None
  else
    let path = entry_path t k in
    match read_file path with
    | exception Sys_error _ -> None
    | raw -> (
        match parse_entry raw with
        | None ->
            quarantine t ~key:k ~path;
            None
        | Some payload -> (
            match Trace.decode_blocks payload with
            | Some blocks ->
                ignore (Atomic.fetch_and_add c_disk_hits 1);
                Some blocks
            | None ->
                (* payload passed its digest yet fails to decode: the
                   format and the checksum disagree — same treatment *)
                quarantine t ~key:k ~path;
                None))

let tmp_seq = Atomic.make 0

let store_disk (t : t) (k : string) (payload : string) : unit =
  if t.enabled then begin
    Profile_cache.mkdir_p t.dir;
    let final = entry_path t k in
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" final (Unix.getpid ())
        (Atomic.fetch_and_add tmp_seq 1)
    in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Printf.fprintf oc "%s %s %s\n" magic version (checksum payload);
        output_string oc payload);
    Sys.rename tmp final;
    ignore (Atomic.fetch_and_add c_stores 1);
    (* chaos hook: model a crash that committed a torn entry; drawn
       from the entry key so the same (seed, key) corrupts on every
       run regardless of scheduling.  The checksum path recovers it. *)
    if
      Fault.enabled ?plan:t.fault ()
      && Fault.fires ?plan:t.fault Fault.Cache_corrupt ~key:(Hashtbl.hash k)
    then begin
      Fault.note_injected Fault.Cache_corrupt;
      try Unix.truncate final (max 8 (String.length payload / 2))
      with Unix.Unix_error _ -> ()
    end
  end

(* ------------------------------------------------------------------ *)
(* Lookup / insert                                                      *)
(* ------------------------------------------------------------------ *)

let find (t : t) ~(key : key) : Trace.block array option =
  match find_mem key.mem with
  | Some _ as hit -> hit
  | None -> (
      match find_disk t key.disk with
      | None -> None
      | Some blocks ->
          Mutex.protect mem_mutex (fun () ->
              (* disk hits enter the memory tier un-bounded here; the
                 next [add] under a limit rebalances.  Re-check the
                 table: a racing request may have published already. *)
              insert_mem ~limit_bytes:None key.mem blocks);
          Some blocks)

let add (t : t) ?limit_bytes ~(key : key) (blocks : Trace.block array) : unit =
  ignore (Atomic.fetch_and_add c_recorded 1);
  Mutex.protect mem_mutex (fun () -> insert_mem ~limit_bytes key.mem blocks);
  store_disk t key.disk (Trace.encode_blocks blocks)

let get_or_record (t : t) ?limit_bytes ~(key : key)
    (record : unit -> Trace.block array) : Trace.block array =
  (* phase 1: memory tier + single-flight arbitration under the lock *)
  let claimed =
    Mutex.protect mem_mutex (fun () ->
        let rec arbitrate ~waited =
          match Hashtbl.find_opt mem_tbl key.mem with
          | Some e ->
              touch e;
              ignore (Atomic.fetch_and_add c_mem_hits 1);
              if waited then ignore (Atomic.fetch_and_add c_merges 1);
              Either.Left e.blocks
          | None ->
              if Hashtbl.mem in_flight key.mem then begin
                Condition.wait mem_cond mem_mutex;
                arbitrate ~waited:true
              end
              else begin
                Hashtbl.add in_flight key.mem ();
                Either.Right ()
              end
        in
        arbitrate ~waited:false)
  in
  match claimed with
  | Either.Left blocks -> blocks
  | Either.Right () ->
      let release () =
        Mutex.protect mem_mutex (fun () ->
            Hashtbl.remove in_flight key.mem;
            Condition.broadcast mem_cond)
      in
      (* phase 2: disk then record, outside the lock.  On failure the
         claim is released so waiters retry (a deterministic failure
         simply repeats for them, as it would have serially). *)
      Fun.protect ~finally:release (fun () ->
          match find_disk t key.disk with
          | Some blocks ->
              Mutex.protect mem_mutex (fun () ->
                  insert_mem ~limit_bytes key.mem blocks);
              blocks
          | None ->
              let blocks = record () in
              add t ?limit_bytes ~key blocks;
              blocks)

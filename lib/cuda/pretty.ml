(* CUDA source emission.

   HFuse is a source-to-source compiler: its output is compilable CUDA-C.
   The printer is precedence-aware (it inserts only the parentheses the
   grammar needs) and is exercised by a parse/print round-trip property
   test. *)

open Ast

let prec_of_binop : binop -> int = function
  | Lor -> 0
  | Land -> 1
  | Bor -> 2
  | Bxor -> 3
  | Band -> 4
  | Eq | Ne -> 5
  | Lt | Le | Gt | Ge -> 6
  | Shl | Shr -> 7
  | Add | Sub -> 8
  | Mul | Div | Mod -> 9

(* Precedence of a whole expression, for parenthesisation decisions.
   Higher binds tighter.  Assignment/ternary are the loosest (-2/-1);
   unary = 10; postfix/primary = 11. *)
let prec_of_expr = function
  | Assign _ | Op_assign _ -> -2
  | Ternary _ -> -1
  | Binop (op, _, _) -> prec_of_binop op
  | Unop _ | Cast _ | Deref _ | Addr_of _ | Incdec { pre = true; _ } -> 10
  | _ -> 11

let string_of_binop : binop -> string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Land -> "&&"
  | Lor -> "||"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let string_of_dim = function X -> "x" | Y -> "y" | Z -> "z"

let string_of_builtin = function
  | Thread_idx d -> "threadIdx." ^ string_of_dim d
  | Block_idx d -> "blockIdx." ^ string_of_dim d
  | Block_dim d -> "blockDim." ^ string_of_dim d
  | Grid_dim d -> "gridDim." ^ string_of_dim d

let float_lit_to_string v (ty : Ctype.t) =
  let s =
    if Float.is_integer v && Float.abs v < 1e16 then
      Printf.sprintf "%.1f" v
    else Printf.sprintf "%.17g" v
  in
  match ty with Float -> s ^ "f" | _ -> s

let int_lit_to_string v (ty : Ctype.t) =
  let suffix =
    match ty with
    | UInt -> "u"
    | Long -> "ll"
    | ULong -> "ull"
    | _ -> ""
  in
  Int64.to_string v ^ suffix

let rec pp_expr ppf e = pp_expr_prec ppf (-3) e

(* [ctx] is the loosest precedence allowed without parentheses. *)
and pp_expr_prec ppf ctx e =
  let p = prec_of_expr e in
  let wrap = p < ctx in
  if wrap then Fmt.string ppf "(";
  (match e with
  | Int_lit (v, ty) -> Fmt.string ppf (int_lit_to_string v ty)
  | Float_lit (v, ty) -> Fmt.string ppf (float_lit_to_string v ty)
  | Bool_lit b -> Fmt.string ppf (if b then "true" else "false")
  | Var x -> Fmt.string ppf x
  | Builtin b -> Fmt.string ppf (string_of_builtin b)
  | Unop (Neg, e) ->
      (* avoid "--x": separate a negation whose operand also prints a
         leading '-' so the lexer does not see a pre-decrement *)
      let leading_minus =
        match e with
        | Unop (Neg, _) | Incdec { pre = true; inc = false; _ } -> true
        | Int_lit (v, _) -> Int64.compare v 0L < 0
        | Float_lit (v, _) -> v < 0.0 || 1.0 /. v = neg_infinity
        | _ -> false
      in
      if leading_minus then Fmt.pf ppf "-(%a)" pp_expr e
      else Fmt.pf ppf "-%a" (fun p -> pp_expr_prec p 10) e
  | Unop (Lnot, e) -> Fmt.pf ppf "!%a" (fun p -> pp_expr_prec p 10) e
  | Unop (Bnot, e) -> Fmt.pf ppf "~%a" (fun p -> pp_expr_prec p 10) e
  | Binop (op, a, b) ->
      let bp = prec_of_binop op in
      (* left-associative: left child may be at the same level, the right
         child must bind strictly tighter *)
      Fmt.pf ppf "%a %s %a"
        (fun p -> pp_expr_prec p bp)
        a (string_of_binop op)
        (fun p -> pp_expr_prec p (bp + 1))
        b
  | Assign (l, r) ->
      Fmt.pf ppf "%a = %a"
        (fun p -> pp_expr_prec p (-1))
        l
        (fun p -> pp_expr_prec p (-2))
        r
  | Op_assign (op, l, r) ->
      Fmt.pf ppf "%a %s= %a"
        (fun p -> pp_expr_prec p (-1))
        l (string_of_binop op)
        (fun p -> pp_expr_prec p (-2))
        r
  | Incdec { pre; inc; lval } ->
      let op = if inc then "++" else "--" in
      if pre then Fmt.pf ppf "%s%a" op (fun p -> pp_expr_prec p 10) lval
      else Fmt.pf ppf "%a%s" (fun p -> pp_expr_prec p 11) lval op
  | Ternary (c, a, b) ->
      Fmt.pf ppf "%a ? %a : %a"
        (fun p -> pp_expr_prec p 0)
        c
        (fun p -> pp_expr_prec p (-2))
        a
        (fun p -> pp_expr_prec p (-1))
        b
  | Call (f, args) ->
      Fmt.pf ppf "%s(%a)" f
        Fmt.(list ~sep:(any ", ") (fun p -> pp_expr_prec p (-2)))
        args
  | Index (a, i) ->
      Fmt.pf ppf "%a[%a]" (fun p -> pp_expr_prec p 11) a pp_expr i
  | Deref e -> Fmt.pf ppf "*%a" (fun p -> pp_expr_prec p 10) e
  | Addr_of e -> Fmt.pf ppf "&%a" (fun p -> pp_expr_prec p 10) e
  | Cast (t, e) ->
      Fmt.pf ppf "(%s)%a" (Ctype.to_string t) (fun p -> pp_expr_prec p 10) e);
  if wrap then Fmt.string ppf ")"

let pp_decl ppf (d : decl) =
  let storage =
    match d.d_storage with
    | Local -> ""
    | Shared -> "__shared__ "
    | Shared_extern -> "extern __shared__ "
  in
  let base, suffix = Ctype.base_and_suffix d.d_type in
  (match d.d_init with
  | None ->
      Fmt.pf ppf "%s%s %s%s;" storage (Ctype.to_string base) d.d_name suffix
  | Some e ->
      Fmt.pf ppf "%s%s %s%s = %a;" storage (Ctype.to_string base) d.d_name
        suffix pp_expr e)

let rec pp_stmt ppf (s : stmt) =
  match s.s with
  | Decl d -> pp_decl ppf d
  | Expr e -> Fmt.pf ppf "%a;" pp_expr e
  | If (c, t, []) ->
      Fmt.pf ppf "@[<v 2>if (%a) {%a@]@,}" pp_expr c pp_stmts_nested t
  | If (c, t, e) ->
      Fmt.pf ppf "@[<v 2>if (%a) {%a@]@,@[<v 2>} else {%a@]@,}" pp_expr c
        pp_stmts_nested t pp_stmts_nested e
  | For (init, cond, step, body) ->
      let pp_init ppf = function
        | None -> ()
        | Some (For_expr e) -> pp_expr ppf e
        | Some (For_decl ds) -> (
            (* all declarators share the base type by construction *)
            match ds with
            | [] -> ()
            | d0 :: _ ->
                let base, _ = Ctype.base_and_suffix d0.d_type in
                Fmt.pf ppf "%s " (Ctype.to_string base);
                Fmt.(list ~sep:(any ", "))
                  (fun ppf (d : decl) ->
                    match d.d_init with
                    | None -> Fmt.string ppf d.d_name
                    | Some e -> Fmt.pf ppf "%s = %a" d.d_name pp_expr e)
                  ppf ds)
      in
      Fmt.pf ppf "@[<v 2>for (%a; %a; %a) {%a@]@,}" pp_init init
        Fmt.(option pp_expr)
        cond
        Fmt.(option pp_expr)
        step pp_stmts_nested body
  | While (c, body) ->
      Fmt.pf ppf "@[<v 2>while (%a) {%a@]@,}" pp_expr c pp_stmts_nested body
  | Do_while (body, c) ->
      Fmt.pf ppf "@[<v 2>do {%a@]@,} while (%a);" pp_stmts_nested body pp_expr
        c
  | Return None -> Fmt.string ppf "return;"
  | Return (Some e) -> Fmt.pf ppf "return %a;" pp_expr e
  | Break -> Fmt.string ppf "break;"
  | Continue -> Fmt.string ppf "continue;"
  | Sync -> Fmt.string ppf "__syncthreads();"
  | Bar_sync (id, n) -> Fmt.pf ppf "asm(\"bar.sync %d, %d;\");" id n
  | Goto l -> Fmt.pf ppf "goto %s;" l
  | Label l -> Fmt.pf ppf "%s:;" l
  | Block stmts -> Fmt.pf ppf "@[<v 2>{%a@]@,}" pp_stmts_nested stmts
  | Nop -> Fmt.string ppf ";"

and pp_stmts_nested ppf stmts =
  List.iter (fun s -> Fmt.pf ppf "@,%a" pp_stmt s) stmts

let pp_param ppf (p : param) =
  Fmt.pf ppf "%s %s" (Ctype.to_string p.p_type) p.p_name

let pp_fn ppf (f : fn) =
  let kind =
    match f.f_kind with Global -> "__global__" | Device -> "__device__"
  in
  let lb =
    match f.f_launch_bounds with
    | None -> ""
    | Some n -> Fmt.str " __launch_bounds__(%d)" n
  in
  Fmt.pf ppf "@[<v 2>%s%s %s %s(%a) {%a@]@,}" kind lb
    (Ctype.to_string f.f_ret) f.f_name
    Fmt.(list ~sep:(any ", ") pp_param)
    f.f_params pp_stmts_nested f.f_body

let pp_program ppf (p : program) =
  List.iter (fun (k, v) -> Fmt.pf ppf "#define %s %Ld@," k v) p.defines;
  Fmt.(list ~sep:(any "@,@,") pp_fn) ppf p.functions

let expr_to_string e = Fmt.str "%a" pp_expr e
let stmt_to_string s = Fmt.str "@[<v>%a@]" pp_stmt s
let fn_to_string f = Fmt.str "@[<v>%a@]" pp_fn f
let program_to_string p = Fmt.str "@[<v>%a@]" pp_program p

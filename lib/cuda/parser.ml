(* Recursive-descent parser for the CUDA-C subset.

   Expressions are parsed with classic precedence climbing over the full C
   operator table.  Declarations are distinguished from expression
   statements by their leading type keyword (the subset has no typedef, so
   no symbol table is needed for disambiguation — the same property Clang
   exploits for CUDA's device-side subset after preprocessing).

   Two pieces of CUDA-specific sugar are resolved here:
   - [threadIdx.x] / [blockIdx.y] / ... become {!Ast.Builtin} nodes;
   - [#define NAME <int>] constants recorded by the lexer are substituted
     for their value wherever the name appears, implementing the paper's
     "macros are preprocessed" assumption (Section III-C). *)

exception Error of string * Loc.t

type state = {
  toks : (Token.t * Loc.t) array;
  mutable idx : int;
  defines : (string, int64) Hashtbl.t;
}

let error st msg =
  let _, loc = st.toks.(st.idx) in
  raise (Error (msg, loc))

let peek st = fst st.toks.(st.idx)
let peek_loc st = snd st.toks.(st.idx)

let peek_n st n =
  let i = st.idx + n in
  if i < Array.length st.toks then fst st.toks.(i) else Token.EOF

let next st =
  let t = st.toks.(st.idx) in
  if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1;
  fst t

let expect st tok =
  let got = peek st in
  if Token.equal got tok then ignore (next st)
  else
    error st
      (Fmt.str "expected %a but found %a" Token.pp tok Token.pp got)

let accept st tok =
  if Token.equal (peek st) tok then (
    ignore (next st);
    true)
  else false

let expect_ident st =
  match peek st with
  | Token.IDENT s ->
      ignore (next st);
      s
  | t -> error st (Fmt.str "expected identifier but found %a" Token.pp t)

(* ------------------------------------------------------------------ *)
(* Types                                                                *)
(* ------------------------------------------------------------------ *)

let is_type_start_kw = function
  | "void" | "bool" | "char" | "short" | "int" | "long" | "float" | "double"
  | "signed" | "unsigned" | "const" | "volatile" | "restrict"
  | "__restrict__" | "uint8_t" | "uint16_t" | "uint32_t" | "uint64_t"
  | "int8_t" | "int16_t" | "int32_t" | "int64_t" | "size_t" | "uint" ->
      true
  | _ -> false

let starts_type st =
  match peek st with Token.KW k -> is_type_start_kw k | _ -> false

(* Parses a type specifier: sign/size keywords plus trailing '*'s.
   Qualifiers (const/volatile/restrict) are accepted and dropped — they do
   not affect fusion or simulation semantics. *)
let parse_base_type st =
  let signedness = ref None (* Some true = unsigned *) in
  let base = ref None in
  let longs = ref 0 in
  let rec specifiers () =
    match peek st with
    | Token.KW ("const" | "volatile" | "restrict" | "__restrict__") ->
        ignore (next st);
        specifiers ()
    | Token.KW "unsigned" ->
        ignore (next st);
        signedness := Some true;
        specifiers ()
    | Token.KW "signed" ->
        ignore (next st);
        signedness := Some false;
        specifiers ()
    | Token.KW "long" ->
        ignore (next st);
        incr longs;
        specifiers ()
    | Token.KW (("void" | "bool" | "char" | "short" | "int" | "float"
                | "double" | "uint8_t" | "uint16_t" | "uint32_t" | "uint64_t"
                | "int8_t" | "int16_t" | "int32_t" | "int64_t" | "size_t"
                | "uint") as k) ->
        ignore (next st);
        base := Some k;
        specifiers ()
    | _ -> ()
  in
  specifiers ();
  let unsigned = !signedness = Some true in
  let t : Ctype.t =
    match (!base, !longs) with
    | Some "void", _ -> Void
    | Some "bool", _ -> Bool
    | Some "char", _ -> if unsigned then UChar else Char
    | Some "short", _ -> if unsigned then UShort else Short
    | Some "int", 0 -> if unsigned then UInt else Int
    | Some "int", _ -> if unsigned then ULong else Long
    | Some "float", _ -> Float
    | Some "double", _ -> Double
    | Some "uint8_t", _ -> UChar
    | Some "int8_t", _ -> Char
    | Some "uint16_t", _ -> UShort
    | Some "int16_t", _ -> Short
    | Some "uint32_t", _ | Some "uint", _ -> UInt
    | Some "int32_t", _ -> Int
    | Some "uint64_t", _ | Some "size_t", _ -> ULong
    | Some "int64_t", _ -> Long
    | None, n when n > 0 -> if unsigned then ULong else Long
    | None, _ when !signedness <> None -> if unsigned then UInt else Int
    | None, _ -> error st "expected type specifier"
    | Some k, _ -> error st ("unsupported type specifier " ^ k)
  in
  let t = ref t in
  while accept st Token.STAR do
    (* const after '*' *)
    (match peek st with
    | Token.KW ("const" | "volatile" | "restrict" | "__restrict__") ->
        ignore (next st)
    | _ -> ());
    t := Ctype.Ptr !t
  done;
  !t

(* ------------------------------------------------------------------ *)
(* Constant folding (array dimensions, barrier operands)               *)
(* ------------------------------------------------------------------ *)

let rec const_eval_opt (e : Ast.expr) : int64 option =
  let open Ast in
  let ( let* ) = Option.bind in
  match e with
  | Int_lit (v, _) -> Some v
  | Bool_lit b -> Some (if b then 1L else 0L)
  | Unop (Neg, e) ->
      let* v = const_eval_opt e in
      Some (Int64.neg v)
  | Unop (Bnot, e) ->
      let* v = const_eval_opt e in
      Some (Int64.lognot v)
  | Unop (Lnot, e) ->
      let* v = const_eval_opt e in
      Some (if Int64.equal v 0L then 1L else 0L)
  | Binop (op, a, b) -> (
      let* x = const_eval_opt a in
      let* y = const_eval_opt b in
      match op with
      | Add -> Some (Int64.add x y)
      | Sub -> Some (Int64.sub x y)
      | Mul -> Some (Int64.mul x y)
      | Div -> if Int64.equal y 0L then None else Some (Int64.div x y)
      | Mod -> if Int64.equal y 0L then None else Some (Int64.rem x y)
      | Shl -> Some (Int64.shift_left x (Int64.to_int y land 63))
      | Shr -> Some (Int64.shift_right x (Int64.to_int y land 63))
      | Band -> Some (Int64.logand x y)
      | Bor -> Some (Int64.logor x y)
      | Bxor -> Some (Int64.logxor x y)
      | Land -> Some (if Int64.equal x 0L || Int64.equal y 0L then 0L else 1L)
      | Lor -> Some (if Int64.equal x 0L && Int64.equal y 0L then 0L else 1L)
      | Eq -> Some (if Int64.equal x y then 1L else 0L)
      | Ne -> Some (if Int64.equal x y then 0L else 1L)
      | Lt -> Some (if Int64.compare x y < 0 then 1L else 0L)
      | Le -> Some (if Int64.compare x y <= 0 then 1L else 0L)
      | Gt -> Some (if Int64.compare x y > 0 then 1L else 0L)
      | Ge -> Some (if Int64.compare x y >= 0 then 1L else 0L))
  | Ternary (c, a, b) ->
      let* c = const_eval_opt c in
      if Int64.equal c 0L then const_eval_opt b else const_eval_opt a
  | Cast (t, e) when Ctype.is_integer t -> const_eval_opt e
  | _ -> None

let const_eval st e =
  match const_eval_opt e with
  | Some v -> Int64.to_int v
  | None -> error st "expected integer constant expression"

(* ------------------------------------------------------------------ *)
(* Expressions                                                          *)
(* ------------------------------------------------------------------ *)

let builtin_of st base field : Ast.builtin =
  let dim : Ast.dim =
    match field with
    | "x" -> X
    | "y" -> Y
    | "z" -> Z
    | f -> error st ("unknown builtin field ." ^ f)
  in
  match base with
  | "threadIdx" -> Thread_idx dim
  | "blockIdx" -> Block_idx dim
  | "blockDim" -> Block_dim dim
  | "gridDim" -> Grid_dim dim
  | b -> error st ("unknown builtin " ^ b)

let is_builtin_base = function
  | "threadIdx" | "blockIdx" | "blockDim" | "gridDim" -> true
  | _ -> false

let rec parse_expr st : Ast.expr = parse_assign st

and parse_assign st =
  let lhs = parse_ternary st in
  match peek st with
  | Token.ASSIGN ->
      ignore (next st);
      Ast.Assign (lhs, parse_assign st)
  | Token.PLUS_ASSIGN ->
      ignore (next st);
      Ast.Op_assign (Add, lhs, parse_assign st)
  | Token.MINUS_ASSIGN ->
      ignore (next st);
      Ast.Op_assign (Sub, lhs, parse_assign st)
  | Token.STAR_ASSIGN ->
      ignore (next st);
      Ast.Op_assign (Mul, lhs, parse_assign st)
  | Token.SLASH_ASSIGN ->
      ignore (next st);
      Ast.Op_assign (Div, lhs, parse_assign st)
  | Token.PERCENT_ASSIGN ->
      ignore (next st);
      Ast.Op_assign (Mod, lhs, parse_assign st)
  | Token.AMP_ASSIGN ->
      ignore (next st);
      Ast.Op_assign (Band, lhs, parse_assign st)
  | Token.PIPE_ASSIGN ->
      ignore (next st);
      Ast.Op_assign (Bor, lhs, parse_assign st)
  | Token.CARET_ASSIGN ->
      ignore (next st);
      Ast.Op_assign (Bxor, lhs, parse_assign st)
  | Token.LSHIFT_ASSIGN ->
      ignore (next st);
      Ast.Op_assign (Shl, lhs, parse_assign st)
  | Token.RSHIFT_ASSIGN ->
      ignore (next st);
      Ast.Op_assign (Shr, lhs, parse_assign st)
  | _ -> lhs

and parse_ternary st =
  let c = parse_binary st 0 in
  if accept st Token.QUESTION then begin
    let a = parse_assign st in
    expect st Token.COLON;
    let b = parse_assign st in
    Ast.Ternary (c, a, b)
  end
  else c

(* Binary operators by precedence level, loosest first. *)
and binop_of_token (t : Token.t) : (Ast.binop * int) option =
  match t with
  | OROR -> Some (Lor, 0)
  | ANDAND -> Some (Land, 1)
  | PIPE -> Some (Bor, 2)
  | CARET -> Some (Bxor, 3)
  | AMP -> Some (Band, 4)
  | EQEQ -> Some (Eq, 5)
  | NEQ -> Some (Ne, 5)
  | LT -> Some (Lt, 6)
  | GT -> Some (Gt, 6)
  | LE -> Some (Le, 6)
  | GE -> Some (Ge, 6)
  | LSHIFT -> Some (Shl, 7)
  | RSHIFT -> Some (Shr, 7)
  | PLUS -> Some (Add, 8)
  | MINUS -> Some (Sub, 8)
  | STAR -> Some (Mul, 9)
  | SLASH -> Some (Div, 9)
  | PERCENT -> Some (Mod, 9)
  | _ -> None

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token (peek st) with
    | Some (op, prec) when prec >= min_prec ->
        ignore (next st);
        let rhs = parse_binary st (prec + 1) in
        lhs := Ast.Binop (op, !lhs, rhs)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | Token.MINUS -> (
      ignore (next st);
      (* fold negation of a literal so negative constants have one
         canonical AST form: [-3.0f] parses as [Float_lit (-3.0)], the
         same shape the pretty-printer emits it from.  Without the fold
         printed negative literals reparse as [Unop (Neg, lit)] and the
         round-trip property fails. *)
      match parse_unary st with
      | Ast.Int_lit (v, ty) when not (Int64.equal v Int64.min_int) ->
          Ast.Int_lit (Int64.neg v, ty)
      | Ast.Float_lit (v, ty) -> Ast.Float_lit (-.v, ty)
      | e -> Ast.Unop (Neg, e))
  | Token.BANG ->
      ignore (next st);
      Ast.Unop (Lnot, parse_unary st)
  | Token.TILDE ->
      ignore (next st);
      Ast.Unop (Bnot, parse_unary st)
  | Token.PLUS ->
      ignore (next st);
      parse_unary st
  | Token.STAR ->
      ignore (next st);
      Ast.Deref (parse_unary st)
  | Token.AMP ->
      ignore (next st);
      Ast.Addr_of (parse_unary st)
  | Token.PLUSPLUS ->
      ignore (next st);
      Ast.Incdec { pre = true; inc = true; lval = parse_unary st }
  | Token.MINUSMINUS ->
      ignore (next st);
      Ast.Incdec { pre = true; inc = false; lval = parse_unary st }
  | Token.LPAREN when (match peek_n st 1 with
                      | Token.KW k -> is_type_start_kw k
                      | _ -> false) ->
      (* cast *)
      ignore (next st);
      let t = parse_base_type st in
      expect st Token.RPAREN;
      Ast.Cast (t, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Token.LBRACKET ->
        ignore (next st);
        let i = parse_expr st in
        expect st Token.RBRACKET;
        e := Ast.Index (!e, i)
    | Token.PLUSPLUS ->
        ignore (next st);
        e := Ast.Incdec { pre = false; inc = true; lval = !e }
    | Token.MINUSMINUS ->
        ignore (next st);
        e := Ast.Incdec { pre = false; inc = false; lval = !e }
    | _ -> continue_ := false
  done;
  !e

and parse_call_args st =
  expect st Token.LPAREN;
  if accept st Token.RPAREN then []
  else begin
    let args = ref [ parse_assign st ] in
    while accept st Token.COMMA do
      args := parse_assign st :: !args
    done;
    expect st Token.RPAREN;
    List.rev !args
  end

and parse_primary st =
  match peek st with
  | Token.INT_LIT (v, ty) ->
      ignore (next st);
      Ast.Int_lit (v, ty)
  | Token.FLOAT_LIT (v, ty) ->
      ignore (next st);
      Ast.Float_lit (v, ty)
  | Token.KW "true" ->
      ignore (next st);
      Ast.Bool_lit true
  | Token.KW "false" ->
      ignore (next st);
      Ast.Bool_lit false
  | Token.LPAREN ->
      ignore (next st);
      let e = parse_expr st in
      expect st Token.RPAREN;
      e
  | Token.IDENT name when is_builtin_base name
                          && Token.equal (peek_n st 1) Token.DOT -> (
      ignore (next st);
      expect st Token.DOT;
      let field = expect_ident st in
      Ast.Builtin (builtin_of st name field))
  | Token.IDENT name -> (
      ignore (next st);
      match peek st with
      | Token.LPAREN -> Ast.Call (name, parse_call_args st)
      | _ -> (
          match Hashtbl.find_opt st.defines name with
          | Some v -> Ast.Int_lit (v, Ctype.Int)
          | None -> Ast.Var name))
  | t -> error st (Fmt.str "expected expression but found %a" Token.pp t)

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)
(* ------------------------------------------------------------------ *)

(* asm bodies we understand: "bar.sync <id>, <count>;" (whitespace-
   insensitive, trailing semicolon optional). *)
let parse_bar_sync_body st (s : string) : int * int =
  let s = String.trim s in
  let prefix = "bar.sync" in
  if
    String.length s < String.length prefix
    || String.sub s 0 (String.length prefix) <> prefix
  then error st ("unsupported asm body: " ^ s)
  else begin
    let rest =
      String.sub s (String.length prefix)
        (String.length s - String.length prefix)
    in
    let rest =
      match String.index_opt rest ';' with
      | Some i -> String.sub rest 0 i
      | None -> rest
    in
    match String.split_on_char ',' rest with
    | [ a; b ] -> (
        try (int_of_string (String.trim a), int_of_string (String.trim b))
        with _ -> error st ("malformed bar.sync operands: " ^ rest))
    | _ -> error st ("bar.sync expects two operands: " ^ rest)
  end

let storage_of_prefix st =
  (* [extern __shared__ T name[];] or [__shared__ T name[N];] *)
  if accept st (Token.KW "extern") then begin
    expect st (Token.KW "__shared__");
    Ast.Shared_extern
  end
  else if accept st (Token.KW "__shared__") then Ast.Shared
  else Ast.Local

let rec parse_stmt st : Ast.stmt =
  let loc = peek_loc st in
  let mk s = Ast.mk_stmt ~loc s in
  match peek st with
  | Token.SEMI ->
      ignore (next st);
      mk Ast.Nop
  | Token.LBRACE -> mk (Ast.Block (parse_block st))
  | Token.KW "if" ->
      ignore (next st);
      expect st Token.LPAREN;
      let c = parse_expr st in
      expect st Token.RPAREN;
      let then_ = parse_stmt_as_list st in
      let else_ =
        if accept st (Token.KW "else") then parse_stmt_as_list st else []
      in
      mk (Ast.If (c, then_, else_))
  | Token.KW "while" ->
      ignore (next st);
      expect st Token.LPAREN;
      let c = parse_expr st in
      expect st Token.RPAREN;
      mk (Ast.While (c, parse_stmt_as_list st))
  | Token.KW "do" ->
      ignore (next st);
      let body = parse_stmt_as_list st in
      expect st (Token.KW "while");
      expect st Token.LPAREN;
      let c = parse_expr st in
      expect st Token.RPAREN;
      expect st Token.SEMI;
      mk (Ast.Do_while (body, c))
  | Token.KW "for" ->
      ignore (next st);
      expect st Token.LPAREN;
      let init =
        if accept st Token.SEMI then None
        else if starts_type st then begin
          let ds = parse_decl_group st in
          (* parse_decl_group consumes the ';' *)
          Some (Ast.For_decl ds)
        end
        else begin
          let e = parse_expr st in
          expect st Token.SEMI;
          Some (Ast.For_expr e)
        end
      in
      let cond =
        if Token.equal (peek st) Token.SEMI then None else Some (parse_expr st)
      in
      expect st Token.SEMI;
      let step =
        if Token.equal (peek st) Token.RPAREN then None
        else Some (parse_expr st)
      in
      expect st Token.RPAREN;
      mk (Ast.For (init, cond, step, parse_stmt_as_list st))
  | Token.KW "return" ->
      ignore (next st);
      let e =
        if Token.equal (peek st) Token.SEMI then None else Some (parse_expr st)
      in
      expect st Token.SEMI;
      mk (Ast.Return e)
  | Token.KW "break" ->
      ignore (next st);
      expect st Token.SEMI;
      mk Ast.Break
  | Token.KW "continue" ->
      ignore (next st);
      expect st Token.SEMI;
      mk Ast.Continue
  | Token.KW "goto" ->
      ignore (next st);
      let l = expect_ident st in
      expect st Token.SEMI;
      mk (Ast.Goto l)
  | Token.KW "asm" ->
      ignore (next st);
      (* optional 'volatile' *)
      (match peek st with
      | Token.KW "volatile" -> ignore (next st)
      | Token.IDENT "volatile" -> ignore (next st)
      | _ -> ());
      expect st Token.LPAREN;
      let body =
        match next st with
        | Token.STRING_LIT s -> s
        | t -> error st (Fmt.str "expected asm string, found %a" Token.pp t)
      in
      expect st Token.RPAREN;
      expect st Token.SEMI;
      let id, count = parse_bar_sync_body st body in
      mk (Ast.Bar_sync (id, count))
  | Token.KW ("extern" | "__shared__") -> parse_decl_stmt st ~loc
  | Token.KW k when is_type_start_kw k -> parse_decl_stmt st ~loc
  | Token.IDENT l when Token.equal (peek_n st 1) Token.COLON ->
      ignore (next st);
      ignore (next st);
      mk (Ast.Label l)
  | Token.IDENT "__syncthreads" when Token.equal (peek_n st 1) Token.LPAREN ->
      ignore (next st);
      expect st Token.LPAREN;
      expect st Token.RPAREN;
      expect st Token.SEMI;
      mk Ast.Sync
  | _ ->
      let e = parse_expr st in
      expect st Token.SEMI;
      mk (Ast.Expr e)

and parse_stmt_as_list st : Ast.stmt list =
  match peek st with
  | Token.LBRACE -> parse_block st
  | _ -> [ parse_stmt st ]

and parse_block st : Ast.stmt list =
  expect st Token.LBRACE;
  let stmts = ref [] in
  while not (Token.equal (peek st) Token.RBRACE) do
    if Token.equal (peek st) Token.EOF then error st "unterminated block";
    stmts := parse_stmt st :: !stmts
  done;
  expect st Token.RBRACE;
  List.rev !stmts

(* Parses [T a = e, *b, c[4];] — a declaration group sharing a base type.
   Consumes the terminating ';'. *)
and parse_decl_group st : Ast.decl list =
  let storage = storage_of_prefix st in
  let base = parse_base_type st in
  let parse_one () =
    (* extra '*'s bind to the declarator *)
    let t = ref base in
    while accept st Token.STAR do
      t := Ctype.Ptr !t
    done;
    let name = expect_ident st in
    (* array suffixes *)
    let dims = ref [] in
    while accept st Token.LBRACKET do
      if accept st Token.RBRACKET then dims := None :: !dims
      else begin
        let d = const_eval st (parse_expr st) in
        expect st Token.RBRACKET;
        dims := Some d :: !dims
      end
    done;
    let t =
      List.fold_left (fun t d -> Ctype.Array (t, d)) !t !dims
      (* dims collected innermost-last; fold builds outermost-first which
         matches C's row-major nesting for our 1-D uses *)
    in
    let init =
      if accept st Token.ASSIGN then Some (parse_assign st) else None
    in
    { Ast.d_name = name; d_type = t; d_storage = storage; d_init = init }
  in
  let ds = ref [ parse_one () ] in
  while accept st Token.COMMA do
    ds := parse_one () :: !ds
  done;
  expect st Token.SEMI;
  List.rev !ds

and parse_decl_stmt st ~loc : Ast.stmt =
  match parse_decl_group st with
  | [ d ] -> Ast.mk_stmt ~loc (Ast.Decl d)
  | ds ->
      Ast.mk_stmt ~loc
        (Ast.Block (List.map (fun d -> Ast.mk_stmt ~loc (Ast.Decl d)) ds))

(* ------------------------------------------------------------------ *)
(* Functions and translation units                                      *)
(* ------------------------------------------------------------------ *)

let parse_params st : Ast.param list =
  expect st Token.LPAREN;
  if accept st Token.RPAREN then []
  else begin
    let parse_one () =
      let t = parse_base_type st in
      let t = ref t in
      while accept st Token.STAR do
        t := Ctype.Ptr !t
      done;
      let name = expect_ident st in
      (* array parameters decay to pointers *)
      while accept st Token.LBRACKET do
        (match peek st with
        | Token.RBRACKET -> ()
        | _ -> ignore (parse_expr st));
        expect st Token.RBRACKET;
        t := Ctype.Ptr !t
      done;
      { Ast.p_name = name; p_type = !t }
    in
    let ps = ref [ parse_one () ] in
    while accept st Token.COMMA do
      ps := parse_one () :: !ps
    done;
    expect st Token.RPAREN;
    List.rev !ps
  end

let parse_function st : Ast.fn =
  let kind = ref None in
  let launch_bounds = ref None in
  let rec qualifiers () =
    match peek st with
    | Token.KW "__global__" ->
        ignore (next st);
        kind := Some Ast.Global;
        qualifiers ()
    | Token.KW "__device__" ->
        ignore (next st);
        if !kind = None then kind := Some Ast.Device;
        qualifiers ()
    | Token.KW ("__host__" | "__forceinline__" | "static" | "inline"
               | "extern") ->
        ignore (next st);
        qualifiers ()
    | Token.KW "__launch_bounds__" ->
        ignore (next st);
        expect st Token.LPAREN;
        let n = const_eval st (parse_expr st) in
        (* optional second argument: min blocks per SM, ignored *)
        if accept st Token.COMMA then ignore (parse_expr st);
        expect st Token.RPAREN;
        launch_bounds := Some n;
        qualifiers ()
    | _ -> ()
  in
  qualifiers ();
  let kind =
    match !kind with
    | Some k -> k
    | None -> error st "expected __global__ or __device__ function"
  in
  let ret = parse_base_type st in
  (* __launch_bounds__ may also appear after the return type *)
  (match peek st with
  | Token.KW "__launch_bounds__" ->
      ignore (next st);
      expect st Token.LPAREN;
      let n = const_eval st (parse_expr st) in
      if accept st Token.COMMA then ignore (parse_expr st);
      expect st Token.RPAREN;
      launch_bounds := Some n
  | _ -> ());
  let name = expect_ident st in
  let params = parse_params st in
  let body = parse_block st in
  {
    Ast.f_name = name;
    f_kind = kind;
    f_params = params;
    f_ret = ret;
    f_body = body;
    f_launch_bounds = !launch_bounds;
  }

(** Parse a full translation unit from source text. *)
let parse_program (src : string) : Ast.program =
  let lexed = Lexer.lex src in
  let defines = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace defines k v) lexed.defines;
  let st = { toks = lexed.tokens; idx = 0; defines } in
  let fns = ref [] in
  while not (Token.equal (peek st) Token.EOF) do
    fns := parse_function st :: !fns
  done;
  { Ast.defines = lexed.defines; functions = List.rev !fns }

(** Parse a source file containing exactly one [__global__] kernel
    (convenience entry point used by the CLI and tests). *)
let parse_kernel (src : string) : Ast.program * Ast.fn =
  let prog = parse_program src in
  match Ast.kernels prog with
  | [ k ] -> (prog, k)
  | [] -> failwith "parse_kernel: no __global__ kernel in input"
  | ks ->
      failwith
        (Fmt.str "parse_kernel: expected one kernel, found %d (%a)"
           (List.length ks)
           Fmt.(list ~sep:comma string)
           (List.map (fun (f : Ast.fn) -> f.f_name) ks))

(** Parse a single expression (testing convenience). *)
let parse_expr_string (src : string) : Ast.expr =
  let lexed = Lexer.lex src in
  let st = { toks = lexed.tokens; idx = 0; defines = Hashtbl.create 1 } in
  let e = parse_expr st in
  expect st Token.EOF;
  e

(** Parse a statement list from a brace-enclosed block or bare statements
    (testing convenience). *)
let parse_stmts_string (src : string) : Ast.stmt list =
  let lexed = Lexer.lex src in
  let st = { toks = lexed.tokens; idx = 0; defines = Hashtbl.create 1 } in
  let stmts = ref [] in
  while not (Token.equal (peek st) Token.EOF) do
    stmts := parse_stmt st :: !stmts
  done;
  List.rev !stmts

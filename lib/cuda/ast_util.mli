(** Generic traversals and queries over the CUDA AST: the workhorses of
    the frontend passes. *)

module StrSet : Set.S with type elt = string

(** Bottom-up expression rewriting (children first, then [f]). *)
val map_expr : (Ast.expr -> Ast.expr) -> Ast.expr -> Ast.expr

(** Pre-order fold over all sub-expressions. *)
val fold_expr : ('a -> Ast.expr -> 'a) -> 'a -> Ast.expr -> 'a

val iter_expr : (Ast.expr -> unit) -> Ast.expr -> unit

(** Rewrite every expression inside the statements. *)
val map_stmts_expr : (Ast.expr -> Ast.expr) -> Ast.stmt list -> Ast.stmt list

val map_stmt_expr : (Ast.expr -> Ast.expr) -> Ast.stmt -> Ast.stmt

(** Structure-preserving statement rewriting; [f] runs after children
    and may expand one statement into several. *)
val map_stmts : (Ast.stmt -> Ast.stmt list) -> Ast.stmt list -> Ast.stmt list

(** Pre-order fold over every statement, descending into nesting. *)
val fold_stmts : ('a -> Ast.stmt -> 'a) -> 'a -> Ast.stmt list -> 'a

val iter_stmts : (Ast.stmt -> unit) -> Ast.stmt list -> unit

(** Fold over every expression occurring anywhere in the statements. *)
val fold_stmts_expr : ('a -> Ast.expr -> 'a) -> 'a -> Ast.stmt list -> 'a

(** All local declarations (including nested and for-init), in order. *)
val collect_decls : Ast.stmt list -> Ast.decl list

val declared_names : Ast.stmt list -> string list
val used_names : Ast.stmt list -> StrSet.t

(** Referenced but not locally declared (parameters, globals). *)
val free_names : Ast.stmt list -> StrSet.t

val called_names : Ast.stmt list -> StrSet.t
val labels : Ast.stmt list -> StrSet.t
val has_barrier : Ast.stmt list -> bool
val barrier_count : Ast.stmt list -> int
val used_builtins : Ast.stmt list -> Ast.builtin list

(** Fold over every statement together with the conditions of its
    enclosing [If]/loop constructs, innermost first.  Loop conditions
    count as guards: a barrier inside a loop whose trip count varies per
    thread diverges just like one under a thread-dependent [If]. *)
val fold_stmts_guarded :
  ('a -> guards:Ast.expr list -> Ast.stmt -> 'a) -> 'a -> Ast.stmt list -> 'a

(** Every (variable, defining expression) pair: initialised declarations
    and (compound) assignments to plain variables.  Increments and
    uninitialised declarations are omitted. *)
val var_defs : Ast.stmt list -> (string * Ast.expr) list

(** Variables whose address is taken somewhere in the statements. *)
val address_taken : Ast.stmt list -> StrSet.t

(** Is a call to this function inherently thread-dependent (atomics,
    shuffles, ballots) even for uniform arguments? *)
val thread_dependent_call : string -> bool

(** May the expression evaluate differently on two threads of the same
    block, given the set [tainted] of thread-dependent variables?
    Memory reads count as thread-dependent (no points-to analysis). *)
val expr_thread_dependent : tainted:StrSet.t -> Ast.expr -> bool

(** Fixpoint taint analysis: variables that may hold values differing
    across threads of a block.  Address-taken variables and the
    caller-supplied [seeds] (variables defined outside the analysed
    statements) seed the set; parameters and block-level builtins are
    uniform. *)
val thread_dependent_vars : ?seeds:StrSet.t -> Ast.stmt list -> StrSet.t

(** One array access, as collected by {!array_accesses}. *)
type access = {
  acc_array : string;  (** base variable being indexed *)
  acc_index : Ast.expr;
  acc_kind : [ `Read | `Write | `Atomic ];
  acc_guards : Ast.expr list;  (** enclosing structured conditions *)
  acc_interval : int;
      (** barrier statements seen before this access in pre-order; two
          accesses with different intervals are (best-effort) separated
          by a barrier *)
}

(** All [a\[i\]] accesses, classified read/write/atomic, with guard
    context and barrier interval.  [&a\[i\]] passed to an [atomic*]
    intrinsic is atomic; passed elsewhere it is conservatively a
    write. *)
val array_accesses : Ast.stmt list -> access list

(** Simultaneous variable renaming of occurrences and declarations;
    the caller guarantees target freshness. *)
val rename_stmts :
  (string, string) Hashtbl.t -> Ast.stmt list -> Ast.stmt list

(** Substitute expressions for variables (declarations untouched). *)
val subst_vars : (string, Ast.expr) Hashtbl.t -> Ast.stmt list -> Ast.stmt list

(** Replace builtins via [f]; [None] keeps the builtin. *)
val replace_builtins :
  (Ast.builtin -> Ast.expr option) -> Ast.stmt list -> Ast.stmt list

val equal_expr : Ast.expr -> Ast.expr -> bool
val equal_stmt : Ast.stmt -> Ast.stmt -> bool
val equal_stmts : Ast.stmt list -> Ast.stmt list -> bool

(** Drop [Nop]s and flatten bare blocks (for round-trip comparison). *)
val normalize : Ast.stmt list -> Ast.stmt list

val equal_normalized : Ast.stmt list -> Ast.stmt list -> bool
